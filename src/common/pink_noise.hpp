// pink_noise.hpp — 1/f (flicker) noise generation.
//
// CMOS op-amps have large low-frequency flicker noise; for a sensor whose
// signal band is 0.5–20 Hz that matters more than the white floor. The
// generator uses the Voss-McCartney octave algorithm: K white sources, the
// k-th re-drawn every 2^k samples; their sum has a PSD within ~0.5 dB of
// 1/f over K−2 decades of bandwidth.
#pragma once

#include <array>
#include <cstddef>

#include "src/common/rng.hpp"

namespace tono {

class PinkNoise {
 public:
  /// `octaves` sets the low-frequency extent: the spectrum is pink from
  /// ~fs/2^octaves up to fs/2. Output is scaled to unit variance.
  explicit PinkNoise(Rng rng, std::size_t octaves = 16);

  /// Next sample (zero mean, unit variance, PSD ∝ 1/f).
  [[nodiscard]] double next() noexcept;

  /// Fills dest[0..n) with the bit-identical sequence n next() calls would
  /// produce (each sample re-draws exactly one row, so the whole block's
  /// Gaussians can be generated up front via Rng::fill_gaussian; the row
  /// updates and sums are replayed in the scalar order). Used by the ΔΣ
  /// modulator's per-frame noise plan.
  void fill_next(double* dest, std::size_t n) noexcept;

  /// fill_next with the n bulk Gaussians already drawn from noise_stream()
  /// by the caller (the ModulatorBank batches the draws of a whole lane
  /// packet into one Rng::fill_gaussian_multi call). Because next() consumes
  /// exactly one Gaussian per sample and fill_gaussian is chunk-invariant,
  /// [fill_gaussian(draws, n); fill_next_from(draws, dest, n)] is
  /// bit-identical to fill_next(dest, n) — pinned by test_rng.cpp.
  void fill_next_from(const double* draws, double* dest, std::size_t n) noexcept;

  /// The generator's own Gaussian stream, exposed for the batched fill path
  /// (fill_next_from's contract: its draws come from exactly this stream).
  [[nodiscard]] Rng& noise_stream() noexcept { return rng_; }

  [[nodiscard]] std::size_t octaves() const noexcept { return octaves_; }

  /// Checkpointing: the RNG stream, the live row values and the sample
  /// counter — a stream suspended mid pink-noise row resumes bit-identically.
  /// `octaves_`/`white_scale_` are construction-time config and are verified,
  /// not restored; restore into a generator built with a different octave
  /// count fails loudly.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  static constexpr std::size_t kMaxOctaves = 24;
  /// Stack chunk for fill_next's bulk Gaussian draws (one modulator frame).
  static constexpr std::size_t kFillChunk = 128;
  Rng rng_;
  std::size_t octaves_;
  std::array<double, kMaxOctaves> rows_{};
  std::uint64_t counter_{0};
  double white_scale_;
};

}  // namespace tono
