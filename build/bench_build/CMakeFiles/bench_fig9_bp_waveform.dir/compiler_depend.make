# Empty compiler generated dependencies file for bench_fig9_bp_waveform.
# This may be replaced when dependencies are built.
