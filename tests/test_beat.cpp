// Tests for the single-beat pressure template.
#include "src/bio/beat.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::bio {
namespace {

TEST(BeatTemplate, NormalizedToUnitRange) {
  const BeatTemplate beat;
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 2000; ++i) {
    const double v = beat.value(i / 2000.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(lo, 0.0, 1e-3);
  EXPECT_NEAR(hi, 1.0, 1e-3);
}

TEST(BeatTemplate, PhaseWraps) {
  const BeatTemplate beat;
  EXPECT_NEAR(beat.value(0.3), beat.value(1.3), 1e-12);
  EXPECT_NEAR(beat.value(0.3), beat.value(-0.7), 1e-12);
}

TEST(BeatTemplate, SystolicPeakEarlyInBeat) {
  const BeatTemplate beat;
  EXPECT_GT(beat.systolic_phase(), 0.05);
  EXPECT_LT(beat.systolic_phase(), 0.30);
  EXPECT_NEAR(beat.value(beat.systolic_phase()), 1.0, 1e-3);
}

TEST(BeatTemplate, DiastolicRunoffDecays) {
  // Pressure falls from the dicrotic wave through mid-diastole; the minimum
  // (the next beat's foot) sits in the last third of the beat.
  const BeatTemplate beat;
  EXPECT_GT(beat.value(0.60), beat.value(0.85));
  double min_phase = 0.0;
  double min_val = 1e9;
  for (double p = 0.0; p < 1.0; p += 0.002) {
    if (beat.value(p) < min_val) {
      min_val = beat.value(p);
      min_phase = p;
    }
  }
  EXPECT_GT(min_phase, 0.6);
}

TEST(BeatTemplate, HasSecondaryWave) {
  // A local maximum exists after the systolic peak (reflected/dicrotic wave)
  // in the radial template: find any interior rise between 0.25 and 0.6.
  const BeatTemplate beat;
  bool rising_after_peak = false;
  double prev = beat.value(0.25);
  for (double p = 0.26; p < 0.60; p += 0.01) {
    const double v = beat.value(p);
    if (v > prev + 1e-4) rising_after_peak = true;
    prev = v;
  }
  EXPECT_TRUE(rising_after_peak);
}

TEST(BeatTemplate, AorticDiffersFromRadial) {
  const BeatTemplate radial{BeatMorphology::radial()};
  const BeatTemplate aortic{BeatMorphology::aortic()};
  double max_diff = 0.0;
  for (double p = 0.0; p < 1.0; p += 0.01) {
    max_diff = std::max(max_diff, std::abs(radial.value(p) - aortic.value(p)));
  }
  EXPECT_GT(max_diff, 0.05);
}

TEST(BeatTemplate, ContinuousAcrossWrap) {
  const BeatTemplate beat;
  EXPECT_NEAR(beat.value(0.999), beat.value(0.0), 0.12);
}

}  // namespace
}  // namespace tono::bio
