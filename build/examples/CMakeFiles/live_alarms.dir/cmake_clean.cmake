file(REMOVE_RECURSE
  "CMakeFiles/live_alarms.dir/live_alarms.cpp.o"
  "CMakeFiles/live_alarms.dir/live_alarms.cpp.o.d"
  "live_alarms"
  "live_alarms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_alarms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
