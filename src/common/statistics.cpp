#include "src/common/statistics.hpp"

#include <algorithm>
#include <cmath>

namespace tono {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  sum_sq_ += x * x;
}

void RunningStats::add(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double RunningStats::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::rms() const noexcept {
  return n_ > 0 ? std::sqrt(sum_sq_ / static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_sq_ += other.sum_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double mean(std::span<const double> xs) noexcept {
  RunningStats s;
  s.add(xs);
  return s.mean();
}

double variance(std::span<const double> xs) noexcept {
  RunningStats s;
  s.add(xs);
  return s.variance();
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double rms(std::span<const double> xs) noexcept {
  RunningStats s;
  s.add(xs);
  return s.rms();
}

double min_value(std::span<const double> xs) noexcept {
  RunningStats s;
  s.add(xs);
  return s.min();
}

double max_value(std::span<const double> xs) noexcept {
  RunningStats s;
  s.add(xs);
  return s.max();
}

double peak_to_peak(std::span<const double> xs) noexcept {
  RunningStats s;
  s.add(xs);
  return s.max() - s.min();
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double pearson_correlation(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double rmse(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double mae(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

}  // namespace tono
