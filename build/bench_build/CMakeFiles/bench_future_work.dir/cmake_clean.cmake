file(REMOVE_RECURSE
  "../bench/bench_future_work"
  "../bench/bench_future_work.pdb"
  "CMakeFiles/bench_future_work.dir/bench_future_work.cpp.o"
  "CMakeFiles/bench_future_work.dir/bench_future_work.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
