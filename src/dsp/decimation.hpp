// decimation.hpp — the paper's two-stage decimation filter as one unit.
//
// §2.2/§3.1: "The decimation filter was implemented as a two stage filter
// architecture, comprising a 3rd order SINC-filter as first stage and a
// 32 tap FIR-filter as second stage. The cutoff frequency of the filter is
// 500 Hz and the output resolution is 12 bit."
//
// DecimationChain splits the total OSR (128) between the CIC and the FIR,
// runs both bit-exactly, and rescales the result to a signed 12-bit code /
// normalized double. The split (CIC 32 ×, FIR 4 ×) keeps the 32-tap FIR's
// transition band feasible while the CIC absorbs the bulk rate change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/dsp/cic.hpp"
#include "src/dsp/fir_filter.hpp"

namespace tono::dsp {

struct DecimationConfig {
  std::size_t total_decimation{128};  ///< overall OSR (paper: 128)
  std::size_t cic_decimation{32};     ///< first-stage rate change
  int cic_order{3};                   ///< SINC order (paper: 3)
  std::size_t fir_taps{32};           ///< second-stage length (paper: 32)
  double cutoff_hz{500.0};            ///< passband edge at the output (paper: 500 Hz)
  double input_rate_hz{128000.0};     ///< modulator rate (paper: 128 kS/s)
  int output_bits{12};                ///< output resolution (paper: 12 bit)
  int fir_coeff_frac_bits{14};        ///< FPGA coefficient precision
  bool compensate_cic_droop{true};    ///< fold inverse-sinc³ into the FIR
};

/// One output sample: both the integer code and its normalized value.
struct DecimatedSample {
  std::int64_t code{0};   ///< signed `output_bits`-wide word
  double value{0.0};      ///< code scaled to [-1, 1)
};

class DecimationChain {
 public:
  /// Throws std::invalid_argument if the config is inconsistent (decimation
  /// split must multiply to total, cutoff must be below output Nyquist).
  explicit DecimationChain(const DecimationConfig& config);

  /// Feeds one ±1 modulator bit (any small integer is accepted); outputs a
  /// 12-bit sample every `total_decimation` inputs.
  [[nodiscard]] std::optional<DecimatedSample> push(int modulator_bit);

  /// Feeds exactly one output frame — `total_decimation` consecutive bits —
  /// and returns the single sample it produces. Any `total_decimation`
  /// consecutive clocks contain exactly one FIR output instant regardless of
  /// the chain's current phase, so this works mid-stream too. Bit-identical
  /// to pushing the bits one at a time, but the CIC integrators run as a
  /// tight block loop and the FIR only fires at its output instants.
  /// Precondition (asserted): bits.size() == config().total_decimation.
  [[nodiscard]] DecimatedSample push_frame(std::span<const int> bits);

  /// Batch form of push() over an arbitrary number of bits: appends every
  /// produced sample to `out`. Whole frames go through push_frame(); a
  /// trailing partial frame falls back to per-bit push(). Bit-identical to
  /// the per-bit loop.
  void push_block(std::span<const int> bits, std::vector<DecimatedSample>& out);

  /// Batch form over a bitstream of ±1 values (routed through push_block).
  [[nodiscard]] std::vector<DecimatedSample> process(std::span<const int> bits);

  /// Batch form returning only normalized values.
  [[nodiscard]] std::vector<double> process_values(std::span<const int> bits);

  void reset();

  [[nodiscard]] double output_rate_hz() const noexcept;
  [[nodiscard]] const DecimationConfig& config() const noexcept { return config_; }

  /// End-to-end magnitude response at frequency f (input-rate referred),
  /// CIC × FIR, normalized to unity at DC.
  [[nodiscard]] double magnitude_at(double freq_hz) const;

  /// Latency through both stages, in seconds at the input rate.
  [[nodiscard]] double group_delay_seconds() const noexcept;

  /// The designed (float) FIR coefficients, for inspection/tests.
  [[nodiscard]] const std::vector<double>& fir_coefficients() const noexcept {
    return fir_coeffs_;
  }

  /// Checkpointing: the CIC and fixed-point FIR stage states. The scratch
  /// buffer is frame-local and is not serialized.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  /// Rounds/saturates a raw FIR word into the output sample and records the
  /// output-rate (1 kHz) instrumentation: samples produced and saturations.
  [[nodiscard]] DecimatedSample finalize_output_(std::int64_t fir_out);

  DecimationConfig config_;
  CicDecimator cic_;
  FixedPointFir fir_;
  std::vector<double> fir_coeffs_;
  double cic_scale_;  ///< maps raw CIC output to FIR input word
  int fir_input_bits_;
  /// Per-frame CIC output scratch for push_frame (total/cic values), kept as
  /// a member so the hot path never allocates.
  std::vector<std::int64_t> cic_scratch_;
  // Observability (resolved once at construction; updated at the 1 kHz
  // output rate only, never per input bit).
  metrics::Counter* samples_metric_;
  metrics::Counter* saturations_metric_;
};

}  // namespace tono::dsp
