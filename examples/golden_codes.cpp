// golden_codes — prints a deterministic transcript of converter output so CI
// can assert cross-compiler bit-identity (gcc and clang must produce
// byte-identical output; see the golden-compare job in ci.yml).
//
// Everything here is seeded and double-precision deterministic: with
// -ffp-contract=off pinned in the root CMakeLists, any diff between two
// builds means a real reordering/contraction of floating-point math crept
// into the hot path, not "benign" noise. The transcript covers the three
// determinism-critical paths: the scalar pipeline, block mode (noise-plan
// path), and the lockstep ModulatorBank.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numbers>
#include <vector>

#include "src/analog/modulator_bank.hpp"
#include "src/core/pipeline.hpp"

namespace {

// FNV-1a over the raw ±1 bit sequence: compresses kilobits of modulator
// output into one line without losing sensitivity to any single bit.
std::uint64_t fnv1a_bits(const std::vector<int>& bits) {
  std::uint64_t h = 1469598103934665603ull;
  for (const int b : bits) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b > 0 ? 1 : 0));
    h *= 1099511628211ull;
  }
  return h;
}

double pressure_at(double t_s) {
  return 9000.0 + 2500.0 * std::sin(2.0 * std::numbers::pi * 1.2 * t_s);
}

}  // namespace

int main() {
  using namespace tono;
  const core::ChipConfig chip = core::ChipConfig::paper_chip();

  // 1) Scalar pipeline: 16 output samples, field sampled every clock.
  {
    core::AcquisitionPipeline pipe{chip};
    const auto samples = pipe.acquire_uniform(pressure_at, 16);
    std::printf("pipeline_scalar\n");
    for (const auto& s : samples) std::printf("%lld\n", static_cast<long long>(s.code));
  }

  // 2) Block-mode pipeline (noise-plan path): 64 output samples.
  {
    core::AcquisitionPipeline pipe{chip};
    const auto samples = pipe.acquire_uniform_block(pressure_at, 64);
    std::printf("pipeline_block\n");
    for (const auto& s : samples) std::printf("%lld\n", static_cast<long long>(s.code));
  }

  // 3) ModulatorBank: 4 decorrelated lanes, 1024 lockstep clocks; one hash
  //    line per lane over the raw bitstream.
  {
    analog::ModulatorBank bank{chip.modulator, 4};
    const std::vector<double> c_sense{95e-15, 104e-15, 112e-15, 99e-15};
    const std::vector<double> c_ref(4, 100e-15);
    constexpr std::size_t kClocks = 1024;
    std::vector<int> bits(4 * kClocks);
    bank.step_capacitive_block(c_sense.data(), c_ref.data(), bits.data(), kClocks);
    std::printf("modulator_bank\n");
    for (std::size_t k = 0; k < 4; ++k) {
      const std::vector<int> lane(bits.begin() + static_cast<std::ptrdiff_t>(k * kClocks),
                                  bits.begin() + static_cast<std::ptrdiff_t>((k + 1) * kClocks));
      std::printf("lane%zu %016llx\n", k,
                  static_cast<unsigned long long>(fnv1a_bits(lane)));
    }
  }

  // 4) Parallel array readout: 4 elements × 8 frames under a gradient field.
  {
    core::ArrayAcquisition array{chip};
    const auto out = array.acquire_block(
        [](double x_m, double, double t_s) { return pressure_at(t_s) + 4.0e7 * x_m; }, 8);
    std::printf("array_acquisition\n");
    for (std::size_t k = 0; k < out.size(); ++k) {
      for (const auto& s : out[k]) {
        std::printf("%zu %lld\n", k, static_cast<long long>(s.code));
      }
    }
  }
  return 0;
}
