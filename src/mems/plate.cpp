#include "src/mems/plate.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tono::mems {
namespace {

/// 1/0.00126 — Timoshenko's clamped-square-plate bending coefficient.
constexpr double kBendingCoefficient = 793.65;

/// Rayleigh-Ritz tension coefficient for the clamped-plate mode shape.
const double kTensionCoefficient = 1.5 * std::numbers::pi * std::numbers::pi;

/// Maier-Schneider large-deflection coefficient for square diaphragms
/// (1.58 in half-side-length convention → 25.3 for full side length).
constexpr double kCubicCoefficient = 25.3;

/// First-mode eigenvalue coefficient λ² for a clamped square plate.
constexpr double kClampedSquareLambdaSq = 35.99;

}  // namespace

SquarePlate::SquarePlate(PlateGeometry geometry) : geometry_(std::move(geometry)) {
  const double a = geometry_.side_length_m;
  if (a <= 0.0) throw std::invalid_argument{"SquarePlate: non-positive side length"};
  if (geometry_.stack.layers().empty()) {
    throw std::invalid_argument{"SquarePlate: empty layer stack"};
  }
  rigidity_ = geometry_.stack.flexural_rigidity();
  tension_ = geometry_.stack.residual_tension();
  const double a2 = a * a;
  const double a4 = a2 * a2;
  k1_ = kBendingCoefficient * rigidity_ / a4 + kTensionCoefficient * tension_ / a2;
  if (k1_ <= 0.0) {
    // Strongly compressive stacks would buckle; the model does not cover
    // post-buckling, so reject such configurations explicitly.
    throw std::invalid_argument{"SquarePlate: net stiffness non-positive (buckled membrane)"};
  }
  const double t = geometry_.stack.total_thickness_m();
  const double e_eff = geometry_.stack.effective_youngs_modulus();
  const double nu_eff = geometry_.stack.effective_poisson_ratio();
  k3_ = kCubicCoefficient * e_eff * t / ((1.0 - nu_eff) * a4);
}

double SquarePlate::center_deflection(double pressure_pa) const noexcept {
  if (pressure_pa == 0.0) return 0.0;
  // Solve k1 w + k3 w^3 = p for the single real root (k1, k3 > 0 → monotone).
  // Cardano, depressed cubic w^3 + (k1/k3) w - p/k3 = 0.
  const double p = k1_ / k3_;
  const double q = -pressure_pa / k3_;
  const double half_q = 0.5 * q;
  const double disc = half_q * half_q + (p / 3.0) * (p / 3.0) * (p / 3.0);
  // k1, k3 > 0 ⇒ disc > 0 always: one real root.
  const double sqrt_disc = std::sqrt(disc);
  const double u = std::cbrt(-half_q + sqrt_disc);
  const double v = std::cbrt(-half_q - sqrt_disc);
  return u + v;
}

double SquarePlate::deflection_at(double x_m, double y_m, double w0_m) const noexcept {
  const double a = geometry_.side_length_m;
  if (x_m < 0.0 || x_m > a || y_m < 0.0 || y_m > a) return 0.0;
  const double two_pi = 2.0 * std::numbers::pi;
  const double fx = 1.0 - std::cos(two_pi * x_m / a);
  const double fy = 1.0 - std::cos(two_pi * y_m / a);
  return 0.25 * w0_m * fx * fy;
}

double SquarePlate::compliance_at(double bias_pressure_pa) const noexcept {
  const double w0 = center_deflection(bias_pressure_pa);
  return 1.0 / (k1_ + 3.0 * k3_ * w0 * w0);
}

double SquarePlate::fundamental_resonance_hz() const noexcept {
  const double a = geometry_.side_length_m;
  const double rho_a = geometry_.stack.areal_density();
  if (rho_a <= 0.0) return 0.0;
  const double f_bending = kClampedSquareLambdaSq /
                           (2.0 * std::numbers::pi * a * a) *
                           std::sqrt(rigidity_ / rho_a);
  const double a2 = a * a;
  const double k1_no_tension = kBendingCoefficient * rigidity_ / (a2 * a2);
  return f_bending * std::sqrt(k1_ / k1_no_tension);
}

}  // namespace tono::mems
