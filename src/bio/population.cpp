#include "src/bio/population.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace tono::bio {
namespace {

/// Age-band cohort label (the roll-up key WardAggregator grades by).
std::string age_cohort(double age_years) {
  if (age_years < 40.0) return "age18-39";
  if (age_years < 60.0) return "age40-59";
  if (age_years < 75.0) return "age60-74";
  return "age75plus";
}

/// Retarget a preset profile's keyframes to a member's baseline: diastolic
/// is shifted, pulse pressure is scaled, heart rate is scaled. Shapes (the
/// transition timing) are the family's; levels are the member's. Pulse
/// pressure stays positive under scaling, so the result is always a valid
/// profile.
ScenarioProfile personalize(const ScenarioProfile& base, double dia_mmhg, double pp_mmhg,
                            double hr_bpm, std::string name) {
  const auto& frames = base.keyframes();
  const double base_dia = frames.front().diastolic_mmhg;
  const double base_pp = frames.front().systolic_mmhg - base_dia;
  const double base_hr = frames.front().heart_rate_bpm;
  const double dia_offset = dia_mmhg - base_dia;
  const double pp_ratio = pp_mmhg / base_pp;
  const double hr_ratio = hr_bpm / base_hr;
  std::vector<ScenarioKeyframe> out;
  out.reserve(frames.size());
  for (const auto& f : frames) {
    const double dia = std::max(f.diastolic_mmhg + dia_offset, 30.0);
    const double pp = (f.systolic_mmhg - f.diastolic_mmhg) * pp_ratio;
    const double hr = std::clamp(f.heart_rate_bpm * hr_ratio, 35.0, 245.0);
    out.push_back(ScenarioKeyframe{f.time_s, dia + pp, dia, hr});
  }
  return ScenarioProfile{std::move(out), std::move(name)};
}

}  // namespace

const char* to_string(ScenarioFamily family) noexcept {
  switch (family) {
    case ScenarioFamily::kRest: return "rest";
    case ScenarioFamily::kExercise: return "exercise";
    case ScenarioFamily::kHypotensive: return "hypotensive";
    case ScenarioFamily::kArrhythmia: return "arrhythmia";
    case ScenarioFamily::kCuffDrift: return "cuff-drift";
    case ScenarioFamily::kSensorAging: return "sensor-aging";
  }
  return "unknown";
}

std::shared_ptr<const ScenarioProfile> ScenarioConfig::make_profile() const {
  const double dia = pulse.diastolic_mmhg;
  const double pp = pulse.systolic_mmhg - pulse.diastolic_mmhg;
  const double hr = pulse.heart_rate_bpm;
  const double dur = scenario_duration_s;
  switch (family) {
    case ScenarioFamily::kRest:
      return std::make_shared<ScenarioProfile>(
          std::vector<ScenarioKeyframe>{
              ScenarioKeyframe{0.0, dia + pp, dia, hr},
              ScenarioKeyframe{dur, dia + pp, dia, hr},
          },
          "rest");
    case ScenarioFamily::kExercise:
      return std::make_shared<ScenarioProfile>(
          personalize(ScenarioProfile::exercise(dur), dia, pp, hr, "exercise"));
    case ScenarioFamily::kHypotensive:
      return std::make_shared<ScenarioProfile>(personalize(
          ScenarioProfile::hypotensive_episode(dur), dia, pp, hr, "hypotensive-episode"));
    case ScenarioFamily::kArrhythmia:
      return std::make_shared<ScenarioProfile>(
          personalize(ScenarioProfile::arrhythmia_train(dur), dia, pp, hr, "arrhythmia-train"));
    case ScenarioFamily::kCuffDrift:
      return std::make_shared<ScenarioProfile>(personalize(
          ScenarioProfile::cuff_recalibration_drift(dur), dia, pp, hr,
          "cuff-recalibration-drift"));
    case ScenarioFamily::kSensorAging:
      return std::make_shared<ScenarioProfile>(
          personalize(ScenarioProfile::sensor_aging(dur), dia, pp, hr, "sensor-aging"));
  }
  throw std::logic_error{"ScenarioConfig: unknown family"};
}

PopulationGenerator::PopulationGenerator(PopulationConfig config) : config_(config) {
  if (!(config_.age_min_years < config_.age_max_years)) {
    throw std::invalid_argument{"PopulationGenerator: age_min must be < age_max"};
  }
  if (config_.scenario_duration_s <= 0.0) {
    throw std::invalid_argument{"PopulationGenerator: scenario duration must be > 0"};
  }
  const double weights[] = {config_.weight_rest,       config_.weight_exercise,
                            config_.weight_hypotensive, config_.weight_arrhythmia,
                            config_.weight_cuff_drift,  config_.weight_sensor_aging};
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"PopulationGenerator: negative family weight"};
  }
}

ScenarioConfig PopulationGenerator::member(std::size_t index) const {
  // Exactly the SweepRunner trial-stream derivation: base → named stream →
  // per-index fork. Pure in (config, index) by construction.
  Rng rng = Rng{config_.seed}.fork_named("population").fork(index);

  ScenarioConfig m;
  m.member_index = index;
  m.scenario_duration_s = config_.scenario_duration_s;

  // --- Demographics → physiology (fixed draw order; see header contract).
  m.age_years = rng.uniform(config_.age_min_years, config_.age_max_years);
  m.cohort = age_cohort(m.age_years);
  const double age_frac =
      std::clamp((m.age_years - 18.0) / (90.0 - 18.0), 0.0, 1.0);
  m.stiffness = std::clamp(0.10 + 0.80 * age_frac + 0.12 * rng.gaussian(), 0.02, 0.98);

  // Baseline BP rises with stiffness, pulse pressure widens (aortic
  // stiffening), resting HR and HRV fall.
  double pp = std::clamp(34.0 + 28.0 * m.stiffness + 4.0 * rng.gaussian(), 25.0, 75.0);
  double dia = std::clamp(70.0 + 12.0 * m.stiffness + 5.0 * rng.gaussian(), 48.0, 95.0);
  double hr = std::clamp(77.0 - 10.0 * m.stiffness + 9.0 * rng.gaussian(), 45.0, 115.0);

  m.pulse.diastolic_mmhg = dia;
  m.pulse.systolic_mmhg = dia + pp;
  m.pulse.heart_rate_bpm = hr;
  m.pulse.hrv_jitter =
      std::clamp(0.050 - 0.035 * m.stiffness + 0.012 * rng.gaussian(), 0.005, 0.090);
  m.pulse.rsa_depth = std::clamp(0.040 - 0.025 * m.stiffness, 0.008, 0.050);
  // Stiff arteries reflect early and strongly (same mechanism as the
  // elderly_stiff preset, but continuous in the stiffness index).
  m.pulse.morphology.lobes[1].amplitude = 0.38 + 0.28 * m.stiffness;
  m.pulse.morphology.lobes[1].center_phase = 0.33 - 0.06 * m.stiffness;

  // --- Scenario family (weighted pick, one uniform draw).
  const std::array<double, kScenarioFamilyCount> weights = {
      config_.weight_rest,       config_.weight_exercise, config_.weight_hypotensive,
      config_.weight_arrhythmia, config_.weight_cuff_drift, config_.weight_sensor_aging};
  double total = 0.0;
  for (double w : weights) total += w;
  const double pick = rng.uniform() * total;
  m.family = ScenarioFamily::kRest;
  double acc = 0.0;
  for (std::size_t f = 0; f < weights.size(); ++f) {
    acc += weights[f];
    if (total > 0.0 && pick < acc) {
      m.family = static_cast<ScenarioFamily>(f);
      break;
    }
  }

  // --- Family- and member-specific colour. The draws below run for every
  // member (not just the families that use them) so the draw sequence —
  // and with it every later value — is independent of which family the
  // weights selected.
  const double af_draw = rng.uniform();
  const double motion_draw = rng.uniform();
  if (m.family == ScenarioFamily::kArrhythmia) {
    m.pulse.af_irregularity = 0.12 + 0.18 * af_draw;
    m.pulse.hrv_jitter = std::max(m.pulse.hrv_jitter, 0.06);
  }
  if (m.family == ScenarioFamily::kSensorAging) {
    m.pulse.drift_mmhg_per_sqrt_s = 0.30;  // an aging transducer drifts harder
  }

  m.artifacts.wander_mmhg_per_sqrt_s = 0.20 + 0.30 * motion_draw;
  m.artifacts.spike_rate_hz = 0.02 + 0.06 * motion_draw;
  m.enable_artifacts = config_.enable_artifacts;

  // --- Stream seeds, last: one per consumer.
  m.seed = rng.next_u64();
  m.pulse.seed = rng.next_u64();
  m.artifacts.seed = rng.next_u64();
  return m;
}

std::vector<ScenarioConfig> PopulationGenerator::generate(std::size_t count) const {
  std::vector<ScenarioConfig> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(member(i));
  return out;
}

}  // namespace tono::bio
