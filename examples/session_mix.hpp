// session_mix.hpp — the admission mix shared by ward_server and
// gateway_server. Both binaries must admit byte-identical session configs
// for the same (index, flags), because CI diffs their hospital snapshots:
// a loopback-gateway run must be bit-identical to a direct-ingest run
// (docs/GATEWAY.md "Determinism contract").
#pragma once

#include <cstddef>
#include <cstdlib>
#include <string>

#include "src/bio/pulse_generator.hpp"
#include "src/fleet/patient_session.hpp"

namespace tono::examples {

/// The admission mix: clinically distinct presets so a ward of any size has
/// quiet patients, alarm-worthy ones, and one scenario-driven crash.
inline fleet::SessionConfig session_mix(std::size_t index) {
  fleet::SessionConfig config;
  switch (index % 5) {
    case 0:
      break;  // normotensive at rest
    case 1:
      config.wrist.pulse = bio::PatientPresets::hypertensive();
      break;
    case 2:
      config.wrist.pulse = bio::PatientPresets::tachycardic();
      break;
    case 3:
      config.scenario = "hypotensive";  // the E10 crash a cuff would miss
      break;
    case 4:
      config.scenario = "exercise";
      break;
  }
  return config;
}

inline const char* mix_label(std::size_t index) {
  switch (index % 5) {
    case 0: return "rest";
    case 1: return "hypertensive";
    case 2: return "tachycardic";
    case 3: return "hypotensive-episode";
    case 4: return "exercise";
  }
  return "rest";
}

/// "--fault-plan contact=1,link=1,element=1[,unrecoverable=0.1]": per-session
/// event counts (and the unrecoverable probability) of the seeded schedule
/// each session generates from its own forked fault stream.
inline bool parse_fault_plan(const std::string& spec, fleet::FaultPlanConfig* plan,
                             std::string* error) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      *error = "--fault-plan: expected key=value, got '" + item + "'";
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    char* end = nullptr;
    const double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || v < 0.0) {
      *error = "--fault-plan: bad value in '" + item + "'";
      return false;
    }
    if (key == "contact") {
      plan->contact_loss_events = static_cast<std::size_t>(v);
    } else if (key == "link") {
      plan->link_bursts = static_cast<std::size_t>(v);
    } else if (key == "element") {
      plan->element_faults = static_cast<std::size_t>(v);
    } else if (key == "unrecoverable") {
      plan->unrecoverable_prob = v;
    } else {
      *error = "--fault-plan: unknown key '" + key +
               "' (want contact, link, element, unrecoverable)";
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace tono::examples
