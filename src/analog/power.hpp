// power.hpp — analytic power model of the sensor chip.
//
// §3.1: "The power consumption of the sensor chip is 11.5 mW at 5 V supply
// voltage for 128 kHz sampling frequency." The model decomposes that into
//   * static analog bias (two OTAs, comparator, bias/reference network):
//     current roughly ∝ Vdd-independent bias, power ∝ Vdd,
//   * dynamic switched-capacitor / clock / digital power ∝ f·C_eff·Vdd².
// The split is calibrated so the nominal point reproduces 11.5 mW, and the
// model then predicts the scaling trends around it (bench E2).
#pragma once

namespace tono::analog {

struct PowerModelConfig {
  /// Static analog bias current at nominal Vdd [A].
  double analog_bias_a{1.85e-3};
  /// Effective switched capacitance for dynamic power [F].
  double dynamic_capacitance_f{0.7e-9};
  /// Nominal operating point used for calibration checks.
  double nominal_vdd_v{5.0};
  double nominal_rate_hz{128000.0};
};

class PowerModel {
 public:
  explicit PowerModel(const PowerModelConfig& config = {});

  /// Total chip power at the given supply and sampling rate [W].
  [[nodiscard]] double total_w(double vdd_v, double sampling_rate_hz) const noexcept;

  [[nodiscard]] double static_w(double vdd_v) const noexcept;
  [[nodiscard]] double dynamic_w(double vdd_v, double sampling_rate_hz) const noexcept;

  /// Power at the paper's nominal operating point (should be ≈ 11.5 mW).
  [[nodiscard]] double nominal_w() const noexcept;

  /// Energy per output sample at an oversampling ratio [J].
  [[nodiscard]] double energy_per_conversion_j(double vdd_v, double sampling_rate_hz,
                                               double osr) const noexcept;

  [[nodiscard]] const PowerModelConfig& config() const noexcept { return config_; }

 private:
  PowerModelConfig config_;
};

}  // namespace tono::analog
