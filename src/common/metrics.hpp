// metrics.hpp — process-wide runtime observability for the simulator.
//
// The paper's headline numbers (SNR > 72 dB, 12 bit @ 1 kS/s, 11.5 mW) are
// measured quantities; operating the simulator as a service needs the same
// discipline applied to the runtime itself. This registry provides four
// instrument kinds — Counter, Gauge, fixed-bucket Histogram and Timer (fed
// by scoped TraceSpan objects on the monotonic clock) — plus JSONL and
// human-readable table exporters.
//
// Hot-path contract (enforced by tests/test_metrics.cpp):
//   * registration (name → instrument) takes a mutex once, at component
//     construction; callers cache the returned reference;
//   * every update is a relaxed atomic op — no locks, no allocation;
//   * instrumentation hooks fire at frame rate (1 kHz) and coarser only,
//     never inside the 128 kHz modulator clock loop;
//   * recording never feeds back into the signal path: modulator bit
//     streams and decimated outputs are bit-identical whether recording is
//     enabled or disabled (see set_enabled()).
//
// See docs/OBSERVABILITY.md for the instrument catalogue and formats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tono::metrics {

/// Global recording switch. Instruments stay registered while disabled;
/// updates become no-ops. Reads are relaxed atomic loads, so toggling is
/// safe at any time (intended for the bit-exactness regression test and for
/// benchmarking the instrumentation overhead itself).
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (set) or high-water-mark (record_max) scalar.
class Gauge {
 public:
  void set(double v) noexcept;
  /// Raises the gauge to `v` if larger; loses no update under concurrency.
  void record_max(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// overflow bucket catches the rest. Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Duration statistics (count / total / min / max, nanoseconds), fed by
/// TraceSpan or record_ns() directly.
class Timer {
 public:
  void record_ns(std::uint64_t ns) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  /// 0 when no observation has been recorded.
  [[nodiscard]] std::uint64_t min_ns() const noexcept;
  [[nodiscard]] std::uint64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_ns() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Scoped monotonic-clock timer: measures from construction to stop() (or
/// destruction) on std::chrono::steady_clock and records into a Timer.
class TraceSpan {
 public:
  explicit TraceSpan(Timer& timer) noexcept
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  ~TraceSpan() { stop(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Records the elapsed time; idempotent (the destructor then does nothing).
  void stop() noexcept;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Name → instrument registry. Registration (the *_named lookups) is
/// mutex-guarded get-or-create with stable addresses: the returned reference
/// lives as long as the registry, so components resolve their instruments
/// once at construction and update lock-free afterwards.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Bounds apply on first registration only; later calls with the same
  /// name return the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> upper_bounds);
  [[nodiscard]] Timer& timer(std::string_view name);

  /// Zeroes every registered instrument (registrations are kept).
  void reset_values();

  /// One JSON object per line, one line per instrument, sorted by name
  /// within each instrument kind (counters, gauges, histograms, timers).
  void export_jsonl(std::ostream& os) const;
  /// Aligned human-readable table, same ordering.
  void export_table(std::ostream& os) const;
  /// export_jsonl into `path` (truncating); false if the file cannot open.
  bool write_jsonl_file(const std::string& path) const;

  /// The process-wide registry every built-in instrumentation point uses.
  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mutex_;  ///< guards the maps, never the instruments
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

/// Canonical instrument names used by the built-in instrumentation points.
/// Kept in one place so exporters, dashboards and tests agree; the catalogue
/// is documented in docs/OBSERVABILITY.md.
namespace names {
// AcquisitionPipeline (frame rate, 1 kHz)
inline constexpr const char* kPipelineFrames = "pipeline.frames";
inline constexpr const char* kPipelineFramesBlock = "pipeline.frames_block";
inline constexpr const char* kPipelineFramesScalar = "pipeline.frames_scalar";
inline constexpr const char* kPipelineMuxFallbacks = "pipeline.mux_fallbacks";
// DeltaSigmaModulator (published by the pipeline at frame rate)
inline constexpr const char* kModulatorPeakState1V = "modulator.peak_state1_v";
inline constexpr const char* kModulatorPeakState2V = "modulator.peak_state2_v";
inline constexpr const char* kModulatorClipCount = "modulator.clip_count";
/// Noise-plan frames generated by the block path (one per 128-clock frame).
inline constexpr const char* kModulatorNoisePlanFills = "modulator.noise_plan_fills";
// ModulatorBank
inline constexpr const char* kModulatorBankLanes = "modulator.bank_lanes";
inline constexpr const char* kBankStepBlock = "bank.step_block";
/// Kernel lane width the bank dispatched to (4 = AVX2, 2 = NEON, 1 = scalar).
inline constexpr const char* kBankSimdWidth = "bank.simd_width";
// DecimationChain (output rate, 1 kHz)
inline constexpr const char* kDecimationSamples = "decimation.samples";
inline constexpr const char* kDecimationFirSaturations = "decimation.fir_saturations";
// SweepRunner / ThreadPool
inline constexpr const char* kSweepRuns = "sweep.runs";
inline constexpr const char* kSweepTrials = "sweep.trials";
inline constexpr const char* kSweepTrialsPerStrand = "sweep.trials_per_strand";
inline constexpr const char* kSweepRunWall = "sweep.run_wall";
inline constexpr const char* kSweepThreads = "sweep.threads";
inline constexpr const char* kPoolTasksSubmitted = "threadpool.tasks_submitted";
inline constexpr const char* kPoolTasksExecuted = "threadpool.tasks_executed";
inline constexpr const char* kPoolPeakQueueDepth = "threadpool.peak_queue_depth";
/// Instantaneous queue depth (set on every submit/claim under the queue
/// lock); the fleet scheduler reads this to spot a starved batch.
inline constexpr const char* kPoolQueueDepth = "threadpool.queue_depth";
// Telemetry link (FrameDecoder / LinkStats)
inline constexpr const char* kTelemetryFramesOk = "telemetry.frames_ok";
inline constexpr const char* kTelemetryCrcErrors = "telemetry.crc_errors";
inline constexpr const char* kTelemetryResyncs = "telemetry.resyncs";
inline constexpr const char* kTelemetryLostFrames = "telemetry.lost_frames";
// BloodPressureMonitor / StreamingMonitor
inline constexpr const char* kMonitorSessions = "monitor.sessions";
inline constexpr const char* kMonitorBeats = "monitor.beats";
inline constexpr const char* kMonitorQualityRejections = "monitor.quality_rejections";
inline constexpr const char* kMonitorRescans = "monitor.rescans";
inline constexpr const char* kMonitorLastSqi = "monitor.last_sqi";
inline constexpr const char* kMonitorSessionWall = "monitor.session_wall";
inline constexpr const char* kMonitorAlarmsRaised = "monitor.alarms_raised";
inline constexpr const char* kMonitorAlarmLatencyS = "monitor.alarm_latency_s";
// Fleet serving layer (FleetScheduler / PatientSession / WardAggregator;
// see docs/FLEET.md)
inline constexpr const char* kFleetSessionsAdmitted = "fleet.sessions_admitted";
inline constexpr const char* kFleetSessionsDischarged = "fleet.sessions_discharged";
inline constexpr const char* kFleetSessionsQuarantined = "fleet.sessions_quarantined";
inline constexpr const char* kFleetBatches = "fleet.batches";
inline constexpr const char* kFleetFrames = "fleet.frames";
inline constexpr const char* kFleetBatchWall = "fleet.batch_wall";
inline constexpr const char* kFleetSessionsActive = "fleet.sessions_active";
inline constexpr const char* kFleetRingDrops = "fleet.ring_drops";
inline constexpr const char* kFleetRingBlocks = "fleet.ring_blocks";
inline constexpr const char* kFleetRecoveries = "fleet.recoveries";
inline constexpr const char* kFleetRetired = "fleet.retired";
inline constexpr const char* kFleetFaultsInjected = "fleet.faults_injected";
inline constexpr const char* kFleetCheckpointsWritten = "fleet.checkpoints_written";
inline constexpr const char* kFleetCheckpointsRestored = "fleet.checkpoints_restored";
inline constexpr const char* kFleetCheckpointsRejected = "fleet.checkpoints_rejected";
inline constexpr const char* kWardCodesConsumed = "ward.codes_consumed";
inline constexpr const char* kWardEventsConsumed = "ward.events_consumed";
inline constexpr const char* kWardAlarmsActive = "ward.alarms_active";
inline constexpr const char* kWardEscalations = "ward.escalations";
// Hospital sharding layer (HospitalScheduler / AggregationTree /
// AsyncSnapshotWriter; see docs/FLEET.md "Sharding")
inline constexpr const char* kHospitalEpochs = "hospital.epochs";
inline constexpr const char* kHospitalSnapshotsWritten = "hospital.snapshots_written";
inline constexpr const char* kHospitalSnapshotsSkipped = "hospital.snapshots_skipped";
inline constexpr const char* kHospitalShards = "hospital.shards";
inline constexpr const char* kHospitalShardsActive = "hospital.shards_active";
inline constexpr const char* kHospitalCodesConsumed = "hospital.codes_consumed";
inline constexpr const char* kHospitalAlarmsActive = "hospital.alarms_active";
inline constexpr const char* kHospitalSnapshotWall = "hospital.snapshot_wall";
inline constexpr const char* kShardMirrorPublishes = "shard.mirror_publishes";
inline constexpr const char* kShardEpochWall = "shard.epoch_wall";
// Streaming gateway (GatewayMux/GatewayDemux/SessionRecorder/SessionReplayer;
// see docs/GATEWAY.md)
inline constexpr const char* kGatewayFramesMuxed = "gateway.frames_muxed";
inline constexpr const char* kGatewayFramesDemuxed = "gateway.frames_demuxed";
inline constexpr const char* kGatewayBytesSent = "gateway.bytes_sent";
inline constexpr const char* kGatewayBytesReceived = "gateway.bytes_received";
inline constexpr const char* kGatewayBackpressureBlocks = "gateway.backpressure_blocks";
inline constexpr const char* kGatewayEnvelopesDropped = "gateway.envelopes_dropped";
inline constexpr const char* kGatewayCodesDropped = "gateway.codes_dropped";
inline constexpr const char* kGatewayCrcErrors = "gateway.crc_errors";
inline constexpr const char* kGatewayResyncs = "gateway.resyncs";
inline constexpr const char* kGatewayLostEnvelopes = "gateway.lost_envelopes";
inline constexpr const char* kGatewayChannels = "gateway.channels";
inline constexpr const char* kGatewayRecorderBytes = "gateway.recorder_bytes";
inline constexpr const char* kGatewayReplaySpeedup = "gateway.replay_speedup";
// Validation harness (SessionValidator / validation_report; see
// docs/VALIDATION.md)
inline constexpr const char* kValidationSessions = "validation.sessions_scored";
inline constexpr const char* kValidationBeatsMatched = "validation.beats_matched";
inline constexpr const char* kValidationBeatsUnmatched = "validation.beats_unmatched";
inline constexpr const char* kValidationAamiPass = "validation.aami_pass";
inline constexpr const char* kValidationAamiFail = "validation.aami_fail";
inline constexpr const char* kValidationLastSysBias = "validation.last_sys_bias_mmhg";
inline constexpr const char* kValidationLastSysSd = "validation.last_sys_sd_mmhg";
}  // namespace names

/// Pre-registers the full canonical instrument set in `r` (all zero until
/// first touched), so a snapshot covers every subsystem even when the run
/// exercised only part of the signal chain. Idempotent.
void register_standard_instruments(Registry& r = Registry::global());

}  // namespace tono::metrics
