file(REMOVE_RECURSE
  "CMakeFiles/test_pulse_generator.dir/test_pulse_generator.cpp.o"
  "CMakeFiles/test_pulse_generator.dir/test_pulse_generator.cpp.o.d"
  "test_pulse_generator"
  "test_pulse_generator.pdb"
  "test_pulse_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pulse_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
