#include "src/core/streaming_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/checkpoint.hpp"

namespace tono::core {

std::string to_string(AlarmKind kind) {
  switch (kind) {
    case AlarmKind::kSystolicLow: return "systolic-low";
    case AlarmKind::kSystolicHigh: return "systolic-high";
    case AlarmKind::kDiastolicLow: return "diastolic-low";
    case AlarmKind::kDiastolicHigh: return "diastolic-high";
    case AlarmKind::kRateLow: return "rate-low";
    case AlarmKind::kRateHigh: return "rate-high";
  }
  return "unknown";
}

StreamingMonitor::StreamingMonitor(const StreamingConfig& config) : config_(config) {
  if (config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument{"StreamingMonitor: sample rate must be > 0"};
  }
  if (config_.window_s < 3.0 || config_.hop_s <= 0.0 || config_.hop_s > config_.window_s) {
    throw std::invalid_argument{"StreamingMonitor: need window >= 3 s and 0 < hop <= window"};
  }
  if (config_.limits.confirm_beats == 0) {
    throw std::invalid_argument{"StreamingMonitor: confirm_beats must be > 0"};
  }
  window_samples_ = static_cast<std::size_t>(config_.window_s * config_.sample_rate_hz);
  hop_samples_ = static_cast<std::size_t>(config_.hop_s * config_.sample_rate_hz);
  buffer_.reserve(window_samples_);
  alarm_states_.assign(6, AlarmState{});
  auto& reg = metrics::Registry::global();
  alarms_raised_metric_ = &reg.counter(metrics::names::kMonitorAlarmsRaised);
  alarm_latency_gauge_ = &reg.gauge(metrics::names::kMonitorAlarmLatencyS);
  config_.detector.sample_rate_hz = config_.sample_rate_hz;
  config_.quality.detector = config_.detector;
}

void StreamingMonitor::serialize(CheckpointWriter& out) const {
  out.section("streaming_monitor");
  out.size(buffer_.size());
  for (double v : buffer_) out.f64(v);
  out.size(since_hop_);
  out.f64(time_s_);
  out.f64(buffer_start_s_);
  out.f64(last_emitted_beat_s_);
  out.size(beats_emitted_);
  out.f64(last_rate_bpm_);
  out.size(alarm_states_.size());
  for (const auto& state : alarm_states_) {
    out.size(state.violations);
    out.size(state.recoveries);
    out.boolean(state.active);
    out.f64(state.first_violation_s);
  }
}

void StreamingMonitor::restore(CheckpointReader& in) {
  in.section("streaming_monitor");
  const std::size_t buffered = in.size();
  if (buffered > window_samples_) {
    throw CheckpointError{"streaming monitor checkpoint window overflows config"};
  }
  buffer_.resize(buffered);
  for (auto& v : buffer_) v = in.f64();
  since_hop_ = in.size();
  time_s_ = in.f64();
  buffer_start_s_ = in.f64();
  last_emitted_beat_s_ = in.f64();
  beats_emitted_ = in.size();
  last_rate_bpm_ = in.f64();
  if (in.size() != alarm_states_.size()) {
    throw CheckpointError{"streaming monitor checkpoint alarm count mismatch"};
  }
  for (auto& state : alarm_states_) {
    state.violations = in.size();
    state.recoveries = in.size();
    state.active = in.boolean();
    state.first_violation_s = in.f64();
  }
}

void StreamingMonitor::push(double mmhg) {
  buffer_.push_back(mmhg);
  time_s_ += 1.0 / config_.sample_rate_hz;
  if (++since_hop_ >= hop_samples_ && buffer_.size() >= window_samples_) {
    since_hop_ = 0;
    // Compact once per hop (amortized O(1) per sample): keep exactly the
    // trailing analysis window.
    if (buffer_.size() > window_samples_) {
      const std::size_t excess = buffer_.size() - window_samples_;
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(excess));
      buffer_start_s_ += static_cast<double>(excess) / config_.sample_rate_hz;
    }
    process_window();
  }
}

void StreamingMonitor::push(const std::vector<double>& mmhg) {
  for (double v : mmhg) push(v);
}

void StreamingMonitor::process_window() {
  const BeatDetector detector{config_.detector};
  const auto analysis = detector.analyze(buffer_, buffer_start_s_);

  QualityReport quality;
  {
    const SignalQualityAssessor assessor{config_.quality};
    quality = assessor.assess(buffer_);
    if (quality_cb_) quality_cb_(quality, time_s_);
  }
  if (config_.gate_on_quality && !quality.usable) return;

  for (const auto& beat : analysis.beats) {
    // Emit each beat exactly once across overlapping windows. Skip beats in
    // the last second of the window: their peak/foot search windows may be
    // truncated, and the next hop will see them completely.
    if (beat.upstroke_s <= last_emitted_beat_s_ + 0.05) continue;
    if (beat.upstroke_s > buffer_start_s_ + config_.window_s - 1.0) continue;
    last_emitted_beat_s_ = beat.upstroke_s;
    ++beats_emitted_;
    if (beat_cb_) beat_cb_(beat);
    last_rate_bpm_ = analysis.heart_rate_bpm;
    evaluate_alarms(beat, analysis.heart_rate_bpm);
  }
}

void StreamingMonitor::check_limit(AlarmKind kind, double value, double low, double high,
                                   double time_s) {
  auto& state = alarm_states_[static_cast<std::size_t>(kind)];
  const bool violating = (kind == AlarmKind::kSystolicLow ||
                          kind == AlarmKind::kDiastolicLow || kind == AlarmKind::kRateLow)
                             ? value < low
                             : value > high;
  if (violating) {
    state.recoveries = 0;
    if (!state.active) {
      if (state.violations == 0) state.first_violation_s = time_s;
      if (++state.violations >= config_.limits.confirm_beats) {
        state.active = true;
        state.violations = 0;
        alarms_raised_metric_->add(1);
        alarm_latency_gauge_->set(time_s - state.first_violation_s);
        if (alarm_cb_) alarm_cb_(AlarmEvent{kind, true, time_s, value});
      }
    }
  } else {
    state.violations = 0;
    if (state.active && ++state.recoveries >= config_.limits.confirm_beats) {
      state.active = false;
      state.recoveries = 0;
      if (alarm_cb_) alarm_cb_(AlarmEvent{kind, false, time_s, value});
    }
  }
}

void StreamingMonitor::evaluate_alarms(const Beat& beat, double rate_bpm) {
  const auto& lim = config_.limits;
  check_limit(AlarmKind::kSystolicLow, beat.systolic_value, lim.systolic_low_mmhg, 1e9,
              beat.peak_s);
  check_limit(AlarmKind::kSystolicHigh, beat.systolic_value, -1e9, lim.systolic_high_mmhg,
              beat.peak_s);
  check_limit(AlarmKind::kDiastolicLow, beat.diastolic_value, lim.diastolic_low_mmhg, 1e9,
              beat.foot_s);
  check_limit(AlarmKind::kDiastolicHigh, beat.diastolic_value, -1e9,
              lim.diastolic_high_mmhg, beat.foot_s);
  if (rate_bpm > 0.0) {
    check_limit(AlarmKind::kRateLow, rate_bpm, lim.rate_low_bpm, 1e9, beat.peak_s);
    check_limit(AlarmKind::kRateHigh, rate_bpm, -1e9, lim.rate_high_bpm, beat.peak_s);
  }
}

bool StreamingMonitor::alarm_active(AlarmKind kind) const {
  return alarm_states_[static_cast<std::size_t>(kind)].active;
}

}  // namespace tono::core
