# Empty dependencies file for test_holddown.
# This may be replaced when dependencies are built.
