#include "src/dsp/biquad.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>
#include <string>

#include "src/common/checkpoint.hpp"

namespace tono::dsp {
namespace {

void check_freq(double f, double fs, const char* who) {
  if (f <= 0.0 || f >= fs / 2.0) {
    throw std::invalid_argument{std::string{who} + ": frequency must be in (0, fs/2)"};
  }
}

}  // namespace

double Biquad::push(double x) noexcept {
  const double y = b0_ * x + s1_;
  s1_ = b1_ * x - a1_ * y + s2_;
  s2_ = b2_ * x - a2_ * y;
  return y;
}

void Biquad::serialize(CheckpointWriter& out) const {
  out.section("biquad");
  out.f64(s1_);
  out.f64(s2_);
}

void Biquad::restore(CheckpointReader& in) {
  in.section("biquad");
  s1_ = in.f64();
  s2_ = in.f64();
}

double Biquad::magnitude_at(double freq_hz, double sample_rate_hz) const noexcept {
  const double w = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
  const std::complex<double> z{std::cos(w), std::sin(w)};
  const std::complex<double> z1 = 1.0 / z;
  const std::complex<double> z2 = z1 * z1;
  const std::complex<double> num = b0_ + b1_ * z1 + b2_ * z2;
  const std::complex<double> den = 1.0 + a1_ * z1 + a2_ * z2;
  return std::abs(num / den);
}

Biquad Biquad::lowpass(double cutoff_hz, double sample_rate_hz) {
  check_freq(cutoff_hz, sample_rate_hz, "Biquad::lowpass");
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz;
  const double q = 1.0 / std::sqrt(2.0);  // Butterworth
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad{(1.0 - cw) / 2.0 / a0, (1.0 - cw) / a0, (1.0 - cw) / 2.0 / a0,
                -2.0 * cw / a0, (1.0 - alpha) / a0};
}

Biquad Biquad::highpass(double cutoff_hz, double sample_rate_hz) {
  check_freq(cutoff_hz, sample_rate_hz, "Biquad::highpass");
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz;
  const double q = 1.0 / std::sqrt(2.0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad{(1.0 + cw) / 2.0 / a0, -(1.0 + cw) / a0, (1.0 + cw) / 2.0 / a0,
                -2.0 * cw / a0, (1.0 - alpha) / a0};
}

Biquad Biquad::bandpass(double center_hz, double q, double sample_rate_hz) {
  check_freq(center_hz, sample_rate_hz, "Biquad::bandpass");
  if (q <= 0.0) throw std::invalid_argument{"Biquad::bandpass: q must be > 0"};
  const double w0 = 2.0 * std::numbers::pi * center_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad{alpha / a0, 0.0, -alpha / a0, -2.0 * cw / a0, (1.0 - alpha) / a0};
}

Biquad Biquad::notch(double center_hz, double q, double sample_rate_hz) {
  check_freq(center_hz, sample_rate_hz, "Biquad::notch");
  if (q <= 0.0) throw std::invalid_argument{"Biquad::notch: q must be > 0"};
  const double w0 = 2.0 * std::numbers::pi * center_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad{1.0 / a0, -2.0 * cw / a0, 1.0 / a0, -2.0 * cw / a0, (1.0 - alpha) / a0};
}

double BiquadCascade::push(double x) noexcept {
  for (auto& s : sections_) x = s.push(x);
  return x;
}

std::vector<double> BiquadCascade::process(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(push(x));
  return out;
}

void BiquadCascade::reset() noexcept {
  for (auto& s : sections_) s.reset();
}

void BiquadCascade::serialize(CheckpointWriter& out) const {
  out.section("biquad_cascade");
  out.size(sections_.size());
  for (const auto& s : sections_) s.serialize(out);
}

void BiquadCascade::restore(CheckpointReader& in) {
  in.section("biquad_cascade");
  if (in.size() != sections_.size()) {
    throw CheckpointError{"biquad cascade checkpoint section count mismatch"};
  }
  for (auto& s : sections_) s.restore(in);
}

double BiquadCascade::magnitude_at(double freq_hz, double sample_rate_hz) const noexcept {
  double mag = 1.0;
  for (const auto& s : sections_) mag *= s.magnitude_at(freq_hz, sample_rate_hz);
  return mag;
}

}  // namespace tono::dsp
