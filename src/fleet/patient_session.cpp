#include "src/fleet/patient_session.hpp"

#include <stdexcept>
#include <utility>

#include "src/bio/cuff.hpp"
#include "src/core/quality.hpp"
#include "src/core/scan.hpp"

namespace tono::fleet {
namespace {

/// Per-session stream decorrelation: every random consumer in the slice
/// forks its own stream from the session seed, so two sessions with
/// different seeds never share a draw — and a session's draws are identical
/// whether it runs solo or inside a 64-session fleet.
struct DerivedSeeds {
  std::uint64_t chip;
  std::uint64_t modulator;
  std::uint64_t pulse;
  std::uint64_t artifacts;
  std::uint64_t cuff;
};

DerivedSeeds derive_seeds(std::uint64_t session_seed) {
  Rng root{session_seed};
  return DerivedSeeds{
      .chip = root.fork_named("chip").next_u64(),
      .modulator = root.fork_named("modulator").next_u64(),
      .pulse = root.fork_named("pulse").next_u64(),
      .artifacts = root.fork_named("artifacts").next_u64(),
      .cuff = root.fork_named("cuff").next_u64(),
  };
}

std::shared_ptr<const bio::ScenarioProfile> make_scenario(const std::string& name) {
  if (name == "rest") return nullptr;  // static setpoints
  if (name == "exercise") {
    return std::make_shared<bio::ScenarioProfile>(bio::ScenarioProfile::exercise());
  }
  if (name == "hypotensive") {
    return std::make_shared<bio::ScenarioProfile>(
        bio::ScenarioProfile::hypotensive_episode());
  }
  throw std::invalid_argument{"PatientSession: unknown scenario '" + name + "'"};
}

}  // namespace

std::string to_string(SessionState state) {
  switch (state) {
    case SessionState::kAdmitted: return "admitted";
    case SessionState::kRunning: return "running";
    case SessionState::kPaused: return "paused";
    case SessionState::kDischarged: return "discharged";
    case SessionState::kQuarantined: return "quarantined";
  }
  return "unknown";
}

PatientSession::PatientSession(std::uint32_t id, SessionConfig config)
    : id_(id),
      config_(std::move(config)),
      codes_(config_.code_ring_capacity),
      events_(config_.event_ring_capacity) {
  const DerivedSeeds seeds = derive_seeds(config_.seed);
  config_.chip.seed = seeds.chip;
  config_.chip.modulator.seed = seeds.modulator;
  config_.wrist.pulse.seed = seeds.pulse;
  config_.wrist.artifacts.seed = seeds.artifacts;
  config_.wrist.scenario = make_scenario(config_.scenario);
  inner_ = std::make_unique<core::BloodPressureMonitor>(config_.chip, config_.wrist);
  field_ = inner_->contact_field();
}

PatientSession::~PatientSession() = default;

double PatientSession::output_rate_hz() const noexcept {
  return inner_->pipeline().output_rate_hz();
}

double PatientSession::stream_time_s() const noexcept {
  return static_cast<double>(frames_produced_) / output_rate_hz();
}

void PatientSession::admit() {
  if (admitted_) return;
  auto& pipeline = inner_->pipeline();
  if (config_.localize) {
    (void)core::ScanController{}.scan(pipeline, field_);
  }

  // Cuff-anchored calibration (§3.2), but on the block-mode acquisition
  // path: admission must stay cheap enough to run 64 of them — the scalar
  // path BloodPressureMonitor::calibrate uses re-evaluates the contact
  // field every 128 kHz clock, ~OSR× more field work for the same window.
  bio::CuffConfig cuff_config;
  cuff_config.seed = derive_seeds(config_.seed).cuff;
  bio::OscillometricCuff cuff{cuff_config};
  const auto reading =
      cuff.measure(config_.wrist.pulse.systolic_mmhg, config_.wrist.pulse.diastolic_mmhg,
                   config_.wrist.pulse.heart_rate_bpm);
  if (!reading.valid) {
    throw std::runtime_error{"PatientSession: cuff measurement failed"};
  }

  const auto n =
      static_cast<std::size_t>(config_.calibration_window_s * pipeline.output_rate_hz());
  const auto samples = pipeline.acquire_block(field_, n);
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.value);

  core::BeatDetectorConfig det;
  det.sample_rate_hz = pipeline.output_rate_hz();
  if (config_.enforce_quality) {
    core::QualityConfig qc;
    qc.detector = det;
    const auto quality = core::SignalQualityAssessor{qc}.assess(values);
    if (!quality.usable) {
      throw std::runtime_error{
          "PatientSession: calibration window has no usable pulse signal (SQI " +
          std::to_string(quality.sqi) + ")"};
    }
  }
  calibration_ = core::TwoPointCalibration::from_waveform(
      values, det, reading.systolic_mmhg, reading.diastolic_mmhg);

  config_.streaming.sample_rate_hz = pipeline.output_rate_hz();
  stream_ = std::make_unique<core::StreamingMonitor>(config_.streaming);
  stream_->on_beat([this](const core::Beat& b) {
    publish_event_(FleetEvent{.kind = FleetEventKind::kBeat,
                              .session_id = id_,
                              .time_s = b.peak_s,
                              .value_a = b.systolic_value,
                              .value_b = b.diastolic_value});
  });
  stream_->on_alarm([this](const core::AlarmEvent& a) {
    publish_event_(FleetEvent{.kind = FleetEventKind::kAlarm,
                              .session_id = id_,
                              .alarm_kind = a.kind,
                              .flag = a.active,
                              .time_s = a.time_s,
                              .value_a = a.value});
  });
  stream_->on_quality([this](const core::QualityReport& q, double t_s) {
    publish_event_(FleetEvent{.kind = FleetEventKind::kQuality,
                              .session_id = id_,
                              .flag = q.usable,
                              .time_s = t_s,
                              .value_a = q.sqi});
  });
  admitted_ = true;
}

void PatientSession::step(std::size_t frames) {
  if (!admitted_) admit();
  if (frames == 0) return;
  auto& pipeline = inner_->pipeline();
  const auto samples = pipeline.acquire_block(field_, frames);
  for (const auto& s : samples) {
    (void)codes_.push(static_cast<std::int16_t>(s.code), config_.code_policy);
    // The streaming monitor's callbacks fire inside push(): beats and
    // alarms land in the events ring with bounded latency (one hop).
    stream_->push(calibration_.to_mmhg(s.value));
  }
  frames_produced_ += frames;
}

void PatientSession::publish_event_(const FleetEvent& event) {
  (void)events_.push(event, config_.event_policy);
}

}  // namespace tono::fleet
