// pipeline.hpp — the complete on-chip signal path of Fig. 3.
//
// contact pressure → membrane capacitance → analog mux → ΔΣ modulator →
// (external) SINC³ + FIR decimation → 12-bit samples at 1 kS/s.
//
// The pipeline is clocked at the modulator rate (128 kHz); every
// `total_decimation` clocks one output sample emerges, exactly as on the
// FPGA-attached demonstrator.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "src/analog/modulator.hpp"
#include "src/analog/modulator_bank.hpp"
#include "src/analog/mux.hpp"
#include "src/common/metrics.hpp"
#include "src/core/sensor_array.hpp"
#include "src/dsp/decimation.hpp"

namespace tono::core {

/// Contact pressure [Pa] at a point on the chip surface at a given time.
/// x/y are die coordinates relative to the array center.
using ContactField = std::function<double(double x_m, double y_m, double t_s)>;

class AcquisitionPipeline {
 public:
  explicit AcquisitionPipeline(const ChipConfig& config);

  /// Routes element (row, col) to the modulator (Fig. 4 row/column mux).
  void select(std::size_t row, std::size_t col);

  [[nodiscard]] std::size_t selected_row() const noexcept { return mux_.selected_row(); }
  [[nodiscard]] std::size_t selected_col() const noexcept { return mux_.selected_col(); }

  /// One modulator clock: samples the selected element under the given
  /// contact pressure. Returns a decimated sample every OSR clocks.
  [[nodiscard]] std::optional<dsp::DecimatedSample> clock(double contact_pressure_pa);

  /// One output frame — `total_decimation` modulator clocks — at a constant
  /// contact pressure; returns the frame's single output sample. Bit-identical
  /// to that many scalar clock() calls at the same pressure: the capacitance
  /// lookup, temperature response and mux settling check are hoisted out of
  /// the clock loop, the modulator runs its fused block step, and the
  /// decimation chain consumes the whole frame at once. The first frame after
  /// select() (mux transient still live) transparently falls back to the
  /// scalar path.
  [[nodiscard]] dsp::DecimatedSample clock_block(double contact_pressure_pa);

  /// Runs until `n_out` output samples are produced, evaluating the contact
  /// field at the selected element's position each clock.
  [[nodiscard]] std::vector<dsp::DecimatedSample> acquire(const ContactField& field,
                                                          std::size_t n_out);

  /// Same, with a spatially uniform pressure-vs-time function.
  [[nodiscard]] std::vector<dsp::DecimatedSample> acquire_uniform(
      const std::function<double(double)>& pressure_pa_of_t, std::size_t n_out);

  /// Block-mode acquire: evaluates the contact field once per output frame
  /// (piecewise-constant pressure over each 1 kHz output period) instead of
  /// once per 128 kHz clock. Several times faster than acquire(); not
  /// bit-identical to it, since acquire() re-samples the field every clock —
  /// physically the two differ by sub-sample pressure motion within one
  /// output period.
  [[nodiscard]] std::vector<dsp::DecimatedSample> acquire_block(const ContactField& field,
                                                                std::size_t n_out);

  /// Same, with a spatially uniform pressure-vs-time function.
  [[nodiscard]] std::vector<dsp::DecimatedSample> acquire_uniform_block(
      const std::function<double(double)>& pressure_pa_of_t, std::size_t n_out);

  /// Resets modulator, decimation filter and time (array state is static).
  void reset();

  [[nodiscard]] double clock_rate_hz() const noexcept;
  [[nodiscard]] double output_rate_hz() const noexcept;
  [[nodiscard]] double time_s() const noexcept { return time_s_; }

  /// Capacitance difference corresponding to a full-scale output.
  [[nodiscard]] double delta_c_full_scale() const noexcept {
    return modulator_.full_scale_delta_c();
  }

  /// Switches the modulator's feedback-capacitor bank (§4 resolution knob).
  /// Returns the ratio new/old full scale, which is also the factor an
  /// existing calibration gain must be multiplied by.
  double set_feedback_capacitor(double c_fb1_f);

  /// Runtime element-fault injection (fleet fault plans): the membrane at
  /// (row, col) fails mid-run. If the faulted element is the selected one,
  /// readout continues at its (now pressure-independent) fault capacitance
  /// until the caller re-routes via select().
  void inject_element_fault(std::size_t row, std::size_t col, ElementFault fault) {
    array_.inject_fault(row, col, fault);
  }

  /// Die temperature [K]; body contact warms the chip and drifts the
  /// membrane capacitance through its tempco.
  void set_temperature(double kelvin) noexcept { temperature_k_ = kelvin; }
  [[nodiscard]] double temperature_k() const noexcept { return temperature_k_; }

  [[nodiscard]] const SensorArray& array() const noexcept { return array_; }
  [[nodiscard]] analog::DeltaSigmaModulator& modulator() noexcept { return modulator_; }
  [[nodiscard]] const dsp::DecimationChain& decimation() const noexcept { return chain_; }
  [[nodiscard]] const ChipConfig& config() const noexcept { return config_; }

  /// Checkpointing: array fault state, mux, modulator (including a
  /// runtime-switched feedback capacitor), decimation chain, clock time and
  /// mux-transient bookkeeping. Per-frame scratch is transient.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  /// Frame-rate (1 kHz) instrumentation hook: counts the produced frame and
  /// publishes the modulator's saturation telemetry as gauges. Never called
  /// from the 128 kHz clock loop itself — only when a sample emerges.
  void record_frame_(bool block_path);

  ChipConfig config_;
  SensorArray array_;
  analog::AnalogMux mux_;
  analog::DeltaSigmaModulator modulator_;
  dsp::DecimationChain chain_;
  double time_s_{0.0};
  double last_switch_s_{0.0};
  double last_capacitance_{0.0};
  double temperature_k_{300.0};
  std::vector<int> bit_scratch_;  ///< per-frame modulator bits for clock_block
  // Observability (resolved once at construction; lock-free updates at
  // frame rate). Shared across pipeline instances: the gauges aggregate as
  // process-wide peaks.
  metrics::Counter* frames_metric_;
  metrics::Counter* frames_block_metric_;
  metrics::Counter* frames_scalar_metric_;
  metrics::Counter* mux_fallbacks_metric_;
  metrics::Gauge* peak_state1_gauge_;
  metrics::Gauge* peak_state2_gauge_;
  metrics::Gauge* clip_count_gauge_;
};

/// Parallel readout of the whole array: one ΔΣ modulator lane per element
/// plus one decimation chain per lane, stepped in lockstep by a
/// ModulatorBank. This is the §4 scaling direction — replacing the Fig. 4
/// row/column mux with per-element converters — so unlike
/// AcquisitionPipeline there is no mux and no element switching: every
/// element converts continuously and a full array image emerges every output
/// period instead of every rows·cols periods.
///
/// Lane k reads element k (row-major). Per-lane modulator seeds are
/// decorrelated from ChipConfig::modulator.seed; lane 0 keeps it, so lane 0
/// is bit-identical to a single converter (modulator + decimation chain, no
/// mux) reading element 0. Pressure is evaluated per element at each frame
/// start and held for the frame, exactly like
/// AcquisitionPipeline::acquire_block.
class ArrayAcquisition {
 public:
  explicit ArrayAcquisition(const ChipConfig& config);

  /// One output frame for every element: `out` receives size() samples,
  /// element-indexed row-major.
  void acquire_frame(const ContactField& field, dsp::DecimatedSample* out);

  /// `n_out` frames; result[k][i] is element k's i-th output sample.
  [[nodiscard]] std::vector<std::vector<dsp::DecimatedSample>> acquire_block(
      const ContactField& field, std::size_t n_out);

  void reset();

  [[nodiscard]] std::size_t size() const noexcept { return bank_.lanes(); }
  [[nodiscard]] double clock_rate_hz() const noexcept {
    return config_.modulator.sampling_rate_hz;
  }
  [[nodiscard]] double output_rate_hz() const noexcept;
  [[nodiscard]] double time_s() const noexcept { return time_s_; }
  void set_temperature(double kelvin) noexcept { temperature_k_ = kelvin; }
  [[nodiscard]] const SensorArray& array() const noexcept { return array_; }
  [[nodiscard]] analog::ModulatorBank& bank() noexcept { return bank_; }

  /// Runtime element-fault injection (fleet fault plans). A faulted
  /// element's lane is masked out of the bank on the next frame — frozen,
  /// emitting default samples — and resumes bit-identically if the fault is
  /// cleared (ElementFault::kNone). Healthy lanes are unaffected.
  void inject_element_fault(std::size_t row, std::size_t col, ElementFault fault) {
    array_.inject_fault(row, col, fault);
  }

  /// Checkpointing: array faults, every lane's modulator, every decimation
  /// chain, frame clock and die temperature.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  ChipConfig config_;
  SensorArray array_;
  analog::ModulatorBank bank_;
  std::vector<dsp::DecimationChain> chains_;  ///< one per lane
  double time_s_{0.0};
  double temperature_k_{300.0};
  std::vector<double> c_sense_;  ///< per-lane scratch
  std::vector<double> c_ref_;
  std::vector<int> bit_scratch_;  ///< lane-major, lanes · total_decimation
};

}  // namespace tono::core
