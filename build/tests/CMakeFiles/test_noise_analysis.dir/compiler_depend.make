# Empty compiler generated dependencies file for test_noise_analysis.
# This may be replaced when dependencies are built.
