#include "src/dsp/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/common/math_utils.hpp"

namespace tono::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n, double kaiser_beta) {
  if (n == 0) return {};
  std::vector<double> w(n, 1.0);
  const double nn = static_cast<double>(n);  // periodic windows divide by n
  const double two_pi = 2.0 * std::numbers::pi;
  switch (kind) {
    case WindowKind::kRectangular:
      break;
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(two_pi * static_cast<double>(i) / nn);
      }
      break;
    case WindowKind::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(two_pi * static_cast<double>(i) / nn);
      }
      break;
    case WindowKind::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = two_pi * static_cast<double>(i) / nn;
        w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
      }
      break;
    case WindowKind::kBlackmanHarris4:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = two_pi * static_cast<double>(i) / nn;
        w[i] = 0.35875 - 0.48829 * std::cos(t) + 0.14128 * std::cos(2.0 * t) -
               0.01168 * std::cos(3.0 * t);
      }
      break;
    case WindowKind::kKaiser: {
      const double denom = bessel_i0(kaiser_beta);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = 2.0 * static_cast<double>(i) / nn - 1.0;
        w[i] = bessel_i0(kaiser_beta * std::sqrt(std::max(0.0, 1.0 - r * r))) / denom;
      }
      break;
    }
  }
  return w;
}

double coherent_gain(const std::vector<double>& window) noexcept {
  if (window.empty()) return 0.0;
  double sum = 0.0;
  for (double w : window) sum += w;
  return sum / static_cast<double>(window.size());
}

double enbw_bins(const std::vector<double>& window) noexcept {
  if (window.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double w : window) {
    sum += w;
    sum_sq += w * w;
  }
  if (sum == 0.0) return 0.0;
  return static_cast<double>(window.size()) * sum_sq / (sum * sum);
}

std::size_t leakage_halfwidth_bins(WindowKind kind) noexcept {
  switch (kind) {
    case WindowKind::kRectangular:
      return 1;
    case WindowKind::kHann:
    case WindowKind::kHamming:
      return 3;
    case WindowKind::kBlackman:
      return 4;
    case WindowKind::kBlackmanHarris4:
      return 6;
    case WindowKind::kKaiser:
      return 6;
  }
  return 3;
}

std::string to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular: return "rectangular";
    case WindowKind::kHann: return "hann";
    case WindowKind::kHamming: return "hamming";
    case WindowKind::kBlackman: return "blackman";
    case WindowKind::kBlackmanHarris4: return "blackman-harris4";
    case WindowKind::kKaiser: return "kaiser";
  }
  throw std::invalid_argument{"unknown WindowKind"};
}

}  // namespace tono::dsp
