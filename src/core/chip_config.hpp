// chip_config.hpp — the full parameter set of the fabricated demonstrator.
//
// One struct gathers every number the paper reports so that examples, tests
// and benches all simulate the same die:
//   §2.1  2x2 array, 100 µm membranes, 3 µm thick, 150 µm pitch,
//         oxide/nitride/Al stack over a poly bottom electrode
//   §2.2  2nd-order 1-bit ΔΣ, analog row/column mux, external SINC³+FIR
//   §3    0.8 µm CMOS, 2.6 × 1.9 mm² die, fs = 128 kHz, OSR = 128 → 1 kS/s,
//         12 bit, SNR > 72 dB, 11.5 mW @ 5 V
#pragma once

#include <cstddef>
#include <vector>

#include "src/analog/modulator.hpp"
#include "src/analog/mux.hpp"
#include "src/analog/power.hpp"
#include "src/dsp/decimation.hpp"
#include "src/mems/transducer.hpp"

namespace tono::core {

struct ArrayGeometry {
  std::size_t rows{2};
  std::size_t cols{2};
  double pitch_m{150e-6};  ///< §2.1: 150 µm membrane pitch
};

/// Fabrication faults of the post-CMOS release (§2.1's KOH etch is the
/// yield-critical step). A faulty element still reads electrically but
/// carries no (or a saturated) pressure signal.
enum class ElementFault {
  kNone,
  kNotReleased,   ///< sacrificial metal never etched: fixed capacitance
  kStuckDown,     ///< membrane collapsed to the bottom electrode
};

struct ElementFaultSpec {
  std::size_t row{0};
  std::size_t col{0};
  ElementFault fault{ElementFault::kNone};
};

struct ChipConfig {
  ArrayGeometry array{};
  mems::TransducerConfig transducer{};
  analog::ModulatorConfig modulator{};
  analog::MuxConfig mux{};
  dsp::DecimationConfig decimation{};
  analog::PowerModelConfig power{};
  /// Die size, for reporting only (§3: 2.6 × 1.9 mm²).
  double die_width_m{2.6e-3};
  double die_height_m{1.9e-3};
  /// Per-element capacitance mismatch σ (fabrication gradient across die).
  double element_mismatch_sigma{0.002};
  /// Release-yield faults (empty = fully yielding die).
  std::vector<ElementFaultSpec> faults;
  std::uint64_t seed{2004};

  /// The demonstrator exactly as published.
  [[nodiscard]] static ChipConfig paper_chip();
};

}  // namespace tono::core
