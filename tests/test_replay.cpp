// Recorder/Replay tests: record→replay byte identity, torn-tail and
// corrupt-record truncation, index round trip and the killed-recording
// fallback, and the end-to-end contract — a replayed hospital consumes the
// byte-identical code stream the recorded one did (docs/GATEWAY.md).
#include "src/gateway/recorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/checkpoint.hpp"
#include "src/common/rng.hpp"
#include "src/core/telemetry.hpp"
#include "src/fleet/hospital_scheduler.hpp"
#include "src/gateway/gateway.hpp"
#include "src/gateway/transport.hpp"

namespace tono::gateway {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "tono_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::int16_t> random_codes(Rng& rng, std::size_t n) {
  std::vector<std::int16_t> v(n);
  for (auto& s : v) {
    s = static_cast<std::int16_t>(
        static_cast<std::int64_t>(rng.uniform_below(4096)) - 2048);
  }
  return v;
}

TEST(Recorder, RecordReplayByteIdentity) {
  const std::string dir = fresh_dir("rec_roundtrip");
  Rng rng{0x4EC0};
  core::FrameEncoder enc;
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<std::uint16_t> counts;
  {
    SessionRecorder rec{dir};
    rec.open_session(9);
    for (int i = 0; i < 40; ++i) {
      const auto codes = random_codes(rng, 1 + rng.uniform_below(80));
      frames.push_back(enc.encode(codes));
      counts.push_back(static_cast<std::uint16_t>(codes.size()));
      rec.record(9, frames.back(), counts.back());
    }
    RecordMeta meta;
    meta.base_seed = 42;
    meta.sessions = 1;
    meta.frames_per_step = 64;
    meta.duration_s = 1.5;
    ASSERT_TRUE(rec.finalize(meta));
    EXPECT_EQ(rec.frames_recorded(), frames.size());
  }

  SessionReplayer replay{dir, 9};
  std::vector<std::uint8_t> frame;
  std::uint16_t n_codes = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(replay.next(frame, n_codes)) << "record " << i;
    EXPECT_EQ(frame, frames[i]) << "record " << i;
    EXPECT_EQ(n_codes, counts[i]) << "record " << i;
  }
  EXPECT_FALSE(replay.next(frame, n_codes));
  EXPECT_FALSE(replay.truncated());
  EXPECT_EQ(replay.frames_read(), frames.size());

  const auto totals = SessionReplayer::scan(dir, 9);
  EXPECT_EQ(totals.frames, frames.size());
  EXPECT_EQ(totals.codes, replay.codes_read());
  EXPECT_FALSE(totals.torn);

  const auto index = read_record_index(dir);
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(index->meta.base_seed, 42u);
  EXPECT_EQ(index->meta.sessions, 1u);
  EXPECT_EQ(index->meta.frames_per_step, 64u);
  EXPECT_EQ(index->meta.duration_s, 1.5);
  ASSERT_EQ(index->sessions.size(), 1u);
  EXPECT_EQ(index->sessions[0].id, 9u);
  EXPECT_EQ(index->sessions[0].frames, frames.size());
}

TEST(Recorder, TornTailIsTruncatedCleanly) {
  const std::string dir = fresh_dir("rec_torn");
  Rng rng{0x7042};
  core::FrameEncoder enc;
  constexpr std::size_t kFrames = 12;
  {
    SessionRecorder rec{dir};
    rec.open_session(0);
    for (std::size_t i = 0; i < kFrames; ++i) {
      rec.record(0, enc.encode(random_codes(rng, 16)), 16);
    }
    // No finalize: this recording dies here, like a SIGKILLed server.
  }
  // Simulate the kill landing mid-append: a partial record header at the
  // tail.
  {
    std::ofstream out{SessionRecorder::session_file(dir, 0),
                      std::ios::binary | std::ios::app};
    const char torn[7] = {0x20, 0, 0, 0, 0x10, 0, 0};
    out.write(torn, sizeof torn);
  }
  EXPECT_FALSE(read_record_index(dir).has_value());  // killed → no index
  SessionReplayer replay{dir, 0};
  std::vector<std::uint8_t> frame;
  std::uint16_t n_codes = 0;
  std::size_t replayed = 0;
  while (replay.next(frame, n_codes)) ++replayed;
  EXPECT_EQ(replayed, kFrames) << "complete records before the tear must survive";
  EXPECT_TRUE(replay.truncated());
  EXPECT_TRUE(SessionReplayer::scan(dir, 0).torn);
}

TEST(Recorder, CorruptMidFileRecordEndsTheStreamThere) {
  const std::string dir = fresh_dir("rec_corrupt");
  Rng rng{0xC0DE};
  core::FrameEncoder enc;
  constexpr std::size_t kFrames = 10;
  {
    SessionRecorder rec{dir};
    rec.open_session(3);
    for (std::size_t i = 0; i < kFrames; ++i) {
      rec.record(3, enc.encode(random_codes(rng, 8)), 8);
    }
  }
  // Flip one payload byte in the 6th record; its FNV checksum must catch it.
  const std::string path = SessionRecorder::session_file(dir, 3);
  auto bytes = read_file_bytes(path);
  const std::size_t record_bytes = 16 + core::frame_wire_bytes(8);
  const std::size_t offset = 12 + 5 * record_bytes + 16 + 3;  // 6th payload
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0x40;
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  SessionReplayer replay{dir, 3};
  std::vector<std::uint8_t> frame;
  std::uint16_t n_codes = 0;
  std::size_t replayed = 0;
  while (replay.next(frame, n_codes)) ++replayed;
  EXPECT_EQ(replayed, 5u) << "records before the corruption replay intact";
  EXPECT_TRUE(replay.truncated());
}

TEST(Recorder, ListSessionsFindsEveryRecordFile) {
  const std::string dir = fresh_dir("rec_list");
  core::FrameEncoder enc;
  Rng rng{0x115 + 0};
  SessionRecorder rec{dir};
  for (const std::uint32_t id : {0u, 2u, 5u}) {
    rec.open_session(id);
    rec.record(id, enc.encode(random_codes(rng, 4)), 4);
  }
  EXPECT_EQ(SessionReplayer::list_sessions(dir),
            (std::vector<std::uint32_t>{0u, 2u, 5u}));
  EXPECT_TRUE(SessionReplayer::list_sessions(dir + "_nope").empty());
}

/// Gateway-fed hospital (mirrors examples/gateway_server.cpp): live mode
/// produces through the wire and optionally records; replay mode feeds
/// recorded frames back with their original sequence numbers. Returns the
/// delivered code stream per session.
std::map<std::uint32_t, std::vector<std::int16_t>> run_hospital(
    const std::string& record_dir, bool replay, double duration_s,
    std::uint64_t* consumed = nullptr) {
  constexpr std::size_t kSessions = 2;
  fleet::HospitalConfig config;
  config.shards = 1;
  config.threads_per_shard = 1;
  config.base_seed = 909;
  fleet::HospitalScheduler hospital{config};
  LoopbackTransport wire;
  GatewayMux mux{wire};
  GatewayDemux demux{wire};
  std::map<std::uint32_t, std::vector<std::int16_t>> delivered;

  for (std::size_t i = 0; i < kSessions; ++i) {
    fleet::SessionConfig sc;
    if (i % 2 == 1) sc.scenario = "exercise";
    if (replay) {
      sc.external_ingest = true;
    } else {
      GatewayMux* m = &mux;
      sc.code_sink = [m](std::uint32_t id, std::span<const std::int16_t> codes) {
        m->send(id, codes);
      };
    }
    const std::uint32_t id = hospital.admit(std::move(sc));
    mux.open_channel(id);
    demux.open_channel(id);
  }
  demux.on_codes([&](std::uint32_t id, std::span<const std::int16_t> codes) {
    delivered[id].insert(delivered[id].end(), codes.begin(), codes.end());
    hospital.shard(0).session(id)->ingest_codes(codes);
  });

  std::unique_ptr<SessionRecorder> recorder;
  if (!replay && !record_dir.empty()) {
    recorder = std::make_unique<SessionRecorder>(record_dir);
    for (std::uint32_t id = 0; id < kSessions; ++id) recorder->open_session(id);
    demux.on_envelope([&recorder](std::uint32_t id,
                                  std::span<const std::uint8_t> frame,
                                  std::uint16_t n_codes) {
      recorder->record(id, frame, n_codes);
    });
  }

  const std::size_t fps = config.frames_per_step;
  std::vector<std::unique_ptr<SessionReplayer>> replayers;
  if (replay) {
    for (std::uint32_t id = 0; id < kSessions; ++id) {
      replayers.push_back(std::make_unique<SessionReplayer>(record_dir, id));
    }
    hospital.shard(0).set_batch_hook([&] {
      std::vector<std::uint8_t> frame;
      std::uint16_t n_codes = 0;
      for (auto& r : replayers) {
        std::size_t quota = fps;
        while (quota > 0 && r->next(frame, n_codes)) {
          mux.send_encoded(r->session_id(), frame, n_codes);
          quota -= std::min<std::size_t>(quota, n_codes);
          (void)demux.pump();
        }
      }
    });
  } else {
    hospital.shard(0).set_batch_hook([&] { (void)demux.pump(); });
  }

  hospital.run(duration_s);
  if (recorder) {
    RecordMeta meta;
    meta.base_seed = config.base_seed;
    meta.sessions = kSessions;
    meta.frames_per_step = fps;
    meta.duration_s = duration_s;
    EXPECT_TRUE(recorder->finalize(meta));
  }
  if (consumed != nullptr) *consumed = hospital.snapshot().codes_consumed;
  return delivered;
}

// The record→replay determinism contract, end to end: a hospital replaying
// a recording ingests the byte-identical per-session code stream the
// recorded run consumed, and the ward consumes the same code count.
TEST(Replay, HospitalReplayReproducesTheConsumedStream) {
  const std::string dir = fresh_dir("rec_hospital");
  std::uint64_t live_consumed = 0;
  const auto live = run_hospital(dir, /*replay=*/false, 0.5, &live_consumed);
  ASSERT_EQ(live.size(), 2u);
  for (const auto& [id, codes] : live) {
    EXPECT_GE(codes.size(), 500u) << "session " << id;
  }

  // Replay horizon: whole batches of the shortest stream, like
  // gateway_server's floor alignment.
  const auto index = read_record_index(dir);
  ASSERT_TRUE(index.has_value());
  std::uint64_t min_codes = UINT64_MAX;
  for (std::uint32_t id = 0; id < 2; ++id) {
    min_codes = std::min(min_codes, SessionReplayer::scan(dir, id).codes);
  }
  const std::uint64_t fps = index->meta.frames_per_step;
  const double replay_duration =
      static_cast<double>((min_codes / fps) * fps) / 1000.0;

  std::uint64_t replay_consumed = 0;
  const auto replayed =
      run_hospital(dir, /*replay=*/true, replay_duration, &replay_consumed);
  ASSERT_EQ(replayed.size(), live.size());
  for (const auto& [id, codes] : live) {
    EXPECT_EQ(replayed.at(id), codes) << "session " << id;
  }
  EXPECT_EQ(replay_consumed, live_consumed);
}

}  // namespace
}  // namespace tono::gateway
