// E7 / §2.2+§3.1 — the two-stage decimation filter.
//
// Paper: "The decimation filter was implemented as a two stage filter
// architecture, comprising a 3rd order SINC-filter as first stage and a
// 32 tap FIR-filter as second stage. The cutoff frequency of the filter is
// 500 Hz and the output resolution is 12 bit."
//
// The bench regenerates the filter's frequency response (CIC, FIR, combined),
// quantifies the CIC droop compensation, coefficient quantization and alias
// rejection at the CIC nulls.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/dsp/fir_design.hpp"

namespace {

using namespace tono;

void run() {
  bench::print_header("E7 / §2.2", "Two-stage decimation filter: SINC^3 + 32-tap FIR");

  dsp::DecimationConfig cfg;  // paper configuration
  dsp::DecimationChain chain{cfg};

  TextTable at{"Architecture"};
  at.set_header({"stage", "parameter", "value"});
  at.add_row({"1 (CIC)", "order / rate change", "3 / 32x"});
  at.add_row({"2 (FIR)", "taps / rate change", "32 / 4x"});
  at.add_row({"overall", "decimation", "128x (128 kS/s -> 1 kS/s)"});
  at.add_row({"overall", "cutoff", "500 Hz"});
  at.add_row({"overall", "output word", "12 bit"});
  at.add_row({"overall", "group delay",
              format_double(chain.group_delay_seconds() * 1e3, 2) + " ms"});
  at.print(std::cout);

  // Frequency response of the combined chain.
  SeriesWriter resp{"decimation_response", "frequency_hz", "gain_db"};
  TextTable rt{"Combined magnitude response"};
  rt.set_header({"f [Hz]", "gain [dB]", "region"});
  auto region = [](double f) {
    if (f <= 500.0) return "passband";
    if (f < 3500.0) return "transition/stop";
    return "CIC null region";
  };
  for (double f : {10.0, 50.0, 100.0, 200.0, 300.0, 400.0, 450.0, 500.0, 700.0, 1000.0,
                   2000.0, 3900.0, 4000.0, 4100.0, 8000.0, 16000.0}) {
    const double g_db = 20.0 * std::log10(std::max(chain.magnitude_at(f), 1e-10));
    rt.add_row({format_double(f, 0), format_double(g_db, 2), region(f)});
    resp.add(f, g_db);
  }
  rt.print(std::cout);
  resp.write_csv(std::cout);

  // Droop compensation ablation.
  dsp::DecimationConfig plain = cfg;
  plain.compensate_cic_droop = false;
  dsp::DecimationChain chain_plain{plain};
  TextTable dt{"CIC droop compensation (passband flatness)"};
  dt.set_header({"f [Hz]", "with comp [dB]", "without comp [dB]"});
  for (double f : {100.0, 200.0, 300.0, 400.0, 480.0}) {
    dt.add_row({format_double(f, 0),
                format_double(20.0 * std::log10(chain.magnitude_at(f)), 3),
                format_double(20.0 * std::log10(chain_plain.magnitude_at(f)), 3)});
  }
  dt.print(std::cout);

  // Alias rejection at the CIC nulls (images of the output band).
  TextTable nt{"Alias rejection at CIC image bands"};
  nt.set_header({"image center [Hz]", "worst gain in ±400 Hz [dB]"});
  for (double center : {4000.0, 8000.0, 12000.0}) {
    double worst = 0.0;
    for (double df = -400.0; df <= 400.0; df += 25.0) {
      worst = std::max(worst, chain.magnitude_at(center + df));
    }
    nt.add_row({format_double(center, 0),
                format_double(20.0 * std::log10(std::max(worst, 1e-10)), 1)});
  }
  nt.print(std::cout);

  // Coefficient quantization (FPGA fixed point).
  const auto& coeffs = chain.fir_coefficients();
  const auto q = dsp::quantize_coefficients(coeffs, cfg.fir_coeff_frac_bits);
  double worst_err = 0.0;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    worst_err = std::max(worst_err, std::abs(coeffs[i] - static_cast<double>(q[i]) /
                                                             (1 << cfg.fir_coeff_frac_bits)));
  }
  TextTable qt{"FIR coefficient quantization (FPGA implementation)"};
  qt.set_header({"quantity", "value"});
  qt.add_row({"coefficient format", "Q2." + std::to_string(cfg.fir_coeff_frac_bits)});
  qt.add_row({"worst-case coeff error", format_double(worst_err, 8)});
  qt.add_row({"taps", std::to_string(coeffs.size())});
  qt.print(std::cout);

  bench::ComparisonTable cmp{"Paper vs measured (§2.2/§3.1)"};
  cmp.add("architecture", "SINC^3 + 32-tap FIR", "SINC^3 (32x) + 32-tap FIR (4x)", true);
  cmp.add("cutoff", "500 Hz",
          format_double(20.0 * std::log10(chain.magnitude_at(480.0)), 1) +
              " dB @480 Hz, stopband below",
          chain.magnitude_at(300.0) > 0.7 && chain.magnitude_at(2000.0) < 0.05);
  cmp.add("output resolution", "12 bit", "12-bit saturating word", true);
  cmp.print();
}

}  // namespace

int main() {
  run();
  return 0;
}
