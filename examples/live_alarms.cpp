// live_alarms — the bedside-monitor loop: sensor → streaming analysis →
// alarms, on a patient whose pressure crashes mid-session.
//
// Combines the full chip chain (BloodPressureMonitor) with the push-based
// StreamingMonitor: calibrated samples are fed one at a time, beats and
// limit violations surface as events with seconds of latency — what E10
// shows a cuff cannot do.
#include <cstdio>
#include <memory>

#include "src/bio/scenario.hpp"
#include "src/core/monitor.hpp"
#include "src/core/streaming_monitor.hpp"

int main() {
  using namespace tono;

  // Patient with a hypotensive episode at ~t = 50 s.
  core::WristModel wrist;
  wrist.scenario = std::make_shared<bio::ScenarioProfile>(
      bio::ScenarioProfile::hypotensive_episode(150.0));

  core::BloodPressureMonitor sensor{core::ChipConfig::paper_chip(), wrist};
  (void)sensor.localize();
  const auto cuff = sensor.calibrate(12.0);
  std::printf("calibrated against cuff: %.0f/%.0f mmHg\n\n", cuff.systolic_mmhg,
              cuff.diastolic_mmhg);

  core::StreamingConfig scfg;
  scfg.limits.systolic_low_mmhg = 95.0;
  core::StreamingMonitor live{scfg};

  std::size_t beat_count = 0;
  live.on_beat([&](const core::Beat& b) {
    ++beat_count;
    if (beat_count % 10 == 0) {
      std::printf("t=%6.1f s  beat %3zu: %5.1f / %5.1f mmHg\n", b.peak_s, beat_count,
                  b.systolic_value, b.diastolic_value);
    }
  });
  live.on_alarm([](const core::AlarmEvent& a) {
    std::printf("t=%6.1f s  *** ALARM %s %s (%.1f) ***\n", a.time_s,
                core::to_string(a.kind).c_str(), a.active ? "RAISED" : "cleared",
                a.value);
  });
  double last_sqi = -1.0;
  live.on_quality([&](const core::QualityReport& q, double t) {
    if (last_sqi >= 0.0 && (q.usable != (last_sqi >= 0.5))) {
      std::printf("t=%6.1f s  signal quality %s (SQI %.2f)\n", t,
                  q.usable ? "restored" : "degraded", q.sqi);
    }
    last_sqi = q.sqi;
  });

  // Stream the rest of the session sample by sample.
  const auto rep = sensor.monitor(130.0);
  for (double mmhg : rep.waveform_mmhg) live.push(mmhg);

  std::printf("\nsession: %zu beats streamed; systolic-low alarm %s at end\n",
              live.beats_emitted(),
              live.alarm_active(core::AlarmKind::kSystolicLow) ? "ACTIVE" : "inactive");
  return 0;
}
