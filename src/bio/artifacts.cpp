#include "src/bio/artifacts.hpp"

#include <cmath>
#include <stdexcept>

#include "src/common/checkpoint.hpp"

namespace tono::bio {

ArtifactInjector::ArtifactInjector(const ArtifactConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.spike_rate_hz < 0.0 || config_.spike_decay_s <= 0.0) {
    throw std::invalid_argument{"ArtifactInjector: bad spike parameters"};
  }
  next_spike_in_s_ = config_.spike_rate_hz > 0.0
                         ? rng_.exponential(config_.spike_rate_hz)
                         : 1e12;
}

double ArtifactInjector::next(double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument{"ArtifactInjector: dt must be > 0"};
  // Baseline wander.
  wander_mmhg_ += config_.wander_mmhg_per_sqrt_s * std::sqrt(dt_s) * rng_.gaussian();
  // Spike scheduling (Poisson arrivals) and exponential decay.
  next_spike_in_s_ -= dt_s;
  if (next_spike_in_s_ <= 0.0 && config_.spike_rate_hz > 0.0) {
    const double sign = rng_.bernoulli(0.5) ? 1.0 : -1.0;
    spike_level_mmhg_ += sign * rng_.exponential(1.0 / config_.spike_amplitude_mmhg);
    ++spike_count_;
    next_spike_in_s_ = rng_.exponential(config_.spike_rate_hz);
  }
  spike_level_mmhg_ *= std::exp(-dt_s / config_.spike_decay_s);
  // Contact noise.
  const double noise = config_.contact_noise_mmhg > 0.0
                           ? rng_.gaussian(0.0, config_.contact_noise_mmhg)
                           : 0.0;
  return wander_mmhg_ + spike_level_mmhg_ + noise;
}

void ArtifactInjector::serialize(CheckpointWriter& out) const {
  out.section("artifact_injector");
  rng_.serialize(out);
  out.f64(wander_mmhg_);
  out.f64(spike_level_mmhg_);
  out.f64(next_spike_in_s_);
  out.size(spike_count_);
}

void ArtifactInjector::restore(CheckpointReader& in) {
  in.section("artifact_injector");
  rng_.restore(in);
  wander_mmhg_ = in.f64();
  spike_level_mmhg_ = in.f64();
  next_spike_in_s_ = in.f64();
  spike_count_ = in.size();
}

void ArtifactInjector::apply(std::span<double> samples, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument{"ArtifactInjector: sample rate must be > 0"};
  }
  const double dt = 1.0 / sample_rate_hz;
  for (double& s : samples) s += next(dt);
}

}  // namespace tono::bio
