#include "src/dsp/decimation.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/common/checkpoint.hpp"
#include "src/common/fixed_point.hpp"
#include "src/dsp/fir_design.hpp"

namespace tono::dsp {
namespace {

constexpr int kFirGuardBits = 4;  // headroom between FIR word and output word

DecimationConfig validated(DecimationConfig c) {
  if (c.cic_decimation == 0 || c.total_decimation % c.cic_decimation != 0) {
    throw std::invalid_argument{"DecimationChain: CIC decimation must divide total"};
  }
  const std::size_t fir_dec = c.total_decimation / c.cic_decimation;
  if (fir_dec == 0) throw std::invalid_argument{"DecimationChain: zero FIR decimation"};
  const double out_rate = c.input_rate_hz / static_cast<double>(c.total_decimation);
  if (c.cutoff_hz <= 0.0 || c.cutoff_hz > out_rate / 2.0) {
    throw std::invalid_argument{"DecimationChain: cutoff must be in (0, output Nyquist]"};
  }
  if (c.fir_taps < 4) throw std::invalid_argument{"DecimationChain: too few FIR taps"};
  if (c.output_bits < 2 || c.output_bits > 24) {
    throw std::invalid_argument{"DecimationChain: output_bits out of range"};
  }
  return c;
}

std::vector<double> design_second_stage(const DecimationConfig& c) {
  const double fir_rate = c.input_rate_hz / static_cast<double>(c.cic_decimation);
  // Keep the cutoff strictly inside (0, fir_rate/2).
  const double cutoff = std::min(c.cutoff_hz, fir_rate / 2.0 * 0.95);
  if (c.compensate_cic_droop) {
    return design_cic_compensator(c.fir_taps, cutoff, fir_rate, c.cic_order,
                                  c.cic_decimation);
  }
  return design_lowpass(c.fir_taps, cutoff, fir_rate);
}

}  // namespace

DecimationChain::DecimationChain(const DecimationConfig& config)
    : config_(validated(config)),
      cic_(config_.cic_order, config_.cic_decimation, /*input_bits=*/2),
      fir_(quantize_coefficients(design_second_stage(config_), config_.fir_coeff_frac_bits),
           config_.fir_coeff_frac_bits,
           config_.output_bits + kFirGuardBits,
           config_.total_decimation / config_.cic_decimation),
      fir_coeffs_(design_second_stage(config_)),
      fir_input_bits_(config_.output_bits + kFirGuardBits),
      cic_scratch_(config_.total_decimation / config_.cic_decimation) {
  // Map the raw CIC output (full scale = ±gain for a ±1 bitstream) onto the
  // FIR's input word so the chain's unity gain lands on the output word's
  // full scale.
  const double full_scale = static_cast<double>(std::int64_t{1} << (fir_input_bits_ - 1));
  cic_scale_ = full_scale / static_cast<double>(cic_.gain());
  auto& reg = metrics::Registry::global();
  samples_metric_ = &reg.counter(metrics::names::kDecimationSamples);
  saturations_metric_ = &reg.counter(metrics::names::kDecimationFirSaturations);
}

DecimatedSample DecimationChain::finalize_output_(std::int64_t fir_out) {
  // Round the guard bits away and saturate into the final output word.
  const int shift = kFirGuardBits;
  const std::int64_t half = std::int64_t{1} << (shift - 1);
  const std::int64_t raw = (fir_out + half) >> shift;
  const std::int64_t code = saturate_to_bits(raw, config_.output_bits);
  samples_metric_->add(1);
  if (code != raw) saturations_metric_->add(1);
  return DecimatedSample{code, dequantize_from_bits(code, config_.output_bits)};
}

std::optional<DecimatedSample> DecimationChain::push(int modulator_bit) {
  const auto cic_out = cic_.push(modulator_bit);
  if (!cic_out) return std::nullopt;
  const double scaled = static_cast<double>(*cic_out) * cic_scale_;
  const auto fir_in = static_cast<std::int64_t>(scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
  const auto fir_out = fir_.push(fir_in);
  if (!fir_out) return std::nullopt;
  return finalize_output_(*fir_out);
}

DecimatedSample DecimationChain::push_frame(std::span<const int> bits) {
  assert(bits.size() == config_.total_decimation);
  // One frame spans exactly fir_decimation CIC output instants and exactly
  // one FIR output instant, at any phase alignment: with R = cic_decimation
  // and phase p, floor((p + R·k)/R) − floor(p/R) = k, and the same argument
  // applies one stage up.
  const std::size_t m = cic_.push_block(bits.data(), bits.size(), cic_scratch_.data());
  DecimatedSample out{};
#ifndef NDEBUG
  bool produced = false;
#endif
  for (std::size_t j = 0; j < m; ++j) {
    const double scaled = static_cast<double>(cic_scratch_[j]) * cic_scale_;
    const auto fir_in = static_cast<std::int64_t>(scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
    const auto fir_out = fir_.push(fir_in);
    if (!fir_out) continue;
    out = finalize_output_(*fir_out);
#ifndef NDEBUG
    produced = true;
#endif
  }
  assert(produced);
  return out;
}

void DecimationChain::push_block(std::span<const int> bits,
                                 std::vector<DecimatedSample>& out) {
  const std::size_t frame = config_.total_decimation;
  std::size_t i = 0;
  for (; bits.size() - i >= frame; i += frame) {
    out.push_back(push_frame(bits.subspan(i, frame)));
  }
  // A partial tail can still cross an output instant depending on phase.
  for (; i < bits.size(); ++i) {
    if (auto s = push(bits[i])) out.push_back(*s);
  }
}

std::vector<DecimatedSample> DecimationChain::process(std::span<const int> bits) {
  std::vector<DecimatedSample> out;
  out.reserve(bits.size() / config_.total_decimation + 1);
  push_block(bits, out);
  return out;
}

std::vector<double> DecimationChain::process_values(std::span<const int> bits) {
  const auto samples = process(bits);
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.value);
  return out;
}

void DecimationChain::reset() {
  cic_.reset();
  fir_.reset();
}

void DecimationChain::serialize(CheckpointWriter& out) const {
  out.section("decimation_chain");
  cic_.serialize(out);
  fir_.serialize(out);
}

void DecimationChain::restore(CheckpointReader& in) {
  in.section("decimation_chain");
  cic_.restore(in);
  fir_.restore(in);
}

double DecimationChain::output_rate_hz() const noexcept {
  return config_.input_rate_hz / static_cast<double>(config_.total_decimation);
}

double DecimationChain::magnitude_at(double freq_hz) const {
  const double fir_rate = config_.input_rate_hz / static_cast<double>(config_.cic_decimation);
  return cic_.magnitude_at(freq_hz, config_.input_rate_hz) *
         fir_magnitude_at(fir_coeffs_, freq_hz, fir_rate);
}

double DecimationChain::group_delay_seconds() const noexcept {
  const double rm = static_cast<double>(config_.cic_decimation);
  const double cic_delay =
      static_cast<double>(config_.cic_order) * (rm - 1.0) / 2.0;  // input samples
  const double fir_delay = (static_cast<double>(config_.fir_taps) - 1.0) / 2.0 *
                           static_cast<double>(config_.cic_decimation);
  return (cic_delay + fir_delay) / config_.input_rate_hz;
}

}  // namespace tono::dsp
