// Tests for the sensor array and its capacitance lookup tables.
#include "src/core/sensor_array.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/units.hpp"

namespace tono::core {
namespace {

TEST(SensorArray, PaperArrayIsTwoByTwo) {
  SensorArray arr{ChipConfig::paper_chip()};
  EXPECT_EQ(arr.rows(), 2u);
  EXPECT_EQ(arr.cols(), 2u);
  EXPECT_EQ(arr.size(), 4u);
}

TEST(SensorArray, ElementPositionsOnPitch) {
  const auto cfg = ChipConfig::paper_chip();
  SensorArray arr{cfg};
  // 2x2 on 150 µm pitch, centered: positions ±75 µm.
  const double half = cfg.array.pitch_m / 2.0;
  EXPECT_NEAR(arr.element(0, 0).position().x_m, -half, 1e-12);
  EXPECT_NEAR(arr.element(0, 1).position().x_m, +half, 1e-12);
  EXPECT_NEAR(arr.element(0, 0).position().y_m, -half, 1e-12);
  EXPECT_NEAR(arr.element(1, 0).position().y_m, +half, 1e-12);
}

TEST(SensorArray, LutMatchesExactIntegral) {
  SensorArray arr{ChipConfig::paper_chip()};
  const auto& e = arr.element(0, 0);
  for (double p_mmhg : {-100.0, -20.0, 0.0, 30.0, 80.0, 150.0, 300.0}) {
    const double p = units::mmhg_to_pa(p_mmhg);
    const double exact = e.capacitance_exact(p);
    const double lut = e.capacitance(p);
    EXPECT_NEAR(lut, exact, 1e-5 * exact) << "p = " << p_mmhg << " mmHg";
  }
}

TEST(SensorArray, LutErrorSmallVsSignalSwing) {
  // The LUT error must be far below the capacitance change produced by one
  // mmHg of pressure, or it would alias into the waveform.
  SensorArray arr{ChipConfig::paper_chip()};
  const auto& e = arr.element(0, 0);
  const double swing_per_mmhg =
      e.capacitance_exact(units::mmhg_to_pa(1.0)) - e.capacitance_exact(0.0);
  double worst = 0.0;
  for (double p_mmhg = -50.0; p_mmhg <= 200.0; p_mmhg += 7.3) {
    const double p = units::mmhg_to_pa(p_mmhg);
    worst = std::max(worst, std::abs(e.capacitance(p) - e.capacitance_exact(p)));
  }
  EXPECT_LT(worst, 0.05 * std::abs(swing_per_mmhg));
}

TEST(SensorArray, ElementsCarryDistinctMismatch) {
  SensorArray arr{ChipConfig::paper_chip()};
  std::set<double> caps;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    caps.insert(arr.element(i).capacitance(0.0));
  }
  EXPECT_EQ(caps.size(), arr.size());
}

TEST(SensorArray, MismatchIsDeterministicPerSeed) {
  SensorArray a{ChipConfig::paper_chip()};
  SensorArray b{ChipConfig::paper_chip()};
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.element(i).capacitance(0.0), b.element(i).capacitance(0.0));
  }
  auto cfg = ChipConfig::paper_chip();
  cfg.seed = 999;
  SensorArray c{cfg};
  EXPECT_NE(a.element(0).capacitance(0.0), c.element(0).capacitance(0.0));
}

TEST(SensorArray, ReferenceCapacitancePlausible) {
  SensorArray arr{ChipConfig::paper_chip()};
  EXPECT_GT(arr.reference_capacitance(), 50e-15);
  EXPECT_LT(arr.reference_capacitance(), 200e-15);
}

TEST(SensorArray, CapacitanceMonotoneInPressure) {
  SensorArray arr{ChipConfig::paper_chip()};
  double prev = arr.capacitance(0, 0, units::mmhg_to_pa(-50.0));
  for (double p = -40.0; p <= 200.0; p += 10.0) {
    const double c = arr.capacitance(0, 0, units::mmhg_to_pa(p));
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(SensorArray, OutOfRangeAccessThrows) {
  SensorArray arr{ChipConfig::paper_chip()};
  EXPECT_THROW((void)arr.element(2, 0), std::out_of_range);
  EXPECT_THROW((void)arr.element(0, 2), std::out_of_range);
  EXPECT_THROW((void)arr.element(4), std::out_of_range);
}

TEST(SensorArray, LargerArraySupported) {
  auto cfg = ChipConfig::paper_chip();
  cfg.array.rows = 4;
  cfg.array.cols = 8;
  cfg.mux.rows = 4;
  cfg.mux.cols = 8;
  SensorArray arr{cfg};
  EXPECT_EQ(arr.size(), 32u);
  // Outermost columns symmetric about the center.
  EXPECT_NEAR(arr.element(0, 0).position().x_m, -arr.element(0, 7).position().x_m, 1e-12);
}

TEST(SensorArray, RejectsBadConfig) {
  auto cfg = ChipConfig::paper_chip();
  cfg.array.rows = 0;
  EXPECT_THROW((SensorArray{cfg}), std::invalid_argument);
  EXPECT_THROW((SensorArray{ChipConfig::paper_chip(), 10.0, -10.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tono::core
