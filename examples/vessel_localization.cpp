// vessel_localization — finding a buried artery with the sensor array.
//
// §2 of the paper: "an array of force detectors is used and the sensor
// element with the strongest signal is selected during measurement. This can
// also be used for localizing blood vessels, buried in tissue."
//
// The example builds an extended 1x8 array (the mux design is modular),
// sweeps the device placement across the artery, and shows the per-element
// pulsation map plus the selected element at every position.
#include <cstdio>
#include <string>

#include "src/core/monitor.hpp"

int main() {
  using namespace tono;

  std::puts("Sweeping an 1x8 tactile array across a radial artery");
  std::puts("(artery at x = 0; device placement offset varies)\n");

  std::printf("%-14s", "offset [mm]");
  for (int c = 0; c < 8; ++c) std::printf("  col%-4d", c);
  std::printf("  selected\n");

  for (double offset_mm = -0.6; offset_mm <= 0.61; offset_mm += 0.2) {
    auto chip = core::ChipConfig::paper_chip();
    chip.array.rows = 1;
    chip.array.cols = 8;
    chip.mux.rows = 1;
    chip.mux.cols = 8;

    core::WristModel wrist;
    wrist.placement_offset_m = offset_mm * 1e-3;
    wrist.tissue.lateral_sigma_m = 0.5e-3;  // sharp spatial profile

    core::BloodPressureMonitor monitor{chip, wrist};
    core::ScanConfig scan_cfg;
    scan_cfg.dwell_samples = 1200;
    const auto scan = monitor.localize(scan_cfg);

    std::printf("%-14.2f", offset_mm);
    for (const auto& e : scan.elements) {
      // Normalize to the best element for a readable "heat map".
      const double rel = scan.best_amplitude > 0.0 ? e.amplitude / scan.best_amplitude : 0.0;
      std::printf("  %-7s", std::string(static_cast<std::size_t>(rel * 5.0 + 0.5), '#').c_str());
    }
    std::printf("  col %zu\n", scan.best_col);
  }

  std::puts("\nThe winning column walks across the array as the device moves:");
  std::puts("placement accuracy is relaxed by array size, as the paper argues.");
  return 0;
}
