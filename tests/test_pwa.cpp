// Tests for pulse wave analysis.
#include "src/core/pwa.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/bio/pulse_generator.hpp"

namespace tono::core {
namespace {

struct Prepared {
  std::vector<double> wave;
  BeatAnalysis beats;
};

Prepared prepare(const bio::PulseConfig& cfg, double duration_s = 30.0) {
  bio::ArterialPulseGenerator gen{cfg};
  Prepared p;
  p.wave = gen.generate(1000.0, static_cast<std::size_t>(duration_s * 1000.0));
  p.beats = BeatDetector{}.analyze(p.wave);
  return p;
}

bio::PulseConfig steady() {
  bio::PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  return cfg;
}

TEST(Pwa, FeaturesForEveryBeat) {
  const auto p = prepare(steady());
  const auto s = PulseWaveAnalyzer{}.analyze(p.wave, p.beats);
  EXPECT_EQ(s.per_beat.size(), p.beats.beats.size());
}

TEST(Pwa, PulsePressureMatchesBeats) {
  const auto p = prepare(steady());
  const auto s = PulseWaveAnalyzer{}.analyze(p.wave, p.beats);
  EXPECT_NEAR(s.mean_pulse_pressure, 40.0, 6.0);
}

TEST(Pwa, DpdtMaxPositiveAndPlausible) {
  const auto p = prepare(steady());
  const auto s = PulseWaveAnalyzer{}.analyze(p.wave, p.beats);
  // Upstroke of ~40 mmHg over ~80 ms → several hundred mmHg/s.
  EXPECT_GT(s.mean_dpdt_max, 200.0);
  EXPECT_LT(s.mean_dpdt_max, 3000.0);
  for (const auto& f : s.per_beat) EXPECT_GT(f.dpdt_max, 0.0);
}

TEST(Pwa, DpdtTimeOnUpstroke) {
  const auto p = prepare(steady());
  const auto s = PulseWaveAnalyzer{}.analyze(p.wave, p.beats);
  for (std::size_t i = 0; i < s.per_beat.size(); ++i) {
    EXPECT_GE(s.per_beat[i].dpdt_max_time_s, p.beats.beats[i].foot_s - 1e-9);
    EXPECT_LE(s.per_beat[i].dpdt_max_time_s, p.beats.beats[i].peak_s + 1e-9);
  }
}

TEST(Pwa, FindsDicroticNotchInMostBeats) {
  const auto p = prepare(steady());
  const auto s = PulseWaveAnalyzer{}.analyze(p.wave, p.beats);
  std::size_t with_notch = 0;
  for (const auto& f : s.per_beat) {
    if (f.notch_time_s) ++with_notch;
  }
  EXPECT_GT(with_notch, s.per_beat.size() / 2);
}

TEST(Pwa, EjectionFractionPhysiological) {
  const auto p = prepare(steady());
  const auto s = PulseWaveAnalyzer{}.analyze(p.wave, p.beats);
  ASSERT_TRUE(s.mean_ejection_fraction.has_value());
  EXPECT_GT(*s.mean_ejection_fraction, 0.15);
  EXPECT_LT(*s.mean_ejection_fraction, 0.70);
}

TEST(Pwa, StiffArteryHasHigherAugmentation) {
  const auto normal = prepare(steady(), 40.0);
  bio::PulseConfig stiff_cfg = bio::PatientPresets::elderly_stiff();
  stiff_cfg.drift_mmhg_per_sqrt_s = 0.0;
  const auto stiff = prepare(stiff_cfg, 40.0);
  const auto sn = PulseWaveAnalyzer{}.analyze(normal.wave, normal.beats);
  const auto ss = PulseWaveAnalyzer{}.analyze(stiff.wave, stiff.beats);
  ASSERT_TRUE(sn.mean_augmentation_index.has_value());
  ASSERT_TRUE(ss.mean_augmentation_index.has_value());
  EXPECT_GT(*ss.mean_augmentation_index, *sn.mean_augmentation_index);
}

TEST(Pwa, TachycardiaRaisesEjectionFraction) {
  // At high heart rate, systole occupies a larger fraction of the beat.
  bio::PulseConfig fast = steady();
  fast.heart_rate_bpm = 120.0;
  const auto slow = prepare(steady(), 30.0);
  const auto quick = prepare(fast, 30.0);
  const auto ss = PulseWaveAnalyzer{}.analyze(slow.wave, slow.beats);
  const auto sq = PulseWaveAnalyzer{}.analyze(quick.wave, quick.beats);
  ASSERT_TRUE(ss.mean_ejection_fraction && sq.mean_ejection_fraction);
  EXPECT_GT(*sq.mean_ejection_fraction, *ss.mean_ejection_fraction * 0.9);
}

TEST(Pwa, EmptyInputsSafe) {
  PulseWaveAnalyzer pwa;
  const auto s1 = pwa.analyze({}, BeatAnalysis{});
  EXPECT_TRUE(s1.per_beat.empty());
  const auto p = prepare(steady(), 5.0);
  const auto s2 = pwa.analyze(p.wave, BeatAnalysis{});
  EXPECT_TRUE(s2.per_beat.empty());
}

TEST(Pwa, RejectsBadRate) {
  EXPECT_THROW((PulseWaveAnalyzer{0.0}), std::invalid_argument);
}

TEST(Pwa, T0ConsistentTimes) {
  const auto p = prepare(steady(), 10.0);
  const double t0 = 55.0;
  const auto beats = BeatDetector{}.analyze(p.wave, t0);
  const auto s = PulseWaveAnalyzer{}.analyze(p.wave, beats, t0);
  for (const auto& f : s.per_beat) {
    EXPECT_GE(f.dpdt_max_time_s, t0);
    if (f.notch_time_s) EXPECT_GE(*f.notch_time_s, t0);
  }
}

}  // namespace
}  // namespace tono::core
