file(REMOVE_RECURSE
  "CMakeFiles/test_decimation.dir/test_decimation.cpp.o"
  "CMakeFiles/test_decimation.dir/test_decimation.cpp.o.d"
  "test_decimation"
  "test_decimation.pdb"
  "test_decimation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
