// Tests for the bounded lock-free ring buffer (src/common/ring_buffer.hpp):
// FIFO semantics, both backpressure policies with exact loss accounting, and
// an SPSC stress test that the CI TSan job runs to prove the drop-oldest
// reclaim path (producer contending the dequeue cursor) is race-free.
#include "src/common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace {

using tono::BackpressurePolicy;
using tono::RingBuffer;

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RingBuffer<int>{1}.capacity(), 2u);
  EXPECT_EQ(RingBuffer<int>{2}.capacity(), 2u);
  EXPECT_EQ(RingBuffer<int>{3}.capacity(), 4u);
  EXPECT_EQ(RingBuffer<int>{4096}.capacity(), 4096u);
  EXPECT_EQ(RingBuffer<int>{4097}.capacity(), 8192u);
}

TEST(RingBuffer, FifoOrderSingleThread) {
  RingBuffer<int> ring{8};
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "ring should be full";
  EXPECT_EQ(ring.size(), 8u);

  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out)) << "ring should be empty";
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, WrapAroundReusesSlots) {
  RingBuffer<int> ring{4};
  int out = -1;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(round * 10 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 10 + i);
    }
  }
  EXPECT_EQ(ring.pushed(), 30u);
  EXPECT_EQ(ring.popped(), 30u);
}

TEST(RingBuffer, DropOldestKeepsNewestAndCountsEveryLoss) {
  RingBuffer<int> ring{8};
  const int total = 20;
  for (int i = 0; i < total; ++i) {
    (void)ring.push(i, BackpressurePolicy::kDropOldest);
  }
  // The newest `capacity` items survive; everything older was dropped.
  std::vector<int> drained;
  ring.pop_all(drained);
  ASSERT_EQ(drained.size(), ring.capacity());
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i], total - static_cast<int>(ring.capacity()) + static_cast<int>(i));
  }
  // drops == produced − consumed-by-the-ward. (A dropped item counts in
  // both pushed and popped — the producer pops it to reclaim the slot.)
  EXPECT_EQ(ring.dropped(), static_cast<std::uint64_t>(total) - drained.size());
  EXPECT_EQ(ring.pushed(), static_cast<std::uint64_t>(total));
  EXPECT_EQ(ring.pushed() - ring.dropped(), drained.size());
  EXPECT_EQ(ring.block_events(), 0u);
}

TEST(RingBuffer, BlockPolicyIsFreeWhenSpaceExists) {
  RingBuffer<int> ring{8};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ring.push(i, BackpressurePolicy::kBlock), 0u);
  }
  EXPECT_EQ(ring.block_events(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingBuffer, PopAllHonorsMaxItems) {
  RingBuffer<int> ring{16};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(ring.pop_all(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.pop_all(out), 6u);
  EXPECT_EQ(out.size(), 10u);
}

// SPSC stress, blocking policy: a tiny ring, a producer that must not lose
// anything, a concurrent consumer. Every item arrives exactly once, in
// order. This test runs under the CI TSan job.
TEST(RingBuffer, BlockingSpscStressIsLossless) {
  RingBuffer<std::uint32_t> ring{8};
  const std::uint32_t total = 50000;

  std::vector<std::uint32_t> received;
  received.reserve(total);
  std::thread consumer{[&] {
    std::uint32_t item = 0;
    while (received.size() < total) {
      if (ring.try_pop(item)) {
        received.push_back(item);
      } else {
        std::this_thread::yield();
      }
    }
  }};
  for (std::uint32_t i = 0; i < total; ++i) {
    (void)ring.push(i, BackpressurePolicy::kBlock);
  }
  consumer.join();

  ASSERT_EQ(received.size(), total);
  for (std::uint32_t i = 0; i < total; ++i) ASSERT_EQ(received[i], i);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.popped(), total);
}

// SPSC stress, drop-oldest policy: the producer races ahead of the consumer
// and reclaims slots (the two-threads-on-the-dequeue-cursor case the Vyukov
// design exists for). Invariants: the consumer sees a strictly increasing
// subsequence, and drops + consumed == produced exactly.
TEST(RingBuffer, DropOldestSpscStressAccountsExactly) {
  RingBuffer<std::uint32_t> ring{16};
  const std::uint32_t total = 50000;

  std::atomic<bool> done{false};
  std::vector<std::uint32_t> received;
  received.reserve(total);
  std::thread consumer{[&] {
    std::uint32_t item = 0;
    for (;;) {
      if (ring.try_pop(item)) {
        received.push_back(item);
      } else if (done.load(std::memory_order_acquire)) {
        if (!ring.try_pop(item)) break;
        received.push_back(item);
      }
    }
  }};
  for (std::uint32_t i = 0; i < total; ++i) {
    (void)ring.push(i, BackpressurePolicy::kDropOldest);
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  // In-order delivery of whatever survived: strictly increasing values.
  for (std::size_t i = 1; i < received.size(); ++i) {
    ASSERT_LT(received[i - 1], received[i]);
  }
  // Exact loss accounting, the ward's contract: nothing vanishes uncounted.
  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.dropped() + received.size(), total);
  EXPECT_EQ(ring.popped(), total) << "drops count as producer-side pops";
  EXPECT_EQ(ring.block_events(), 0u);
}

// Wrap-around exactly at capacity under drop-oldest: filling the ring costs
// nothing, and the first push past capacity reclaims exactly one slot — the
// boundary where the head cursor laps the tail for the first time.
TEST(RingBuffer, DropOldestWrapsExactlyAtCapacity) {
  RingBuffer<int> ring{8};
  const int cap = static_cast<int>(ring.capacity());
  for (int i = 0; i < cap; ++i) {
    EXPECT_EQ(ring.push(i, BackpressurePolicy::kDropOldest), 0u)
        << "push " << i << " dropped before the ring was full";
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.push(cap, BackpressurePolicy::kDropOldest), 1u)
      << "first push past capacity must reclaim exactly one slot";
  EXPECT_EQ(ring.dropped(), 1u);
  // Item 0 was the casualty; 1..cap survive in order.
  std::vector<int> drained;
  ring.pop_all(drained);
  ASSERT_EQ(drained.size(), static_cast<std::size_t>(cap));
  for (int i = 0; i < cap; ++i) EXPECT_EQ(drained[i], i + 1);
}

// MPSC stress, drop-oldest policy: several session producers (the hospital's
// per-shard fan-in) race each other on the enqueue cursor AND the consumer on
// the dequeue cursor via slot reclaim. Invariants: per-producer items arrive
// as an increasing subsequence, and dropped + received == pushed exactly —
// no item vanishes uncounted, none is duplicated. Runs under the CI TSan job.
TEST(RingBuffer, DropOldestMpscStressAccountsExactly) {
  RingBuffer<std::uint32_t> ring{32};
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20000;
  constexpr std::uint32_t kTag = 1u << 24;  // item = producer*kTag + seq

  std::atomic<std::uint32_t> live{kProducers};
  std::vector<std::uint32_t> received;
  received.reserve(kProducers * kPerProducer);
  std::thread consumer{[&] {
    std::uint32_t item = 0;
    for (;;) {
      if (ring.try_pop(item)) {
        received.push_back(item);
      } else if (live.load(std::memory_order_acquire) == 0) {
        break;  // producers done; the final drain below catches stragglers
      }
    }
  }};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &live, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        (void)ring.push(p * kTag + i, BackpressurePolicy::kDropOldest);
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  ring.pop_all(received);

  // Each producer's surviving items form a strictly increasing subsequence
  // (per-producer FIFO holds even when other producers interleave).
  std::array<std::int64_t, kProducers> last;
  last.fill(-1);
  std::array<std::uint64_t, kProducers> got{};
  for (const std::uint32_t item : received) {
    const std::uint32_t p = item / kTag;
    const std::uint32_t seq = item % kTag;
    ASSERT_LT(p, kProducers);
    ASSERT_GT(static_cast<std::int64_t>(seq), last[p])
        << "producer " << p << " reordered or duplicated";
    last[p] = seq;
    ++got[p];
  }
  // Exact accounting at quiescence: every pushed item was either received or
  // counted as a drop; drops count as producer-side pops, so the cursors
  // agree with the drained-empty ring.
  constexpr std::uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.dropped() + received.size(), total);
  EXPECT_EQ(ring.popped(), total);
  EXPECT_EQ(ring.block_events(), 0u);
  EXPECT_TRUE(ring.empty());
  // Note: no per-producer survival floor — on a single core the producers
  // can serialize and a later flood may legitimately evict everything an
  // earlier producer queued. Only the accounting is an invariant.
  std::uint64_t received_total = 0;
  for (std::uint32_t p = 0; p < kProducers; ++p) received_total += got[p];
  EXPECT_EQ(received_total, received.size());
}

}  // namespace
