file(REMOVE_RECURSE
  "../bench/bench_localization"
  "../bench/bench_localization.pdb"
  "CMakeFiles/bench_localization.dir/bench_localization.cpp.o"
  "CMakeFiles/bench_localization.dir/bench_localization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
