#include "src/common/interpolation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace tono {
namespace {

void validate_knots(std::span<const double> xs, std::span<const double> ys,
                    std::size_t min_points, const char* who) {
  if (xs.size() != ys.size()) throw std::invalid_argument{std::string{who} + ": size mismatch"};
  if (xs.size() < min_points) throw std::invalid_argument{std::string{who} + ": too few points"};
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (!(xs[i] > xs[i - 1])) {
      throw std::invalid_argument{std::string{who} + ": knots must be strictly increasing"};
    }
  }
}

}  // namespace

LinearInterpolator::LinearInterpolator(std::span<const double> xs, std::span<const double> ys)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  validate_knots(xs, ys, 2, "LinearInterpolator");
}

double LinearInterpolator::operator()(double x) const noexcept {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

MonotoneCubicInterpolator::MonotoneCubicInterpolator(std::span<const double> xs,
                                                     std::span<const double> ys)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  validate_knots(xs, ys, 2, "MonotoneCubicInterpolator");
  const std::size_t n = xs_.size();
  slope_.assign(n, 0.0);
  // Secant slopes per segment.
  std::vector<double> delta(n - 1, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    delta[i] = (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);
  }
  if (n == 2) {
    slope_[0] = slope_[1] = delta[0];
    return;
  }
  // Fritsch–Carlson tangents: weighted harmonic mean of adjacent secants
  // when they share a sign, zero at local extrema. This keeps every
  // segment's value inside its endpoint interval (no overshoot).
  slope_[0] = delta[0];
  slope_[n - 1] = delta[n - 2];
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (delta[i - 1] == 0.0 || delta[i] == 0.0 || (delta[i - 1] > 0.0) != (delta[i] > 0.0)) {
      slope_[i] = 0.0;
    } else {
      const double h_lo = xs_[i] - xs_[i - 1];
      const double h_hi = xs_[i + 1] - xs_[i];
      const double w_lo = 2.0 * h_hi + h_lo;
      const double w_hi = h_hi + 2.0 * h_lo;
      slope_[i] = (w_lo + w_hi) / (w_lo / delta[i - 1] + w_hi / delta[i]);
    }
  }
  // End tangents: clip one-sided estimates so the boundary segments stay
  // monotone too (standard PCHIP end treatment).
  auto clip_end = [](double slope, double d) {
    if (d == 0.0) return 0.0;
    if ((slope > 0.0) != (d > 0.0)) return 0.0;
    return (std::abs(slope) > 3.0 * std::abs(d)) ? 3.0 * d : slope;
  };
  slope_[0] = clip_end(slope_[0], delta[0]);
  slope_[n - 1] = clip_end(slope_[n - 1], delta[n - 2]);
}

std::size_t MonotoneCubicInterpolator::segment_of(double x) const noexcept {
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto idx = static_cast<std::size_t>(it - xs_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, xs_.size() - 2);
}

double MonotoneCubicInterpolator::operator()(double x) const noexcept {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = segment_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * ys_[i] + h10 * h * slope_[i] + h01 * ys_[i + 1] + h11 * h * slope_[i + 1];
}

double MonotoneCubicInterpolator::derivative(double x) const noexcept {
  if (x <= xs_.front() || x >= xs_.back()) return 0.0;
  const std::size_t i = segment_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6.0 * t2 - 6.0 * t) / h;
  const double dh10 = 3.0 * t2 - 4.0 * t + 1.0;
  const double dh01 = (-6.0 * t2 + 6.0 * t) / h;
  const double dh11 = 3.0 * t2 - 2.0 * t;
  return dh00 * ys_[i] + dh10 * slope_[i] + dh01 * ys_[i + 1] + dh11 * slope_[i + 1];
}

CubicSpline::CubicSpline(std::span<const double> xs, std::span<const double> ys)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  validate_knots(xs, ys, 3, "CubicSpline");
  const std::size_t n = xs_.size();
  second_.assign(n, 0.0);
  // Thomas algorithm on the tridiagonal system for natural boundary
  // conditions (second_[0] = second_[n-1] = 0).
  std::vector<double> c_prime(n, 0.0);
  std::vector<double> d_prime(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double h_lo = xs_[i] - xs_[i - 1];
    const double h_hi = xs_[i + 1] - xs_[i];
    const double diag = 2.0 * (h_lo + h_hi);
    const double rhs =
        6.0 * ((ys_[i + 1] - ys_[i]) / h_hi - (ys_[i] - ys_[i - 1]) / h_lo);
    const double denom = diag - h_lo * c_prime[i - 1];
    c_prime[i] = h_hi / denom;
    d_prime[i] = (rhs - h_lo * d_prime[i - 1]) / denom;
  }
  for (std::size_t i = n - 1; i-- > 1;) {
    second_[i] = d_prime[i] - c_prime[i] * second_[i + 1];
  }
}

std::size_t CubicSpline::segment_of(double x) const noexcept {
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto idx = static_cast<std::size_t>(it - xs_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, xs_.size() - 2);
}

double CubicSpline::operator()(double x) const noexcept {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = segment_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double a = (xs_[i + 1] - x) / h;
  const double b = (x - xs_[i]) / h;
  return a * ys_[i] + b * ys_[i + 1] +
         ((a * a * a - a) * second_[i] + (b * b * b - b) * second_[i + 1]) * h * h / 6.0;
}

double CubicSpline::derivative(double x) const noexcept {
  if (x <= xs_.front() || x >= xs_.back()) return 0.0;
  const std::size_t i = segment_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double a = (xs_[i + 1] - x) / h;
  const double b = (x - xs_[i]) / h;
  return (ys_[i + 1] - ys_[i]) / h +
         ((3.0 * b * b - 1.0) * second_[i + 1] - (3.0 * a * a - 1.0) * second_[i]) * h / 6.0;
}

}  // namespace tono
