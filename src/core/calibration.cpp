#include "src/core/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "src/common/checkpoint.hpp"

namespace tono::core {

TwoPointCalibration::TwoPointCalibration(double value_at_systolic, double value_at_diastolic,
                                         double cuff_systolic_mmhg,
                                         double cuff_diastolic_mmhg) {
  const double dv = value_at_systolic - value_at_diastolic;
  const double dp = cuff_systolic_mmhg - cuff_diastolic_mmhg;
  if (std::abs(dv) < 1e-12 || dp <= 0.0) {
    throw std::invalid_argument{"TwoPointCalibration: degenerate anchors"};
  }
  gain_ = dp / dv;
  offset_ = cuff_diastolic_mmhg - gain_ * value_at_diastolic;
}

TwoPointCalibration TwoPointCalibration::from_waveform(std::span<const double> values,
                                                       const BeatDetectorConfig& detector,
                                                       double cuff_systolic_mmhg,
                                                       double cuff_diastolic_mmhg,
                                                       std::size_t min_beats) {
  const BeatDetector det{detector};
  const auto analysis = det.analyze(values);
  if (analysis.beats.size() < min_beats) {
    throw std::runtime_error{"TwoPointCalibration: not enough beats in calibration window"};
  }
  return TwoPointCalibration{analysis.mean_systolic, analysis.mean_diastolic,
                             cuff_systolic_mmhg, cuff_diastolic_mmhg};
}

TwoPointCalibration TwoPointCalibration::rescaled(double full_scale_ratio) const {
  if (full_scale_ratio <= 0.0) {
    throw std::invalid_argument{"TwoPointCalibration::rescaled: ratio must be > 0"};
  }
  TwoPointCalibration out;
  out.gain_ = gain_ * full_scale_ratio;
  out.offset_ = offset_;
  return out;
}

void TwoPointCalibration::serialize(CheckpointWriter& out) const {
  out.section("calibration");
  out.f64(gain_);
  out.f64(offset_);
}

void TwoPointCalibration::restore(CheckpointReader& in) {
  in.section("calibration");
  gain_ = in.f64();
  offset_ = in.f64();
  if (!(gain_ != 0.0) || !std::isfinite(gain_) || !std::isfinite(offset_)) {
    throw CheckpointError{"calibration checkpoint gain/offset invalid"};
  }
}

std::vector<double> TwoPointCalibration::apply(std::span<const double> values) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(to_mmhg(v));
  return out;
}

}  // namespace tono::core
