# Empty compiler generated dependencies file for bench_fig7_adc_spectrum.
# This may be replaced when dependencies are built.
