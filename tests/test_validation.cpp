// Tests for the AAMI/BHS validation harness (docs/VALIDATION.md).
#include "src/core/validation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/bio/scenario.hpp"

namespace tono::core {
namespace {

bio::BeatTruth make_truth(double onset_s, double interval_s, double sys, double dia) {
  bio::BeatTruth t;
  t.onset_s = onset_s;
  t.interval_s = interval_s;
  t.systolic_mmhg = sys;
  t.diastolic_mmhg = dia;
  t.map_mmhg = dia + (sys - dia) / 3.0;
  return t;
}

TEST(ErrorAccumulator, TracksBiasSpreadAndBands) {
  ErrorAccumulator acc;
  acc.add(122.0, 120.0);  // +2
  acc.add(118.0, 120.0);  // -2
  acc.add(126.0, 120.0);  // +6
  acc.add(132.0, 120.0);  // +12
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_NEAR(acc.mean_error_mmhg(), 4.5, 1e-12);
  EXPECT_NEAR(acc.mean_absolute_error_mmhg(), 5.5, 1e-12);
  EXPECT_NEAR(acc.max_absolute_error_mmhg(), 12.0, 1e-12);
  EXPECT_NEAR(acc.within_5_mmhg(), 0.5, 1e-12);
  EXPECT_NEAR(acc.within_10_mmhg(), 0.75, 1e-12);
  EXPECT_NEAR(acc.within_15_mmhg(), 1.0, 1e-12);
  // Sample SD of {2,-2,6,12}: mean 4.5, var = (6.25+42.25+2.25+56.25)/3.
  EXPECT_NEAR(acc.error_sd_mmhg(), std::sqrt(107.0 / 3.0), 1e-9);
}

TEST(ErrorAccumulator, MergeIsExact) {
  ErrorAccumulator whole, left, right;
  for (int i = 0; i < 40; ++i) {
    const double est = 120.0 + (i % 7) - 3.0;
    whole.add(est, 120.0);
    (i < 17 ? left : right).add(est, 120.0);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean_error_mmhg(), whole.mean_error_mmhg(), 1e-12);
  EXPECT_NEAR(left.error_sd_mmhg(), whole.error_sd_mmhg(), 1e-12);
  EXPECT_NEAR(left.within_5_mmhg(), whole.within_5_mmhg(), 1e-12);
  EXPECT_NEAR(left.max_absolute_error_mmhg(), whole.max_absolute_error_mmhg(), 1e-12);
}

TEST(BlandAltmanStats, LimitsOfAgreement) {
  ErrorAccumulator acc;
  for (int i = 0; i < 50; ++i) acc.add(120.0 + 3.0 + ((i % 2) ? 1.0 : -1.0), 120.0);
  const BlandAltman ba = bland_altman(acc);
  EXPECT_EQ(ba.n, 50u);
  EXPECT_NEAR(ba.bias_mmhg, 3.0, 1e-12);
  EXPECT_NEAR(ba.loa_low_mmhg, ba.bias_mmhg - 1.96 * ba.sd_mmhg, 1e-12);
  EXPECT_NEAR(ba.loa_high_mmhg, ba.bias_mmhg + 1.96 * ba.sd_mmhg, 1e-12);
}

TEST(Grading, AamiBoundaries) {
  // Exactly at the limits: |bias| = 5 and SD <= 8 still passes.
  ErrorAccumulator at_limit;
  for (int i = 0; i < 40; ++i) at_limit.add(125.0, 120.0);
  EXPECT_EQ(aami_verdict(at_limit), AamiVerdict::kPass);

  ErrorAccumulator biased;
  for (int i = 0; i < 40; ++i) biased.add(125.6, 120.0);
  EXPECT_EQ(aami_verdict(biased), AamiVerdict::kFail);

  // Zero bias but wild spread fails on SD.
  ErrorAccumulator noisy;
  for (int i = 0; i < 40; ++i) noisy.add(120.0 + ((i % 2) ? 12.0 : -12.0), 120.0);
  EXPECT_EQ(aami_verdict(noisy), AamiVerdict::kFail);

  ErrorAccumulator thin;
  for (int i = 0; i < 10; ++i) thin.add(120.0, 120.0);
  EXPECT_EQ(aami_verdict(thin), AamiVerdict::kInsufficientData);
  EXPECT_EQ(aami_verdict(thin, 10), AamiVerdict::kPass);
}

TEST(Grading, BhsLetterBands) {
  // All beats within 5 mmHg → A.
  ErrorAccumulator a;
  for (int i = 0; i < 40; ++i) a.add(123.0, 120.0);
  EXPECT_EQ(bhs_grade(a), BhsGrade::kA);

  // 50% within 5, 80% within 10, all within 15 → B (fails the 60% A band).
  ErrorAccumulator b;
  for (int i = 0; i < 20; ++i) b.add(124.0, 120.0);
  for (int i = 0; i < 12; ++i) b.add(128.0, 120.0);
  for (int i = 0; i < 8; ++i) b.add(133.0, 120.0);
  EXPECT_EQ(bhs_grade(b), BhsGrade::kB);

  // Everything beyond 15 mmHg → D.
  ErrorAccumulator d;
  for (int i = 0; i < 40; ++i) d.add(140.0, 120.0);
  EXPECT_EQ(bhs_grade(d), BhsGrade::kD);

  ErrorAccumulator thin;
  thin.add(120.0, 120.0);
  EXPECT_EQ(bhs_grade(thin), BhsGrade::kInsufficientData);
}

TEST(SessionValidatorTest, PairsEstimatesToCoveringTruthBeat) {
  SessionValidator v{{}};
  std::vector<bio::BeatTruth> truth;
  for (int i = 0; i < 4; ++i) truth.push_back(make_truth(i * 1.0, 1.0, 120.0, 80.0));
  v.add_truth(truth);
  v.add_estimate(0.5, 121.0, 81.0);   // beat 0
  v.add_estimate(2.25, 124.0, 84.0);  // beat 2
  v.add_estimate(9.0, 150.0, 90.0);   // after the last beat: unmatched
  const auto rec = v.finalize(7, "cohortX", "rest", 99, nullptr);
  EXPECT_EQ(rec.session_id, 7u);
  EXPECT_EQ(rec.truth_beats, 4u);
  EXPECT_EQ(rec.estimate_beats, 3u);
  EXPECT_EQ(rec.matched_beats, 2u);
  EXPECT_EQ(rec.sys_error.count(), 2u);
  EXPECT_NEAR(rec.sys_error.mean_error_mmhg(), 2.5, 1e-12);
  EXPECT_NEAR(rec.dia_error.mean_error_mmhg(), 2.5, 1e-12);
  // Estimated MAP uses the 1/3-pulse-pressure rule.
  EXPECT_NEAR(rec.map_error.mean_error_mmhg(),
              ((81.0 + 40.0 / 3.0) - (80.0 + 40.0 / 3.0) +
               (84.0 + 40.0 / 3.0) - (80.0 + 40.0 / 3.0)) /
                  2.0,
              1e-9);
  EXPECT_NEAR(rec.duration_s, 4.0, 1e-12);
  EXPECT_FALSE(rec.transient.valid);
}

TEST(SessionValidatorTest, ClockOffsetAlignsTruth) {
  SessionValidator a{{}};
  SessionValidator b{{}};
  std::vector<bio::BeatTruth> shifted;
  for (int i = 0; i < 3; ++i) shifted.push_back(make_truth(10.0 + i, 1.0, 120.0, 80.0));
  a.add_truth(shifted, 10.0);  // generator clock 10 s ahead of stream clock
  std::vector<bio::BeatTruth> plain;
  for (int i = 0; i < 3; ++i) plain.push_back(make_truth(0.0 + i, 1.0, 120.0, 80.0));
  b.add_truth(plain);
  a.add_estimate(1.5, 122.0, 82.0);
  b.add_estimate(1.5, 122.0, 82.0);
  const auto ra = a.finalize(0, "", "", 0, nullptr);
  const auto rb = b.finalize(0, "", "", 0, nullptr);
  EXPECT_EQ(ra.matched_beats, rb.matched_beats);
  EXPECT_NEAR(ra.sys_error.mean_error_mmhg(), rb.sys_error.mean_error_mmhg(), 1e-12);
}

TEST(TransientResponse, MeasuresRiseSettleAndSteadyState) {
  // Profile: flat 120, step to 150 at t=10, hold to t=40.
  const bio::ScenarioProfile profile{
      {bio::ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
       bio::ScenarioKeyframe{10.0, 120.0, 80.0, 70.0},
       bio::ScenarioKeyframe{11.0, 150.0, 90.0, 80.0},
       bio::ScenarioKeyframe{40.0, 150.0, 90.0, 80.0}},
      "step"};
  // First-order-ish estimate: reaches 10% at ~10.5, 90% at ~13, settles.
  std::vector<EstimatedBeat> est;
  for (double t = 0.0; t <= 40.0; t += 0.5) {
    double sys = 120.0;
    if (t >= 10.0) sys = 150.0 - 30.0 * std::exp(-(t - 10.0) / 1.5);
    est.push_back({t, sys, 80.0});
  }
  const auto m = transient_response(est, profile, 5.0);
  ASSERT_TRUE(m.valid);
  EXPECT_NEAR(m.step_time_s, 10.0, 1e-9);
  EXPECT_NEAR(m.step_from_mmhg, 120.0, 1e-9);
  EXPECT_NEAR(m.step_to_mmhg, 150.0, 1e-9);
  // 10%→90%: exp(-(t-10)/1.5) from 0.9 down to 0.1 → Δt = 1.5·ln 9 ≈ 3.30,
  // quantized by the 0.5 s beat grid.
  EXPECT_GT(m.rise_time_s, 2.0);
  EXPECT_LT(m.rise_time_s, 4.5);
  // Settles within ±5 of 150 once the exponential decays below 5 mmHg.
  EXPECT_GT(m.settling_time_s, 0.0);
  EXPECT_LT(m.settling_time_s, 6.0);
  EXPECT_NEAR(m.steady_state_error_mmhg, 0.0, 0.5);
  EXPECT_LT(m.peak_error_mmhg, 5.0);

  // A sluggish estimate that never reaches 90% reports rise/settle as -1.
  std::vector<EstimatedBeat> slow;
  for (double t = 0.0; t <= 40.0; t += 0.5) {
    slow.push_back({t, t >= 10.0 ? 130.0 : 120.0, 80.0});
  }
  const auto ms = transient_response(slow, profile, 5.0);
  ASSERT_TRUE(ms.valid);
  EXPECT_LT(ms.rise_time_s, 0.0);
  EXPECT_LT(ms.settling_time_s, 0.0);
  EXPECT_NEAR(ms.steady_state_error_mmhg, -20.0, 1e-9);
}

TEST(TransientResponse, InvalidWithoutAStepOrEstimates) {
  const bio::ScenarioProfile flat{{bio::ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                                   bio::ScenarioKeyframe{30.0, 122.0, 80.0, 70.0}},
                                  "flat"};
  std::vector<EstimatedBeat> est{{1.0, 120.0, 80.0}, {2.0, 120.0, 80.0}};
  EXPECT_FALSE(transient_response(est, flat, 5.0).valid);

  const bio::ScenarioProfile step{{bio::ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                                   bio::ScenarioKeyframe{10.0, 150.0, 90.0, 80.0}},
                                  "step"};
  EXPECT_FALSE(transient_response({}, step, 5.0).valid);
}

SessionValidationRecord synthetic_record(std::uint32_t id, std::string cohort,
                                         double bias) {
  SessionValidator v{{}};
  std::vector<bio::BeatTruth> truth;
  for (int i = 0; i < 40; ++i) truth.push_back(make_truth(i * 1.0, 1.0, 120.0, 80.0));
  v.add_truth(truth);
  for (int i = 0; i < 40; ++i) {
    v.add_estimate(i + 0.5, 120.0 + bias, 80.0 + bias * 0.5);
  }
  return v.finalize(id, std::move(cohort), "rest", id, nullptr);
}

TEST(CohortAggregation, ExactMergeAndOrderInvariance) {
  std::vector<SessionValidationRecord> records;
  records.push_back(synthetic_record(0, "old", 2.0));
  records.push_back(synthetic_record(1, "young", -1.0));
  records.push_back(synthetic_record(2, "old", 4.0));

  auto cohorts = aggregate_by_cohort(records);
  ASSERT_EQ(cohorts.size(), 2u);
  EXPECT_EQ(cohorts[0].cohort, "old");  // name-sorted
  EXPECT_EQ(cohorts[1].cohort, "young");
  EXPECT_EQ(cohorts[0].sessions, 2u);
  EXPECT_EQ(cohorts[0].sys_error.count(), 80u);
  EXPECT_NEAR(cohorts[0].sys_error.mean_error_mmhg(), 3.0, 1e-12);
  EXPECT_EQ(cohorts[0].aami_pass_sessions, 2u);

  // Record order must not matter.
  std::swap(records[0], records[2]);
  auto again = aggregate_by_cohort(records);
  ASSERT_EQ(again.size(), 2u);
  EXPECT_NEAR(again[0].sys_error.mean_error_mmhg(),
              cohorts[0].sys_error.mean_error_mmhg(), 1e-12);
  EXPECT_NEAR(again[0].sys_error.error_sd_mmhg(), cohorts[0].sys_error.error_sd_mmhg(),
              1e-12);
}

TEST(ValidationJsonl, ByteStableAndShaped) {
  std::vector<SessionValidationRecord> records;
  records.push_back(synthetic_record(3, "old", 2.0));
  records.push_back(synthetic_record(1, "young", -1.0));

  std::ostringstream a, b;
  export_validation_jsonl(records, a);
  export_validation_jsonl(records, b);
  EXPECT_EQ(a.str(), b.str());

  // Sessions come out ordered by id even when recorded out of order.
  const std::string text = a.str();
  const auto s1 = text.find("\"type\":\"validation_session\",\"id\":1");
  const auto s3 = text.find("\"type\":\"validation_session\",\"id\":3");
  ASSERT_NE(s1, std::string::npos);
  ASSERT_NE(s3, std::string::npos);
  EXPECT_LT(s1, s3);
  EXPECT_NE(text.find("\"type\":\"validation_cohort\",\"cohort\":\"old\""),
            std::string::npos);
  EXPECT_NE(text.find("\"type\":\"validation_fleet\",\"sessions\":2"),
            std::string::npos);
  // Transient block is gated: none of these records had a valid step.
  EXPECT_EQ(text.find("\"transient\""), std::string::npos);
  // Every line is newline-terminated (5 lines: 2 sessions, 2 cohorts, 1 fleet).
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

}  // namespace
}  // namespace tono::core
