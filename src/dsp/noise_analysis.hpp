// noise_analysis.hpp — noise-floor and stability characterization.
//
// Two standard instruments for §4's "reliability and stability" question:
//   * Welch's averaged periodogram — a consistent PSD estimate of the
//     converter/sensor noise floor (the single-shot FFT of Fig. 7 has 100 %
//     variance per bin; Welch trades resolution for variance),
//   * Allan deviation — separates white noise (σ ∝ 1/√τ) from drift
//     (σ rising with τ), the canonical sensor-stability plot.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/dsp/window.hpp"

namespace tono::dsp {

struct WelchConfig {
  std::size_t segment_length{1024};  ///< power of two
  double overlap{0.5};               ///< fraction of segment, in [0, 0.9]
  WindowKind window{WindowKind::kHann};
};

struct PsdEstimate {
  std::vector<double> freq_hz;
  std::vector<double> psd;  ///< one-sided density [unit²/Hz]
  std::size_t segments{0};
};

/// Welch PSD of a real record. Throws std::invalid_argument for a bad
/// config or a record shorter than one segment.
[[nodiscard]] PsdEstimate welch_psd(std::span<const double> x, double sample_rate_hz,
                                    const WelchConfig& config = {});

/// Integrated noise power of a PSD between two frequencies [unit²].
[[nodiscard]] double integrate_psd(const PsdEstimate& psd, double f_lo_hz, double f_hi_hz);

struct AllanPoint {
  double tau_s{0.0};
  double adev{0.0};
};

/// Overlapping Allan deviation at logarithmically spaced averaging times
/// from `tau_min_s` up to a quarter of the record. Throws on bad input.
[[nodiscard]] std::vector<AllanPoint> allan_deviation(std::span<const double> x,
                                                      double sample_rate_hz,
                                                      double tau_min_s = 0.0,
                                                      std::size_t points_per_decade = 4);

}  // namespace tono::dsp
