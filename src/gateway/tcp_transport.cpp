#include "src/gateway/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tono::gateway {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError{what + ": " + std::strerror(errno)};
}

}  // namespace

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("TcpListener: socket");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw TransportError{"TcpListener: bad host '" + host + "'"};
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 8) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("TcpListener: bind/listen on " + host);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("TcpListener: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpTransport> TcpListener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw_errno("TcpListener: accept");
  return std::unique_ptr<TcpTransport>{new TcpTransport{fd, /*start_reader=*/true}};
}

std::unique_ptr<TcpTransport> TcpTransport::connect(const std::string& host,
                                                    std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("TcpTransport: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError{"TcpTransport: bad host '" + host + "'"};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("TcpTransport: connect to " + host);
  }
  return std::unique_ptr<TcpTransport>{new TcpTransport{fd, /*start_reader=*/false}};
}

TcpTransport::TcpTransport(int fd, bool start_reader) : fd_(fd) {
  // Envelopes are small (≤ ~140 B); Nagle would batch them harmlessly but
  // adds latency to paced replay. Best effort — some stacks refuse it.
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (start_reader) {
    reader_ = std::thread{[this] { reader_loop_(); }};
  }
}

TcpTransport::~TcpTransport() {
  close();
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

void TcpTransport::reader_loop_() {
  // Continuously drain the socket so the sender never wedges on full kernel
  // buffers between batch barriers. recv() hands the queued bytes on.
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      std::lock_guard<std::mutex> lock{recv_mutex_};
      inbox_.insert(inbox_.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) continue;
    // 0 = orderly peer close; <0 = error or our own shutdown() — both end
    // the stream.
    peer_closed_.store(true, std::memory_order_release);
    return;
  }
}

bool TcpTransport::try_send(std::span<const std::uint8_t> chunk) {
  // One mutex serializes whole envelopes onto the stream — sessions on
  // different worker threads must never interleave bytes mid-envelope.
  std::lock_guard<std::mutex> lock{send_mutex_};
  std::size_t sent = 0;
  while (sent < chunk.size()) {
    const ssize_t n = ::send(fd_, chunk.data() + sent, chunk.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("TcpTransport: send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;  // lossless: the kernel blocked us instead of refusing
}

std::size_t TcpTransport::recv(std::vector<std::uint8_t>& out) {
  std::lock_guard<std::mutex> lock{recv_mutex_};
  const std::size_t n = inbox_.size();
  out.insert(out.end(), inbox_.begin(), inbox_.end());
  inbox_.clear();
  return n;
}

void TcpTransport::close() {
  if (!shutdown_.exchange(true, std::memory_order_acq_rel)) {
    // Wakes the reader thread (its recv returns 0/err) and tells the peer.
    (void)::shutdown(fd_, SHUT_RDWR);
  }
}

bool TcpTransport::closed() const noexcept {
  return peer_closed_.load(std::memory_order_acquire) ||
         shutdown_.load(std::memory_order_acquire);
}

}  // namespace tono::gateway
