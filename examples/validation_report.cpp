// validation_report — population-scale AAMI/BHS validation of the simulated
// tonometer (docs/VALIDATION.md).
//
//   validation_report --seed 42 --population 16 --duration 60
//                     [--threads 0] [--output report.jsonl] [--min-pairs 30]
//                     [--artifacts]
//
// Draws a deterministic patient population (bio::PopulationGenerator), runs
// each member as a full vertical-slice PatientSession on a SweepRunner, and
// grades every session's estimated per-beat pressures against the pulse
// generator's ground truth: AAMI-style pass/fail, BHS-style letter grades,
// Bland–Altman agreement, transient-response metrics. Emits the
// fleet-aggregatable JSONL artifact (per-session, per-cohort, fleet lines)
// plus a human-readable cohort table.
//
// Determinism contract: for fixed flags the JSONL bytes are identical
// across repeated runs and across --threads values — population members are
// pure functions of (seed, index), sessions are self-contained slices, and
// the cohort roll-up is an exact merge of per-session accumulators.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/bio/population.hpp"
#include "src/common/cli.hpp"
#include "src/core/sweep_runner.hpp"
#include "src/core/validation.hpp"
#include "src/fleet/ward_aggregator.hpp"

using namespace tono;

namespace {

/// Runs one population member as a solo vertical slice and grades it.
core::SessionValidationRecord run_member(const bio::ScenarioConfig& member,
                                         double duration_s, std::size_t min_pairs) {
  fleet::SessionConfig config;
  config.seed = member.seed;
  config.scenario_profile = member.make_profile();
  config.wrist.pulse = member.pulse;
  config.wrist.artifacts = member.artifacts;
  config.wrist.enable_artifacts = member.enable_artifacts;

  fleet::PatientSession session{static_cast<std::uint32_t>(member.member_index), config};
  session.admit();

  core::ValidationConfig vconfig;
  vconfig.min_pairs = min_pairs;
  core::SessionValidator validator{vconfig};

  // Estimates and truth are scored on a common clock: the pipeline clock
  // (which the scenario profile also runs on). Beat events carry stream
  // time, so shift them by the monitoring epoch.
  const double epoch_s = session.stream_epoch_clock_s();
  const double rate_hz = session.output_rate_hz();
  const auto total_frames = static_cast<std::uint64_t>(duration_s * rate_hz);
  const std::uint64_t chunk_frames = 1024;

  fleet::FleetEvent event;
  std::int16_t code;
  for (std::uint64_t done = 0; done < total_frames;) {
    const std::uint64_t n = std::min(chunk_frames, total_frames - done);
    session.step(static_cast<std::size_t>(n));
    done += n;
    while (session.events().try_pop(event)) {
      if (event.kind == fleet::FleetEventKind::kBeat) {
        validator.add_estimate(event.time_s + epoch_s, event.value_a, event.value_b);
      }
    }
    while (session.codes().try_pop(code)) {
    }
  }

  // Ground truth: drain the bounded log; beats that ended before monitoring
  // started (the calibration acquisition) are not scored.
  for (const auto& beat : session.drain_beat_truth()) {
    if (beat.onset_s + beat.interval_s <= epoch_s) continue;
    validator.add_truth(std::span{&beat, 1}, 0.0);
  }

  return validator.finalize(static_cast<std::uint32_t>(member.member_index),
                            member.cohort, bio::to_string(member.family), member.seed,
                            config.scenario_profile.get());
}

void print_grade_row(std::ostream& os, const std::string& label, std::size_t sessions,
                     std::size_t aami_pass, const core::ErrorAccumulator& sys,
                     std::size_t min_pairs) {
  const core::BlandAltman ba = core::bland_altman(sys);
  os << "  " << label << ": sessions=" << sessions << " aami_pass=" << aami_pass
     << " sys_bias=" << ba.bias_mmhg << " sys_sd=" << ba.sd_mmhg
     << " aami=" << core::to_string(core::aami_verdict(sys, min_pairs))
     << " bhs=" << core::to_string(core::bhs_grade(sys, min_pairs)) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args{"validation_report",
                 "grade a simulated patient population against ground truth"};
  args.add_int("seed", "population base seed", 42);
  args.add_int("population", "number of population members to run", 16);
  args.add_double("duration", "monitoring stream per session [s]", 60.0);
  args.add_int("threads", "sweep worker threads (0 = hardware, 1 = serial)", 0);
  args.add_string("output", "write the validation JSONL artifact to this file", "");
  args.add_int("min-pairs", "beat pairs below this give insufficient-data grades", 30);
  args.add_flag("artifacts", "enable per-member motion/contact artefacts");
  if (!args.parse(argc, argv)) {
    std::cerr << (args.help_requested() ? args.help_text() : args.error() + "\n");
    return args.help_requested() ? 0 : 2;
  }
  const long population_raw = args.int_value("population");
  const long threads_raw = args.int_value("threads");
  const long min_pairs_raw = args.int_value("min-pairs");
  const double duration_s = args.double_value("duration");
  if (population_raw < 1) {
    std::cerr << "--population must be >= 1\n";
    return 2;
  }
  if (threads_raw < 0) {
    std::cerr << "--threads must be >= 0\n";
    return 2;
  }
  if (min_pairs_raw < 1) {
    std::cerr << "--min-pairs must be >= 1\n";
    return 2;
  }
  if (duration_s <= 0.0) {
    std::cerr << "--duration must be > 0\n";
    return 2;
  }
  const auto population = static_cast<std::size_t>(population_raw);
  const auto min_pairs = static_cast<std::size_t>(min_pairs_raw);

  bio::PopulationConfig pop_config;
  pop_config.seed = static_cast<std::uint64_t>(args.int_value("seed"));
  pop_config.scenario_duration_s = duration_s;
  pop_config.enable_artifacts = args.flag("artifacts");
  const bio::PopulationGenerator generator{pop_config};
  const auto members = generator.generate(population);

  core::SweepConfig sweep_config;
  sweep_config.threads = static_cast<std::size_t>(threads_raw);
  sweep_config.base_seed = pop_config.seed;
  sweep_config.stream_name = "validation";
  core::SweepRunner runner{sweep_config};

  const auto records = runner.map(members, [&](const bio::ScenarioConfig& member) {
    return run_member(member, duration_s, min_pairs);
  });

  fleet::WardAggregator aggregator;
  for (const auto& rec : records) aggregator.record_validation(rec);

  std::ostringstream jsonl;
  core::export_validation_jsonl(aggregator.validation_records(), jsonl, min_pairs);
  const std::string artifact = jsonl.str();
  const std::string output_path = args.string_value("output");
  if (!output_path.empty()) {
    std::ofstream out{output_path, std::ios::binary | std::ios::trunc};
    if (!out) {
      std::cerr << "cannot open --output file " << output_path << "\n";
      return 1;
    }
    out << artifact;
  } else {
    std::cout << artifact;
  }

  std::cout << "validation_report: population=" << population << " duration=" << duration_s
            << "s threads=" << runner.thread_count() << "\n";
  core::CohortValidation fleet_total;
  for (const auto& cohort : aggregator.validation_by_cohort()) {
    print_grade_row(std::cout, "cohort " + cohort.cohort, cohort.sessions,
                    cohort.aami_pass_sessions, cohort.sys_error, min_pairs);
    fleet_total.sessions += cohort.sessions;
    fleet_total.aami_pass_sessions += cohort.aami_pass_sessions;
    fleet_total.sys_error.merge(cohort.sys_error);
  }
  print_grade_row(std::cout, "fleet", fleet_total.sessions,
                  fleet_total.aami_pass_sessions, fleet_total.sys_error, min_pairs);
  return 0;
}
