#include "src/dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/common/math_utils.hpp"
#include "src/dsp/fft.hpp"

namespace tono::dsp {

double claim_band(std::vector<double>& pwr, std::size_t center,
                  std::size_t halfwidth) noexcept {
  // Empty spectrum: pwr.size() - 1 below would wrap to SIZE_MAX and the loop
  // would read past the (nonexistent) buffer.
  if (pwr.empty()) return 0.0;
  const std::size_t lo = center > halfwidth ? center - halfwidth : 0;
  const std::size_t hi = std::min(center + halfwidth, pwr.size() - 1);
  if (lo > hi) return 0.0;
  double acc = 0.0;
  for (std::size_t k = lo; k <= hi; ++k) {
    acc += pwr[k];
    pwr[k] = 0.0;
  }
  return acc;
}

double coherent_frequency(double target_hz, double sample_rate_hz,
                          std::size_t record_length) noexcept {
  if (record_length == 0 || sample_rate_hz <= 0.0) return target_hz;
  const double bin_hz = sample_rate_hz / static_cast<double>(record_length);
  auto cycles = static_cast<long long>(std::llround(target_hz / bin_hz));
  if (cycles < 1) cycles = 1;
  if (cycles % 2 == 0) ++cycles;  // prefer an odd bin count
  return static_cast<double>(cycles) * bin_hz;
}

double ideal_delta_sigma_snr_db(int order, double osr, double input_dbfs) noexcept {
  const double l = static_cast<double>(order);
  const double pi_term = std::pow(std::numbers::pi, l) / std::sqrt(2.0 * l + 1.0);
  return 6.02 + 1.76 + (20.0 * l + 10.0) * std::log10(osr) -
         20.0 * std::log10(pi_term) + input_dbfs;
}

double enob_from_sndr(double sndr_db) noexcept { return (sndr_db - 1.76) / 6.02; }

SpectrumAnalysis analyze_tone(std::span<const double> record, const SpectrumConfig& config) {
  if (!is_pow2(record.size()) || record.size() < 16) {
    throw std::invalid_argument{"analyze_tone: record length must be a power of two >= 16"};
  }
  const std::size_t n = record.size();
  const auto window = make_window(config.window, n, config.kaiser_beta);
  const double cg = coherent_gain(window);
  const double enbw = enbw_bins(window);
  const std::size_t halfwidth = leakage_halfwidth_bins(config.window);

  // Windowed record, compensated for the window's coherent amplitude loss so
  // dBFS values are window-independent.
  std::vector<double> windowed(n);
  for (std::size_t i = 0; i < n; ++i) windowed[i] = record[i] * window[i] / cg;

  auto pwr = power_spectrum(windowed);
  const std::size_t bins = pwr.size();

  SpectrumAnalysis out;
  out.freq_hz.resize(bins);
  const double bin_hz = config.sample_rate_hz / static_cast<double>(n);
  for (std::size_t k = 0; k < bins; ++k) out.freq_hz[k] = bin_hz * static_cast<double>(k);

  // PSD in dBFS before any bin-zeroing, for plotting.
  out.psd_dbfs.resize(bins);
  for (std::size_t k = 0; k < bins; ++k) {
    // Reference: full-scale sine power = 0.5 → 0 dBFS.
    out.psd_dbfs[k] = power_to_db(pwr[k] / 0.5);
  }

  // Remove DC leakage region.
  claim_band(pwr, 0, config.dc_exclude_bins);

  // Locate fundamental.
  std::size_t fund = config.forced_fundamental_bin;
  if (fund == 0) {
    fund = config.dc_exclude_bins + 1;
    for (std::size_t k = fund; k < bins; ++k) {
      if (pwr[k] > pwr[fund]) fund = k;
    }
  }
  out.fundamental_bin = fund;
  out.fundamental_hz = out.freq_hz[std::min(fund, bins - 1)];

  // All band powers are divided by the window ENBW: windowing spreads a
  // coherent tone's power over the leakage bins such that the integrated,
  // coherent-gain-compensated power is ENBW × the true power (and the same
  // factor widens each noise bin).
  out.signal_power = claim_band(pwr, fund, halfwidth) / enbw;
  out.fundamental_dbfs = power_to_db(out.signal_power / 0.5);

  // Harmonic bands (with folding around Nyquist).
  double distortion = 0.0;
  const std::size_t nyquist_bin = bins - 1;
  for (std::size_t h = 2; h <= config.harmonics + 1; ++h) {
    std::size_t bin = (fund * h) % (2 * nyquist_bin);
    if (bin > nyquist_bin) bin = 2 * nyquist_bin - bin;  // alias fold
    distortion += claim_band(pwr, bin, halfwidth) / enbw;
  }
  out.distortion_power = distortion;

  // Everything left is noise.
  double noise = 0.0;
  double largest_spur = 0.0;
  for (std::size_t k = config.dc_exclude_bins + 1; k < bins; ++k) {
    noise += pwr[k];
    largest_spur = std::max(largest_spur, pwr[k]);
  }
  noise /= enbw;
  out.noise_power = noise;

  out.snr_db = power_to_db(out.signal_power / std::max(noise, 1e-300));
  out.sndr_db =
      power_to_db(out.signal_power / std::max(noise + distortion, 1e-300));
  out.thd_db = power_to_db(std::max(distortion, 1e-300) / out.signal_power);
  // SFDR vs the largest remaining spur (harmonics were claimed; recompute
  // against distortion bands too by comparing with per-harmonic max power —
  // the conservative "largest non-signal bin" convention).
  const double spur_ref = std::max(largest_spur, 1e-300);
  out.sfdr_db = power_to_db(out.signal_power / spur_ref);
  out.enob_bits = enob_from_sndr(out.sndr_db);
  return out;
}

}  // namespace tono::dsp
