#include "src/common/table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace tono {

std::string format_double(double value, int precision) {
  std::ostringstream oss;
  if (std::isinf(value)) {
    oss << (value > 0 ? "inf" : "-inf");
  } else if (std::isnan(value)) {
    oss << "nan";
  } else {
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << value;
  }
  return oss.str();
}

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label, double value, const std::string& unit,
                        int precision) {
  add_row({label, format_double(value, precision), unit});
}

std::string TextTable::to_string() const {
  // Compute column widths across header and all rows.
  std::size_t ncols = header_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream oss;
  oss << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      oss << cell;
      if (c + 1 < ncols) oss << std::string(widths[c] - cell.size() + 2, ' ');
    }
    oss << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t c = 0; c < ncols; ++c) {
      oss << std::string(widths[c], '-');
      if (c + 1 < ncols) oss << "  ";
    }
    oss << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

void SeriesWriter::add(double x, double y) {
  xs_.push_back(x);
  ys_.push_back(y);
}

void SeriesWriter::reserve(std::size_t n) {
  xs_.reserve(n);
  ys_.reserve(n);
}

void SeriesWriter::write_csv(std::ostream& os) const {
  os << "# series " << name_ << '\n';
  os << x_label_ << ',' << y_label_ << '\n';
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    os << format_double(xs_[i], 6) << ',' << format_double(ys_[i], 6) << '\n';
  }
}

void SeriesWriter::write_ascii_plot(std::ostream& os, std::size_t width,
                                    std::size_t height) const {
  if (xs_.empty() || width < 8 || height < 4) return;
  double y_lo = std::numeric_limits<double>::infinity();
  double y_hi = -std::numeric_limits<double>::infinity();
  for (double y : ys_) {
    if (std::isfinite(y)) {
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
  }
  if (!std::isfinite(y_lo) || y_hi == y_lo) {
    y_hi = y_lo + 1.0;
  }
  const double x_lo = xs_.front();
  const double x_hi = xs_.back() == x_lo ? x_lo + 1.0 : xs_.back();

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (!std::isfinite(ys_[i])) continue;
    const double fx = (xs_[i] - x_lo) / (x_hi - x_lo);
    const double fy = (ys_[i] - y_lo) / (y_hi - y_lo);
    auto col = static_cast<std::size_t>(fx * static_cast<double>(width - 1) + 0.5);
    auto row = static_cast<std::size_t>((1.0 - fy) * static_cast<double>(height - 1) + 0.5);
    col = std::min(col, width - 1);
    row = std::min(row, height - 1);
    grid[row][col] = '*';
  }
  os << "-- " << name_ << " (" << y_label_ << " vs " << x_label_ << ") --\n";
  os << format_double(y_hi, 3) << '\n';
  for (const auto& line : grid) os << '|' << line << '\n';
  os << format_double(y_lo, 3) << " +" << std::string(width, '-') << '\n';
  os << "  x: " << format_double(x_lo, 3) << " .. " << format_double(x_hi, 3) << '\n';
}

SeriesWriter SeriesWriter::decimated(std::size_t max_points) const {
  if (max_points == 0 || xs_.size() <= max_points) return *this;
  SeriesWriter out{name_, x_label_, y_label_};
  const std::size_t stride = (xs_.size() + max_points - 1) / max_points;
  for (std::size_t i = 0; i < xs_.size(); i += stride) out.add(xs_[i], ys_[i]);
  if ((xs_.size() - 1) % stride != 0) out.add(xs_.back(), ys_.back());
  return out;
}

}  // namespace tono
