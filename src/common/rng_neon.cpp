// rng_neon.cpp — NEON (aarch64) vector phase of Rng::fill_gaussian_multi.
//
// Two independent xoshiro256++ streams per 128-bit vector, one per 64-bit
// lane; the structure and the exactness argument are those of rng_avx2.cpp
// (see the header comment there), with uint64x2_t / float64x2_t in place of
// the 256-bit types. aarch64 has a native exact u64→f64 conversion
// (vcvtq_f64_u64 rounds to nearest; inputs here are < 2^53, so it is exact),
// which replaces the bias-trick of the x86 path.
#if defined(TONO_SIMD_NEON)

#include <arm_neon.h>

#include <cmath>
#include <cstdint>

#include "src/common/gauss_log.hpp"
#include "src/common/rng.hpp"

namespace tono {
namespace {

template <int K>
inline uint64x2_t rotl64(uint64x2_t x) noexcept {
  return vorrq_u64(vshlq_n_u64(x, K), vshrq_n_u64(x, 64 - K));
}

}  // namespace

void Rng::fill_gaussian_x2_neon_(Rng* const* rngs, double* const* dests,
                                 std::size_t* pos,
                                 const std::size_t* ns) noexcept {
  uint64x2_t s[4];
  for (std::size_t j = 0; j < 4; ++j) {
    const std::uint64_t words[2] = {rngs[0]->state_[j], rngs[1]->state_[j]};
    s[j] = vld1q_u64(words);
  }
  const auto next2 = [&s]() noexcept {
    const uint64x2_t result =
        vaddq_u64(rotl64<23>(vaddq_u64(s[0], s[3])), s[0]);
    const uint64x2_t t = vshlq_n_u64(s[1], 17);
    s[2] = veorq_u64(s[2], s[0]);
    s[3] = veorq_u64(s[3], s[1]);
    s[1] = veorq_u64(s[1], s[2]);
    s[0] = veorq_u64(s[0], s[3]);
    s[2] = veorq_u64(s[2], t);
    s[3] = rotl64<45>(s[3]);
    return result;
  };
  const auto uniform_pm1x2 = [&next2]() noexcept {
    const float64x2_t d = vcvtq_f64_u64(vshrq_n_u64(next2(), 11));
    return vaddq_f64(vdupq_n_f64(-1.0),
                     vmulq_f64(vdupq_n_f64(2.0),
                               vmulq_f64(d, vdupq_n_f64(0x1.0p-53))));
  };

  bool stream_done = false;
  while (!stream_done) {
    const float64x2_t u = uniform_pm1x2();
    const float64x2_t v = uniform_pm1x2();
    const float64x2_t sq = vaddq_f64(vmulq_f64(u, u), vmulq_f64(v, v));
    const uint64x2_t not_zero = vreinterpretq_u64_u32(
        vmvnq_u32(vreinterpretq_u32_u64(vceqq_f64(sq, vdupq_n_f64(0.0)))));
    const uint64x2_t accept =
        vandq_u64(vcltq_f64(sq, vdupq_n_f64(1.0)), not_zero);
    std::uint64_t accept_lanes[2];
    vst1q_u64(accept_lanes, accept);
    double ua[2];
    double va[2];
    double sa[2];
    vst1q_f64(ua, u);
    vst1q_f64(va, v);
    vst1q_f64(sa, sq);
    for (std::size_t w = 0; w < 2; ++w) {
      if (accept_lanes[w] == 0) continue;
      const double factor = gausslog::polar_factor(sa[w]);
      Rng* rng = rngs[w];
      double* dest = dests[w];
      dest[pos[w]++] = ua[w] * factor;
      if (pos[w] < ns[w]) {
        dest[pos[w]++] = va[w] * factor;
        if (pos[w] == ns[w]) stream_done = true;
      } else {
        rng->spare_gaussian_ = va[w] * factor;
        rng->has_spare_gaussian_ = true;
        stream_done = true;
      }
    }
  }
  for (std::size_t j = 0; j < 4; ++j) {
    std::uint64_t words[2];
    vst1q_u64(words, s[j]);
    rngs[0]->state_[j] = words[0];
    rngs[1]->state_[j] = words[1];
  }
}

}  // namespace tono

#endif  // TONO_SIMD_NEON
