// Tests for the behavioural OTA settling model.
#include "src/analog/opamp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::analog {
namespace {

TEST(OpAmp, FullSettlingForSlowClock) {
  OpAmp amp{OpAmpConfig{}};
  // Default GBW 10 MHz, half-period 3.9 µs: error < 1e-60.
  const double dt = 0.5 / 128000.0;
  EXPECT_NEAR(amp.settle(0.5, dt), 0.5, 1e-12);
}

TEST(OpAmp, PartialSettlingForFastClock) {
  OpAmpConfig cfg;
  cfg.gbw_hz = 100e3;  // deliberately slow amp
  OpAmp amp{cfg};
  const double dt = 0.5 / 128000.0;
  const double settled = amp.settle(0.1, dt);
  EXPECT_GT(settled, 0.05);
  EXPECT_LT(settled, 0.1);
}

TEST(OpAmp, SettleIsSignSymmetric) {
  OpAmp amp{OpAmpConfig{}};
  const double dt = 1e-7;
  EXPECT_DOUBLE_EQ(amp.settle(0.3, dt), -amp.settle(-0.3, dt));
}

TEST(OpAmp, ZeroStepZeroOutput) {
  OpAmp amp{OpAmpConfig{}};
  EXPECT_DOUBLE_EQ(amp.settle(0.0, 1e-6), 0.0);
  EXPECT_DOUBLE_EQ(amp.settle(1.0, 0.0), 0.0);
}

TEST(OpAmp, SlewLimitsLargeFastSteps) {
  OpAmpConfig cfg;
  cfg.slew_rate_v_per_s = 1e6;  // 1 V/µs
  OpAmp amp{cfg};
  // 2 V step in 0.5 µs: can only slew 0.5 V.
  const double out = amp.settle(2.0, 0.5e-6);
  EXPECT_NEAR(out, 0.5, 1e-9);
}

TEST(OpAmp, SlewThenSettleConvergesForLongerTime) {
  OpAmpConfig cfg;
  cfg.slew_rate_v_per_s = 1e6;
  OpAmp amp{cfg};
  const double out = amp.settle(2.0, 10e-6);
  EXPECT_NEAR(out, 2.0, 1e-3);
}

TEST(OpAmp, SettlingMonotoneInTime) {
  OpAmpConfig cfg;
  cfg.gbw_hz = 1e6;
  OpAmp amp{cfg};
  double prev = 0.0;
  for (double dt = 1e-8; dt < 1e-5; dt *= 2.0) {
    const double out = amp.settle(1.0, dt);
    EXPECT_GE(out, prev);
    prev = out;
  }
}

TEST(OpAmp, LeakFactorBelowOne) {
  OpAmp amp{OpAmpConfig{}};
  EXPECT_LT(amp.leak_factor(), 1.0);
  EXPECT_GT(amp.leak_factor(), 0.99);  // A0 = 5000, β = 0.6
}

TEST(OpAmp, HigherGainLessLeak) {
  OpAmpConfig lo;
  lo.dc_gain = 100.0;
  OpAmpConfig hi;
  hi.dc_gain = 100000.0;
  EXPECT_LT(OpAmp{lo}.leak_factor(), OpAmp{hi}.leak_factor());
}

TEST(OpAmp, ClipSymmetric) {
  OpAmpConfig cfg;
  cfg.output_swing_v = 2.0;
  OpAmp amp{cfg};
  EXPECT_DOUBLE_EQ(amp.clip(3.0), 2.0);
  EXPECT_DOUBLE_EQ(amp.clip(-3.0), -2.0);
  EXPECT_DOUBLE_EQ(amp.clip(1.5), 1.5);
}

TEST(OpAmp, RejectsBadConfig) {
  OpAmpConfig bad;
  bad.dc_gain = 0.5;
  EXPECT_THROW((OpAmp{bad}), std::invalid_argument);
  OpAmpConfig bad2;
  bad2.gbw_hz = 0.0;
  EXPECT_THROW((OpAmp{bad2}), std::invalid_argument);
  OpAmpConfig bad3;
  bad3.slew_rate_v_per_s = -1.0;
  EXPECT_THROW((OpAmp{bad3}), std::invalid_argument);
  OpAmpConfig bad4;
  bad4.feedback_factor = 0.0;
  EXPECT_THROW((OpAmp{bad4}), std::invalid_argument);
}

// full_settle_threshold's contract is *bitwise*: settle(v, dt) == v exactly
// for every |v| ≤ the threshold. The modulator's block path skips settle()
// based on this, so an off-by-one-ulp here would silently fork the block and
// scalar bitstreams.
TEST(OpAmp, FullSettleThresholdIsBitExact) {
  for (double gbw : {10e6, 5e6, 40e6}) {
    for (double sr : {5e6, 0.5e6, 50e6}) {
      OpAmpConfig cfg;
      cfg.gbw_hz = gbw;
      cfg.slew_rate_v_per_s = sr;
      OpAmp amp{cfg};
      const double dt = 0.5 / 128000.0;
      const double t = amp.full_settle_threshold(dt);
      ASSERT_GT(t, 0.0);
      // Sweep magnitudes across both regimes up to exactly the threshold,
      // including the threshold itself and values straddling the
      // linear/slew hand-off (SR·τ).
      for (double frac : {1e-9, 1e-4, 0.01, 0.3, 0.7, 0.999, 1.0}) {
        const double v = t * frac;
        ASSERT_EQ(amp.settle(v, dt), v) << "gbw=" << gbw << " sr=" << sr
                                        << " v=" << v;
        ASSERT_EQ(amp.settle(-v, dt), -v);
      }
      const double next_up = std::nextafter(t, 2.0 * t);
      // Just above the threshold settle may (and for slow amps will) fall
      // short; it must never overshoot.
      EXPECT_LE(std::abs(amp.settle(next_up, dt)), next_up);
    }
  }
}

TEST(OpAmp, FullSettleThresholdZeroWhenClockTooFast) {
  OpAmpConfig cfg;
  cfg.gbw_hz = 100e3;  // τ ≈ 2.7 µs; 40τ ≫ the 3.9 µs half-period
  OpAmp amp{cfg};
  EXPECT_EQ(amp.full_settle_threshold(0.5 / 128000.0), 0.0);
}

}  // namespace
}  // namespace tono::analog
