// math_utils.hpp — small numeric helpers shared by dsp/mems/analog.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tono {

/// Normalized sinc: sin(pi x) / (pi x), sinc(0) = 1.
[[nodiscard]] double sinc(double x) noexcept;

/// Modified Bessel function of the first kind, order zero (series expansion,
/// absolute tolerance ~1e-12 over the range needed by Kaiser windows).
[[nodiscard]] double bessel_i0(double x) noexcept;

/// Converts a power ratio to decibels; returns -infinity for ratio <= 0.
[[nodiscard]] double power_to_db(double ratio) noexcept;

/// Converts an amplitude ratio to decibels; returns -infinity for ratio <= 0.
[[nodiscard]] double amplitude_to_db(double ratio) noexcept;

/// Inverse of power_to_db.
[[nodiscard]] double db_to_power(double db) noexcept;

/// Inverse of amplitude_to_db.
[[nodiscard]] double db_to_amplitude(double db) noexcept;

/// Evaluates a polynomial with coefficients c[0] + c[1] x + ... (Horner).
[[nodiscard]] double polyval(std::span<const double> coeffs, double x) noexcept;

/// Least-squares polynomial fit of given degree through (x, y) points.
/// Returns coefficients in polyval order. Uses normal equations with
/// Gaussian elimination and partial pivoting; degree must satisfy
/// degree + 1 <= x.size(). Throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> polyfit(std::span<const double> x,
                                          std::span<const double> y,
                                          std::size_t degree);

/// Solves the linear system A x = b in-place (A is n x n row-major).
/// Gaussian elimination with partial pivoting. Throws std::runtime_error on a
/// singular matrix.
[[nodiscard]] std::vector<double> solve_linear_system(std::vector<double> a,
                                                      std::vector<double> b);

/// True if |a - b| <= tol_abs + tol_rel * max(|a|, |b|).
[[nodiscard]] bool approx_equal(double a, double b, double tol_rel = 1e-9,
                                double tol_abs = 1e-12) noexcept;

/// Next power of two >= n (n = 0 maps to 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// True if n is a power of two (and nonzero).
[[nodiscard]] bool is_pow2(std::size_t n) noexcept;

/// Wraps a phase to (-pi, pi].
[[nodiscard]] double wrap_phase(double phase) noexcept;

/// Numerically integrates f over [a, b] with composite Simpson's rule using
/// `intervals` subdivisions (rounded up to even).
template <typename F>
[[nodiscard]] double integrate_simpson(F&& f, double a, double b, std::size_t intervals) {
  if (intervals < 2) intervals = 2;
  if (intervals % 2 != 0) ++intervals;
  const double h = (b - a) / static_cast<double>(intervals);
  double sum = f(a) + f(b);
  for (std::size_t i = 1; i < intervals; ++i) {
    const double x = a + h * static_cast<double>(i);
    sum += f(x) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

/// Finds a root of f in [lo, hi] by bisection; f(lo) and f(hi) must bracket
/// the root (opposite signs). Returns the midpoint after `iters` halvings.
template <typename F>
[[nodiscard]] double bisect(F&& f, double lo, double hi, std::size_t iters = 100) {
  double flo = f(lo);
  for (std::size_t i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if ((flo < 0.0) == (fmid < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace tono
