# Empty compiler generated dependencies file for bench_ablation_cfb_osr.
# This may be replaced when dependencies are built.
