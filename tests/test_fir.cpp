// Tests for FIR design and filtering (floating and fixed point).
#include "src/dsp/fir_design.hpp"
#include "src/dsp/fir_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/rng.hpp"

namespace tono::dsp {
namespace {

TEST(FirDesign, UnityDcGain) {
  const auto h = design_lowpass(32, 500.0, 4000.0);
  double sum = 0.0;
  for (double c : h) sum += c;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FirDesign, SymmetricCoefficients) {
  const auto h = design_lowpass(32, 500.0, 4000.0);
  for (std::size_t i = 0; i < h.size() / 2; ++i) {
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12) << "tap " << i;
  }
}

TEST(FirDesign, CutoffIsMinusSixDb) {
  // A windowed-sinc lowpass passes half amplitude at the design cutoff.
  const auto h = design_lowpass(63, 500.0, 4000.0, WindowKind::kHamming);
  const double mag = fir_magnitude_at(h, 500.0, 4000.0);
  EXPECT_NEAR(mag, 0.5, 0.05);
}

TEST(FirDesign, PassbandFlatStopbandDown) {
  const auto h = design_lowpass(63, 500.0, 4000.0, WindowKind::kHamming);
  EXPECT_NEAR(fir_magnitude_at(h, 50.0, 4000.0), 1.0, 0.01);
  EXPECT_LT(fir_magnitude_at(h, 1500.0, 4000.0), 0.01);  // > 40 dB down
}

TEST(FirDesign, RejectsBadParams) {
  EXPECT_THROW((void)design_lowpass(1, 500.0, 4000.0), std::invalid_argument);
  EXPECT_THROW((void)design_lowpass(32, 0.0, 4000.0), std::invalid_argument);
  EXPECT_THROW((void)design_lowpass(32, 2500.0, 4000.0), std::invalid_argument);
}

TEST(FirDesign, CicCompensatorBoostsPassbandEdge) {
  // The compensator pre-emphasizes where the CIC droops: its gain at the
  // passband edge exceeds the plain lowpass's.
  const double fs = 4000.0;
  const auto plain = design_lowpass(32, 500.0, fs);
  const auto comp = design_cic_compensator(32, 500.0, fs, 3, 32);
  const double g_plain = fir_magnitude_at(plain, 450.0, fs);
  const double g_comp = fir_magnitude_at(comp, 450.0, fs);
  EXPECT_GT(g_comp, g_plain);
}

TEST(FirDesign, CicCompensatorUnityDc) {
  const auto comp = design_cic_compensator(32, 500.0, 4000.0, 3, 32);
  double sum = 0.0;
  for (double c : comp) sum += c;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FirDesign, KaiserMeetsAttenuationSpec) {
  std::size_t taps = 0;
  const auto h = design_kaiser_lowpass(500.0, 200.0, 60.0, 4000.0, &taps);
  EXPECT_EQ(h.size(), taps);
  EXPECT_EQ(taps % 2, 1u);
  // Check stopband attenuation past cutoff + transition.
  for (double f = 750.0; f < 1900.0; f += 100.0) {
    EXPECT_LT(fir_magnitude_at(h, f, 4000.0), std::pow(10.0, -55.0 / 20.0))
        << "f = " << f;
  }
}

TEST(QuantizeCoefficients, RoundTripAccuracy) {
  const auto h = design_lowpass(32, 500.0, 4000.0);
  const auto q = quantize_coefficients(h, 14);
  ASSERT_EQ(q.size(), h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(q[i]) / 16384.0, h[i], 1.0 / 16384.0);
  }
}

TEST(QuantizeCoefficients, RejectsBadFracBits) {
  EXPECT_THROW((void)quantize_coefficients({0.5}, 0), std::invalid_argument);
  EXPECT_THROW((void)quantize_coefficients({0.5}, 31), std::invalid_argument);
}

TEST(FirFilter, ImpulseResponseEqualsCoefficients) {
  const std::vector<double> h{0.1, 0.2, 0.4, 0.2, 0.1};
  FirFilter f{h};
  std::vector<double> in(8, 0.0);
  in[0] = 1.0;
  const auto out = f.process(in);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_NEAR(out[i], h[i], 1e-15);
  for (std::size_t i = h.size(); i < 8; ++i) EXPECT_NEAR(out[i], 0.0, 1e-15);
}

TEST(FirFilter, MatchesDirectConvolution) {
  tono::Rng rng{5};
  std::vector<double> h(16);
  for (auto& c : h) c = rng.gaussian();
  std::vector<double> x(64);
  for (auto& v : x) v = rng.gaussian();
  FirFilter f{h};
  const auto y = f.process(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size() && k <= i; ++k) acc += h[k] * x[i - k];
    EXPECT_NEAR(y[i], acc, 1e-12) << "sample " << i;
  }
}

TEST(FirFilter, DecimationKeepsEveryNth) {
  FirFilter f{std::vector<double>{1.0}, 4};
  std::vector<double> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<double>(i);
  const auto y = f.process(x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);  // output on 4th input
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[3], 15.0);
}

TEST(FirFilter, ResetClearsState) {
  FirFilter f{std::vector<double>{0.5, 0.5}};
  (void)f.push(10.0);
  f.reset();
  const auto y = f.push(0.0);
  ASSERT_TRUE(y.has_value());
  EXPECT_DOUBLE_EQ(*y, 0.0);
}

TEST(FirFilter, GroupDelay) {
  FirFilter f{std::vector<double>(33, 1.0 / 33.0)};
  EXPECT_DOUBLE_EQ(f.group_delay_samples(), 16.0);
}

TEST(FirFilter, RejectsEmptyAndZeroDecimation) {
  EXPECT_THROW((FirFilter{std::vector<double>{}}), std::invalid_argument);
  EXPECT_THROW((FirFilter{std::vector<double>{1.0}, 0}), std::invalid_argument);
}

TEST(FixedPointFir, MatchesFloatWithinQuantization) {
  const auto h = design_lowpass(32, 500.0, 4000.0);
  const int frac = 14;
  const auto q = quantize_coefficients(h, frac);
  FirFilter fl{h};
  FixedPointFir fx{q, frac, 20};
  tono::Rng rng{9};
  double max_err = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double xin = rng.uniform(-1.0, 1.0);
    const auto code = static_cast<std::int64_t>(std::lround(xin * 32767.0));
    const auto yf = fl.push(static_cast<double>(code));
    const auto yq = fx.push(code);
    ASSERT_TRUE(yf.has_value());
    ASSERT_TRUE(yq.has_value());
    max_err = std::max(max_err, std::abs(*yf - static_cast<double>(*yq)));
  }
  // Coefficient quantization error bound: taps × input_scale × lsb.
  EXPECT_LT(max_err, 32.0 * 32768.0 / 16384.0 + 1.0);
}

TEST(FixedPointFir, SaturatesAtOutputWord) {
  FixedPointFir fx{std::vector<std::int32_t>{1 << 14}, 14, 8};  // unity gain, 8-bit out
  std::optional<std::int64_t> y;
  y = fx.push(1000);  // exceeds ±128
  ASSERT_TRUE(y.has_value());
  EXPECT_EQ(*y, 127);
  y = fx.push(-1000);
  EXPECT_EQ(*y, -128);
}

TEST(FixedPointFir, DecimatesLikeFloat) {
  const auto q = quantize_coefficients(std::vector<double>{0.25, 0.25, 0.25, 0.25}, 10);
  FixedPointFir fx{q, 10, 16, 2};
  std::vector<std::int64_t> in{100, 100, 100, 100, 100, 100};
  const auto out = fx.process(in);
  EXPECT_EQ(out.size(), 3u);
}

TEST(FixedPointFir, RejectsBadConfig) {
  EXPECT_THROW((FixedPointFir{{}, 14, 12}), std::invalid_argument);
  EXPECT_THROW((FixedPointFir{{1}, 0, 12}), std::invalid_argument);
  EXPECT_THROW((FixedPointFir{{1}, 14, 1}), std::invalid_argument);
  EXPECT_THROW((FixedPointFir{{1}, 14, 12, 0}), std::invalid_argument);
}

// Property: magnitude response of the designed filter is monotone-ish
// decreasing across the transition band for various tap counts.
class FirTransitionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FirTransitionTest, StopbandBelowPassband) {
  const auto h = design_lowpass(GetParam(), 500.0, 4000.0);
  const double pass = fir_magnitude_at(h, 100.0, 4000.0);
  const double stop = fir_magnitude_at(h, 1800.0, 4000.0);
  EXPECT_GT(pass, 0.9);
  EXPECT_LT(stop, 0.2);
}

INSTANTIATE_TEST_SUITE_P(TapCounts, FirTransitionTest,
                         ::testing::Values(16u, 24u, 32u, 48u, 64u, 128u));

}  // namespace
}  // namespace tono::dsp
