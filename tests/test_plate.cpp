// Tests for the clamped square plate mechanics.
#include "src/mems/plate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/units.hpp"

namespace tono::mems {
namespace {

PlateGeometry paper_geometry() { return PlateGeometry{}; }

PlateGeometry stress_free_geometry() {
  PlateGeometry g;
  // Single stress-free oxide layer, 3 µm: pure bending case.
  Material m = silicon_dioxide();
  m.residual_stress_pa = 0.0;
  LayerStack s;
  s.add_layer(m, 3e-6);
  g.stack = s;
  return g;
}

TEST(SquarePlate, SmallDeflectionMatchesTimoshenko) {
  // w0 = 0.00126 · p a⁴ / D for a stress-free clamped square plate.
  const SquarePlate plate{stress_free_geometry()};
  const double a = plate.geometry().side_length_m;
  const double d = plate.flexural_rigidity();
  const double p = 100.0;  // small load, linear regime
  const double expected = 0.00126 * p * a * a * a * a / d;
  EXPECT_NEAR(plate.center_deflection(p), expected, 1e-3 * expected);
}

TEST(SquarePlate, TensionStiffens) {
  const SquarePlate tensioned{paper_geometry()};
  const SquarePlate free_plate{stress_free_geometry()};
  // The paper stack is net tensile → at the same rigidity scale it deflects
  // less per pascal than the hypothetical stress-free plate of the same D.
  const double k_t = tensioned.linear_stiffness();
  const double k_f = free_plate.linear_stiffness() *
                     (tensioned.flexural_rigidity() / free_plate.flexural_rigidity());
  EXPECT_GT(k_t, k_f);
  EXPECT_GT(tensioned.residual_tension(), 0.0);
}

TEST(SquarePlate, DeflectionIsOddInPressure) {
  const SquarePlate plate{paper_geometry()};
  const double p = 5e3;
  EXPECT_NEAR(plate.center_deflection(p), -plate.center_deflection(-p), 1e-18);
}

TEST(SquarePlate, ZeroPressureZeroDeflection) {
  const SquarePlate plate{paper_geometry()};
  EXPECT_DOUBLE_EQ(plate.center_deflection(0.0), 0.0);
}

TEST(SquarePlate, InverseConsistency) {
  const SquarePlate plate{paper_geometry()};
  for (double p : {10.0, 1e3, 1e4, 1e5, 1e6}) {
    const double w = plate.center_deflection(p);
    EXPECT_NEAR(plate.pressure_for_deflection(w), p, 1e-6 * p) << "p = " << p;
  }
}

TEST(SquarePlate, CubicStiffeningReducesLargeDeflection) {
  const SquarePlate plate{paper_geometry()};
  const double w_small = plate.center_deflection(1e3);
  const double w_large = plate.center_deflection(1e6);
  // Sub-linear growth: 1000× pressure gives < 1000× deflection.
  EXPECT_LT(w_large, 1000.0 * w_small);
  EXPECT_GT(w_large, w_small);
}

TEST(SquarePlate, ComplianceDecreasesWithBias) {
  const SquarePlate plate{paper_geometry()};
  EXPECT_GT(plate.compliance_at(0.0), plate.compliance_at(1e6));
}

TEST(SquarePlate, ComplianceAtZeroIsInverseK1) {
  const SquarePlate plate{paper_geometry()};
  EXPECT_NEAR(plate.compliance_at(0.0), 1.0 / plate.linear_stiffness(), 1e-18);
}

TEST(SquarePlate, ModeShapeSatisfiesClampedBoundary) {
  const SquarePlate plate{paper_geometry()};
  const double a = plate.geometry().side_length_m;
  const double w0 = 1e-7;
  EXPECT_NEAR(plate.deflection_at(0.0, a / 2, w0), 0.0, 1e-20);
  EXPECT_NEAR(plate.deflection_at(a, a / 2, w0), 0.0, 1e-20);
  EXPECT_NEAR(plate.deflection_at(a / 2, 0.0, w0), 0.0, 1e-20);
  EXPECT_NEAR(plate.deflection_at(a / 2, a / 2, w0), w0, 1e-15);
}

TEST(SquarePlate, ModeShapeOutsideMembraneIsZero) {
  const SquarePlate plate{paper_geometry()};
  const double a = plate.geometry().side_length_m;
  EXPECT_DOUBLE_EQ(plate.deflection_at(-1e-6, a / 2, 1e-7), 0.0);
  EXPECT_DOUBLE_EQ(plate.deflection_at(a + 1e-6, a / 2, 1e-7), 0.0);
}

TEST(SquarePlate, MeanDeflectionIsQuarterOfCenter) {
  const SquarePlate plate{paper_geometry()};
  EXPECT_DOUBLE_EQ(plate.mean_deflection(4e-8), 1e-8);
}

TEST(SquarePlate, PaperMembraneDeflectionScale) {
  // Sanity anchor: at MAP-scale contact pressure (100 mmHg ≈ 13.3 kPa) the
  // 100 µm / 3 µm membrane deflects nanometres — the regime that motivates
  // the ΔΣ capacitive readout.
  const SquarePlate plate{paper_geometry()};
  const double w = plate.center_deflection(units::mmhg_to_pa(100.0));
  EXPECT_GT(w, 1e-9);
  EXPECT_LT(w, 100e-9);
}

TEST(SquarePlate, ResonanceInMegahertzRange) {
  // 100 µm CMOS membranes resonate around a few hundred kHz to a few MHz —
  // far above the 500 Hz signal band, justifying the static transfer model.
  const SquarePlate plate{paper_geometry()};
  const double f0 = plate.fundamental_resonance_hz();
  EXPECT_GT(f0, 200e3);
  EXPECT_LT(f0, 20e6);
}

TEST(SquarePlate, ResonanceScalesInverselyWithAreaForBendingPlate) {
  // Stress-free plate: f ∝ 1/a². (The tension term breaks this, so use the
  // stress-free stack.)
  PlateGeometry small = stress_free_geometry();
  PlateGeometry large = stress_free_geometry();
  large.side_length_m = 2.0 * small.side_length_m;
  const double f_small = SquarePlate{small}.fundamental_resonance_hz();
  const double f_large = SquarePlate{large}.fundamental_resonance_hz();
  EXPECT_NEAR(f_small / f_large, 4.0, 0.01);
}

TEST(SquarePlate, RejectsBadGeometry) {
  PlateGeometry g;
  g.side_length_m = 0.0;
  EXPECT_THROW((SquarePlate{g}), std::invalid_argument);
  PlateGeometry g2;
  g2.stack = LayerStack{};
  EXPECT_THROW((SquarePlate{g2}), std::invalid_argument);
}

TEST(SquarePlate, RejectsBuckledStack) {
  // A strongly compressive stack makes k1 negative → constructor refuses.
  PlateGeometry g;
  Material m = silicon_dioxide();
  m.residual_stress_pa = -3e9;  // extreme compression
  LayerStack s;
  s.add_layer(m, 3e-6);
  g.stack = s;
  EXPECT_THROW((SquarePlate{g}), std::invalid_argument);
}

// Property: linearity holds within 1 % for small loads across sizes.
class PlateLinearityTest : public ::testing::TestWithParam<double> {};

TEST_P(PlateLinearityTest, SmallLoadLinear) {
  PlateGeometry g;
  g.side_length_m = GetParam();
  const SquarePlate plate{g};
  const double w1 = plate.center_deflection(100.0);
  const double w2 = plate.center_deflection(200.0);
  EXPECT_NEAR(w2 / w1, 2.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlateLinearityTest,
                         ::testing::Values(50e-6, 100e-6, 200e-6, 500e-6));

}  // namespace
}  // namespace tono::mems
