
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/test_fft.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_fft.dir/test_fft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tono_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/tono_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/tono_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/mems/CMakeFiles/tono_mems.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tono_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tono_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
