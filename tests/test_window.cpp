// Tests for spectral window functions.
#include "src/dsp/window.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::dsp {
namespace {

TEST(Window, SizesMatch) {
  for (auto kind : {WindowKind::kRectangular, WindowKind::kHann, WindowKind::kHamming,
                    WindowKind::kBlackman, WindowKind::kBlackmanHarris4,
                    WindowKind::kKaiser}) {
    EXPECT_EQ(make_window(kind, 256).size(), 256u) << to_string(kind);
  }
}

TEST(Window, EmptyRequestGivesEmpty) {
  EXPECT_TRUE(make_window(WindowKind::kHann, 0).empty());
}

TEST(Window, RectangularIsAllOnes) {
  for (double w : make_window(WindowKind::kRectangular, 64)) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(Window, HannEndpointsAndPeak) {
  const auto w = make_window(WindowKind::kHann, 256);
  EXPECT_NEAR(w[0], 0.0, 1e-12);        // periodic form starts at 0
  EXPECT_NEAR(w[128], 1.0, 1e-12);      // peak at n/2
}

TEST(Window, AllWindowsNonNegativeAndBounded) {
  for (auto kind : {WindowKind::kHann, WindowKind::kHamming, WindowKind::kBlackman,
                    WindowKind::kBlackmanHarris4, WindowKind::kKaiser}) {
    for (double w : make_window(kind, 512)) {
      EXPECT_GE(w, -1e-6) << to_string(kind);
      EXPECT_LE(w, 1.0 + 1e-12) << to_string(kind);
    }
  }
}

TEST(Window, CoherentGainRectangular) {
  EXPECT_DOUBLE_EQ(coherent_gain(make_window(WindowKind::kRectangular, 128)), 1.0);
}

TEST(Window, CoherentGainHann) {
  EXPECT_NEAR(coherent_gain(make_window(WindowKind::kHann, 4096)), 0.5, 1e-6);
}

TEST(Window, EnbwRectangularIsOne) {
  EXPECT_NEAR(enbw_bins(make_window(WindowKind::kRectangular, 128)), 1.0, 1e-12);
}

TEST(Window, EnbwHannIsOnePointFive) {
  EXPECT_NEAR(enbw_bins(make_window(WindowKind::kHann, 8192)), 1.5, 1e-3);
}

TEST(Window, EnbwBlackmanHarris) {
  // Published ENBW of the 4-term Blackman-Harris window: ≈ 2.0044 bins.
  EXPECT_NEAR(enbw_bins(make_window(WindowKind::kBlackmanHarris4, 8192)), 2.0044, 5e-3);
}

TEST(Window, KaiserBetaZeroIsRectangular) {
  const auto w = make_window(WindowKind::kKaiser, 64, 0.0);
  for (double v : w) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Window, KaiserLargerBetaNarrowerWindow) {
  const auto w5 = make_window(WindowKind::kKaiser, 256, 5.0);
  const auto w12 = make_window(WindowKind::kKaiser, 256, 12.0);
  // Higher beta concentrates energy: edge samples smaller.
  EXPECT_LT(w12[10], w5[10]);
}

TEST(Window, LeakageHalfwidthOrdering) {
  EXPECT_LE(leakage_halfwidth_bins(WindowKind::kRectangular),
            leakage_halfwidth_bins(WindowKind::kHann));
  EXPECT_LE(leakage_halfwidth_bins(WindowKind::kHann),
            leakage_halfwidth_bins(WindowKind::kBlackmanHarris4));
}

TEST(Window, ToStringNamesAll) {
  EXPECT_EQ(to_string(WindowKind::kHann), "hann");
  EXPECT_EQ(to_string(WindowKind::kBlackmanHarris4), "blackman-harris4");
}

}  // namespace
}  // namespace tono::dsp
