// ward_server — the hospital serving loop: N concurrent patient sessions
// across independent ward shards, bounded telemetry rings, hospital-level
// alarm aggregation, asynchronous JSONL snapshots.
//
//   ward_server --sessions 256 --shards 4 --duration 10 --seed 11
//               [--threads 0] [--frames-per-step 64] [--epoch-batches 16]
//               [--code-policy drop] [--fault-plan contact=1,link=1,element=1]
//               [--max-readmits 3] [--snapshot ward.jsonl] [--snapshot-every 0]
//               [--checkpoint ward.ckpt] [--checkpoint-every 0] [--resume]
//               [--metrics metrics.jsonl] [--verbose]
//
// Checkpoint & resume: --checkpoint makes the hospital write a crash-safe
// binary checkpoint (atomic tmp+fsync+rename) every --checkpoint-every
// epochs and at the end of the run. A killed server restarted with the same
// flags plus --resume picks up from the last checkpoint and finishes with
// byte-identical snapshot output — resume, not replay.
//
// Each session is a full vertical slice (scenario → transducer → ΔΣ →
// decimation → streaming monitor). Sessions are assigned to shards purely by
// id (id % shards); each shard steps its sessions in deterministic lockstep
// batches on its own scheduler and thread pool, so results — including the
// snapshot bytes — are bit-identical across shard and thread counts (see
// docs/FLEET.md). The session mix cycles through the patient presets and
// scenarios so a default run exercises alarms, quality gating and
// escalation.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <fstream>
#include <string>

#include "src/common/checkpoint.hpp"
#include "src/common/cli.hpp"
#include "src/common/metrics.hpp"
#include "src/fleet/hospital_scheduler.hpp"
// The admission mix lives in a shared header so gateway_server admits
// byte-identical configs — CI diffs the two binaries' snapshots.
#include "examples/session_mix.hpp"

using namespace tono;
using tono::examples::mix_label;
using tono::examples::parse_fault_plan;
using tono::examples::session_mix;

int main(int argc, char** argv) {
  ArgParser args{"ward_server", "serve N concurrent patient monitoring sessions"};
  args.add_int("sessions", "number of patient sessions to admit", 16);
  args.add_double("duration", "monitoring stream per session [s]", 10.0);
  args.add_int("seed", "fleet base seed (per-session seeds derive from it)", 11);
  args.add_int("shards", "independent ward shards, each with its own scheduler", 1);
  args.add_int("threads",
               "worker threads per shard (0 = hardware/shards, 1 = serial shard)", 0);
  args.add_int("frames-per-step", "output frames per session per batch", 64);
  args.add_int("epoch-batches", "batches per shard between hospital epochs", 16);
  args.add_string("code-policy", "codes-ring backpressure: drop | block", "drop");
  args.add_string("fault-plan",
                  "per-session fault schedule, e.g. contact=1,link=1,element=1", "");
  args.add_int("max-readmits", "readmissions before a quarantined session retires", 3);
  args.add_string("snapshot", "write the ward JSONL snapshot to this file", "");
  args.add_int("snapshot-every",
               "async-snapshot period in epochs (0 = final snapshot only)", 0);
  args.add_string("checkpoint",
                  "write a resumable crash-safe checkpoint to this file", "");
  args.add_int("checkpoint-every",
               "checkpoint period in epochs (0 = end-of-run checkpoint only)", 0);
  args.add_flag("resume",
                "restore from --checkpoint before running (fresh start if absent)");
  args.add_string("metrics", "write a JSONL runtime-metrics snapshot to this file", "");
  args.add_flag("verbose", "print per-session rows (always printed for quarantines)");
  if (!args.parse(argc, argv)) {
    std::cerr << (args.help_requested() ? args.help_text() : args.error() + "\n");
    return args.help_requested() ? 0 : 2;
  }
  // Range validation up front: every flag was already syntax-checked by the
  // parser (strtol, no trailing junk, no overflow), so what is left is
  // rejecting values that would otherwise be silently clamped by a cast —
  // `--shards -3` must be a clear error, not a 4-billion-shard hospital.
  const long sessions_raw = args.int_value("sessions");
  const long shards_raw = args.int_value("shards");
  const long threads_raw = args.int_value("threads");
  const long frames_raw = args.int_value("frames-per-step");
  const long epoch_raw = args.int_value("epoch-batches");
  const long readmits_raw = args.int_value("max-readmits");
  const long seed_raw = args.int_value("seed");
  const long snapshot_every_raw = args.int_value("snapshot-every");
  const double duration_s = args.double_value("duration");
  if (shards_raw < 1) {
    std::cerr << "--shards must be >= 1 (got " << shards_raw << ")\n";
    return 2;
  }
  if (sessions_raw < 0) {
    std::cerr << "--sessions must be >= 0 (got " << sessions_raw << ")\n";
    return 2;
  }
  if (threads_raw < 0) {
    std::cerr << "--threads must be >= 0 (got " << threads_raw << ")\n";
    return 2;
  }
  if (frames_raw < 1) {
    std::cerr << "--frames-per-step must be >= 1 (got " << frames_raw << ")\n";
    return 2;
  }
  if (epoch_raw < 1) {
    std::cerr << "--epoch-batches must be >= 1 (got " << epoch_raw << ")\n";
    return 2;
  }
  if (readmits_raw < 0) {
    std::cerr << "--max-readmits must be >= 0 (got " << readmits_raw << ")\n";
    return 2;
  }
  if (seed_raw < 0) {
    std::cerr << "--seed must be >= 0 (got " << seed_raw << ")\n";
    return 2;
  }
  if (snapshot_every_raw < 0) {
    std::cerr << "--snapshot-every must be >= 0 (got " << snapshot_every_raw << ")\n";
    return 2;
  }
  const long checkpoint_every_raw = args.int_value("checkpoint-every");
  const std::string checkpoint_path = args.string_value("checkpoint");
  if (checkpoint_every_raw < 0) {
    std::cerr << "--checkpoint-every must be >= 0 (got " << checkpoint_every_raw
              << ")\n";
    return 2;
  }
  if (checkpoint_path.empty() && checkpoint_every_raw > 0) {
    std::cerr << "--checkpoint-every requires --checkpoint\n";
    return 2;
  }
  if (checkpoint_path.empty() && args.flag("resume")) {
    std::cerr << "--resume requires --checkpoint\n";
    return 2;
  }
  if (!(duration_s > 0.0)) {
    std::cerr << "--duration must be > 0 (got " << duration_s << ")\n";
    return 2;
  }
  const auto n_sessions = static_cast<std::size_t>(sessions_raw);
  const std::string policy_name = args.string_value("code-policy");
  if (policy_name != "drop" && policy_name != "block") {
    std::cerr << "--code-policy must be 'drop' or 'block'\n";
    return 2;
  }
  fleet::FaultPlanConfig fault_plan;
  {
    std::string plan_error;
    if (!parse_fault_plan(args.string_value("fault-plan"), &fault_plan, &plan_error)) {
      std::cerr << plan_error << "\n";
      return 2;
    }
  }
  // Fault onsets land inside the run (the config default horizon assumes a
  // longer session than a smoke run's --duration 2).
  fault_plan.horizon_s =
      std::max(fault_plan.min_onset_s + 0.1, 0.75 * duration_s);

  fleet::HospitalConfig hospital_config;
  hospital_config.shards = static_cast<std::size_t>(shards_raw);
  hospital_config.threads_per_shard = static_cast<std::size_t>(threads_raw);
  hospital_config.base_seed = static_cast<std::uint64_t>(seed_raw);
  hospital_config.frames_per_step = static_cast<std::size_t>(frames_raw);
  hospital_config.epoch_batches = static_cast<std::size_t>(epoch_raw);
  hospital_config.max_readmits = static_cast<std::size_t>(readmits_raw);
  hospital_config.snapshot_path = args.string_value("snapshot");
  hospital_config.snapshot_every_epochs =
      static_cast<std::size_t>(snapshot_every_raw);
  hospital_config.checkpoint_path = checkpoint_path;
  hospital_config.checkpoint_every_epochs =
      static_cast<std::size_t>(checkpoint_every_raw);
  fleet::HospitalScheduler hospital{hospital_config};

  for (std::size_t i = 0; i < n_sessions; ++i) {
    fleet::SessionConfig config = session_mix(i);
    config.code_policy = policy_name == "block" ? BackpressurePolicy::kBlock
                                                : BackpressurePolicy::kDropOldest;
    config.fault_plan = fault_plan;
    (void)hospital.admit(std::move(config), mix_label(i));
  }
  std::cout << "ward_server: " << n_sessions << " sessions admitted, "
            << hospital.shards() << " shard(s) x " << hospital.threads_per_shard()
            << " worker thread(s), " << duration_s << " s per session\n";

  if (args.flag("resume")) {
    // Resume means resume: a checkpoint that exists but fails validation is
    // a hard error (exit 1), never a silent restart from zero.
    try {
      if (hospital.try_restore_checkpoint()) {
        std::cout << "resumed from checkpoint " << checkpoint_path << " ("
                  << hospital.epochs() << " epoch(s) already run)\n";
      } else {
        std::cout << "no checkpoint at " << checkpoint_path
                  << ", starting fresh\n";
      }
    } catch (const CheckpointError& e) {
      std::cerr << "cannot resume from " << checkpoint_path << ": " << e.what()
                << "\n";
      return 1;
    }
  }

  hospital.run(duration_s);

  // The merged snapshot is exact after run() and shard-count-invariant:
  // sessions in global-id order, totals summed across shards.
  const fleet::WardSnapshot ward = hospital.snapshot();
  std::size_t quarantined = 0;
  for (const auto& s : ward.sessions) {
    const bool parked = s.lifecycle == fleet::SessionState::kQuarantined ||
                        s.lifecycle == fleet::SessionState::kRetired;
    if (parked) ++quarantined;
    if (args.flag("verbose") || parked) {
      std::cout << "  [" << s.id << "] " << s.label << " (" << to_string(s.lifecycle)
                << "): " << s.codes << " codes, " << s.beats << " beats, BP "
                << s.last_systolic_mmhg << "/" << s.last_diastolic_mmhg << " mmHg, SQI "
                << s.last_sqi << ", alarms " << s.alarms_active << ", drops "
                << s.code_drops + s.event_drops
                << (s.note.empty() ? "" : " — " + s.note) << "\n";
    }
  }
  std::cout << "ward: " << ward.codes_consumed << " codes, "
            << ward.events_consumed << " events consumed; alarms active "
            << ward.alarms_active << " (queue " << ward.alarms_total
            << ", escalations " << ward.escalations << "); drops "
            << ward.drops << " (events " << ward.event_drops
            << "); quarantined " << quarantined << "\n";
  if (ward.recoveries > 0 || ward.retired > 0) {
    // Only printed once the recovery machinery engaged, so clean runs keep
    // their pre-fault-plan output bytes.
    std::cout << "recovery: readmitted " << ward.recoveries
              << " session(s), retired " << ward.retired << "\n";
  }

  const std::string snapshot = args.string_value("snapshot");
  if (!snapshot.empty()) {
    // run() already handed the final exact snapshot to the async writer and
    // flushed; any periodic epoch snapshots were superseded along the way.
    if (hospital.snapshots_written() == 0) {
      std::cerr << "cannot write snapshot to " << snapshot << "\n";
      return 1;
    }
    std::cout << "wrote ward snapshot to " << snapshot;
    if (snapshot_every_raw > 0) {
      std::cout << " (" << hospital.snapshots_written() << " written, "
                << hospital.snapshots_skipped() << " superseded)";
    }
    std::cout << "\n";
  }
  if (!checkpoint_path.empty()) {
    if (hospital.checkpoints_saved() == 0) {
      std::cerr << "cannot write checkpoint to " << checkpoint_path << "\n";
      return 1;
    }
    std::cout << "wrote checkpoint to " << checkpoint_path << "\n";
  }
  const std::string metrics_path = args.string_value("metrics");
  if (!metrics_path.empty()) {
    metrics::register_standard_instruments();
    if (!metrics::Registry::global().write_jsonl_file(metrics_path)) {
      std::cerr << "cannot write metrics to " << metrics_path << "\n";
      return 1;
    }
    std::cout << "wrote metrics snapshot to " << metrics_path << "\n";
  }
  // The blocking events ring is the clinical contract: nothing may be lost.
  if (ward.event_drops != 0) {
    std::cerr << "ERROR: " << ward.event_drops << " beat/alarm events dropped\n";
    return 1;
  }
  return 0;
}
