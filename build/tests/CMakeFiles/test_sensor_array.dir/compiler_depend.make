# Empty compiler generated dependencies file for test_sensor_array.
# This may be replaced when dependencies are built.
