#include "src/analog/power.hpp"

#include <stdexcept>

namespace tono::analog {

PowerModel::PowerModel(const PowerModelConfig& config) : config_(config) {
  if (config_.analog_bias_a < 0.0 || config_.dynamic_capacitance_f < 0.0) {
    throw std::invalid_argument{"PowerModel: negative parameters"};
  }
}

double PowerModel::static_w(double vdd_v) const noexcept {
  return config_.analog_bias_a * vdd_v;
}

double PowerModel::dynamic_w(double vdd_v, double sampling_rate_hz) const noexcept {
  return config_.dynamic_capacitance_f * sampling_rate_hz * vdd_v * vdd_v;
}

double PowerModel::total_w(double vdd_v, double sampling_rate_hz) const noexcept {
  return static_w(vdd_v) + dynamic_w(vdd_v, sampling_rate_hz);
}

double PowerModel::nominal_w() const noexcept {
  return total_w(config_.nominal_vdd_v, config_.nominal_rate_hz);
}

double PowerModel::energy_per_conversion_j(double vdd_v, double sampling_rate_hz,
                                           double osr) const noexcept {
  if (sampling_rate_hz <= 0.0 || osr <= 0.0) return 0.0;
  const double conversions_per_s = sampling_rate_hz / osr;
  return total_w(vdd_v, sampling_rate_hz) / conversions_per_s;
}

}  // namespace tono::analog
