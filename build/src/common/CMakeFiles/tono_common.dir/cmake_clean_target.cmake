file(REMOVE_RECURSE
  "libtono_common.a"
)
