// beat.hpp — single-beat arterial pressure morphology.
//
// A radial-artery pulse template built from three Gaussian lobes (systolic
// upstroke, reflected wave, dicrotic wave) on a decaying diastolic baseline —
// a standard synthetic-ABP construction. The template is normalized to
// [0, 1] over the beat so the generator can scale it between the diastolic
// and systolic setpoints.
#pragma once

#include <array>

namespace tono::bio {

/// One Gaussian lobe of the beat template, in beat-phase units (phase ∈ [0,1)).
struct BeatLobe {
  double amplitude{0.0};
  double center_phase{0.0};
  double width_phase{0.0};
};

struct BeatMorphology {
  std::array<BeatLobe, 3> lobes{
      BeatLobe{1.00, 0.13, 0.045},   // systolic peak
      BeatLobe{0.38, 0.33, 0.075},   // reflected (augmentation) wave
      BeatLobe{0.22, 0.50, 0.040},   // dicrotic wave
  };
  /// Diastolic exponential decay rate (per beat phase).
  double diastolic_decay{3.5};

  /// Radial-artery default shape.
  [[nodiscard]] static BeatMorphology radial();
  /// Aortic-like shape (less augmentation, broader systole).
  [[nodiscard]] static BeatMorphology aortic();
};

/// Evaluates the beat template, normalized so that over one beat
/// min = 0 and max = 1 (normalization precomputed at construction).
class BeatTemplate {
 public:
  explicit BeatTemplate(const BeatMorphology& morphology = BeatMorphology::radial());

  /// Normalized pressure at a beat phase in [0, 1) (phase is wrapped).
  [[nodiscard]] double value(double phase) const noexcept;

  /// Phase of the systolic maximum.
  [[nodiscard]] double systolic_phase() const noexcept { return peak_phase_; }

  [[nodiscard]] const BeatMorphology& morphology() const noexcept { return morphology_; }

 private:
  [[nodiscard]] double raw(double phase) const noexcept;

  BeatMorphology morphology_;
  double raw_min_{0.0};
  double raw_span_{1.0};
  double peak_phase_{0.0};
};

}  // namespace tono::bio
