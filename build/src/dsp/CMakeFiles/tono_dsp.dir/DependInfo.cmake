
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/biquad.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/biquad.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/biquad.cpp.o.d"
  "/root/repo/src/dsp/cic.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/cic.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/cic.cpp.o.d"
  "/root/repo/src/dsp/decimation.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/decimation.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/decimation.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir_design.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/fir_design.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/fir_design.cpp.o.d"
  "/root/repo/src/dsp/fir_filter.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/fir_filter.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/fir_filter.cpp.o.d"
  "/root/repo/src/dsp/goertzel.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/goertzel.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/goertzel.cpp.o.d"
  "/root/repo/src/dsp/noise_analysis.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/noise_analysis.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/noise_analysis.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/spectrum.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/spectrum.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/tono_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/tono_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tono_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
