// hrv.hpp — heart-rate-variability metrics and rhythm classification.
//
// A continuous per-beat record (which the tactile sensor provides and a
// cuff cannot) enables the standard time-domain HRV battery: SDNN, RMSSD,
// pNN50 and the Poincaré ellipse (SD1/SD2). On top of those, a simple
// screen separates normal sinus rhythm from the irregularly-irregular
// pattern of atrial fibrillation — a clinically valuable by-product of
// beat-resolved blood pressure.
#pragma once

#include <cstddef>
#include <span>

#include "src/core/beat_detection.hpp"

namespace tono::core {

struct HrvMetrics {
  /// False when too few intervals were supplied for the battery to be
  /// meaningful (< 3); every numeric field is then a finite zero, never NaN.
  bool valid{false};
  std::size_t beat_count{0};
  double mean_rr_s{0.0};   ///< mean beat interval
  double sdnn_s{0.0};      ///< standard deviation of intervals
  double rmssd_s{0.0};     ///< rms of successive interval differences
  double pnn50{0.0};       ///< fraction of successive diffs > 50 ms
  double sd1_s{0.0};       ///< Poincaré short-axis (beat-to-beat)
  double sd2_s{0.0};       ///< Poincaré long-axis (long-term)
  /// Coefficient of variation, sdnn / mean_rr.
  [[nodiscard]] double cv() const noexcept {
    return mean_rr_s > 0.0 ? sdnn_s / mean_rr_s : 0.0;
  }
};

/// Computes the metrics from beat intervals [s].
///
/// Edge cases are total and finite: fewer than 3 intervals (0, 1 or 2 —
/// RMSSD needs two successive differences and the Poincaré axes need the
/// same) return a zeroed struct with valid == false; no field is ever NaN
/// or infinite. Negative or zero intervals are the caller's bug but still
/// produce finite output.
[[nodiscard]] HrvMetrics compute_hrv(std::span<const double> intervals_s);

/// Convenience: intervals from a detector result.
[[nodiscard]] HrvMetrics compute_hrv(const BeatAnalysis& beats);

struct RhythmClassification {
  bool likely_af{false};
  /// 0 (clean sinus) … 1 (maximally irregular); AF flags above ~0.5.
  double irregularity_score{0.0};
  std::size_t beat_count{0};
};

/// Screens for an AF-like rhythm from HRV metrics. Normalized RMSSD and the
/// Poincaré SD1/SD2 ratio both rise sharply for the irregularly-irregular
/// pattern; respiration-driven sinus arrhythmia does not trip it.
[[nodiscard]] RhythmClassification classify_rhythm(const HrvMetrics& hrv);

}  // namespace tono::core
