// modulator_bank_avx2.cpp — AVX2 policy for the bank kernel (4 × f64).
//
// Compiled with -mavx2 into this TU only; entered solely behind
// simd::runtime_level()'s CPU check. Every op is elementwise IEEE — vaddpd /
// vsubpd / vmulpd / vdivpd round identically to their scalar counterparts,
// compare+blend reproduces the scalar ternaries including NaN ordering
// (quiet predicates chosen to match each scalar comparison's NaN behavior),
// and abs/neg are sign-bit masks, exactly like std::abs / unary minus.
#if defined(TONO_SIMD_AVX2)

#include <immintrin.h>

#include "src/analog/bank_kernel.hpp"

namespace tono::analog::bankkernel {
namespace {

struct VecAvx2 {
  static constexpr std::size_t kW = 4;
  using D = __m256d;
  using M = __m256d;

  static D load(const double* ptr) noexcept { return _mm256_loadu_pd(ptr); }
  static void store(double* ptr, D v) noexcept { _mm256_storeu_pd(ptr, v); }
  static D zero() noexcept { return _mm256_setzero_pd(); }
  static D one() noexcept { return _mm256_set1_pd(1.0); }
  static D add(D a, D b) noexcept { return _mm256_add_pd(a, b); }
  static D sub(D a, D b) noexcept { return _mm256_sub_pd(a, b); }
  static D mul(D a, D b) noexcept { return _mm256_mul_pd(a, b); }
  static D div(D a, D b) noexcept { return _mm256_div_pd(a, b); }
  static D abs(D a) noexcept {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }
  static D neg(D a) noexcept {
    return _mm256_xor_pd(a, _mm256_set1_pd(-0.0));
  }
  /// mask ? a : b
  static D select(M mask, D a, D b) noexcept {
    return _mm256_blendv_pd(b, a, mask);
  }
  static M cmp_lt(D a, D b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);  // NaN → false (scalar a < b)
  }
  static M cmp_ge(D a, D b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_GE_OQ);  // NaN → false (scalar a >= b)
  }
  static M cmp_eq(D a, D b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);  // NaN → false (scalar a == b)
  }
  static M cmp_neq(D a, D b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_NEQ_UQ);  // NaN → true (scalar a != b)
  }
  /// !(a <= b): the settle slow-path predicate; NaN must take the slow path
  /// like the scalar !(std::abs(v) <= threshold).
  static M cmp_nle(D a, D b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_NLE_UQ);
  }
  static bool any(M mask) noexcept { return _mm256_movemask_pd(mask) != 0; }
  static unsigned mask(M m) noexcept {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
  static unsigned ctz(unsigned m) noexcept {
    return static_cast<unsigned>(__builtin_ctz(m));
  }
};

}  // namespace

void run_packets_avx2(PacketView* packets, std::size_t n_packets,
                      std::size_t n_clocks) {
  run_packets<VecAvx2>(packets, n_packets, n_clocks);
}

void fuse_shared4_avx2(const SharedFuseJob& job, std::size_t n_clocks) {
  const __m256d su = _mm256_loadu_pd(job.sigma_u);
  const __m256d rv = _mm256_loadu_pd(job.ref_vrms);
  const __m256d vref = _mm256_loadu_pd(job.vref);
  const __m256d o1 = _mm256_loadu_pd(job.op1_vrms);
  const __m256d o2 = _mm256_loadu_pd(job.op2_vrms);
  const __m256d sc = _mm256_loadu_pd(job.scale);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n_clocks; ++i) {
    // Row w = lane w's four draws for this clock: [ktc, ref, op1, op2].
    const __m256d r0 = _mm256_loadu_pd(job.raw[0] + 4 * i);
    const __m256d r1 = _mm256_loadu_pd(job.raw[1] + 4 * i);
    const __m256d r2 = _mm256_loadu_pd(job.raw[2] + 4 * i);
    const __m256d r3 = _mm256_loadu_pd(job.raw[3] + 4 * i);
    // 4×4 transpose: column s = source s's draw across the four lanes.
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    const __m256d ktc = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d ref = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d op1 = _mm256_permute2f128_pd(t0, t2, 0x31);
    const __m256d op2 = _mm256_permute2f128_pd(t1, t3, 0x31);
    // Draw-site expressions verbatim (the 0.0 + turns −0.0 products into
    // +0.0, exactly like the scalar mean addition).
    _mm256_storeu_pd(job.ktc + 4 * i,
                     _mm256_add_pd(zero, _mm256_mul_pd(su, ktc)));
    _mm256_storeu_pd(
        job.ref + 4 * i,
        _mm256_div_pd(_mm256_add_pd(zero, _mm256_mul_pd(rv, ref)), vref));
    _mm256_storeu_pd(
        job.op1 + 4 * i,
        _mm256_div_pd(_mm256_add_pd(zero, _mm256_mul_pd(o1, op1)), sc));
    _mm256_storeu_pd(
        job.op2 + 4 * i,
        _mm256_div_pd(_mm256_add_pd(zero, _mm256_mul_pd(o2, op2)), sc));
  }
}

}  // namespace tono::analog::bankkernel

#endif  // TONO_SIMD_AVX2
