// E3 / Fig. 9 — continuous blood-pressure waveform with cuff calibration.
//
// Paper: "In Figure 9 a recorded blood pressure waveform is shown. The
// sensor device has been attached to a test person's wrist … calibration can
// be accomplished by measuring the systolic and diastolic pressure with a
// conventional hand cuff device."
//
// The simulated session follows the same protocol — localize, cuff-calibrate,
// stream — and, because the patient is synthetic, also scores the estimates
// against ground truth, which the paper could not.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/core/monitor.hpp"

namespace {

using namespace tono;

void run() {
  bench::print_header("E3 / Fig. 9", "Continuous blood-pressure measurement at the wrist");

  core::WristModel wrist;  // 120/80 mmHg @ 72 bpm synthetic patient
  core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), wrist};

  // 1. Strongest-element selection (§2).
  core::ScanConfig scan_cfg;
  scan_cfg.dwell_samples = 1500;
  const auto scan = mon.localize(scan_cfg);
  TextTable st{"Array scan (strongest-element selection)"};
  st.set_header({"element", "pulsation amplitude [FS]", "selected"});
  for (const auto& e : scan.elements) {
    const bool sel = e.row == scan.best_row && e.col == scan.best_col;
    st.add_row({"(" + std::to_string(e.row) + "," + std::to_string(e.col) + ")",
                format_double(e.amplitude, 5), sel ? "<-- " : ""});
  }
  st.print(std::cout);

  // 2. Cuff calibration (§3.2).
  const auto cuff = mon.calibrate(15.0);
  TextTable ct{"Hand-cuff calibration reading"};
  ct.set_header({"quantity", "value", "unit"});
  ct.add_row("cuff systolic", cuff.systolic_mmhg, "mmHg", 1);
  ct.add_row("cuff diastolic", cuff.diastolic_mmhg, "mmHg", 1);
  ct.add_row("cuff MAP", cuff.map_mmhg, "mmHg", 1);
  ct.add_row("measurement duration", cuff.duration_s, "s", 1);
  ct.add_row("calibration gain", mon.calibration().gain_mmhg_per_unit(), "mmHg/FS", 1);
  ct.print(std::cout);

  // 3. Continuous monitoring — the Fig. 9 waveform.
  const auto rep = mon.monitor(30.0);
  SeriesWriter wave{"fig9_bp_waveform", "time_s", "pressure_mmhg"};
  // Plot a 6 s excerpt so individual beats are visible, like the figure.
  for (std::size_t i = 0; i < rep.waveform_mmhg.size() && rep.time_s[i] < rep.time_s[0] + 6.0;
       ++i) {
    wave.add(rep.time_s[i], rep.waveform_mmhg[i]);
  }
  wave.write_ascii_plot(std::cout, 72, 18);
  wave.decimated(300).write_csv(std::cout);

  TextTable bt{"Per-session estimates over 30 s"};
  bt.set_header({"quantity", "estimate", "ground truth", "error"});
  auto row = [&](const std::string& name, double est, double truth) {
    bt.add_row({name, format_double(est, 1), format_double(truth, 1),
                format_double(est - truth, 2)});
  };
  row("systolic [mmHg]", rep.beats.mean_systolic, rep.truth_systolic_mmhg);
  row("diastolic [mmHg]", rep.beats.mean_diastolic, rep.truth_diastolic_mmhg);
  row("MAP [mmHg]", rep.beats.mean_map, rep.truth_map_mmhg);
  row("heart rate [bpm]", rep.beats.heart_rate_bpm, rep.truth_heart_rate_bpm);
  bt.print(std::cout);

  // 4. The §1 argument: continuous vs single-shot readings.
  bio::OscillometricCuff cuff_dev{bio::CuffConfig{}};
  TextTable vs{"Continuous tactile sensor vs cuff baseline (§1)"};
  vs.set_header({"quantity", "tactile sensor", "hand cuff"});
  vs.add_row({"readings in 30 s", std::to_string(rep.beats.beats.size()) + " (per beat)",
              "0-1"});
  vs.add_row({"max readings/hour", "~" + format_double(3600.0 * 72.0 / 60.0, 0),
              format_double(cuff_dev.max_measurements_per_hour(), 1)});
  vs.add_row({"waveform morphology", "yes (1 kS/s)", "no"});
  vs.print(std::cout);

  bench::ComparisonTable cmp{"Paper vs measured (Fig. 9 / §3.2)"};
  cmp.add("continuous waveform", "recorded", "reproduced (30 s @ 1 kS/s)", true);
  cmp.add("calibration", "cuff sys/dia anchors", "cuff sys/dia anchors", true);
  cmp.add("beat-resolved pressure", "qualitative figure",
          format_double(rep.beats.mean_systolic, 0) + "/" +
              format_double(rep.beats.mean_diastolic, 0) + " mmHg",
          std::abs(rep.systolic_error_mmhg) < 6.0 &&
              std::abs(rep.diastolic_error_mmhg) < 6.0);
  cmp.print();
}

}  // namespace

int main() {
  run();
  return 0;
}
