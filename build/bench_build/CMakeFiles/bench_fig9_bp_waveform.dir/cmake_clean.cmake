file(REMOVE_RECURSE
  "../bench/bench_fig9_bp_waveform"
  "../bench/bench_fig9_bp_waveform.pdb"
  "CMakeFiles/bench_fig9_bp_waveform.dir/bench_fig9_bp_waveform.cpp.o"
  "CMakeFiles/bench_fig9_bp_waveform.dir/bench_fig9_bp_waveform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_bp_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
