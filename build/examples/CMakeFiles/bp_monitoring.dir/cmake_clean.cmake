file(REMOVE_RECURSE
  "CMakeFiles/bp_monitoring.dir/bp_monitoring.cpp.o"
  "CMakeFiles/bp_monitoring.dir/bp_monitoring.cpp.o.d"
  "bp_monitoring"
  "bp_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
