# Empty dependencies file for test_patient_presets.
# This may be replaced when dependencies are built.
