file(REMOVE_RECURSE
  "libtono_bio.a"
)
