// quality.hpp — signal-quality assessment for unattended monitoring.
//
// §4: "Field tests have to be performed in order [to] evaluate reliability
// and stability of blood pressure monitoring." Reliability in the field
// means knowing when a window is trustworthy. The index combines three
// scale-free observations on a waveform window:
//   * rhythm consistency — coefficient of variation of beat intervals,
//   * amplitude consistency — CV of per-beat pulse amplitudes,
//   * artefact load — fraction of samples far outside the typical range
//     (robust MAD criterion).
#pragma once

#include <span>

#include "src/core/beat_detection.hpp"

namespace tono::core {

struct QualityConfig {
  BeatDetectorConfig detector{};
  /// Samples outside [p25 − k·IQR, p75 + k·IQR] count as artefact (boxplot
  /// rule, robust up to 25 % contamination). k = 3 keeps systolic peaks of
  /// any physiological pulse pressure inside the envelope.
  double iqr_multiplier{3.0};
  /// CV values at which the respective sub-score reaches zero.
  double interval_cv_floor{0.35};
  double amplitude_cv_floor{0.60};
  /// Artefact fraction at which that sub-score reaches zero.
  double artifact_fraction_floor{0.10};
  /// Pulse-to-noise ratio (mean beat amplitude over the high-frequency
  /// residual) at which the pulse-significance sub-score saturates. Note
  /// that pure noise floors near ~5.5 (window extremes), so this is a soft
  /// score; the hard noise discriminator is shape consistency below.
  double pulse_snr_full_score{16.0};
  /// Minimum mean correlation of per-beat segments with their ensemble
  /// template. Real beats repeat a shape (≈0.8+ at a well-ranged converter);
  /// noise-locked detections do not (≈0.1–0.3). Coarse quantization of a
  /// weak-but-real pulse can also break the alignment, so a window is
  /// usable if EITHER the shape repeats OR the pulse towers over the noise
  /// (noise-locked windows floor near pulse_snr ≈ 5.5 and can do neither).
  double min_shape_consistency{0.5};
  /// Pulse SNR that certifies a real pulse even when quantization spoils
  /// the shape correlation.
  double strong_pulse_snr{10.0};
  /// Minimum beats for a meaningful assessment.
  std::size_t min_beats{4};
};

struct QualityReport {
  double sqi{0.0};                ///< overall index in [0, 1]
  double interval_cv{0.0};        ///< beat-interval coefficient of variation
  double amplitude_cv{0.0};       ///< pulse-amplitude coefficient of variation
  double artifact_fraction{0.0};  ///< fraction of envelope-outlier samples
  double pulse_snr{0.0};          ///< mean beat amplitude / hf residual rms
  double shape_consistency{0.0};  ///< mean beat-vs-template correlation
  std::size_t beat_count{0};
  bool usable{false};             ///< sqi ≥ 0.5, consistent shape, enough beats
};

class SignalQualityAssessor {
 public:
  explicit SignalQualityAssessor(const QualityConfig& config = {});

  /// Assesses one waveform window. Total over all inputs: empty and
  /// single-sample windows return a finite all-zero report (usable ==
  /// false), never NaN — degenerate windows are exactly where an unattended
  /// monitor needs a trustworthy "not usable" verdict.
  [[nodiscard]] QualityReport assess(std::span<const double> window) const;

  [[nodiscard]] const QualityConfig& config() const noexcept { return config_; }

 private:
  QualityConfig config_;
};

}  // namespace tono::core
