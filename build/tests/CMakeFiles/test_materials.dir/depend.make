# Empty dependencies file for test_materials.
# This may be replaced when dependencies are built.
