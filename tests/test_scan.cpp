// Tests for array scanning and strongest-element selection.
#include "src/core/scan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/common/units.hpp"

namespace tono::core {
namespace {

/// Pulsating field whose amplitude is a Gaussian in x around x0.
ContactField pulsating_field(double x0_m, double sigma_m = 100e-6) {
  return [=](double x, double, double t) {
    const double d = (x - x0_m) / sigma_m;
    const double amp = 15.0 * std::exp(-0.5 * d * d);
    const double p =
        20.0 + amp * std::sin(2.0 * std::numbers::pi * 5.0 * t);
    return units::mmhg_to_pa(p);
  };
}

ScanConfig fast_scan() {
  ScanConfig s;
  s.dwell_samples = 600;  // 3 cycles of the 5 Hz test pulsation
  s.settle_samples = 64;
  return s;
}

TEST(Scan, SelectsStrongestColumnRight) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  ScanController scan{fast_scan()};
  // Pulsation centered on the right column (+75 µm).
  const auto result = scan.scan(pipe, pulsating_field(+75e-6));
  EXPECT_EQ(result.best_col, 1u);
  EXPECT_EQ(pipe.selected_col(), 1u);
}

TEST(Scan, SelectsStrongestColumnLeft) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  ScanController scan{fast_scan()};
  const auto result = scan.scan(pipe, pulsating_field(-75e-6));
  EXPECT_EQ(result.best_col, 0u);
}

TEST(Scan, ReportsAllElements) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  ScanController scan{fast_scan()};
  const auto result = scan.scan(pipe, pulsating_field(0.0));
  EXPECT_EQ(result.elements.size(), 4u);
  for (const auto& e : result.elements) {
    EXPECT_GT(e.amplitude, 0.0);
    EXPECT_LT(e.row, 2u);
    EXPECT_LT(e.col, 2u);
  }
}

TEST(Scan, BestAmplitudeIsMaximum) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  ScanController scan{fast_scan()};
  const auto result = scan.scan(pipe, pulsating_field(+75e-6));
  for (const auto& e : result.elements) {
    EXPECT_LE(e.amplitude, result.best_amplitude + 1e-15);
  }
}

TEST(Scan, AmplitudeOrderingFollowsDistance) {
  // With the pulsation on the right column, right elements must beat left.
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  ScanController scan{fast_scan()};
  const auto result = scan.scan(pipe, pulsating_field(+75e-6, 60e-6));
  double left = 0.0;
  double right = 0.0;
  for (const auto& e : result.elements) {
    (e.col == 0 ? left : right) += e.amplitude;
  }
  EXPECT_GT(right, left * 1.2);
}

TEST(Scan, UniformFieldGivesComparableAmplitudes) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  ScanController scan{fast_scan()};
  const auto result = scan.scan(pipe, pulsating_field(0.0, 1.0));  // σ = 1 m: flat
  double lo = 1e18;
  double hi = 0.0;
  for (const auto& e : result.elements) {
    lo = std::min(lo, e.amplitude);
    hi = std::max(hi, e.amplitude);
  }
  EXPECT_LT(hi / lo, 1.3);
}

TEST(Scan, WorksOnLargerArray) {
  auto cfg = ChipConfig::paper_chip();
  cfg.array.rows = 1;
  cfg.array.cols = 8;
  cfg.mux.rows = 1;
  cfg.mux.cols = 8;
  AcquisitionPipeline pipe{cfg};
  ScanController scan{fast_scan()};
  // Pulsation centered on column 6 of 8 (x = (6 − 3.5) · 150 µm = 375 µm).
  const auto result = scan.scan(pipe, pulsating_field(375e-6, 200e-6));
  EXPECT_EQ(result.elements.size(), 8u);
  EXPECT_NEAR(static_cast<double>(result.best_col), 6.0, 1.0);
}

TEST(Scan, RejectsBadConfig) {
  ScanConfig bad;
  bad.dwell_samples = 0;
  EXPECT_THROW((ScanController{bad}), std::invalid_argument);
  ScanConfig bad2;
  bad2.low_percentile = 90.0;
  bad2.high_percentile = 10.0;
  EXPECT_THROW((ScanController{bad2}), std::invalid_argument);
}

}  // namespace
}  // namespace tono::core
