// Tests for the bit-exact CIC (SINC^N) decimator.
#include "src/dsp/cic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace tono::dsp {
namespace {

TEST(Cic, DcGainIsRmToTheN) {
  CicDecimator cic{3, 32};
  EXPECT_EQ(cic.gain(), 32768);  // 32^3
  CicDecimator cic2{2, 16};
  EXPECT_EQ(cic2.gain(), 256);
  CicDecimator cic3{3, 8, 2, 2};
  EXPECT_EQ(cic3.gain(), 4096);  // (8·2)^3
}

TEST(Cic, ConstantInputConvergesToGain) {
  CicDecimator cic{3, 16};
  std::vector<std::int64_t> in(16 * 20, 1);
  const auto out = cic.process(in);
  ASSERT_GE(out.size(), 4u);
  EXPECT_EQ(out.back(), cic.gain());
}

TEST(Cic, OutputCountMatchesDecimation) {
  CicDecimator cic{3, 32};
  std::vector<std::int64_t> in(32 * 10 + 5, 1);
  EXPECT_EQ(cic.process(in).size(), 10u);
}

TEST(Cic, LinearInInput) {
  CicDecimator a{3, 8};
  CicDecimator b{3, 8};
  std::vector<std::int64_t> in(8 * 10);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::int64_t>(i % 5) - 2;
  std::vector<std::int64_t> in3(in);
  for (auto& v : in3) v *= 3;
  const auto ya = a.process(in);
  const auto yb = b.process(in3);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(yb[i], 3 * ya[i]);
}

TEST(Cic, MagnitudeAtDcIsOne) {
  CicDecimator cic{3, 32};
  EXPECT_DOUBLE_EQ(cic.magnitude_at(0.0, 128000.0), 1.0);
}

TEST(Cic, NullsAtOutputRateMultiples) {
  CicDecimator cic{3, 32};
  const double fs = 128000.0;
  const double f_out = fs / 32.0;  // 4 kHz
  EXPECT_NEAR(cic.magnitude_at(f_out, fs), 0.0, 1e-9);
  EXPECT_NEAR(cic.magnitude_at(2.0 * f_out, fs), 0.0, 1e-9);
}

TEST(Cic, MeasuredResponseMatchesAnalytic) {
  // Drive with a sine, compare steady-state output amplitude to magnitude_at.
  const double fs = 128000.0;
  const std::size_t r = 32;
  for (double f : {500.0, 1000.0, 1800.0}) {
    CicDecimator cic{3, r};
    const std::size_t n = r * 2000;
    std::vector<std::int64_t> in(n);
    const double amp = 1000.0;
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::int64_t>(
          std::lround(amp * std::sin(2.0 * std::numbers::pi * f * i / fs)));
    }
    const auto out = cic.process(in);
    // Skip the transient; compare RMS (the decimated output no longer hits
    // the sine peaks, but non-coherent sampling makes the RMS exact).
    double acc = 0.0;
    std::size_t n_tail = 0;
    for (std::size_t i = out.size() / 2; i < out.size(); ++i) {
      acc += static_cast<double>(out[i]) * static_cast<double>(out[i]);
      ++n_tail;
    }
    const double rms = std::sqrt(acc / static_cast<double>(n_tail));
    const double expected = amp * static_cast<double>(cic.gain()) *
                            cic.magnitude_at(f, fs) / std::sqrt(2.0);
    EXPECT_NEAR(rms, expected, 0.05 * expected + amp) << "f = " << f;
  }
}

TEST(Cic, RequiredRegisterBits) {
  CicDecimator cic{3, 32, 2};
  EXPECT_EQ(cic.required_register_bits(), 2 + 3 * 5);
}

TEST(Cic, RejectsExcessiveGrowth) {
  // 8 stages at R = 65536 would need far more than 63 bits.
  EXPECT_THROW((CicDecimator{8, 65536, 16}), std::invalid_argument);
}

TEST(Cic, RejectsBadParams) {
  EXPECT_THROW((CicDecimator{0, 32}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{9, 32}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{3, 0}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{3, 32, 0}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{3, 32, 2, 3}), std::invalid_argument);
}

TEST(Cic, ResetRestoresInitialState) {
  CicDecimator cic{3, 8};
  std::vector<std::int64_t> in(64, 5);
  (void)cic.process(in);
  cic.reset();
  CicDecimator fresh{3, 8};
  const auto a = cic.process(in);
  const auto b = fresh.process(in);
  EXPECT_EQ(a, b);
}

TEST(Cic, BitstreamInput) {
  // ±1 modulator-style input with a DC bias of +0.25: output converges to
  // gain × 0.25.
  CicDecimator cic{3, 32};
  std::vector<std::int64_t> in;
  for (int i = 0; i < 32 * 50; ++i) {
    // Pattern of period 8 with sum +2 (five +1, three −1) → mean 0.25.
    const int phase = i % 8;
    in.push_back(phase < 5 ? 1 : -1);
  }
  const auto out = cic.process(in);
  const double expected = 0.25 * static_cast<double>(cic.gain());
  EXPECT_NEAR(static_cast<double>(out.back()), expected, 0.02 * std::abs(expected));
}

// Property: droop at the passband edge follows sinc^N.
class CicOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(CicOrderTest, DroopGrowsWithOrder) {
  const int order = GetParam();
  CicDecimator cic{order, 32};
  const double droop = cic.magnitude_at(500.0, 128000.0);
  CicDecimator next{order + 1, 32};
  EXPECT_GT(droop, next.magnitude_at(500.0, 128000.0));
  EXPECT_GT(droop, 0.9);  // 500 Hz is well inside the first lobe
}

INSTANTIATE_TEST_SUITE_P(Orders, CicOrderTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tono::dsp
