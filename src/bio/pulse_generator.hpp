// pulse_generator.hpp — continuous arterial blood-pressure waveform with
// physiological variability and per-beat ground truth.
//
// This is the "test person's wrist" of §3.2, made synthetic so the full
// pipeline can be scored against known truth. Variability sources:
//   * heart-rate variability: white beat-interval jitter + a slow Mayer-wave
//     (~0.1 Hz) modulation,
//   * respiration: baseline and pulse-pressure modulation at ~0.25 Hz
//     (respiratory sinus arrhythmia on the interval as well),
//   * slow setpoint drift of systolic/diastolic pressure.
// Ground truth (beat onsets, per-beat systolic/diastolic/MAP) is recorded as
// the waveform is generated so benches can compute estimation error.
#pragma once

#include <cstdint>
#include <vector>

#include "src/bio/beat.hpp"
#include "src/common/rng.hpp"

namespace tono::bio {

struct PulseConfig {
  double systolic_mmhg{120.0};
  double diastolic_mmhg{80.0};
  double heart_rate_bpm{72.0};
  /// White beat-to-beat interval jitter (fraction of the interval).
  double hrv_jitter{0.03};
  /// Mayer-wave heart-rate modulation depth (fraction) and frequency.
  double mayer_depth{0.02};
  double mayer_freq_hz{0.1};
  /// Respiration: frequency, baseline swing [mmHg], pulse-pressure depth.
  double respiration_freq_hz{0.25};
  double respiration_baseline_mmhg{2.0};
  double respiration_pp_depth{0.05};
  /// Respiratory sinus arrhythmia: interval modulation depth (fraction).
  double rsa_depth{0.03};
  /// Slow random-walk drift of the pressure setpoints [mmHg/√s].
  double drift_mmhg_per_sqrt_s{0.15};
  /// Atrial-fibrillation-like rhythm: beat intervals drawn with this extra
  /// uniform spread (fraction of the interval; 0 = regular rhythm) and
  /// pulse pressure varying with the preceding interval (shorter filling
  /// time → weaker beat).
  double af_irregularity{0.0};
  /// Retained completed-beat truth entries. The log is a bounded window:
  /// once it exceeds this, the oldest entries are dropped (session means
  /// keep counting every beat via running sums). 4096 beats ≈ 55 min at
  /// 72 bpm — far wider than any calibration/report window. 0 = unbounded.
  std::size_t truth_capacity{4096};
  BeatMorphology morphology{BeatMorphology::radial()};
  std::uint64_t seed{7};
};

/// Preset patients for examples/benches.
struct PatientPresets {
  [[nodiscard]] static PulseConfig normotensive();   ///< 120/80 @ 72
  [[nodiscard]] static PulseConfig hypertensive();   ///< 165/102 @ 80
  [[nodiscard]] static PulseConfig hypotensive();    ///< 95/60 @ 64
  [[nodiscard]] static PulseConfig tachycardic();    ///< 118/78 @ 125
  [[nodiscard]] static PulseConfig elderly_stiff();  ///< 150/85, augmented reflection
  [[nodiscard]] static PulseConfig atrial_fibrillation();  ///< irregular rhythm
};

/// Per-beat ground truth emitted by the generator.
struct BeatTruth {
  double onset_s{0.0};       ///< beat start time
  double interval_s{0.0};    ///< beat duration
  double systolic_mmhg{0.0};
  double diastolic_mmhg{0.0};
  double map_mmhg{0.0};      ///< mean over the beat
};

class ArterialPulseGenerator {
 public:
  explicit ArterialPulseGenerator(const PulseConfig& config);

  /// Advances time by dt and returns the arterial pressure [mmHg].
  [[nodiscard]] double sample(double dt_s);

  /// Retargets the physiological setpoints at runtime (takes effect from
  /// the next beat). Lets scenario drivers ramp pressure/heart rate.
  void set_targets(double systolic_mmhg, double diastolic_mmhg, double heart_rate_bpm);

  /// Generates `n` samples at fixed rate into a vector.
  [[nodiscard]] std::vector<double> generate(double sample_rate_hz, std::size_t n);

  /// Ground-truth annotations for recently completed beats (bounded window
  /// of the last `truth_capacity` beats; see PulseConfig::truth_capacity).
  [[nodiscard]] const std::vector<BeatTruth>& beat_truth() const noexcept { return truth_; }

  /// Consume-and-clear the retained truth log (validation harness drains
  /// periodically so long sessions never pay for the window at all).
  /// Session-level counters and means are unaffected.
  [[nodiscard]] std::vector<BeatTruth> drain_truth();

  /// Beats completed since construction (drained/dropped ones included).
  [[nodiscard]] std::uint64_t beats_completed() const noexcept { return beats_completed_; }
  /// Truth entries evicted from the bounded window (not drained — lost to
  /// capacity). Nonzero means a consumer fell behind the window.
  [[nodiscard]] std::uint64_t truth_dropped() const noexcept { return truth_dropped_; }

  /// Session-level ground truth: mean systolic/diastolic over *all*
  /// completed beats (running sums — unaffected by window eviction/drain).
  [[nodiscard]] double mean_systolic_mmhg() const noexcept;
  [[nodiscard]] double mean_diastolic_mmhg() const noexcept;

  [[nodiscard]] double time_s() const noexcept { return time_s_; }
  [[nodiscard]] const PulseConfig& config() const noexcept { return config_; }

  /// Checkpointing: Rng stream, beat/clock state, setpoints (which
  /// set_targets can retarget at runtime), drift, the current beat's truth
  /// accumulators, whole-session truth counters and the bounded retained
  /// truth window (so checkpoints stay O(truth_capacity), not O(runtime)).
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  void start_new_beat(double onset_s);
  void close_out_beat();
  void push_truth(const BeatTruth& beat);

  PulseConfig config_;
  BeatTemplate beat_;
  Rng rng_;
  double time_s_{0.0};
  double beat_start_s_{0.0};
  double beat_interval_s_{0.8};
  double beat_sys_mmhg_{120.0};
  double beat_dia_mmhg_{80.0};
  double drift_mmhg_{0.0};
  // accumulators for the current beat's truth
  double cur_min_{1e9};
  double cur_max_{-1e9};
  double cur_sum_{0.0};
  std::size_t cur_n_{0};
  // Running whole-session aggregates, independent of the bounded window.
  std::uint64_t beats_completed_{0};
  std::uint64_t truth_dropped_{0};
  double truth_sum_sys_{0.0};
  double truth_sum_dia_{0.0};
  std::vector<BeatTruth> truth_;
};

}  // namespace tono::bio
