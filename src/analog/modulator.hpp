// modulator.hpp — behavioural model of the chip's second-order, single-bit,
// fully-differential switched-capacitor ΔΣ modulator (Fig. 6 of the paper).
//
// Topology: Boser-Wooley cascade of two delaying SC integrators with 1-bit
// feedback (coefficients g1 = a1 = 0.5 into the first stage, g2 = a2 = 0.5
// into the second), giving NTF (1−z⁻¹)² / (1 − 1.5 z⁻¹ + 0.75 z⁻²) — a
// stable second-order loop for inputs below ≈ −2 dBFS.
//
// Two input modes mirror the chip:
//   * capacitive mode — the sensor/reference branch of Fig. 6: a constant
//     excitation voltage V_exc is applied to C_sense and (anti-phase) C_ref;
//     the integrated charge is (C_sense − C_ref)·V_exc against the 1-bit
//     feedback charge C_fb·V_ref. Full scale is ΔC_FS = C_fb·V_ref/V_exc,
//     which is why §4 proposes "adjusting the feedback capacitors of the
//     first modulator stage" to improve resolution — C_fb sets the range.
//   * voltage mode — the "additional differential voltage interface" used
//     for the Fig. 7 characterization; full scale is ±V_ref.
//
// Modelled non-idealities: kT/C sampling noise on every switched branch,
// op-amp finite gain (integrator leak), finite GBW/slew (incomplete
// settling), op-amp thermal noise, comparator offset/hysteresis/
// metastability, clock jitter (voltage mode), reference noise, capacitor
// mismatch, and integrator output clipping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/analog/comparator.hpp"
#include "src/analog/opamp.hpp"
#include "src/common/pink_noise.hpp"
#include "src/common/rng.hpp"

namespace tono::analog {

struct LoopCoefficients {
  double g1{0.5};  ///< first-integrator input gain
  double a1{0.5};  ///< first-integrator feedback gain
  double g2{0.5};  ///< second-integrator input gain
  double a2{0.5};  ///< second-integrator feedback gain
  /// Dynamic-range scaling: op-amp output volts per unit of normalized loop
  /// state (full scale = 1). Real SC designs size the integrator caps so the
  /// state swing fits the op-amp output range; 1 V/FS keeps the 2nd-order
  /// loop's ±2 FS state excursions inside a ±2.3 V swing.
  double state_scale_v{1.0};
};

struct ModulatorConfig {
  double sampling_rate_hz{128000.0};  ///< paper: 128 kS/s
  double vref_v{2.5};                 ///< feedback reference (±Vref differential)
  double vexc_v{2.5};                 ///< sensor excitation voltage
  double supply_v{5.0};               ///< paper: 5 V supply
  /// Loop order: 2 = the chip's Boser-Wooley cascade; 1 = a single-
  /// integrator baseline (what the paper's topology is competing against —
  /// ~9 dB/octave of OSR instead of 15, plus strong idle tones).
  int order{2};

  /// Capacitors (single-ended equivalents of the differential pairs).
  double c_sample_f{0.5e-12};  ///< voltage-mode input/feedback sampling cap
  double c_fb1_f{25e-15};      ///< capacitive-mode feedback cap (the §4 knob)
  double c_ref_f{100e-15};     ///< on-chip reference capacitor branch

  LoopCoefficients loop{};
  OpAmpConfig opamp1{};
  OpAmpConfig opamp2{};
  ComparatorConfig comparator{};

  double clock_jitter_rms_s{1e-9};
  double ref_noise_vrms{20e-6};
  double cap_mismatch_sigma{0.001};  ///< relative σ of each capacitor
  /// Correlated-double-sampling rejection of op-amp flicker noise
  /// (amplitude factor; 1 = no CDS). SC integrators sample the op-amp
  /// offset/1-f error every phase, which first-order cancels it.
  double cds_flicker_rejection{30.0};
  double temperature_k{300.0};
  bool enable_ktc_noise{true};
  bool enable_settling{true};
  std::uint64_t seed{42};
};

class DeltaSigmaModulator {
 public:
  explicit DeltaSigmaModulator(const ModulatorConfig& config);

  /// One clock in voltage mode; `vin_v` is the differential input.
  /// Returns the output bit (+1 / −1).
  [[nodiscard]] int step_voltage(double vin_v);

  /// One clock in capacitive mode with explicit sensor and reference
  /// capacitance values [F].
  [[nodiscard]] int step_capacitive(double c_sense_f, double c_ref_f);

  /// Capacitive mode against the configured on-chip reference branch.
  [[nodiscard]] int step_capacitive(double c_sense_f) {
    return step_capacitive(c_sense_f, config_.c_ref_f * ref_mismatch_);
  }

  /// Runs `n` clocks in capacitive mode at fixed sensor/reference
  /// capacitances, writing the ±1 bitstream to `bits_out` (room for n).
  /// Bit-identical to n step_capacitive(c_sense_f, c_ref_f) calls: the
  /// full-scale charge, normalized input and kT/C sigma (its sqrt and
  /// division included) are loop-invariant and hoisted; the per-clock noise
  /// draws and loop dynamics are byte-for-byte unchanged. This is the
  /// acquisition pipeline's block hot path.
  void step_capacitive_block(double c_sense_f, double c_ref_f, int* bits_out,
                             std::size_t n);

  /// Runs `n` clocks in voltage mode with `vin_of_t` evaluated at jittered
  /// sampling instants. Returns the ±1 bitstream.
  [[nodiscard]] std::vector<int> run_voltage(
      const std::function<double(double)>& vin_of_t, std::size_t n);

  /// Runs `n` clocks sampling a time-varying sensor capacitance.
  [[nodiscard]] std::vector<int> run_capacitive(
      const std::function<double(double)>& c_sense_of_t, std::size_t n);

  void reset();

  /// Switches the first-stage feedback capacitor bank (§4: "adjusting the
  /// feedback capacitors of the first modulator stage"). Takes effect on the
  /// next clock; the per-die mismatch factor is retained. Throws
  /// std::invalid_argument for non-positive values.
  void set_feedback_capacitor(double c_fb1_f);

  /// Capacitive-mode full-scale capacitance difference:
  /// ΔC_FS = C_fb1 · V_ref / V_exc.
  [[nodiscard]] double full_scale_delta_c() const noexcept;

  /// Normalized input that a given ΔC = C_sense − C_ref produces.
  [[nodiscard]] double normalized_input(double delta_c_f) const noexcept;

  [[nodiscard]] const ModulatorConfig& config() const noexcept { return config_; }
  [[nodiscard]] double integrator1_v() const noexcept { return x1_ * config_.loop.state_scale_v; }
  [[nodiscard]] double integrator2_v() const noexcept { return x2_ * config_.loop.state_scale_v; }
  /// Largest |integrator| voltages seen since reset (stability telemetry).
  [[nodiscard]] double max_state1_v() const noexcept { return max_x1_; }
  [[nodiscard]] double max_state2_v() const noexcept { return max_x2_; }
  /// Number of clipped integrator updates since reset.
  [[nodiscard]] std::size_t clip_count() const noexcept { return clip_count_; }
  [[nodiscard]] double time_s() const noexcept { return time_s_; }

 private:
  /// Shared loop update; `u` is the normalized input (full scale ±1) and
  /// `extra_noise_u` is mode-specific input-referred noise.
  [[nodiscard]] int step_normalized(double u, double extra_noise_u);

  /// Per-sample flicker amplitude for one op-amp (0 if disabled).
  [[nodiscard]] double flicker_scale(const OpAmpConfig& amp) const noexcept;

  ModulatorConfig config_;
  OpAmp opamp1_;
  OpAmp opamp2_;
  Comparator comparator_;
  Rng rng_;
  PinkNoise flicker1_;
  PinkNoise flicker2_;
  double flicker_scale1_{0.0};
  double flicker_scale2_{0.0};
  double x1_{0.0};  ///< first-integrator state, full-scale units
  double x2_{0.0};  ///< second-integrator state, full-scale units
  int bit_{1};
  double time_s_{0.0};
  double max_x1_{0.0};
  double max_x2_{0.0};
  std::size_t clip_count_{0};
  // Static mismatch draws (fixed per instance, like a fabricated die).
  double sample_mismatch_{1.0};
  double fb1_mismatch_{1.0};
  double ref_mismatch_{1.0};
  double g2_mismatch_{1.0};
};

}  // namespace tono::analog
