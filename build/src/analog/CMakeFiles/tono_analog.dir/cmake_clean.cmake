file(REMOVE_RECURSE
  "CMakeFiles/tono_analog.dir/comparator.cpp.o"
  "CMakeFiles/tono_analog.dir/comparator.cpp.o.d"
  "CMakeFiles/tono_analog.dir/incremental.cpp.o"
  "CMakeFiles/tono_analog.dir/incremental.cpp.o.d"
  "CMakeFiles/tono_analog.dir/modulator.cpp.o"
  "CMakeFiles/tono_analog.dir/modulator.cpp.o.d"
  "CMakeFiles/tono_analog.dir/mux.cpp.o"
  "CMakeFiles/tono_analog.dir/mux.cpp.o.d"
  "CMakeFiles/tono_analog.dir/opamp.cpp.o"
  "CMakeFiles/tono_analog.dir/opamp.cpp.o.d"
  "CMakeFiles/tono_analog.dir/power.cpp.o"
  "CMakeFiles/tono_analog.dir/power.cpp.o.d"
  "libtono_analog.a"
  "libtono_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tono_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
