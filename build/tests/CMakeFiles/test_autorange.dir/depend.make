# Empty dependencies file for test_autorange.
# This may be replaced when dependencies are built.
