// Tests for linear and cubic-spline interpolation.
#include "src/common/interpolation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tono {
namespace {

TEST(LinearInterpolator, ExactAtKnots) {
  const std::vector<double> xs{0.0, 1.0, 3.0};
  const std::vector<double> ys{2.0, 5.0, -1.0};
  LinearInterpolator f{xs, ys};
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_DOUBLE_EQ(f(xs[i]), ys[i]);
}

TEST(LinearInterpolator, Midpoints) {
  LinearInterpolator f{std::vector<double>{0.0, 2.0}, std::vector<double>{0.0, 10.0}};
  EXPECT_DOUBLE_EQ(f(1.0), 5.0);
  EXPECT_DOUBLE_EQ(f(0.5), 2.5);
}

TEST(LinearInterpolator, ClampsOutsideRange) {
  LinearInterpolator f{std::vector<double>{0.0, 1.0}, std::vector<double>{3.0, 7.0}};
  EXPECT_DOUBLE_EQ(f(-5.0), 3.0);
  EXPECT_DOUBLE_EQ(f(99.0), 7.0);
}

TEST(LinearInterpolator, RejectsBadInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((LinearInterpolator{one, one}), std::invalid_argument);
  EXPECT_THROW((LinearInterpolator{std::vector<double>{1.0, 1.0},
                                   std::vector<double>{0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((LinearInterpolator{std::vector<double>{0.0, 1.0},
                                   std::vector<double>{0.0}}),
               std::invalid_argument);
}

TEST(CubicSpline, ExactAtKnots) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{0.0, 1.0, 0.0, -1.0};
  CubicSpline s{xs, ys};
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_NEAR(s(xs[i]), ys[i], 1e-12);
}

TEST(CubicSpline, ReproducesLinearFunction) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 1.0);
  }
  CubicSpline s{xs, ys};
  for (double x = 0.25; x < 10.0; x += 0.5) EXPECT_NEAR(s(x), 2.0 * x + 1.0, 1e-10);
}

TEST(CubicSpline, ApproximatesSmoothFunction) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 50; ++i) {
    const double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(std::sin(x));
  }
  CubicSpline s{xs, ys};
  // Natural boundary conditions cost accuracy near the ends; check interior.
  for (double x = 0.5; x < 4.5; x += 0.07) {
    EXPECT_NEAR(s(x), std::sin(x), 1e-4);
  }
}

TEST(CubicSpline, DerivativeApproximatesCosine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 100; ++i) {
    const double x = i * 0.05;
    xs.push_back(x);
    ys.push_back(std::sin(x));
  }
  CubicSpline s{xs, ys};
  for (double x = 0.5; x < 4.5; x += 0.3) {
    EXPECT_NEAR(s.derivative(x), std::cos(x), 1e-3);
  }
}

TEST(CubicSpline, ClampsOutsideRange) {
  CubicSpline s{std::vector<double>{0.0, 1.0, 2.0}, std::vector<double>{1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(s(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s(10.0), 3.0);
  EXPECT_DOUBLE_EQ(s.derivative(-1.0), 0.0);
}

TEST(CubicSpline, RejectsTooFewPoints) {
  EXPECT_THROW((CubicSpline{std::vector<double>{0.0, 1.0}, std::vector<double>{0.0, 1.0}}),
               std::invalid_argument);
}

TEST(CubicSpline, RejectsNonMonotonicKnots) {
  EXPECT_THROW((CubicSpline{std::vector<double>{0.0, 2.0, 1.0},
                            std::vector<double>{0.0, 1.0, 2.0}}),
               std::invalid_argument);
}

TEST(CubicSpline, ContinuityAtKnots) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{0.0, 2.0, -1.0, 3.0, 0.0};
  CubicSpline s{xs, ys};
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    const double eps = 1e-9;
    EXPECT_NEAR(s(xs[i] - eps), s(xs[i] + eps), 1e-6);
    EXPECT_NEAR(s.derivative(xs[i] - eps), s.derivative(xs[i] + eps), 1e-4);
  }
}

TEST(MonotoneCubic, ExactAtKnotsAndLinearForTwoPoints) {
  const std::vector<double> xs{0.0, 1.0, 2.5, 4.0};
  const std::vector<double> ys{1.0, 3.0, 3.0, -2.0};
  MonotoneCubicInterpolator m{xs, ys};
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_NEAR(m(xs[i]), ys[i], 1e-12);

  MonotoneCubicInterpolator line{std::vector<double>{0.0, 2.0},
                                 std::vector<double>{10.0, 30.0}};
  EXPECT_NEAR(line(0.5), 15.0, 1e-12);
  EXPECT_NEAR(line(1.5), 25.0, 1e-12);
  EXPECT_NEAR(line.derivative(1.0), 10.0, 1e-12);
}

TEST(MonotoneCubic, NeverOvershootsTheDataEnvelope) {
  // A sharp step: a natural cubic spline rings around it; the monotone
  // interpolant must stay inside [segment min, segment max] everywhere.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> ys{80.0, 80.0, 80.0, 120.0, 120.0, 120.0};
  MonotoneCubicInterpolator m{xs, ys};
  CubicSpline s{xs, ys};
  bool spline_overshoots = false;
  for (double x = 0.0; x <= 5.0; x += 1e-3) {
    const double v = m(x);
    ASSERT_GE(v, 80.0 - 1e-9) << "x=" << x;
    ASSERT_LE(v, 120.0 + 1e-9) << "x=" << x;
    if (s(x) < 80.0 - 0.5 || s(x) > 120.0 + 0.5) spline_overshoots = true;
  }
  // Sanity: the bug being fixed is real — the old spline DOES leave the
  // envelope on this data.
  EXPECT_TRUE(spline_overshoots);
}

TEST(MonotoneCubic, PreservesMonotonicity) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{0.0, 0.1, 5.0, 9.9, 10.0};
  MonotoneCubicInterpolator m{xs, ys};
  double prev = m(0.0);
  for (double x = 1e-3; x <= 4.0; x += 1e-3) {
    const double v = m(x);
    ASSERT_GE(v, prev - 1e-9) << "x=" << x;
    prev = v;
  }
}

TEST(MonotoneCubic, FlatAtLocalExtrema) {
  // Knot 2 is a local maximum: the limited tangent there must be zero, so
  // the curve does not poke above the peak value.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{0.0, 4.0, 1.0, 2.0};
  MonotoneCubicInterpolator m{xs, ys};
  EXPECT_NEAR(m.derivative(1.0), 0.0, 1e-12);
  for (double x = 0.0; x <= 3.0; x += 1e-3) {
    ASSERT_LE(m(x), 4.0 + 1e-9);
    ASSERT_GE(m(x), 0.0 - 1e-9);
  }
}

TEST(MonotoneCubic, ClampsOutsideRange) {
  MonotoneCubicInterpolator m{std::vector<double>{0.0, 1.0, 2.0},
                              std::vector<double>{1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(m(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(m(99.0), 3.0);
  EXPECT_DOUBLE_EQ(m.derivative(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(m.derivative(99.0), 0.0);
}

TEST(MonotoneCubic, RejectsBadKnots) {
  EXPECT_THROW((MonotoneCubicInterpolator{std::vector<double>{0.0},
                                          std::vector<double>{1.0}}),
               std::invalid_argument);
  EXPECT_THROW((MonotoneCubicInterpolator{std::vector<double>{0.0, 0.0},
                                          std::vector<double>{1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW((MonotoneCubicInterpolator{std::vector<double>{0.0, 1.0, 2.0},
                                          std::vector<double>{1.0, 2.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tono
