# Empty dependencies file for vessel_localization.
# This may be replaced when dependencies are built.
