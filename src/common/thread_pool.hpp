// thread_pool.hpp — a small fixed-size worker pool for the sweep engine.
//
// Plain std::thread workers draining one mutex-guarded task queue. Nothing
// clever on purpose: SweepRunner, built on top, guarantees bit-identical
// results regardless of scheduling, so the pool only has to be correct —
// throughput is dominated by the trials themselves, not queue overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.hpp"

namespace tono {

class ThreadPool {
 public:
  /// `thread_count` 0 → std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. A throwing task no longer takes the process down:
  /// the pool captures the first uncaught exception and rethrows it on the
  /// next wait_idle() (callers that need per-task granularity — SweepRunner,
  /// FleetScheduler — still catch inside the task; they never see this path).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle, then rethrows
  /// the first exception that escaped a task since the last wait_idle().
  void wait_idle();

  /// The first captured-and-not-yet-rethrown worker exception, or null.
  /// Non-destructive peek; wait_idle() clears it when it rethrows.
  [[nodiscard]] std::exception_ptr first_exception() const;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop_();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t running_{0};  ///< tasks currently executing
  bool stop_{false};
  std::exception_ptr first_exception_;  ///< first uncaught task exception
  // Observability (resolved once here; updated lock-free or under the
  // queue lock already held — see docs/OBSERVABILITY.md).
  metrics::Counter* tasks_submitted_;
  metrics::Counter* tasks_executed_;
  metrics::Gauge* peak_queue_depth_;
  metrics::Gauge* queue_depth_;
};

}  // namespace tono
