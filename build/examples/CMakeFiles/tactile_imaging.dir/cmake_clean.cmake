file(REMOVE_RECURSE
  "CMakeFiles/tactile_imaging.dir/tactile_imaging.cpp.o"
  "CMakeFiles/tactile_imaging.dir/tactile_imaging.cpp.o.d"
  "tactile_imaging"
  "tactile_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactile_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
