# Empty dependencies file for adc_characterization.
# This may be replaced when dependencies are built.
