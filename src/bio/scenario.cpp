#include "src/bio/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace tono::bio {

struct ScenarioProfile::Columns {
  std::vector<double> t;
  std::vector<double> dia;
  std::vector<double> pp;
  std::vector<double> hr;

  static Columns from(const std::vector<ScenarioKeyframe>& frames) {
    if (frames.size() < 2) {
      throw std::invalid_argument{"ScenarioProfile: need >= 2 keyframes"};
    }
    Columns c;
    for (const auto& f : frames) {
      if (!c.t.empty() && f.time_s <= c.t.back()) {
        throw std::invalid_argument{"ScenarioProfile: keyframes must be time-ordered"};
      }
      if (f.systolic_mmhg <= f.diastolic_mmhg) {
        throw std::invalid_argument{"ScenarioProfile: systolic must exceed diastolic"};
      }
      if (!(f.heart_rate_bpm > 20.0) || !(f.heart_rate_bpm <= 250.0)) {
        throw std::invalid_argument{"ScenarioProfile: heart rate must be in (20, 250] bpm"};
      }
      c.t.push_back(f.time_s);
      c.dia.push_back(f.diastolic_mmhg);
      c.pp.push_back(f.systolic_mmhg - f.diastolic_mmhg);
      c.hr.push_back(f.heart_rate_bpm);
    }
    return c;
  }
};

ScenarioProfile::ScenarioProfile(const std::vector<ScenarioKeyframe>& keyframes,
                                 const Columns& c, std::string name)
    : name_(std::move(name)),
      keyframes_(keyframes),
      dia_(c.t, c.dia),
      pp_(c.t, c.pp),
      hr_(c.t, c.hr),
      t_min_(c.t.front()),
      t_max_(c.t.back()) {}

ScenarioProfile::ScenarioProfile(std::vector<ScenarioKeyframe> keyframes, std::string name)
    : ScenarioProfile(keyframes, Columns::from(keyframes), std::move(name)) {}

ScenarioKeyframe ScenarioProfile::at(double t_s) const {
  const double t = std::clamp(t_s, t_min_, t_max_);
  const double dia = dia_(t);
  const double pp = std::max(pp_(t), kMinPulsePressureMmhg);
  return ScenarioKeyframe{t, dia + pp, dia, hr_(t)};
}

void ScenarioProfile::apply(ArterialPulseGenerator& generator, double t_s) const {
  const auto k = at(t_s);
  generator.set_targets(k.systolic_mmhg, k.diastolic_mmhg, k.heart_rate_bpm);
}

double ScenarioProfile::duration_s() const noexcept { return t_max_ - t_min_; }

ScenarioProfile ScenarioProfile::exercise(double total_s) {
  const double t1 = 0.25 * total_s;   // rest ends
  const double t2 = 0.50 * total_s;   // peak exercise
  const double t3 = total_s;          // recovered
  return ScenarioProfile{
      {
          ScenarioKeyframe{0.0, 120.0, 80.0, 72.0},
          ScenarioKeyframe{t1, 120.0, 80.0, 75.0},
          ScenarioKeyframe{t2, 165.0, 95.0, 130.0},
          ScenarioKeyframe{0.75 * total_s, 135.0, 85.0, 95.0},
          ScenarioKeyframe{t3, 122.0, 81.0, 78.0},
      },
      "exercise"};
}

ScenarioProfile ScenarioProfile::hypotensive_episode(double total_s) {
  const double onset = 0.35 * total_s;
  const double nadir = 0.50 * total_s;
  return ScenarioProfile{
      {
          ScenarioKeyframe{0.0, 118.0, 78.0, 74.0},
          ScenarioKeyframe{onset, 116.0, 77.0, 76.0},
          ScenarioKeyframe{nadir, 82.0, 52.0, 98.0},   // fast crash, reflex tachycardia
          ScenarioKeyframe{0.7 * total_s, 96.0, 62.0, 90.0},
          ScenarioKeyframe{total_s, 106.0, 70.0, 82.0},
      },
      "hypotensive-episode"};
}

ScenarioProfile ScenarioProfile::arrhythmia_train(double total_s) {
  // Two paroxysmal bursts: abrupt rate jumps with pulse pressure narrowed
  // by the shortened filling time, each reverting to sinus baseline.
  return ScenarioProfile{
      {
          ScenarioKeyframe{0.0, 118.0, 76.0, 72.0},
          ScenarioKeyframe{0.15 * total_s, 117.0, 76.0, 75.0},
          ScenarioKeyframe{0.20 * total_s, 104.0, 78.0, 148.0},  // burst 1 onset
          ScenarioKeyframe{0.30 * total_s, 102.0, 78.0, 142.0},
          ScenarioKeyframe{0.35 * total_s, 116.0, 77.0, 80.0},   // reversion
          ScenarioKeyframe{0.55 * total_s, 117.0, 76.0, 74.0},
          ScenarioKeyframe{0.60 * total_s, 103.0, 79.0, 150.0},  // burst 2 onset
          ScenarioKeyframe{0.72 * total_s, 101.0, 78.0, 145.0},
          ScenarioKeyframe{0.78 * total_s, 115.0, 76.0, 82.0},   // reversion
          ScenarioKeyframe{total_s, 118.0, 76.0, 73.0},
      },
      "arrhythmia-train"};
}

ScenarioProfile ScenarioProfile::cuff_recalibration_drift(double total_s) {
  // Sawtooth: readings sag over each inter-calibration interval, then snap
  // back when the cuff re-anchors the offset. Three calibration cycles.
  constexpr int kCycles = 3;
  const double cycle_s = total_s / kCycles;
  std::vector<ScenarioKeyframe> frames;
  frames.push_back(ScenarioKeyframe{0.0, 122.0, 80.0, 70.0});
  for (int k = 1; k <= kCycles; ++k) {
    const double t_recal = k * cycle_s;
    // Bottom of the sag just before recalibration, then the fast snap-back.
    frames.push_back(ScenarioKeyframe{t_recal - 0.02 * cycle_s, 113.5, 73.5, 71.0});
    frames.push_back(ScenarioKeyframe{t_recal, 122.0, 80.0, 70.0});
  }
  return ScenarioProfile{std::move(frames), "cuff-recalibration-drift"};
}

ScenarioProfile ScenarioProfile::sensor_aging(double total_s) {
  // Monotone decline with no recovery: pulse pressure tapers (44 → 34 mmHg)
  // and the baseline sags a few mmHg, the trend a drifting/aging transducer
  // must keep resolving.
  return ScenarioProfile{
      {
          ScenarioKeyframe{0.0, 124.0, 80.0, 74.0},
          ScenarioKeyframe{0.25 * total_s, 121.0, 79.0, 74.0},
          ScenarioKeyframe{0.50 * total_s, 117.5, 78.0, 75.0},
          ScenarioKeyframe{0.75 * total_s, 114.0, 77.0, 75.0},
          ScenarioKeyframe{total_s, 110.0, 76.0, 76.0},
      },
      "sensor-aging"};
}

}  // namespace tono::bio
