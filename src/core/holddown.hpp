// holddown.hpp — applanation (hold-down pressure) optimization.
//
// Tonometry only transmits the full pulse when the vessel is partially
// flattened: too little hold-down and tissue absorbs the pulsation, too much
// and the occluded vessel stops moving (the bell-shaped transmission in
// bio::TissueCoupling). Clinical tonometers servo the hold-down; this module
// implements that search on the simulated chip: coarse sweep, then
// golden-section refinement of the pulsation amplitude.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/monitor.hpp"

namespace tono::core {

struct HoldDownConfig {
  double min_mmhg{30.0};
  double max_mmhg{160.0};
  std::size_t coarse_steps{7};
  std::size_t refine_iterations{4};
  /// Output samples acquired per candidate (must cover ≥ 1 beat).
  std::size_t dwell_samples{1500};
};

struct HoldDownResult {
  double best_mmhg{0.0};
  double best_amplitude{0.0};  ///< robust pulsation amplitude at the optimum
  /// (hold-down, amplitude) pairs of every evaluation, in evaluation order.
  std::vector<std::pair<double, double>> profile;
};

class HoldDownOptimizer {
 public:
  explicit HoldDownOptimizer(const HoldDownConfig& config = {});

  /// Finds the hold-down pressure maximizing the pulsation amplitude for
  /// this chip/patient combination. Each candidate is evaluated on a fresh
  /// monitor (the backpressure bias tracks the hold-down, as in §3.2).
  [[nodiscard]] HoldDownResult optimize(const ChipConfig& chip,
                                        const WristModel& wrist) const;

  [[nodiscard]] const HoldDownConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double evaluate(const ChipConfig& chip, const WristModel& wrist,
                                double hold_down_mmhg) const;

  HoldDownConfig config_;
};

}  // namespace tono::core
