// artifacts.hpp — measurement artefacts for robustness testing.
//
// Field recordings (the paper's §4 "field tests have to be performed")
// suffer baseline wander from posture, motion spikes from wrist movement
// and sensor-contact noise. The injector adds these to a contact-pressure
// stream so beat detection and calibration can be stress-tested.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.hpp"

namespace tono::bio {

struct ArtifactConfig {
  /// Random-walk baseline wander [mmHg/√s].
  double wander_mmhg_per_sqrt_s{0.3};
  /// Mean rate of motion spikes [1/s].
  double spike_rate_hz{0.05};
  /// Spike amplitude distribution (exponential mean) [mmHg].
  double spike_amplitude_mmhg{15.0};
  /// Spike decay time constant [s].
  double spike_decay_s{0.15};
  /// Broadband contact noise, rms [mmHg].
  double contact_noise_mmhg{0.15};
  std::uint64_t seed{99};
};

class ArtifactInjector {
 public:
  explicit ArtifactInjector(const ArtifactConfig& config);

  /// Artefact value to add at the next sample (advance by dt).
  [[nodiscard]] double next(double dt_s);

  /// Applies artefacts to a whole record in place at the given rate.
  void apply(std::span<double> samples, double sample_rate_hz);

  /// Number of spikes injected so far.
  [[nodiscard]] std::size_t spike_count() const noexcept { return spike_count_; }

  /// Checkpointing: Rng stream, wander/spike state and spike count.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  ArtifactConfig config_;
  Rng rng_;
  double wander_mmhg_{0.0};
  double spike_level_mmhg_{0.0};
  double next_spike_in_s_{0.0};
  std::size_t spike_count_{0};
};

}  // namespace tono::bio
