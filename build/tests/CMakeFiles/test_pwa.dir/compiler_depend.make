# Empty compiler generated dependencies file for test_pwa.
# This may be replaced when dependencies are built.
