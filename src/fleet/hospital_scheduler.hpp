// hospital_scheduler.hpp — sharded fleet serving: one hospital, N wards.
//
// FleetScheduler runs every session in one lockstep batch, so a single slow
// session (or the batch barrier itself) gates the whole fleet — measured
// flat scaling at 64+ sessions. The hospital splits the fleet into
// independent ward shards: shard s owns its own FleetScheduler, ThreadPool,
// WardAggregator, code/event rings and seed domain, driven by a dedicated
// driver thread. Shards only meet at *epoch* boundaries (every
// `epoch_batches` batches), where a std::barrier completion step aggregates
// telemetry and hands snapshots to the async writer. Between epochs the
// shards share nothing mutable — the cross-shard roll-up flows through the
// lock-free AggregationTree mirrors (aggregation_tree.hpp), and JSONL
// serialization runs on the AsyncSnapshotWriter thread (snapshot_writer.hpp)
// so it never stalls a barrier.
//
// Determinism contract (docs/FLEET.md "Sharding"): shard assignment is a
// pure function of session id — `id % shards` — and session ids equal
// hospital admission order. Shard s's FleetScheduler maps its n-th
// admission to global id s + n·shards and derives the seed from that global
// id, so a session's seed, stream, fault plan and recovery schedule are all
// bit-identical whether it runs solo, in an unsharded fleet, or in any
// shard layout. Per-shard batch/backoff counters advance exactly as the
// equivalent S-sessions-in-one-fleet run's do, so quarantine → readmit →
// retire timing (PR 5) is preserved; merged snapshots re-sort sessions by
// global id and are byte-identical across shard counts.
//
// Threading contract: construct, admit() every session, then run(); admit
// and the exact accessors (snapshot/export_jsonl) must not race run().
// stats() is the exception — it reads the lock-free mirrors and is safe
// (and approximate, field-exact) at any time.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/fleet/aggregation_tree.hpp"
#include "src/fleet/fleet_scheduler.hpp"
#include "src/fleet/snapshot_writer.hpp"
#include "src/fleet/ward_aggregator.hpp"

namespace tono::fleet {

struct HospitalConfig {
  /// Ward shards; 1 reproduces the plain FleetScheduler byte-for-byte.
  std::size_t shards{1};
  /// Worker threads inside each shard's pool; 0 → hardware concurrency /
  /// shards (min 1). 1 keeps each shard on its driver thread (no pool) —
  /// the sweet spot when shards ≥ cores.
  std::size_t threads_per_shard{0};
  std::uint64_t base_seed{0x70A05EEDull};
  std::string stream_name{"fleet"};
  std::size_t frames_per_step{64};
  std::size_t max_readmits{3};
  std::size_t readmit_backoff_batches{2};
  /// Batches every shard runs between epoch barriers. Larger → less
  /// synchronization, coarser aggregation granularity. Purely an
  /// orchestration knob: it cannot affect results, only when the hospital
  /// observes them.
  std::size_t epoch_batches{16};
  WardConfig ward{};
  /// When non-empty, run() writes JSONL snapshots here through the async
  /// writer: one at every `snapshot_every_epochs`-th epoch (0 = final
  /// snapshot only) and always one exact snapshot at the end of run().
  std::string snapshot_path{};
  std::size_t snapshot_every_epochs{0};
  /// When non-empty, run() writes a resumable binary checkpoint here —
  /// crash-safe (tmp + fsync + rename, see atomic_write_file) — at every
  /// `checkpoint_every_epochs`-th epoch barrier and once more at the end of
  /// run(). A restarted process re-admits the identical session mix, calls
  /// try_restore_checkpoint() and continues run(): the completed stream is
  /// bit-identical to one that was never interrupted.
  std::string checkpoint_path{};
  /// 0 disables the periodic writes (the end-of-run checkpoint still lands).
  std::size_t checkpoint_every_epochs{0};
};

/// Schema version of the whole-hospital checkpoint blob (embeds every
/// shard's scheduler, session and ward sections).
inline constexpr std::uint32_t kHospitalCheckpointVersion = 2;

class HospitalScheduler {
 public:
  explicit HospitalScheduler(HospitalConfig config);
  ~HospitalScheduler();

  HospitalScheduler(const HospitalScheduler&) = delete;
  HospitalScheduler& operator=(const HospitalScheduler&) = delete;

  /// Same derivation as FleetScheduler::session_seed — global session id in,
  /// seed out, shard-layout independent.
  [[nodiscard]] std::uint64_t session_seed(std::size_t session_id) const;

  /// The shard a session id lives on: id % shards. Pure, stateless.
  [[nodiscard]] std::size_t shard_of(std::uint32_t id) const noexcept {
    return id % shards_.size();
  }

  /// Admits the next session (round-robin over shards by global id).
  /// Returns the global id (== hospital admission index).
  std::uint32_t admit(SessionConfig config, std::string label = "");

  /// Runs every shard to `duration_s` of per-session stream time on its own
  /// driver thread, epoch-synchronized; drains, settles and publishes each
  /// shard before it parks. When snapshot_path is set, hands the writer a
  /// final exact snapshot and flushes before returning.
  void run(double duration_s);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  /// Resolved worker threads inside each shard.
  [[nodiscard]] std::size_t threads_per_shard() const noexcept {
    return threads_per_shard_;
  }
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t active_sessions() const;
  [[nodiscard]] const HospitalConfig& config() const noexcept { return config_; }

  /// Per-session lookups, routed to the owning shard.
  [[nodiscard]] SessionState state(std::uint32_t id) const;
  [[nodiscard]] std::size_t strikes(std::uint32_t id) const;
  [[nodiscard]] const std::string& quarantine_reason(std::uint32_t id) const;

  /// Direct shard access (tests; recorded_codes and friends).
  [[nodiscard]] FleetScheduler& shard(std::size_t s) { return *shards_[s].scheduler; }
  [[nodiscard]] WardAggregator& ward(std::size_t s) { return *shards_[s].ward; }

  /// Exact merged snapshot (not during run() — see the threading contract).
  /// Byte-compatible with a single ward's snapshot: shard-count-invariant.
  [[nodiscard]] WardSnapshot snapshot() const;
  void export_jsonl(std::ostream& os) const;

  /// Live lock-free roll-up of the shard mirrors; callable any time, from
  /// any thread. Field-exact, cross-field cut may lag one batch per shard.
  [[nodiscard]] ShardStats stats() const noexcept { return tree_.sum(); }

  [[nodiscard]] std::uint64_t epochs() const noexcept {
    return epochs_.load(std::memory_order_relaxed);
  }
  /// Async writer accounting (0/0 when no snapshot_path configured).
  [[nodiscard]] std::uint64_t snapshots_written() const;
  [[nodiscard]] std::uint64_t snapshots_skipped() const;

  /// Full-hospital checkpoint: the epoch counter plus every shard's
  /// scheduler (batch counters, slot lifecycles, complete session dumps)
  /// and ward (vitals, alarm queue, fault logs). Call only at quiescence —
  /// between run() calls or from the epoch barrier, never concurrently
  /// with stepping shards.
  [[nodiscard]] std::vector<std::uint8_t> checkpoint() const;

  /// Restores from a checkpoint() blob. Expects a hospital constructed with
  /// the same shard count and the same sessions admitted in the same order
  /// as when the blob was captured; throws CheckpointError on any mismatch.
  void restore_checkpoint(const std::vector<std::uint8_t>& blob);

  /// checkpoint() → atomic replace of config.checkpoint_path. Returns false
  /// (and leaves any previous checkpoint intact) without a configured path
  /// or on a write failure.
  bool save_checkpoint();

  /// Resume hook: restores from config.checkpoint_path if the file exists.
  /// Returns false on no path / no file (fresh start); a corrupt or
  /// mismatched blob throws CheckpointError — it never half-restores.
  bool try_restore_checkpoint();

  /// Checkpoints successfully written to checkpoint_path so far.
  [[nodiscard]] std::uint64_t checkpoints_saved() const noexcept {
    return checkpoints_saved_;
  }

 private:
  struct Shard {
    std::unique_ptr<WardAggregator> ward;
    std::unique_ptr<FleetScheduler> scheduler;
  };
  /// std::barrier completion functor: runs the epoch aggregation step on
  /// exactly one driver thread per phase, with every shard parked (or
  /// permanently done) — the quiescence point that makes merged reads exact.
  struct EpochTick {
    HospitalScheduler* hospital;
    void operator()() noexcept { hospital->on_epoch_(); }
  };

  void shard_loop_(std::size_t s, double until_s, std::barrier<EpochTick>& epoch);
  void publish_shard_(std::size_t s);
  void on_epoch_();
  [[nodiscard]] WardSnapshot merge_snapshot_() const;

  HospitalConfig config_;
  std::size_t threads_per_shard_;
  std::vector<Shard> shards_;
  AggregationTree tree_;
  std::unique_ptr<AsyncSnapshotWriter> writer_;  ///< null without snapshot_path
  std::size_t admitted_{0};
  std::uint64_t checkpoints_saved_{0};
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<std::size_t> live_shards_{0};
  // Observability (resolved once at construction).
  metrics::Counter* epochs_metric_;
  metrics::Counter* publishes_metric_;
  metrics::Gauge* shards_gauge_;
  metrics::Gauge* shards_active_gauge_;
  metrics::Gauge* codes_gauge_;
  metrics::Gauge* alarms_gauge_;
  metrics::Timer* epoch_wall_;
};

}  // namespace tono::fleet
