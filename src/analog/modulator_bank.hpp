// modulator_bank.hpp — K independent ΔΣ modulators stepped in lockstep.
//
// The paper's sensor is a 2×2 array (§3: four electrodes over the pressure
// membrane), and characterization sweeps run hundreds of independent trials;
// both want "step K modulators over the same clock window" as one operation.
// The bank does that over the modulators' per-frame noise plans: each frame,
// every lane's noise is bulk-generated (one Rng::fill_gaussian per lane per
// source group), then the lanes advance clock-by-clock in lockstep so their
// state (integrators, bits, plan cursors) is touched in a cache-friendly
// round-robin.
//
// Lane semantics — the contract tests pin:
//   * each lane is a full DeltaSigmaModulator with its own config, seed and
//     noise streams; lanes never share draws;
//   * lane k's bitstream is bit-identical to running that modulator alone
//     through step_capacitive_block (and therefore to n scalar
//     step_capacitive calls) — the bank changes scheduling, never values;
//   * outputs are lane-major: bits_out[k * n + i] is lane k, clock i.
#pragma once

#include <cstddef>
#include <vector>

#include "src/analog/modulator.hpp"
#include "src/common/metrics.hpp"

namespace tono::analog {

class ModulatorBank {
 public:
  /// One lane per config. Lanes may differ in every respect (seed, caps,
  /// noise settings) — heterogeneous banks are how sweeps use this.
  explicit ModulatorBank(const std::vector<ModulatorConfig>& configs);

  /// Convenience: K lanes sharing `base`, with per-lane seeds decorrelated
  /// by the same golden-ratio salting Rng::fork uses. Lane 0 keeps
  /// `base.seed` unchanged, so lane 0 reproduces the single-modulator run.
  ModulatorBank(const ModulatorConfig& base, std::size_t lanes);

  /// Runs `n` clocks on every lane in capacitive mode. `c_sense_f` /
  /// `c_ref_f` hold one capacitance per lane; `bits_out` has room for
  /// lanes()·n ints and is filled lane-major (lane k at bits_out[k*n]).
  void step_capacitive_block(const double* c_sense_f, const double* c_ref_f,
                             int* bits_out, std::size_t n);

  /// Per-lane variant against each lane's configured on-chip reference
  /// branch (mirrors DeltaSigmaModulator::step_capacitive(c_sense)).
  void step_capacitive_block(const double* c_sense_f, int* bits_out,
                             std::size_t n);

  void reset();

  /// Checkpointing: every lane's full modulator state, in lane order. The
  /// lane count is config-derived and verified on restore.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }
  [[nodiscard]] DeltaSigmaModulator& lane(std::size_t k) { return lanes_[k]; }
  [[nodiscard]] const DeltaSigmaModulator& lane(std::size_t k) const {
    return lanes_[k];
  }

 private:
  void init_metrics_();

  std::vector<DeltaSigmaModulator> lanes_;
  std::vector<DeltaSigmaModulator::CapacitiveInput> inputs_;  ///< scratch
  metrics::Gauge* bank_lanes_gauge_{nullptr};
  metrics::Timer* step_block_timer_{nullptr};
};

}  // namespace tono::analog
