file(REMOVE_RECURSE
  "CMakeFiles/tono_dsp.dir/biquad.cpp.o"
  "CMakeFiles/tono_dsp.dir/biquad.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/cic.cpp.o"
  "CMakeFiles/tono_dsp.dir/cic.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/decimation.cpp.o"
  "CMakeFiles/tono_dsp.dir/decimation.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/fft.cpp.o"
  "CMakeFiles/tono_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/fir_design.cpp.o"
  "CMakeFiles/tono_dsp.dir/fir_design.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/fir_filter.cpp.o"
  "CMakeFiles/tono_dsp.dir/fir_filter.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/tono_dsp.dir/goertzel.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/noise_analysis.cpp.o"
  "CMakeFiles/tono_dsp.dir/noise_analysis.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/tono_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/tono_dsp.dir/window.cpp.o"
  "CMakeFiles/tono_dsp.dir/window.cpp.o.d"
  "libtono_dsp.a"
  "libtono_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tono_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
