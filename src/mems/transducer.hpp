// transducer.hpp — one complete force-sensitive element of the array.
//
// Combines the mechanical plate and the sensing capacitor, adds the
// backpressure bias (§3.2: "an applied overpressure bends the membrane
// layers upwards, so that they stick out and touch the surface of the
// measured object"), small fabrication mismatch, temperature drift and
// Brownian (thermo-mechanical) pressure noise. Also models the unreleased
// reference structure whose capacitance is pressure-independent.
#pragma once

#include <optional>

#include "src/mems/capacitor.hpp"

namespace tono::mems {

struct TransducerConfig {
  PlateGeometry plate{};
  CapacitorGeometry capacitor{};
  /// Static backpressure applied through the pressure tube on the chip
  /// backside [Pa]; pushes the membrane up (away from the substrate).
  double backpressure_pa{0.0};
  /// Multiplicative fabrication mismatch on rest capacitance (1.0 = nominal).
  double capacitance_mismatch{1.0};
  /// Linear temperature coefficient of capacitance [1/K] around 300 K.
  double capacitance_tempco_per_k{30e-6};
  /// Mechanical quality factor (air-damped membrane), for noise estimates.
  double quality_factor{5.0};
};

/// Force-sensitive element: net pressure → deflection → capacitance.
class PressureTransducer {
 public:
  explicit PressureTransducer(const TransducerConfig& config);

  /// Capacitance for a given *contact* pressure applied to the membrane top
  /// [F]. The net membrane load is contact − backpressure (backpressure
  /// pushes up). Temperature defaults to the calibration point.
  [[nodiscard]] double capacitance(double contact_pressure_pa,
                                   double temperature_k = 300.0) const noexcept;

  /// Rest capacitance at the bias point (backpressure only, no contact).
  [[nodiscard]] double bias_capacitance() const noexcept;

  /// Small-signal sensitivity dC/dp at the bias point [F/Pa].
  [[nodiscard]] double sensitivity() const noexcept;

  /// Center deflection under a contact pressure (positive = toward the
  /// substrate) [m].
  [[nodiscard]] double deflection(double contact_pressure_pa) const noexcept;

  /// True if the given contact pressure drives the membrane into touch-down.
  [[nodiscard]] bool touches_down(double contact_pressure_pa) const noexcept;

  /// Thermo-mechanical (Brownian) noise-equivalent pressure density
  /// [Pa/√Hz]: √(4 k_B T k₁ / (2π f₀ Q A_eff)) referred to the membrane.
  [[nodiscard]] double noise_equivalent_pressure_density(
      double temperature_k = 300.0) const noexcept;

  [[nodiscard]] const MembraneCapacitor& capacitor() const noexcept { return cap_; }
  [[nodiscard]] const TransducerConfig& config() const noexcept { return config_; }

  /// The unreleased reference structure: same stack and electrodes but the
  /// sacrificial layer is kept, so the capacitance is fixed. Returns its
  /// pressure-independent value [F].
  [[nodiscard]] double reference_capacitance() const noexcept;

 private:
  TransducerConfig config_;
  MembraneCapacitor cap_;
};

}  // namespace tono::mems
