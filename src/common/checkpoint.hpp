// checkpoint.hpp — versioned, checksummed binary state blobs.
//
// Every stateful stage of a patient session (RNG streams, modulator
// integrators, filter delay lines, monitor windows, fault cursors) exposes a
// `serialize(CheckpointWriter&)` / `restore(CheckpointReader&)` pair built on
// this layer. The contract that makes checkpoints useful for crash recovery
// and session migration (docs/FLEET.md "Checkpoint & resume"):
//
//   * Restore targets a *freshly constructed* object built from the identical
//     config. Construction-time derived state (mismatch draws, LUTs, derived
//     seeds) reproduces deterministically, so only dynamic state is stored.
//   * Doubles are stored as their exact IEEE-754 bit patterns — a round trip
//     is bit-identical, never "close".
//   * Blobs are framed with a magic, a schema version, the payload length and
//     a 64-bit FNV-1a checksum. A truncated, corrupted or
//     version-incompatible blob fails loudly (CheckpointError) at open or at
//     the first misaligned section read — it can never yield a plausible but
//     wrong session.
//
// Encoding is explicit little-endian regardless of host order, so blobs are
// byte-identical across compilers (the same discipline as the golden-code
// transcripts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tono {

/// Thrown on any malformed blob: bad magic, checksum mismatch, truncation,
/// section-tag mismatch, trailing bytes or an unsupported schema version.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// 64-bit FNV-1a over a byte range; the blob checksum.
[[nodiscard]] std::uint64_t checkpoint_fnv1a(const std::uint8_t* data,
                                             std::size_t n) noexcept;

/// Crash-safe whole-file replacement: writes `<path>.tmp`, fsyncs it, then
/// atomically rename(2)s over `path`. A crash or kill at any instant leaves
/// either the previous complete file or the new complete file — never a torn
/// one. Returns false on any failure (open, short write, fsync, rename); the
/// target is left untouched on failure.
[[nodiscard]] bool atomic_write_file(const std::string& path, const void* data,
                                     std::size_t size) noexcept;

/// Reads a whole file as bytes; throws CheckpointError when unreadable.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// Appends primitive values to a growing payload; `finish()` frames it.
class CheckpointWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Exact IEEE-754 bit pattern; round trip is bit-identical.
  void f64(double v);
  void boolean(bool v);
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(std::string_view s);

  /// Writes a 32-bit tag derived from `name`. The matching
  /// CheckpointReader::section call re-derives and compares it, so a reader
  /// that drifts out of alignment with the writer fails at the next section
  /// boundary with the section's name in the error, not downstream with
  /// garbage values.
  void section(std::string_view name);

  [[nodiscard]] std::size_t bytes_written() const noexcept {
    return payload_.size();
  }

  /// Frames the payload: magic "TCKP", schema version, payload length,
  /// FNV-1a checksum, payload.
  [[nodiscard]] std::vector<std::uint8_t> finish(
      std::uint32_t schema_version) const;

 private:
  std::vector<std::uint8_t> payload_;
};

/// Validates the frame (magic, length, checksum) at construction and then
/// reads primitives back in writer order. Every read bounds-checks; reading
/// past the payload throws instead of fabricating state.
class CheckpointReader {
 public:
  CheckpointReader(const std::uint8_t* data, std::size_t size);
  explicit CheckpointReader(const std::vector<std::uint8_t>& blob);

  [[nodiscard]] std::uint32_t schema_version() const noexcept {
    return version_;
  }
  /// Throws unless the blob's schema version equals `expected`.
  void require_version(std::uint32_t expected) const;

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::size_t size() { return static_cast<std::size_t>(u64()); }
  [[nodiscard]] std::string str();

  /// Reads a section tag and throws (naming `name`) unless it matches.
  void section(std::string_view name);

  /// Throws unless the whole payload was consumed — trailing bytes mean the
  /// blob and the reader disagree about the schema.
  void expect_end() const;

 private:
  const std::uint8_t* take_(std::size_t n, const char* what);

  std::vector<std::uint8_t> owned_;  ///< storage when constructed from a blob
  const std::uint8_t* payload_{nullptr};
  std::size_t size_{0};
  std::size_t pos_{0};
  std::uint32_t version_{0};
};

}  // namespace tono
