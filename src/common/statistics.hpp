// statistics.hpp — streaming and batch statistics used by metrics, tests
// and benchmark reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tono {

/// Single-pass accumulator for mean/variance/extrema (Welford's algorithm).
/// Numerically stable for long sample streams (minutes of 128 kHz data).
class RunningStats {
 public:
  void add(double x) noexcept;
  void add(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n).
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (divides by n-1); 0 for n < 2.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  /// Root-mean-square of all samples added so far.
  [[nodiscard]] double rms() const noexcept;

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};       // sum of squared deviations from the mean
  double sum_sq_{0.0};   // raw sum of squares, for rms()
  double min_{0.0};
  double max_{0.0};
};

/// Batch helpers on spans. All return 0 for empty input unless noted.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
[[nodiscard]] double rms(std::span<const double> xs) noexcept;
[[nodiscard]] double min_value(std::span<const double> xs) noexcept;
[[nodiscard]] double max_value(std::span<const double> xs) noexcept;
[[nodiscard]] double peak_to_peak(std::span<const double> xs) noexcept;

/// q-th percentile (q in [0,100]) by linear interpolation between closest
/// ranks. Copies and sorts internally; intended for report-time use.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series has zero variance or sizes mismatch.
[[nodiscard]] double pearson_correlation(std::span<const double> a,
                                         std::span<const double> b) noexcept;

/// Root-mean-square error between two equal-length series.
[[nodiscard]] double rmse(std::span<const double> a, std::span<const double> b) noexcept;

/// Mean absolute error between two equal-length series.
[[nodiscard]] double mae(std::span<const double> a, std::span<const double> b) noexcept;

}  // namespace tono
