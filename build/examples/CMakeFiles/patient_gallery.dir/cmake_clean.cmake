file(REMOVE_RECURSE
  "CMakeFiles/patient_gallery.dir/patient_gallery.cpp.o"
  "CMakeFiles/patient_gallery.dir/patient_gallery.cpp.o.d"
  "patient_gallery"
  "patient_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patient_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
