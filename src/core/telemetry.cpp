#include "src/core/telemetry.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/checkpoint.hpp"

namespace tono::core {
namespace {

// The public sizing helpers (telemetry.hpp) under the names this file has
// always used.
constexpr std::size_t kHeaderBytes = kFrameHeaderBytes;
constexpr std::size_t kCrcBytes = kFrameCrcBytes;

constexpr std::size_t payload_bytes(std::size_t n_samples) {
  return frame_payload_bytes(n_samples);
}

}  // namespace

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>(crc ^ (static_cast<std::uint16_t>(byte) << 8));
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::vector<std::uint8_t> FrameEncoder::encode(std::span<const std::int16_t> samples) {
  if (samples.empty() || samples.size() > kMaxSamplesPerFrame) {
    throw std::invalid_argument{"FrameEncoder: 1..80 samples per frame"};
  }
  for (std::int16_t s : samples) {
    if (s < -2048 || s > 2047) {
      throw std::invalid_argument{"FrameEncoder: sample outside 12-bit range"};
    }
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload_bytes(samples.size()) + kCrcBytes);
  frame.push_back(kFrameSync0);
  frame.push_back(kFrameSync1);
  frame.push_back(kProtocolVersion);
  frame.push_back(static_cast<std::uint8_t>(sequence_ & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(sequence_ >> 8));
  frame.push_back(static_cast<std::uint8_t>(samples.size()));

  // Pack 12-bit two's-complement values MSB-first into a bit stream.
  std::uint32_t bitbuf = 0;
  int bits = 0;
  for (std::int16_t s : samples) {
    const auto u = static_cast<std::uint16_t>(s & 0x0FFF);
    bitbuf = (bitbuf << 12) | u;
    bits += 12;
    while (bits >= 8) {
      bits -= 8;
      frame.push_back(static_cast<std::uint8_t>((bitbuf >> bits) & 0xFF));
    }
  }
  if (bits > 0) {
    frame.push_back(static_cast<std::uint8_t>((bitbuf << (8 - bits)) & 0xFF));
  }

  const std::uint16_t crc =
      crc16_ccitt(std::span<const std::uint8_t>{frame.data() + 2, frame.size() - 2});
  frame.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(crc >> 8));
  ++sequence_;
  return frame;
}

FrameDecoder::FrameDecoder() {
  auto& reg = metrics::Registry::global();
  frames_ok_metric_ = &reg.counter(metrics::names::kTelemetryFramesOk);
  crc_errors_metric_ = &reg.counter(metrics::names::kTelemetryCrcErrors);
  resyncs_metric_ = &reg.counter(metrics::names::kTelemetryResyncs);
  lost_frames_metric_ = &reg.counter(metrics::names::kTelemetryLostFrames);
}

std::size_t FrameDecoder::try_parse_at(std::size_t offset,
                                       std::optional<DecodedFrame>& out) {
  out.reset();
  const std::size_t avail = buffer_.size() - offset;
  const std::uint8_t* p = buffer_.data() + offset;
  if (avail < 2) return 0;
  if (p[0] != kFrameSync0 || p[1] != kFrameSync1) {
    ++stats_.resyncs;
    resyncs_metric_->add(1);
    return 1;  // skip one byte, hunt for sync
  }
  if (avail < kHeaderBytes) return 0;
  const std::size_t n = p[5];
  if (n == 0 || n > kMaxSamplesPerFrame || p[2] != kProtocolVersion) {
    ++stats_.resyncs;
    resyncs_metric_->add(1);
    return 1;  // implausible header: treat as noise
  }
  const std::size_t total = kHeaderBytes + payload_bytes(n) + kCrcBytes;
  if (avail < total) return 0;

  const std::uint16_t wire_crc = static_cast<std::uint16_t>(
      p[total - 2] | (static_cast<std::uint16_t>(p[total - 1]) << 8));
  const std::uint16_t calc_crc =
      crc16_ccitt(std::span<const std::uint8_t>{p + 2, total - 2 - kCrcBytes});
  if (wire_crc != calc_crc) {
    ++stats_.crc_errors;
    crc_errors_metric_->add(1);
    return 1;  // corrupt: resync from the next byte
  }

  DecodedFrame frame;
  frame.sequence =
      static_cast<std::uint16_t>(p[3] | (static_cast<std::uint16_t>(p[4]) << 8));
  frame.samples.reserve(n);
  std::uint32_t bitbuf = 0;
  int bits = 0;
  std::size_t pos = kHeaderBytes;
  for (std::size_t i = 0; i < n; ++i) {
    while (bits < 12) {
      bitbuf = (bitbuf << 8) | p[pos++];
      bits += 8;
    }
    bits -= 12;
    auto u = static_cast<std::uint16_t>((bitbuf >> bits) & 0x0FFF);
    // Sign-extend 12 → 16 bits.
    if (u & 0x0800) u = static_cast<std::uint16_t>(u | 0xF000);
    frame.samples.push_back(static_cast<std::int16_t>(u));
  }

  if (last_sequence_) {
    const std::uint16_t expected = static_cast<std::uint16_t>(*last_sequence_ + 1);
    if (frame.sequence != expected) {
      const auto gap = static_cast<std::uint16_t>(frame.sequence - expected);
      stats_.lost_frames += gap;
      lost_frames_metric_->add(gap);
    }
  }
  last_sequence_ = frame.sequence;
  ++stats_.frames_ok;
  frames_ok_metric_->add(1);
  out = std::move(frame);
  return total;
}

std::vector<DecodedFrame> FrameDecoder::push(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  std::vector<DecodedFrame> frames;
  std::size_t start = 0;
  for (;;) {
    std::optional<DecodedFrame> frame;
    const std::size_t consumed = try_parse_at(start, frame);
    if (frame) frames.push_back(std::move(*frame));
    if (consumed == 0) break;
    start += consumed;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(start));
  return frames;
}

void FrameDecoder::reset() {
  buffer_.clear();
  stats_ = LinkStats{};
  last_sequence_.reset();
}

void FrameEncoder::serialize(CheckpointWriter& out) const {
  out.section("frame_encoder");
  out.u16(sequence_);
}

void FrameEncoder::restore(CheckpointReader& in) {
  in.section("frame_encoder");
  sequence_ = in.u16();
}

void FrameDecoder::serialize(CheckpointWriter& out) const {
  out.section("frame_decoder");
  out.size(buffer_.size());
  for (std::uint8_t b : buffer_) out.u8(b);
  out.size(stats_.frames_ok);
  out.size(stats_.crc_errors);
  out.size(stats_.resyncs);
  out.size(stats_.lost_frames);
  out.boolean(last_sequence_.has_value());
  out.u16(last_sequence_.value_or(0));
}

void FrameDecoder::restore(CheckpointReader& in) {
  in.section("frame_decoder");
  buffer_.resize(in.size());
  for (auto& b : buffer_) b = in.u8();
  stats_.frames_ok = in.size();
  stats_.crc_errors = in.size();
  stats_.resyncs = in.size();
  stats_.lost_frames = in.size();
  const bool has_seq = in.boolean();
  const std::uint16_t seq = in.u16();
  last_sequence_ = has_seq ? std::optional<std::uint16_t>{seq} : std::nullopt;
}

LinkFaultInjector::LinkFaultInjector(const LinkFaultConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  const double total = config_.drop_prob + config_.bit_flip_prob +
                       config_.truncate_prob + config_.garbage_prob;
  if (config_.drop_prob < 0.0 || config_.bit_flip_prob < 0.0 ||
      config_.truncate_prob < 0.0 || config_.garbage_prob < 0.0 || total > 1.0) {
    throw std::invalid_argument{"LinkFaultInjector: probabilities must be >= 0 and sum <= 1"};
  }
}

void LinkFaultInjector::serialize(CheckpointWriter& out) const {
  out.section("link_fault_injector");
  rng_.serialize(out);
  out.u64(frames_corrupted_);
}

void LinkFaultInjector::restore(CheckpointReader& in) {
  in.section("link_fault_injector");
  rng_.restore(in);
  frames_corrupted_ = in.u64();
}

bool LinkFaultInjector::corrupt(std::vector<std::uint8_t>& wire) {
  const double u = rng_.uniform();
  double edge = config_.drop_prob;
  if (u < edge) {
    wire.clear();
    ++frames_corrupted_;
    return true;
  }
  edge += config_.bit_flip_prob;
  if (u < edge) {
    if (!wire.empty()) {
      const std::size_t flips = 1 + static_cast<std::size_t>(rng_.uniform_below(3));
      for (std::size_t i = 0; i < flips; ++i) {
        const std::uint64_t bit = rng_.uniform_below(wire.size() * 8);
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    ++frames_corrupted_;
    return true;
  }
  edge += config_.truncate_prob;
  if (u < edge) {
    if (wire.size() > 2) {
      const std::size_t keep = 2 + static_cast<std::size_t>(rng_.uniform_below(wire.size() - 2));
      wire.resize(keep);
    }
    ++frames_corrupted_;
    return true;
  }
  edge += config_.garbage_prob;
  if (u < edge) {
    const std::size_t n = config_.max_garbage_bytes == 0
                              ? 0
                              : 1 + static_cast<std::size_t>(
                                        rng_.uniform_below(config_.max_garbage_bytes));
    std::vector<std::uint8_t> junk(n);
    for (auto& b : junk) {
      // Any value but the sync lead-in: a fake 0xA5 could swallow the real
      // frame's header into a hunt that outlives this chunk.
      do {
        b = static_cast<std::uint8_t>(rng_.uniform_below(256));
      } while (b == kFrameSync0);
    }
    wire.insert(wire.begin(), junk.begin(), junk.end());
    ++frames_corrupted_;
    return true;
  }
  return false;
}

}  // namespace tono::core
