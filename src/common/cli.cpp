#include "src/common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace tono {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add(const std::string& name, Kind kind, const std::string& help,
                    std::optional<std::string> default_value) {
  if (options_.count(name) != 0) {
    throw std::invalid_argument{"ArgParser: duplicate option --" + name};
  }
  options_[name] = Option{kind, help, std::move(default_value), std::nullopt};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  add(name, Kind::kFlag, help, std::nullopt);
}

void ArgParser::add_string(const std::string& name, const std::string& help,
                           std::optional<std::string> default_value) {
  add(name, Kind::kString, help, std::move(default_value));
}

void ArgParser::add_double(const std::string& name, const std::string& help,
                           std::optional<double> default_value) {
  std::optional<std::string> def;
  if (default_value) {
    std::ostringstream oss;
    oss << *default_value;
    def = oss.str();
  }
  add(name, Kind::kDouble, help, std::move(def));
}

void ArgParser::add_int(const std::string& name, const std::string& help,
                        std::optional<long> default_value) {
  std::optional<std::string> def;
  if (default_value) def = std::to_string(*default_value);
  add(name, Kind::kInt, help, std::move(def));
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    auto it = options_.find(name);
    if (it == options_.end()) {
      error_ = "unknown option --" + name;
      return false;
    }
    if (it->second.kind == Kind::kFlag) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "option --" + name + " needs a value";
      return false;
    }
    const std::string value = argv[++i];
    if (it->second.kind == Kind::kDouble) {
      // strtod's end pointer alone accepts "nan", "inf" and overflowing
      // exponents ("1e999" parses to +inf with ERANGE) — all of which would
      // propagate NaN/inf into scenario math. Finite values only.
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        error_ = "option --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      if (!std::isfinite(parsed)) {
        error_ = errno == ERANGE
                     ? "option --" + name + " number out of range: '" + value + "'"
                     : "option --" + name + " expects a finite number, got '" +
                           value + "'";
        return false;
      }
    } else if (it->second.kind == Kind::kInt) {
      // Validate with the same parser int_value() reads with: strtod would
      // accept "1.5" here only for strtol to truncate it silently later.
      char* end = nullptr;
      errno = 0;
      (void)std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        error_ = "option --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      if (errno == ERANGE) {
        error_ = "option --" + name + " integer out of range: '" + value + "'";
        return false;
      }
    }
    it->second.value = value;
  }
  // Required (no-default, non-flag) options must be present.
  for (const auto& [name, opt] : options_) {
    if (opt.kind != Kind::kFlag && !opt.value && !opt.default_value) {
      error_ = "missing required option --" + name;
      return false;
    }
  }
  return true;
}

const ArgParser::Option& ArgParser::option_or_throw(const std::string& name,
                                                    Kind kind) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::invalid_argument{"ArgParser: unregistered option --" + name};
  }
  return it->second;
}

bool ArgParser::has(const std::string& name) const {
  const auto it = options_.find(name);
  return it != options_.end() && it->second.value.has_value();
}

bool ArgParser::flag(const std::string& name) const {
  return option_or_throw(name, Kind::kFlag).value.has_value();
}

std::string ArgParser::string_value(const std::string& name) const {
  const auto& opt = option_or_throw(name, Kind::kString);
  if (opt.value) return *opt.value;
  return opt.default_value.value_or("");
}

double ArgParser::double_value(const std::string& name) const {
  const auto& opt = option_or_throw(name, Kind::kDouble);
  const std::string raw = opt.value ? *opt.value : opt.default_value.value_or("0");
  // parse() already validated user input; a failure here means a registered
  // default was malformed — a programming error, not a usage error.
  char* end = nullptr;
  const double parsed = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0' || !std::isfinite(parsed)) {
    throw std::logic_error{"ArgParser: --" + name +
                           " holds unparsable double '" + raw + "'"};
  }
  return parsed;
}

long ArgParser::int_value(const std::string& name) const {
  const auto& opt = option_or_throw(name, Kind::kInt);
  const std::string raw = opt.value ? *opt.value : opt.default_value.value_or("0");
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::logic_error{"ArgParser: --" + name +
                           " holds unparsable integer '" + raw + "'"};
  }
  return parsed;
}

std::string ArgParser::help_text() const {
  std::ostringstream oss;
  oss << "usage: " << program_ << " [options]\n";
  if (!description_.empty()) oss << description_ << "\n";
  oss << "options:\n";
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    oss << "  --" << name;
    switch (opt.kind) {
      case Kind::kFlag: break;
      case Kind::kString: oss << " <str>"; break;
      case Kind::kDouble: oss << " <num>"; break;
      case Kind::kInt: oss << " <int>"; break;
    }
    oss << "  " << opt.help;
    if (opt.default_value) oss << " (default " << *opt.default_value << ")";
    oss << '\n';
  }
  oss << "  --help  show this message\n";
  return oss.str();
}

}  // namespace tono
