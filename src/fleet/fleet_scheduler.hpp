// fleet_scheduler.hpp — deterministic batch stepping of many sessions.
//
// The serving loop of the fleet layer (docs/FLEET.md): sessions advance in
// lockstep batches of `frames_per_step` output frames, fanned across the
// shared ThreadPool — one task per session per batch, so a session is never
// stepped by two threads at once. While workers produce, the caller thread
// drains the ward aggregator, which is what lets tiny rings with blocking
// backpressure make progress (and why the blocking policy cannot deadlock:
// with threads == 1 there is no concurrent consumer, so ring capacities
// must cover one whole batch — enforced at admission).
//
// Determinism reuses the SweepRunner pattern: session i's seed derives from
// (base_seed, stream_name, admission index) alone, every session owns all
// of its mutable state, and each batch is a barrier — so the parallel fleet
// is bit-identical to stepping the same sessions serially, regardless of
// thread count or scheduling (tests/test_fleet.cpp).
//
// Crash isolation: an admit()/step() that throws quarantines that session —
// the exception is recorded as the quarantine reason, the batch and every
// other session continue, and nothing propagates to the caller.
//
// Recovery (this is what makes quarantine non-terminal): each quarantine is
// a strike; after a deterministic backoff measured in batch counts
// (readmit_backoff_batches, doubling per strike) the session is readmitted
// as kRecovering and stepped again — back to kRunning on success, another
// strike on a throw. A session exceeding max_readmits strikes is kRetired
// for good. Backoff in batches (not wall time) keeps the whole state
// machine, and therefore every snapshot byte, identical across thread
// counts and runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/common/thread_pool.hpp"
#include "src/fleet/patient_session.hpp"
#include "src/fleet/ward_aggregator.hpp"

namespace tono::fleet {

struct FleetConfig {
  /// Worker threads. 0 → hardware concurrency; 1 → serial reference loop
  /// (no pool), the execution every parallel run must be bit-identical to.
  std::size_t threads{0};
  std::uint64_t base_seed{0x70A05EEDull};
  /// Seed-stream family name; two fleets with different names draw
  /// decorrelated session seeds from the same base seed.
  std::string stream_name{"fleet"};
  /// Output frames (1 ms each at the paper rate) per session per batch.
  std::size_t frames_per_step{64};
  /// Bounded re-admissions: a quarantined session is retried up to this many
  /// times before it is retired for good. 0 makes the first strike terminal.
  std::size_t max_readmits{3};
  /// Readmission delay after the first strike, in batches; doubles with each
  /// further strike (deterministic backoff — no wall clock anywhere).
  std::size_t readmit_backoff_batches{2};
  /// Global-id mapping for sharded fleets (hospital_scheduler.hpp): the
  /// n-th admitted session gets id `session_id_offset + n *
  /// session_id_stride`, and its seed derives from that *global* id. With
  /// the defaults (offset 0, stride 1) ids equal admission order and
  /// nothing changes. Shard s of an S-shard hospital uses (offset=s,
  /// stride=S), which makes shard assignment `id % S` — a pure function of
  /// session id — and keeps every session's seed, and therefore its entire
  /// stream, bit-identical to the unsharded and solo runs.
  std::uint32_t session_id_offset{0};
  std::uint32_t session_id_stride{1};
};

class FleetScheduler {
 public:
  FleetScheduler(FleetConfig config, WardAggregator& ward);
  ~FleetScheduler();

  FleetScheduler(const FleetScheduler&) = delete;
  FleetScheduler& operator=(const FleetScheduler&) = delete;

  /// The deterministic seed of global session id i — depends only on
  /// (base_seed, stream_name, i). For an unsharded fleet (default id
  /// mapping) the id equals the admission index. A solo harness reproducing
  /// fleet session i bit-for-bit seeds its session with this value.
  [[nodiscard]] std::uint64_t session_seed(std::size_t session_id) const;

  /// Registers a session (state kAdmitted) and attaches it to the ward.
  /// The id is session_id_offset + n·session_id_stride for the n-th
  /// admission; config.seed == 0 is replaced with session_seed(id).
  /// Admission work (localization + calibration) runs inside the session's
  /// first batch task, so it parallelizes and quarantines like a step.
  /// Throws std::invalid_argument if the code ring cannot hold one batch
  /// (frames_per_step) — the serial-mode deadlock guard.
  std::uint32_t admit(SessionConfig config, std::string label = "");

  void pause(std::uint32_t id);
  void resume(std::uint32_t id);
  void discharge(std::uint32_t id);

  [[nodiscard]] SessionState state(std::uint32_t id) const;
  /// Exception text of a quarantined session ("" otherwise).
  [[nodiscard]] const std::string& quarantine_reason(std::uint32_t id) const;
  [[nodiscard]] PatientSession* session(std::uint32_t id);
  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  [[nodiscard]] std::size_t active_sessions() const;
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return pool_ ? pool_->thread_count() : 1;
  }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

  /// One batch: every admitted/running session with stream_time_s() <
  /// `until_s` advances frames_per_step frames; quarantined sessions whose
  /// readmission backoff has elapsed join the batch as kRecovering. Returns
  /// sessions stepped successfully. Every call — even one that steps nothing
  /// — advances the batch counter that readmission backoff is measured in.
  std::size_t step_all(double until_s = 1e300);

  /// Batches until every admitted/running session has produced `duration_s`
  /// of monitoring stream (or retired trying), then fully drains the ward.
  /// Keeps ticking empty batches while a quarantined session is waiting out
  /// its backoff, so every readmission the budget allows actually happens.
  /// Paused sessions are skipped, not waited for.
  void run(double duration_s);

  /// Quarantine strikes accrued by a session so far.
  [[nodiscard]] std::size_t strikes(std::uint32_t id) const;

  /// True while a quarantined session still has readmission budget and
  /// stream time left before `until_s` — i.e. an empty batch is not "done",
  /// it is a backoff tick. run() loops on this; a sharded driver
  /// (hospital_scheduler.cpp) needs it for the same loop.
  [[nodiscard]] bool recovery_pending(double until_s) const;

  /// Batches ticked so far (every step_all call counts, stepped or empty).
  [[nodiscard]] std::uint64_t batches() const noexcept { return batch_index_; }

  /// Barrier hook: runs on the caller thread inside every non-empty
  /// step_all(), after the production barrier (all batch steps done) and
  /// before lifecycle processing and the final drain/settle. The gateway
  /// integration (docs/GATEWAY.md) pumps its demux here — codes that
  /// crossed the wire this batch are delivered into the session rings
  /// before the ward consumes and escalates, which is what keeps
  /// gateway-fed runs bit-identical to direct-publish runs. Runtime wiring
  /// only: never serialized with the scheduler.
  void set_batch_hook(std::function<void()> hook) { batch_hook_ = std::move(hook); }

  /// Checkpoint accounting for the readmission path: blobs captured from
  /// quarantined sessions, blobs successfully restored into fresh sessions,
  /// and blobs rejected by validation (the session then resumes in place).
  [[nodiscard]] std::uint64_t checkpoints_written() const noexcept {
    return checkpoints_written_;
  }
  [[nodiscard]] std::uint64_t checkpoints_restored() const noexcept {
    return checkpoints_restored_;
  }
  [[nodiscard]] std::uint64_t checkpoints_rejected() const noexcept {
    return checkpoints_rejected_;
  }

  /// Checkpointing of the whole scheduler: the batch counter plus every
  /// slot's lifecycle (state, strikes, backoff, quarantine reason, fault-log
  /// sync cursor) and the full session dump. Restore expects a scheduler
  /// with the same sessions admitted in the same order; call only at a
  /// batch barrier (between step_all calls).
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  struct Slot {
    std::unique_ptr<PatientSession> session;
    SessionState state{SessionState::kAdmitted};
    std::string quarantine_reason;
    std::size_t strikes{0};           ///< quarantines so far
    std::uint64_t eligible_batch{0};  ///< batch index the next readmit may run
    std::size_t fault_log_synced{0};  ///< session fault_log entries mirrored to ward
  };

  [[nodiscard]] Slot* find_(std::uint32_t id);
  [[nodiscard]] const Slot* find_(std::uint32_t id) const;
  void quarantine_(Slot& slot, const std::exception_ptr& error);
  void sync_fault_log_(Slot& slot);
  /// Readmission = resume-from-checkpoint: captures the quarantined
  /// session's last-barrier state as a blob, rebuilds a fresh session from
  /// the same config, restores the blob into it and re-points the ward's
  /// rings at the replacement. On a rejected blob the old object resumes in
  /// place (counted, noted in the ward fault log).
  void readmit_from_checkpoint_(Slot& slot);

  FleetConfig config_;
  WardAggregator& ward_;
  std::function<void()> batch_hook_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 1
  std::vector<Slot> sessions_;
  std::uint64_t batch_index_{0};
  std::uint64_t checkpoints_written_{0};
  std::uint64_t checkpoints_restored_{0};
  std::uint64_t checkpoints_rejected_{0};
  // Observability (resolved once at construction; batch-rate updates).
  metrics::Counter* admitted_metric_;
  metrics::Counter* discharged_metric_;
  metrics::Counter* quarantined_metric_;
  metrics::Counter* recoveries_metric_;
  metrics::Counter* retired_metric_;
  metrics::Counter* batches_metric_;
  metrics::Counter* frames_metric_;
  metrics::Counter* checkpoints_written_metric_;
  metrics::Counter* checkpoints_restored_metric_;
  metrics::Counter* checkpoints_rejected_metric_;
  metrics::Timer* batch_wall_;
  metrics::Gauge* active_gauge_;
};

}  // namespace tono::fleet
