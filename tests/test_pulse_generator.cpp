// Tests for the arterial pulse generator with physiological variability.
#include "src/bio/pulse_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/checkpoint.hpp"
#include "src/common/statistics.hpp"

namespace tono::bio {
namespace {

TEST(PulseGenerator, PressureWithinPhysiologicalBand) {
  ArterialPulseGenerator gen{PulseConfig{}};
  const auto wave = gen.generate(250.0, 250 * 30);
  EXPECT_GT(min_value(wave), 60.0);
  EXPECT_LT(max_value(wave), 140.0);
}

TEST(PulseGenerator, MeanSetpointsTrackConfig) {
  PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, 250 * 60);
  EXPECT_NEAR(gen.mean_systolic_mmhg(), 120.0, 3.0);
  EXPECT_NEAR(gen.mean_diastolic_mmhg(), 80.0, 3.0);
}

TEST(PulseGenerator, BeatIntervalsMatchHeartRate) {
  PulseConfig cfg;
  cfg.heart_rate_bpm = 60.0;
  cfg.hrv_jitter = 0.0;
  cfg.mayer_depth = 0.0;
  cfg.rsa_depth = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(500.0, 500 * 30);
  const auto& truth = gen.beat_truth();
  ASSERT_GE(truth.size(), 25u);
  for (const auto& b : truth) EXPECT_NEAR(b.interval_s, 1.0, 0.01);
}

TEST(PulseGenerator, HrvJitterSpreadsIntervals) {
  PulseConfig cfg;
  cfg.hrv_jitter = 0.05;
  cfg.mayer_depth = 0.0;
  cfg.rsa_depth = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(500.0, 500 * 120);
  std::vector<double> intervals;
  for (const auto& b : gen.beat_truth()) intervals.push_back(b.interval_s);
  ASSERT_GE(intervals.size(), 50u);
  EXPECT_GT(stddev(intervals) / mean(intervals), 0.02);
}

TEST(PulseGenerator, TruthBeatsAreOrderedAndContiguous) {
  ArterialPulseGenerator gen{PulseConfig{}};
  (void)gen.generate(500.0, 500 * 20);
  const auto& truth = gen.beat_truth();
  ASSERT_GE(truth.size(), 2u);
  for (std::size_t i = 1; i < truth.size(); ++i) {
    EXPECT_GT(truth[i].onset_s, truth[i - 1].onset_s);
    EXPECT_NEAR(truth[i].onset_s, truth[i - 1].onset_s + truth[i - 1].interval_s, 0.01);
  }
}

TEST(PulseGenerator, TruthSysAboveDia) {
  ArterialPulseGenerator gen{PulseConfig{}};
  (void)gen.generate(500.0, 500 * 30);
  for (const auto& b : gen.beat_truth()) {
    EXPECT_GT(b.systolic_mmhg, b.diastolic_mmhg);
    EXPECT_GT(b.map_mmhg, b.diastolic_mmhg);
    EXPECT_LT(b.map_mmhg, b.systolic_mmhg);
  }
}

TEST(PulseGenerator, MapClosestToDiastolic) {
  // Arterial MAP sits in the lower half of the pulse (diastole dominates).
  PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(500.0, 500 * 30);
  for (const auto& b : gen.beat_truth()) {
    EXPECT_LT(b.map_mmhg, (b.systolic_mmhg + b.diastolic_mmhg) / 2.0);
  }
}

TEST(PulseGenerator, DeterministicAcrossRuns) {
  ArterialPulseGenerator a{PulseConfig{}};
  ArterialPulseGenerator b{PulseConfig{}};
  const auto wa = a.generate(250.0, 1000);
  const auto wb = b.generate(250.0, 1000);
  EXPECT_EQ(wa, wb);
}

TEST(PulseGenerator, SeedChangesWaveform) {
  PulseConfig c1;
  c1.seed = 1;
  PulseConfig c2;
  c2.seed = 2;
  const auto wa = ArterialPulseGenerator{c1}.generate(250.0, 2000);
  const auto wb = ArterialPulseGenerator{c2}.generate(250.0, 2000);
  EXPECT_NE(wa, wb);
}

TEST(PulseGenerator, RespirationModulatesBaseline) {
  PulseConfig with;
  with.respiration_baseline_mmhg = 5.0;
  with.drift_mmhg_per_sqrt_s = 0.0;
  PulseConfig without = with;
  without.respiration_baseline_mmhg = 0.0;
  const auto ww = ArterialPulseGenerator{with}.generate(100.0, 100 * 30);
  const auto wo = ArterialPulseGenerator{without}.generate(100.0, 100 * 30);
  // Respiration widens the overall range.
  EXPECT_GT(peak_to_peak(ww), peak_to_peak(wo) + 2.0);
}

TEST(PulseGenerator, RejectsBadConfig) {
  PulseConfig bad;
  bad.systolic_mmhg = 70.0;  // below diastolic
  EXPECT_THROW((ArterialPulseGenerator{bad}), std::invalid_argument);
  PulseConfig bad2;
  bad2.heart_rate_bpm = 10.0;
  EXPECT_THROW((ArterialPulseGenerator{bad2}), std::invalid_argument);
}

TEST(PulseGenerator, RejectsBadDt) {
  ArterialPulseGenerator gen{PulseConfig{}};
  EXPECT_THROW((void)gen.sample(0.0), std::invalid_argument);
  EXPECT_THROW((void)gen.generate(0.0, 10), std::invalid_argument);
}

// Property: generator honours different clinical setpoints.
struct Setpoint {
  double sys;
  double dia;
  double hr;
};

class SetpointTest : public ::testing::TestWithParam<Setpoint> {};

TEST_P(SetpointTest, TracksTarget) {
  PulseConfig cfg;
  cfg.systolic_mmhg = GetParam().sys;
  cfg.diastolic_mmhg = GetParam().dia;
  cfg.heart_rate_bpm = GetParam().hr;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, 250 * 40);
  EXPECT_NEAR(gen.mean_systolic_mmhg(), GetParam().sys, 4.0);
  EXPECT_NEAR(gen.mean_diastolic_mmhg(), GetParam().dia, 4.0);
  const auto& truth = gen.beat_truth();
  const double expected_beats = 40.0 * GetParam().hr / 60.0;
  EXPECT_NEAR(static_cast<double>(truth.size()), expected_beats, expected_beats * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Clinical, SetpointTest,
                         ::testing::Values(Setpoint{120.0, 80.0, 72.0},
                                           Setpoint{100.0, 65.0, 55.0},
                                           Setpoint{150.0, 95.0, 90.0},
                                           Setpoint{180.0, 110.0, 110.0}));

// --- Regression tests for PR 10's unbounded-truth and single-close-out
// bugs: sample() used to close at most one beat per call (a large dt lost
// every beat but one), and every closed beat stayed in truth_ forever (every
// checkpoint serialized an ever-growing log).

TEST(PulseGenerator, LargeDtClosesEveryElapsedBeat) {
  PulseConfig cfg;
  cfg.heart_rate_bpm = 60.0;
  cfg.hrv_jitter = 0.0;
  ArterialPulseGenerator gen{cfg};
  // 30 s advanced in 5 s strides: ~30 one-second beats must close, not ~6.
  for (int i = 0; i < 6; ++i) (void)gen.sample(5.0);
  EXPECT_NEAR(static_cast<double>(gen.beats_completed()), 30.0, 3.0);
  // The log is ordered and contiguous even though whole beats had zero
  // samples.
  const auto& truth = gen.beat_truth();
  ASSERT_GE(truth.size(), 25u);
  for (std::size_t i = 1; i < truth.size(); ++i) {
    EXPECT_NEAR(truth[i].onset_s, truth[i - 1].onset_s + truth[i - 1].interval_s, 1e-9);
    // Zero-sample beats carry setpoint truth; one-sample beats have equal
    // empirical extrema — either way the pair stays ordered.
    EXPECT_GE(truth[i].systolic_mmhg, truth[i].diastolic_mmhg);
  }
}

TEST(PulseGenerator, LargeDtKeepsBeatRateOnSchedule) {
  // With jitter disabled the interval stream is deterministic, so a coarse
  // stride must close the same number of beats as a fine one over the same
  // span (the pre-fix code closed one beat per sample() call at most).
  PulseConfig cfg;
  cfg.heart_rate_bpm = 75.0;
  cfg.hrv_jitter = 0.0;
  ArterialPulseGenerator coarse{cfg};
  ArterialPulseGenerator fine{cfg};
  for (int i = 0; i < 10; ++i) (void)coarse.sample(2.0);
  for (int i = 0; i < 2000; ++i) (void)fine.sample(0.01);
  const auto coarse_beats = coarse.beats_completed();
  const auto fine_beats = fine.beats_completed();
  EXPECT_NEAR(static_cast<double>(coarse_beats), static_cast<double>(fine_beats), 2.0);
  EXPECT_GT(coarse_beats, 20u);  // ~25 beats in 20 s at 75 bpm
}

TEST(PulseGenerator, TruthLogStaysBounded) {
  PulseConfig cfg;
  cfg.heart_rate_bpm = 120.0;
  cfg.truth_capacity = 64;
  ArterialPulseGenerator gen{cfg};
  for (int i = 0; i < 60 * 500; ++i) (void)gen.sample(0.01);  // 300 s, ~600 beats
  EXPECT_GT(gen.beats_completed(), 550u);
  // Bounded: capacity plus the 25% amortization headroom, never more.
  EXPECT_LE(gen.beat_truth().size(), 64u + 16u);
  EXPECT_EQ(gen.truth_dropped() + gen.beat_truth().size(), gen.beats_completed());
  // All-beats running means keep covering dropped beats.
  EXPECT_NEAR(gen.mean_systolic_mmhg(), cfg.systolic_mmhg, 6.0);
  EXPECT_NEAR(gen.mean_diastolic_mmhg(), cfg.diastolic_mmhg, 6.0);
  // The retained tail is the most recent beats, still contiguous.
  const auto& truth = gen.beat_truth();
  for (std::size_t i = 1; i < truth.size(); ++i) {
    EXPECT_NEAR(truth[i].onset_s, truth[i - 1].onset_s + truth[i - 1].interval_s, 1e-9);
  }
}

TEST(PulseGenerator, UnboundedModeKeepsEverything) {
  PulseConfig cfg;
  cfg.heart_rate_bpm = 120.0;
  cfg.truth_capacity = 0;  // opt-out
  ArterialPulseGenerator gen{cfg};
  for (int i = 0; i < 60 * 100; ++i) (void)gen.sample(0.01);
  EXPECT_EQ(gen.truth_dropped(), 0u);
  EXPECT_EQ(gen.beat_truth().size(), gen.beats_completed());
}

TEST(PulseGenerator, DrainTruthEmptiesLogAndKeepsCounters) {
  PulseConfig cfg;
  cfg.heart_rate_bpm = 60.0;
  ArterialPulseGenerator gen{cfg};
  for (int i = 0; i < 1000; ++i) (void)gen.sample(0.01);
  const auto completed = gen.beats_completed();
  ASSERT_GT(completed, 5u);
  const auto drained = gen.drain_truth();
  EXPECT_EQ(drained.size(), completed);
  EXPECT_TRUE(gen.beat_truth().empty());
  EXPECT_EQ(gen.beats_completed(), completed);  // counters survive the drain

  // New beats land in the emptied log and drain again cleanly.
  for (int i = 0; i < 500; ++i) (void)gen.sample(0.01);
  const auto second = gen.drain_truth();
  EXPECT_EQ(gen.beats_completed(), completed + second.size());
  ASSERT_FALSE(second.empty());
  EXPECT_GT(second.front().onset_s, drained.back().onset_s);
}

TEST(PulseGenerator, BoundedLogCheckpointRoundTripIsBitIdentical) {
  PulseConfig cfg;
  cfg.heart_rate_bpm = 90.0;
  cfg.truth_capacity = 32;
  ArterialPulseGenerator a{cfg};
  for (int i = 0; i < 12000; ++i) (void)a.sample(0.01);  // far past the cap

  CheckpointWriter out;
  a.serialize(out);
  const auto blob = out.finish(1);
  // The bounded log keeps the blob small no matter how long the run was.
  EXPECT_LT(blob.size(), 16u * 1024u);

  ArterialPulseGenerator b{cfg};
  CheckpointReader in{blob};
  b.restore(in);
  EXPECT_EQ(b.beats_completed(), a.beats_completed());
  EXPECT_EQ(b.truth_dropped(), a.truth_dropped());
  ASSERT_EQ(b.beat_truth().size(), a.beat_truth().size());
  for (std::size_t i = 0; i < a.beat_truth().size(); ++i) {
    EXPECT_EQ(b.beat_truth()[i].onset_s, a.beat_truth()[i].onset_s);
    EXPECT_EQ(b.beat_truth()[i].systolic_mmhg, a.beat_truth()[i].systolic_mmhg);
  }
  // Continuing both generators stays bit-identical.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(a.sample(0.01), b.sample(0.01)) << "sample " << i;
  }
  EXPECT_EQ(a.mean_systolic_mmhg(), b.mean_systolic_mmhg());
}

}  // namespace
}  // namespace tono::bio
