file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_monitor.dir/test_adaptive_monitor.cpp.o"
  "CMakeFiles/test_adaptive_monitor.dir/test_adaptive_monitor.cpp.o.d"
  "test_adaptive_monitor"
  "test_adaptive_monitor.pdb"
  "test_adaptive_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
