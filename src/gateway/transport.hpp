// transport.hpp — the wire under the gateway (docs/GATEWAY.md).
//
// The paper's Fig. 3 link ("an interface (USB) to a computer system") is a
// byte pipe; everything the gateway promises — determinism, backpressure
// mapping, exact drop accounting — is built on this minimal interface. Two
// implementations ship:
//
//   * LoopbackTransport — an in-process bounded byte queue. The reference
//     wire: clean, deterministic, and the only transport that can *shed*
//     load (drop_oldest), which is what maps the codes-ring kDropOldest
//     policy onto the wire.
//   * TcpTransport (tcp_transport.hpp) — a real localhost/network socket.
//     Lossless by construction (the kernel either buffers or blocks the
//     writer), so it only supports the kBlock mapping.
//
// Chunks, not bytes: the mux hands the transport whole channel envelopes.
// A transport may coalesce chunks on the receive side (TCP does), but a
// shedding transport drops *whole* envelopes — that is what keeps drop
// accounting exact (an envelope's header carries its code count) and the
// demux parser free of torn-envelope states on the loopback path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

namespace tono::gateway {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sender side: enqueues one whole wire chunk (a channel envelope).
  /// Returns false when the transport is saturated and accepting the chunk
  /// would require either waiting or shedding — the caller (GatewayMux)
  /// decides which, per its backpressure policy.
  [[nodiscard]] virtual bool try_send(std::span<const std::uint8_t> chunk) = 0;

  /// Sheds the oldest queued chunk to make room, returning its bytes so the
  /// caller can account exactly what was lost. Empty when nothing can be
  /// shed — a lossless transport, or an already-empty queue.
  [[nodiscard]] virtual std::vector<std::uint8_t> drop_oldest() = 0;

  /// True when this transport can never lose a chunk (drop_oldest is a
  /// no-op and try_send == false means "wait", not "shed").
  [[nodiscard]] virtual bool lossless() const noexcept = 0;

  /// Receiver side: appends every currently available byte to `out`.
  /// Returns the byte count appended (0 = nothing pending right now).
  virtual std::size_t recv(std::vector<std::uint8_t>& out) = 0;

  /// Sender-side end-of-stream. After close(), recv() drains what is queued
  /// and then reports 0 with closed() true.
  virtual void close() = 0;
  [[nodiscard]] virtual bool closed() const noexcept = 0;
};

/// In-process wire: a mutex-guarded bounded queue of envelope chunks.
/// try_send refuses once `capacity_bytes` of envelopes are queued — except
/// for the first chunk, which is always accepted so an envelope larger than
/// the whole capacity degrades to lockstep instead of wedging forever.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(std::size_t capacity_bytes = 1 << 20);

  [[nodiscard]] bool try_send(std::span<const std::uint8_t> chunk) override;
  [[nodiscard]] std::vector<std::uint8_t> drop_oldest() override;
  [[nodiscard]] bool lossless() const noexcept override { return false; }
  std::size_t recv(std::vector<std::uint8_t>& out) override;
  void close() override;
  [[nodiscard]] bool closed() const noexcept override;

  [[nodiscard]] std::size_t queued_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::vector<std::uint8_t>> queue_;
  std::size_t queued_bytes_{0};
  std::size_t capacity_bytes_;
  bool closed_{false};
};

}  // namespace tono::gateway
