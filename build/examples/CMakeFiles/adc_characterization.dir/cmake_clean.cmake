file(REMOVE_RECURSE
  "CMakeFiles/adc_characterization.dir/adc_characterization.cpp.o"
  "CMakeFiles/adc_characterization.dir/adc_characterization.cpp.o.d"
  "adc_characterization"
  "adc_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
