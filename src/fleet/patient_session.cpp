#include "src/fleet/patient_session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/bio/cuff.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/fixed_point.hpp"
#include "src/core/quality.hpp"
#include "src/core/scan.hpp"

namespace tono::fleet {
namespace {

/// Per-session stream decorrelation: every random consumer in the slice
/// forks its own stream from the session seed, so two sessions with
/// different seeds never share a draw — and a session's draws are identical
/// whether it runs solo or inside a 64-session fleet.
struct DerivedSeeds {
  std::uint64_t chip;
  std::uint64_t modulator;
  std::uint64_t pulse;
  std::uint64_t artifacts;
  std::uint64_t cuff;
  std::uint64_t fault;
};

DerivedSeeds derive_seeds(std::uint64_t session_seed) {
  Rng root{session_seed};
  // The fault stream MUST stay the last fork: each fork advances `root` by
  // one draw, so appending here keeps every pre-existing stream (and with an
  // empty fault plan, the whole session) bit-identical to older builds.
  return DerivedSeeds{
      .chip = root.fork_named("chip").next_u64(),
      .modulator = root.fork_named("modulator").next_u64(),
      .pulse = root.fork_named("pulse").next_u64(),
      .artifacts = root.fork_named("artifacts").next_u64(),
      .cuff = root.fork_named("cuff").next_u64(),
      .fault = root.fork_named("fault-plan").next_u64(),
  };
}

std::shared_ptr<const bio::ScenarioProfile> make_scenario(const std::string& name) {
  if (name == "rest") return nullptr;  // static setpoints
  if (name == "exercise") {
    return std::make_shared<bio::ScenarioProfile>(bio::ScenarioProfile::exercise());
  }
  if (name == "hypotensive") {
    return std::make_shared<bio::ScenarioProfile>(
        bio::ScenarioProfile::hypotensive_episode());
  }
  throw std::invalid_argument{"PatientSession: unknown scenario '" + name + "'"};
}

}  // namespace

std::string to_string(SessionState state) {
  switch (state) {
    case SessionState::kAdmitted: return "admitted";
    case SessionState::kRunning: return "running";
    case SessionState::kPaused: return "paused";
    case SessionState::kDischarged: return "discharged";
    case SessionState::kQuarantined: return "quarantined";
    case SessionState::kRecovering: return "recovering";
    case SessionState::kRetired: return "retired";
  }
  return "unknown";
}

PatientSession::PatientSession(std::uint32_t id, SessionConfig config)
    : id_(id),
      config_(std::move(config)),
      codes_(config_.code_ring_capacity),
      events_(config_.event_ring_capacity) {
  const DerivedSeeds seeds = derive_seeds(config_.seed);
  config_.chip.seed = seeds.chip;
  config_.chip.modulator.seed = seeds.modulator;
  config_.wrist.pulse.seed = seeds.pulse;
  config_.wrist.artifacts.seed = seeds.artifacts;
  config_.wrist.scenario = config_.scenario_profile ? config_.scenario_profile
                                                    : make_scenario(config_.scenario);
  inner_ = std::make_unique<core::BloodPressureMonitor>(config_.chip, config_.wrist);
  field_ = inner_->contact_field();

  // Fault plan: schedule and link-injector seeds both fork from the
  // session's dedicated fault stream, so the plan is a pure function of the
  // session seed — the fleet determinism contract extends to faults.
  Rng fault_root{seeds.fault};
  const std::uint64_t plan_seed = fault_root.fork_named("schedule").next_u64();
  const std::uint64_t link_seed = fault_root.fork_named("link").next_u64();
  plan_ = FaultPlan{config_.fault_plan, plan_seed, config_.chip.array.rows,
                    config_.chip.array.cols};
  for (const auto& e : config_.manual_faults) plan_.add(e);
  throws_left_.reserve(plan_.events().size());
  bool has_contact_loss = false;
  for (const auto& e : plan_.events()) {
    throws_left_.push_back(e.throw_count);
    has_contact_loss |= (e.kind == FaultKind::kContactLoss);
  }
  fired_.assign(plan_.events().size(), 0);
  if (plan_.has_link_bursts()) {
    link_encoder_ = std::make_unique<core::FrameEncoder>();
    link_decoder_ = std::make_unique<core::FrameDecoder>();
    link_injector_ =
        std::make_unique<core::LinkFaultInjector>(plan_.link_config(), link_seed);
  }
  // Only sessions with contact-loss events pay the window scan; everyone
  // else keeps the exact pre-fault-plan field object.
  effective_field_ = field_;
  if (has_contact_loss) {
    effective_field_ = [this](double x, double y, double t) {
      for (const auto& w : contact_loss_windows_) {
        if (t >= w.first && t < w.second) return 0.0;
      }
      return field_(x, y, t);
    };
  }
  faults_injected_metric_ =
      &metrics::Registry::global().counter(metrics::names::kFleetFaultsInjected);
}

PatientSession::~PatientSession() = default;

double PatientSession::output_rate_hz() const noexcept {
  return inner_->pipeline().output_rate_hz();
}

double PatientSession::stream_time_s() const noexcept {
  return static_cast<double>(frames_produced_) / output_rate_hz();
}

std::vector<bio::BeatTruth> PatientSession::drain_beat_truth() {
  return inner_->pulse().drain_truth();
}

void PatientSession::admit() {
  if (admitted_) return;
  auto& pipeline = inner_->pipeline();
  if (config_.localize) {
    (void)core::ScanController{}.scan(pipeline, field_);
  }

  // Cuff-anchored calibration (§3.2), but on the block-mode acquisition
  // path: admission must stay cheap enough to run 64 of them — the scalar
  // path BloodPressureMonitor::calibrate uses re-evaluates the contact
  // field every 128 kHz clock, ~OSR× more field work for the same window.
  bio::CuffConfig cuff_config;
  cuff_config.seed = derive_seeds(config_.seed).cuff;
  bio::OscillometricCuff cuff{cuff_config};
  const auto reading =
      cuff.measure(config_.wrist.pulse.systolic_mmhg, config_.wrist.pulse.diastolic_mmhg,
                   config_.wrist.pulse.heart_rate_bpm);
  if (!reading.valid) {
    throw std::runtime_error{"PatientSession: cuff measurement failed"};
  }

  const auto n =
      static_cast<std::size_t>(config_.calibration_window_s * pipeline.output_rate_hz());
  const auto samples = pipeline.acquire_block(field_, n);
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.value);

  core::BeatDetectorConfig det;
  det.sample_rate_hz = pipeline.output_rate_hz();
  if (config_.enforce_quality) {
    core::QualityConfig qc;
    qc.detector = det;
    const auto quality = core::SignalQualityAssessor{qc}.assess(values);
    if (!quality.usable) {
      throw std::runtime_error{
          "PatientSession: calibration window has no usable pulse signal (SQI " +
          std::to_string(quality.sqi) + ")"};
    }
  }
  calibration_ = core::TwoPointCalibration::from_waveform(
      values, det, reading.systolic_mmhg, reading.diastolic_mmhg);

  make_stream_();
  // Monitoring starts here: fault-plan onsets (stream time) map onto the
  // pipeline clock from this epoch.
  stream_epoch_clock_s_ = pipeline.time_s();
  admitted_ = true;
}

void PatientSession::make_stream_() {
  config_.streaming.sample_rate_hz = inner_->pipeline().output_rate_hz();
  stream_ = std::make_unique<core::StreamingMonitor>(config_.streaming);
  stream_->on_beat([this](const core::Beat& b) {
    publish_event_(FleetEvent{.kind = FleetEventKind::kBeat,
                              .session_id = id_,
                              .time_s = b.peak_s,
                              .value_a = b.systolic_value,
                              .value_b = b.diastolic_value});
  });
  stream_->on_alarm([this](const core::AlarmEvent& a) {
    publish_event_(FleetEvent{.kind = FleetEventKind::kAlarm,
                              .session_id = id_,
                              .alarm_kind = a.kind,
                              .flag = a.active,
                              .time_s = a.time_s,
                              .value_a = a.value});
  });
  stream_->on_quality([this](const core::QualityReport& q, double t_s) {
    publish_event_(FleetEvent{.kind = FleetEventKind::kQuality,
                              .session_id = id_,
                              .flag = q.usable,
                              .time_s = t_s,
                              .value_a = q.sqi});
  });
}

void PatientSession::step(std::size_t frames) {
  if (!admitted_) admit();
  // External ingest (gateway replay): admission above is the whole step —
  // codes arrive via ingest_codes() and advance stream time there.
  if (config_.external_ingest || frames == 0) return;
  apply_due_faults_();
  auto& pipeline = inner_->pipeline();
  const auto samples = pipeline.acquire_block(effective_field_, frames);
  if (config_.code_sink) {
    // Gateway mode: hand the surviving codes to the wire instead of
    // publishing locally; the demux delivers them back via ingest_codes()
    // at the batch barrier. A link-burst plan still corrupts first — the
    // sink sees only what survived the simulated USB hop.
    sink_scratch_.clear();
    if (link_decoder_ == nullptr) {
      sink_scratch_.reserve(samples.size());
      for (const auto& s : samples) {
        sink_scratch_.push_back(static_cast<std::int16_t>(s.code));
      }
    } else {
      link_roundtrip_(samples, sink_scratch_);
    }
    config_.code_sink(id_, sink_scratch_);
  } else if (link_decoder_ == nullptr) {
    for (const auto& s : samples) {
      (void)codes_.push(static_cast<std::int16_t>(s.code), config_.code_policy);
      // The streaming monitor's callbacks fire inside push(): beats and
      // alarms land in the events ring with bounded latency (one hop).
      stream_->push(calibration_.to_mmhg(s.value));
    }
  } else {
    sink_scratch_.clear();
    link_roundtrip_(samples, sink_scratch_);
    const int bits = config_.chip.decimation.output_bits;
    for (const std::int16_t code : sink_scratch_) {
      (void)codes_.push(code, config_.code_policy);
      stream_->push(calibration_.to_mmhg(dequantize_from_bits(code, bits)));
    }
  }
  frames_produced_ += frames;
}

void PatientSession::ingest_codes(std::span<const std::int16_t> codes) {
  if (!admitted_) {
    throw std::runtime_error{
        "PatientSession: ingest_codes before admission (gateway pump must "
        "run after the session's first step)"};
  }
  const int bits = config_.chip.decimation.output_bits;
  for (const std::int16_t code : codes) {
    (void)codes_.push(code, config_.code_policy);
    stream_->push(calibration_.to_mmhg(dequantize_from_bits(code, bits)));
  }
  // Gateway-live sessions advanced stream time in step() when they
  // acquired; only an externally-fed session advances it on delivery.
  if (config_.external_ingest) frames_produced_ += codes.size();
}

void PatientSession::apply_due_faults_() {
  if (array_dead_) {
    throw std::runtime_error{
        "fault-plan: no healthy array element left for readout"};
  }
  const double now_s = stream_time_s();
  const auto& events = plan_.events();
  while (next_fault_ < events.size() && events[next_fault_].at_s <= now_s) {
    const FaultEvent& event = events[next_fault_];
    if (!fired_[next_fault_]) {
      fired_[next_fault_] = 1;
      faults_injected_metric_->add(1);
    }
    if (throws_left_[next_fault_] > 0) {
      // The injected disturbance aborts this step; the scheduler quarantines
      // and (maybe) readmits. Stream time has not advanced, so the event is
      // due again on the next attempt — with one less throw in its budget,
      // which is what lets a transient fault eventually admit the session
      // back while an unrecoverable one strikes it out.
      if (throws_left_[next_fault_] != kUnrecoverableThrows) {
        --throws_left_[next_fault_];
      }
      fault_log_.push_back("injected: " + FaultPlan::describe(event));
      throw std::runtime_error{"fault-plan: " + FaultPlan::describe(event)};
    }
    ++next_fault_;
    fault_log_.push_back("applied: " + FaultPlan::describe(event));
    apply_fault_(event);  // may throw (dead array) — event stays consumed
  }
}

void PatientSession::apply_fault_(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kContactLoss:
      contact_loss_windows_.emplace_back(
          stream_epoch_clock_s_ + event.at_s,
          stream_epoch_clock_s_ + event.at_s + event.duration_s);
      break;
    case FaultKind::kLinkBurst:
      link_burst_windows_.emplace_back(event.at_s, event.at_s + event.duration_s);
      break;
    case FaultKind::kElementFault:
      apply_element_fault_(event);
      break;
  }
}

void PatientSession::apply_element_fault_(const FaultEvent& event) {
  auto& pipeline = inner_->pipeline();
  pipeline.inject_element_fault(event.row, event.col, event.element_fault);
  const auto& array = pipeline.array();
  if (array.element(pipeline.selected_row(), pipeline.selected_col()).is_healthy()) {
    return;  // fault landed off the readout path; array degraded, stream intact
  }
  // Graceful degradation: re-route readout to the first healthy element.
  // select() restarts the mux transient, so the next frames transparently
  // take the pipeline's scalar fallback path until the switch settles.
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      if (!array.element(r, c).is_healthy()) continue;
      pipeline.select(r, c);
      fault_log_.push_back("rerouted readout to healthy element (" +
                           std::to_string(r) + "," + std::to_string(c) + ")");
      return;
    }
  }
  array_dead_ = true;
  throw std::runtime_error{
      "fault-plan: no healthy array element left for readout"};
}

void PatientSession::link_roundtrip_(const std::vector<dsp::DecimatedSample>& samples,
                                     std::vector<std::int16_t>& out) {
  // Round-trip every code through the simulated Fig. 3 USB link. Outside
  // burst windows this is bit-identical to direct publishing: the decimated
  // value is dequantize_from_bits(code, output_bits) by construction, so the
  // decoder-side rebuild reproduces it exactly. Inside a burst the injector
  // corrupts frames and the decoder's CRC/resync accounting drops them —
  // counted losses, never wrong samples.
  const double rate = output_rate_hz();
  std::vector<std::int16_t> chunk;
  std::size_t i = 0;
  while (i < samples.size()) {
    const std::size_t n = std::min(samples.size() - i, core::kMaxSamplesPerFrame);
    chunk.clear();
    for (std::size_t j = 0; j < n; ++j) {
      chunk.push_back(static_cast<std::int16_t>(samples[i + j].code));
    }
    auto wire = link_encoder_->encode(chunk);
    const double chunk_start_s =
        static_cast<double>(frames_produced_ + i) / rate;
    if (link_burst_active_(chunk_start_s)) {
      (void)link_injector_->corrupt(wire);
    }
    for (const auto& frame : link_decoder_->push(wire)) {
      out.insert(out.end(), frame.samples.begin(), frame.samples.end());
    }
    i += n;
  }
}

bool PatientSession::link_burst_active_(double stream_s) const noexcept {
  for (const auto& w : link_burst_windows_) {
    if (stream_s >= w.first && stream_s < w.second) return true;
  }
  return false;
}

void PatientSession::publish_event_(const FleetEvent& event) {
  (void)events_.push(event, config_.event_policy);
}

std::vector<std::uint8_t> PatientSession::checkpoint() const {
  CheckpointWriter out;
  serialize(out);
  return out.finish(kSessionCheckpointVersion);
}

void PatientSession::restore_checkpoint(const std::vector<std::uint8_t>& blob) {
  CheckpointReader in{blob};
  in.require_version(kSessionCheckpointVersion);
  restore(in);
  in.expect_end();
}

void PatientSession::serialize(CheckpointWriter& out) const {
  out.section("patient_session");
  out.u32(id_);
  out.boolean(admitted_);
  // Pipeline, calibration and frame accounting are carried even for a
  // not-yet-admitted session: an admit() that throws midway (cuff failure,
  // quality reject) has already advanced the pipeline through the scan and
  // the calibration block, and resume-equivalence with an in-place retry
  // requires the replacement to pick up from exactly that point. Only the
  // streaming monitor is admission-gated — it does not exist until admit()
  // completes.
  inner_->serialize(out);
  calibration_.serialize(out);
  out.u64(frames_produced_);
  out.f64(stream_epoch_clock_s_);
  if (admitted_) stream_->serialize(out);
  // Fault-plan execution state. The plan itself is a pure function of the
  // session config and seed, so only the cursor and budgets are carried.
  out.boolean(array_dead_);
  out.size(next_fault_);
  out.size(throws_left_.size());
  for (std::size_t budget : throws_left_) out.size(budget);
  for (char f : fired_) out.u8(static_cast<std::uint8_t>(f));
  out.size(fault_log_.size());
  for (const auto& line : fault_log_) out.str(line);
  out.size(contact_loss_windows_.size());
  for (const auto& w : contact_loss_windows_) {
    out.f64(w.first);
    out.f64(w.second);
  }
  out.size(link_burst_windows_.size());
  for (const auto& w : link_burst_windows_) {
    out.f64(w.first);
    out.f64(w.second);
  }
  out.boolean(link_encoder_ != nullptr);
  if (link_encoder_) {
    link_encoder_->serialize(out);
    link_decoder_->serialize(out);
    link_injector_->serialize(out);
  }
  codes_.serialize_accounting(out);
  events_.serialize_accounting(out);
}

void PatientSession::restore(CheckpointReader& in) {
  in.section("patient_session");
  const std::uint32_t id = in.u32();
  if (id != id_) {
    throw CheckpointError{"session checkpoint is for id " + std::to_string(id) +
                          ", not " + std::to_string(id_)};
  }
  const bool was_admitted = in.boolean();
  inner_->restore(in);
  calibration_.restore(in);
  frames_produced_ = in.u64();
  stream_epoch_clock_s_ = in.f64();
  if (was_admitted) {
    make_stream_();
    stream_->restore(in);
    admitted_ = true;
  }
  array_dead_ = in.boolean();
  next_fault_ = in.size();
  if (in.size() != throws_left_.size()) {
    throw CheckpointError{"session checkpoint fault-plan event count mismatch"};
  }
  if (next_fault_ > throws_left_.size()) {
    throw CheckpointError{"session checkpoint fault cursor out of range"};
  }
  for (auto& budget : throws_left_) budget = in.size();
  for (auto& f : fired_) f = static_cast<char>(in.u8());
  fault_log_.resize(in.size());
  for (auto& line : fault_log_) line = in.str();
  contact_loss_windows_.resize(in.size());
  for (auto& w : contact_loss_windows_) {
    w.first = in.f64();
    w.second = in.f64();
  }
  link_burst_windows_.resize(in.size());
  for (auto& w : link_burst_windows_) {
    w.first = in.f64();
    w.second = in.f64();
  }
  if (in.boolean() != (link_encoder_ != nullptr)) {
    throw CheckpointError{"session checkpoint link-path presence mismatch"};
  }
  if (link_encoder_) {
    link_encoder_->restore(in);
    link_decoder_->restore(in);
    link_injector_->restore(in);
  }
  codes_.restore_accounting(in);
  events_.restore_accounting(in);
}

}  // namespace tono::fleet
