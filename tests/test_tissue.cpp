// Tests for the tonometric tissue-coupling model.
#include "src/bio/tissue.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::bio {
namespace {

TEST(TissueCoupling, TransmissionPeaksAtOptimalHoldDown) {
  TissueCoupling tc{TissueConfig{}};
  const double opt = tc.config().optimal_hold_down_mmhg;
  EXPECT_GT(tc.transmission(opt), tc.transmission(opt - 40.0));
  EXPECT_GT(tc.transmission(opt), tc.transmission(opt + 40.0));
  EXPECT_NEAR(tc.transmission(opt), tc.config().peak_transmission, 1e-12);
}

TEST(TissueCoupling, TransmissionBellSymmetric) {
  TissueCoupling tc{TissueConfig{}};
  const double opt = tc.config().optimal_hold_down_mmhg;
  EXPECT_NEAR(tc.transmission(opt - 30.0), tc.transmission(opt + 30.0), 1e-12);
}

TEST(TissueCoupling, DepthAttenuationExponential) {
  TissueConfig shallow;
  shallow.vessel_depth_m = 1e-3;
  TissueConfig deep;
  deep.vessel_depth_m = 5e-3;
  EXPECT_GT(TissueCoupling{shallow}.depth_attenuation(),
            TissueCoupling{deep}.depth_attenuation());
  TissueConfig surface;
  surface.vessel_depth_m = 0.0;
  EXPECT_DOUBLE_EQ(TissueCoupling{surface}.depth_attenuation(), 1.0);
}

TEST(TissueCoupling, LateralAttenuationGaussian) {
  TissueCoupling tc{TissueConfig{}};
  EXPECT_DOUBLE_EQ(tc.lateral_attenuation(0.0), 1.0);
  const double sigma = tc.config().lateral_sigma_m;
  EXPECT_NEAR(tc.lateral_attenuation(sigma), std::exp(-0.5), 1e-12);
  EXPECT_DOUBLE_EQ(tc.lateral_attenuation(2e-3), tc.lateral_attenuation(-2e-3));
}

TEST(TissueCoupling, ContactPressureAtMapEqualsHoldDown) {
  TissueCoupling tc{TissueConfig{}};
  // When arterial pressure equals its mean, only the hold-down remains.
  EXPECT_DOUBLE_EQ(tc.contact_pressure_mmhg(93.0, 93.0, 80.0, 0.0), 80.0);
}

TEST(TissueCoupling, ContactPressureFollowsPulse) {
  TissueCoupling tc{TissueConfig{}};
  const double up = tc.contact_pressure_mmhg(120.0, 93.0, 80.0, 0.0);
  const double down = tc.contact_pressure_mmhg(80.0, 93.0, 80.0, 0.0);
  EXPECT_GT(up, 80.0);
  EXPECT_LT(down, 80.0);
}

TEST(TissueCoupling, PulseGainIsProductOfFactors) {
  TissueCoupling tc{TissueConfig{}};
  const double g = tc.pulse_gain(80.0, 1e-3);
  EXPECT_NEAR(g, tc.transmission(80.0) * tc.depth_attenuation() *
                     tc.lateral_attenuation(1e-3),
              1e-15);
}

TEST(TissueCoupling, PulseGainBelowUnity) {
  TissueCoupling tc{TissueConfig{}};
  for (double hd : {20.0, 60.0, 80.0, 120.0}) {
    EXPECT_LT(tc.pulse_gain(hd, 0.0), 1.0);
    EXPECT_GT(tc.pulse_gain(hd, 0.0), 0.0);
  }
}

TEST(TissueCoupling, GainLinearInArterialPressure) {
  TissueCoupling tc{TissueConfig{}};
  const double map = 90.0;
  const double g = tc.pulse_gain(80.0, 0.0);
  const double c1 = tc.contact_pressure_mmhg(map + 10.0, map, 80.0, 0.0);
  const double c2 = tc.contact_pressure_mmhg(map + 20.0, map, 80.0, 0.0);
  EXPECT_NEAR(c2 - c1, 10.0 * g, 1e-12);
}

TEST(TissueCoupling, RejectsBadConfig) {
  TissueConfig bad;
  bad.attenuation_length_m = 0.0;
  EXPECT_THROW((TissueCoupling{bad}), std::invalid_argument);
  TissueConfig bad2;
  bad2.lateral_sigma_m = 0.0;
  EXPECT_THROW((TissueCoupling{bad2}), std::invalid_argument);
  TissueConfig bad3;
  bad3.peak_transmission = 1.5;
  EXPECT_THROW((TissueCoupling{bad3}), std::invalid_argument);
  TissueConfig bad4;
  bad4.vessel_depth_m = -1.0;
  EXPECT_THROW((TissueCoupling{bad4}), std::invalid_argument);
}

// Property: the applanation sweep (hold-down vs gain) has a single maximum —
// the physiological basis for hold-down optimization.
TEST(TissueCoupling, HoldDownSweepUnimodal) {
  TissueCoupling tc{TissueConfig{}};
  double prev = tc.pulse_gain(0.0, 0.0);
  bool rising = true;
  int direction_changes = 0;
  for (double hd = 5.0; hd <= 200.0; hd += 5.0) {
    const double g = tc.pulse_gain(hd, 0.0);
    const bool now_rising = g > prev;
    if (now_rising != rising) {
      ++direction_changes;
      rising = now_rising;
    }
    prev = g;
  }
  EXPECT_LE(direction_changes, 1);
}

}  // namespace
}  // namespace tono::bio
