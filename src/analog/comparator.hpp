// comparator.hpp — clocked 1-bit quantizer of the ΔΣ loop.
//
// Offset and hysteresis are first-order shaped by the loop (they appear as a
// DC shift / small limit-cycle perturbation rather than distortion), so the
// modulator tolerates millivolt-level values — the model lets tests verify
// exactly that. Metastability is modelled as a random decision inside a
// narrow band around the threshold.
#pragma once

#include <cmath>

#include "src/common/rng.hpp"

namespace tono::analog {

struct ComparatorConfig {
  double offset_v{0.0};
  double hysteresis_v{0.0};        ///< full width of the hysteresis band
  double metastable_band_v{10e-6}; ///< |input| below this → random decision
  double noise_vrms{50e-6};        ///< input-referred rms noise
};

class Comparator {
 public:
  Comparator(const ComparatorConfig& config, Rng rng) noexcept
      : config_(config), rng_(rng) {}

  /// Clocked decision: returns +1 or −1. Inline: one call per modulator
  /// clock, and the noise draw benefits from inlining into the loop.
  [[nodiscard]] int decide(double input_v) noexcept {
    double v = input_v - config_.offset_v;
    if (config_.noise_vrms > 0.0) v += rng_.gaussian(0.0, config_.noise_vrms);
    // Hysteresis: the threshold leans toward keeping the previous decision.
    v -= 0.5 * config_.hysteresis_v * static_cast<double>(-last_);
    if (std::abs(v) < config_.metastable_band_v) {
      last_ = rng_.bernoulli(0.5) ? 1 : -1;
      return last_;
    }
    last_ = v >= 0.0 ? 1 : -1;
    return last_;
  }

  [[nodiscard]] int last_decision() const noexcept { return last_; }
  [[nodiscard]] const ComparatorConfig& config() const noexcept { return config_; }

 private:
  ComparatorConfig config_;
  Rng rng_;
  int last_{1};
};

}  // namespace tono::analog
