file(REMOVE_RECURSE
  "CMakeFiles/test_tissue.dir/test_tissue.cpp.o"
  "CMakeFiles/test_tissue.dir/test_tissue.cpp.o.d"
  "test_tissue"
  "test_tissue.pdb"
  "test_tissue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tissue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
