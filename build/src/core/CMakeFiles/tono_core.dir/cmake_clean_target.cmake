file(REMOVE_RECURSE
  "libtono_core.a"
)
