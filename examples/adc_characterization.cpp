// adc_characterization — using the differential voltage test interface.
//
// §3: "The ΔΣ-modulator additionally has a differential voltage interface,
// so a full characterization of the analog to digital conversion of this
// circuit can be accomplished, independent of the connected transducer."
//
// The example sweeps the input amplitude, prints the SNR/SNDR staircase and
// locates the converter's dynamic range — the standard ADC bring-up ritual.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "src/analog/modulator.hpp"
#include "src/dsp/decimation.hpp"
#include "src/dsp/spectrum.hpp"

namespace {

tono::dsp::SpectrumAnalysis measure(double amp_dbfs) {
  using namespace tono;
  analog::ModulatorConfig mc;   // paper configuration
  dsp::DecimationConfig dc;     // SINC³ + FIR, OSR 128, 12 bit
  analog::DeltaSigmaModulator mod{mc};
  dsp::DecimationChain chain{dc};

  const std::size_t n_out = 4096;
  const double f = dsp::coherent_frequency(15.625, 1000.0, n_out);
  const double amp = std::pow(10.0, amp_dbfs / 20.0);
  const auto bits = mod.run_voltage(
      [&](double t) {
        return amp * mc.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
      },
      (n_out + 300) * 128);
  std::vector<int> ints(bits.begin(), bits.end());
  const auto vals = chain.process_values(ints);
  std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
  dsp::SpectrumConfig sc;
  sc.sample_rate_hz = 1000.0;
  return dsp::analyze_tone(rec, sc);
}

}  // namespace

int main() {
  std::puts("ΔΣ ADC characterization via the differential voltage interface");
  std::puts("(fs = 128 kHz, OSR = 128, 12-bit SINC³+FIR decimation)\n");

  std::printf("%-12s %-12s %-10s %-10s %-10s\n", "input dBFS", "meas dBFS", "SNR dB",
              "SNDR dB", "ENOB bit");
  double peak_snr = 0.0;
  double dynamic_range_dbfs = 0.0;
  for (double level = -60.0; level <= -1.0; level += level < -12.0 ? 12.0 : 2.0) {
    const auto a = measure(level);
    std::printf("%-12.1f %-12.2f %-10.2f %-10.2f %-10.2f\n", level, a.fundamental_dbfs,
                a.snr_db, a.sndr_db, a.enob_bits);
    if (a.snr_db > peak_snr) peak_snr = a.snr_db;
    if (a.snr_db > 0.0 && level < dynamic_range_dbfs) dynamic_range_dbfs = level;
  }

  std::printf("\npeak SNR: %.1f dB (paper: better than 72 dB)\n", peak_snr);
  std::printf("SNR stays positive down to at least %.0f dBFS of input.\n",
              dynamic_range_dbfs);
  std::puts("SNR climbs ~1 dB per dB of input: the converter is noise-floor");
  std::puts("limited (12-bit output word + kT/C), not distortion limited.");
  return 0;
}
