// Cross-module randomized property tests: invariants that must hold for
// arbitrary (seeded) inputs, connecting modules that unit tests cover only
// in isolation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/analog/modulator.hpp"
#include "src/common/rng.hpp"
#include "src/core/calibration.hpp"
#include "src/core/telemetry.hpp"
#include "src/dsp/fft.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/fir_filter.hpp"
#include "src/dsp/goertzel.hpp"
#include "src/mems/plate.hpp"

namespace tono {
namespace {

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyTest, FirConvolutionTheorem) {
  // Steady-state FIR response to a tone equals |H(f)| × input amplitude.
  Rng rng{GetParam()};
  const double fs = 4000.0;
  const auto h = dsp::design_lowpass(32, rng.uniform(200.0, 1500.0), fs);
  const std::size_t n = 4000;
  const double f = fs * std::floor(rng.uniform(5.0, 400.0)) / n;
  const double amp = rng.uniform(0.1, 2.0);
  dsp::FirFilter fir{h};
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = amp * std::sin(2.0 * std::numbers::pi * f * i / fs);
    if (auto v = fir.push(x)) y.push_back(*v);
  }
  // Measure on the second half (past the transient) over whole cycles.
  std::vector<double> tail(y.begin() + n / 2, y.end());
  const double measured = dsp::goertzel_amplitude(tail, f, fs);
  const double expected = amp * dsp::fir_magnitude_at(h, f, fs);
  EXPECT_NEAR(measured, expected, 0.02 * amp + 1e-6);
}

TEST_P(PropertyTest, CalibrationAffineRoundTrip) {
  Rng rng{GetParam() ^ 0xABCD};
  const double v_sys = rng.uniform(0.1, 0.9);
  const double v_dia = v_sys - rng.uniform(0.05, 0.5);
  const double dia = rng.uniform(50.0, 100.0);
  const double sys = dia + rng.uniform(20.0, 80.0);
  const core::TwoPointCalibration cal{v_sys, v_dia, sys, dia};
  for (int i = 0; i < 20; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    EXPECT_NEAR(cal.to_value(cal.to_mmhg(v)), v, 1e-9);
  }
  EXPECT_NEAR(cal.to_mmhg(v_sys), sys, 1e-9);
  EXPECT_NEAR(cal.to_mmhg(v_dia), dia, 1e-9);
}

TEST_P(PropertyTest, PlateInverseAndMonotone) {
  Rng rng{GetParam() ^ 0x1234};
  mems::PlateGeometry g;
  g.side_length_m = rng.uniform(50e-6, 300e-6);
  const mems::SquarePlate plate{g};
  double prev_w = -1e9;
  for (double p = 100.0; p < 2e5; p *= 2.3) {
    const double w = plate.center_deflection(p);
    EXPECT_GT(w, prev_w);
    prev_w = w;
    EXPECT_NEAR(plate.pressure_for_deflection(w), p, 1e-6 * p);
  }
}

TEST_P(PropertyTest, TelemetryRandomPayloadRoundTrip) {
  Rng rng{GetParam() ^ 0x5555};
  core::FrameEncoder enc;
  core::FrameDecoder dec;
  for (int frame = 0; frame < 10; ++frame) {
    const std::size_t n = 1 + rng.uniform_below(core::kMaxSamplesPerFrame);
    std::vector<std::int16_t> samples(n);
    for (auto& s : samples) {
      s = static_cast<std::int16_t>(static_cast<long>(rng.uniform_below(4096)) - 2048);
    }
    const auto frames = dec.push(enc.encode(samples));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].samples, samples);
  }
  EXPECT_EQ(dec.stats().crc_errors, 0u);
}

TEST_P(PropertyTest, ModulatorTimeInvariance) {
  // Ideal (noise-free) loop: prepending silence delays the output bits.
  analog::ModulatorConfig cfg;
  cfg.enable_ktc_noise = false;
  cfg.enable_settling = false;
  cfg.clock_jitter_rms_s = 0.0;
  cfg.ref_noise_vrms = 0.0;
  cfg.cap_mismatch_sigma = 0.0;
  cfg.opamp1.noise_vrms = 0.0;
  cfg.opamp2.noise_vrms = 0.0;
  cfg.comparator.noise_vrms = 0.0;
  cfg.comparator.metastable_band_v = 0.0;

  Rng rng{GetParam() ^ 0x9999};
  std::vector<double> input(3000);
  for (auto& v : input) v = rng.uniform(-0.5, 0.5) * 2.5;

  analog::DeltaSigmaModulator a{cfg};
  std::vector<int> direct;
  for (double v : input) direct.push_back(a.step_voltage(v));

  analog::DeltaSigmaModulator b{cfg};
  const int kDelay = 64;
  std::vector<int> delayed;
  // The loop must be idling identically before the signal starts: drive the
  // delay period with zeros and compare the *difference* bitstreams. For a
  // strictly deterministic loop, y_b[n + kDelay] == y_a[n] requires the
  // internal state at signal start to match, which zero-input idling of the
  // same length guarantees only if the idle pattern is periodic with the
  // delay. Instead of asserting bit equality, check that the decoded DC of
  // both runs agrees (time-invariance at the signal level).
  for (int i = 0; i < kDelay; ++i) (void)b.step_voltage(0.0);
  for (double v : input) delayed.push_back(b.step_voltage(v));
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 1000; i < direct.size(); ++i) {
    mean_a += direct[i];
    mean_b += delayed[i];
  }
  EXPECT_NEAR(mean_a / 2000.0, mean_b / 2000.0, 0.02);
}

TEST_P(PropertyTest, FftShiftTheoremMagnitude) {
  // |FFT| is invariant under circular shift.
  Rng rng{GetParam() ^ 0x7777};
  const std::size_t n = 256;
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian();
  std::vector<double> shifted(n);
  const std::size_t k = 1 + rng.uniform_below(n - 1);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = x[(i + k) % n];
  const auto ma = dsp::magnitude_spectrum(x);
  const auto mb = dsp::magnitude_spectrum(shifted);
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_NEAR(ma[i], mb[i], 1e-9 * (1.0 + ma[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace tono
