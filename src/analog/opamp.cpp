#include "src/analog/opamp.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tono::analog {

OpAmp::OpAmp(const OpAmpConfig& config) : config_(config) {
  if (config_.dc_gain <= 1.0) throw std::invalid_argument{"OpAmp: dc_gain must be > 1"};
  if (config_.gbw_hz <= 0.0) throw std::invalid_argument{"OpAmp: gbw must be > 0"};
  if (config_.slew_rate_v_per_s <= 0.0) throw std::invalid_argument{"OpAmp: slew must be > 0"};
  if (config_.feedback_factor <= 0.0 || config_.feedback_factor > 1.0) {
    throw std::invalid_argument{"OpAmp: feedback factor must be in (0, 1]"};
  }
  tau_s_ = 1.0 / (2.0 * std::numbers::pi * config_.feedback_factor * config_.gbw_hz);
  leak_factor_ = 1.0 - 1.0 / (config_.dc_gain * config_.feedback_factor);
  handoff_v_ = config_.slew_rate_v_per_s * tau_s_;
  // Thresholds for the exact fast paths in settle(). 38τ: e⁻³⁸ ≈ 3.1e−17 is
  // below 2⁻⁵⁴, so 1 − exp rounds to exactly 1.0. 800τ: e⁻⁸⁰⁰ is far below
  // the smallest subnormal, so exp returns exactly +0.0.
  linear_exact_dt_s_ = 38.0 * tau_s_;
  zero_exp_dt_s_ = 800.0 * tau_s_;
}

double OpAmp::settle(double delta_v, double dt) const noexcept {
  if (delta_v == 0.0 || dt <= 0.0) return 0.0;
  const double magnitude = std::abs(delta_v);
  const double sign = delta_v > 0.0 ? 1.0 : -1.0;
  const double sr = config_.slew_rate_v_per_s;
  // Initial error rate under linear settling would be magnitude / tau; if
  // that exceeds SR the amplifier slews first, then settles exponentially
  // from the hand-off point (standard two-regime model).
  const double linear_rate = magnitude / tau_s_;
  if (linear_rate <= sr) {
    // Fast path: 1 − exp(−dt/τ) is exactly 1.0 here, so the step settles
    // completely — bit-identical to evaluating the exponential.
    if (dt >= linear_exact_dt_s_) return sign * magnitude;
    return sign * magnitude * (1.0 - std::exp(-dt / tau_s_));
  }
  // Slewing until remaining error = SR·tau, then exponential.
  const double handoff_error = handoff_v_;
  const double slew_time = (magnitude - handoff_error) / sr;
  if (slew_time >= dt) {
    return sign * sr * dt;  // ran out of time while slewing
  }
  const double remaining_dt = dt - slew_time;
  // Fast path: exp(−remaining/τ) is exactly +0.0, so the settled value is
  // exactly the full magnitude.
  if (remaining_dt >= zero_exp_dt_s_) return sign * magnitude;
  const double settled =
      magnitude - handoff_error * std::exp(-remaining_dt / tau_s_);
  return sign * settled;
}

double OpAmp::full_settle_threshold(double dt) const noexcept {
  // For |delta_v| = m ≤ the returned bound T(dt) = handoff + SR·(dt − 40τ):
  //  * linear regime (m ≤ handoff = SR·τ): dt ≥ 40τ > 38τ, so settle()'s
  //    existing fast path returns sign·m == delta_v exactly;
  //  * slew regime (handoff < m ≤ T): slew_time = (m − handoff)/SR ≤
  //    dt − 40τ < dt, and the remaining settling time r ≥ 40τ (minus a few
  //    ulps of threshold arithmetic, hence the 40τ margin over the 38τ
  //    proof bound), so the residual handoff·exp(−r/τ) ≤ handoff·e⁻³⁹ <
  //    m·2⁻⁵⁴ < half the gap below m in doubles — m − residual rounds to
  //    exactly m, and settle() returns sign·m == delta_v even though it
  //    evaluates the exponential.
  // Either way settle(delta_v, dt) == delta_v for 0 < |delta_v| ≤ T(dt).
  const double margin = 40.0 * tau_s_;
  if (dt < margin) return 0.0;
  return handoff_v_ + config_.slew_rate_v_per_s * (dt - margin);
}

double OpAmp::clip(double v) const noexcept {
  return std::clamp(v, -config_.output_swing_v, config_.output_swing_v);
}

}  // namespace tono::analog
