#include "src/core/sweep_runner.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace tono::core {

SweepRunner::SweepRunner(SweepConfig config) : config_(std::move(config)) {
  if (config_.threads != 1) pool_ = std::make_unique<ThreadPool>(config_.threads);
  auto& reg = metrics::Registry::global();
  runs_metric_ = &reg.counter(metrics::names::kSweepRuns);
  trials_metric_ = &reg.counter(metrics::names::kSweepTrials);
  static constexpr double kStrandBounds[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
                                             64.0, 128.0, 256.0, 1024.0};
  trials_per_strand_ = &reg.histogram(metrics::names::kSweepTrialsPerStrand, kStrandBounds);
  run_wall_ = &reg.timer(metrics::names::kSweepRunWall);
  threads_gauge_ = &reg.gauge(metrics::names::kSweepThreads);
}

Rng SweepRunner::trial_rng(std::size_t trial_index) const {
  // Re-derived from scratch on every call: the chain touches no shared
  // mutable state, so concurrent calls from different workers are safe and
  // the stream depends only on (base_seed, stream_name, trial_index).
  return Rng{config_.base_seed}
      .fork_named(config_.stream_name)
      .fork(static_cast<std::uint64_t>(trial_index));
}

std::uint64_t SweepRunner::trial_seed(std::size_t trial_index) const {
  return trial_rng(trial_index).next_u64();
}

void SweepRunner::run_indexed_(std::size_t n,
                               const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  runs_metric_->add(1);
  trials_metric_->add(n);
  threads_gauge_->set(static_cast<double>(thread_count()));
  metrics::TraceSpan span{*run_wall_};
  std::vector<std::exception_ptr> errors(n);
  const std::size_t strands = std::min(thread_count(), n);
  if (strands <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    trials_per_strand_->observe(static_cast<double>(n));
  } else {
    // One strand per worker; each pulls the next unclaimed trial index. The
    // claim order is nondeterministic but harmless: trial i's randomness and
    // result slot depend only on i.
    std::atomic<std::size_t> next{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t live = strands;
    for (std::size_t s = 0; s < strands; ++s) {
      pool_->submit([&] {
        std::size_t claimed = 0;
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          ++claimed;
          try {
            body(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
        trials_per_strand_->observe(static_cast<double>(claimed));
        std::lock_guard lock{done_mutex};
        if (--live == 0) done_cv.notify_all();
      });
    }
    std::unique_lock lock{done_mutex};
    done_cv.wait(lock, [&] { return live == 0; });
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace tono::core
