// scenario.hpp — time-varying physiological scenarios.
//
// The paper's §1 motivation is that cuffs "are only able to accomplish
// single measurements" and so cannot record a blood-pressure *waveform* —
// or a fast trend. A scenario drives the pulse generator's setpoints over
// time (exercise ramps, hypotensive episodes, recovery), producing the
// dynamics that only a continuous sensor can follow.
#pragma once

#include <string>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/interpolation.hpp"

namespace tono::bio {

/// One setpoint keyframe; values are interpolated linearly between frames.
struct ScenarioKeyframe {
  double time_s{0.0};
  double systolic_mmhg{120.0};
  double diastolic_mmhg{80.0};
  double heart_rate_bpm{72.0};
};

class ScenarioProfile {
 public:
  /// Keyframes must be in strictly increasing time order, with >= 2 frames.
  explicit ScenarioProfile(std::vector<ScenarioKeyframe> keyframes,
                           std::string name = "scenario");

  /// Interpolated targets at a given time (clamped at the ends).
  [[nodiscard]] ScenarioKeyframe at(double t_s) const;

  /// Pushes the targets for time t into a generator.
  void apply(ArterialPulseGenerator& generator, double t_s) const;

  [[nodiscard]] double duration_s() const noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Preset: rest → exercise ramp (HR 72→130, BP 120/80→165/95) → recovery.
  [[nodiscard]] static ScenarioProfile exercise(double total_s = 180.0);
  /// Preset: stable, then a fast hypotensive episode and partial recovery
  /// (the intensive-care event a cuff cycle would miss, cf. ref. [2]).
  [[nodiscard]] static ScenarioProfile hypotensive_episode(double total_s = 120.0);

 private:
  struct Columns;  // keyframes split into per-quantity knot vectors
  ScenarioProfile(const Columns& columns, std::string name);

  std::string name_;
  LinearInterpolator sys_;
  LinearInterpolator dia_;
  LinearInterpolator hr_;
  double t_min_;
  double t_max_;
};

}  // namespace tono::bio
