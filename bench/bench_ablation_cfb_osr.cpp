// E6 / §4 — design-knob ablations: feedback capacitor and conversion rate.
//
// Paper (§4 future work): "an improvement of the resolution during blood
// pressure measurements … can be achieved by adjusting the feedback
// capacitors of the first modulator stage. Also an increased conversion rate
// would be desirable."
//
// Part 1 sweeps C_fb1: smaller C_fb shrinks the ΔC full scale onto the
// actual tonometric signal swing, trading overload margin for pressure
// resolution — until kT/C noise floors the gain.
// Part 2 sweeps OSR at fixed 128 kHz clock: higher conversion rate costs SNR
// at ≈ 15 dB per octave (2nd-order law).
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/statistics.hpp"
#include "src/common/units.hpp"
#include "src/core/monitor.hpp"

namespace {

using namespace tono;

void run() {
  bench::print_header("E6 / §4", "Ablations: feedback capacitor (resolution) and OSR (rate)");

  // ---- Part 1: C_fb sweep on the blood-pressure pipeline.
  TextTable ft{"First-stage feedback capacitor vs pressure resolution"};
  ft.set_header({"C_fb [fF]", "dC full scale [fF]", "pulse amplitude [%FS]",
                 "hf noise [mmHg rms]", "MAP error [mmHg]"});
  SeriesWriter fs{"ablation_cfb_noise", "cfb_ff", "hf_noise_mmhg"};
  for (double cfb_ff : {50.0, 25.0, 10.0, 5.0, 2.0}) {
    auto chip = core::ChipConfig::paper_chip();
    chip.modulator.c_fb1_f = cfb_ff * 1e-15;
    core::BloodPressureMonitor mon{chip, core::WristModel{}};
    // The coarse ranges are the point of the ablation: bypass the quality
    // gate that would (correctly) reject them.
    (void)mon.calibrate(10.0, bio::CuffConfig{}, /*enforce_quality=*/false);
    const auto rep = mon.monitor(15.0);
    // High-frequency residual on the calibrated waveform = resolution proxy.
    std::vector<double> diff;
    for (std::size_t i = 1; i < rep.waveform_mmhg.size(); ++i) {
      diff.push_back(rep.waveform_mmhg[i] - rep.waveform_mmhg[i - 1]);
    }
    const double hf_noise = stddev(diff) / std::sqrt(2.0);
    // Pulse amplitude in raw full-scale units.
    const double gain = mon.calibration().gain_mmhg_per_unit();
    const double pulse_fs =
        (rep.beats.mean_systolic - rep.beats.mean_diastolic) / gain * 100.0;
    ft.add_row({format_double(cfb_ff, 0),
                format_double(units::f_to_ff(chip.modulator.c_fb1_f) *
                                  chip.modulator.vref_v / chip.modulator.vexc_v,
                              1),
                format_double(pulse_fs, 2), format_double(hf_noise, 3),
                format_double(rep.map_error_mmhg, 2)});
    fs.add(cfb_ff, hf_noise);
  }
  ft.print(std::cout);
  fs.write_csv(std::cout);
  std::cout << "-> shrinking C_fb magnifies the pressure signal (the paper's §4\n"
               "   resolution knob); the gain flattens once kT/C noise dominates.\n";

  // ---- Part 2: OSR sweep on the voltage-mode converter.
  TextTable ot{"Conversion rate vs SNR at 128 kHz modulator clock"};
  ot.set_header({"OSR", "rate [S/s]", "SNR [dB]", "ENOB [bit]"});
  SeriesWriter os{"ablation_osr_snr", "osr", "snr_db"};
  for (std::size_t osr : {32u, 64u, 128u, 256u, 512u}) {
    analog::ModulatorConfig mc;
    dsp::DecimationConfig dc;
    dc.total_decimation = osr;
    dc.cic_decimation = std::min<std::size_t>(osr, 32u);
    const double rate = 128000.0 / static_cast<double>(osr);
    dc.cutoff_hz = rate / 2.0;
    const auto r = bench::run_tone_test(mc, dc, 0.875, rate / 64.0, 4096);
    ot.add_row({format_double(static_cast<double>(osr), 0), format_double(rate, 0),
                format_double(r.analysis.snr_db, 1),
                format_double(r.analysis.enob_bits, 2)});
    os.add(static_cast<double>(osr), r.analysis.snr_db);
  }
  ot.print(std::cout);
  os.write_csv(std::cout);
  std::cout << "-> each OSR halving buys 4x conversion rate for ~15 dB of SNR\n"
               "   (until the 12-bit output word caps the top end) — the §4\n"
               "   rate/resolution trade-off.\n";
}

}  // namespace

int main() {
  run();
  return 0;
}
