// streaming_monitor.hpp — online (push-based) monitoring with alarms.
//
// The batch BloodPressureMonitor answers "what happened in this window";
// a bedside instrument needs the push form: samples arrive one at a time,
// beats and limit violations must surface with bounded latency (the E10
// experiment shows why — a hypotensive crash gives seconds, not a cuff
// cycle). StreamingMonitor wraps the beat detector in a sliding window,
// de-duplicates beats across window hops, evaluates alarm limits with
// N-beat confirmation and latching, and reports signal quality per window.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/core/beat_detection.hpp"
#include "src/core/quality.hpp"

namespace tono {
class CheckpointReader;
class CheckpointWriter;
}  // namespace tono

namespace tono::core {

enum class AlarmKind {
  kSystolicLow,
  kSystolicHigh,
  kDiastolicLow,
  kDiastolicHigh,
  kRateLow,
  kRateHigh,
};

[[nodiscard]] std::string to_string(AlarmKind kind);

struct AlarmLimits {
  double systolic_low_mmhg{90.0};
  double systolic_high_mmhg{160.0};
  double diastolic_low_mmhg{50.0};
  double diastolic_high_mmhg{100.0};
  double rate_low_bpm{45.0};
  double rate_high_bpm{130.0};
  /// Consecutive violating beats required to raise (and clear) an alarm —
  /// the standard artefact guard of clinical monitors.
  std::size_t confirm_beats{3};
};

struct AlarmEvent {
  AlarmKind kind{AlarmKind::kSystolicLow};
  bool active{true};   ///< raised (true) or cleared (false)
  double time_s{0.0};
  double value{0.0};   ///< the measurement that confirmed the transition
};

struct StreamingConfig {
  double sample_rate_hz{1000.0};
  /// Detection runs on a trailing window of this length…
  double window_s{8.0};
  /// …re-evaluated every hop.
  double hop_s{2.0};
  BeatDetectorConfig detector{};
  QualityConfig quality{};
  AlarmLimits limits{};
  /// Alarms and beats are suppressed while the window is unusable.
  bool gate_on_quality{true};
};

class StreamingMonitor {
 public:
  using BeatCallback = std::function<void(const Beat&)>;
  using AlarmCallback = std::function<void(const AlarmEvent&)>;
  using QualityCallback = std::function<void(const QualityReport&, double time_s)>;

  explicit StreamingMonitor(const StreamingConfig& config);

  void on_beat(BeatCallback cb) { beat_cb_ = std::move(cb); }
  void on_alarm(AlarmCallback cb) { alarm_cb_ = std::move(cb); }
  void on_quality(QualityCallback cb) { quality_cb_ = std::move(cb); }

  /// Feeds one calibrated sample (mmHg). Triggers callbacks as windows
  /// complete.
  void push(double mmhg);

  /// Convenience batch feed.
  void push(const std::vector<double>& mmhg);

  [[nodiscard]] double time_s() const noexcept { return time_s_; }
  [[nodiscard]] std::size_t beats_emitted() const noexcept { return beats_emitted_; }
  [[nodiscard]] bool alarm_active(AlarmKind kind) const;
  [[nodiscard]] const StreamingConfig& config() const noexcept { return config_; }

  /// Checkpointing: the trailing sample window, hop/beat/clock state and
  /// every alarm's confirmation state. Callbacks are not serialized — the
  /// owner re-registers them on the restored instance.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  void process_window();
  void evaluate_alarms(const Beat& beat, double rate_bpm);
  void check_limit(AlarmKind kind, double value, double low, double high, double time_s);

  StreamingConfig config_;
  BeatCallback beat_cb_;
  AlarmCallback alarm_cb_;
  QualityCallback quality_cb_;

  std::vector<double> buffer_;       // trailing window
  std::size_t window_samples_;
  std::size_t hop_samples_;
  std::size_t since_hop_{0};
  double time_s_{0.0};
  double buffer_start_s_{0.0};
  double last_emitted_beat_s_{-1.0};
  std::size_t beats_emitted_{0};
  double last_rate_bpm_{0.0};

  struct AlarmState {
    std::size_t violations{0};
    std::size_t recoveries{0};
    bool active{false};
    /// Time of the first beat in the current violation run; the raise
    /// latency (alarm time − first violating beat) is published as a gauge.
    double first_violation_s{0.0};
  };
  std::vector<AlarmState> alarm_states_;  // indexed by AlarmKind

  // Observability (resolved once at construction; beat-rate updates).
  metrics::Counter* alarms_raised_metric_;
  metrics::Gauge* alarm_latency_gauge_;
};

}  // namespace tono::core
