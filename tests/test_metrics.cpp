// Tests for the runtime observability layer (src/common/metrics.*): the
// instrument primitives, the registry contract (stable addresses, global
// enable switch, exporters) and the hot-path guarantee that instrumentation
// never perturbs the signal path (bit-exactness regression).
#include "src/common/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/sweep_runner.hpp"

namespace tono::metrics {
namespace {

// The process-wide enable flag defaults to on; every test that flips it must
// restore it, or later tests silently record nothing.
class EnabledGuard {
 public:
  EnabledGuard() : was_(enabled()) {}
  ~EnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetOverwritesRecordMaxKeepsPeak) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
  g.record_max(2.0);
  g.record_max(1.0);  // lower: must not regress the peak
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Histogram, BucketAssignmentAndOverflow) {
  const std::array<double, 3> bounds{1.0, 2.0, 4.0};
  Histogram h{bounds};
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (upper bound is inclusive)
  h.observe(3.0);   // bucket 2
  h.observe(100.0); // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(Timer, StatsAndEmptyMin) {
  Timer t;
  EXPECT_EQ(t.min_ns(), 0u) << "empty timer must not report UINT64_MAX";
  t.record_ns(100);
  t.record_ns(300);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_EQ(t.total_ns(), 400u);
  EXPECT_EQ(t.min_ns(), 100u);
  EXPECT_EQ(t.max_ns(), 300u);
  EXPECT_DOUBLE_EQ(t.mean_ns(), 200.0);
}

TEST(TraceSpan, RecordsOnceEvenWithExplicitStop) {
  Timer t;
  {
    TraceSpan span{t};
    span.stop();
    // Destructor must not record a second observation.
  }
  EXPECT_EQ(t.count(), 1u);
}

TEST(Registry, GetOrCreateReturnsStableAddresses) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("y.count");
  EXPECT_NE(&a, &c);
  const std::array<double, 2> bounds{1.0, 2.0};
  Histogram& h1 = reg.histogram("x.hist", bounds);
  const std::array<double, 3> other{9.0, 10.0, 11.0};
  Histogram& h2 = reg.histogram("x.hist", other);  // bounds fixed on first call
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Registry, DisabledSuppressesEveryUpdate) {
  EnabledGuard guard;
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  const std::array<double, 1> bounds{1.0};
  Histogram& h = reg.histogram("h", bounds);
  Timer& t = reg.timer("t");
  set_enabled(false);
  c.add(5);
  g.set(1.0);
  g.record_max(2.0);
  h.observe(0.5);
  t.record_ns(10);
  { TraceSpan span{t}; }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(t.count(), 0u);
  set_enabled(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("c");
  c.add(7);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("c"), &c);
}

// Minimal structural JSON check: balanced braces/brackets outside strings,
// one object per line. Full parsing is out of scope for a C++ test without a
// JSON dependency; the jq-level check lives in CI.
bool looks_like_json_object(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
    } else if (ch == '"') {
      in_string = true;
    } else if (ch == '{' || ch == '[') {
      ++depth;
    } else if (ch == '}' || ch == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Registry, JsonlExportIsOneParseableObjectPerLine) {
  Registry reg;
  reg.counter("a.count").add(3);
  reg.gauge("a.gauge").set(1.25);
  const std::array<double, 2> bounds{1.0, 8.0};
  reg.histogram("a.hist", bounds).observe(2.0);
  reg.timer("a.timer").record_ns(500);
  reg.gauge("b.nonfinite").set(std::nan(""));  // must export as null, not NaN

  std::ostringstream os;
  reg.export_jsonl(os);
  std::istringstream is{os.str()};
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(looks_like_json_object(line)) << line;
    EXPECT_NE(line.find("\"name\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"type\""), std::string::npos) << line;
    EXPECT_EQ(line.find("nan"), std::string::npos) << "non-finite leaked: " << line;
  }
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(os.str().find("\"le\":\"inf\""), std::string::npos)
      << "histogram overflow bucket missing";
}

TEST(Registry, TableExportListsEveryInstrument) {
  Registry reg;
  reg.counter("rows.counter").add(1);
  reg.timer("rows.timer").record_ns(42);
  std::ostringstream os;
  reg.export_table(os);
  EXPECT_NE(os.str().find("rows.counter"), std::string::npos);
  EXPECT_NE(os.str().find("rows.timer"), std::string::npos);
}

TEST(Registry, StandardInstrumentsCoverEverySubsystem) {
  Registry reg;
  register_standard_instruments(reg);
  register_standard_instruments(reg);  // idempotent
  std::ostringstream os;
  reg.export_jsonl(os);
  const std::string out = os.str();
  for (const char* prefix : {"pipeline.", "modulator.", "decimation.", "sweep.",
                             "threadpool.", "telemetry.", "monitor."}) {
    EXPECT_NE(out.find(prefix), std::string::npos) << "subsystem missing: " << prefix;
  }
}

TEST(Metrics, ConcurrentCounterUpdatesLoseNothing) {
  Registry reg;
  Counter& c = reg.counter("contended");
  Gauge& g = reg.gauge("contended.max");
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&c, &g, tid] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        c.add(1);
        g.record_max(static_cast<double>(tid * kAddsPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kAddsPerThread - 1));
}

// --- Instrumentation-point tests (global registry; measured as deltas
// because other tests in this binary touch the same process-wide counters).

TEST(MetricsWiring, ThreadPoolCountsSubmittedAndExecuted) {
  auto& reg = Registry::global();
  const auto submitted0 = reg.counter(names::kPoolTasksSubmitted).value();
  const auto executed0 = reg.counter(names::kPoolTasksExecuted).value();
  std::atomic<int> ran{0};
  {
    ThreadPool pool{3};
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(reg.counter(names::kPoolTasksSubmitted).value() - submitted0, 50u);
  EXPECT_EQ(reg.counter(names::kPoolTasksExecuted).value() - executed0, 50u);
}

TEST(MetricsWiring, SweepRunnerCountsRunsAndTrials) {
  auto& reg = Registry::global();
  const auto runs0 = reg.counter(names::kSweepRuns).value();
  const auto trials0 = reg.counter(names::kSweepTrials).value();
  const auto wall0 = reg.timer(names::kSweepRunWall).count();
  core::SweepConfig cfg;
  cfg.threads = 2;
  core::SweepRunner runner{cfg};
  const auto out = runner.run(24, [](std::size_t i) { return static_cast<int>(i) * 2; });
  ASSERT_EQ(out.size(), 24u);
  EXPECT_EQ(reg.counter(names::kSweepRuns).value() - runs0, 1u);
  EXPECT_EQ(reg.counter(names::kSweepTrials).value() - trials0, 24u);
  EXPECT_EQ(reg.timer(names::kSweepRunWall).count() - wall0, 1u);
}

TEST(MetricsWiring, PipelineCountsFramesAtOutputRate) {
  auto& reg = Registry::global();
  const auto frames0 = reg.counter(names::kPipelineFrames).value();
  const auto dec0 = reg.counter(names::kDecimationSamples).value();
  core::AcquisitionPipeline pipeline{core::ChipConfig::paper_chip()};
  constexpr std::size_t kFrames = 16;
  const auto samples =
      pipeline.acquire_uniform([](double) { return 2000.0; }, kFrames);
  ASSERT_EQ(samples.size(), kFrames);
  EXPECT_EQ(reg.counter(names::kPipelineFrames).value() - frames0, kFrames);
  EXPECT_EQ(reg.counter(names::kDecimationSamples).value() - dec0, kFrames);
}

// The hot-path contract: enabling or disabling recording must not change a
// single output bit. Any instrumentation that feeds back into the signal
// path (reordered float math, extra state) fails this.
TEST(MetricsWiring, BitstreamIsIdenticalWithMetricsOnAndOff) {
  EnabledGuard guard;
  const auto chip = core::ChipConfig::paper_chip();
  const auto pressure = [](double t) { return 2000.0 + 500.0 * t; };
  constexpr std::size_t kFrames = 32;

  set_enabled(true);
  core::AcquisitionPipeline on{chip};
  const auto with_metrics = on.acquire_uniform(pressure, kFrames);
  const auto with_metrics_block = on.acquire_uniform_block(pressure, kFrames);

  set_enabled(false);
  core::AcquisitionPipeline off{chip};
  const auto without_metrics = off.acquire_uniform(pressure, kFrames);
  const auto without_metrics_block = off.acquire_uniform_block(pressure, kFrames);
  set_enabled(true);

  ASSERT_EQ(with_metrics.size(), without_metrics.size());
  for (std::size_t i = 0; i < with_metrics.size(); ++i) {
    EXPECT_EQ(with_metrics[i].code, without_metrics[i].code) << i;
  }
  ASSERT_EQ(with_metrics_block.size(), without_metrics_block.size());
  for (std::size_t i = 0; i < with_metrics_block.size(); ++i) {
    EXPECT_EQ(with_metrics_block[i].code, without_metrics_block[i].code) << i;
  }
}

// Same contract for the ModulatorBank / ArrayAcquisition path: its
// noise-plan fills, lane gauge and block timer must never touch the signal.
TEST(MetricsWiring, BankBitstreamIsIdenticalWithMetricsOnAndOff) {
  EnabledGuard guard;
  const auto chip = core::ChipConfig::paper_chip();
  const auto field = [](double x_m, double, double t) {
    return 4000.0 + 2.0e7 * x_m + 800.0 * t;
  };
  constexpr std::size_t kFrames = 24;

  set_enabled(true);
  core::ArrayAcquisition on{chip};
  const auto with_metrics = on.acquire_block(field, kFrames);

  set_enabled(false);
  core::ArrayAcquisition off{chip};
  const auto without_metrics = off.acquire_block(field, kFrames);
  set_enabled(true);

  ASSERT_EQ(with_metrics.size(), without_metrics.size());
  for (std::size_t k = 0; k < with_metrics.size(); ++k) {
    ASSERT_EQ(with_metrics[k].size(), without_metrics[k].size());
    for (std::size_t i = 0; i < with_metrics[k].size(); ++i) {
      EXPECT_EQ(with_metrics[k][i].code, without_metrics[k][i].code)
          << "lane=" << k << " i=" << i;
    }
  }
}

TEST(MetricsWiring, NoisePlanFillsCountFrames) {
  EnabledGuard guard;
  set_enabled(true);
  auto& counter = Registry::global().counter(names::kModulatorNoisePlanFills);
  const auto fills0 = counter.value();
  analog::DeltaSigmaModulator mod{analog::ModulatorConfig{}};
  std::vector<int> bits(128 * 5);
  mod.step_capacitive_block(104e-15, 100e-15, bits.data(), bits.size());
  EXPECT_EQ(counter.value() - fills0, 5u);
}

}  // namespace
}  // namespace tono::metrics
