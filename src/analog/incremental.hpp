// incremental.hpp — incremental (one-shot) operation of the ΔΣ modulator.
//
// E4 shows that scanning the array through the free-running modulator costs
// a decimation-filter transient (~4 ms) per element switch — the §2.2
// "settling limited by the signal bandwidth" constraint. The textbook fix
// for multiplexed sensor arrays is *incremental* ΔΣ conversion: reset the
// loop, run exactly N cycles on one element, decimate with a cascade-of-
// integrators (CoI) counter, output one sample, move on. No IIR memory →
// no transient; conversion time is N clock cycles flat.
//
// The digital transfer (CoI₂ weighting → input estimate) is self-calibrated
// at construction by converting two known inputs through the differential
// voltage test interface — exactly the bring-up the chip's §3 test mode
// exists for.
#pragma once

#include <cstddef>
#include <memory>

#include "src/analog/modulator.hpp"

namespace tono::analog {

struct IncrementalConfig {
  /// Clock cycles per conversion (the accuracy/rate knob).
  std::size_t cycles{256};
  ModulatorConfig modulator{};
};

class IncrementalConverter {
 public:
  explicit IncrementalConverter(const IncrementalConfig& config);

  /// One-shot conversion of a differential input voltage. Returns the
  /// estimated normalized input (full scale ±1).
  [[nodiscard]] double convert_voltage(double vin_v);

  /// One-shot conversion of a sensor/reference capacitor pair. Returns the
  /// estimated normalized ΔC / ΔC_FS.
  [[nodiscard]] double convert_capacitive(double c_sense_f, double c_ref_f);

  /// Conversion time [s].
  [[nodiscard]] double conversion_time_s() const noexcept;

  /// Ideal resolution of an order-2 incremental with CoI₂ weighting:
  /// log2(N(N+1)/2) bits (quantization-limited).
  [[nodiscard]] double ideal_resolution_bits() const noexcept;

  [[nodiscard]] const IncrementalConfig& config() const noexcept { return config_; }

 private:
  /// Runs one reset-and-count conversion; `raw` is the CoI₂-weighted sum.
  template <typename StepFn>
  [[nodiscard]] double run_conversion(StepFn&& step);

  IncrementalConfig config_;
  std::unique_ptr<DeltaSigmaModulator> modulator_;
  double gain_{1.0};
  double offset_{0.0};
};

}  // namespace tono::analog
