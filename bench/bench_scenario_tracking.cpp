// E10 / §1 — why continuous: event detection vs an intermittent cuff.
//
// "External methods based on hand cuffs … are only able to accomplish
// single measurements … Thus the continuous recording of a blood pressure
// waveform is not possible." (§1; ref [2] validates tonometry in intensive
// care, where fast hypotensive events are the concern.)
//
// The bench runs a hypotensive-episode scenario through the full sensor
// chain and, in parallel, samples the same patient with the oscillometric
// cuff at its maximum duty cycle. Reported: the per-beat systolic trend from
// the sensor, the cuff's sparse readings, and the alarm latency of each for
// a systolic < 95 mmHg threshold.
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "src/core/monitor.hpp"
#include "src/core/sweep_runner.hpp"

namespace {

using namespace tono;

/// One severity trial for the episode-depth sweep: how fast does the sensor
/// raise a < 95 mmHg alarm when the episode bottoms out at `nadir_sys`?
struct SeverityResult {
  double nadir_sys;
  double truth_cross_s;   ///< ground truth crosses the threshold (-1: never)
  double sensor_alarm_s;  ///< first alarming beat (-1: never)
};

SeverityResult severity_trial(double nadir_sys) {
  const double total_s = 45.0;
  auto scenario = std::make_shared<bio::ScenarioProfile>(
      std::vector<bio::ScenarioKeyframe>{
          {0.0, 120.0, 80.0, 80.0},
          {15.0, 120.0, 80.0, 80.0},
          {22.0, nadir_sys, 0.62 * nadir_sys, 95.0},
          {35.0, 100.0, 68.0, 90.0},
          {total_s, 105.0, 70.0, 85.0},
      },
      "severity");
  core::WristModel wrist;
  wrist.scenario = scenario;
  core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), wrist};
  (void)mon.localize();
  (void)mon.calibrate(8.0);
  const auto rep = mon.monitor(total_s - mon.pipeline().time_s() - 1.0);

  const double threshold = 95.0;
  SeverityResult r{nadir_sys, -1.0, -1.0};
  for (double t = 0.0; t < total_s; t += 0.25) {
    if (scenario->at(t).systolic_mmhg < threshold) {
      r.truth_cross_s = t;
      break;
    }
  }
  for (const auto& b : rep.beats.beats) {
    if (b.systolic_value < threshold) {
      r.sensor_alarm_s = b.peak_s;
      break;
    }
  }
  return r;
}

void run_severity_sweep() {
  // Independent full-chain simulations per severity: exactly the shape the
  // deterministic sweep engine parallelizes. The table is bit-identical for
  // any thread count (see test_sweep_runner.cpp).
  core::SweepRunner runner{{.stream_name = "scenario-severity"}};
  const std::vector<double> severities{70.0, 80.0, 88.0, 93.0};
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = runner.map(severities, severity_trial);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  TextTable st{"Episode-depth sweep (parallel trials, " +
               std::to_string(runner.thread_count()) + " workers, " +
               format_double(wall_s, 1) + " s wall)"};
  st.set_header({"episode nadir [mmHg]", "truth < 95 at [s]", "sensor alarm [s]",
                 "latency [s]"});
  for (const auto& r : results) {
    st.add_row({format_double(r.nadir_sys, 0),
                r.truth_cross_s >= 0.0 ? format_double(r.truth_cross_s, 1) : "never",
                r.sensor_alarm_s >= 0.0 ? format_double(r.sensor_alarm_s, 1) : "never",
                r.sensor_alarm_s >= 0.0 && r.truth_cross_s >= 0.0
                    ? format_double(r.sensor_alarm_s - r.truth_cross_s, 1)
                    : "-"});
  }
  st.print(std::cout);
}

void run() {
  bench::print_header("E10 / §1", "Hypotensive episode: continuous sensor vs cuff");

  const double total_s = 150.0;
  auto scenario = std::make_shared<bio::ScenarioProfile>(
      bio::ScenarioProfile::hypotensive_episode(total_s));

  core::WristModel wrist;
  wrist.scenario = scenario;
  core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), wrist};
  (void)mon.localize();
  (void)mon.calibrate(12.0);

  // Continuous monitoring through the whole scenario.
  const auto rep = mon.monitor(total_s - mon.pipeline().time_s() - 1.0);

  // The cuff samples the same ground truth at its maximum rate:
  // one reading per (deflation + rest) cycle.
  bio::OscillometricCuff cuff{bio::CuffConfig{}};
  const double cuff_cycle_s =
      (180.0 - 40.0) / 3.0 + bio::CuffConfig{}.min_measurement_interval_s;
  struct CuffSample {
    double t;
    double sys;
  };
  std::vector<CuffSample> cuff_trend;
  for (double t = 0.0; t < total_s; t += cuff_cycle_s) {
    const auto k = scenario->at(t);
    const auto r = cuff.measure(k.systolic_mmhg, k.diastolic_mmhg, k.heart_rate_bpm);
    if (r.valid) {
      // The reading becomes available only after the deflation finishes.
      cuff_trend.push_back(CuffSample{t + r.duration_s, r.systolic_mmhg});
    }
  }

  // Figure: sensor per-beat systolic + truth + cuff readings.
  SeriesWriter sensor{"scenario_sensor_sys", "time_s", "systolic_mmhg"};
  for (const auto& b : rep.beats.beats) sensor.add(b.peak_s, b.systolic_value);
  sensor.write_ascii_plot(std::cout, 72, 14);
  sensor.decimated(200).write_csv(std::cout);

  TextTable tt{"Trend comparison (10 s bins)"};
  tt.set_header({"t [s]", "truth sys", "sensor sys (per-beat mean)", "cuff knows"});
  double last_cuff = 0.0;
  std::size_t cuff_idx = 0;
  for (double t = 10.0; t < total_s - 5.0; t += 10.0) {
    while (cuff_idx < cuff_trend.size() && cuff_trend[cuff_idx].t <= t) {
      last_cuff = cuff_trend[cuff_idx].sys;
      ++cuff_idx;
    }
    double acc = 0.0;
    int n = 0;
    for (const auto& b : rep.beats.beats) {
      if (b.peak_s >= t - 5.0 && b.peak_s < t + 5.0) {
        acc += b.systolic_value;
        ++n;
      }
    }
    tt.add_row({format_double(t, 0), format_double(scenario->at(t).systolic_mmhg, 1),
                n > 0 ? format_double(acc / n, 1) : "-",
                last_cuff > 0.0 ? format_double(last_cuff, 1) : "none yet"});
  }
  tt.print(std::cout);

  // Alarm latency for systolic < 95 mmHg.
  const double threshold = 95.0;
  double truth_cross = -1.0;
  for (double t = 0.0; t < total_s; t += 0.5) {
    if (scenario->at(t).systolic_mmhg < threshold) {
      truth_cross = t;
      break;
    }
  }
  double sensor_alarm = -1.0;
  for (const auto& b : rep.beats.beats) {
    if (b.systolic_value < threshold) {
      sensor_alarm = b.peak_s;
      break;
    }
  }
  double cuff_alarm = -1.0;
  for (const auto& c : cuff_trend) {
    if (c.sys < threshold) {
      cuff_alarm = c.t;
      break;
    }
  }

  TextTable at{"Alarm latency, systolic < 95 mmHg"};
  at.set_header({"observer", "alarm at [s]", "latency after truth [s]"});
  at.add_row({"ground truth crosses", format_double(truth_cross, 1), "0"});
  at.add_row({"tactile sensor (per beat)",
              sensor_alarm >= 0.0 ? format_double(sensor_alarm, 1) : "never",
              sensor_alarm >= 0.0 ? format_double(sensor_alarm - truth_cross, 1) : "-"});
  at.add_row({"oscillometric cuff",
              cuff_alarm >= 0.0 ? format_double(cuff_alarm, 1) : "missed entirely",
              cuff_alarm >= 0.0 ? format_double(cuff_alarm - truth_cross, 1) : "-"});
  at.print(std::cout);

  bench::ComparisonTable cmp{"Paper vs measured (§1 motivation)"};
  cmp.add("continuous waveform recording", "sensor: yes / cuff: no",
          "per-beat trend vs " + std::to_string(cuff_trend.size()) + " cuff points",
          true);
  cmp.add("fast-event capability", "implied by §1/ref [2]",
          "sensor alarm beats the cuff cycle", sensor_alarm >= 0.0 &&
              (cuff_alarm < 0.0 || sensor_alarm < cuff_alarm));
  cmp.print();

  run_severity_sweep();
}

}  // namespace

int main() {
  run();
  return 0;
}
