#include "src/core/chip_config.hpp"

namespace tono::core {

ChipConfig ChipConfig::paper_chip() {
  ChipConfig c;
  // Defaults of the member structs already encode the paper's values
  // (see each module's header); repeat the load-bearing ones explicitly so
  // this factory is self-documenting and robust to default drift.
  c.array = ArrayGeometry{2, 2, 150e-6};

  c.transducer.plate.side_length_m = 100e-6;
  c.transducer.plate.stack = mems::LayerStack::cmos_membrane_stack();
  c.transducer.backpressure_pa = 0.0;

  c.modulator.sampling_rate_hz = 128000.0;
  c.modulator.vref_v = 2.5;
  c.modulator.vexc_v = 2.5;
  c.modulator.supply_v = 5.0;
  // Feedback capacitor sized for tonometry: ΔC_FS = C_fb·V_ref/V_exc = 5 fF
  // maps the millimetre-of-mercury-scale capacitance swings onto a useful
  // fraction of the 12-bit range (§4's "adjusting the feedback capacitors").
  c.modulator.c_fb1_f = 5e-15;

  c.mux.rows = 2;
  c.mux.cols = 2;

  c.decimation.total_decimation = 128;   // OSR 128 → 1 kS/s
  c.decimation.cic_decimation = 32;
  c.decimation.cic_order = 3;            // 3rd-order SINC
  c.decimation.fir_taps = 32;            // 32-tap FIR
  c.decimation.cutoff_hz = 500.0;
  c.decimation.input_rate_hz = 128000.0;
  c.decimation.output_bits = 12;

  return c;
}

}  // namespace tono::core
