# Empty compiler generated dependencies file for test_windkessel.
# This may be replaced when dependencies are built.
