// test_sweep_runner.cpp — the determinism contract of the parallel sweep
// engine: parallel execution must be bit-identical to serial, results must
// arrive in trial order, and exceptions must propagate like a serial loop's.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/chip_config.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/sweep_runner.hpp"

namespace {

using tono::Rng;
using tono::ThreadPool;
using tono::core::SweepConfig;
using tono::core::SweepRunner;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor must finish all 50 before joining
  EXPECT_EQ(count.load(), 50);
}

TEST(SweepRunnerTest, TrialRngDependsOnlyOnIndexAndConfig) {
  SweepRunner a{{.threads = 1, .base_seed = 7, .stream_name = "x"}};
  SweepRunner b{{.threads = 4, .base_seed = 7, .stream_name = "x"}};
  for (std::size_t i : {0u, 1u, 17u}) {
    Rng ra = a.trial_rng(i);
    Rng rb = b.trial_rng(i);
    for (int k = 0; k < 8; ++k) EXPECT_EQ(ra.next_u64(), rb.next_u64());
  }
  // Distinct indices and distinct stream names give distinct streams.
  Rng r0 = a.trial_rng(0);
  Rng r1 = a.trial_rng(1);
  EXPECT_NE(r0.next_u64(), r1.next_u64());
  SweepRunner c{{.threads = 1, .base_seed = 7, .stream_name = "y"}};
  Rng rc = c.trial_rng(0);
  Rng ra0 = a.trial_rng(0);
  EXPECT_NE(ra0.next_u64(), rc.next_u64());
}

TEST(SweepRunnerTest, ParallelMatchesSerialBitIdentical) {
  const auto trial = [](std::size_t i, Rng& rng) {
    // Enough draws and arithmetic that any stream-sharing or reordering bug
    // would change the bits.
    double acc = static_cast<double>(i);
    for (int k = 0; k < 1000; ++k) acc += rng.gaussian() * rng.uniform();
    return acc;
  };
  SweepRunner serial{{.threads = 1, .base_seed = 99}};
  SweepRunner parallel{{.threads = 4, .base_seed = 99}};
  const auto a = serial.run(64, trial);
  const auto b = parallel.run(64, trial);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "trial " << i;  // exact double equality intended
  }
}

TEST(SweepRunnerTest, PipelineTrialsMatchSerialBitIdentical) {
  // Full acquisition pipelines, seeded per trial: the heavyweight version of
  // the determinism contract that the benches rely on.
  const auto trial = [](std::size_t, Rng& rng) {
    tono::core::ChipConfig chip = tono::core::ChipConfig::paper_chip();
    chip.modulator.seed = rng.next_u64();
    tono::core::AcquisitionPipeline pipe{chip};
    const auto samples = pipe.acquire_uniform_block(
        [](double t) { return 8000.0 + 500.0 * t; }, 20);
    std::int64_t sum = 0;
    for (const auto& s : samples) sum += s.code;
    return sum;
  };
  SweepRunner serial{{.threads = 1, .base_seed = 5}};
  SweepRunner parallel{{.threads = 4, .base_seed = 5}};
  EXPECT_EQ(serial.run(8, trial), parallel.run(8, trial));
}

TEST(SweepRunnerTest, ResultsArriveInTrialOrder) {
  SweepRunner runner{{.threads = 4}};
  const auto out = runner.run(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunnerTest, MapPreservesInputOrder) {
  SweepRunner runner{{.threads = 3}};
  std::vector<double> inputs(25);
  std::iota(inputs.begin(), inputs.end(), 1.0);
  const auto out = runner.map(inputs, [](double x) { return 2.0 * x; });
  ASSERT_EQ(out.size(), inputs.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2.0 * inputs[i]);
}

TEST(SweepRunnerTest, LowestIndexExceptionPropagates) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SweepRunner runner{{.threads = threads}};
    try {
      (void)runner.run(32, [](std::size_t i) -> int {
        if (i == 7 || i == 20) throw std::runtime_error{"trial " + std::to_string(i)};
        return 0;
      });
      FAIL() << "expected exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "trial 7");
    }
  }
}

TEST(SweepRunnerTest, ZeroTrialsIsANoOp) {
  SweepRunner runner{{.threads = 4}};
  const auto out = runner.run(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

}  // namespace
