# Empty dependencies file for test_plate.
# This may be replaced when dependencies are built.
