# Empty dependencies file for test_beat_detection.
# This may be replaced when dependencies are built.
