#include "src/analog/mux.hpp"

#include <cmath>

#include "src/common/checkpoint.hpp"

namespace tono::analog {

AnalogMux::AnalogMux(const MuxConfig& config) : config_(config) {
  if (config_.rows == 0 || config_.cols == 0) {
    throw std::invalid_argument{"AnalogMux: array dimensions must be nonzero"};
  }
  if (config_.on_resistance_ohm <= 0.0 || config_.node_capacitance_f <= 0.0) {
    throw std::invalid_argument{"AnalogMux: R_on and node capacitance must be > 0"};
  }
}

void AnalogMux::select(std::size_t row, std::size_t col) {
  if (row >= config_.rows || col >= config_.cols) {
    throw std::out_of_range{"AnalogMux::select: index out of range"};
  }
  row_ = row;
  col_ = col;
}

double AnalogMux::observed_capacitance(double target_c_f,
                                       double dt_since_switch_s) const noexcept {
  const double tau = settling_tau_s();
  if (dt_since_switch_s < 0.0) dt_since_switch_s = 0.0;
  const double blend = std::exp(-dt_since_switch_s / tau);
  // Charge injection appears as a decaying equivalent-capacitance error.
  const double injection_c = config_.charge_injection_c / config_.excitation_v;
  return target_c_f + (previous_c_ - target_c_f) * blend + injection_c * blend;
}

double AnalogMux::settling_tau_s() const noexcept {
  return config_.on_resistance_ohm * config_.node_capacitance_f;
}

double AnalogMux::settling_time_s(double relative_error) const noexcept {
  if (relative_error <= 0.0 || relative_error >= 1.0) return 0.0;
  return -settling_tau_s() * std::log(relative_error);
}

void AnalogMux::serialize(CheckpointWriter& out) const {
  out.section("mux");
  out.size(row_);
  out.size(col_);
  out.f64(previous_c_);
}

void AnalogMux::restore(CheckpointReader& in) {
  in.section("mux");
  row_ = in.size();
  col_ = in.size();
  previous_c_ = in.f64();
  if (row_ >= config_.rows || col_ >= config_.cols) {
    throw CheckpointError{"mux checkpoint selects element outside the array"};
  }
}

}  // namespace tono::analog
