#include "src/bio/cuff.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tono::bio {

OscillometricCuff::OscillometricCuff(const CuffConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.deflation_rate_mmhg_per_s <= 0.0) {
    throw std::invalid_argument{"OscillometricCuff: deflation rate must be > 0"};
  }
  if (config_.start_pressure_mmhg <= config_.end_pressure_mmhg) {
    throw std::invalid_argument{"OscillometricCuff: start must exceed end pressure"};
  }
  if (config_.systolic_ratio <= 0.0 || config_.systolic_ratio >= 1.0 ||
      config_.diastolic_ratio <= 0.0 || config_.diastolic_ratio >= 1.0) {
    throw std::invalid_argument{"OscillometricCuff: ratios must be in (0,1)"};
  }
}

CuffReading OscillometricCuff::measure(double true_systolic_mmhg,
                                       double true_diastolic_mmhg,
                                       double heart_rate_bpm) {
  CuffReading reading;
  if (true_systolic_mmhg <= true_diastolic_mmhg || heart_rate_bpm <= 0.0) return reading;
  if (true_systolic_mmhg >= config_.start_pressure_mmhg - 5.0 ||
      true_diastolic_mmhg <= config_.end_pressure_mmhg + 5.0) {
    return reading;  // outside the deflation window
  }

  const double pp = true_systolic_mmhg - true_diastolic_mmhg;
  const double true_map = true_diastolic_mmhg + pp / 3.0;  // clinical estimate
  const double width = config_.envelope_width_factor * pp;

  // One oscillation-amplitude sample per beat during deflation.
  const double beat_interval_s = 60.0 / heart_rate_bpm;
  const double dp = config_.deflation_rate_mmhg_per_s * beat_interval_s;
  std::vector<double> cuff_p;
  std::vector<double> amplitude;
  for (double p = config_.start_pressure_mmhg; p > config_.end_pressure_mmhg; p -= dp) {
    const double d = (p - true_map) / width;
    double a = std::exp(-0.5 * d * d);
    a *= 1.0 + rng_.gaussian(0.0, config_.envelope_noise);
    cuff_p.push_back(p);
    amplitude.push_back(std::max(a, 0.0));
  }
  if (amplitude.size() < 8) return reading;

  // Envelope smoothing (5-beat moving average), as real oscillometric
  // devices do: the raw per-beat amplitudes are too noisy for the flat
  // near-peak region where the diastolic ratio crossing lives.
  {
    std::vector<double> smoothed(amplitude.size());
    const std::size_t half = 2;
    for (std::size_t i = 0; i < amplitude.size(); ++i) {
      const std::size_t lo = i > half ? i - half : 0;
      const std::size_t hi = std::min(i + half, amplitude.size() - 1);
      double acc = 0.0;
      for (std::size_t k = lo; k <= hi; ++k) acc += amplitude[k];
      smoothed[i] = acc / static_cast<double>(hi - lo + 1);
    }
    amplitude = std::move(smoothed);
  }

  // Peak of the envelope → MAP.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < amplitude.size(); ++i) {
    if (amplitude[i] > amplitude[peak]) peak = i;
  }
  const double a_max = amplitude[peak];
  if (a_max <= 0.0) return reading;
  reading.map_mmhg = cuff_p[peak];

  // Fixed-ratio crossings: systolic above the peak (higher cuff pressure),
  // diastolic below, with linear interpolation between beats.
  auto crossing = [&](double ratio, bool above) -> double {
    const double target = ratio * a_max;
    if (above) {
      for (std::size_t i = peak; i-- > 0;) {
        if (amplitude[i] <= target) {
          const double f = (target - amplitude[i]) / (amplitude[i + 1] - amplitude[i]);
          return cuff_p[i] + (cuff_p[i + 1] - cuff_p[i]) * f;
        }
      }
      return cuff_p.front();
    }
    for (std::size_t i = peak + 1; i < amplitude.size(); ++i) {
      if (amplitude[i] <= target) {
        const double f = (target - amplitude[i]) / (amplitude[i - 1] - amplitude[i]);
        return cuff_p[i] + (cuff_p[i - 1] - cuff_p[i]) * f;
      }
    }
    return cuff_p.back();
  };

  reading.systolic_mmhg = crossing(config_.systolic_ratio, /*above=*/true);
  reading.diastolic_mmhg = crossing(config_.diastolic_ratio, /*above=*/false);
  reading.duration_s =
      (config_.start_pressure_mmhg - config_.end_pressure_mmhg) /
      config_.deflation_rate_mmhg_per_s;
  reading.valid = reading.systolic_mmhg > reading.diastolic_mmhg;
  return reading;
}

double OscillometricCuff::max_measurements_per_hour() const noexcept {
  const double cycle_s =
      (config_.start_pressure_mmhg - config_.end_pressure_mmhg) /
          config_.deflation_rate_mmhg_per_s +
      config_.min_measurement_interval_s;
  return 3600.0 / cycle_s;
}

}  // namespace tono::bio
