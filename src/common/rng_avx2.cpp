// rng_avx2.cpp — AVX2 vector phase of Rng::fill_gaussian_multi.
//
// Four independent xoshiro256++ streams advance in lockstep, one per 64-bit
// SIMD lane (state stored word-major: vector j holds state_[j] of all four
// streams). Each polar-method attempt draws two uniforms per stream — also
// exactly what the scalar rejection loop consumes per iteration, accepted or
// not — so every stream's draw sequence is position-identical to its solo
// fill_gaussian.
//
// Exactness argument, piece by piece:
//   * xoshiro256++ is pure 64-bit integer arithmetic — identical by
//     definition.
//   * (double)(u64 >> 11): the value is < 2^53, converted exactly via the
//     split lo32/hi21 + 2^52 bias trick; every intermediate (hi·2^32, the
//     final sum) is an integer below 2^53 and therefore exact, so the result
//     equals the scalar static_cast bit-for-bit.
//   * -1.0 + 2.0 * (d * 0x1.0p-53): same three operations in the same order
//     as fill_gaussian's uniform_pm1; vmulpd/vaddpd are correctly rounded
//     elementwise, so each lane rounds exactly as the scalar expression.
//   * u*u + v*v and the rejection compares (s >= 1.0 || s == 0.0, evaluated
//     as accept = s < 1.0 && s != 0.0): elementwise IEEE, no contraction
//     (this TU is compiled with the repo-global -ffp-contract=off, and
//     intrinsics never contract).
//   * factor = sqrt(-2·log(s)/s): the log is gausslog::polar_log — the
//     repo-pinned port whose main path is one table gather, one fma, and a
//     polynomial of elementwise IEEE ops, mirrored below vector-op-for-
//     scalar-op (vfmadd where the scalar uses std::fma, mul/add/sub/div/
//     sqrt correctly rounded lane-wise). Lanes polar_log would route to its
//     scalar branches — radii within 2^-4 of 1.0 (~6% of accepted pairs)
//     or non-normal — are recomputed with the scalar function, so every
//     emitted value is bit-identical to the solo fill by construction.
//     Rejected lanes ride along through the vector math and are discarded.
//
// The emission is branchless: every round stores both pair values for all
// four lanes unconditionally and advances each cursor by 2·accept — a
// rejected lane's garbage store sits below its cursor and is overwritten by
// the next accepted pair (or by the scalar tail). Acceptance is a coin flip
// the branch predictor cannot learn, so trading four unpredictable branches
// per round for eight cheap stores is a large win. The phase exits as soon
// as any stream has fewer than two slots left (the unconditional pair store
// needs the headroom); fill_gaussian_multi finishes every stream's tail —
// including the possible final odd value and spare — with the scalar fill,
// which is bit-identical by the multi == solo contract.
#if defined(TONO_SIMD_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "src/common/gauss_log.hpp"
#include "src/common/rng.hpp"

namespace tono {
namespace {

inline __m256i rotl64(__m256i x, int k) noexcept {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

/// Exact (double)x for x < 2^53, elementwise.
inline __m256d u64_to_f64_exact(__m256i x) noexcept {
  const __m256i bias = _mm256_set1_epi64x(0x4330000000000000ll);  // bits of 2^52
  const __m256d bias_d = _mm256_set1_pd(0x1.0p52);
  const __m256i lo32 = _mm256_and_si256(x, _mm256_set1_epi64x(0xFFFFFFFFll));
  const __m256i hi21 = _mm256_srli_epi64(x, 32);
  const __m256d lo = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(lo32, bias)), bias_d);
  const __m256d hi = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(hi21, bias)), bias_d);
  return _mm256_add_pd(_mm256_mul_pd(hi, _mm256_set1_pd(0x1.0p32)), lo);
}

/// gausslog::polar_log's main path on four lanes, plus a lane mask for
/// inputs the scalar function would route to its near-1 / non-normal
/// branches (those lanes' results here are meaningless and must be
/// recomputed scalar). Inputs are polar radii: finite, sign bit clear, so
/// signed 64-bit compares on the raw bits are safe.
inline __m256d polar_log4(__m256d x, int* scalar_lanes) noexcept {
  using namespace gausslog;
  const __m256i ix = _mm256_castpd_si256(x);
  const __m256i near1 = _mm256_and_si256(
      _mm256_cmpgt_epi64(ix, _mm256_set1_epi64x(static_cast<long long>(kNear1Lo) - 1)),
      _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(kNear1Hi)), ix));
  const __m256i tiny = _mm256_cmpgt_epi64(
      _mm256_set1_epi64x(0x0010000000000000ll), ix);  // zero / subnormal
  *scalar_lanes = _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_or_si256(near1, tiny)));

  const __m256i tmp = _mm256_sub_epi64(ix, _mm256_set1_epi64x(
                                               static_cast<long long>(kOff)));
  const __m256i idx2 = _mm256_slli_epi64(
      _mm256_and_si256(_mm256_srli_epi64(tmp, 52 - kTableBits),
                       _mm256_set1_epi64x((1 << kTableBits) - 1)),
      1);
  // k = (int64)tmp >> 52: logical shift then sign-extend the 12-bit field
  // (AVX2 has no 64-bit arithmetic shift).
  const __m256i k = _mm256_sub_epi64(
      _mm256_xor_si256(_mm256_srli_epi64(tmp, 52), _mm256_set1_epi64x(0x800)),
      _mm256_set1_epi64x(0x800));
  const __m256i iz = _mm256_sub_epi64(
      ix, _mm256_and_si256(tmp, _mm256_set1_epi64x(0xfffll << 52)));
  const __m256d invc = _mm256_i64gather_pd(kLogTab, idx2, 8);
  const __m256d logc = _mm256_i64gather_pd(kLogTab + 1, idx2, 8);
  const __m256d z = _mm256_castsi256_pd(iz);
  const __m256d r = _mm256_fmadd_pd(z, invc, _mm256_set1_pd(-1.0));
  // Exact int64 → double for |k| ≤ 2047 via the 2^52+2^51 bias trick.
  const __m256d kd = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_add_epi64(k, _mm256_set1_epi64x(0x4338000000000000ll))),
      _mm256_set1_pd(0x1.8p52));
  // Same association as the scalar: w = kd*Ln2hi + logc; hi = w + r;
  // lo = ((w - hi) + r) + kd*Ln2lo.
  const __m256d w =
      _mm256_add_pd(_mm256_mul_pd(kd, _mm256_set1_pd(kLn2Hi)), logc);
  const __m256d hi = _mm256_add_pd(w, r);
  const __m256d lo = _mm256_add_pd(
      _mm256_add_pd(_mm256_sub_pd(w, hi), r),
      _mm256_mul_pd(kd, _mm256_set1_pd(kLn2Lo)));
  const __m256d r2 = _mm256_mul_pd(r, r);
  // p = (A1 + r*A2) + r2*(A3 + r*A4); y = ((lo + r2*A0) + (r*r2)*p) + hi.
  const __m256d p = _mm256_add_pd(
      _mm256_add_pd(_mm256_set1_pd(kPolyA[1]),
                    _mm256_mul_pd(r, _mm256_set1_pd(kPolyA[2]))),
      _mm256_mul_pd(r2, _mm256_add_pd(_mm256_set1_pd(kPolyA[3]),
                                      _mm256_mul_pd(r, _mm256_set1_pd(kPolyA[4])))));
  return _mm256_add_pd(
      _mm256_add_pd(
          _mm256_add_pd(lo, _mm256_mul_pd(r2, _mm256_set1_pd(kPolyA[0]))),
          _mm256_mul_pd(_mm256_mul_pd(r, r2), p)),
      hi);
}

}  // namespace

void Rng::fill_gaussian_x4_avx2_(Rng* const* rngs, double* const* dests,
                                 std::size_t* pos,
                                 const std::size_t* ns) noexcept {
  // Word-major SoA state: s[j] lane w = rngs[w]->state_[j].
  __m256i s[4];
  for (int j = 0; j < 4; ++j) {
    s[j] = _mm256_set_epi64x(
        static_cast<long long>(rngs[3]->state_[static_cast<std::size_t>(j)]),
        static_cast<long long>(rngs[2]->state_[static_cast<std::size_t>(j)]),
        static_cast<long long>(rngs[1]->state_[static_cast<std::size_t>(j)]),
        static_cast<long long>(rngs[0]->state_[static_cast<std::size_t>(j)]));
  }
  const auto next4 = [&s]() noexcept {
    const __m256i result =
        _mm256_add_epi64(rotl64(_mm256_add_epi64(s[0], s[3]), 23), s[0]);
    const __m256i t = _mm256_slli_epi64(s[1], 17);
    s[2] = _mm256_xor_si256(s[2], s[0]);
    s[3] = _mm256_xor_si256(s[3], s[1]);
    s[1] = _mm256_xor_si256(s[1], s[2]);
    s[0] = _mm256_xor_si256(s[0], s[3]);
    s[2] = _mm256_xor_si256(s[2], t);
    s[3] = rotl64(s[3], 45);
    return result;
  };
  // uniform(-1, 1) exactly as fill_gaussian's uniform_pm1 lambda.
  const auto uniform_pm1x4 = [&next4]() noexcept {
    const __m256d d = u64_to_f64_exact(_mm256_srli_epi64(next4(), 11));
    return _mm256_add_pd(
        _mm256_set1_pd(-1.0),
        _mm256_mul_pd(_mm256_set1_pd(2.0),
                      _mm256_mul_pd(d, _mm256_set1_pd(0x1.0p-53))));
  };

  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  // Loop invariant: every stream has ≥ 2 slots of headroom (guaranteed on
  // entry by fill_gaussian_multi's kMinVectorFill), so the unconditional
  // pair stores below never run past a buffer.
  for (;;) {
    const __m256d u = uniform_pm1x4();
    const __m256d v = uniform_pm1x4();
    const __m256d sq =
        _mm256_add_pd(_mm256_mul_pd(u, u), _mm256_mul_pd(v, v));
    // Rejection: while (sq >= 1.0 || sq == 0.0) → accept = sq < 1 && sq != 0.
    const __m256d accept =
        _mm256_and_pd(_mm256_cmp_pd(sq, one, _CMP_LT_OQ),
                      _mm256_cmp_pd(sq, zero, _CMP_NEQ_OQ));
    const int mask = _mm256_movemask_pd(accept);
    if (mask == 0) continue;
    // factor = sqrt(-2·log(sq)/sq) on all four lanes at once (rejected
    // lanes produce garbage that is never read). Division and sqrt round
    // correctly per lane, so only log's scalar-branch lanes need a redo.
    int log_scalar_lanes = 0;
    const __m256d y4 = polar_log4(sq, &log_scalar_lanes);
    const __m256d factor4 = _mm256_sqrt_pd(
        _mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(-2.0), y4), sq));
    alignas(32) double uf[4];
    alignas(32) double vf[4];
    _mm256_store_pd(uf, _mm256_mul_pd(u, factor4));
    _mm256_store_pd(vf, _mm256_mul_pd(v, factor4));
    const int fix = mask & log_scalar_lanes;
    if (fix != 0) [[unlikely]] {
      // Accepted radii the pinned log routes to its scalar branches
      // (near-1, ~6% of accepts): redo the pair with the scalar factor.
      alignas(32) double ua[4];
      alignas(32) double va[4];
      alignas(32) double sa[4];
      _mm256_store_pd(ua, u);
      _mm256_store_pd(va, v);
      _mm256_store_pd(sa, sq);
      int m = fix;
      do {
        const auto w = static_cast<std::size_t>(
            __builtin_ctz(static_cast<unsigned>(m)));
        m &= m - 1;
        const double factor = gausslog::polar_factor(sa[w]);
        uf[w] = ua[w] * factor;
        vf[w] = va[w] * factor;
      } while (m != 0);
    }
    bool exhausted = false;
    for (std::size_t w = 0; w < 4; ++w) {
      double* dest = dests[w] + pos[w];
      dest[0] = uf[w];
      dest[1] = vf[w];
      pos[w] += 2 * (static_cast<unsigned>(mask) >> w & 1u);
      exhausted |= pos[w] + 2 > ns[w];
    }
    if (exhausted) break;
  }
  // Write every stream's advanced state back (completed or not): all four
  // consumed the same number of raw draws, exactly as their scalar rejection
  // loops would have at this point in their sequences.
  alignas(32) std::uint64_t words[4];
  for (std::size_t j = 0; j < 4; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(words), s[j]);
    for (std::size_t w = 0; w < 4; ++w) rngs[w]->state_[j] = words[w];
  }
}

}  // namespace tono

#endif  // TONO_SIMD_AVX2
