// Tests for time-varying physiological scenarios and monitor tracking.
#include "src/bio/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/monitor.hpp"

namespace tono::bio {
namespace {

TEST(Scenario, InterpolatesBetweenKeyframes) {
  ScenarioProfile p{{ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                     ScenarioKeyframe{10.0, 140.0, 90.0, 90.0}},
                    "ramp"};
  const auto mid = p.at(5.0);
  EXPECT_NEAR(mid.systolic_mmhg, 130.0, 1e-9);
  EXPECT_NEAR(mid.diastolic_mmhg, 85.0, 1e-9);
  EXPECT_NEAR(mid.heart_rate_bpm, 80.0, 1e-9);
}

TEST(Scenario, ClampsOutsideRange) {
  ScenarioProfile p{{ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                     ScenarioKeyframe{10.0, 140.0, 90.0, 90.0}}};
  EXPECT_NEAR(p.at(-5.0).systolic_mmhg, 120.0, 1e-9);
  EXPECT_NEAR(p.at(100.0).systolic_mmhg, 140.0, 1e-9);
  EXPECT_NEAR(p.duration_s(), 10.0, 1e-12);
}

TEST(Scenario, RejectsBadKeyframes) {
  EXPECT_THROW((ScenarioProfile{{ScenarioKeyframe{}}}), std::invalid_argument);
  EXPECT_THROW((ScenarioProfile{{ScenarioKeyframe{5.0}, ScenarioKeyframe{1.0}}}),
               std::invalid_argument);
  EXPECT_THROW((ScenarioProfile{{ScenarioKeyframe{0.0, 80.0, 90.0, 70.0},
                                 ScenarioKeyframe{1.0}}}),
               std::invalid_argument);
}

TEST(Scenario, PresetsWellFormed) {
  const auto ex = ScenarioProfile::exercise();
  EXPECT_GT(ex.duration_s(), 60.0);
  // Peak exercise raises both pressure and heart rate.
  EXPECT_GT(ex.at(90.0).systolic_mmhg, ex.at(0.0).systolic_mmhg + 20.0);
  EXPECT_GT(ex.at(90.0).heart_rate_bpm, ex.at(0.0).heart_rate_bpm + 30.0);

  const auto hypo = ScenarioProfile::hypotensive_episode();
  EXPECT_LT(hypo.at(60.0).systolic_mmhg, hypo.at(0.0).systolic_mmhg - 25.0);
}

TEST(Scenario, GeneratorFollowsAppliedTargets) {
  PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  const ScenarioProfile ramp{{ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                              ScenarioKeyframe{30.0, 150.0, 95.0, 100.0}}};
  for (int i = 0; i < 30 * 250; ++i) {
    const double t = i / 250.0;
    if (i % 25 == 0) ramp.apply(gen, t);
    (void)gen.sample(1.0 / 250.0);
  }
  const auto& truth = gen.beat_truth();
  ASSERT_GE(truth.size(), 20u);
  // Late beats track the raised setpoints.
  const auto& late = truth.back();
  EXPECT_GT(late.systolic_mmhg, 140.0);
  EXPECT_LT(late.interval_s, 0.7);  // ~100 bpm
}

TEST(Scenario, SetTargetsValidates) {
  ArterialPulseGenerator gen{PulseConfig{}};
  EXPECT_THROW(gen.set_targets(80.0, 90.0, 70.0), std::invalid_argument);
  EXPECT_THROW(gen.set_targets(120.0, 80.0, 5.0), std::invalid_argument);
  EXPECT_NO_THROW(gen.set_targets(140.0, 90.0, 95.0));
}

TEST(Scenario, MonitorTracksHypotensiveEpisode) {
  core::WristModel wrist;
  wrist.scenario =
      std::make_shared<ScenarioProfile>(ScenarioProfile::hypotensive_episode(120.0));
  core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), wrist};
  (void)mon.calibrate(12.0);
  // Monitor through the crash (which happens around t = 42..60 s).
  const auto before = mon.monitor(15.0);   // ~t 12-27 s: still stable
  (void)mon.monitor(25.0);                 // ride through the onset
  const auto nadir = mon.monitor(15.0);    // ~t 52-67 s: deep in the episode
  ASSERT_GE(before.beats.beats.size(), 10u);
  ASSERT_GE(nadir.beats.beats.size(), 10u);
  // The sensor sees the crash: systolic falls by tens of mmHg and HR rises.
  EXPECT_LT(nadir.beats.mean_systolic, before.beats.mean_systolic - 20.0);
  EXPECT_GT(nadir.beats.heart_rate_bpm, before.beats.heart_rate_bpm + 10.0);
  // And it still tracks the (changing) ground truth decently.
  EXPECT_LT(std::abs(nadir.map_error_mmhg), 10.0);
}

}  // namespace
}  // namespace tono::bio
