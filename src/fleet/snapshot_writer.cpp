#include "src/fleet/snapshot_writer.hpp"

#include <sstream>
#include <utility>

#include "src/common/checkpoint.hpp"

namespace tono::fleet {

AsyncSnapshotWriter::AsyncSnapshotWriter(std::string path)
    : path_(std::move(path)) {
  auto& reg = metrics::Registry::global();
  written_metric_ = &reg.counter(metrics::names::kHospitalSnapshotsWritten);
  skipped_metric_ = &reg.counter(metrics::names::kHospitalSnapshotsSkipped);
  write_wall_ = &reg.timer(metrics::names::kHospitalSnapshotWall);
  thread_ = std::thread{[this] { loop_(); }};
}

AsyncSnapshotWriter::~AsyncSnapshotWriter() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
}

void AsyncSnapshotWriter::submit(WardSnapshot snapshot) {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (pending_.has_value()) {
      // The writer is behind; latest wins and the loser is counted, never
      // silently vanished.
      ++skipped_;
      skipped_metric_->add(1);
    }
    pending_ = std::move(snapshot);
  }
  wake_cv_.notify_one();
}

void AsyncSnapshotWriter::flush() {
  std::unique_lock<std::mutex> lock{mutex_};
  idle_cv_.wait(lock, [this] { return !pending_.has_value() && !writing_; });
}

std::uint64_t AsyncSnapshotWriter::written() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return written_;
}

std::uint64_t AsyncSnapshotWriter::skipped() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return skipped_;
}

std::uint64_t AsyncSnapshotWriter::failures() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return failures_;
}

void AsyncSnapshotWriter::loop_() {
  std::unique_lock<std::mutex> lock{mutex_};
  for (;;) {
    wake_cv_.wait(lock, [this] { return stop_ || pending_.has_value(); });
    if (!pending_.has_value()) break;  // stop requested, queue drained
    WardSnapshot snapshot = std::move(*pending_);
    pending_.reset();
    writing_ = true;
    lock.unlock();

    // Off-lock serialization + write: this is the stall the barrier never
    // sees. Serialize to memory first, then publish via tmp-file + fsync +
    // atomic rename — a crash or SIGKILL at any instant leaves the previous
    // complete snapshot in place, never a torn or empty file (a restart
    // resumes from whatever snapshot the rename last published). Open,
    // write, fsync and rename failures all land in failures().
    bool ok = false;
    {
      metrics::TraceSpan span{*write_wall_};
      std::ostringstream buffer;
      export_jsonl(snapshot, buffer);
      const std::string serialized = buffer.str();
      ok = atomic_write_file(path_, serialized.data(), serialized.size());
    }

    lock.lock();
    writing_ = false;
    if (ok) {
      ++written_;
      written_metric_->add(1);
    } else {
      ++failures_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace tono::fleet
