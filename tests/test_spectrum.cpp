// Tests for single-tone spectral metrics (SNR/SNDR/THD/ENOB).
#include "src/dsp/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/math_utils.hpp"
#include "src/common/rng.hpp"

namespace tono::dsp {
namespace {

std::vector<double> make_tone(double amp, double freq, double fs, std::size_t n,
                              double noise_rms = 0.0, std::uint64_t seed = 1) {
  tono::Rng rng{seed};
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = amp * std::sin(2.0 * std::numbers::pi * freq * t);
    if (noise_rms > 0.0) x[i] += rng.gaussian(0.0, noise_rms);
  }
  return x;
}

TEST(CoherentFrequency, OddCycleCount) {
  const double f = coherent_frequency(15.625, 1000.0, 8192);
  const double cycles = f * 8192.0 / 1000.0;
  EXPECT_NEAR(cycles, std::round(cycles), 1e-9);
  EXPECT_EQ(static_cast<long long>(std::llround(cycles)) % 2, 1);
  EXPECT_NEAR(f, 15.625, 1.0);
}

TEST(CoherentFrequency, NeverBelowOneCycle) {
  EXPECT_GT(coherent_frequency(0.0001, 1000.0, 1024), 0.0);
}

TEST(AnalyzeTone, FindsFundamental) {
  const double fs = 1000.0;
  const double f = coherent_frequency(50.0, fs, 4096);
  const auto x = make_tone(0.5, f, fs, 4096);
  SpectrumConfig cfg;
  cfg.sample_rate_hz = fs;
  const auto a = analyze_tone(x, cfg);
  EXPECT_NEAR(a.fundamental_hz, f, fs / 4096.0);
}

TEST(AnalyzeTone, AmplitudeIndBfsAccurate) {
  const double fs = 1000.0;
  const double f = coherent_frequency(60.0, fs, 8192);
  for (double amp : {1.0, 0.5, 0.25, 0.1}) {
    const auto x = make_tone(amp, f, fs, 8192);
    SpectrumConfig cfg;
    cfg.sample_rate_hz = fs;
    const auto a = analyze_tone(x, cfg);
    EXPECT_NEAR(a.fundamental_dbfs, 20.0 * std::log10(amp), 0.1) << "amp " << amp;
  }
}

TEST(AnalyzeTone, SnrMatchesInjectedNoise) {
  const double fs = 1000.0;
  const std::size_t n = 16384;
  const double f = coherent_frequency(97.0, fs, n);
  const double amp = 0.5;
  const double noise = 1e-3;
  const auto x = make_tone(amp, f, fs, n, noise);
  SpectrumConfig cfg;
  cfg.sample_rate_hz = fs;
  const auto a = analyze_tone(x, cfg);
  const double expected_snr =
      10.0 * std::log10((amp * amp / 2.0) / (noise * noise));
  EXPECT_NEAR(a.snr_db, expected_snr, 1.0);
}

TEST(AnalyzeTone, WindowChoiceDoesNotChangeSnr) {
  const double fs = 1000.0;
  const std::size_t n = 16384;
  const double f = coherent_frequency(77.0, fs, n);
  const auto x = make_tone(0.5, f, fs, n, 5e-4);
  double snrs[2];
  int i = 0;
  for (auto w : {WindowKind::kHann, WindowKind::kBlackmanHarris4}) {
    SpectrumConfig cfg;
    cfg.sample_rate_hz = fs;
    cfg.window = w;
    snrs[i++] = analyze_tone(x, cfg).snr_db;
  }
  EXPECT_NEAR(snrs[0], snrs[1], 1.0);
}

TEST(AnalyzeTone, DetectsHarmonicDistortion) {
  const double fs = 1000.0;
  const std::size_t n = 8192;
  const double f = coherent_frequency(31.0, fs, n);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double s = std::sin(2.0 * std::numbers::pi * f * t);
    x[i] = 0.5 * s + 0.005 * std::sin(2.0 * std::numbers::pi * 2.0 * f * t) +
           1e-4 * std::sin(2.0 * std::numbers::pi * 7.77 * t);
  }
  SpectrumConfig cfg;
  cfg.sample_rate_hz = fs;
  const auto a = analyze_tone(x, cfg);
  // HD2 = 0.005/0.5 = -40 dB.
  EXPECT_NEAR(a.thd_db, -40.0, 1.0);
  EXPECT_LT(a.sndr_db, a.snr_db + 0.1);
}

TEST(AnalyzeTone, EnobConsistentWithSndr) {
  const double fs = 1000.0;
  const std::size_t n = 8192;
  const double f = coherent_frequency(40.0, fs, n);
  const auto x = make_tone(0.9, f, fs, n, 2e-3);
  SpectrumConfig cfg;
  cfg.sample_rate_hz = fs;
  const auto a = analyze_tone(x, cfg);
  EXPECT_NEAR(a.enob_bits, (a.sndr_db - 1.76) / 6.02, 1e-9);
}

TEST(AnalyzeTone, PsdVectorsSized) {
  const auto x = make_tone(0.5, 50.0, 1000.0, 1024);
  SpectrumConfig cfg;
  const auto a = analyze_tone(x, cfg);
  EXPECT_EQ(a.psd_dbfs.size(), 513u);
  EXPECT_EQ(a.freq_hz.size(), 513u);
  EXPECT_DOUBLE_EQ(a.freq_hz[0], 0.0);
}

TEST(AnalyzeTone, RejectsBadRecord) {
  std::vector<double> x(1000, 0.0);  // not a power of two
  SpectrumConfig cfg;
  EXPECT_THROW((void)analyze_tone(x, cfg), std::invalid_argument);
  std::vector<double> tiny(8, 0.0);
  EXPECT_THROW((void)analyze_tone(tiny, cfg), std::invalid_argument);
}

TEST(ClaimBand, EmptySpectrumClaimsNothing) {
  // `center - halfwidth` on an empty spectrum used to underflow std::size_t
  // and index into nothing; the guard must return 0.0 untouched.
  std::vector<double> empty;
  EXPECT_EQ(claim_band(empty, 0, 3), 0.0);
  EXPECT_EQ(claim_band(empty, 100, 0), 0.0);
  EXPECT_TRUE(empty.empty());
}

TEST(ClaimBand, IntegratesAndZeroesTheClaimedBins) {
  std::vector<double> pwr{1.0, 2.0, 4.0, 8.0, 16.0};
  EXPECT_DOUBLE_EQ(claim_band(pwr, 2, 1), 2.0 + 4.0 + 8.0);
  EXPECT_DOUBLE_EQ(pwr[1] + pwr[2] + pwr[3], 0.0);
  EXPECT_DOUBLE_EQ(pwr[0], 1.0);
  EXPECT_DOUBLE_EQ(pwr[4], 16.0);
  // Clamped at both edges; a center beyond the spectrum claims nothing.
  EXPECT_DOUBLE_EQ(claim_band(pwr, 0, 2), 1.0);
  EXPECT_DOUBLE_EQ(claim_band(pwr, 10, 1), 0.0);
}

TEST(AnalyzeTone, DcOffsetDoesNotBecomeFundamental) {
  const double fs = 1000.0;
  const std::size_t n = 4096;
  const double f = coherent_frequency(50.0, fs, n);
  auto x = make_tone(0.1, f, fs, n);
  for (auto& v : x) v += 0.5;  // big DC
  SpectrumConfig cfg;
  cfg.sample_rate_hz = fs;
  const auto a = analyze_tone(x, cfg);
  EXPECT_NEAR(a.fundamental_hz, f, 2.0 * fs / n);
}

TEST(IdealDeltaSigmaSnr, SecondOrderValues) {
  // 2nd-order 1-bit: each doubling of OSR buys 15 dB.
  const double snr64 = ideal_delta_sigma_snr_db(2, 64.0);
  const double snr128 = ideal_delta_sigma_snr_db(2, 128.0);
  EXPECT_NEAR(snr128 - snr64, 15.05, 0.1);
  EXPECT_NEAR(ideal_delta_sigma_snr_db(2, 128.0), 100.2, 0.5);
}

TEST(IdealDeltaSigmaSnr, InputLevelShifts) {
  EXPECT_NEAR(ideal_delta_sigma_snr_db(2, 128.0, -6.0),
              ideal_delta_sigma_snr_db(2, 128.0) - 6.0, 1e-12);
}

TEST(EnobFromSndr, TwelveBitPoint) {
  EXPECT_NEAR(enob_from_sndr(74.0), 12.0, 0.01);
}

// Property sweep: measured SNR tracks injected noise across levels.
class SnrSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SnrSweepTest, TracksInjectedNoise) {
  const double noise = GetParam();
  const double fs = 1000.0;
  const std::size_t n = 16384;
  const double f = coherent_frequency(123.0, fs, n);
  const auto x = make_tone(0.7, f, fs, n, noise, 321);
  SpectrumConfig cfg;
  cfg.sample_rate_hz = fs;
  const auto a = analyze_tone(x, cfg);
  const double expected = 10.0 * std::log10((0.7 * 0.7 / 2.0) / (noise * noise));
  EXPECT_NEAR(a.snr_db, expected, 1.5) << "noise " << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SnrSweepTest,
                         ::testing::Values(1e-4, 3e-4, 1e-3, 3e-3, 1e-2));

}  // namespace
}  // namespace tono::dsp
