file(REMOVE_RECURSE
  "CMakeFiles/test_holddown.dir/test_holddown.cpp.o"
  "CMakeFiles/test_holddown.dir/test_holddown.cpp.o.d"
  "test_holddown"
  "test_holddown.pdb"
  "test_holddown[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_holddown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
