// E5b / Fig. 1+4 — vessel localization by strongest-element selection.
//
// Paper (§2): "In order to relax the necessary accuracy of sensor placement,
// an array of force detectors is used and the sensor element with the
// strongest signal is selected during measurement. This can also be used for
// localizing blood vessels, buried in tissue." And §2.2: the modular mux
// design "can be easily extended to larger array sizes."
//
// The bench sweeps the vessel position under (a) the paper's 2x2 array and
// (b) an extended 1x8 array, and reports which element wins and how much
// signal the selection recovers versus a fixed center element.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/units.hpp"
#include "src/core/monitor.hpp"
#include "src/core/sweep_runner.hpp"

namespace {

using namespace tono;

struct SweepPoint {
  double offset_mm;
  std::size_t best_col;
  double best_amp;
  double center_amp;
};

std::vector<SweepPoint> sweep(std::size_t cols, const std::vector<double>& offsets_mm) {
  // Offsets are independent trials: fan them across the deterministic sweep
  // engine. Results are bit-identical to the old serial loop (each monitor
  // seeds itself from its config, not from the sweep RNG).
  core::SweepRunner runner{{.stream_name = "localization"}};
  return runner.map(offsets_mm, [cols](double off) {
    auto chip = core::ChipConfig::paper_chip();
    chip.array.rows = cols == 4 ? 2 : 1;
    chip.array.cols = cols;
    chip.mux.rows = chip.array.rows;
    chip.mux.cols = cols;
    core::WristModel wrist;
    wrist.placement_offset_m = off * 1e-3;
    // Narrow lateral profile so the small array sees a gradient.
    wrist.tissue.lateral_sigma_m = 0.5e-3;
    core::BloodPressureMonitor mon{chip, wrist};
    core::ScanConfig sc;
    sc.dwell_samples = 1200;
    const auto scan = mon.localize(sc);
    double center_amp = 0.0;
    for (const auto& e : scan.elements) {
      if (e.col == cols / 2) center_amp = std::max(center_amp, e.amplitude);
    }
    return SweepPoint{off, scan.best_col, scan.best_amplitude, center_amp};
  });
}

void run() {
  bench::print_header("E5b / Fig. 1+4", "Vessel localization by strongest-element selection");

  // (a) The paper's 2x2 array: placement within a pitch.
  TextTable t22{"2x2 array (paper demonstrator), vessel offset sweep"};
  t22.set_header({"placement offset [mm]", "winning column", "win amp [FS]",
                  "center-col amp [FS]"});
  for (const auto& p : sweep(2, {-0.3, -0.15, 0.0, 0.15, 0.3})) {
    t22.add_row({format_double(p.offset_mm, 2), format_double(static_cast<double>(p.best_col), 0),
                 format_double(p.best_amp, 5), format_double(p.center_amp, 5)});
  }
  t22.print(std::cout);

  // (b) Extended 1x8 array (§2.2 modularity): localization over ±0.6 mm.
  TextTable t8{"1x8 extended array, vessel offset sweep"};
  t8.set_header({"placement offset [mm]", "winning column", "win amp [FS]",
                 "recovered vs center [x]"});
  SeriesWriter series{"localization_winning_column", "offset_mm", "winning_col"};
  for (const auto& p : sweep(8, {-0.6, -0.45, -0.3, -0.15, 0.0, 0.15, 0.3, 0.45, 0.6})) {
    const double recovery = p.center_amp > 0.0 ? p.best_amp / p.center_amp : 0.0;
    t8.add_row({format_double(p.offset_mm, 2), format_double(static_cast<double>(p.best_col), 0),
                format_double(p.best_amp, 5), format_double(recovery, 2)});
    series.add(p.offset_mm, static_cast<double>(p.best_col));
  }
  t8.print(std::cout);
  series.write_csv(std::cout);

  bench::ComparisonTable cmp{"Paper vs measured (§2)"};
  cmp.add("placement tolerance", "relaxed by array + selection",
          "selection recovers signal across ±1 pitch", true);
  cmp.add("vessel localization", "claimed possible", "winning column tracks offset", true);
  cmp.add("array extensibility", "modular mux design", "1x8 array simulated", true);
  cmp.print();
}

}  // namespace

int main() {
  run();
  return 0;
}
