# Empty compiler generated dependencies file for test_decimation.
# This may be replaced when dependencies are built.
