// capacitor.hpp — deflection-dependent membrane capacitance.
//
// §2.1/Fig. 2: the top electrode (second metal, inside the membrane) moves
// against the fixed polysilicon bottom electrode across the gap opened by the
// sacrificial removal of metal 1. Capacitance is the surface integral of
// ε₀ / (g₀ − w(x, y)) over the electrode, evaluated with 2-D Simpson
// quadrature on the clamped-plate mode shape.
#pragma once

#include <cstddef>

#include "src/mems/plate.hpp"

namespace tono::mems {

struct CapacitorGeometry {
  /// Zero-deflection electrode gap (sacrificial metal-1 + spacing) [m].
  double gap_m{0.9e-6};
  /// Electrode is a centered square covering this fraction of the membrane
  /// side (1.0 = full membrane).
  double electrode_coverage{0.9};
  /// Fixed parasitic (wiring, fringe) capacitance added to the plate term.
  double parasitic_f{15e-15};
  /// Relative permittivity of the gap medium (air/vacuum after release).
  double gap_permittivity{1.0};
};

class MembraneCapacitor {
 public:
  MembraneCapacitor(SquarePlate plate, CapacitorGeometry geometry,
                    std::size_t quadrature_points = 32);

  /// Capacitance at a given center deflection [F]. Deflection toward the
  /// bottom electrode (negative w₀ in our sign convention, where positive
  /// pressure from the top pushes the membrane *toward* the substrate)
  /// increases capacitance. Deflections beyond 95 % of the gap are clamped
  /// (mechanical touch-down).
  [[nodiscard]] double capacitance_at_deflection(double w0_m) const noexcept;

  /// Capacitance under a uniform net pressure [F]. Positive pressure presses
  /// the membrane toward the bottom electrode (gap shrinks, C grows).
  [[nodiscard]] double capacitance_at_pressure(double pressure_pa) const noexcept;

  /// Zero-pressure (rest) capacitance [F], including parasitics.
  [[nodiscard]] double rest_capacitance() const noexcept;

  /// Small-signal sensitivity dC/dp at a bias pressure [F/Pa] (central
  /// difference with a pressure step small relative to the bias scale).
  [[nodiscard]] double sensitivity_at(double bias_pressure_pa) const noexcept;

  /// Pull-in voltage estimate [V] from the lumped parallel-plate criterion
  /// V_pi = sqrt(8 k_lump g³ / (27 ε A)), with k_lump the equivalent lumped
  /// stiffness p·A/w₀ of the distributed plate.
  [[nodiscard]] double pull_in_voltage() const noexcept;

  /// Center deflection at which the membrane touches the bottom electrode.
  [[nodiscard]] double touch_down_deflection() const noexcept;

  [[nodiscard]] const SquarePlate& plate() const noexcept { return plate_; }
  [[nodiscard]] const CapacitorGeometry& geometry() const noexcept { return geometry_; }

 private:
  SquarePlate plate_;
  CapacitorGeometry geometry_;
  std::size_t quad_n_;
};

}  // namespace tono::mems
