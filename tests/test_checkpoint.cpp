// Tests for checkpoint/restore (src/common/checkpoint.hpp and the
// serialize/restore pairs layered on it): framing primitives, loud failure
// on truncated/corrupted/mismatched blobs, mid-stream bit-identity of the
// RNG (including the Marsaglia spare cache) and the pink-noise rows, and
// full PatientSession resume — clean, faulty and link-routed sessions all
// continue bit-identically to never having stopped. The Checkpoint suite
// runs under the CI TSan job.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/pink_noise.hpp"
#include "src/common/rng.hpp"
#include "src/fleet/fleet_scheduler.hpp"

namespace {

using namespace tono;
using fleet::FaultEvent;
using fleet::FaultKind;
using fleet::FaultPlanConfig;
using fleet::FleetConfig;
using fleet::FleetEvent;
using fleet::FleetScheduler;
using fleet::PatientSession;
using fleet::SessionConfig;
using fleet::WardAggregator;

TEST(Checkpoint, PrimitivesRoundTripExactly) {
  CheckpointWriter out;
  out.section("primitives");
  out.u8(0xAB);
  out.u16(0xBEEF);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.i64(-42);
  out.f64(-0.1);  // not exactly representable; must round-trip by bits
  out.boolean(true);
  out.size(7);
  out.str("hello ward");
  const auto blob = out.finish(3);

  CheckpointReader in{blob};
  in.require_version(3);
  in.section("primitives");
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u16(), 0xBEEF);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_EQ(in.f64(), -0.1);
  EXPECT_TRUE(in.boolean());
  EXPECT_EQ(in.size(), 7u);
  EXPECT_EQ(in.str(), "hello ward");
  EXPECT_NO_THROW(in.expect_end());
}

TEST(Checkpoint, VersionSectionAndTrailingBytesAreEnforced) {
  CheckpointWriter out;
  out.section("alpha");
  out.u64(1);
  const auto blob = out.finish(1);
  {
    CheckpointReader in{blob};
    EXPECT_THROW(in.require_version(2), CheckpointError);
  }
  {
    CheckpointReader in{blob};
    EXPECT_THROW(in.section("beta"), CheckpointError);
  }
  {
    CheckpointReader in{blob};
    in.section("alpha");
    EXPECT_THROW(in.expect_end(), CheckpointError);  // u64 still unread
  }
  {
    CheckpointReader in{blob};
    in.section("alpha");
    (void)in.u64();
    EXPECT_THROW((void)in.u64(), CheckpointError);  // reading past the end
  }
}

/// A representative blob for the fuzz tests: RNG state mid-stream.
std::vector<std::uint8_t> rng_blob() {
  Rng rng{0xFEEDFACEull};
  for (int i = 0; i < 7; ++i) (void)rng.gaussian();
  CheckpointWriter out;
  rng.serialize(out);
  return out.finish(1);
}

TEST(Checkpoint, TruncationAtEveryLengthFailsLoudly) {
  const auto blob = rng_blob();
  for (std::size_t n = 0; n < blob.size(); ++n) {
    std::vector<std::uint8_t> cut{blob.begin(), blob.begin() + n};
    // Every truncation must be caught at open (header/length validation) —
    // never parsed into a plausible-but-wrong state.
    EXPECT_THROW(CheckpointReader{cut}, CheckpointError)
        << "truncation to " << n << " bytes was accepted";
  }
}

TEST(Checkpoint, CorruptingAnyByteFailsLoudly) {
  const auto blob = rng_blob();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::vector<std::uint8_t> bad = blob;
    bad[i] ^= 0xFF;
    // A flip lands in the magic, version, length or checksum fields (frame
    // validation) or in the payload (checksum mismatch). Either way the
    // full open-validate-restore sequence must throw.
    EXPECT_THROW(
        {
          CheckpointReader in{bad};
          in.require_version(1);
          Rng victim{1};
          victim.restore(in);
          in.expect_end();
        },
        CheckpointError)
        << "corrupting byte " << i << " was accepted";
  }
}

TEST(Checkpoint, RngResumesMidMarsagliaBitIdentically) {
  Rng original{12345};
  // Odd number of gaussian draws: the Marsaglia polar method generates
  // pairs, so a spare value is cached — the classic state a naive
  // serializer drops.
  for (int i = 0; i < 5; ++i) (void)original.gaussian();

  CheckpointWriter out;
  original.serialize(out);
  const auto blob = out.finish(1);

  Rng restored{999};  // deliberately different seed; blob must win
  CheckpointReader in{blob};
  in.require_version(1);
  restored.restore(in);
  in.expect_end();

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original.gaussian(), restored.gaussian()) << "draw " << i;
    EXPECT_EQ(original.next_u64(), restored.next_u64()) << "draw " << i;
  }
}

TEST(Checkpoint, PinkNoiseResumesMidRowBitIdentically) {
  PinkNoise original{Rng{777}, 12};
  // 1000 is not a multiple of any high octave period: several rows hold
  // live values and the counter sits mid-cycle.
  for (int i = 0; i < 1000; ++i) (void)original.next();

  CheckpointWriter out;
  original.serialize(out);
  const auto blob = out.finish(1);

  PinkNoise restored{Rng{1}, 12};
  CheckpointReader in{blob};
  in.require_version(1);
  restored.restore(in);
  in.expect_end();

  for (int i = 0; i < 4096; ++i) {
    EXPECT_EQ(original.next(), restored.next()) << "sample " << i;
  }
}

TEST(Checkpoint, PinkNoiseRejectsOctaveCountMismatch) {
  PinkNoise original{Rng{777}, 12};
  CheckpointWriter out;
  original.serialize(out);
  const auto blob = out.finish(1);

  PinkNoise other{Rng{777}, 16};  // different construction config
  CheckpointReader in{blob};
  in.require_version(1);
  EXPECT_THROW(other.restore(in), CheckpointError);
}

/// Everything a session publishes, for bit-exact comparison.
struct Stream {
  std::vector<std::int16_t> codes;
  std::vector<FleetEvent> events;
};

void drain_into(PatientSession& session, Stream* out) {
  session.codes().pop_all(out->codes);
  session.events().pop_all(out->events);
}

void expect_streams_equal(const Stream& a, const Stream& b, const char* what) {
  EXPECT_EQ(a.codes, b.codes) << what << ": code streams diverged";
  ASSERT_EQ(a.events.size(), b.events.size()) << what << ": event counts diverged";
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << what << " event " << i;
    EXPECT_EQ(a.events[i].time_s, b.events[i].time_s) << what << " event " << i;
    EXPECT_EQ(a.events[i].value_a, b.events[i].value_a) << what << " event " << i;
    EXPECT_EQ(a.events[i].value_b, b.events[i].value_b) << what << " event " << i;
    EXPECT_EQ(a.events[i].flag, b.events[i].flag) << what << " event " << i;
  }
}

/// Steps `session` in 64-frame batches until `until_s`, draining after every
/// step; throwing steps are retried (the solo analogue of readmission).
void run_to(PatientSession& session, double until_s, Stream* out) {
  while (session.stream_time_s() < until_s) {
    try {
      session.step(64);
    } catch (const std::exception&) {
      continue;
    }
    drain_into(session, out);
  }
  drain_into(session, out);
}

SessionConfig seeded_config(std::uint32_t id) {
  WardAggregator ward;
  FleetScheduler seeder{FleetConfig{}, ward};
  SessionConfig config;
  config.seed = seeder.session_seed(id);
  return config;
}

TEST(Checkpoint, SessionResumeIsBitIdenticalToUninterrupted) {
  const SessionConfig config = seeded_config(0);

  Stream uninterrupted;
  {
    PatientSession session{0, config};
    run_to(session, 1.0, &uninterrupted);
  }

  // Same session, suspended at a mid-run batch barrier and resumed into a
  // freshly constructed object — the process-restart path.
  Stream resumed;
  std::vector<std::uint8_t> blob;
  {
    PatientSession first_half{0, config};
    run_to(first_half, 0.5, &resumed);
    blob = first_half.checkpoint();
  }
  {
    PatientSession second_half{0, config};
    second_half.restore_checkpoint(blob);
    EXPECT_TRUE(second_half.admitted());
    EXPECT_GT(second_half.frames_produced(), 0u);
    run_to(second_half, 1.0, &resumed);
  }

  ASSERT_FALSE(uninterrupted.codes.empty());
  expect_streams_equal(uninterrupted, resumed, "clean session");
}

TEST(Checkpoint, FaultySessionResumeIsBitIdenticalIncludingLinkPath) {
  // A generated plan with every fault kind: the checkpoint must carry the
  // fault cursor, throw budgets, contact/burst windows, the re-routed array
  // state and the link encoder/decoder/injector mid-burst.
  SessionConfig config = seeded_config(1);
  config.fault_plan.contact_loss_events = 1;
  config.fault_plan.link_bursts = 1;
  config.fault_plan.element_faults = 1;
  config.fault_plan.min_onset_s = 0.10;
  config.fault_plan.horizon_s = 0.80;

  Stream uninterrupted;
  {
    PatientSession session{1, config};
    run_to(session, 1.0, &uninterrupted);
    EXPECT_FALSE(session.fault_log().empty());
  }

  Stream resumed;
  std::vector<std::uint8_t> blob;
  std::vector<std::string> log_at_split;
  {
    PatientSession first_half{1, config};
    run_to(first_half, 0.5, &resumed);
    blob = first_half.checkpoint();
    log_at_split = first_half.fault_log();
  }
  {
    PatientSession second_half{1, config};
    second_half.restore_checkpoint(blob);
    EXPECT_EQ(second_half.fault_log(), log_at_split);
    run_to(second_half, 1.0, &resumed);
  }

  ASSERT_FALSE(uninterrupted.codes.empty());
  expect_streams_equal(uninterrupted, resumed, "faulty session");
}

TEST(Checkpoint, NotYetAdmittedSessionRoundTripsPipelineState) {
  // A session quarantined inside admit() has already advanced its pipeline
  // (scan + calibration block). The blob must carry that, so a restored
  // session retries admission from the same pipeline position — not from
  // zero (see PatientSession::serialize).
  SessionConfig config = seeded_config(2);
  config.calibration_window_s = 0.25;  // far too short: admit() throws

  PatientSession session{2, config};
  EXPECT_THROW(session.admit(), std::exception);
  EXPECT_FALSE(session.admitted());
  const double clock_after_failed_admit = session.monitor().pipeline().time_s();
  EXPECT_GT(clock_after_failed_admit, 0.0);

  const auto blob = session.checkpoint();
  PatientSession restored{2, config};
  restored.restore_checkpoint(blob);
  EXPECT_FALSE(restored.admitted());
  EXPECT_EQ(restored.monitor().pipeline().time_s(), clock_after_failed_admit);
}

TEST(Checkpoint, SessionRestoreRejectsWrongIdAndWrongShape) {
  const SessionConfig config = seeded_config(3);
  PatientSession session{3, config};
  session.step(64);
  Stream sink;
  drain_into(session, &sink);  // restore requires quiescent rings
  const auto blob = session.checkpoint();

  {
    PatientSession other{4, seeded_config(4)};
    EXPECT_THROW(other.restore_checkpoint(blob), CheckpointError);
  }
  {
    // Different fault-plan shape (event count) than the blob was taken from.
    SessionConfig faulty = config;
    faulty.manual_faults.push_back(FaultEvent{
        .kind = FaultKind::kContactLoss, .at_s = 0.5, .duration_s = 0.1});
    PatientSession other{3, std::move(faulty)};
    EXPECT_THROW(other.restore_checkpoint(blob), CheckpointError);
  }
  {
    // Unsupported schema version.
    CheckpointWriter out;
    session.serialize(out);
    const auto wrong = out.finish(fleet::kSessionCheckpointVersion + 1);
    PatientSession other{3, config};
    EXPECT_THROW(other.restore_checkpoint(wrong), CheckpointError);
  }
}

TEST(Checkpoint, SessionRestoreRejectsNonQuiescentRings) {
  const SessionConfig config = seeded_config(5);
  PatientSession session{5, config};
  session.step(64);  // codes still in the ring: not a barrier state
  const auto blob = session.checkpoint();
  PatientSession restored{5, config};
  EXPECT_THROW(restored.restore_checkpoint(blob), CheckpointError);
}

}  // namespace
