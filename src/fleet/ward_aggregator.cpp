#include "src/fleet/ward_aggregator.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "src/common/checkpoint.hpp"

namespace tono::fleet {
namespace {

/// JSON string escape (labels and notes are simulator-generated, but a
/// quarantine reason carries arbitrary exception text). Control characters
/// below 0x20 without a shorthand become \u00XX — dropping them, as this
/// once did, silently corrupts quarantine reasons in snapshots.
std::string json_escape(const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u >= 0x20) {
          out += c;
        } else {
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xF];
        }
      }
    }
  }
  return out;
}

}  // namespace

std::string to_string(WardAlarmLevel level) {
  switch (level) {
    case WardAlarmLevel::kNotice: return "notice";
    case WardAlarmLevel::kUrgent: return "urgent";
    case WardAlarmLevel::kCritical: return "critical";
  }
  return "unknown";
}

WardAggregator::WardAggregator(WardConfig config) : config_(config) {
  auto& reg = metrics::Registry::global();
  codes_metric_ = &reg.counter(metrics::names::kWardCodesConsumed);
  events_metric_ = &reg.counter(metrics::names::kWardEventsConsumed);
  drops_metric_ = &reg.counter(metrics::names::kFleetRingDrops);
  blocks_metric_ = &reg.counter(metrics::names::kFleetRingBlocks);
  escalations_metric_ = &reg.counter(metrics::names::kWardEscalations);
  alarms_active_gauge_ = &reg.gauge(metrics::names::kWardAlarmsActive);
}

void WardAggregator::attach(PatientSession& session, std::string label) {
  WardSessionState state;
  state.id = session.id();
  state.label = label.empty() ? "session-" + std::to_string(session.id())
                              : std::move(label);
  sessions_.push_back(std::move(state));
  entries_.push_back(Entry{.codes = &session.codes(),
                           .events = &session.events(),
                           .output_rate_hz = session.output_rate_hz(),
                           .code_log = {}});
}

void WardAggregator::reattach(PatientSession& session) {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].id != session.id()) continue;
    entries_[i].codes = &session.codes();
    entries_[i].events = &session.events();
    entries_[i].output_rate_hz = session.output_rate_hz();
    return;
  }
  throw std::out_of_range{"WardAggregator::reattach: unknown session id"};
}

void WardAggregator::set_lifecycle(std::uint32_t session_id, SessionState state,
                                   std::string note) {
  for (auto& s : sessions_) {
    if (s.id == session_id) {
      if (s.lifecycle == SessionState::kRecovering && state == SessionState::kRunning) {
        // A completed readmission; the stale quarantine reason comes off the
        // snapshot (the fault log keeps the history).
        ++s.recoveries;
        ++recoveries_;
        s.note.clear();
      }
      if (state == SessionState::kRetired && s.lifecycle != SessionState::kRetired) {
        ++retired_;
      }
      s.lifecycle = state;
      if (!note.empty()) s.note = std::move(note);
      return;
    }
  }
}

void WardAggregator::note_fault(std::uint32_t session_id, std::string entry) {
  for (auto& s : sessions_) {
    if (s.id == session_id) {
      s.fault_log.push_back(std::move(entry));
      return;
    }
  }
}

const WardSessionState* WardAggregator::session(std::uint32_t session_id) const {
  for (const auto& s : sessions_) {
    if (s.id == session_id) return &s;
  }
  return nullptr;
}

std::size_t WardAggregator::drain_once() {
  std::size_t consumed = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    WardSessionState& state = sessions_[i];

    code_scratch_.clear();
    const std::size_t n_codes = entry.codes->pop_all(code_scratch_);
    if (n_codes > 0) {
      state.codes += n_codes;
      state.last_code = code_scratch_.back();
      if (config_.record_codes) {
        entry.code_log.insert(entry.code_log.end(), code_scratch_.begin(),
                              code_scratch_.end());
      }
      codes_consumed_ += n_codes;
      codes_metric_->add(n_codes);
    }

    event_scratch_.clear();
    const std::size_t n_events = entry.events->pop_all(event_scratch_);
    for (const auto& e : event_scratch_) consume_event_(state, e);
    if (n_events > 0) {
      state.events += n_events;
      events_consumed_ += n_events;
      events_metric_->add(n_events);
    }

    // Mirror ring-loss accounting; counters in the registry advance by the
    // delta since the last drain.
    const std::uint64_t code_drops = entry.codes->dropped();
    const std::uint64_t event_drops = entry.events->dropped();
    const std::uint64_t blocks =
        entry.codes->block_events() + entry.events->block_events();
    drops_metric_->add((code_drops - state.code_drops) +
                       (event_drops - state.event_drops));
    blocks_metric_->add(blocks - state.block_events);
    state.code_drops = code_drops;
    state.event_drops = event_drops;
    state.block_events = blocks;

    consumed += n_codes + n_events;
  }
  return consumed;
}

void WardAggregator::settle() {
  run_escalations_();
  alarms_active_gauge_->set(static_cast<double>(alarms_active()));
}

void WardAggregator::consume_event_(WardSessionState& state, const FleetEvent& event) {
  switch (event.kind) {
    case FleetEventKind::kBeat:
      ++state.beats;
      state.last_systolic_mmhg = event.value_a;
      state.last_diastolic_mmhg = event.value_b;
      state.last_beat_s = event.time_s;
      break;
    case FleetEventKind::kQuality:
      state.last_sqi = event.value_a;
      state.sqi_usable = event.flag;
      break;
    case FleetEventKind::kAlarm:
      if (event.flag) {
        WardAlarm alarm{.session_id = event.session_id,
                        .kind = event.alarm_kind,
                        .level = WardAlarmLevel::kNotice,
                        .raised_s = event.time_s,
                        .value = event.value_a,
                        .active = true};
        // Multi-vital deterioration: enough distinct kinds active at once
        // on one patient escalates straight to critical.
        std::size_t active_kinds = 1;
        for (const auto& a : alarm_queue_) {
          if (a.active && a.session_id == event.session_id && a.kind != event.alarm_kind) {
            ++active_kinds;
          }
        }
        if (active_kinds >= config_.critical_active_kinds) {
          alarm.level = WardAlarmLevel::kCritical;
          ++escalations_;
          escalations_metric_->add(1);
        }
        alarm_queue_.push_back(alarm);
        ++state.alarms_active;
      } else {
        for (auto it = alarm_queue_.rbegin(); it != alarm_queue_.rend(); ++it) {
          if (it->active && it->session_id == event.session_id &&
              it->kind == event.alarm_kind) {
            it->active = false;
            break;
          }
        }
        if (state.alarms_active > 0) --state.alarms_active;
      }
      break;
  }
}

void WardAggregator::run_escalations_() {
  for (auto& alarm : alarm_queue_) {
    if (!alarm.active || alarm.level != WardAlarmLevel::kNotice) continue;
    // Session stream time inferred from consumed codes — the aggregator
    // never reads session objects while workers may be stepping them.
    std::size_t index = 0;
    while (index < sessions_.size() && sessions_[index].id != alarm.session_id) ++index;
    if (index == sessions_.size()) continue;
    const double stream_s =
        static_cast<double>(sessions_[index].codes) / entries_[index].output_rate_hz;
    if (stream_s - alarm.raised_s >= config_.escalate_after_s) {
      alarm.level = WardAlarmLevel::kUrgent;
      ++escalations_;
      escalations_metric_->add(1);
    }
  }
}

std::size_t WardAggregator::alarms_active() const noexcept {
  std::size_t n = 0;
  for (const auto& a : alarm_queue_) {
    if (a.active) ++n;
  }
  return n;
}

std::uint64_t WardAggregator::total_drops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.code_drops + s.event_drops;
  return n;
}

std::uint64_t WardAggregator::event_drops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.event_drops;
  return n;
}

std::uint64_t WardAggregator::total_blocks() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.block_events;
  return n;
}

WardSnapshot WardAggregator::snapshot() const {
  WardSnapshot snap;
  snap.sessions = sessions_;
  snap.codes_consumed = codes_consumed_;
  snap.events_consumed = events_consumed_;
  snap.alarms_active = alarms_active();
  snap.alarms_total = alarm_queue_.size();
  snap.escalations = escalations_;
  snap.drops = total_drops();
  snap.event_drops = event_drops();
  snap.recoveries = recoveries_;
  snap.retired = retired_;
  return snap;
}

WardSnapshot merge_snapshots(std::vector<WardSnapshot> parts) {
  WardSnapshot out;
  for (auto& part : parts) {
    out.sessions.insert(out.sessions.end(),
                        std::make_move_iterator(part.sessions.begin()),
                        std::make_move_iterator(part.sessions.end()));
    out.codes_consumed += part.codes_consumed;
    out.events_consumed += part.events_consumed;
    out.alarms_active += part.alarms_active;
    out.alarms_total += part.alarms_total;
    out.escalations += part.escalations;
    out.drops += part.drops;
    out.event_drops += part.event_drops;
    out.recoveries += part.recoveries;
    out.retired += part.retired;
  }
  // Global session-id order: round-robin shard assignment interleaves ids,
  // so a merged snapshot re-sorts to match the equivalent single-ward run.
  std::sort(out.sessions.begin(), out.sessions.end(),
            [](const WardSessionState& a, const WardSessionState& b) {
              return a.id < b.id;
            });
  return out;
}

const std::vector<std::int16_t>& WardAggregator::recorded_codes(
    std::uint32_t session_id) const {
  if (!config_.record_codes) {
    throw std::logic_error{"WardAggregator: code recording is disabled"};
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].id == session_id) return entries_[i].code_log;
  }
  throw std::out_of_range{"WardAggregator: unknown session id"};
}

void WardAggregator::export_jsonl(std::ostream& os) const {
  fleet::export_jsonl(snapshot(), os);
}

void WardAggregator::record_validation(core::SessionValidationRecord record) {
  validation_records_.push_back(std::move(record));
}

std::vector<core::CohortValidation> WardAggregator::validation_by_cohort() const {
  return core::aggregate_by_cohort(validation_records_);
}

void WardAggregator::export_validation_jsonl(std::ostream& os) const {
  core::export_validation_jsonl(validation_records_, os);
}

namespace {

void serialize_session_state(CheckpointWriter& out, const WardSessionState& s) {
  out.u32(s.id);
  out.str(s.label);
  out.u8(static_cast<std::uint8_t>(s.lifecycle));
  out.str(s.note);
  out.u64(s.codes);
  out.u64(s.events);
  out.u64(s.beats);
  out.i64(s.last_code);
  out.f64(s.last_systolic_mmhg);
  out.f64(s.last_diastolic_mmhg);
  out.f64(s.last_beat_s);
  out.f64(s.last_sqi);
  out.boolean(s.sqi_usable);
  out.u64(s.code_drops);
  out.u64(s.event_drops);
  out.u64(s.block_events);
  out.size(s.alarms_active);
  out.u64(s.recoveries);
  out.size(s.fault_log.size());
  for (const auto& line : s.fault_log) out.str(line);
}

void restore_session_state(CheckpointReader& in, WardSessionState& s) {
  const std::uint32_t id = in.u32();
  if (id != s.id) {
    throw CheckpointError{"ward checkpoint session id " + std::to_string(id) +
                          " does not match attached id " + std::to_string(s.id)};
  }
  s.label = in.str();
  const std::uint8_t lifecycle = in.u8();
  if (lifecycle > static_cast<std::uint8_t>(SessionState::kRetired)) {
    throw CheckpointError{"ward checkpoint has unknown lifecycle state"};
  }
  s.lifecycle = static_cast<SessionState>(lifecycle);
  s.note = in.str();
  s.codes = in.u64();
  s.events = in.u64();
  s.beats = in.u64();
  s.last_code = static_cast<std::int16_t>(in.i64());
  s.last_systolic_mmhg = in.f64();
  s.last_diastolic_mmhg = in.f64();
  s.last_beat_s = in.f64();
  s.last_sqi = in.f64();
  s.sqi_usable = in.boolean();
  s.code_drops = in.u64();
  s.event_drops = in.u64();
  s.block_events = in.u64();
  s.alarms_active = in.size();
  s.recoveries = in.u64();
  s.fault_log.resize(in.size());
  for (auto& line : s.fault_log) line = in.str();
}

}  // namespace

void WardAggregator::serialize(CheckpointWriter& out) const {
  out.section("ward_aggregator");
  out.size(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    serialize_session_state(out, sessions_[i]);
    out.boolean(config_.record_codes);
    if (config_.record_codes) {
      out.size(entries_[i].code_log.size());
      for (std::int16_t code : entries_[i].code_log) out.i64(code);
    }
  }
  out.size(alarm_queue_.size());
  for (const auto& a : alarm_queue_) {
    out.u32(a.session_id);
    out.u8(static_cast<std::uint8_t>(a.kind));
    out.u8(static_cast<std::uint8_t>(a.level));
    out.f64(a.raised_s);
    out.f64(a.value);
    out.boolean(a.active);
  }
  out.u64(escalations_);
  out.u64(recoveries_);
  out.u64(retired_);
  out.u64(codes_consumed_);
  out.u64(events_consumed_);
}

void WardAggregator::restore(CheckpointReader& in) {
  in.section("ward_aggregator");
  if (in.size() != sessions_.size()) {
    throw CheckpointError{"ward checkpoint session count mismatch"};
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    restore_session_state(in, sessions_[i]);
    if (in.boolean() != config_.record_codes) {
      throw CheckpointError{"ward checkpoint record_codes mismatch"};
    }
    if (config_.record_codes) {
      entries_[i].code_log.resize(in.size());
      for (auto& code : entries_[i].code_log) {
        code = static_cast<std::int16_t>(in.i64());
      }
    }
  }
  alarm_queue_.resize(in.size());
  for (auto& a : alarm_queue_) {
    a.session_id = in.u32();
    const std::uint8_t kind = in.u8();
    if (kind > static_cast<std::uint8_t>(core::AlarmKind::kRateHigh)) {
      throw CheckpointError{"ward checkpoint has unknown alarm kind"};
    }
    a.kind = static_cast<core::AlarmKind>(kind);
    const std::uint8_t level = in.u8();
    if (level > static_cast<std::uint8_t>(WardAlarmLevel::kCritical)) {
      throw CheckpointError{"ward checkpoint has unknown alarm level"};
    }
    a.level = static_cast<WardAlarmLevel>(level);
    a.raised_s = in.f64();
    a.value = in.f64();
    a.active = in.boolean();
  }
  escalations_ = in.u64();
  recoveries_ = in.u64();
  retired_ = in.u64();
  codes_consumed_ = in.u64();
  events_consumed_ = in.u64();
}

void export_jsonl(const WardSnapshot& snapshot, std::ostream& os) {
  for (const auto& s : snapshot.sessions) {
    os << "{\"type\":\"session\",\"id\":" << s.id << ",\"label\":\""
       << json_escape(s.label) << "\",\"state\":\"" << to_string(s.lifecycle)
       << "\",\"codes\":" << s.codes << ",\"beats\":" << s.beats
       << ",\"systolic_mmhg\":" << s.last_systolic_mmhg
       << ",\"diastolic_mmhg\":" << s.last_diastolic_mmhg << ",\"sqi\":" << s.last_sqi
       << ",\"sqi_usable\":" << (s.sqi_usable ? "true" : "false")
       << ",\"alarms_active\":" << s.alarms_active << ",\"code_drops\":" << s.code_drops
       << ",\"event_drops\":" << s.event_drops << ",\"blocks\":" << s.block_events;
    // Fault-plan fields only appear once the machinery engaged, keeping
    // clean-run snapshots byte-identical to pre-fault-plan builds.
    if (s.recoveries > 0) os << ",\"recoveries\":" << s.recoveries;
    if (!s.fault_log.empty()) {
      os << ",\"fault_log\":[";
      for (std::size_t i = 0; i < s.fault_log.size(); ++i) {
        if (i > 0) os << ',';
        os << '"' << json_escape(s.fault_log[i]) << '"';
      }
      os << ']';
    }
    if (!s.note.empty()) os << ",\"note\":\"" << json_escape(s.note) << "\"";
    os << "}\n";
  }
  os << "{\"type\":\"ward\",\"sessions\":" << snapshot.sessions.size()
     << ",\"codes_consumed\":" << snapshot.codes_consumed
     << ",\"events_consumed\":" << snapshot.events_consumed
     << ",\"alarms_active\":" << snapshot.alarms_active
     << ",\"alarms_total\":" << snapshot.alarms_total
     << ",\"escalations\":" << snapshot.escalations
     << ",\"drops\":" << snapshot.drops
     << ",\"event_drops\":" << snapshot.event_drops;
  if (snapshot.recoveries > 0 || snapshot.retired > 0) {
    os << ",\"recoveries\":" << snapshot.recoveries
       << ",\"retired\":" << snapshot.retired;
  }
  os << "}\n";
}

}  // namespace tono::fleet
