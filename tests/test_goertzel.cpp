// Tests for the single-bin Goertzel DFT.
#include "src/dsp/goertzel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dsp/fft.hpp"

namespace tono::dsp {
namespace {

std::vector<double> tone(double amp, double f, double fs, std::size_t n,
                         double phase = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * f * i / fs + phase);
  }
  return x;
}

TEST(Goertzel, RecoversToneAmplitude) {
  const double fs = 1000.0;
  const std::size_t n = 2000;
  const double f = 50.0;  // whole cycles in the record
  for (double amp : {0.1, 1.0, 3.5}) {
    const auto x = tone(amp, f, fs, n);
    EXPECT_NEAR(goertzel_amplitude(x, f, fs), amp, 1e-9 * amp + 1e-12);
  }
}

TEST(Goertzel, PhaseInvariantAmplitude) {
  const double fs = 1000.0;
  const auto a = tone(1.0, 40.0, fs, 2000, 0.0);
  const auto b = tone(1.0, 40.0, fs, 2000, 1.234);
  EXPECT_NEAR(goertzel_amplitude(a, 40.0, fs), goertzel_amplitude(b, 40.0, fs), 1e-9);
}

TEST(Goertzel, RejectsOffFrequency) {
  const double fs = 1000.0;
  const auto x = tone(1.0, 50.0, fs, 2000);
  EXPECT_LT(goertzel_amplitude(x, 125.0, fs), 0.01);
}

TEST(Goertzel, MatchesFftBin) {
  tono::Rng rng{17};
  const std::size_t n = 1024;
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian();
  const auto spec = fft_real(x);
  const double fs = 1000.0;
  for (std::size_t k : {3u, 17u, 100u, 400u}) {
    const double f = fs * static_cast<double>(k) / static_cast<double>(n);
    const auto g = goertzel(x, f, fs);
    EXPECT_NEAR(std::abs(g), std::abs(spec[k]), 1e-6 * (1.0 + std::abs(spec[k])))
        << "bin " << k;
  }
}

TEST(Goertzel, WorksOnNonPowerOfTwoLengths) {
  const double fs = 997.0;  // awkward rate
  const std::size_t n = 1777;
  const double f = fs * 30.0 / static_cast<double>(n);  // whole cycles
  const auto x = tone(0.8, f, fs, n);
  EXPECT_NEAR(goertzel_amplitude(x, f, fs), 0.8, 1e-6);
}

TEST(Goertzel, EmptyAndErrors) {
  EXPECT_DOUBLE_EQ(goertzel_amplitude({}, 10.0, 1000.0), 0.0);
  const std::vector<double> x(10, 0.0);
  EXPECT_THROW((void)goertzel(x, 10.0, 0.0), std::invalid_argument);
}

TEST(Goertzel, DcBin) {
  std::vector<double> x(500, 2.0);
  const auto g = goertzel(x, 0.0, 1000.0);
  EXPECT_NEAR(std::abs(g), 1000.0, 1e-6);  // N·mean
}

}  // namespace
}  // namespace tono::dsp
