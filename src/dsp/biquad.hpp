// biquad.hpp — IIR biquad sections and Butterworth designs.
//
// Used on the sample-rate side of the system: baseline-wander removal and
// beat-detection band-limiting of the 1 kS/s blood-pressure stream.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tono {
class CheckpointReader;
class CheckpointWriter;
}  // namespace tono

namespace tono::dsp {

/// Direct-form-II-transposed biquad: y = b0 x + s1; s1 = b1 x - a1 y + s2;
/// s2 = b2 x - a2 y. Coefficients are normalized (a0 = 1).
class Biquad {
 public:
  Biquad(double b0, double b1, double b2, double a1, double a2) noexcept
      : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

  [[nodiscard]] double push(double x) noexcept;
  void reset() noexcept { s1_ = s2_ = 0.0; }

  /// Magnitude response at frequency f for sample rate fs.
  [[nodiscard]] double magnitude_at(double freq_hz, double sample_rate_hz) const noexcept;

  /// Second-order Butterworth lowpass (bilinear transform).
  [[nodiscard]] static Biquad lowpass(double cutoff_hz, double sample_rate_hz);
  /// Second-order Butterworth highpass.
  [[nodiscard]] static Biquad highpass(double cutoff_hz, double sample_rate_hz);
  /// Band-pass, constant 0 dB peak gain, quality factor q.
  [[nodiscard]] static Biquad bandpass(double center_hz, double q, double sample_rate_hz);
  /// Notch at center_hz with quality factor q.
  [[nodiscard]] static Biquad notch(double center_hz, double q, double sample_rate_hz);

  /// Checkpointing: the two DF2T state registers (coefficients are design
  /// constants and are not serialized).
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double s1_{0.0}, s2_{0.0};
};

/// Cascade of biquads applied in sequence.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<Biquad> sections) : sections_(std::move(sections)) {}

  void add(Biquad section) { sections_.push_back(section); }

  [[nodiscard]] double push(double x) noexcept;
  [[nodiscard]] std::vector<double> process(std::span<const double> xs);
  void reset() noexcept;

  [[nodiscard]] std::size_t section_count() const noexcept { return sections_.size(); }
  [[nodiscard]] double magnitude_at(double freq_hz, double sample_rate_hz) const noexcept;

  /// Checkpointing: every section's state; the section count is verified.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  std::vector<Biquad> sections_;
};

}  // namespace tono::dsp
