// Tests for Welch PSD estimation and Allan deviation.
#include "src/dsp/noise_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/rng.hpp"

namespace tono::dsp {
namespace {

std::vector<double> white_noise(double sigma, std::size_t n, std::uint64_t seed = 1) {
  tono::Rng rng{seed};
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian(0.0, sigma);
  return x;
}

TEST(WelchPsd, WhiteNoiseDensityIsFlatAndCorrect) {
  const double fs = 1000.0;
  const double sigma = 0.5;
  const auto x = white_noise(sigma, 1 << 17);
  const auto psd = welch_psd(x, fs);
  // Expected one-sided density: σ²/(fs/2).
  const double expected = sigma * sigma / (fs / 2.0);
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 2; k + 2 < psd.psd.size(); ++k) {
    acc += psd.psd[k];
    ++n;
  }
  EXPECT_NEAR(acc / static_cast<double>(n), expected, 0.05 * expected);
}

TEST(WelchPsd, IntegratedPowerMatchesVariance) {
  const double fs = 1000.0;
  const double sigma = 0.3;
  const auto x = white_noise(sigma, 1 << 16, 7);
  const auto psd = welch_psd(x, fs);
  EXPECT_NEAR(integrate_psd(psd, 0.0, fs / 2.0), sigma * sigma, 0.1 * sigma * sigma);
}

TEST(WelchPsd, SinePeaksAtItsFrequency) {
  const double fs = 1000.0;
  const double f0 = 123.0;
  std::vector<double> x(1 << 15);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(i) / fs);
  }
  const auto psd = welch_psd(x, fs);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.psd.size(); ++k) {
    if (psd.psd[k] > psd.psd[peak]) peak = k;
  }
  EXPECT_NEAR(psd.freq_hz[peak], f0, 2.0 * fs / 1024.0);
}

TEST(WelchPsd, MoreOverlapMoreSegments) {
  const auto x = white_noise(1.0, 8192, 3);
  WelchConfig a;
  a.overlap = 0.0;
  WelchConfig b;
  b.overlap = 0.75;
  EXPECT_GT(welch_psd(x, 1000.0, b).segments, welch_psd(x, 1000.0, a).segments);
}

TEST(WelchPsd, RemovesDc) {
  auto x = white_noise(0.1, 16384, 5);
  for (auto& v : x) v += 100.0;  // huge DC
  const auto psd = welch_psd(x, 1000.0);
  // DC bin stays comparable to neighbours (mean removed per segment).
  EXPECT_LT(psd.psd[0], 100.0 * psd.psd[5]);
}

TEST(WelchPsd, RejectsBadConfig) {
  const auto x = white_noise(1.0, 4096);
  WelchConfig bad;
  bad.segment_length = 1000;  // not pow2
  EXPECT_THROW((void)welch_psd(x, 1000.0, bad), std::invalid_argument);
  WelchConfig bad2;
  bad2.overlap = 0.99;
  EXPECT_THROW((void)welch_psd(x, 1000.0, bad2), std::invalid_argument);
  const std::vector<double> tiny(8, 0.0);
  EXPECT_THROW((void)welch_psd(tiny, 1000.0, WelchConfig{}), std::invalid_argument);
}

TEST(AllanDeviation, WhiteNoiseFollowsInverseSqrtTau) {
  const double fs = 1000.0;
  const auto x = white_noise(1.0, 1 << 17, 11);
  const auto adev = allan_deviation(x, fs);
  ASSERT_GE(adev.size(), 6u);
  // Fit slope in log-log between first and a point ~2 decades later.
  const auto& p0 = adev[1];
  const auto& p1 = adev[std::min<std::size_t>(adev.size() - 1, 9)];
  const double slope = std::log10(p1.adev / p0.adev) / std::log10(p1.tau_s / p0.tau_s);
  EXPECT_NEAR(slope, -0.5, 0.1);
}

TEST(AllanDeviation, WhiteNoiseMagnitude) {
  // ADEV(τ) = σ/√(fs·τ) for white noise at τ = 1 sample → σ·... check τ=dt:
  const double fs = 1000.0;
  const double sigma = 0.7;
  const auto x = white_noise(sigma, 1 << 16, 13);
  const auto adev = allan_deviation(x, fs);
  ASSERT_FALSE(adev.empty());
  // First point is τ = 1 sample: ADEV = σ (difference of independent
  // samples has variance 2σ², halved by the Allan definition).
  EXPECT_NEAR(adev.front().adev, sigma, 0.05 * sigma);
}

TEST(AllanDeviation, DriftRisesAtLongTau) {
  // Ramp + small noise: ADEV grows ∝ τ at long τ.
  const double fs = 100.0;
  std::vector<double> x(20000);
  tono::Rng rng{17};
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1e-3 * static_cast<double>(i) + rng.gaussian(0.0, 0.05);
  }
  const auto adev = allan_deviation(x, fs);
  ASSERT_GE(adev.size(), 4u);
  EXPECT_GT(adev.back().adev, adev[adev.size() / 2].adev);
}

TEST(AllanDeviation, TausAreIncreasing) {
  const auto x = white_noise(1.0, 4096, 19);
  const auto adev = allan_deviation(x, 1000.0);
  for (std::size_t i = 1; i < adev.size(); ++i) {
    EXPECT_GT(adev[i].tau_s, adev[i - 1].tau_s);
  }
}

TEST(AllanDeviation, RejectsBadInput) {
  const std::vector<double> tiny(4, 0.0);
  EXPECT_THROW((void)allan_deviation(tiny, 1000.0), std::invalid_argument);
  const auto x = white_noise(1.0, 100);
  EXPECT_THROW((void)allan_deviation(x, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tono::dsp
