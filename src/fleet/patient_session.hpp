// patient_session.hpp — one admitted patient's full vertical slice.
//
// The repo simulates one bedside chain end-to-end (Fig. 3: wrist →
// transducer → ΔΣ modulator → decimation → calibrated mmHg stream); the
// fleet layer (docs/FLEET.md) serves many of them concurrently. A
// PatientSession owns everything one patient needs — bio scenario, chip
// pipeline, cuff-anchored calibration, push-based StreamingMonitor — and
// publishes its outputs into two bounded rings:
//
//   * codes ring  — every 12-bit converter word (1 kS/s), default
//                   drop-oldest backpressure (stale telemetry is droppable,
//                   and every drop is counted),
//   * events ring — beats, alarms, quality reports, default blocking
//                   backpressure (a lost alarm is a clinical failure).
//
// Determinism contract: a session's code stream depends only on its
// SessionConfig (including the seed) and the step schedule — never on
// which thread steps it or what other sessions exist. All randomness is
// forked from `seed`, all state is owned by the session, and the shared
// metrics registry never feeds back into the signal path. This is what
// makes the N-session parallel fleet bit-identical to N solo runs
// (tests/test_fleet.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/common/ring_buffer.hpp"
#include "src/core/monitor.hpp"
#include "src/core/streaming_monitor.hpp"
#include "src/core/telemetry.hpp"
#include "src/fleet/fault_plan.hpp"

namespace tono::fleet {

/// Schema version of the PatientSession checkpoint blob. Bump whenever the
/// serialized layout changes; CheckpointReader::require_version turns a
/// stale blob into a loud CheckpointError instead of a silent misparse.
inline constexpr std::uint32_t kSessionCheckpointVersion = 2;

/// Lifecycle of a session inside the scheduler (docs/FLEET.md):
///
///   kAdmitted ──step──► kRunning ◄──resume── kPaused
///       │                  │  │──pause──────────▲
///       │                  └──discharge──► kDischarged
///       │                  │                      readmit (backoff elapsed)
///       └── admit()/step() throws ──► kQuarantined ──────► kRecovering
///                                         ▲                   │   │
///                                         │ throws again      │   └─step OK─► kRunning
///                                         └───────────────────┘
///                                             (strikes > max_readmits ⇒ kRetired)
///
/// Quarantine is crash isolation: a throwing session is parked with its
/// reason recorded; the batch and every other session continue. It is no
/// longer terminal: the scheduler readmits after a deterministic batch-count
/// backoff, up to FleetConfig::max_readmits strikes, then retires for good.
enum class SessionState : std::uint8_t {
  kAdmitted,     ///< registered, not yet calibrated
  kRunning,      ///< producing frames every batch
  kPaused,       ///< retained but skipped by the scheduler
  kDischarged,   ///< finished; rings drained and retired
  kQuarantined,  ///< threw during admit/step; parked until readmission
  kRecovering,   ///< readmitted this batch; kRunning on success, back on throw
  kRetired,      ///< readmission budget exhausted; terminal
};

[[nodiscard]] std::string to_string(SessionState state);

enum class FleetEventKind : std::uint8_t { kBeat, kAlarm, kQuality };

/// One beat/alarm/quality occurrence, trivially copyable for the ring.
struct FleetEvent {
  FleetEventKind kind{FleetEventKind::kBeat};
  std::uint32_t session_id{0};
  core::AlarmKind alarm_kind{core::AlarmKind::kSystolicLow};
  bool flag{false};     ///< alarm: raised/cleared; quality: usable
  double time_s{0.0};   ///< session stream time (0 = monitoring start)
  double value_a{0.0};  ///< beat: systolic mmHg; alarm: confirming value; quality: SQI
  double value_b{0.0};  ///< beat: diastolic mmHg
};

struct SessionConfig {
  /// Root seed of every random stream in the slice (chip mismatch,
  /// modulator noise, physiology). 0 lets the scheduler derive one from
  /// (fleet base_seed, admission index) — the SweepRunner pattern.
  std::uint64_t seed{0};
  /// Bio scenario preset: "rest", "exercise" or "hypotensive".
  std::string scenario{"rest"};
  /// Explicit scenario profile; overrides the `scenario` preset string when
  /// set. This is how population members (bio::ScenarioConfig::make_profile)
  /// ride a session — the profile is config-static, so checkpoint/restore
  /// and readmission reproduce it from the config.
  std::shared_ptr<const bio::ScenarioProfile> scenario_profile{};
  core::ChipConfig chip{core::ChipConfig::paper_chip()};
  core::WristModel wrist{};
  core::StreamingConfig streaming{};
  /// Admission: optional localization scan, then a cuff-anchored two-point
  /// calibration fitted on this acquisition window.
  bool localize{false};
  double calibration_window_s{8.0};
  /// Reject admission when the calibration window has no usable pulse
  /// (bad placement → quarantine instead of streaming garbage pressures).
  bool enforce_quality{true};
  /// Ring capacities (rounded up to powers of two) and policies. The codes
  /// capacity must exceed the scheduler's frames_per_step, or a serial
  /// (threads == 1) batch could block with nobody draining.
  std::size_t code_ring_capacity{4096};
  std::size_t event_ring_capacity{256};
  BackpressurePolicy code_policy{BackpressurePolicy::kDropOldest};
  BackpressurePolicy event_policy{BackpressurePolicy::kBlock};
  /// Runtime fault schedule, generated from this config plus the session's
  /// forked fault stream; manual_faults are appended verbatim (tests,
  /// targeted scenarios). An empty plan leaves the fault machinery fully
  /// disengaged: the session's output is byte-identical to a build without
  /// it (docs/FLEET.md determinism contract).
  FaultPlanConfig fault_plan{};
  std::vector<FaultEvent> manual_faults{};
  /// Gateway wiring (src/gateway/, docs/GATEWAY.md). When set, step() hands
  /// the block's surviving 12-bit codes to the sink instead of publishing
  /// them locally; the gateway demux delivers what crossed the wire back
  /// via ingest_codes() at the batch barrier. Lives in the config so a
  /// checkpoint-readmitted replacement session keeps its wiring.
  std::function<void(std::uint32_t, std::span<const std::int16_t>)> code_sink{};
  /// External code source (gateway replay): after admission — which runs
  /// normally, so calibration stays deterministic — step() never acquires
  /// from the pipeline; codes arrive only through ingest_codes(). The fault
  /// machinery stays disengaged: a recorded stream already embodies
  /// whatever faults shaped it.
  bool external_ingest{false};
};

class PatientSession {
 public:
  PatientSession(std::uint32_t id, SessionConfig config);
  ~PatientSession();

  PatientSession(const PatientSession&) = delete;
  PatientSession& operator=(const PatientSession&) = delete;

  /// Localizes (optional) and calibrates. Called once, before the first
  /// step — by the scheduler inside the session's first batch task, so slow
  /// admissions parallelize and a throwing admission quarantines cleanly.
  void admit();

  /// Produces `frames` output samples (1 ms each at the paper rate):
  /// acquires via the block-mode pipeline, publishes every 12-bit code to
  /// the codes ring, converts to mmHg through the calibration and feeds the
  /// streaming monitor, whose beat/alarm/quality callbacks publish to the
  /// events ring. Must only run on one thread at a time (the scheduler
  /// guarantees one task per session per batch).
  void step(std::size_t frames);

  /// Delivers codes that arrived over the gateway wire: pushes each to the
  /// codes ring (session code_policy) and feeds the streaming monitor via
  /// dequantize + calibration — bit-identical to the direct path, because
  /// the decimated value IS dequantize_from_bits(code, output_bits) by
  /// construction. Under external_ingest this also advances stream time.
  /// Requires an admitted session (the scheduler admits on first step, and
  /// the gateway pump runs only at batch barriers, after that step).
  void ingest_codes(std::span<const std::int16_t> codes);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool admitted() const noexcept { return admitted_; }
  /// Monitoring stream time: frames produced / output rate. Excludes the
  /// admission (localization + calibration) acquisition.
  [[nodiscard]] double stream_time_s() const noexcept;
  /// Pipeline-clock time at monitoring start. Subtract from pulse-generator
  /// truth onsets to align them with stream-time beat events (validation).
  [[nodiscard]] double stream_epoch_clock_s() const noexcept {
    return stream_epoch_clock_s_;
  }
  /// Consume-and-clear the pulse generator's per-beat ground truth (onsets
  /// on the generator clock; see stream_epoch_clock_s). The validation
  /// harness drains at scoring points so long sessions stay bounded.
  [[nodiscard]] std::vector<bio::BeatTruth> drain_beat_truth();
  [[nodiscard]] std::uint64_t frames_produced() const noexcept { return frames_produced_; }
  [[nodiscard]] double output_rate_hz() const noexcept;

  [[nodiscard]] RingBuffer<std::int16_t>& codes() noexcept { return codes_; }
  [[nodiscard]] RingBuffer<FleetEvent>& events() noexcept { return events_; }

  /// The inner single-patient chain (tests/benches introspection).
  [[nodiscard]] core::BloodPressureMonitor& monitor() noexcept { return *inner_; }
  [[nodiscard]] const core::TwoPointCalibration& calibration() const noexcept {
    return calibration_;
  }

  /// The session's resolved fault schedule (empty for clean sessions).
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }
  /// Everything the plan has done so far, one human-readable line per
  /// entry (fault injections, element re-routes). The scheduler mirrors new
  /// entries into the ward's per-session fault log after every batch.
  [[nodiscard]] const std::vector<std::string>& fault_log() const noexcept {
    return fault_log_;
  }
  /// Link accounting when the plan routes codes over the simulated USB link
  /// (any kLinkBurst event); nullptr for direct-publish sessions.
  [[nodiscard]] const core::LinkStats* link_stats() const noexcept {
    return link_decoder_ ? &link_decoder_->stats() : nullptr;
  }

  /// Serializes the whole session — every stateful stage of the vertical
  /// slice plus the fault-plan cursor — into one framed SessionCheckpoint
  /// blob (magic, schema version, checksum; see src/common/checkpoint.hpp).
  /// Must be taken at a batch barrier: per-frame scratch is excluded and
  /// both rings must be drained (quiescent), which the scheduler guarantees.
  [[nodiscard]] std::vector<std::uint8_t> checkpoint() const;

  /// Restores from a checkpoint() blob into a session freshly constructed
  /// with the SAME id and SessionConfig — construction-time statics
  /// (mismatch draws, LUTs, derived seeds) are reproduced by the
  /// constructor; the blob carries only dynamic state. Continuing from the
  /// restored session is bit-identical to never having stopped. Throws
  /// CheckpointError on any framing/versioning/shape mismatch.
  void restore_checkpoint(const std::vector<std::uint8_t>& blob);

  /// Raw (unframed) stage dump, used by checkpoint() and by whole-scheduler
  /// snapshots that embed many sessions into one frame.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  /// Builds the streaming monitor and registers the ring-publishing
  /// callbacks. Shared by admit() and restore(): a restored session gets a
  /// fresh StreamingMonitor whose state is then overwritten from the blob,
  /// with callbacks freshly bound to this instance.
  void make_stream_();
  void publish_event_(const FleetEvent& event);
  /// Applies every plan event whose onset has passed. Throws (→ quarantine)
  /// while an event still has throw budget; otherwise installs the
  /// degradation (contact window, link burst window, element fault).
  void apply_due_faults_();
  void apply_fault_(const FaultEvent& event);
  void apply_element_fault_(const FaultEvent& event);
  /// Round-trips `samples` through the simulated USB link (encoder →
  /// injector → decoder), appending every surviving code to `out` —
  /// counted losses, never wrong samples.
  void link_roundtrip_(const std::vector<dsp::DecimatedSample>& samples,
                       std::vector<std::int16_t>& out);
  [[nodiscard]] bool link_burst_active_(double stream_s) const noexcept;

  std::uint32_t id_;
  SessionConfig config_;
  std::unique_ptr<core::BloodPressureMonitor> inner_;
  core::ContactField field_;
  core::ContactField effective_field_;  ///< field_ masked by contact-loss windows
  core::TwoPointCalibration calibration_;
  std::unique_ptr<core::StreamingMonitor> stream_;
  RingBuffer<std::int16_t> codes_;
  RingBuffer<FleetEvent> events_;
  bool admitted_{false};
  std::uint64_t frames_produced_{0};
  // Fault-plan execution state. Windows on the pipeline clock are offset by
  // stream_epoch_clock_s_ (pipeline time at monitoring start): the pipeline
  // evaluates the contact field at its own clock, which includes the
  // admission acquisition, while the plan schedules in stream time.
  FaultPlan plan_;
  std::size_t next_fault_{0};
  std::vector<std::size_t> throws_left_;  ///< parallel to plan_.events()
  std::vector<char> fired_;               ///< metric fired once per event
  std::vector<std::string> fault_log_;
  std::vector<std::pair<double, double>> contact_loss_windows_;  ///< pipeline clock
  std::vector<std::pair<double, double>> link_burst_windows_;    ///< stream time
  double stream_epoch_clock_s_{0.0};
  bool array_dead_{false};  ///< no healthy element left; every step throws
  std::unique_ptr<core::FrameEncoder> link_encoder_;
  std::unique_ptr<core::FrameDecoder> link_decoder_;
  std::unique_ptr<core::LinkFaultInjector> link_injector_;
  std::vector<std::int16_t> sink_scratch_;  ///< per-step scratch, never serialized
  metrics::Counter* faults_injected_metric_;
};

}  // namespace tono::fleet
