// Tests for cuff-anchored two-point calibration.
#include "src/core/calibration.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/bio/pulse_generator.hpp"

namespace tono::core {
namespace {

TEST(Calibration, IdentityByDefault) {
  TwoPointCalibration cal;
  EXPECT_TRUE(cal.is_identity());
  EXPECT_DOUBLE_EQ(cal.to_mmhg(0.123), 0.123);
}

TEST(Calibration, ExactAtAnchors) {
  TwoPointCalibration cal{0.8, 0.2, 120.0, 80.0};
  EXPECT_NEAR(cal.to_mmhg(0.8), 120.0, 1e-12);
  EXPECT_NEAR(cal.to_mmhg(0.2), 80.0, 1e-12);
}

TEST(Calibration, LinearBetweenAnchors) {
  TwoPointCalibration cal{1.0, 0.0, 120.0, 80.0};
  EXPECT_NEAR(cal.to_mmhg(0.5), 100.0, 1e-12);
}

TEST(Calibration, InverseRoundTrip) {
  TwoPointCalibration cal{0.37, -0.12, 135.0, 85.0};
  for (double v = -0.5; v < 0.6; v += 0.1) {
    EXPECT_NEAR(cal.to_value(cal.to_mmhg(v)), v, 1e-10);
  }
}

TEST(Calibration, GainOffsetAccessors) {
  TwoPointCalibration cal{1.0, 0.0, 120.0, 80.0};
  EXPECT_NEAR(cal.gain_mmhg_per_unit(), 40.0, 1e-12);
  EXPECT_NEAR(cal.offset_mmhg(), 80.0, 1e-12);
}

TEST(Calibration, NegativeGainSupported) {
  // If the transducer polarity were inverted, calibration still works.
  TwoPointCalibration cal{-0.3, 0.3, 120.0, 80.0};
  EXPECT_NEAR(cal.to_mmhg(-0.3), 120.0, 1e-12);
  EXPECT_LT(cal.gain_mmhg_per_unit(), 0.0);
}

TEST(Calibration, ApplyMapsWholeRecord) {
  TwoPointCalibration cal{1.0, 0.0, 120.0, 80.0};
  const std::vector<double> values{0.0, 0.5, 1.0};
  const auto mmhg = cal.apply(values);
  ASSERT_EQ(mmhg.size(), 3u);
  EXPECT_NEAR(mmhg[0], 80.0, 1e-12);
  EXPECT_NEAR(mmhg[1], 100.0, 1e-12);
  EXPECT_NEAR(mmhg[2], 120.0, 1e-12);
}

TEST(Calibration, RejectsDegenerateAnchors) {
  EXPECT_THROW((TwoPointCalibration{0.5, 0.5, 120.0, 80.0}), std::invalid_argument);
  EXPECT_THROW((TwoPointCalibration{0.8, 0.2, 80.0, 80.0}), std::invalid_argument);
  EXPECT_THROW((TwoPointCalibration{0.8, 0.2, 80.0, 120.0}), std::invalid_argument);
}

TEST(Calibration, FromWaveformRecoversPressures) {
  // Scale a synthetic arterial waveform into "ADC units", calibrate with the
  // true systolic/diastolic, and check the round trip.
  bio::PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  bio::ArterialPulseGenerator gen{cfg};
  const auto wave = gen.generate(1000.0, 20000);
  std::vector<double> adc(wave.size());
  const double true_gain = 2.5e-3;
  const double true_offset = -0.21;
  for (std::size_t i = 0; i < wave.size(); ++i) adc[i] = wave[i] * true_gain + true_offset;

  BeatDetectorConfig det;
  const auto cal = TwoPointCalibration::from_waveform(
      adc, det, gen.mean_systolic_mmhg(), gen.mean_diastolic_mmhg());
  // Recovered affine map inverts the synthetic one.
  EXPECT_NEAR(cal.gain_mmhg_per_unit(), 1.0 / true_gain, 0.1 / true_gain);
  for (std::size_t i = 0; i < adc.size(); i += 997) {
    EXPECT_NEAR(cal.to_mmhg(adc[i]), wave[i], 6.0);
  }
}

TEST(Calibration, FromWaveformThrowsWithoutBeats) {
  std::vector<double> flat(5000, 0.1);
  BeatDetectorConfig det;
  EXPECT_THROW(
      (void)TwoPointCalibration::from_waveform(flat, det, 120.0, 80.0),
      std::runtime_error);
}

}  // namespace
}  // namespace tono::core
