// Cross-module integration tests: the paper's headline numbers end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/analog/modulator.hpp"
#include "src/analog/power.hpp"
#include "src/common/statistics.hpp"
#include "src/common/units.hpp"
#include "src/core/monitor.hpp"
#include "src/core/pipeline.hpp"
#include "src/dsp/decimation.hpp"
#include "src/dsp/spectrum.hpp"

namespace tono {
namespace {

// ---------------------------------------------------------------- E1/Fig. 7

TEST(Integration, Fig7AdcSpectrumMeetsPaperSpec) {
  // §3.1: 128 kHz modulator, OSR 128 → 1 kS/s, 12 bit, SNR > 72 dB with a
  // 15.625 Hz sine on the differential voltage interface.
  analog::ModulatorConfig mc;
  analog::DeltaSigmaModulator mod{mc};
  dsp::DecimationChain chain{dsp::DecimationConfig{}};
  const std::size_t n_out = 8192;
  const double f = dsp::coherent_frequency(15.625, 1000.0, n_out);
  const double amp = 0.875;  // −1.2 dBFS, inside the stable input range
  const auto bits = mod.run_voltage(
      [&](double t) {
        return amp * mc.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
      },
      (n_out + 300) * 128);
  std::vector<int> ints(bits.begin(), bits.end());
  const auto vals = chain.process_values(ints);
  std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
  dsp::SpectrumConfig sc;
  sc.sample_rate_hz = 1000.0;
  const auto a = dsp::analyze_tone(rec, sc);

  EXPECT_NEAR(a.fundamental_hz, 15.625, 0.5);     // the Fig. 7 test tone
  EXPECT_GT(a.snr_db, 72.0);                      // "better than 72 dB"
  EXPECT_GT(a.enob_bits, 11.0);                   // 12-bit-class conversion
  // A handful of integrator clips at -1.2 dBFS is normal for a 2nd-order
  // loop driven near its stable limit; sustained clipping would be failure.
  EXPECT_LT(mod.clip_count(), 100u);
}

TEST(Integration, SnrDegradesGracefullyAtLowAmplitude) {
  // SNR should fall ≈ dB-for-dB with input amplitude (noise-floor limited).
  auto snr_at = [](double amp) {
    analog::ModulatorConfig mc;
    analog::DeltaSigmaModulator mod{mc};
    dsp::DecimationChain chain{dsp::DecimationConfig{}};
    const std::size_t n_out = 4096;
    const double f = dsp::coherent_frequency(15.625, 1000.0, n_out);
    const auto bits = mod.run_voltage(
        [&](double t) {
          return amp * mc.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
        },
        (n_out + 300) * 128);
    std::vector<int> ints(bits.begin(), bits.end());
    const auto vals = chain.process_values(ints);
    std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
    dsp::SpectrumConfig sc;
    sc.sample_rate_hz = 1000.0;
    return dsp::analyze_tone(rec, sc).snr_db;
  };
  const double snr_hi = snr_at(0.8);
  const double snr_lo = snr_at(0.2);
  EXPECT_NEAR(snr_hi - snr_lo, 12.0, 4.0);  // 20·log10(0.8/0.2) ≈ 12 dB
}

// ----------------------------------------------------------------- E2 table

TEST(Integration, ElectricalOperatingPointMatchesPaper) {
  const auto chip = core::ChipConfig::paper_chip();
  EXPECT_DOUBLE_EQ(chip.modulator.sampling_rate_hz, 128000.0);   // 128 kS/s
  EXPECT_EQ(chip.decimation.total_decimation, 128u);             // OSR 128
  EXPECT_EQ(chip.decimation.output_bits, 12);                    // 12 bit
  EXPECT_EQ(chip.decimation.cic_order, 3);                       // SINC³
  EXPECT_EQ(chip.decimation.fir_taps, 32u);                      // 32-tap FIR
  EXPECT_DOUBLE_EQ(chip.decimation.cutoff_hz, 500.0);            // 500 Hz
  EXPECT_DOUBLE_EQ(chip.modulator.supply_v, 5.0);                // 5 V
  analog::PowerModel pm{chip.power};
  EXPECT_NEAR(pm.nominal_w(), 11.5e-3, 0.2e-3);                  // 11.5 mW
}

// ------------------------------------------------------------ E4 settling

TEST(Integration, MuxSettlingLimitedByConverterBandwidth) {
  // Switching elements: the analog mux settles in ns; the visible transient
  // is the decimation filter's, i.e. a few output samples at 1 kS/s.
  core::AcquisitionPipeline pipe{core::ChipConfig::paper_chip()};
  auto field = [](double x, double, double) {
    return units::mmhg_to_pa(x > 0.0 ? 40.0 : 5.0);
  };
  pipe.select(0, 0);
  (void)pipe.acquire(field, 300);
  pipe.select(0, 1);  // step change in observed capacitance
  const auto after = pipe.acquire(field, 300);
  std::vector<double> tail;
  for (std::size_t i = 150; i < after.size(); ++i) tail.push_back(after[i].value);
  const double steady = mean(tail);
  // Find when the output first stays within a small band of the new level.
  const double tol = 10.0 / 2048.0;
  std::size_t settled_at = after.size();
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (std::abs(after[i].value - steady) < tol) {
      bool stays = true;
      for (std::size_t j = i; j < std::min(i + 20, after.size()); ++j) {
        if (std::abs(after[j].value - steady) > tol) {
          stays = false;
          break;
        }
      }
      if (stays) {
        settled_at = i;
        break;
      }
    }
  }
  const double gd_samples = pipe.decimation().group_delay_seconds() * 1000.0;
  EXPECT_LT(static_cast<double>(settled_at), 6.0 * gd_samples + 10.0);
  EXPECT_GT(settled_at, 0u);  // but not instantaneous either
}

// ------------------------------------------------------- E6 Cfb ablation

TEST(Integration, SmallerFeedbackCapImprovesPressureResolution) {
  // §4 future work: "improvement of the resolution … by adjusting the
  // feedback capacitors of the first modulator stage."
  auto waveform_rms_error = [](double c_fb) {
    auto chip = core::ChipConfig::paper_chip();
    chip.modulator.c_fb1_f = c_fb;
    core::WristModel wrist;
    core::BloodPressureMonitor mon{chip, wrist};
    // Coarse ranges fail the quality gate by design; this ablation measures
    // exactly how coarse they are, so bypass it.
    (void)mon.calibrate(10.0, bio::CuffConfig{}, /*enforce_quality=*/false);
    const auto rep = mon.monitor(10.0);
    // Residual high-frequency noise on the calibrated waveform: differences
    // between adjacent samples (the pulse itself is slow).
    std::vector<double> diff;
    for (std::size_t i = 1; i < rep.waveform_mmhg.size(); ++i) {
      diff.push_back(rep.waveform_mmhg[i] - rep.waveform_mmhg[i - 1]);
    }
    return stddev(diff);
  };
  const double err_25f = waveform_rms_error(25e-15);
  const double err_5f = waveform_rms_error(5e-15);
  EXPECT_LT(err_5f, err_25f);
}

// ---------------------------------------------------------- E7 filter spec

TEST(Integration, DecimationFilterMeetsPaperSpec) {
  dsp::DecimationChain chain{core::ChipConfig::paper_chip().decimation};
  // 500 Hz cutoff: response near unity in the pass band, strongly attenuated
  // by mid stopband.
  EXPECT_GT(chain.magnitude_at(100.0), 0.9);
  EXPECT_LT(chain.magnitude_at(2000.0), 0.05);
  EXPECT_DOUBLE_EQ(chain.output_rate_hz(), 1000.0);
}

// --------------------------------------------------- converter linearity

TEST(Integration, ConverterDcLinearity) {
  // INL-style check: decoded DC output vs DC input over the stable range
  // fits a straight line to within ~1 LSB of the 12-bit word.
  analog::ModulatorConfig mc;
  std::vector<double> us;
  std::vector<double> decoded;
  for (double u = -0.8; u <= 0.8001; u += 0.1) {
    analog::DeltaSigmaModulator mod{mc};
    dsp::DecimationChain chain{dsp::DecimationConfig{}};
    const auto bits =
        mod.run_voltage([&](double) { return u * mc.vref_v; }, 128 * 120);
    std::vector<int> ints(bits.begin(), bits.end());
    const auto vals = chain.process_values(ints);
    double acc = 0.0;
    for (std::size_t i = vals.size() - 40; i < vals.size(); ++i) acc += vals[i];
    us.push_back(u);
    decoded.push_back(acc / 40.0);
  }
  // Least-squares line.
  const std::size_t n = us.size();
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += us[i];
    sy += decoded[i];
    sxx += us[i] * us[i];
    sxy += us[i] * decoded[i];
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double intercept = (sy - slope * sx) / n;
  EXPECT_NEAR(slope, 1.0, 0.01);
  EXPECT_NEAR(intercept, 0.0, 0.01);
  double worst_inl = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    worst_inl = std::max(worst_inl, std::abs(decoded[i] - (slope * us[i] + intercept)));
  }
  EXPECT_LT(worst_inl, 2.0 / 2048.0);  // ≤ 2 LSB
}

// ------------------------------------------------- headline vs die seeds

class DieSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DieSeedTest, HeadlineSnrRobustAcrossDies) {
  // The >72 dB claim must hold for any fabricated die (mismatch draws),
  // not just the default seed.
  analog::ModulatorConfig mc;
  mc.seed = GetParam();
  analog::DeltaSigmaModulator mod{mc};
  dsp::DecimationChain chain{dsp::DecimationConfig{}};
  const std::size_t n_out = 4096;
  const double f = dsp::coherent_frequency(15.625, 1000.0, n_out);
  const auto bits = mod.run_voltage(
      [&](double t) {
        return 0.875 * mc.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
      },
      (n_out + 300) * 128);
  std::vector<int> ints(bits.begin(), bits.end());
  const auto vals = chain.process_values(ints);
  std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
  dsp::SpectrumConfig sc;
  sc.sample_rate_hz = 1000.0;
  EXPECT_GT(dsp::analyze_tone(rec, sc).snr_db, 72.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Dies, DieSeedTest, ::testing::Values(1u, 5u, 9u, 1234u, 9999u));

// ------------------------------------------------------ whole-system sanity

TEST(Integration, BitExactReproducibilityOfFullSession) {
  auto run = [] {
    core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), core::WristModel{}};
    (void)mon.calibrate(8.0);
    return mon.monitor(5.0).waveform_mmhg;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace tono
