// Tests for streaming and batch statistics.
#include "src/common/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.hpp"

namespace tono {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.rms(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.rms(), 3.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVariance) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_NEAR(s.sample_variance(), 1.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{5};
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    all.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(RunningStats, RmsOfSine) {
  RunningStats s;
  const int n = 10000;
  for (int i = 0; i < n; ++i) s.add(std::sin(2.0 * M_PI * i / 100.0));
  EXPECT_NEAR(s.rms(), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(BatchStats, MeanVarianceStd) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(BatchStats, MinMaxPeakToPeak) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
  EXPECT_DOUBLE_EQ(peak_to_peak(xs), 8.0);
}

TEST(BatchStats, EmptyInputsAreZero) {
  const std::vector<double> e;
  EXPECT_DOUBLE_EQ(mean(e), 0.0);
  EXPECT_DOUBLE_EQ(rms(e), 0.0);
  EXPECT_DOUBLE_EQ(percentile(e, 50.0), 0.0);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 2.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Correlation, PerfectPositive) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson_correlation(a, b), -1.0, 1e-12);
}

TEST(Correlation, ZeroVarianceGivesZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(a, b), 0.0);
}

TEST(Correlation, SizeMismatchGivesZero) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(a, b), 0.0);
}

TEST(ErrorMetrics, RmseAndMae) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt((1.0 + 0.0 + 4.0) / 3.0), 1e-12);
  EXPECT_NEAR(mae(a, b), 1.0, 1e-12);
}

TEST(ErrorMetrics, IdenticalSeriesZeroError) {
  const std::vector<double> a{1.0, -2.0, 3.5};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
  EXPECT_DOUBLE_EQ(mae(a, a), 0.0);
}

// Property: variance is invariant under mean shift.
class VarianceShiftTest : public ::testing::TestWithParam<double> {};

TEST_P(VarianceShiftTest, ShiftInvariant) {
  Rng rng{77};
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.gaussian();
  std::vector<double> shifted(xs);
  for (auto& x : shifted) x += GetParam();
  EXPECT_NEAR(variance(xs), variance(shifted), 1e-8 * (1.0 + std::abs(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Shifts, VarianceShiftTest,
                         ::testing::Values(-1000.0, -1.0, 0.0, 0.5, 42.0, 1e6));

}  // namespace
}  // namespace tono
