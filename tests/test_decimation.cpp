// Tests for the two-stage (SINC³ + 32-tap FIR) decimation chain.
#include "src/dsp/decimation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace tono::dsp {
namespace {

std::vector<int> constant_bitstream(double mean, std::size_t n) {
  // First-order ΔΣ encoding of a constant: deterministic error feedback.
  std::vector<int> bits(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += mean;
    if (acc >= 0.0) {
      bits[i] = 1;
      acc -= 1.0;
    } else {
      bits[i] = -1;
      acc += 1.0;
    }
  }
  return bits;
}

TEST(DecimationChain, PaperConfigIsValid) {
  EXPECT_NO_THROW((DecimationChain{DecimationConfig{}}));
}

TEST(DecimationChain, OutputRate) {
  DecimationChain chain{DecimationConfig{}};
  EXPECT_DOUBLE_EQ(chain.output_rate_hz(), 1000.0);
}

TEST(DecimationChain, OutputCount) {
  DecimationChain chain{DecimationConfig{}};
  const auto bits = constant_bitstream(0.0, 128 * 50);
  EXPECT_EQ(chain.process(bits).size(), 50u);
}

TEST(DecimationChain, DcMapsToCode) {
  for (double dc : {0.0, 0.25, -0.5, 0.7}) {
    DecimationChain chain{DecimationConfig{}};
    const auto bits = constant_bitstream(dc, 128 * 100);
    const auto out = chain.process(bits);
    ASSERT_GT(out.size(), 20u);
    // Steady state (skip the filter transient).
    EXPECT_NEAR(out.back().value, dc, 0.01) << "dc " << dc;
    EXPECT_NEAR(static_cast<double>(out.back().code), dc * 2048.0, 24.0);
  }
}

TEST(DecimationChain, TwelveBitCodesInRange) {
  DecimationChain chain{DecimationConfig{}};
  const auto bits = constant_bitstream(0.9, 128 * 100);
  for (const auto& s : chain.process(bits)) {
    EXPECT_GE(s.code, -2048);
    EXPECT_LE(s.code, 2047);
    EXPECT_GE(s.value, -1.0);
    EXPECT_LT(s.value, 1.0);
  }
}

TEST(DecimationChain, OverloadSaturatesGracefully) {
  DecimationConfig cfg;
  DecimationChain chain{cfg};
  // All-ones bitstream = +FS; the chain must clip at the top code.
  std::vector<int> bits(128 * 60, 1);
  const auto out = chain.process(bits);
  EXPECT_EQ(out.back().code, 2047);
}

TEST(DecimationChain, PassbandUnityGain) {
  // A 100 Hz sine encoded at 128 kHz should come through at amplitude.
  DecimationChain chain{DecimationConfig{}};
  const double fs = 128000.0;
  const double f = 100.0;
  const std::size_t n = 128 * 3000;
  std::vector<int> bits(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = 0.5 * std::sin(2.0 * std::numbers::pi * f * i / fs);
    acc += v;
    if (acc >= 0.0) {
      bits[i] = 1;
      acc -= 1.0;
    } else {
      bits[i] = -1;
      acc += 1.0;
    }
  }
  const auto out = chain.process_values(bits);
  double peak = 0.0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) {
    peak = std::max(peak, std::abs(out[i]));
  }
  EXPECT_NEAR(peak, 0.5, 0.05);
}

TEST(DecimationChain, MagnitudeRespectsCutoff) {
  DecimationChain chain{DecimationConfig{}};
  EXPECT_NEAR(chain.magnitude_at(50.0), 1.0, 0.1);
  EXPECT_NEAR(chain.magnitude_at(200.0), 1.0, 0.15);
  EXPECT_LT(chain.magnitude_at(900.0), 0.2);     // beyond output Nyquist image
  EXPECT_LT(chain.magnitude_at(4000.0), 0.02);   // deep stopband
}

TEST(DecimationChain, DroopCompensationFlattensPassband) {
  DecimationConfig with;
  with.compensate_cic_droop = true;
  DecimationConfig without;
  without.compensate_cic_droop = false;
  DecimationChain a{with};
  DecimationChain b{without};
  // Compare deviation from unity at 400 Hz (big CIC droop region).
  const double dev_with = std::abs(a.magnitude_at(400.0) - 1.0);
  const double dev_without = std::abs(b.magnitude_at(400.0) - 1.0);
  EXPECT_LT(dev_with, dev_without);
}

TEST(DecimationChain, AliasRejectionAtImageOfPassband) {
  // Signals near k·f_out ± f alias into the passband after decimation; the
  // CIC nulls sit exactly there. Check the chain is deeply attenuating.
  DecimationChain chain{DecimationConfig{}};
  const double f_intermediate = 4000.0;  // CIC output rate
  for (double offset : {-100.0, 100.0}) {
    EXPECT_LT(chain.magnitude_at(f_intermediate + offset), 0.01);
  }
}

TEST(DecimationChain, GroupDelayPositiveAndSane) {
  DecimationChain chain{DecimationConfig{}};
  const double gd = chain.group_delay_seconds();
  EXPECT_GT(gd, 0.0);
  EXPECT_LT(gd, 0.05);  // tens of ms at most
}

TEST(DecimationChain, ResetReproducesOutput) {
  DecimationChain chain{DecimationConfig{}};
  const auto bits = constant_bitstream(0.3, 128 * 30);
  const auto a = chain.process(bits);
  chain.reset();
  const auto b = chain.process(bits);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].code, b[i].code);
}

TEST(DecimationChain, RejectsInvalidConfigs) {
  DecimationConfig bad;
  bad.cic_decimation = 33;  // does not divide 128
  EXPECT_THROW((DecimationChain{bad}), std::invalid_argument);
  DecimationConfig bad2;
  bad2.cutoff_hz = 600.0;  // above output Nyquist (500 Hz)
  EXPECT_THROW((DecimationChain{bad2}), std::invalid_argument);
  DecimationConfig bad3;
  bad3.fir_taps = 2;
  EXPECT_THROW((DecimationChain{bad3}), std::invalid_argument);
  DecimationConfig bad4;
  bad4.output_bits = 1;
  EXPECT_THROW((DecimationChain{bad4}), std::invalid_argument);
}

TEST(DecimationChain, FirCoefficientCount) {
  DecimationChain chain{DecimationConfig{}};
  EXPECT_EQ(chain.fir_coefficients().size(), 32u);
}

TEST(DecimationChain, QuantizedFirTracksFloatReference) {
  // The bit-exact chain must agree with a floating-point reference chain
  // (same CIC, float FIR) to within ~1 LSB of the 12-bit output.
  DecimationConfig cfg;
  DecimationChain chain{cfg};
  CicDecimator cic{cfg.cic_order, cfg.cic_decimation, 2};
  FirFilter fir{chain.fir_coefficients(), cfg.total_decimation / cfg.cic_decimation};
  const double cic_gain = static_cast<double>(cic.gain());

  // 60 Hz sine bitstream at 0.4 FS.
  const double fs = 128000.0;
  std::vector<int> bits;
  double acc = 0.0;
  for (std::size_t i = 0; i < 128 * 2000; ++i) {
    const double v = 0.4 * std::sin(2.0 * std::numbers::pi * 60.0 * i / fs);
    acc += v;
    if (acc >= 0.0) {
      bits.push_back(1);
      acc -= 1.0;
    } else {
      bits.push_back(-1);
      acc += 1.0;
    }
  }
  std::vector<double> ref;
  for (int b : bits) {
    if (auto c = cic.push(b)) {
      if (auto y = fir.push(static_cast<double>(*c) / cic_gain)) ref.push_back(*y);
    }
  }
  const auto out = chain.process_values(bits);
  ASSERT_EQ(out.size(), ref.size());
  double worst = 0.0;
  for (std::size_t i = 20; i < out.size(); ++i) {
    worst = std::max(worst, std::abs(out[i] - ref[i]));
  }
  EXPECT_LT(worst, 2.5 / 2048.0);  // ≤ ~2 LSB incl. coefficient quantization
}

// Property: different CIC/FIR splits of the same total OSR all decode DC.
class SplitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SplitTest, DcDecodes) {
  DecimationConfig cfg;
  cfg.cic_decimation = GetParam();
  DecimationChain chain{cfg};
  const auto bits = constant_bitstream(0.4, 128 * 80);
  const auto out = chain.process(bits);
  ASSERT_FALSE(out.empty());
  EXPECT_NEAR(out.back().value, 0.4, 0.02) << "cic R = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CicSplits, SplitTest, ::testing::Values(16u, 32u, 64u, 128u));

TEST(DecimationBlock, ProcessMatchesPerSamplePush) {
  // process() now routes through the block hot path; it must stay
  // bit-identical to the naive per-bit loop, including a ragged tail that is
  // not a multiple of the frame size.
  for (std::size_t n : {128u * 50u, 128u * 50u + 37u, 100u, 0u}) {
    DecimationChain block_chain{DecimationConfig{}};
    DecimationChain scalar_chain{DecimationConfig{}};
    const auto bits = constant_bitstream(0.3, n);
    const auto got = block_chain.process(bits);
    std::vector<DecimatedSample> want;
    for (int b : bits) {
      if (auto s = scalar_chain.push(b)) want.push_back(*s);
    }
    ASSERT_EQ(got.size(), want.size()) << "n = " << n;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].code, want[i].code) << "n = " << n << " sample " << i;
      EXPECT_EQ(got[i].value, want[i].value) << "n = " << n << " sample " << i;
    }
  }
}

TEST(DecimationBlock, PushFrameMatchesPushAtAnyPhase) {
  // push_frame() accepts any 128 consecutive bits, not just aligned frames:
  // offset the chain by a prime number of scalar pushes first.
  const auto bits = constant_bitstream(-0.25, 37 + 128 * 20);
  DecimationChain frame_chain{DecimationConfig{}};
  DecimationChain scalar_chain{DecimationConfig{}};
  std::vector<DecimatedSample> got;
  std::vector<DecimatedSample> want;
  for (std::size_t i = 0; i < 37; ++i) {
    if (auto s = frame_chain.push(bits[i])) got.push_back(*s);
    if (auto s = scalar_chain.push(bits[i])) want.push_back(*s);
  }
  for (std::size_t i = 37; i + 128 <= bits.size(); i += 128) {
    got.push_back(frame_chain.push_frame(std::span{bits}.subspan(i, 128)));
    for (std::size_t j = i; j < i + 128; ++j) {
      if (auto s = scalar_chain.push(bits[j])) want.push_back(*s);
    }
  }
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].code, want[i].code) << "sample " << i;
  }
}

TEST(DecimationBlock, ProcessValuesMatchesProcess) {
  DecimationChain a{DecimationConfig{}};
  DecimationChain b{DecimationConfig{}};
  const auto bits = constant_bitstream(0.1, 128 * 30 + 5);
  const auto samples = a.process(bits);
  const auto values = b.process_values(bits);
  ASSERT_EQ(samples.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], samples[i].value);
  }
}

TEST(DecimationBlock, NonDefaultSplitsStayBitExact) {
  // The frame path's phase argument holds for every CIC/FIR split, including
  // a degenerate all-CIC chain (FIR decimation 1).
  for (std::size_t cic_r : {16u, 64u, 128u}) {
    DecimationConfig cfg;
    cfg.cic_decimation = cic_r;
    DecimationChain block_chain{cfg};
    DecimationChain scalar_chain{cfg};
    const auto bits = constant_bitstream(0.2, 128 * 25 + 13);
    const auto got = block_chain.process(bits);
    std::vector<DecimatedSample> want;
    for (int b : bits) {
      if (auto s = scalar_chain.push(b)) want.push_back(*s);
    }
    ASSERT_EQ(got.size(), want.size()) << "cic R = " << cic_r;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].code, want[i].code) << "cic R = " << cic_r << " sample " << i;
    }
  }
}

}  // namespace
}  // namespace tono::dsp
