// gauss_log.hpp — a pinned, vectorizable natural log for the Gaussian
// polar method.
//
// The factor sqrt(-2·log(s)/s) is the one transcendental in Rng's Gaussian
// path. libm's log carries no cross-implementation bit guarantee and cannot
// be mirrored lane-for-lane in a SIMD kernel, so the batched fills behind
// the vectorized ModulatorBank would break the "bank lane == solo modulator"
// contract at the first 1-ulp libm divergence. This header pins the
// implementation instead: a double-precision port of the ARM
// optimized-routines log (the MIT-licensed algorithm glibc ≥ 2.28 and musl
// ship), used by *every* polar-method draw site — the scalar fill, the
// spare-pair path, and the AVX2/NEON batched fills — so scalar and vector
// agree by construction, on any libc.
//
// Structure (mirrors upstream log.c exactly):
//   * main path: x = 2^k·z, z in [0x1.6p-1, 0x1.6p0) split into 128
//     subintervals; r = fma(z, invc, -1), log(x) = k·ln2 + log(c) +
//     log1p(r) via a degree-5 polynomial. One table gather + one fma —
//     everything a vector lane can reproduce exactly (fma is correctly
//     rounded by definition, the rest is elementwise IEEE arithmetic, and
//     the repo-global -ffp-contract=off stops the compiler from fusing
//     anything further).
//   * near-1 path (|x−1| ≲ 2^-4): table-free higher-degree polynomial with
//     a split-compensation tail. Vector callers route these lanes (≈6% of
//     accepted polar radii) through this scalar function.
//   * zero/negative/inf/nan/subnormal: upstream semantics, kept for
//     robustness although polar radii are always normal and in (0, 1).
// Worst-case error ≈ 0.52 ulp (upstream analysis); verified here against
// this platform's libm to agree to the last bit on > 99.999% of uniform
// draws (the remainder differ by 1 ulp — see test_simd.cpp).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace tono::gausslog {

inline constexpr int kTableBits = 7;
inline constexpr std::uint64_t kOff = 0x3fe6000000000000ULL;
/// Near-1 interval bounds as raw bits: [1 - 0x1p-4, 1 + 0x1.09p-4).
inline constexpr std::uint64_t kNear1Lo = 0x3FEE000000000000ULL;
inline constexpr std::uint64_t kNear1Hi = 0x3FF0900000000000ULL;

#include "src/common/gauss_log_data.inc"

/// log(x), bit-identical between this scalar form and the SIMD kernels
/// that mirror it (rng_avx2.cpp). Near-1 and non-normal inputs always take
/// the scalar branches below; vector callers blend these lanes in.
[[nodiscard]] inline double polar_log(double x) noexcept {
  std::uint64_t ix = std::bit_cast<std::uint64_t>(x);
  const std::uint32_t top = static_cast<std::uint32_t>(ix >> 48);
  if (ix - kNear1Lo < kNear1Hi - kNear1Lo) [[unlikely]] {
    // Close to 1: log1p polynomial in r = x - 1 with a hi/lo split so the
    // -r²/2 term keeps its low bits.
    if (ix == std::bit_cast<std::uint64_t>(1.0)) return 0;
    const double r = x - 1.0;
    const double r2 = r * r;
    const double r3 = r * r2;
    double y = r3 * (kPolyB[1] + r * kPolyB[2] + r2 * kPolyB[3] +
                     r3 * (kPolyB[4] + r * kPolyB[5] + r2 * kPolyB[6] +
                           r3 * (kPolyB[7] + r * kPolyB[8] + r2 * kPolyB[9] +
                                 r3 * kPolyB[10])));
    double w = r * 0x1p27;
    const double rhi = r + w - w;
    const double rlo = r - rhi;
    w = rhi * rhi * kPolyB[0];  // kPolyB[0] == -0.5
    const double hi = r + w;
    double lo = r - hi + w;
    lo += kPolyB[0] * rlo * (rhi + r);
    y += lo;
    y += hi;
    return y;
  }
  if (top - 0x0010 >= 0x7ff0 - 0x0010) [[unlikely]] {
    if (ix * 2 == 0) return -1.0 / 0.0;                       // log(±0) = -inf
    if (ix == std::bit_cast<std::uint64_t>(
                  std::numeric_limits<double>::infinity())) {
      return x;                                               // log(inf) = inf
    }
    if ((top & 0x8000) != 0 || (top & 0x7ff0) == 0x7ff0) {
      return (x - x) / (x - x);                               // negative / nan
    }
    // Subnormal: normalize, absorbing the scale into k.
    ix = std::bit_cast<std::uint64_t>(x * 0x1p52);
    ix -= 52ULL << 52;
  }
  // x = 2^k·z with z in [kOff-range); i indexes z's subinterval.
  const std::uint64_t tmp = ix - kOff;
  const int i =
      static_cast<int>((tmp >> (52 - kTableBits)) % (1 << kTableBits));
  const int k = static_cast<int>(static_cast<std::int64_t>(tmp) >> 52);
  const std::uint64_t iz = ix - (tmp & (0xfffULL << 52));
  const double invc = kLogTab[2 * i];
  const double logc = kLogTab[2 * i + 1];
  const double z = std::bit_cast<double>(iz);
  // r ~= z/c - 1, |r| < 1/256; the single fma the vector kernel mirrors
  // with vfmadd.
  const double r = std::fma(z, invc, -1.0);
  const double kd = static_cast<double>(k);
  const double w = kd * kLn2Hi + logc;
  const double hi = w + r;
  const double lo = w - hi + r + kd * kLn2Lo;
  const double r2 = r * r;
  return lo + r2 * kPolyA[0] +
         r * r2 * (kPolyA[1] + r * kPolyA[2] + r2 * (kPolyA[3] + r * kPolyA[4])) +
         hi;
}

/// The polar-method factor sqrt(-2·log(s)/s), the exact expression every
/// Gaussian draw site shares (scalar and vector — sqrt and division are
/// correctly rounded elementwise, so only the log needed pinning).
[[nodiscard]] inline double polar_factor(double s) noexcept {
  return std::sqrt(-2.0 * polar_log(s) / s);
}

}  // namespace tono::gausslog
