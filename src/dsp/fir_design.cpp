#include "src/dsp/fir_design.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/common/math_utils.hpp"

namespace tono::dsp {
namespace {

void normalize_dc_gain(std::vector<double>& h) {
  double sum = 0.0;
  for (double c : h) sum += c;
  if (sum == 0.0) throw std::runtime_error{"fir_design: zero DC gain"};
  for (double& c : h) c /= sum;
}

/// Ideal lowpass impulse response sample at offset m from center, cutoff as a
/// fraction fc of the sample rate.
double ideal_lp(double m, double fc) { return 2.0 * fc * sinc(2.0 * fc * m); }

}  // namespace

std::vector<double> design_lowpass(std::size_t taps, double cutoff_hz, double sample_rate_hz,
                                   WindowKind window, double kaiser_beta) {
  if (taps < 2) throw std::invalid_argument{"design_lowpass: need >= 2 taps"};
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument{"design_lowpass: cutoff must be in (0, fs/2)"};
  }
  const double fc = cutoff_hz / sample_rate_hz;
  const double center = (static_cast<double>(taps) - 1.0) / 2.0;
  // Symmetric (type I/II) windows for filter design: use the symmetric form
  // w[i] over n-1, approximated by sampling the periodic window of length
  // taps at shifted points. For design purposes we build the symmetric window
  // directly here.
  std::vector<double> w(taps, 1.0);
  {
    auto periodic = make_window(window, taps == 1 ? 1 : taps - 1, kaiser_beta);
    periodic.push_back(periodic.empty() ? 1.0 : periodic.front());
    for (std::size_t i = 0; i < taps; ++i) w[i] = periodic[i];
  }
  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double m = static_cast<double>(i) - center;
    h[i] = ideal_lp(m, fc) * w[i];
  }
  normalize_dc_gain(h);
  return h;
}

std::vector<double> design_cic_compensator(std::size_t taps, double cutoff_hz,
                                           double sample_rate_hz, int cic_order,
                                           std::size_t cic_decimation, WindowKind window) {
  if (cic_order < 1 || cic_decimation < 1) {
    throw std::invalid_argument{"design_cic_compensator: bad CIC parameters"};
  }
  // Frequency-sampling design: sample the desired response
  //   D(f) = LP(f) / |Hcic(f)|  for f in [0, fs/2]
  // on a dense grid, inverse-DFT to an impulse response, window, normalize.
  const std::size_t grid = next_pow2(std::max<std::size_t>(taps * 16, 512));
  const double fc = cutoff_hz / sample_rate_hz;
  const double r = static_cast<double>(cic_decimation);

  // |Hcic| at output-rate frequency f (normalized to output fs): the CIC ran
  // at rate r*fs, response sinc(f)^N / sinc(f/r)^N in normalized terms.
  auto cic_mag = [&](double f_norm) {
    if (f_norm == 0.0) return 1.0;
    const double num = sinc(f_norm);
    const double den = sinc(f_norm / r);
    const double ratio = den != 0.0 ? num / den : 0.0;
    return std::pow(std::abs(ratio), cic_order);
  };

  std::vector<double> desired(grid / 2 + 1, 0.0);
  for (std::size_t k = 0; k <= grid / 2; ++k) {
    const double f_norm = static_cast<double>(k) / static_cast<double>(grid);
    if (f_norm <= fc) {
      const double mag = cic_mag(f_norm);
      // Cap boost at 20 dB to avoid noise amplification near deep droop.
      desired[k] = mag > 0.1 ? 1.0 / mag : 10.0;
    }
  }
  // Real-even inverse DFT → symmetric impulse response of length `grid`;
  // take the central `taps` samples.
  std::vector<double> impulse(taps, 0.0);
  const double center = (static_cast<double>(taps) - 1.0) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double m = static_cast<double>(i) - center;
    double acc = desired[0];
    for (std::size_t k = 1; k <= grid / 2; ++k) {
      const double ang =
          2.0 * std::numbers::pi * static_cast<double>(k) * m / static_cast<double>(grid);
      const double factor = (k == grid / 2) ? 1.0 : 2.0;
      acc += factor * desired[k] * std::cos(ang);
    }
    impulse[i] = acc / static_cast<double>(grid);
  }
  // Window and normalize.
  {
    auto periodic = make_window(window, taps - 1);
    periodic.push_back(periodic.front());
    for (std::size_t i = 0; i < taps; ++i) impulse[i] *= periodic[i];
  }
  normalize_dc_gain(impulse);
  return impulse;
}

std::vector<double> design_kaiser_lowpass(double cutoff_hz, double transition_hz,
                                          double stopband_atten_db, double sample_rate_hz,
                                          std::size_t* taps_out) {
  if (transition_hz <= 0.0) throw std::invalid_argument{"design_kaiser_lowpass: bad transition"};
  const double a = stopband_atten_db;
  double beta = 0.0;
  if (a > 50.0) {
    beta = 0.1102 * (a - 8.7);
  } else if (a >= 21.0) {
    beta = 0.5842 * std::pow(a - 21.0, 0.4) + 0.07886 * (a - 21.0);
  }
  const double delta_omega = 2.0 * std::numbers::pi * transition_hz / sample_rate_hz;
  auto taps = static_cast<std::size_t>(std::ceil((a - 7.95) / (2.285 * delta_omega))) + 1;
  if (taps % 2 == 0) ++taps;  // force type-I symmetric
  if (taps < 3) taps = 3;
  if (taps_out != nullptr) *taps_out = taps;
  return design_lowpass(taps, cutoff_hz, sample_rate_hz, WindowKind::kKaiser, beta);
}

std::vector<std::int32_t> quantize_coefficients(const std::vector<double>& coeffs,
                                                int frac_bits) {
  if (frac_bits < 1 || frac_bits > 30) {
    throw std::invalid_argument{"quantize_coefficients: frac_bits out of range"};
  }
  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  const auto max_code = static_cast<std::int64_t>(scale * 2.0) - 1;  // 2 integer bits total
  std::vector<std::int32_t> out;
  out.reserve(coeffs.size());
  for (double c : coeffs) {
    const double scaled = c * scale;
    auto code = static_cast<std::int64_t>(scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
    code = std::min(std::max(code, -max_code - 1), max_code);
    out.push_back(static_cast<std::int32_t>(code));
  }
  return out;
}

double fir_magnitude_at(const std::vector<double>& coeffs, double freq_hz,
                        double sample_rate_hz) noexcept {
  const double omega = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
  double re = 0.0;
  double im = 0.0;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const double phase = omega * static_cast<double>(i);
    re += coeffs[i] * std::cos(phase);
    im -= coeffs[i] * std::sin(phase);
  }
  return std::sqrt(re * re + im * im);
}

}  // namespace tono::dsp
