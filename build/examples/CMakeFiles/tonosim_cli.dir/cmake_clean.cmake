file(REMOVE_RECURSE
  "CMakeFiles/tonosim_cli.dir/tonosim_cli.cpp.o"
  "CMakeFiles/tonosim_cli.dir/tonosim_cli.cpp.o.d"
  "tonosim_cli"
  "tonosim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tonosim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
