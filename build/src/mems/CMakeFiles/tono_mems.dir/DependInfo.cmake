
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mems/capacitor.cpp" "src/mems/CMakeFiles/tono_mems.dir/capacitor.cpp.o" "gcc" "src/mems/CMakeFiles/tono_mems.dir/capacitor.cpp.o.d"
  "/root/repo/src/mems/materials.cpp" "src/mems/CMakeFiles/tono_mems.dir/materials.cpp.o" "gcc" "src/mems/CMakeFiles/tono_mems.dir/materials.cpp.o.d"
  "/root/repo/src/mems/plate.cpp" "src/mems/CMakeFiles/tono_mems.dir/plate.cpp.o" "gcc" "src/mems/CMakeFiles/tono_mems.dir/plate.cpp.o.d"
  "/root/repo/src/mems/transducer.cpp" "src/mems/CMakeFiles/tono_mems.dir/transducer.cpp.o" "gcc" "src/mems/CMakeFiles/tono_mems.dir/transducer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tono_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
