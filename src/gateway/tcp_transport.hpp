// tcp_transport.hpp — the Fig. 3 link over a real socket.
//
// A localhost (or LAN) TCP stream behind the same Transport interface as
// the in-process loopback, so gateway_server can switch wires with one
// flag and every determinism test keeps passing: TCP preserves byte order
// and loses nothing, so a clean-wire run is bit-identical to loopback.
//
// Backpressure mapping: TCP cannot shed (lossless() == true, drop_oldest
// returns empty), so transport saturation always maps onto the kBlock
// policy — try_send loops the kernel write until the whole envelope is on
// the wire and never returns false. The one real deadlock hazard of a
// barrier-paced demux (sender fills both kernel socket buffers while the
// receiver only reads at the next batch barrier) is closed by a dedicated
// reader thread on the receiving side: it drains the socket continuously
// into an in-process queue, and recv() serves from that queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/gateway/transport.hpp"

namespace tono::gateway {

/// Thrown on socket-layer failures (bind/listen/connect/accept/IO). CI
/// treats an environment that cannot create localhost sockets as a skip,
/// not a failure — see tests/test_gateway.cpp.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TcpTransport;

/// Listening endpoint (the "computer system" side of the USB link).
/// `port() == 0` in the constructor binds an ephemeral port; read it back
/// after construction to tell the connecting side where to go.
class TcpListener {
 public:
  explicit TcpListener(const std::string& host = "127.0.0.1",
                       std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until one peer connects; the returned transport owns the
  /// accepted socket and runs a reader thread (it is the receiving side).
  [[nodiscard]] std::unique_ptr<TcpTransport> accept();

 private:
  int fd_{-1};
  std::uint16_t port_{0};
};

/// One connected TCP stream. The receiving side (from TcpListener::accept)
/// spawns the reader thread; the connecting side (TcpTransport::connect)
/// is send-only in the gateway topology and skips it.
class TcpTransport final : public Transport {
 public:
  /// Sensor-side endpoint: connects to a listening gateway.
  [[nodiscard]] static std::unique_ptr<TcpTransport> connect(
      const std::string& host, std::uint16_t port);

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] bool try_send(std::span<const std::uint8_t> chunk) override;
  [[nodiscard]] std::vector<std::uint8_t> drop_oldest() override { return {}; }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  std::size_t recv(std::vector<std::uint8_t>& out) override;
  void close() override;
  [[nodiscard]] bool closed() const noexcept override;

 private:
  friend class TcpListener;
  TcpTransport(int fd, bool start_reader);
  void reader_loop_();

  int fd_;
  std::mutex send_mutex_;           ///< envelopes from many sessions interleave whole
  mutable std::mutex recv_mutex_;   ///< guards inbox_ against the reader thread
  std::vector<std::uint8_t> inbox_;
  std::thread reader_;
  std::atomic<bool> peer_closed_{false};
  std::atomic<bool> shutdown_{false};
};

}  // namespace tono::gateway
