# Empty compiler generated dependencies file for bench_fig4_mux_settling.
# This may be replaced when dependencies are built.
