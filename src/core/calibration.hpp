// calibration.hpp — cuff-anchored two-point calibration (§3.2, Fig. 9).
//
// "The acquired signal is relative to the pressure applied to the skin
// surface … In order to get absolute pressure values, a calibration has to
// be performed … by measuring the systolic and diastolic pressure with a
// conventional hand cuff device."
//
// The tonometer output is affine in arterial pressure (tissue gain ×
// transducer sensitivity × converter gain), so anchoring the waveform's
// per-beat maxima to the cuff systolic value and minima to the cuff
// diastolic value determines the map  mmHg = gain · value + offset.
#pragma once

#include <span>

#include "src/core/beat_detection.hpp"

namespace tono {
class CheckpointReader;
class CheckpointWriter;
}  // namespace tono

namespace tono::core {

/// Affine calibration value → mmHg.
class TwoPointCalibration {
 public:
  /// Identity (uncalibrated) map.
  TwoPointCalibration() = default;

  /// Directly from two anchor pairs (value_hi → sys, value_lo → dia).
  /// Throws std::invalid_argument if the anchors are degenerate.
  TwoPointCalibration(double value_at_systolic, double value_at_diastolic,
                      double cuff_systolic_mmhg, double cuff_diastolic_mmhg);

  /// Fits from a waveform: runs beat detection, averages per-beat
  /// systolic/diastolic values and anchors them to the cuff reading.
  /// Throws std::runtime_error if fewer than `min_beats` beats are found.
  [[nodiscard]] static TwoPointCalibration from_waveform(
      std::span<const double> values, const BeatDetectorConfig& detector,
      double cuff_systolic_mmhg, double cuff_diastolic_mmhg,
      std::size_t min_beats = 5);

  [[nodiscard]] double to_mmhg(double value) const noexcept {
    return gain_ * value + offset_;
  }
  [[nodiscard]] double to_value(double mmhg) const noexcept {
    return (mmhg - offset_) / gain_;
  }

  /// Applies to a whole record.
  [[nodiscard]] std::vector<double> apply(std::span<const double> values) const;

  [[nodiscard]] double gain_mmhg_per_unit() const noexcept { return gain_; }
  [[nodiscard]] double offset_mmhg() const noexcept { return offset_; }
  [[nodiscard]] bool is_identity() const noexcept { return gain_ == 1.0 && offset_ == 0.0; }

  /// Calibration after a converter range change: when the full scale is
  /// multiplied by `full_scale_ratio` (e.g. a feedback-capacitor switch),
  /// raw values shrink by that ratio, so the gain grows by it. The offset
  /// (mmHg at raw 0) is unchanged.
  [[nodiscard]] TwoPointCalibration rescaled(double full_scale_ratio) const;

  /// Checkpointing: the fitted gain/offset pair (the cuff anchor). Unlike
  /// the 4-arg constructor this accepts the identity map unchanged.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  double gain_{1.0};
  double offset_{0.0};
};

}  // namespace tono::core
