#include "src/common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tono::metrics {
namespace {

std::atomic<bool> g_enabled{true};

/// Lock-free add for atomic<double> (fetch_add on floating point is C++20
/// but not universally lock-free; the CAS loop is portable and equivalent).
void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// JSON-safe number: non-finite values become null so every exported line
/// stays parseable.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

void Counter::add(std::uint64_t n) noexcept {
  if (!enabled()) return;
  value_.fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double v) noexcept {
  if (!enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

void Gauge::record_max(double v) noexcept {
  if (!enabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (v > cur &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(upper_bounds.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"Histogram: bucket bounds must be ascending"};
  }
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void Timer::record_ns(std::uint64_t ns) noexcept {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t Timer::min_ns() const noexcept {
  const std::uint64_t v = min_ns_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

double Timer::mean_ns() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(total_ns()) / static_cast<double>(n);
}

void Timer::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

void TraceSpan::stop() noexcept {
  if (timer_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  timer_->record_ns(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
  timer_ = nullptr;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock{mutex_};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock{mutex_};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> upper_bounds) {
  std::lock_guard lock{mutex_};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

Timer& Registry::timer(std::string_view name) {
  std::lock_guard lock{mutex_};
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string{name}, std::make_unique<Timer>()).first;
  }
  return *it->second;
}

void Registry::reset_values() {
  std::lock_guard lock{mutex_};
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, t] : timers_) t->reset();
}

void Registry::export_jsonl(std::ostream& os) const {
  std::lock_guard lock{mutex_};
  for (const auto& [name, c] : counters_) {
    os << "{\"type\":\"counter\",\"name\":\"" << name << "\",\"value\":" << c->value()
       << "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "{\"type\":\"gauge\",\"name\":\"" << name
       << "\",\"value\":" << json_number(g->value()) << "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "{\"type\":\"histogram\",\"name\":\"" << name << "\",\"count\":" << h->count()
       << ",\"sum\":" << json_number(h->sum()) << ",\"buckets\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"le\":";
      if (i < bounds.size()) {
        os << json_number(bounds[i]);
      } else {
        os << "\"inf\"";
      }
      os << ",\"count\":" << h->bucket_count(i) << '}';
    }
    os << "]}\n";
  }
  for (const auto& [name, t] : timers_) {
    os << "{\"type\":\"timer\",\"name\":\"" << name << "\",\"count\":" << t->count()
       << ",\"total_ns\":" << t->total_ns() << ",\"min_ns\":" << t->min_ns()
       << ",\"max_ns\":" << t->max_ns() << ",\"mean_ns\":" << json_number(t->mean_ns())
       << "}\n";
  }
}

void Registry::export_table(std::ostream& os) const {
  std::lock_guard lock{mutex_};
  os << std::left << std::setw(32) << "instrument" << std::setw(10) << "kind"
     << "value\n";
  os << std::string(60, '-') << '\n';
  for (const auto& [name, c] : counters_) {
    os << std::left << std::setw(32) << name << std::setw(10) << "counter"
       << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << std::left << std::setw(32) << name << std::setw(10) << "gauge"
       << std::setprecision(6) << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << std::left << std::setw(32) << name << std::setw(10) << "histogram"
       << "n=" << h->count() << " sum=" << std::setprecision(6) << h->sum() << '\n';
  }
  for (const auto& [name, t] : timers_) {
    os << std::left << std::setw(32) << name << std::setw(10) << "timer"
       << "n=" << t->count() << " mean=" << std::setprecision(6)
       << t->mean_ns() / 1e6 << "ms max=" << static_cast<double>(t->max_ns()) / 1e6
       << "ms\n";
  }
}

bool Registry::write_jsonl_file(const std::string& path) const {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  export_jsonl(out);
  return static_cast<bool>(out);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void register_standard_instruments(Registry& r) {
  using namespace names;
  for (const char* name :
       {kPipelineFrames, kPipelineFramesBlock, kPipelineFramesScalar,
        kPipelineMuxFallbacks, kModulatorNoisePlanFills, kDecimationSamples,
        kDecimationFirSaturations, kSweepRuns, kSweepTrials, kPoolTasksSubmitted,
        kPoolTasksExecuted, kTelemetryFramesOk, kTelemetryCrcErrors,
        kTelemetryResyncs, kTelemetryLostFrames, kMonitorSessions, kMonitorBeats,
        kMonitorQualityRejections, kMonitorRescans, kMonitorAlarmsRaised,
        kFleetSessionsAdmitted, kFleetSessionsDischarged, kFleetSessionsQuarantined,
        kFleetBatches, kFleetFrames, kFleetRingDrops, kFleetRingBlocks,
        kFleetRecoveries, kFleetRetired, kFleetFaultsInjected,
        kWardCodesConsumed, kWardEventsConsumed, kWardEscalations,
        kHospitalEpochs, kHospitalSnapshotsWritten, kHospitalSnapshotsSkipped,
        kShardMirrorPublishes, kGatewayFramesMuxed, kGatewayFramesDemuxed,
        kGatewayBytesSent, kGatewayBytesReceived, kGatewayBackpressureBlocks,
        kGatewayEnvelopesDropped, kGatewayCodesDropped, kGatewayCrcErrors,
        kGatewayResyncs, kGatewayLostEnvelopes, kGatewayRecorderBytes,
        kValidationSessions, kValidationBeatsMatched, kValidationBeatsUnmatched,
        kValidationAamiPass, kValidationAamiFail}) {
    (void)r.counter(name);
  }
  for (const char* name :
       {kModulatorPeakState1V, kModulatorPeakState2V, kModulatorClipCount,
        kModulatorBankLanes, kSweepThreads, kPoolPeakQueueDepth, kPoolQueueDepth,
        kMonitorLastSqi, kMonitorAlarmLatencyS, kFleetSessionsActive,
        kWardAlarmsActive, kHospitalShards, kHospitalShardsActive,
        kHospitalCodesConsumed, kHospitalAlarmsActive, kGatewayChannels,
        kGatewayReplaySpeedup, kValidationLastSysBias, kValidationLastSysSd}) {
    (void)r.gauge(name);
  }
  static constexpr double kStrandBounds[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
                                             64.0, 128.0, 256.0, 1024.0};
  (void)r.histogram(kSweepTrialsPerStrand, kStrandBounds);
  for (const char* name :
       {kSweepRunWall, kMonitorSessionWall, kBankStepBlock, kFleetBatchWall,
        kHospitalSnapshotWall, kShardEpochWall}) {
    (void)r.timer(name);
  }
}

}  // namespace tono::metrics
