// goertzel.hpp — single-bin DFT (Goertzel algorithm).
//
// When only one frequency matters (the settling benches measure a known
// test tone; lock-in style amplitude tracking), Goertzel evaluates that bin
// in O(N) without the power-of-two restriction of the FFT path.
#pragma once

#include <complex>
#include <span>

namespace tono::dsp {

/// Complex DFT value of `x` at frequency `freq_hz` (same scaling as the
/// corresponding FFT bin: no 1/N normalization).
[[nodiscard]] std::complex<double> goertzel(std::span<const double> x, double freq_hz,
                                            double sample_rate_hz);

/// Amplitude of a sinusoid at `freq_hz` present in `x` (2|X|/N scaling, so a
/// sine of amplitude A returns ≈ A when the record holds whole cycles).
[[nodiscard]] double goertzel_amplitude(std::span<const double> x, double freq_hz,
                                        double sample_rate_hz);

}  // namespace tono::dsp
