// autorange.hpp — automatic feedback-capacitor ranging (§4 future work).
//
// "An improvement of the resolution during blood pressure measurements …
// can be achieved by adjusting the feedback capacitors of the first
// modulator stage."
//
// The controller watches the raw output swing and walks the feedback-
// capacitor bank so the tonometric signal uses as much of the ±1 range as
// possible without overload: smaller C_fb → smaller ΔC full scale → more
// codes per mmHg. Hysteresis between the up- and down-thresholds prevents
// range chatter at a band edge.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tono::core {

struct AutoRangeConfig {
  /// Capacitor bank, largest (coarsest) to smallest (finest) [F].
  std::vector<double> bank_f{50e-15, 25e-15, 10e-15, 5e-15, 2e-15};
  /// Step to a finer range when the predicted peak there stays below this.
  double target_headroom{0.60};
  /// Step to a coarser range when the observed peak exceeds this.
  double overload_threshold{0.85};
};

/// Decision produced by one update.
struct AutoRangeDecision {
  std::size_t range_index{0};     ///< index into the bank after the update
  bool changed{false};
  double full_scale_ratio{1.0};   ///< new/old ΔC full scale (1.0 if unchanged)
};

class FeedbackAutoRanger {
 public:
  /// `initial_index` selects the starting bank entry.
  explicit FeedbackAutoRanger(const AutoRangeConfig& config = {},
                              std::size_t initial_index = 0);

  /// Chooses the next range from a window of raw output values (normalized
  /// full scale). Pure decision — the caller applies it to the pipeline.
  [[nodiscard]] AutoRangeDecision update(std::span<const double> window_values);

  [[nodiscard]] std::size_t range_index() const noexcept { return index_; }
  [[nodiscard]] double current_capacitance_f() const noexcept { return config_.bank_f[index_]; }
  [[nodiscard]] const AutoRangeConfig& config() const noexcept { return config_; }

  /// Finest range whose predicted peak stays under the headroom target,
  /// given the observed peak at the current range (static helper used by
  /// update and by tests).
  [[nodiscard]] std::size_t best_range_for_peak(double observed_peak) const noexcept;

 private:
  AutoRangeConfig config_;
  std::size_t index_;
};

}  // namespace tono::core
