// Tests for the membrane gap capacitance.
#include "src/mems/capacitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/units.hpp"

namespace tono::mems {
namespace {

MembraneCapacitor make_cap(CapacitorGeometry geom = {}) {
  return MembraneCapacitor{SquarePlate{PlateGeometry{}}, geom};
}

TEST(MembraneCapacitor, RestCapacitanceMatchesParallelPlate) {
  CapacitorGeometry geom;
  geom.electrode_coverage = 1.0;
  geom.parasitic_f = 0.0;
  const auto cap = make_cap(geom);
  const double a = 100e-6;
  const double expected = units::epsilon0 * a * a / geom.gap_m;
  EXPECT_NEAR(cap.rest_capacitance(), expected, 1e-3 * expected);
}

TEST(MembraneCapacitor, RestCapacitanceIncludesParasitic) {
  CapacitorGeometry geom;
  geom.parasitic_f = 20e-15;
  const auto with = make_cap(geom);
  geom.parasitic_f = 0.0;
  const auto without = make_cap(geom);
  EXPECT_NEAR(with.rest_capacitance() - without.rest_capacitance(), 20e-15, 1e-20);
}

TEST(MembraneCapacitor, PaperElementAboutHundredFemtofarad) {
  // 100 µm × 100 µm over ≈ 0.9 µm gap → order 100 fF, matching the design
  // point the readout circuit is built around.
  const auto cap = make_cap();
  EXPECT_GT(cap.rest_capacitance(), 50e-15);
  EXPECT_LT(cap.rest_capacitance(), 200e-15);
}

TEST(MembraneCapacitor, PressureIncreasesCapacitance) {
  const auto cap = make_cap();
  const double c0 = cap.capacitance_at_pressure(0.0);
  const double c1 = cap.capacitance_at_pressure(units::mmhg_to_pa(100.0));
  EXPECT_GT(c1, c0);
}

TEST(MembraneCapacitor, NegativePressureDecreasesCapacitance) {
  const auto cap = make_cap();
  EXPECT_LT(cap.capacitance_at_pressure(-units::mmhg_to_pa(100.0)),
            cap.capacitance_at_pressure(0.0));
}

TEST(MembraneCapacitor, MonotoneOverOperatingRange) {
  const auto cap = make_cap();
  double prev = cap.capacitance_at_pressure(-30e3);
  for (double p = -25e3; p <= 50e3; p += 5e3) {
    const double c = cap.capacitance_at_pressure(p);
    EXPECT_GT(c, prev) << "p = " << p;
    prev = c;
  }
}

TEST(MembraneCapacitor, SensitivityPositiveAndPlausible) {
  const auto cap = make_cap();
  const double s = cap.sensitivity_at(0.0);
  EXPECT_GT(s, 0.0);
  // Order of magnitude: tens of zeptofarad per pascal.
  EXPECT_GT(s, 1e-21);
  EXPECT_LT(s, 1e-18);
}

TEST(MembraneCapacitor, DeflectionTowardSubstrateIncreasesC) {
  const auto cap = make_cap();
  // Negative w0 = toward bottom electrode in the deflection convention.
  EXPECT_GT(cap.capacitance_at_deflection(-100e-9), cap.capacitance_at_deflection(0.0));
  EXPECT_LT(cap.capacitance_at_deflection(+100e-9), cap.capacitance_at_deflection(0.0));
}

TEST(MembraneCapacitor, TouchDownClampsDivergence) {
  const auto cap = make_cap();
  const double c_touch = cap.capacitance_at_deflection(-cap.geometry().gap_m);
  const double c_beyond = cap.capacitance_at_deflection(-2.0 * cap.geometry().gap_m);
  EXPECT_TRUE(std::isfinite(c_touch));
  EXPECT_DOUBLE_EQ(c_touch, c_beyond);  // clamped
}

TEST(MembraneCapacitor, SmallerCoverageSmallerCapacitance) {
  CapacitorGeometry g1;
  g1.electrode_coverage = 1.0;
  g1.parasitic_f = 0.0;
  CapacitorGeometry g2 = g1;
  g2.electrode_coverage = 0.5;
  EXPECT_GT(make_cap(g1).rest_capacitance(), make_cap(g2).rest_capacitance());
  // Quarter area → quarter capacitance (approximately; gap uniform at rest).
  EXPECT_NEAR(make_cap(g2).rest_capacitance() / make_cap(g1).rest_capacitance(), 0.25,
              0.01);
}

TEST(MembraneCapacitor, CentralElectrodeMoreSensitivePerArea) {
  // The center deflects most, so a 50 %-coverage central electrode keeps
  // more than 25 % of the full-coverage pressure response.
  CapacitorGeometry full;
  full.parasitic_f = 0.0;
  full.electrode_coverage = 1.0;
  CapacitorGeometry half = full;
  half.electrode_coverage = 0.5;
  const auto cf = make_cap(full);
  const auto ch = make_cap(half);
  const double p = 20e3;
  const double dc_full = cf.capacitance_at_pressure(p) - cf.rest_capacitance();
  const double dc_half = ch.capacitance_at_pressure(p) - ch.rest_capacitance();
  EXPECT_GT(dc_half / dc_full, 0.25);
}

TEST(MembraneCapacitor, PullInVoltagePlausible) {
  const auto cap = make_cap();
  const double v_pi = cap.pull_in_voltage();
  // Stiff CMOS membrane over a sub-micron gap: pull-in far above the 5 V
  // supply (the device must not pull in during operation).
  EXPECT_GT(v_pi, 5.0);
  EXPECT_LT(v_pi, 1e4);
}

TEST(MembraneCapacitor, TouchDownDeflectionBelowGap) {
  const auto cap = make_cap();
  EXPECT_LT(cap.touch_down_deflection(), cap.geometry().gap_m);
  EXPECT_GT(cap.touch_down_deflection(), 0.5 * cap.geometry().gap_m);
}

TEST(MembraneCapacitor, RejectsBadGeometry) {
  CapacitorGeometry bad;
  bad.gap_m = 0.0;
  EXPECT_THROW(make_cap(bad), std::invalid_argument);
  CapacitorGeometry bad2;
  bad2.electrode_coverage = 0.0;
  EXPECT_THROW(make_cap(bad2), std::invalid_argument);
  CapacitorGeometry bad3;
  bad3.electrode_coverage = 1.5;
  EXPECT_THROW(make_cap(bad3), std::invalid_argument);
}

TEST(MembraneCapacitor, HigherPermittivityScalesPlateTerm) {
  CapacitorGeometry g;
  g.parasitic_f = 0.0;
  g.gap_permittivity = 1.0;
  const auto air = make_cap(g);
  g.gap_permittivity = 2.0;
  const auto dielectric = make_cap(g);
  EXPECT_NEAR(dielectric.rest_capacitance() / air.rest_capacitance(), 2.0, 1e-9);
}

// Property: quadrature converges — finer grids agree with the default.
class QuadratureTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuadratureTest, ConvergedCapacitance) {
  const MembraneCapacitor coarse{SquarePlate{PlateGeometry{}}, CapacitorGeometry{},
                                 GetParam()};
  const MembraneCapacitor fine{SquarePlate{PlateGeometry{}}, CapacitorGeometry{}, 64};
  const double p = 30e3;
  EXPECT_NEAR(coarse.capacitance_at_pressure(p), fine.capacitance_at_pressure(p),
              1e-4 * fine.capacitance_at_pressure(p));
}

INSTANTIATE_TEST_SUITE_P(GridSizes, QuadratureTest, ::testing::Values(16u, 24u, 32u, 48u));

}  // namespace
}  // namespace tono::mems
