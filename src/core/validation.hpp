// validation.hpp — formal grading of estimated vs. ground-truth pressure.
//
// The paper shows one test person tracking a cuff (§3.2, Fig. 9); device
// standards ask for much more. This module scores a session's estimated
// per-beat pressures against the pulse generator's ground truth with the
// two classic protocols:
//
//   * AAMI-style: pass iff |mean error| <= 5 mmHg and error SD <= 8 mmHg,
//   * BHS-style letter grades from the cumulative-error bands
//     (A: >=60/85/95% of beats within 5/10/15 mmHg; B: 50/75/90;
//      C: 40/65/85; else D),
//
// plus Bland–Altman agreement stats (bias, limits of agreement) and
// transient-response metrics (rise time, settling time within an error
// band, steady-state error) against the session's scenario profile.
//
// Everything aggregates exactly: per-session accumulators merge into
// per-cohort and fleet accumulators (Welford merge), so a sharded fleet
// produces the same grades as a serial run. The JSONL export uses the
// ward-snapshot formatting conventions and is byte-stable across thread
// counts for identical inputs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/bio/scenario.hpp"
#include "src/common/statistics.hpp"

namespace tono::core {

/// Streaming paired-error accumulator for one quantity (estimate − truth).
/// Mergeable, so cohort/fleet grades are exact reductions of session
/// accumulators.
class ErrorAccumulator {
 public:
  void add(double estimate_mmhg, double truth_mmhg) noexcept;
  void merge(const ErrorAccumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return diff_.count(); }
  /// Mean signed error (the Bland–Altman bias).
  [[nodiscard]] double mean_error_mmhg() const noexcept { return diff_.mean(); }
  /// Sample standard deviation of the signed error.
  [[nodiscard]] double error_sd_mmhg() const noexcept;
  [[nodiscard]] double mean_absolute_error_mmhg() const noexcept { return abs_.mean(); }
  [[nodiscard]] double max_absolute_error_mmhg() const noexcept { return abs_.max(); }
  /// Fraction of pairs with |error| <= 5 / 10 / 15 mmHg (0 when empty).
  [[nodiscard]] double within_5_mmhg() const noexcept;
  [[nodiscard]] double within_10_mmhg() const noexcept;
  [[nodiscard]] double within_15_mmhg() const noexcept;

 private:
  RunningStats diff_;
  RunningStats abs_;
  std::uint64_t within5_{0};
  std::uint64_t within10_{0};
  std::uint64_t within15_{0};
};

/// Bland–Altman agreement summary derived from an ErrorAccumulator.
struct BlandAltman {
  std::size_t n{0};
  double bias_mmhg{0.0};
  double sd_mmhg{0.0};
  double loa_low_mmhg{0.0};   ///< bias − 1.96·SD
  double loa_high_mmhg{0.0};  ///< bias + 1.96·SD
};

[[nodiscard]] BlandAltman bland_altman(const ErrorAccumulator& acc) noexcept;

enum class AamiVerdict : std::uint8_t { kPass, kFail, kInsufficientData };
enum class BhsGrade : std::uint8_t { kA, kB, kC, kD, kInsufficientData };

[[nodiscard]] const char* to_string(AamiVerdict v) noexcept;
[[nodiscard]] const char* to_string(BhsGrade g) noexcept;

/// AAMI-style verdict: pass iff |mean error| <= 5 mmHg and SD <= 8 mmHg.
/// Fewer than `min_pairs` pairs → kInsufficientData.
[[nodiscard]] AamiVerdict aami_verdict(const ErrorAccumulator& acc,
                                       std::size_t min_pairs = 30);

/// BHS-style letter grade from the cumulative error bands.
[[nodiscard]] BhsGrade bhs_grade(const ErrorAccumulator& acc, std::size_t min_pairs = 30);

/// Transient response of the systolic estimate to the scenario's largest
/// setpoint step. Individual metrics are negative when the response never
/// reached the corresponding threshold inside the analysis window.
struct TransientMetrics {
  bool valid{false};           ///< a step >= 10 mmHg existed and had estimates
  double step_time_s{0.0};     ///< step onset (stream time)
  double step_from_mmhg{0.0};
  double step_to_mmhg{0.0};
  double rise_time_s{-1.0};    ///< 10% → 90% of the step
  double settling_time_s{-1.0};  ///< step onset → stays within ±band of target
  double steady_state_error_mmhg{0.0};  ///< mean error over the window's last quarter
  double peak_error_mmhg{0.0};  ///< max |estimate − target| after first reaching 90%
};

/// One estimated beat, in session stream time.
struct EstimatedBeat {
  double time_s{0.0};
  double systolic_mmhg{0.0};
  double diastolic_mmhg{0.0};
};

struct ValidationConfig {
  /// Settling band for transient metrics [± mmHg].
  double settle_band_mmhg{5.0};
  /// Pairs below this → insufficient-data verdicts.
  std::size_t min_pairs{30};
};

/// Everything known about one graded session. Carries the raw accumulators
/// (not just derived grades) so cohort roll-ups merge exactly.
struct SessionValidationRecord {
  std::uint32_t session_id{0};
  std::string cohort;    ///< roll-up key ("" = ungrouped)
  std::string scenario;  ///< profile name
  std::uint64_t seed{0};
  double duration_s{0.0};
  std::size_t truth_beats{0};
  std::size_t estimate_beats{0};
  std::size_t matched_beats{0};
  ErrorAccumulator sys_error;
  ErrorAccumulator dia_error;
  ErrorAccumulator map_error;
  TransientMetrics transient;
};

/// Scores one session: feed ground-truth beats (pulse-generator clock) and
/// estimated beats (stream clock), then finalize. Pairing matches each
/// estimate to the truth beat whose [onset, onset+interval) span contains
/// the estimate's time; unmatched estimates are counted, not scored.
class SessionValidator {
 public:
  explicit SessionValidator(ValidationConfig config = {});

  /// Ground-truth beats. `clock_offset_s` is subtracted from every onset to
  /// convert the generator clock to stream time (PatientSession exposes the
  /// stream epoch; solo monitors use 0).
  void add_truth(std::span<const bio::BeatTruth> beats, double clock_offset_s = 0.0);

  /// One estimated beat (stream time) — e.g. a fleet beat event or a
  /// detected beat from a MonitoringReport.
  void add_estimate(double time_s, double systolic_mmhg, double diastolic_mmhg);

  /// Pairs estimates with truth, computes transient metrics against the
  /// profile (nullptr → transient invalid) and returns the session record.
  /// Also bumps the global validation.* metrics.
  [[nodiscard]] SessionValidationRecord finalize(std::uint32_t session_id,
                                                 std::string cohort, std::string scenario,
                                                 std::uint64_t seed,
                                                 const bio::ScenarioProfile* profile);

  [[nodiscard]] const ValidationConfig& config() const noexcept { return config_; }

 private:
  ValidationConfig config_;
  std::vector<bio::BeatTruth> truth_;
  std::vector<EstimatedBeat> estimates_;
};

/// Transient response of an estimate series against a profile's largest
/// systolic step (exposed for tests; SessionValidator::finalize uses it).
[[nodiscard]] TransientMetrics transient_response(std::span<const EstimatedBeat> estimates,
                                                  const bio::ScenarioProfile& profile,
                                                  double band_mmhg);

/// Per-cohort exact reduction of session records.
struct CohortValidation {
  std::string cohort;
  std::size_t sessions{0};
  std::size_t aami_pass_sessions{0};
  ErrorAccumulator sys_error;
  ErrorAccumulator dia_error;
  ErrorAccumulator map_error;
};

/// Groups records by cohort (sorted by cohort name) and merges their
/// accumulators. Deterministic: depends only on the record set, not its
/// order.
[[nodiscard]] std::vector<CohortValidation> aggregate_by_cohort(
    std::span<const SessionValidationRecord> records, std::size_t min_pairs = 30);

/// JSONL artifact: one "validation_session" line per record (ordered by
/// session id), one "validation_cohort" line per cohort (ordered by name),
/// then one "validation_fleet" summary line. Formatting follows the ward
/// snapshot export (default ostream doubles, gated optional fields), so the
/// bytes are identical across repeated runs and thread counts for the same
/// records.
void export_validation_jsonl(std::span<const SessionValidationRecord> records,
                             std::ostream& os, std::size_t min_pairs = 30);

}  // namespace tono::core
