// Tests for the signal-quality index.
#include "src/core/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/bio/artifacts.hpp"
#include "src/bio/pulse_generator.hpp"
#include "src/common/rng.hpp"

namespace tono::core {
namespace {

std::vector<double> clean_wave(double duration_s = 30.0, std::uint64_t seed = 7) {
  bio::PulseConfig cfg;
  cfg.seed = seed;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  bio::ArterialPulseGenerator gen{cfg};
  return gen.generate(1000.0, static_cast<std::size_t>(duration_s * 1000.0));
}

TEST(SignalQuality, CleanSignalIsHighQuality) {
  SignalQualityAssessor q;
  const auto rep = q.assess(clean_wave());
  EXPECT_GT(rep.sqi, 0.7);
  EXPECT_TRUE(rep.usable);
  EXPECT_GE(rep.beat_count, 30u);
  EXPECT_LT(rep.interval_cv, 0.1);
}

TEST(SignalQuality, FlatSignalUnusable) {
  SignalQualityAssessor q;
  const std::vector<double> flat(20000, 90.0);
  const auto rep = q.assess(flat);
  EXPECT_FALSE(rep.usable);
  EXPECT_EQ(rep.beat_count, 0u);
  EXPECT_LT(rep.sqi, 0.5);
}

TEST(SignalQuality, EmptyWindowZero) {
  SignalQualityAssessor q;
  const auto rep = q.assess({});
  EXPECT_DOUBLE_EQ(rep.sqi, 0.0);
  EXPECT_FALSE(rep.usable);
}

TEST(SignalQuality, TinyWindowsFiniteAndUnusable) {
  // 1- and 2-sample windows: the pulse-SNR denominator (size − 1) would
  // wrap to SIZE_MAX for a single sample without its guard. Reports must
  // stay finite and unusable, even with min_beats lowered to force the
  // later scoring stages to run on whatever the detector returns.
  QualityConfig cfg;
  cfg.min_beats = 1;
  SignalQualityAssessor q{cfg};
  for (const auto& window :
       {std::vector<double>{95.0}, std::vector<double>{95.0, 96.0}}) {
    const auto rep = q.assess(window);
    EXPECT_FALSE(rep.usable) << window.size();
    for (double v : {rep.sqi, rep.interval_cv, rep.amplitude_cv,
                     rep.artifact_fraction, rep.pulse_snr, rep.shape_consistency}) {
      EXPECT_TRUE(std::isfinite(v)) << window.size();
    }
  }
}

TEST(SignalQuality, SpikesLowerTheIndex) {
  auto wave = clean_wave();
  // Inject hard motion spikes.
  tono::Rng rng{5};
  for (int s = 0; s < 25; ++s) {
    const std::size_t at = 1000 + rng.uniform_below(wave.size() - 2000);
    for (std::size_t i = 0; i < 120; ++i) wave[at + i] += 60.0;
  }
  SignalQualityAssessor q;
  const auto clean = q.assess(clean_wave());
  const auto spiky = q.assess(wave);
  EXPECT_LT(spiky.sqi, clean.sqi);
  EXPECT_GT(spiky.artifact_fraction, clean.artifact_fraction);
}

TEST(SignalQuality, IrregularRhythmLowersRhythmScore) {
  bio::PulseConfig af = bio::PatientPresets::atrial_fibrillation();
  af.drift_mmhg_per_sqrt_s = 0.0;
  bio::ArterialPulseGenerator gen{af};
  const auto wave = gen.generate(1000.0, 40000);
  SignalQualityAssessor q;
  const auto rep_af = q.assess(wave);
  const auto rep_clean = q.assess(clean_wave(40.0));
  EXPECT_GT(rep_af.interval_cv, rep_clean.interval_cv + 0.02);
  EXPECT_LT(rep_af.sqi, rep_clean.sqi);
}

TEST(SignalQuality, HeavyArtifactsDetected) {
  auto wave = clean_wave();
  bio::ArtifactConfig art;
  art.spike_rate_hz = 1.0;
  art.spike_amplitude_mmhg = 60.0;
  art.wander_mmhg_per_sqrt_s = 2.0;
  bio::ArtifactInjector inj{art};
  inj.apply(wave, 1000.0);
  SignalQualityAssessor q;
  const auto rep = q.assess(wave);
  EXPECT_LT(rep.sqi, 0.75);
}

TEST(SignalQuality, ScaleInvariant) {
  const auto wave = clean_wave();
  std::vector<double> scaled(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) scaled[i] = wave[i] * 3.7e-4 - 0.05;
  SignalQualityAssessor q;
  EXPECT_NEAR(q.assess(wave).sqi, q.assess(scaled).sqi, 0.1);
}

TEST(SignalQuality, RealPulseHasHighShapeConsistencyAndSnr) {
  SignalQualityAssessor q;
  const auto rep = q.assess(clean_wave());
  EXPECT_GT(rep.shape_consistency, 0.8);
  EXPECT_GT(rep.pulse_snr, 8.0);
}

TEST(SignalQuality, NoiseLockedDetectionRejected) {
  // Baseline wander plus the converter's white floor (every real chain
  // output carries one): the detector locks onto the wander rhythmically,
  // but the beats neither repeat a shape nor tower over the floor.
  tono::Rng rng{31};
  std::vector<double> noise(20000);
  double state = 0.0;
  for (auto& v : noise) {
    state = 0.98 * state + rng.gaussian(0.0, 0.2);  // wander, sigma ~= 1
    v = state + rng.gaussian(0.0, 1.0);              // white converter floor
  }
  SignalQualityAssessor q;
  const auto rep = q.assess(noise);
  EXPECT_FALSE(rep.usable);
  EXPECT_LT(rep.pulse_snr, q.config().strong_pulse_snr);
}

TEST(SignalQuality, RejectsBadConfig) {
  QualityConfig bad;
  bad.iqr_multiplier = 0.0;
  EXPECT_THROW((SignalQualityAssessor{bad}), std::invalid_argument);
  QualityConfig bad2;
  bad2.min_beats = 0;
  EXPECT_THROW((SignalQualityAssessor{bad2}), std::invalid_argument);
}

}  // namespace
}  // namespace tono::core
