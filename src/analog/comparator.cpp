#include "src/analog/comparator.hpp"

#include "src/common/checkpoint.hpp"

namespace tono::analog {

void Comparator::plan(double* noise_dest, std::size_t n) noexcept {
  plan_buf_ = noise_dest;
  plan_len_ = n;
  plan_idx_ = 0;
  segment_start_ = 0;
  if (config_.noise_vrms > 0.0) {
    plan_snapshot_ = rng_;
    rng_.fill_gaussian(noise_dest, n, 0.0, config_.noise_vrms);
  }
  // With noise off the scalar path draws nothing per decision — the stream
  // is consumed only by metastable events, which decide_planned() routes
  // through planned_metastable_() in the same order. Nothing to pre-draw.
}

Rng* Comparator::plan_external(double* noise_dest, std::size_t n) noexcept {
  plan_buf_ = noise_dest;
  plan_len_ = n;
  plan_idx_ = 0;
  segment_start_ = 0;
  if (config_.noise_vrms <= 0.0) return nullptr;
  plan_snapshot_ = rng_;
  return &rng_;
}

bool Comparator::planned_metastable_() noexcept {
  if (config_.noise_vrms <= 0.0) return rng_.bernoulli(0.5);
  // The scalar stream interleaves this Bernoulli between the Gaussian just
  // consumed (index plan_idx_ - 1) and the next one. Rewind to the segment
  // snapshot, replay the Gaussians consumed since then to reconstruct the
  // exact mid-frame state (including the polar method's spare cache), draw
  // the Bernoulli at its scalar position, then regenerate the not-yet-
  // consumed tail of the plan from the post-Bernoulli state — those values
  // change, exactly as they would have in the scalar sequence.
  Rng replay = plan_snapshot_;
  for (std::size_t i = segment_start_; i < plan_idx_; ++i) {
    (void)replay.gaussian();
  }
  const bool bit = replay.bernoulli(0.5);
  plan_snapshot_ = replay;
  segment_start_ = plan_idx_;
  rng_ = replay;
  rng_.fill_gaussian(plan_buf_ + plan_idx_, plan_len_ - plan_idx_, 0.0,
                     config_.noise_vrms);
  return bit;
}

void Comparator::serialize(CheckpointWriter& out) const {
  out.section("comparator");
  rng_.serialize(out);
  out.i64(last_);
}

void Comparator::restore(CheckpointReader& in) {
  in.section("comparator");
  rng_.restore(in);
  last_ = static_cast<int>(in.i64());
  plan_buf_ = nullptr;
  plan_len_ = plan_idx_ = segment_start_ = 0;
}

}  // namespace tono::analog
