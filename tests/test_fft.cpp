// Tests for the radix-2 FFT.
#include "src/dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/rng.hpp"

namespace tono::dsp {
namespace {

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> x(64, Complex{0.0, 0.0});
  x[0] = Complex{1.0, 0.0};
  fft_inplace(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGivesSingleBin) {
  std::vector<Complex> x(32, Complex{2.0, 0.0});
  fft_inplace(x);
  EXPECT_NEAR(x[0].real(), 64.0, 1e-10);
  for (std::size_t k = 1; k < x.size(); ++k) EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-10);
}

TEST(Fft, SineLandsOnItsBin) {
  const std::size_t n = 256;
  const std::size_t bin = 17;
  std::vector<Complex> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = Complex{std::sin(2.0 * std::numbers::pi * bin * i / n), 0.0};
  }
  fft_inplace(x);
  EXPECT_NEAR(std::abs(x[bin]), n / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(x[n - bin]), n / 2.0, 1e-8);
  for (std::size_t k = 0; k < n / 2; ++k) {
    if (k != bin) EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-8) << "bin " << k;
  }
}

TEST(Fft, RoundTripRestoresSignal) {
  Rng rng{3};
  std::vector<Complex> x(128);
  for (auto& v : x) v = Complex{rng.gaussian(), rng.gaussian()};
  const auto original = x;
  fft_inplace(x);
  ifft_inplace(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng{4};
  std::vector<Complex> x(512);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = Complex{rng.gaussian(), 0.0};
    time_energy += std::norm(v);
  }
  fft_inplace(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / x.size(), time_energy, 1e-8 * time_energy);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(100);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<Complex> x{Complex{3.0, 4.0}};
  EXPECT_NO_THROW(fft_inplace(x));
  EXPECT_NEAR(x[0].real(), 3.0, 1e-15);
}

TEST(FftReal, PadsToPowerOfTwo) {
  std::vector<double> x(100, 1.0);
  const auto spec = fft_real(x);
  EXPECT_EQ(spec.size(), 128u);
}

TEST(MagnitudeSpectrum, FullScaleSineReadsAmplitude) {
  const std::size_t n = 1024;
  const std::size_t bin = 33;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.7 * std::sin(2.0 * std::numbers::pi * bin * i / n);
  }
  const auto mag = magnitude_spectrum(x);
  ASSERT_EQ(mag.size(), n / 2 + 1);
  EXPECT_NEAR(mag[bin], 0.7, 1e-9);
}

TEST(MagnitudeSpectrum, DcReadsMean) {
  std::vector<double> x(256, 0.25);
  const auto mag = magnitude_spectrum(x);
  EXPECT_NEAR(mag[0], 0.25, 1e-12);
}

TEST(PowerSpectrum, SinePowerIsHalfAmplitudeSquared) {
  const std::size_t n = 1024;
  const std::size_t bin = 5;
  const double amp = 0.6;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * bin * i / n);
  }
  const auto pwr = power_spectrum(x);
  EXPECT_NEAR(pwr[bin], amp * amp / 2.0, 1e-10);
}

TEST(PowerSpectrum, TotalPowerMatchesTimeDomain) {
  Rng rng{12};
  const std::size_t n = 2048;
  std::vector<double> x(n);
  double p_time = 0.0;
  for (auto& v : x) {
    v = rng.gaussian();
    p_time += v * v;
  }
  p_time /= static_cast<double>(n);
  const auto pwr = power_spectrum(x);
  double p_freq = 0.0;
  for (double p : pwr) p_freq += p;
  EXPECT_NEAR(p_freq, p_time, 1e-9 * p_time);
}

TEST(PowerSpectrum, RejectsNonPowerOfTwo) {
  std::vector<double> x(100, 0.0);
  EXPECT_THROW((void)power_spectrum(x), std::invalid_argument);
}

// Property: linearity of the FFT across scales.
class FftScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(FftScaleTest, Linearity) {
  Rng rng{42};
  std::vector<Complex> x(64);
  for (auto& v : x) v = Complex{rng.gaussian(), 0.0};
  auto scaled = x;
  for (auto& v : scaled) v *= GetParam();
  fft_inplace(x);
  fft_inplace(scaled);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(scaled[i]), GetParam() * std::abs(x[i]),
                1e-9 * (1.0 + std::abs(x[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, FftScaleTest, ::testing::Values(0.5, 2.0, 10.0));

}  // namespace
}  // namespace tono::dsp
