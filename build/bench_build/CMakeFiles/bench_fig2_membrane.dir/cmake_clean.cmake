file(REMOVE_RECURSE
  "../bench/bench_fig2_membrane"
  "../bench/bench_fig2_membrane.pdb"
  "CMakeFiles/bench_fig2_membrane.dir/bench_fig2_membrane.cpp.o"
  "CMakeFiles/bench_fig2_membrane.dir/bench_fig2_membrane.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_membrane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
