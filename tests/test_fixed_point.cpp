// Tests for fixed-point arithmetic helpers.
#include "src/common/fixed_point.hpp"

#include <gtest/gtest.h>

namespace tono {
namespace {

TEST(SaturateToBits, WithinRangeUnchanged) {
  EXPECT_EQ(saturate_to_bits(100, 12), 100);
  EXPECT_EQ(saturate_to_bits(-100, 12), -100);
  EXPECT_EQ(saturate_to_bits(2047, 12), 2047);
  EXPECT_EQ(saturate_to_bits(-2048, 12), -2048);
}

TEST(SaturateToBits, Clips) {
  EXPECT_EQ(saturate_to_bits(2048, 12), 2047);
  EXPECT_EQ(saturate_to_bits(-2049, 12), -2048);
  EXPECT_EQ(saturate_to_bits(1000000, 12), 2047);
}

TEST(SaturateToBits, RejectsBadWidths) {
  EXPECT_THROW((void)saturate_to_bits(0, 1), std::invalid_argument);
  EXPECT_THROW((void)saturate_to_bits(0, 64), std::invalid_argument);
}

TEST(WrapToBits, WithinRangeUnchanged) {
  EXPECT_EQ(wrap_to_bits(7, 4), 7);
  EXPECT_EQ(wrap_to_bits(-8, 4), -8);
}

TEST(WrapToBits, WrapsModulo) {
  EXPECT_EQ(wrap_to_bits(8, 4), -8);    // 0b1000 sign-extends
  EXPECT_EQ(wrap_to_bits(16, 4), 0);
  EXPECT_EQ(wrap_to_bits(17, 4), 1);
  EXPECT_EQ(wrap_to_bits(-9, 4), 7);
}

TEST(QuantizeToBits, MidScaleValues) {
  EXPECT_EQ(quantize_to_bits(0.0, 12), 0);
  EXPECT_EQ(quantize_to_bits(0.5, 12), 1024);
  EXPECT_EQ(quantize_to_bits(-0.5, 12), -1024);
}

TEST(QuantizeToBits, FullScaleSaturates) {
  EXPECT_EQ(quantize_to_bits(1.0, 12), 2047);   // +FS saturates to max code
  EXPECT_EQ(quantize_to_bits(-1.0, 12), -2048);
  EXPECT_EQ(quantize_to_bits(5.0, 12), 2047);
}

TEST(QuantizeToBits, RoundsToNearest) {
  const double lsb = 1.0 / 2048.0;
  EXPECT_EQ(quantize_to_bits(0.4 * lsb, 12), 0);
  EXPECT_EQ(quantize_to_bits(0.6 * lsb, 12), 1);
  EXPECT_EQ(quantize_to_bits(-0.6 * lsb, 12), -1);
}

TEST(DequantizeFromBits, RoundTripWithinLsb) {
  const double lsb = 1.0 / 2048.0;
  for (double v = -0.99; v < 0.99; v += 0.0173) {
    const auto code = quantize_to_bits(v, 12);
    EXPECT_NEAR(dequantize_from_bits(code, 12), v, 0.51 * lsb);
  }
}

TEST(QFormat, EncodeDecodeRoundTrip) {
  const QFormat q{2, 14};
  const double lsb = q.lsb();
  for (double v = -1.9; v < 1.9; v += 0.037) {
    EXPECT_NEAR(q.decode(q.encode(v)), v, 0.51 * lsb);
  }
}

TEST(QFormat, Lsb) {
  const QFormat q{2, 10};
  EXPECT_DOUBLE_EQ(q.lsb(), 1.0 / 1024.0);
  EXPECT_EQ(q.total_bits(), 12);
}

TEST(QFormat, SaturatesAtRangeEdge) {
  const QFormat q{2, 14};  // 16-bit total: range ≈ ±2
  EXPECT_EQ(q.encode(100.0), (std::int64_t{1} << 15) - 1);
  EXPECT_EQ(q.encode(-100.0), -(std::int64_t{1} << 15));
}

TEST(QFormat, RejectsInvalidWidths) {
  EXPECT_THROW((QFormat{0, 10}), std::invalid_argument);
  EXPECT_THROW((QFormat{1, -1}), std::invalid_argument);
  EXPECT_THROW((QFormat{32, 32}), std::invalid_argument);
}

// Property: quantization error is bounded by LSB/2 across formats.
class QuantizeErrorTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeErrorTest, ErrorBounded) {
  const int bits = GetParam();
  const double lsb = 2.0 / (std::int64_t{1} << bits);
  // Stay clear of +FS, where the missing top code makes saturation error
  // exceed LSB/2 by design.
  for (double v = -0.999; v < 0.999 - lsb; v += 0.0137) {
    const auto code = quantize_to_bits(v, bits);
    EXPECT_LE(std::abs(dequantize_from_bits(code, bits) - v), 0.5 * lsb + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantizeErrorTest, ::testing::Values(4, 8, 12, 16, 20));

}  // namespace
}  // namespace tono
