// Tests for the command-line flag parser.
#include "src/common/cli.hpp"

#include <gtest/gtest.h>

namespace tono {
namespace {

ArgParser make_parser() {
  ArgParser p{"prog", "test program"};
  p.add_flag("verbose", "say more");
  p.add_string("name", "a name", "default-name");
  p.add_double("rate", "a rate", 1.5);
  p.add_int("count", "a count", 7);
  p.add_string("required-thing", "no default");
  return p;
}

TEST(ArgParser, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_FALSE(p.flag("verbose"));
  EXPECT_EQ(p.string_value("name"), "default-name");
  EXPECT_DOUBLE_EQ(p.double_value("rate"), 1.5);
  EXPECT_EQ(p.int_value("count"), 7);
}

TEST(ArgParser, ValuesOverrideDefaults) {
  auto p = make_parser();
  const char* argv[] = {"prog",    "--verbose", "--name", "alice",      "--rate",
                        "2.75",    "--count",   "42",     "--required-thing", "y"};
  ASSERT_TRUE(p.parse(10, argv));
  EXPECT_TRUE(p.flag("verbose"));
  EXPECT_EQ(p.string_value("name"), "alice");
  EXPECT_DOUBLE_EQ(p.double_value("rate"), 2.75);
  EXPECT_EQ(p.int_value("count"), 42);
}

TEST(ArgParser, MissingRequiredFails) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  EXPECT_FALSE(p.parse(1, argv));
  EXPECT_NE(p.error().find("required-thing"), std::string::npos);
}

TEST(ArgParser, UnknownOptionFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--nope", "--required-thing", "x"};
  EXPECT_FALSE(p.parse(4, argv));
  EXPECT_NE(p.error().find("unknown option"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--rate"};
  EXPECT_FALSE(p.parse(4, argv));
  EXPECT_NE(p.error().find("needs a value"), std::string::npos);
}

TEST(ArgParser, NonNumericValueFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--rate", "fast"};
  EXPECT_FALSE(p.parse(5, argv));
  EXPECT_NE(p.error().find("expects a number"), std::string::npos);
}

TEST(ArgParser, FractionalIntValueFails) {
  // kInt used to validate with strtod and then read with strtol: "1.5"
  // passed validation and silently truncated to 1. It must be rejected.
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--count", "1.5"};
  EXPECT_FALSE(p.parse(5, argv));
  EXPECT_NE(p.error().find("expects an integer"), std::string::npos);
}

TEST(ArgParser, OverflowingIntValueFails) {
  // Out-of-range integers used to saturate via strtol without any error.
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--count",
                        "99999999999999999999"};
  EXPECT_FALSE(p.parse(5, argv));
  EXPECT_NE(p.error().find("out of range"), std::string::npos);
}

TEST(ArgParser, NanDoubleValueFails) {
  // strtod happily parses "nan" — which would then poison every scenario
  // computation downstream. The parser must reject non-finite doubles.
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--rate", "nan"};
  EXPECT_FALSE(p.parse(5, argv));
  EXPECT_NE(p.error().find("finite"), std::string::npos);
}

TEST(ArgParser, InfDoubleValueFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--rate", "-inf"};
  EXPECT_FALSE(p.parse(5, argv));
  EXPECT_NE(p.error().find("finite"), std::string::npos);
}

TEST(ArgParser, OverflowingDoubleValueFails) {
  // "1e999" parses to +inf with ERANGE — an overflow, reported as such
  // rather than as a generic non-finite value.
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--rate", "1e999"};
  EXPECT_FALSE(p.parse(5, argv));
  EXPECT_NE(p.error().find("out of range"), std::string::npos);
}

TEST(ArgParser, NegativeIntAccepted) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--count", "-12"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.int_value("count"), -12);
}

TEST(ArgParser, NegativeNumbersAccepted) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--rate", "-2.5"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_DOUBLE_EQ(p.double_value("rate"), -2.5);
}

TEST(ArgParser, HelpRequested) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
  EXPECT_TRUE(p.help_requested());
  EXPECT_NE(p.help_text().find("--rate"), std::string::npos);
  EXPECT_NE(p.help_text().find("default 1.5"), std::string::npos);
}

TEST(ArgParser, PositionalCollected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "pos1", "--required-thing", "x", "pos2"};
  ASSERT_TRUE(p.parse(5, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "pos1");
  EXPECT_EQ(p.positional()[1], "pos2");
}

TEST(ArgParser, HasReportsExplicitOnly) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x", "--name", "bob"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_TRUE(p.has("name"));
  EXPECT_FALSE(p.has("rate"));
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser p{"prog"};
  p.add_flag("x", "flag");
  EXPECT_THROW(p.add_double("x", "again"), std::invalid_argument);
}

TEST(ArgParser, WrongTypeAccessThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--required-thing", "x"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_THROW((void)p.flag("rate"), std::invalid_argument);
  EXPECT_THROW((void)p.double_value("verbose"), std::invalid_argument);
  EXPECT_THROW((void)p.string_value("missing"), std::invalid_argument);
}

}  // namespace
}  // namespace tono
