#include "src/analog/incremental.hpp"

#include <cmath>
#include <stdexcept>

namespace tono::analog {

template <typename StepFn>
double IncrementalConverter::run_conversion(StepFn&& step) {
  modulator_->reset();
  // Cascade-of-integrators (CoI₂) decimation: acc2 accumulates the running
  // sum of bits, weighting early decisions more — matched to the loop's
  // double integration from reset.
  double acc1 = 0.0;
  double acc2 = 0.0;
  for (std::size_t i = 0; i < config_.cycles; ++i) {
    acc1 += static_cast<double>(step());
    acc2 += acc1;
  }
  const auto n = static_cast<double>(config_.cycles);
  return 2.0 * acc2 / (n * (n + 1.0));
}

IncrementalConverter::IncrementalConverter(const IncrementalConfig& config)
    : config_(config) {
  if (config_.cycles < 8) {
    throw std::invalid_argument{"IncrementalConverter: need >= 8 cycles"};
  }
  modulator_ = std::make_unique<DeltaSigmaModulator>(config_.modulator);

  // Two-point digital self-calibration through the voltage test interface:
  // convert known references and solve estimate = gain·raw + offset. Noise
  // sources stay enabled — averaging several conversions bounds their
  // influence on the calibration constants.
  const double vref = config_.modulator.vref_v;
  auto raw_at = [&](double u) {
    constexpr int kAverages = 8;
    double acc = 0.0;
    for (int i = 0; i < kAverages; ++i) {
      acc += run_conversion([&] { return modulator_->step_voltage(u * vref); });
    }
    return acc / kAverages;
  };
  const double u_lo = -0.5;
  const double u_hi = +0.5;
  const double raw_lo = raw_at(u_lo);
  const double raw_hi = raw_at(u_hi);
  if (std::abs(raw_hi - raw_lo) < 1e-9) {
    throw std::runtime_error{"IncrementalConverter: calibration degenerate"};
  }
  gain_ = (u_hi - u_lo) / (raw_hi - raw_lo);
  offset_ = u_lo - gain_ * raw_lo;
}

double IncrementalConverter::convert_voltage(double vin_v) {
  const double raw = run_conversion([&] { return modulator_->step_voltage(vin_v); });
  return gain_ * raw + offset_;
}

double IncrementalConverter::convert_capacitive(double c_sense_f, double c_ref_f) {
  const double raw =
      run_conversion([&] { return modulator_->step_capacitive(c_sense_f, c_ref_f); });
  return gain_ * raw + offset_;
}

double IncrementalConverter::conversion_time_s() const noexcept {
  return static_cast<double>(config_.cycles) / config_.modulator.sampling_rate_hz;
}

double IncrementalConverter::ideal_resolution_bits() const noexcept {
  const auto n = static_cast<double>(config_.cycles);
  return std::log2(n * (n + 1.0) / 2.0);
}

}  // namespace tono::analog
