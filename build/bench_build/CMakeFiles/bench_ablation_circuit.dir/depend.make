# Empty dependencies file for bench_ablation_circuit.
# This may be replaced when dependencies are built.
