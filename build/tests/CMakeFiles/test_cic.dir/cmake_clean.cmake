file(REMOVE_RECURSE
  "CMakeFiles/test_cic.dir/test_cic.cpp.o"
  "CMakeFiles/test_cic.dir/test_cic.cpp.o.d"
  "test_cic"
  "test_cic.pdb"
  "test_cic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
