// mux.hpp — the synchronized row/column analog multiplexers of Fig. 4.
//
// "The transducer elements of a sensor array are connected via two
// synchronized analog multiplexers to the readout circuit … The settling
// when switching between different sensor elements is limited by the signal
// bandwidth of the ΔΣ-AD-converter." (§2.2)
//
// The analog part of a channel switch is fast (R_on·C ≈ nanoseconds versus
// the 7.8 µs clock), but we model it anyway: an exponential blend of the
// previous channel's capacitance into the new one, plus switch charge
// injection as a transient capacitance offset. The dominant, paper-noted
// settling through the decimation filter emerges downstream.
#pragma once

#include <cstddef>
#include <stdexcept>

namespace tono {
class CheckpointReader;
class CheckpointWriter;
}  // namespace tono

namespace tono::analog {

struct MuxConfig {
  std::size_t rows{2};
  std::size_t cols{2};
  double on_resistance_ohm{2000.0};
  /// Total capacitance loading the readout node [F] (sensor + wiring).
  double node_capacitance_f{150e-15};
  /// Charge injected by the switches at each transition [C].
  double charge_injection_c{5e-15 * 0.1};  // 5 fF overlap × 100 mV
  /// Excitation voltage used to convert injected charge into an equivalent
  /// capacitance error.
  double excitation_v{2.5};
};

/// Tracks the selected element and shapes the capacitance seen by the
/// modulator during channel transitions.
class AnalogMux {
 public:
  explicit AnalogMux(const MuxConfig& config);

  /// Selects (row, col); throws std::out_of_range on invalid indices.
  void select(std::size_t row, std::size_t col);

  [[nodiscard]] std::size_t selected_row() const noexcept { return row_; }
  [[nodiscard]] std::size_t selected_col() const noexcept { return col_; }
  [[nodiscard]] std::size_t selected_index() const noexcept {
    return row_ * config_.cols + col_;
  }

  /// Capacitance the readout sees `dt_since_switch` seconds after the last
  /// select(), given the true capacitance of the new channel and the value
  /// that was being sampled before the switch.
  [[nodiscard]] double observed_capacitance(double target_c_f,
                                            double dt_since_switch_s) const noexcept;

  /// Records the capacitance sampled just before a switch (call from the
  /// scan controller) so observed_capacitance can blend from it.
  void note_preswitch_capacitance(double c_f) noexcept { previous_c_ = c_f; }

  /// RC settling time constant of the mux path [s].
  [[nodiscard]] double settling_tau_s() const noexcept;

  /// True once the switching transient has *exactly* decayed: for
  /// dt ≥ 800·τ, exp(−dt/τ) is +0.0 in double precision (e⁻⁸⁰⁰ is far below
  /// the smallest subnormal), so observed_capacitance(c, dt') == c
  /// bit-for-bit for every dt' ≥ dt. Lets block-mode callers skip the
  /// per-clock blend without changing a single output bit.
  [[nodiscard]] bool is_settled(double dt_since_switch_s) const noexcept {
    return dt_since_switch_s >= 800.0 * settling_tau_s();
  }

  /// Time for the analog path to settle within the given relative error.
  [[nodiscard]] double settling_time_s(double relative_error) const noexcept;

  [[nodiscard]] const MuxConfig& config() const noexcept { return config_; }

  /// Checkpointing: selected element and the pre-switch blend capacitance.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  MuxConfig config_;
  std::size_t row_{0};
  std::size_t col_{0};
  double previous_c_{0.0};
};

}  // namespace tono::analog
