#include "src/analog/modulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/checkpoint.hpp"
#include "src/common/units.hpp"

namespace tono::analog {

DeltaSigmaModulator::DeltaSigmaModulator(const ModulatorConfig& config)
    : config_(config),
      opamp1_(config.opamp1),
      opamp2_(config.opamp2),
      comparator_(config.comparator, Rng{config.seed}.fork_named("comparator")),
      rng_(Rng{config.seed}.fork_named("modulator")),
      flicker1_(Rng{config.seed}.fork_named("flicker1"), 20),
      flicker2_(Rng{config.seed}.fork_named("flicker2"), 20) {
  flicker_scale1_ = flicker_scale(config_.opamp1);
  flicker_scale2_ = flicker_scale(config_.opamp2);
  if (config_.sampling_rate_hz <= 0.0) {
    throw std::invalid_argument{"DeltaSigmaModulator: sampling rate must be > 0"};
  }
  if (config_.vref_v <= 0.0 || config_.vexc_v <= 0.0) {
    throw std::invalid_argument{"DeltaSigmaModulator: references must be > 0"};
  }
  if (config_.c_sample_f <= 0.0 || config_.c_fb1_f <= 0.0 || config_.c_ref_f <= 0.0) {
    throw std::invalid_argument{"DeltaSigmaModulator: capacitors must be > 0"};
  }
  if (config_.order != 1 && config_.order != 2) {
    throw std::invalid_argument{"DeltaSigmaModulator: order must be 1 or 2"};
  }
  Rng mismatch_rng = Rng{config_.seed}.fork_named("mismatch");
  const double sigma = config_.cap_mismatch_sigma;
  sample_mismatch_ = 1.0 + mismatch_rng.gaussian(0.0, sigma);
  fb1_mismatch_ = 1.0 + mismatch_rng.gaussian(0.0, sigma);
  ref_mismatch_ = 1.0 + mismatch_rng.gaussian(0.0, sigma);
  g2_mismatch_ = 1.0 + mismatch_rng.gaussian(0.0, sigma);
  // Block-path invariants: the clock phase is fixed by the config, so the
  // exact-settle thresholds can be resolved once here instead of per clock.
  dt_phase_s_ = 0.5 / config_.sampling_rate_hz;
  clock_period_s_ = 1.0 / config_.sampling_rate_hz;
  settle_exact1_v_ = opamp1_.full_settle_threshold(dt_phase_s_);
  settle_exact2_v_ = opamp2_.full_settle_threshold(dt_phase_s_);
  swing1_v_ = config_.opamp1.output_swing_v;
  swing2_v_ = config_.opamp2.output_swing_v;
  noise_plan_fills_metric_ =
      &metrics::Registry::global().counter(metrics::names::kModulatorNoisePlanFills);
}

double DeltaSigmaModulator::flicker_scale(const OpAmpConfig& amp) const noexcept {
  if (amp.flicker_corner_hz <= 0.0 || amp.noise_vrms <= 0.0) return 0.0;
  // White PSD: σ_w² / (fs/2). Pink generator: unit variance spread as c/f
  // over [f_lo, fs/2] with f_lo = fs/2^octaves (20 octaves) →
  // c = 1/ln(2^19). Scale g so g²·c/f_corner = white PSD, i.e. the flicker
  // PSD crosses the white floor at the corner; CDS divides the amplitude.
  const double fs_half = 0.5 * config_.sampling_rate_hz;
  const double c = 1.0 / (19.0 * std::log(2.0));
  const double white_psd = amp.noise_vrms * amp.noise_vrms / fs_half;
  const double g = std::sqrt(white_psd * amp.flicker_corner_hz / c);
  const double rejection = std::max(config_.cds_flicker_rejection, 1.0);
  return g / rejection;
}

void DeltaSigmaModulator::set_feedback_capacitor(double c_fb1_f) {
  if (c_fb1_f <= 0.0) {
    throw std::invalid_argument{"set_feedback_capacitor: must be > 0"};
  }
  config_.c_fb1_f = c_fb1_f;
}

double DeltaSigmaModulator::full_scale_delta_c() const noexcept {
  return config_.c_fb1_f * fb1_mismatch_ * config_.vref_v / config_.vexc_v;
}

double DeltaSigmaModulator::normalized_input(double delta_c_f) const noexcept {
  return delta_c_f / full_scale_delta_c();
}

int DeltaSigmaModulator::step_normalized(double u, double extra_noise_u) {
  const double vref = config_.vref_v;
  const double dt = 0.5 / config_.sampling_rate_hz;  // one clock phase
  const auto& lc = config_.loop;
  const double scale = lc.state_scale_v;  // volts per unit of loop state

  // Reference noise enters through the feedback charge.
  double ref_err_u = 0.0;
  if (config_.ref_noise_vrms > 0.0) {
    ref_err_u = rng_.gaussian(0.0, config_.ref_noise_vrms) / vref;
  }

  const double d = static_cast<double>(bit_);

  // ---- First integrator (delaying): x1 += g1·u − a1·d, state in FS units.
  const double u_total = u + extra_noise_u + ref_err_u * d;
  double delta1 = lc.g1 * u_total - lc.a1 * d * (1.0 + ref_err_u);
  // Op-amp thermal + flicker noise, referred to the integrator output node.
  if (config_.opamp1.noise_vrms > 0.0) {
    delta1 += rng_.gaussian(0.0, config_.opamp1.noise_vrms) / scale;
  }
  if (flicker_scale1_ > 0.0) {
    delta1 += flicker1_.next() * flicker_scale1_ / scale;
  }
  if (config_.enable_settling) {
    delta1 = opamp1_.settle(delta1 * scale, dt) / scale;
  }
  const double x1_prev = x1_;
  const double x1_new = opamp1_.leak_factor() * x1_ + delta1;
  const double x1_clipped = opamp1_.clip(x1_new * scale) / scale;
  if (x1_clipped != x1_new) ++clip_count_;
  x1_ = x1_clipped;

  max_x1_ = std::max(max_x1_, std::abs(x1_ * scale));

  if (config_.order == 1) {
    // Single-integrator baseline: the quantizer closes directly on x1.
    bit_ = comparator_.decide(x1_ * scale);
    time_s_ += 1.0 / config_.sampling_rate_hz;
    return bit_;
  }

  // ---- Second integrator: x2 += g2·x1_prev − a2·d (x1 half-cycle delayed).
  double delta2 = lc.g2 * g2_mismatch_ * x1_prev - lc.a2 * d;
  if (config_.opamp2.noise_vrms > 0.0) {
    delta2 += rng_.gaussian(0.0, config_.opamp2.noise_vrms) / scale;
  }
  if (flicker_scale2_ > 0.0) {
    delta2 += flicker2_.next() * flicker_scale2_ / scale;
  }
  if (config_.enable_settling) {
    delta2 = opamp2_.settle(delta2 * scale, dt) / scale;
  }
  const double x2_new = opamp2_.leak_factor() * x2_ + delta2;
  const double x2_clipped = opamp2_.clip(x2_new * scale) / scale;
  if (x2_clipped != x2_new) ++clip_count_;
  x2_ = x2_clipped;

  max_x2_ = std::max(max_x2_, std::abs(x2_ * scale));

  // ---- Quantizer sees the physical second-integrator output voltage.
  bit_ = comparator_.decide(x2_ * scale);
  time_s_ += 1.0 / config_.sampling_rate_hz;
  return bit_;
}

int DeltaSigmaModulator::step_voltage(double vin_v) {
  const double c_s = config_.c_sample_f * sample_mismatch_;
  double noise_u = 0.0;
  if (config_.enable_ktc_noise) {
    // Input + feedback branches sample on c_sample twice per period:
    // variance 4·kT·C in charge, normalized by the full-scale charge.
    const double q_sigma =
        std::sqrt(4.0 * units::k_boltzmann * config_.temperature_k * c_s);
    noise_u = rng_.gaussian(0.0, q_sigma / (c_s * config_.vref_v));
  }
  return step_normalized(vin_v / config_.vref_v, noise_u);
}

int DeltaSigmaModulator::step_capacitive(double c_sense_f, double c_ref_f) {
  const double c_fb = config_.c_fb1_f * fb1_mismatch_;
  const double q_fs = c_fb * config_.vref_v;
  const double q_sig = (c_sense_f - c_ref_f) * config_.vexc_v;
  double noise_u = 0.0;
  if (config_.enable_ktc_noise) {
    // Sensor, reference and feedback branches each contribute kT·C per
    // phase; two phases per conversion.
    const double c_total = c_sense_f + c_ref_f + c_fb;
    const double q_sigma =
        std::sqrt(2.0 * units::k_boltzmann * config_.temperature_k * c_total * 2.0);
    noise_u = rng_.gaussian(0.0, q_sigma / q_fs);
  }
  return step_normalized(q_sig / q_fs, noise_u);
}

DeltaSigmaModulator::CapacitiveInput DeltaSigmaModulator::capacitive_input_(
    double c_sense_f, double c_ref_f) const noexcept {
  // Everything that depends only on the capacitances is loop-invariant; the
  // expressions below are copied verbatim from step_capacitive so the hoisted
  // values are bit-identical to what each scalar call would recompute.
  CapacitiveInput in;
  const double c_fb = config_.c_fb1_f * fb1_mismatch_;
  const double q_fs = c_fb * config_.vref_v;
  const double q_sig = (c_sense_f - c_ref_f) * config_.vexc_v;
  in.u = q_sig / q_fs;
  in.ktc = config_.enable_ktc_noise;
  if (in.ktc) {
    const double c_total = c_sense_f + c_ref_f + c_fb;
    const double q_sigma =
        std::sqrt(2.0 * units::k_boltzmann * config_.temperature_k * c_total * 2.0);
    in.sigma_u = q_sigma / q_fs;
  }
  return in;
}

std::size_t DeltaSigmaModulator::shared_draws_per_clock_(bool ktc) const noexcept {
  const bool ref_on = config_.ref_noise_vrms > 0.0;
  const bool op1_on = config_.opamp1.noise_vrms > 0.0;
  const bool op2_on = config_.order == 2 && config_.opamp2.noise_vrms > 0.0;
  return static_cast<std::size_t>(ktc) + static_cast<std::size_t>(ref_on) +
         static_cast<std::size_t>(op1_on) + static_cast<std::size_t>(op2_on);
}

void DeltaSigmaModulator::build_shared_plan_(std::size_t n, double sigma_u,
                                             bool ktc, const double* raw) noexcept {
  // The shared stream's draw order per clock is [kT/C, ref, op-amp1,
  // op-amp2], each present only when its source is enabled — and
  // gaussian(mean, sigma) is an affine map over gaussian(), so the standard
  // normals behind all of them form ONE sequence (`raw`). De-interleave into
  // the SoA buffers applying each source's exact draw-site expression,
  // including its `0.0 +` (which turns a −0.0 product into +0.0, as the
  // scalar path's mean addition does).
  const bool ref_on = config_.ref_noise_vrms > 0.0;
  const bool op1_on = config_.opamp1.noise_vrms > 0.0;
  const bool op2_on = config_.order == 2 && config_.opamp2.noise_vrms > 0.0;
  const double vref = config_.vref_v;
  const double scale = config_.loop.state_scale_v;
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ktc) plan_.ktc[i] = 0.0 + sigma_u * raw[j++];
    if (ref_on) plan_.ref[i] = (0.0 + config_.ref_noise_vrms * raw[j++]) / vref;
    if (op1_on) plan_.op1[i] = (0.0 + config_.opamp1.noise_vrms * raw[j++]) / scale;
    if (op2_on) plan_.op2[i] = (0.0 + config_.opamp2.noise_vrms * raw[j++]) / scale;
  }
}

void DeltaSigmaModulator::apply_flicker_scale1_(std::size_t n) noexcept {
  const double scale = config_.loop.state_scale_v;
  for (std::size_t i = 0; i < n; ++i) {
    plan_.flick1[i] = plan_.flick1[i] * flicker_scale1_ / scale;
  }
}

void DeltaSigmaModulator::apply_flicker_scale2_(std::size_t n) noexcept {
  const double scale = config_.loop.state_scale_v;
  for (std::size_t i = 0; i < n; ++i) {
    plan_.flick2[i] = plan_.flick2[i] * flicker_scale2_ / scale;
  }
}

void DeltaSigmaModulator::finish_plan_(std::size_t n, bool ktc) noexcept {
  plan_.len = n;
  plan_.idx = 0;
  plan_.ktc_on = ktc;
  plan_.ref_on = config_.ref_noise_vrms > 0.0;
  plan_.op1_on = config_.opamp1.noise_vrms > 0.0;
  plan_.flick1_on = flicker_scale1_ > 0.0;
  plan_.op2_on = config_.order == 2 && config_.opamp2.noise_vrms > 0.0;
  plan_.flick2_on = config_.order == 2 && flicker_scale2_ > 0.0;
  noise_plan_fills_metric_->add(1);  // frame rate — inside the hot-path contract
}

void DeltaSigmaModulator::fill_noise_plan_(std::size_t n, double sigma_u,
                                           bool ktc) noexcept {
  // Generate the whole frame's worth of shared-stream normals in a single
  // bulk fill (same end state as the interleaved scalar draws), then
  // de-interleave. See build_shared_plan_.
  double raw[4 * NoisePlan::kFrame];
  rng_.fill_gaussian(raw, n * shared_draws_per_clock_(ktc));
  build_shared_plan_(n, sigma_u, ktc, raw);
  if (flicker_scale1_ > 0.0) {
    flicker1_.fill_next(plan_.flick1.data(), n);
    apply_flicker_scale1_(n);
  }
  if (config_.order == 2 && flicker_scale2_ > 0.0) {
    flicker2_.fill_next(plan_.flick2.data(), n);
    apply_flicker_scale2_(n);
  }
  comparator_.plan(plan_.comp.data(), n);
  finish_plan_(n, ktc);
}

void DeltaSigmaModulator::step_capacitive_block(double c_sense_f, double c_ref_f,
                                                int* bits_out, std::size_t n) {
  const CapacitiveInput in = capacitive_input_(c_sense_f, c_ref_f);
  while (n > 0) {
    const std::size_t frame = std::min<std::size_t>(n, NoisePlan::kFrame);
    fill_noise_plan_(frame, in.sigma_u, in.ktc);
    for (std::size_t i = 0; i < frame; ++i) {
      bits_out[i] = step_planned_(in.u);
    }
    bits_out += frame;
    n -= frame;
  }
}

std::vector<int> DeltaSigmaModulator::run_voltage(
    const std::function<double(double)>& vin_of_t, std::size_t n) {
  std::vector<int> bits;
  bits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double t = time_s_;
    if (config_.clock_jitter_rms_s > 0.0) {
      t += rng_.gaussian(0.0, config_.clock_jitter_rms_s);
    }
    bits.push_back(step_voltage(vin_of_t(t)));
  }
  return bits;
}

std::vector<int> DeltaSigmaModulator::run_capacitive(
    const std::function<double(double)>& c_sense_of_t, std::size_t n) {
  std::vector<int> bits;
  bits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double t = time_s_;
    if (config_.clock_jitter_rms_s > 0.0) {
      t += rng_.gaussian(0.0, config_.clock_jitter_rms_s);
    }
    bits.push_back(step_capacitive(c_sense_of_t(t)));
  }
  return bits;
}

void DeltaSigmaModulator::reset() {
  x1_ = 0.0;
  x2_ = 0.0;
  bit_ = 1;
  time_s_ = 0.0;
  max_x1_ = 0.0;
  max_x2_ = 0.0;
  clip_count_ = 0;
}

void DeltaSigmaModulator::serialize(CheckpointWriter& out) const {
  out.section("modulator");
  out.f64(config_.c_fb1_f);  // runtime-switchable via set_feedback_capacitor
  out.f64(x1_);
  out.f64(x2_);
  out.i64(bit_);
  out.f64(time_s_);
  out.f64(max_x1_);
  out.f64(max_x2_);
  out.size(clip_count_);
  rng_.serialize(out);
  flicker1_.serialize(out);
  flicker2_.serialize(out);
  comparator_.serialize(out);
}

void DeltaSigmaModulator::restore(CheckpointReader& in) {
  in.section("modulator");
  config_.c_fb1_f = in.f64();
  x1_ = in.f64();
  x2_ = in.f64();
  bit_ = static_cast<int>(in.i64());
  time_s_ = in.f64();
  max_x1_ = in.f64();
  max_x2_ = in.f64();
  clip_count_ = in.size();
  rng_.restore(in);
  flicker1_.restore(in);
  flicker2_.restore(in);
  comparator_.restore(in);
  plan_.len = plan_.idx = 0;  // transient: plans never span a checkpoint
}

}  // namespace tono::analog
