// Tests for the second-order ΔΣ modulator — the chip's core circuit.
#include "src/analog/modulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "src/dsp/decimation.hpp"
#include "src/dsp/fft.hpp"
#include "src/dsp/spectrum.hpp"

namespace tono::analog {
namespace {

ModulatorConfig ideal_config() {
  ModulatorConfig c;
  c.enable_ktc_noise = false;
  c.enable_settling = false;
  c.clock_jitter_rms_s = 0.0;
  c.ref_noise_vrms = 0.0;
  c.cap_mismatch_sigma = 0.0;
  c.opamp1.noise_vrms = 0.0;
  c.opamp2.noise_vrms = 0.0;
  c.opamp1.dc_gain = 1e9;
  c.opamp2.dc_gain = 1e9;
  c.comparator.noise_vrms = 0.0;
  c.comparator.metastable_band_v = 0.0;
  return c;
}

TEST(Modulator, OutputsAreBipolarBits) {
  DeltaSigmaModulator mod{ModulatorConfig{}};
  for (int i = 0; i < 1000; ++i) {
    const int b = mod.step_voltage(0.3);
    EXPECT_TRUE(b == 1 || b == -1);
  }
}

TEST(Modulator, BitstreamMeanTracksDcInput) {
  for (double u : {-0.6, -0.2, 0.0, 0.3, 0.7}) {
    DeltaSigmaModulator mod{ideal_config()};
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < 1000; ++i) (void)mod.step_voltage(u * 2.5);  // settle
    for (int i = 0; i < n; ++i) acc += mod.step_voltage(u * 2.5);
    EXPECT_NEAR(acc / n, u, 0.01) << "u = " << u;
  }
}

TEST(Modulator, StableForNominalInputs) {
  ModulatorConfig cfg;
  DeltaSigmaModulator mod{cfg};
  const std::size_t n = 100000;
  const double f = 100.0;
  auto bits = mod.run_voltage(
      [&](double t) {
        return 0.8 * cfg.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
      },
      n);
  EXPECT_EQ(mod.clip_count(), 0u);
  EXPECT_LT(mod.max_state1_v(), cfg.opamp1.output_swing_v);
  EXPECT_LT(mod.max_state2_v(), cfg.opamp2.output_swing_v);
}

TEST(Modulator, NoiseShapingPushesQuantizationNoiseUp) {
  // Spectrum of the raw bitstream for a DC input: in-band power far below
  // out-of-band power.
  DeltaSigmaModulator mod{ideal_config()};
  const std::size_t n = 65536;
  std::vector<double> bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    bits[i] = static_cast<double>(mod.step_voltage(0.1 * 2.5));
  }
  const auto pwr = tono::dsp::power_spectrum(bits);
  const std::size_t half = pwr.size() - 1;
  double low = 0.0;
  double high = 0.0;
  for (std::size_t k = 1; k <= half / 64; ++k) low += pwr[k];
  for (std::size_t k = half / 2; k <= half; ++k) high += pwr[k];
  EXPECT_GT(high / low, 1e3);  // ≥ 30 dB contrast
}

TEST(Modulator, NoiseShapingSlopeIsSecondOrder) {
  // The shaped-noise PSD should rise ≈ 40 dB/decade. A DC input makes the
  // ideal loop's error purely tonal (the inter-tone floor is just FFT
  // leakage), so drive a busy low-frequency sine to decorrelate the
  // quantizer, then compare median bin power (robust against residual
  // harmonics) between two bands a decade apart.
  ModulatorConfig cfg = ideal_config();
  DeltaSigmaModulator mod{cfg};
  const std::size_t n = 262144;
  const double f_sig = 0.0005 * cfg.sampling_rate_hz;
  std::vector<double> bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / cfg.sampling_rate_hz;
    bits[i] = static_cast<double>(mod.step_voltage(
        0.5 * cfg.vref_v * std::sin(2.0 * std::numbers::pi * f_sig * t)));
  }
  const auto pwr = tono::dsp::power_spectrum(bits);
  auto band_power = [&](double f_lo, double f_hi) {
    const std::size_t k_lo = static_cast<std::size_t>(f_lo * 2.0 * (pwr.size() - 1));
    const std::size_t k_hi = static_cast<std::size_t>(f_hi * 2.0 * (pwr.size() - 1));
    std::vector<double> band(pwr.begin() + static_cast<long>(k_lo),
                             pwr.begin() + static_cast<long>(k_hi));
    std::sort(band.begin(), band.end());
    return band[band.size() / 2];
  };
  // Below f/fs ≈ 0.02 the sine's harmonic skirt dominates; above ≈ 0.2 the
  // NTF flattens toward its out-of-band gain. Fit the slope in between.
  const double p1 = band_power(0.02, 0.03);    // center ≈ 0.025 fs
  const double p2 = band_power(0.08, 0.12);    // center ≈ 0.1 fs
  const double decades = std::log10(0.1 / 0.025);
  const double slope_db_per_decade = 10.0 * std::log10(p2 / p1) / decades;
  EXPECT_GT(slope_db_per_decade, 30.0);
  EXPECT_LT(slope_db_per_decade, 50.0);
}

TEST(Modulator, HeadlineSnrAtNearFullScale) {
  // The paper's §3.1 headline: 12 bit / SNR > 72 dB at 1 kS/s with the
  // SINC³+FIR decimation at OSR 128 — reproduced end to end.
  ModulatorConfig cfg;  // full non-idealities
  DeltaSigmaModulator mod{cfg};
  tono::dsp::DecimationChain chain{tono::dsp::DecimationConfig{}};
  const std::size_t n_out = 8192;
  const double f = tono::dsp::coherent_frequency(15.625, 1000.0, n_out);
  const double amp = 0.875;
  const std::size_t n_bits = (n_out + 300) * 128;
  const auto bits = mod.run_voltage(
      [&](double t) {
        return amp * cfg.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
      },
      n_bits);
  std::vector<int> ints(bits.begin(), bits.end());
  const auto vals = chain.process_values(ints);
  ASSERT_GE(vals.size(), n_out);
  std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
  tono::dsp::SpectrumConfig sc;
  sc.sample_rate_hz = 1000.0;
  const auto a = tono::dsp::analyze_tone(rec, sc);
  EXPECT_GT(a.snr_db, 72.0);
  EXPECT_GT(a.enob_bits, 11.0);
}

TEST(Modulator, CapacitiveModeFullScale) {
  ModulatorConfig cfg = ideal_config();
  cfg.c_fb1_f = 25e-15;
  DeltaSigmaModulator mod{cfg};
  EXPECT_NEAR(mod.full_scale_delta_c(), 25e-15, 1e-20);
  EXPECT_NEAR(mod.normalized_input(12.5e-15), 0.5, 1e-12);
}

TEST(Modulator, CapacitiveModeTracksDeltaC) {
  ModulatorConfig cfg = ideal_config();
  cfg.c_fb1_f = 25e-15;
  cfg.c_ref_f = 100e-15;
  DeltaSigmaModulator mod{cfg};
  const double c_ref = 100e-15;
  const double delta = 10e-15;  // u = 0.4
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < 1000; ++i) (void)mod.step_capacitive(c_ref + delta, c_ref);
  for (int i = 0; i < n; ++i) acc += mod.step_capacitive(c_ref + delta, c_ref);
  EXPECT_NEAR(acc / n, 0.4, 0.01);
}

TEST(Modulator, SmallerFeedbackCapMagnifiesInput) {
  // §4 future work: adjusting C_fb scales the capacitance full scale.
  ModulatorConfig big = ideal_config();
  big.c_fb1_f = 25e-15;
  ModulatorConfig small = ideal_config();
  small.c_fb1_f = 5e-15;
  DeltaSigmaModulator mb{big};
  DeltaSigmaModulator ms{small};
  EXPECT_NEAR(mb.full_scale_delta_c() / ms.full_scale_delta_c(), 5.0, 1e-9);
}

TEST(Modulator, VexcScalesCapacitiveGain) {
  ModulatorConfig cfg = ideal_config();
  cfg.vexc_v = 1.25;  // half excitation → double ΔC full scale
  DeltaSigmaModulator mod{cfg};
  EXPECT_NEAR(mod.full_scale_delta_c(), cfg.c_fb1_f * cfg.vref_v / 1.25, 1e-20);
}

TEST(Modulator, OverloadRecovers) {
  ModulatorConfig cfg;
  DeltaSigmaModulator mod{cfg};
  // Drive far beyond full scale: states clip.
  for (int i = 0; i < 5000; ++i) (void)mod.step_voltage(2.0 * cfg.vref_v);
  EXPECT_GT(mod.clip_count(), 0u);
  // Back to a small input: the loop re-locks and tracks DC again.
  double acc = 0.0;
  for (int i = 0; i < 2000; ++i) (void)mod.step_voltage(0.0);
  for (int i = 0; i < 20000; ++i) acc += mod.step_voltage(0.25 * cfg.vref_v);
  EXPECT_NEAR(acc / 20000.0, 0.25, 0.03);
}

TEST(Modulator, DeterministicWithSameSeed) {
  ModulatorConfig cfg;
  cfg.seed = 77;
  DeltaSigmaModulator a{cfg};
  DeltaSigmaModulator b{cfg};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.step_voltage(0.3), b.step_voltage(0.3));
  }
}

TEST(Modulator, MismatchVariesWithSeed) {
  ModulatorConfig c1;
  c1.seed = 1;
  ModulatorConfig c2;
  c2.seed = 2;
  DeltaSigmaModulator a{c1};
  DeltaSigmaModulator b{c2};
  EXPECT_NE(a.full_scale_delta_c(), b.full_scale_delta_c());
}

TEST(Modulator, ResetRestoresState) {
  ModulatorConfig cfg;
  DeltaSigmaModulator mod{cfg};
  std::vector<int> first;
  for (int i = 0; i < 500; ++i) first.push_back(mod.step_voltage(0.2));
  mod.reset();
  // After reset the noise RNG has advanced, so compare against a noiseless
  // configuration for exact repetition instead.
  ModulatorConfig quiet = ideal_config();
  DeltaSigmaModulator m1{quiet};
  std::vector<int> a;
  for (int i = 0; i < 500; ++i) a.push_back(m1.step_voltage(0.2));
  m1.reset();
  std::vector<int> b;
  for (int i = 0; i < 500; ++i) b.push_back(m1.step_voltage(0.2));
  EXPECT_EQ(a, b);
  EXPECT_EQ(m1.clip_count(), 0u);
  EXPECT_DOUBLE_EQ(m1.time_s(), 500.0 / quiet.sampling_rate_hz);
}

TEST(Modulator, FirstOrderBaselineTracksDc) {
  ModulatorConfig cfg = ideal_config();
  cfg.order = 1;
  DeltaSigmaModulator mod{cfg};
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < 1000; ++i) (void)mod.step_voltage(0.3 * 2.5);
  for (int i = 0; i < n; ++i) acc += mod.step_voltage(0.3 * 2.5);
  EXPECT_NEAR(acc / n, 0.3, 0.01);
}

TEST(Modulator, SecondOrderBeatsFirstOrderSnr) {
  auto snr_of = [](int order) {
    ModulatorConfig cfg;
    cfg.order = order;
    DeltaSigmaModulator mod{cfg};
    tono::dsp::DecimationConfig dc;
    dc.output_bits = 16;  // compare modulators, not the word
    tono::dsp::DecimationChain chain{dc};
    const std::size_t n_out = 4096;
    const double f = tono::dsp::coherent_frequency(15.625, 1000.0, n_out);
    const auto bits = mod.run_voltage(
        [&](double t) {
          return 0.7 * cfg.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
        },
        (n_out + 300) * 128);
    std::vector<int> ints(bits.begin(), bits.end());
    const auto vals = chain.process_values(ints);
    std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
    tono::dsp::SpectrumConfig sc;
    sc.sample_rate_hz = 1000.0;
    return tono::dsp::analyze_tone(rec, sc).snr_db;
  };
  const double first = snr_of(1);
  const double second = snr_of(2);
  EXPECT_GT(second, first + 15.0);  // decades of OSR separate the orders
}

TEST(Modulator, RejectsBadOrder) {
  ModulatorConfig bad;
  bad.order = 3;
  EXPECT_THROW((DeltaSigmaModulator{bad}), std::invalid_argument);
  ModulatorConfig bad2;
  bad2.order = 0;
  EXPECT_THROW((DeltaSigmaModulator{bad2}), std::invalid_argument);
}

TEST(Modulator, FlickerNoiseRaisesInBandFloor) {
  // With CDS disabled and a huge 1/f corner, the in-band noise rises; the
  // default CDS rejection restores it.
  auto snr_of = [](double corner, double rejection) {
    ModulatorConfig cfg;
    cfg.opamp1.flicker_corner_hz = corner;
    cfg.opamp2.flicker_corner_hz = corner;
    cfg.opamp1.noise_vrms = 300e-6;  // exaggerate so the effect is visible
    cfg.opamp2.noise_vrms = 300e-6;
    cfg.cds_flicker_rejection = rejection;
    DeltaSigmaModulator mod{cfg};
    tono::dsp::DecimationChain chain{tono::dsp::DecimationConfig{}};
    const std::size_t n_out = 4096;
    const double f = tono::dsp::coherent_frequency(15.625, 1000.0, n_out);
    const auto bits = mod.run_voltage(
        [&](double t) {
          return 0.7 * cfg.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
        },
        (n_out + 300) * 128);
    std::vector<int> ints(bits.begin(), bits.end());
    const auto vals = chain.process_values(ints);
    std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
    tono::dsp::SpectrumConfig sc;
    sc.sample_rate_hz = 1000.0;
    return tono::dsp::analyze_tone(rec, sc).snr_db;
  };
  const double snr_clean = snr_of(0.0, 1.0);
  const double snr_flicker = snr_of(50e3, 1.0);
  const double snr_cds = snr_of(50e3, 30.0);
  EXPECT_LT(snr_flicker, snr_clean - 3.0);  // flicker visibly degrades
  EXPECT_GT(snr_cds, snr_flicker + 3.0);    // CDS recovers most of it
}

TEST(Modulator, DefaultFlickerDisabled) {
  // The paper-default configuration has flicker off; the headline SNR test
  // above must therefore be unaffected by the flicker machinery.
  ModulatorConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.opamp1.flicker_corner_hz, 0.0);
}

TEST(Modulator, RejectsBadConfig) {
  ModulatorConfig bad;
  bad.sampling_rate_hz = 0.0;
  EXPECT_THROW((DeltaSigmaModulator{bad}), std::invalid_argument);
  ModulatorConfig bad2;
  bad2.vref_v = -1.0;
  EXPECT_THROW((DeltaSigmaModulator{bad2}), std::invalid_argument);
  ModulatorConfig bad3;
  bad3.c_fb1_f = 0.0;
  EXPECT_THROW((DeltaSigmaModulator{bad3}), std::invalid_argument);
}

// Property: SNR grows ≈ 15 dB per OSR doubling (2nd-order law) until the
// 12-bit output word dominates.
class OsrSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OsrSweepTest, SnrFollowsSecondOrderLaw) {
  const std::size_t osr = GetParam();
  ModulatorConfig cfg = ideal_config();
  DeltaSigmaModulator mod{cfg};
  tono::dsp::DecimationConfig dc;
  dc.total_decimation = osr;
  dc.cic_decimation = osr >= 32 ? 32 : osr;
  dc.input_rate_hz = cfg.sampling_rate_hz;
  dc.cutoff_hz = cfg.sampling_rate_hz / static_cast<double>(osr) / 2.0;
  dc.output_bits = 20;  // wide word so quantization does not mask the law
  tono::dsp::DecimationChain chain{dc};
  const double fs_out = cfg.sampling_rate_hz / static_cast<double>(osr);
  const std::size_t n_out = 4096;
  const double f = tono::dsp::coherent_frequency(fs_out / 64.0, fs_out, n_out);
  const auto bits = mod.run_voltage(
      [&](double t) {
        return 0.7 * cfg.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
      },
      (n_out + 300) * osr);
  std::vector<int> ints(bits.begin(), bits.end());
  const auto vals = chain.process_values(ints);
  ASSERT_GE(vals.size(), n_out);
  std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
  tono::dsp::SpectrumConfig sc;
  sc.sample_rate_hz = fs_out;
  const auto a = tono::dsp::analyze_tone(rec, sc);
  // Ideal − 3 dB input − our NTF's ~12 dB in-band penalty − decimation
  // imperfections: require within a generous band of the law, and that the
  // law's slope shows up across the sweep (checked by monotonicity below).
  const double ideal = tono::dsp::ideal_delta_sigma_snr_db(2, static_cast<double>(osr),
                                                           -3.1);
  EXPECT_GT(a.snr_db, ideal - 25.0) << "osr " << osr;
  EXPECT_LT(a.snr_db, ideal + 3.0) << "osr " << osr;
}

INSTANTIATE_TEST_SUITE_P(Osrs, OsrSweepTest, ::testing::Values(32u, 64u, 128u, 256u));

// step_capacitive_block (the noise-plan path) must be bit-identical to n
// scalar step_capacitive calls — across every noise source, including the
// plan's hardest cases: flicker streams, comparator metastable resyncs, and
// frame lengths that are not a multiple of the plan size.
void expect_block_matches_scalar(const ModulatorConfig& c, double c_sense_f,
                                 std::size_t n) {
  DeltaSigmaModulator scalar{c};
  DeltaSigmaModulator block{c};
  const double c_ref = c.c_ref_f;
  std::vector<int> want(n);
  for (auto& b : want) b = scalar.step_capacitive(c_sense_f, c_ref);
  std::vector<int> got(n);
  block.step_capacitive_block(c_sense_f, c_ref, got.data(), n);
  ASSERT_EQ(want, got);
  EXPECT_EQ(scalar.integrator1_v(), block.integrator1_v());
  EXPECT_EQ(scalar.integrator2_v(), block.integrator2_v());
  EXPECT_EQ(scalar.time_s(), block.time_s());
  EXPECT_EQ(scalar.clip_count(), block.clip_count());
  EXPECT_EQ(scalar.max_state1_v(), block.max_state1_v());
  EXPECT_EQ(scalar.max_state2_v(), block.max_state2_v());
  // The generators must also land in the same state: continuing scalar on
  // both instances stays in lockstep.
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(scalar.step_capacitive(c_sense_f, c_ref),
              block.step_capacitive(c_sense_f, c_ref));
  }
}

TEST(ModulatorBlock, MatchesScalarWithDefaultNoise) {
  expect_block_matches_scalar(ModulatorConfig{}, 112e-15, 1280);
}

TEST(ModulatorBlock, MatchesScalarOnPartialAndOddFrames) {
  for (std::size_t n : {1u, 5u, 127u, 128u, 129u, 383u}) {
    expect_block_matches_scalar(ModulatorConfig{}, 95e-15, n);
  }
}

TEST(ModulatorBlock, MatchesScalarWithFlickerEnabled) {
  ModulatorConfig c;
  c.opamp1.flicker_corner_hz = 1000.0;
  c.opamp2.flicker_corner_hz = 500.0;
  expect_block_matches_scalar(c, 108e-15, 640);
}

TEST(ModulatorBlock, MatchesScalarUnderHeavyMetastability) {
  ModulatorConfig c;
  c.comparator.metastable_band_v = 0.5;  // constant mid-frame plan resyncs
  expect_block_matches_scalar(c, 104e-15, 512);
}

TEST(ModulatorBlock, MatchesScalarWithNoiseSourcesDisabled) {
  expect_block_matches_scalar(ideal_config(), 100e-15, 256);
  ModulatorConfig c = ideal_config();
  c.enable_settling = true;  // settle-skip fast path with all noise off
  expect_block_matches_scalar(c, 120e-15, 256);
}

TEST(ModulatorBlock, MatchesScalarFirstOrderLoop) {
  ModulatorConfig c;
  c.order = 1;
  c.opamp1.flicker_corner_hz = 2000.0;
  expect_block_matches_scalar(c, 90e-15, 384);
}

TEST(ModulatorBlock, MatchesScalarWithSlowAmpPartialSettling) {
  // τ large enough that the full-settle threshold is 0: every planned step
  // must fall back to the real settle() call and still match.
  ModulatorConfig c;
  c.opamp1.gbw_hz = 100e3;
  c.opamp2.gbw_hz = 100e3;
  expect_block_matches_scalar(c, 110e-15, 512);
}

}  // namespace
}  // namespace tono::analog
