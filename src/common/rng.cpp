#include "src/common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/checkpoint.hpp"
#include "src/common/gauss_log.hpp"
#include "src/common/simd.hpp"

namespace tono {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0ull - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::gaussian_pair_() noexcept {
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  // gausslog::polar_factor, not libm: the SIMD batched fills must reproduce
  // this factor bit-exactly, which libm's log does not guarantee.
  const double factor = gausslog::polar_factor(s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

void Rng::fill_gaussian(double* dest, std::size_t n) noexcept {
  // Same polar-method draws as gaussian(), restructured so the xoshiro state
  // lives in locals for the whole fill and each rejection loop emits both
  // pair values directly (the per-call spare-cache branch disappears).
  // Every expression below matches the scalar path operation-for-operation;
  // fill_gaussian's bit-identity to a scalar loop is pinned by test_rng.cpp.
  std::size_t i = 0;
  if (i < n && has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    dest[i++] = spare_gaussian_;
  }
  std::array<std::uint64_t, 4> s = state_;
  const auto next_local = [&s]() noexcept {
    const std::uint64_t result = rotl_(s[0] + s[3], 23) + s[0];
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl_(s[3], 45);
    return result;
  };
  // uniform(-1, 1) as gaussian_pair_ computes it: lo + (hi - lo) * uniform().
  const auto uniform_pm1 = [&next_local]() noexcept {
    return -1.0 + 2.0 * (static_cast<double>(next_local() >> 11) * 0x1.0p-53);
  };
  while (i < n) {
    double u = 0.0;
    double v = 0.0;
    double sq = 0.0;
    do {
      u = uniform_pm1();
      v = uniform_pm1();
      sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    const double factor = gausslog::polar_factor(sq);
    dest[i++] = u * factor;
    if (i < n) {
      dest[i++] = v * factor;
    } else {
      spare_gaussian_ = v * factor;
      has_spare_gaussian_ = true;
    }
  }
  state_ = s;
}

void Rng::fill_gaussian(double* dest, std::size_t n, double mean, double sigma) noexcept {
  fill_gaussian(dest, n);
  // gaussian(mean, sigma) is mean + sigma * gaussian(); applying the same
  // affine map after the fact gives the same doubles.
  for (std::size_t i = 0; i < n; ++i) dest[i] = mean + sigma * dest[i];
}

void Rng::fill_gaussian_multi(Rng* const* rngs, double* const* dests,
                              const std::size_t* ns, std::size_t k) noexcept {
  std::size_t done = 0;
#if defined(TONO_SIMD_AVX2)
  constexpr std::size_t kGroup = 4;
#elif defined(TONO_SIMD_NEON)
  constexpr std::size_t kGroup = 2;
#else
  constexpr std::size_t kGroup = 1;
#endif
  if constexpr (kGroup > 1) {
    // Worth a vector group only when every member still has a meaningful
    // fill ahead after its pending spare (below that, the setup + the
    // post-first-finisher scalar tails dominate).
    constexpr std::size_t kMinVectorFill = 8;
    const bool simd_on = simd::level_width(simd::active_level()) >= kGroup;
    while (simd_on && done + kGroup <= k) {
      Rng* group_rngs[kGroup];
      double* group_dests[kGroup];
      std::size_t pos[kGroup];
      std::size_t group_ns[kGroup];
      bool viable = true;
      for (std::size_t w = 0; w < kGroup; ++w) {
        Rng* rng = rngs[done + w];
        double* dest = dests[done + w];
        std::size_t n = ns[done + w];
        std::size_t at = 0;
        // Pending spare becomes dest[0], exactly as fill_gaussian's entry.
        if (at < n && rng->has_spare_gaussian_) {
          rng->has_spare_gaussian_ = false;
          dest[at++] = rng->spare_gaussian_;
        }
        group_rngs[w] = rng;
        group_dests[w] = dest;
        pos[w] = at;
        group_ns[w] = n;
        if (n - at < kMinVectorFill) viable = false;
      }
      if (!viable) {
        // Spares are already emitted; the scalar fill continues from `pos`.
        for (std::size_t w = 0; w < kGroup; ++w) {
          group_rngs[w]->fill_gaussian(group_dests[w] + pos[w],
                                       group_ns[w] - pos[w]);
        }
        done += kGroup;
        continue;
      }
#if defined(TONO_SIMD_AVX2)
      fill_gaussian_x4_avx2_(group_rngs, group_dests, pos, group_ns);
#elif defined(TONO_SIMD_NEON)
      fill_gaussian_x2_neon_(group_rngs, group_dests, pos, group_ns);
#endif
      // Rejection rates differ per stream, so the vector phase stops when
      // the first stream completes; the rest finish scalar.
      for (std::size_t w = 0; w < kGroup; ++w) {
        if (pos[w] < group_ns[w]) {
          group_rngs[w]->fill_gaussian(group_dests[w] + pos[w],
                                       group_ns[w] - pos[w]);
        }
      }
      done += kGroup;
    }
  }
  for (; done < k; ++done) rngs[done]->fill_gaussian(dests[done], ns[done]);
}

double Rng::exponential(double lambda) noexcept {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  return Rng{next_u64() ^ (salt * 0x9E3779B97F4A7C15ull + 0x632BE59BD9B4E019ull)};
}

Rng Rng::fork_named(std::string_view name) noexcept { return fork(fnv1a(name)); }

void Rng::serialize(CheckpointWriter& out) const {
  out.section("rng");
  for (std::uint64_t word : state_) out.u64(word);
  out.f64(spare_gaussian_);
  out.boolean(has_spare_gaussian_);
}

void Rng::restore(CheckpointReader& in) {
  in.section("rng");
  for (auto& word : state_) word = in.u64();
  spare_gaussian_ = in.f64();
  has_spare_gaussian_ = in.boolean();
}

}  // namespace tono
