// monitor.hpp — end-to-end continuous blood-pressure monitoring session.
//
// Drives the whole reproduction of §3.2 / Fig. 9: a synthetic wrist
// (arterial pulse + tissue coupling + artefacts) is pressed against the
// simulated chip; the monitor scans the array for the strongest element,
// takes a cuff reading for the two-point calibration, then streams a
// continuous calibrated waveform with per-beat features — something the
// cuff baseline fundamentally cannot do (§1).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/bio/artifacts.hpp"
#include "src/bio/cuff.hpp"
#include "src/bio/pulse_generator.hpp"
#include "src/bio/scenario.hpp"
#include "src/bio/tissue.hpp"
#include "src/common/metrics.hpp"
#include "src/core/calibration.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/pwa.hpp"
#include "src/core/quality.hpp"
#include "src/core/scan.hpp"
#include "src/core/telemetry.hpp"

namespace tono::core {

/// The synthetic patient + sensor placement.
struct WristModel {
  bio::PulseConfig pulse{};
  bio::TissueConfig tissue{};
  bio::ArtifactConfig artifacts{};
  bool enable_artifacts{false};
  /// Hold-down pressure of the sensor against the skin [mmHg].
  double hold_down_mmhg{80.0};
  /// Vessel axis position in die coordinates (artery runs along y) [m].
  double vessel_x_m{0.0};
  /// Whole-device placement offset from the vessel [m] (adds to element x).
  double placement_offset_m{0.0};
  /// Body-contact warming: the die drifts from ambient toward skin
  /// temperature with this time constant, moving the membrane capacitance
  /// through its tempco (a §4 "stability" effect).
  bool enable_thermal_drift{false};
  double ambient_temperature_k{300.0};
  double skin_temperature_k{307.0};
  double thermal_tau_s{120.0};
  /// Optional time-varying physiology (exercise, hypotensive episode, …);
  /// overrides the static pulse setpoints as the session progresses.
  std::shared_ptr<const bio::ScenarioProfile> scenario;
};

struct MonitoringReport {
  std::vector<double> time_s;            ///< at the output rate
  std::vector<double> waveform_mmhg;     ///< calibrated pressure
  BeatAnalysis beats;                    ///< detected on the calibrated stream
  QualityReport quality;                 ///< signal-quality index of the window
  PulseWaveSummary pulse_wave;           ///< per-beat morphology features
  // Ground truth over the same interval, for scoring:
  double truth_systolic_mmhg{0.0};
  double truth_diastolic_mmhg{0.0};
  double truth_map_mmhg{0.0};
  double truth_heart_rate_bpm{0.0};
  // Errors (estimate − truth):
  double systolic_error_mmhg{0.0};
  double diastolic_error_mmhg{0.0};
  double map_error_mmhg{0.0};
};

class BloodPressureMonitor {
 public:
  BloodPressureMonitor(const ChipConfig& chip, const WristModel& wrist);

  /// Scans the array and routes the strongest element (§2).
  [[nodiscard]] ScanResult localize(const ScanConfig& scan = {});

  /// Takes one cuff reading of the synthetic patient and fits the two-point
  /// calibration on a `window_s`-long acquisition (§3.2). Throws if the
  /// window has no usable pulse signal (bad placement, dead elements, or a
  /// converter range too coarse for the pulsation) unless `enforce_quality`
  /// is false — ablation studies of deliberately coarse ranges disable it.
  /// Returns the cuff reading used.
  [[nodiscard]] bio::CuffReading calibrate(double window_s = 15.0,
                                           const bio::CuffConfig& cuff = {},
                                           bool enforce_quality = true);

  /// Streams `duration_s` of continuous calibrated blood pressure.
  [[nodiscard]] MonitoringReport monitor(double duration_s);

  /// Simulates the device sliding on the wrist mid-session (strap slip,
  /// motion): subsequent samples see the new placement offset.
  void shift_placement(double new_offset_m) noexcept {
    wrist_.placement_offset_m = new_offset_m;
  }

  /// Adaptive monitoring (closed-loop reliability): streams in chunks,
  /// assesses signal quality after each, and re-runs the localization scan
  /// when the quality index falls below the threshold — recovering from
  /// placement shifts the way an unattended field device must.
  struct AdaptiveConfig {
    double chunk_s{10.0};
    double sqi_threshold{0.5};
    std::size_t max_rescans{3};
    ScanConfig scan{};
  };
  struct AdaptiveReport {
    std::vector<MonitoringReport> chunks;
    std::size_t rescans{0};
    std::vector<double> chunk_sqi;
  };
  [[nodiscard]] AdaptiveReport monitor_adaptive(double duration_s,
                                                const AdaptiveConfig& config);
  [[nodiscard]] AdaptiveReport monitor_adaptive(double duration_s) {
    return monitor_adaptive(duration_s, AdaptiveConfig{});
  }

  /// The contact field the chip sees (exposed for benches/tests).
  [[nodiscard]] ContactField contact_field();

  /// Link statistics of the simulated FPGA→host connection every monitor()
  /// call streams its 12-bit codes through (Fig. 3: decimation filter →
  /// USB → computer).
  [[nodiscard]] const LinkStats& link_stats() const noexcept {
    return link_decoder_.stats();
  }

  [[nodiscard]] AcquisitionPipeline& pipeline() noexcept { return pipeline_; }
  [[nodiscard]] const TwoPointCalibration& calibration() const noexcept {
    return calibration_;
  }
  [[nodiscard]] const bio::ArterialPulseGenerator& pulse() const noexcept { return *pulse_; }
  /// Mutable access so truth consumers can drain the bounded beat-truth log.
  [[nodiscard]] bio::ArterialPulseGenerator& pulse() noexcept { return *pulse_; }
  [[nodiscard]] const WristModel& wrist() const noexcept { return wrist_; }

  /// Checkpointing: the full session state — acquisition pipeline, patient
  /// physiology, artefacts, calibration, cached physiological state, the
  /// runtime placement offset and the simulated link's encoder/decoder.
  /// Tissue coupling and the scenario profile are config-static.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  /// Arterial pressure and artefacts advanced to pipeline time.
  void advance_to(double t_s);

  /// Runs the acquired 12-bit codes over the simulated FPGA→host frame
  /// protocol, feeding the telemetry instrumentation.
  void stream_over_link_(const std::vector<dsp::DecimatedSample>& samples);

  ChipConfig chip_;
  WristModel wrist_;
  AcquisitionPipeline pipeline_;
  std::unique_ptr<bio::ArterialPulseGenerator> pulse_;
  bio::TissueCoupling tissue_;
  std::unique_ptr<bio::ArtifactInjector> artifacts_;
  TwoPointCalibration calibration_;
  // Cached physiological state at the current pipeline time.
  double sim_time_s_{0.0};
  double arterial_mmhg_{0.0};
  double artifact_mmhg_{0.0};
  double map_estimate_mmhg_{0.0};
  double last_scenario_apply_s_{-1.0};
  // Simulated FPGA→host link (Fig. 3); exercised once per monitor() call.
  FrameEncoder link_encoder_;
  FrameDecoder link_decoder_;
  // Observability (resolved once at construction; session-rate updates).
  metrics::Counter* sessions_metric_;
  metrics::Counter* beats_metric_;
  metrics::Counter* quality_rejections_metric_;
  metrics::Counter* rescans_metric_;
  metrics::Gauge* last_sqi_gauge_;
  metrics::Timer* session_wall_;
};

}  // namespace tono::core
