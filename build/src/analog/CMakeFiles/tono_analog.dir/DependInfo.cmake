
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/comparator.cpp" "src/analog/CMakeFiles/tono_analog.dir/comparator.cpp.o" "gcc" "src/analog/CMakeFiles/tono_analog.dir/comparator.cpp.o.d"
  "/root/repo/src/analog/incremental.cpp" "src/analog/CMakeFiles/tono_analog.dir/incremental.cpp.o" "gcc" "src/analog/CMakeFiles/tono_analog.dir/incremental.cpp.o.d"
  "/root/repo/src/analog/modulator.cpp" "src/analog/CMakeFiles/tono_analog.dir/modulator.cpp.o" "gcc" "src/analog/CMakeFiles/tono_analog.dir/modulator.cpp.o.d"
  "/root/repo/src/analog/mux.cpp" "src/analog/CMakeFiles/tono_analog.dir/mux.cpp.o" "gcc" "src/analog/CMakeFiles/tono_analog.dir/mux.cpp.o.d"
  "/root/repo/src/analog/opamp.cpp" "src/analog/CMakeFiles/tono_analog.dir/opamp.cpp.o" "gcc" "src/analog/CMakeFiles/tono_analog.dir/opamp.cpp.o.d"
  "/root/repo/src/analog/power.cpp" "src/analog/CMakeFiles/tono_analog.dir/power.cpp.o" "gcc" "src/analog/CMakeFiles/tono_analog.dir/power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tono_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
