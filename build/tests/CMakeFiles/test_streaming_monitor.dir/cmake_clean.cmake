file(REMOVE_RECURSE
  "CMakeFiles/test_streaming_monitor.dir/test_streaming_monitor.cpp.o"
  "CMakeFiles/test_streaming_monitor.dir/test_streaming_monitor.cpp.o.d"
  "test_streaming_monitor"
  "test_streaming_monitor.pdb"
  "test_streaming_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streaming_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
