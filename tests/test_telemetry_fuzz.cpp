// Property/fuzz tests for the FPGA→host frame protocol decoder: randomized
// garbage between frames, truncated frames, single-bit CRC corruption and
// sequence-number wrap. Every scenario checks the decoder's LinkStats
// against ground truth computed by the harness — the decoder must never
// hand a corrupt frame to the application, and its loss accounting must be
// exact, because the monitor's trust in the waveform rests on it.
#include "src/core/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/checkpoint.hpp"
#include "src/common/rng.hpp"

namespace tono::core {
namespace {

std::vector<std::int16_t> random_samples(Rng& rng, std::size_t n) {
  std::vector<std::int16_t> v(n);
  for (auto& s : v) {
    s = static_cast<std::int16_t>(static_cast<std::int64_t>(rng.uniform_below(4096)) - 2048);
  }
  return v;
}

/// Feeds `wire` to `dec` in random-sized chunks (1..max_chunk bytes); the
/// decoder must be insensitive to how the byte stream is fragmented.
std::vector<DecodedFrame> push_chunked(FrameDecoder& dec,
                                       const std::vector<std::uint8_t>& wire, Rng& rng,
                                       std::size_t max_chunk = 17) {
  std::vector<DecodedFrame> out;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t n =
        std::min(wire.size() - pos, 1 + rng.uniform_below(max_chunk));
    auto frames = dec.push(
        std::span<const std::uint8_t>{wire.data() + pos, n});
    for (auto& f : frames) out.push_back(std::move(f));
    pos += n;
  }
  return out;
}

TEST(TelemetryFuzz, GarbageBetweenFramesIsSkippedExactly) {
  Rng rng{0xF00DBEEF};
  FrameEncoder enc;
  FrameDecoder dec;

  constexpr std::size_t kFrames = 60;
  std::vector<std::vector<std::int16_t>> sent;
  std::vector<std::uint8_t> wire;
  std::size_t garbage_bytes = 0;
  for (std::size_t i = 0; i < kFrames; ++i) {
    // Garbage before each frame. Bytes equal to the first sync byte could
    // legitimately cost extra resync steps (a false sync takes a header
    // check), so exclude 0xA5 to keep the expected count exact.
    const std::size_t g = rng.uniform_below(12);
    for (std::size_t k = 0; k < g; ++k) {
      std::uint8_t b;
      do {
        b = static_cast<std::uint8_t>(rng.uniform_below(256));
      } while (b == kFrameSync0);
      wire.push_back(b);
      ++garbage_bytes;
    }
    sent.push_back(random_samples(rng, 1 + rng.uniform_below(kMaxSamplesPerFrame)));
    const auto frame = enc.encode(sent.back());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }

  const auto frames = push_chunked(dec, wire, rng);
  ASSERT_EQ(frames.size(), kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(frames[i].samples, sent[i]) << i;
    EXPECT_EQ(frames[i].sequence, static_cast<std::uint16_t>(i)) << i;
  }
  EXPECT_EQ(dec.stats().frames_ok, kFrames);
  EXPECT_EQ(dec.stats().resyncs, garbage_bytes);
  EXPECT_EQ(dec.stats().crc_errors, 0u);
  EXPECT_EQ(dec.stats().lost_frames, 0u);
}

TEST(TelemetryFuzz, SingleBitFlipsNeverDecodeTheCorruptFrame) {
  Rng rng{0xBADC0DE5};
  // 40 independent scenarios: 3 frames, one random bit of the middle frame
  // flipped. The corrupted frame must never reach the application; the two
  // good frames must decode exactly; the middle frame is accounted as lost.
  for (int scenario = 0; scenario < 40; ++scenario) {
    FrameEncoder enc;
    FrameDecoder dec;
    const auto a = random_samples(rng, 1 + rng.uniform_below(40));
    const auto b = random_samples(rng, 1 + rng.uniform_below(40));
    const auto c = random_samples(rng, 1 + rng.uniform_below(40));
    std::vector<std::uint8_t> wire;
    const auto fa = enc.encode(a);
    auto fb = enc.encode(b);
    const auto fc = enc.encode(c);
    const std::size_t bit = rng.uniform_below(fb.size() * 8);
    fb[bit / 8] = static_cast<std::uint8_t>(fb[bit / 8] ^ (1u << (bit % 8)));
    wire.insert(wire.end(), fa.begin(), fa.end());
    wire.insert(wire.end(), fb.begin(), fb.end());
    wire.insert(wire.end(), fc.begin(), fc.end());
    // A flip inside the header can fabricate a frame that claims more
    // payload than the stream holds, stalling the parse at end-of-stream.
    // A real link keeps talking; emulate that with trailing idle bytes so
    // the false frame resolves (CRC fail) instead of waiting forever.
    wire.insert(wire.end(), 128, 0x00);

    const auto frames = push_chunked(dec, wire, rng);
    // Frame b must never appear with corrupted payload: every decoded frame
    // must equal one of the originals (a or c always; b only if the flip
    // landed in garbage-tolerant padding bits, which CRC coverage rules out
    // entirely — the CRC covers everything after the sync word, and a sync
    // flip makes the frame undecodable).
    bool saw_a = false;
    bool saw_c = false;
    for (const auto& f : frames) {
      const bool is_a = f.samples == a && f.sequence == 0;
      const bool is_c = f.samples == c && f.sequence == 2;
      EXPECT_TRUE(is_a || is_c) << "corrupt or fabricated frame decoded, scenario "
                                << scenario << " bit " << bit;
      saw_a = saw_a || is_a;
      saw_c = saw_c || is_c;
    }
    EXPECT_TRUE(saw_a) << scenario;
    EXPECT_TRUE(saw_c) << scenario;
    EXPECT_EQ(frames.size(), 2u) << scenario;
    EXPECT_EQ(dec.stats().frames_ok, 2u) << scenario;
    EXPECT_EQ(dec.stats().lost_frames, 1u) << scenario;
  }
}

TEST(TelemetryFuzz, TruncatedFrameIsDroppedFollowerSurvives) {
  Rng rng{0x7123456};
  for (int scenario = 0; scenario < 30; ++scenario) {
    FrameEncoder enc;
    FrameDecoder dec;
    const auto good = random_samples(rng, 5 + rng.uniform_below(60));
    const auto a = random_samples(rng, 5 + rng.uniform_below(60));
    const auto b = random_samples(rng, 5 + rng.uniform_below(60));
    const auto fg = enc.encode(good);  // seq 0, anchors the loss accounting
    auto fa = enc.encode(a);           // seq 1, truncated below
    const auto fb = enc.encode(b);     // seq 2
    // Cut the middle frame short (keep at least the sync word so the cut is
    // a mid-frame truncation, not inter-frame garbage).
    const std::size_t keep = 2 + rng.uniform_below(fa.size() - 2);
    fa.resize(keep);
    std::vector<std::uint8_t> wire{fg.begin(), fg.end()};
    wire.insert(wire.end(), fa.begin(), fa.end());
    wire.insert(wire.end(), fb.begin(), fb.end());
    wire.insert(wire.end(), 128, 0x00);  // idle tail flushes any stalled parse

    const auto frames = push_chunked(dec, wire, rng);
    ASSERT_EQ(frames.size(), 2u) << scenario;
    EXPECT_EQ(frames[0].samples, good) << scenario;
    EXPECT_EQ(frames[1].samples, b) << scenario;
    EXPECT_EQ(frames[1].sequence, 2u) << scenario;
    EXPECT_EQ(dec.stats().frames_ok, 2u) << scenario;
    EXPECT_EQ(dec.stats().lost_frames, 1u) << scenario;
  }
}

TEST(TelemetryFuzz, SequenceWrapsWithoutPhantomLoss) {
  FrameEncoder enc;
  FrameDecoder dec;
  // Drive the 16-bit sequence counter through its wrap at 0xFFFF → 0x0000.
  constexpr std::size_t kFrames = 65536 + 64;
  const std::vector<std::int16_t> payload{-2048, -1, 0, 1, 2047};
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frames = dec.push(enc.encode(payload));
    for (const auto& f : frames) {
      EXPECT_EQ(f.sequence, static_cast<std::uint16_t>(i)) << i;
      EXPECT_EQ(f.samples, payload) << i;
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, kFrames);
  EXPECT_EQ(dec.stats().frames_ok, kFrames);
  EXPECT_EQ(dec.stats().lost_frames, 0u) << "wrap misread as a 65535-frame gap";
  EXPECT_EQ(dec.stats().crc_errors, 0u);
  EXPECT_EQ(dec.stats().resyncs, 0u);
}

TEST(TelemetryFuzz, FrameDropsAcrossTheWrapAreCountedExactly) {
  // Park the encoder just below the wrap via its checkpoint hook, so the
  // whole run straddles 0xFFFF → 0x0000, then drop frames with a seeded
  // injector: the decoder's gap arithmetic must count every vanished frame
  // exactly once, wrap included.
  FrameEncoder enc;
  {
    CheckpointWriter out;
    out.section("frame_encoder");
    out.u16(65536 - 400);
    const auto blob = out.finish(1);
    CheckpointReader in{blob};
    enc.restore(in);
  }
  FrameDecoder dec;
  Rng rng{0xD20BEEF};
  LinkFaultConfig config;
  config.drop_prob = 0.3;  // drop-only: the one fault class with exact gaps
  config.bit_flip_prob = 0.0;
  config.truncate_prob = 0.0;
  config.garbage_prob = 0.0;
  LinkFaultInjector injector{config, 0xF417};

  constexpr std::size_t kFrames = 800;
  std::size_t dropped = 0;
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const std::uint16_t expected_seq =
        static_cast<std::uint16_t>(65536 - 400 + i);
    const auto payload = random_samples(rng, 1 + rng.uniform_below(16));
    auto wire = enc.encode(payload);
    // Keep the endpoints: a dropped first frame precedes any sequence
    // baseline and dropped trailing frames leave no gap to observe, so
    // neither can be counted — exactness is only defined between them.
    if (i != 0 && i + 1 != kFrames && injector.corrupt(wire)) {
      ++dropped;
      continue;
    }
    for (const auto& f : push_chunked(dec, wire, rng)) {
      EXPECT_EQ(f.sequence, expected_seq) << i;
      EXPECT_EQ(f.samples, payload) << i;
      ++decoded;
    }
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(decoded, kFrames - dropped);
  EXPECT_EQ(dec.stats().frames_ok, decoded);
  EXPECT_EQ(dec.stats().lost_frames, dropped)
      << "gap accounting drifted across the sequence wrap";
  EXPECT_EQ(dec.stats().crc_errors, 0u);
  EXPECT_EQ(dec.stats().resyncs, 0u);
}

}  // namespace
}  // namespace tono::core
