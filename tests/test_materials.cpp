// Tests for thin-film materials and the laminated membrane stack.
#include "src/mems/materials.hpp"

#include <gtest/gtest.h>

namespace tono::mems {
namespace {

TEST(Material, PlateModulusExceedsYoungs) {
  const auto m = silicon_nitride();
  EXPECT_GT(m.plate_modulus_pa(), m.youngs_modulus_pa);
}

TEST(Material, DatabaseValuesPlausible) {
  EXPECT_NEAR(silicon_dioxide().youngs_modulus_pa, 70e9, 20e9);
  EXPECT_NEAR(silicon_nitride().youngs_modulus_pa, 250e9, 100e9);
  EXPECT_NEAR(aluminum().youngs_modulus_pa, 70e9, 20e9);
  EXPECT_GT(polysilicon().youngs_modulus_pa, 100e9);
  // Nitride deposits tensile, oxide compressive — the release relies on it.
  EXPECT_GT(silicon_nitride().residual_stress_pa, 0.0);
  EXPECT_LT(silicon_dioxide().residual_stress_pa, 0.0);
}

TEST(LayerStack, PaperStackThicknessIsThreeMicrons) {
  const auto s = LayerStack::cmos_membrane_stack();
  EXPECT_NEAR(s.total_thickness_m(), 3.0e-6, 1e-9);  // §2.1: 3 µm
}

TEST(LayerStack, PaperStackIsNetTensile) {
  // A released membrane must not buckle → net tension > 0.
  EXPECT_GT(LayerStack::cmos_membrane_stack().residual_tension(), 0.0);
}

TEST(LayerStack, NeutralAxisInsideStack) {
  const auto s = LayerStack::cmos_membrane_stack();
  EXPECT_GT(s.neutral_axis_m(), 0.0);
  EXPECT_LT(s.neutral_axis_m(), s.total_thickness_m());
}

TEST(LayerStack, HomogeneousNeutralAxisIsMidplane) {
  LayerStack s;
  s.add_layer(silicon_dioxide(), 2e-6);
  EXPECT_NEAR(s.neutral_axis_m(), 1e-6, 1e-12);
}

TEST(LayerStack, HomogeneousRigidityMatchesFormula) {
  // D = E t³ / (12 (1 − ν²)) for a single layer.
  const auto m = silicon_dioxide();
  const double t = 3e-6;
  LayerStack s;
  s.add_layer(m, t);
  const double expected = m.plate_modulus_pa() * t * t * t / 12.0;
  EXPECT_NEAR(s.flexural_rigidity(), expected, 1e-6 * expected);
}

TEST(LayerStack, RigidityGrowsCubicallyWithThickness) {
  LayerStack s1;
  s1.add_layer(silicon_dioxide(), 1e-6);
  LayerStack s2;
  s2.add_layer(silicon_dioxide(), 2e-6);
  EXPECT_NEAR(s2.flexural_rigidity() / s1.flexural_rigidity(), 8.0, 1e-9);
}

TEST(LayerStack, SplitLayerEqualsSingleLayer) {
  // Two half-thickness layers of the same material = one full layer.
  LayerStack split;
  split.add_layer(silicon_dioxide(), 1.5e-6);
  split.add_layer(silicon_dioxide(), 1.5e-6);
  LayerStack whole;
  whole.add_layer(silicon_dioxide(), 3.0e-6);
  EXPECT_NEAR(split.flexural_rigidity(), whole.flexural_rigidity(),
              1e-9 * whole.flexural_rigidity());
  EXPECT_NEAR(split.residual_tension(), whole.residual_tension(), 1e-12);
}

TEST(LayerStack, ResidualTensionIsSumOfSigmaT) {
  LayerStack s;
  s.add_layer(silicon_dioxide(), 1e-6);   // −100 MPa · 1 µm = −100 N/m·µm…
  s.add_layer(silicon_nitride(), 0.5e-6);
  const double expected =
      silicon_dioxide().residual_stress_pa * 1e-6 +
      silicon_nitride().residual_stress_pa * 0.5e-6;
  EXPECT_NEAR(s.residual_tension(), expected, 1e-9);
}

TEST(LayerStack, ArealDensity) {
  LayerStack s;
  s.add_layer(aluminum(), 1e-6);
  EXPECT_NEAR(s.areal_density(), 2700.0 * 1e-6, 1e-12);
}

TEST(LayerStack, EffectiveModuliAreThicknessWeighted) {
  LayerStack s;
  s.add_layer(silicon_dioxide(), 1e-6);
  s.add_layer(silicon_nitride(), 1e-6);
  const double e_mid =
      0.5 * (silicon_dioxide().youngs_modulus_pa + silicon_nitride().youngs_modulus_pa);
  EXPECT_NEAR(s.effective_youngs_modulus(), e_mid, 1.0);
}

TEST(LayerStack, RejectsNonPositiveThickness) {
  LayerStack s;
  EXPECT_THROW(s.add_layer(silicon_dioxide(), 0.0), std::invalid_argument);
  EXPECT_THROW(s.add_layer(silicon_dioxide(), -1e-6), std::invalid_argument);
}

TEST(LayerStack, EmptyStackZeroes) {
  LayerStack s;
  EXPECT_DOUBLE_EQ(s.total_thickness_m(), 0.0);
  EXPECT_DOUBLE_EQ(s.flexural_rigidity(), 0.0);
  EXPECT_DOUBLE_EQ(s.residual_tension(), 0.0);
}

TEST(LayerStack, StiffLayerPullsNeutralAxis) {
  // Nitride on top of oxide pulls the neutral axis up.
  LayerStack s;
  s.add_layer(silicon_dioxide(), 1.5e-6);
  s.add_layer(silicon_nitride(), 1.5e-6);
  EXPECT_GT(s.neutral_axis_m(), 1.5e-6);
}

}  // namespace
}  // namespace tono::mems
