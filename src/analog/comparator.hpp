// comparator.hpp — clocked 1-bit quantizer of the ΔΣ loop.
//
// Offset and hysteresis are first-order shaped by the loop (they appear as a
// DC shift / small limit-cycle perturbation rather than distortion), so the
// modulator tolerates millivolt-level values — the model lets tests verify
// exactly that. Metastability is modelled as a random decision inside a
// narrow band around the threshold.
#pragma once

#include "src/common/rng.hpp"

namespace tono::analog {

struct ComparatorConfig {
  double offset_v{0.0};
  double hysteresis_v{0.0};        ///< full width of the hysteresis band
  double metastable_band_v{10e-6}; ///< |input| below this → random decision
  double noise_vrms{50e-6};        ///< input-referred rms noise
};

class Comparator {
 public:
  Comparator(const ComparatorConfig& config, Rng rng) noexcept
      : config_(config), rng_(rng) {}

  /// Clocked decision: returns +1 or −1.
  [[nodiscard]] int decide(double input_v) noexcept;

  [[nodiscard]] int last_decision() const noexcept { return last_; }
  [[nodiscard]] const ComparatorConfig& config() const noexcept { return config_; }

 private:
  ComparatorConfig config_;
  Rng rng_;
  int last_{1};
};

}  // namespace tono::analog
