// materials.hpp — thin-film material properties and the CMOS membrane stack.
//
// The paper's membrane is "made of CMOS dielectric layers (silicon oxide /
// nitride) and metallization (aluminum)" released by a KOH back-etch that
// sacrifices the first metal layer (§2.1). We model it as a laminated plate:
// each layer contributes to the composite flexural rigidity about the common
// neutral axis and to the net residual membrane tension.
#pragma once

#include <string>
#include <vector>

namespace tono::mems {

/// Isotropic thin-film material.
struct Material {
  std::string name;
  double youngs_modulus_pa{0.0};
  double poisson_ratio{0.0};
  double density_kg_m3{0.0};
  /// Residual (as-deposited) stress; positive = tensile.
  double residual_stress_pa{0.0};

  /// Plane-strain (biaxial plate) modulus E / (1 - ν²).
  [[nodiscard]] double plate_modulus_pa() const noexcept {
    return youngs_modulus_pa / (1.0 - poisson_ratio * poisson_ratio);
  }
};

/// Representative 0.8 µm CMOS back-end films (typical published values for
/// the era's processes; exact foundry numbers are proprietary).
[[nodiscard]] Material silicon_dioxide();   ///< thermal/CVD oxide
[[nodiscard]] Material silicon_nitride();   ///< PECVD passivation nitride
[[nodiscard]] Material aluminum();          ///< Al-1%Si metallization
[[nodiscard]] Material polysilicon();       ///< bottom-electrode poly

/// One layer of the laminated membrane, bottom-up order.
struct Layer {
  Material material;
  double thickness_m{0.0};
};

/// The laminated membrane cross-section (Fig. 2 of the paper).
class LayerStack {
 public:
  LayerStack() = default;
  explicit LayerStack(std::vector<Layer> layers);

  void add_layer(const Material& material, double thickness_m);

  [[nodiscard]] const std::vector<Layer>& layers() const noexcept { return layers_; }
  [[nodiscard]] double total_thickness_m() const noexcept;

  /// Distance of the composite neutral axis from the stack bottom,
  /// z_n = Σ E'_i t_i z̄_i / Σ E'_i t_i.
  [[nodiscard]] double neutral_axis_m() const noexcept;

  /// Composite flexural rigidity D = Σ E'_i (z_top³ − z_bot³)/3 about the
  /// neutral axis [N·m].
  [[nodiscard]] double flexural_rigidity() const noexcept;

  /// Net residual line tension N₀ = Σ σ_i t_i [N/m]; positive = tensile.
  [[nodiscard]] double residual_tension() const noexcept;

  /// Area mass density ρ_A = Σ ρ_i t_i [kg/m²].
  [[nodiscard]] double areal_density() const noexcept;

  /// Thickness-weighted average Young's modulus / Poisson ratio, used by the
  /// large-deflection (von Kármán) stiffening term.
  [[nodiscard]] double effective_youngs_modulus() const noexcept;
  [[nodiscard]] double effective_poisson_ratio() const noexcept;

  /// The paper's membrane: oxide (1.9 µm) + nitride (0.5 µm) + Al (0.6 µm),
  /// 3 µm total as stated in §2.1.
  [[nodiscard]] static LayerStack cmos_membrane_stack();

 private:
  std::vector<Layer> layers_;
};

}  // namespace tono::mems
