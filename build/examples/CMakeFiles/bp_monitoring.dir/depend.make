# Empty dependencies file for bp_monitoring.
# This may be replaced when dependencies are built.
