file(REMOVE_RECURSE
  "../bench/bench_scenario_tracking"
  "../bench/bench_scenario_tracking.pdb"
  "CMakeFiles/bench_scenario_tracking.dir/bench_scenario_tracking.cpp.o"
  "CMakeFiles/bench_scenario_tracking.dir/bench_scenario_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
