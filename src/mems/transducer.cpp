#include "src/mems/transducer.hpp"

#include <cmath>
#include <numbers>

#include "src/common/units.hpp"

namespace tono::mems {

PressureTransducer::PressureTransducer(const TransducerConfig& config)
    : config_(config), cap_(SquarePlate{config.plate}, config.capacitor) {}

double PressureTransducer::capacitance(double contact_pressure_pa,
                                       double temperature_k) const noexcept {
  const double net = contact_pressure_pa - config_.backpressure_pa;
  const double c = cap_.capacitance_at_pressure(net);
  const double drift =
      1.0 + config_.capacitance_tempco_per_k * (temperature_k - 300.0);
  return c * config_.capacitance_mismatch * drift;
}

double PressureTransducer::bias_capacitance() const noexcept { return capacitance(0.0); }

double PressureTransducer::sensitivity() const noexcept {
  return cap_.sensitivity_at(-config_.backpressure_pa) * config_.capacitance_mismatch;
}

double PressureTransducer::deflection(double contact_pressure_pa) const noexcept {
  return cap_.plate().center_deflection(contact_pressure_pa - config_.backpressure_pa);
}

bool PressureTransducer::touches_down(double contact_pressure_pa) const noexcept {
  return std::abs(deflection(contact_pressure_pa)) >= cap_.touch_down_deflection();
}

double PressureTransducer::noise_equivalent_pressure_density(
    double temperature_k) const noexcept {
  const auto& plate = cap_.plate();
  const double a = plate.geometry().side_length_m;
  const double area = a * a;
  const double f0 = plate.fundamental_resonance_hz();
  const double q = config_.quality_factor;
  if (f0 <= 0.0 || q <= 0.0) return 0.0;
  // Lumped: S_F = 4 k_B T k_lump / (ω₀ Q); pressure = force / area.
  const double k_lump = plate.linear_stiffness() * area;  // N/m on center deflection
  const double omega0 = units::two_pi * f0;
  const double s_force = 4.0 * units::k_boltzmann * temperature_k * k_lump / (omega0 * q);
  return std::sqrt(s_force) / area;
}

double PressureTransducer::reference_capacitance() const noexcept {
  // Unreleased structure: plate cannot move; same rest geometry.
  return cap_.rest_capacitance() * config_.capacitance_mismatch;
}

}  // namespace tono::mems
