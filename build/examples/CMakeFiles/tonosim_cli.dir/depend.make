# Empty dependencies file for tonosim_cli.
# This may be replaced when dependencies are built.
