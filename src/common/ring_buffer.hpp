// ring_buffer.hpp — bounded lock-free ring buffer with explicit backpressure.
//
// The fleet serving layer (src/fleet/) multiplexes many patient sessions;
// each session is a producer of 12-bit codes and beat/alarm events, drained
// by the ward aggregator on another thread. The contract is single producer /
// single consumer per ring, but the *drop-oldest* backpressure policy makes
// the producer reclaim the oldest slot when the ring is full — so the
// dequeue cursor is contended by two threads. The implementation is
// therefore Vyukov's bounded queue (per-slot sequence numbers, CAS'd
// cursors): every payload access is ordered by an acquire/release on the
// slot's sequence, which keeps the reclaim path race-free (and TSan-clean,
// exercised by tests/test_ring_buffer.cpp under the CI TSan job) without a
// mutex anywhere.
//
// Backpressure policies (chosen per push, counted by the ring):
//   * kBlock      — producer spin-yields until the consumer frees a slot.
//                   Nothing is ever lost; use for alarms, where a dropped
//                   event is a clinical failure (see docs/FLEET.md).
//   * kDropOldest — producer discards the oldest unconsumed item to make
//                   room. Bounded staleness for high-rate telemetry: the
//                   newest data always gets in, and every loss is counted
//                   (drops == produced − consumed − still queued).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/checkpoint.hpp"

namespace tono {

enum class BackpressurePolicy {
  kBlock,       ///< wait for space; lossless
  kDropOldest,  ///< overwrite the oldest unconsumed item; counted
};

template <typename T>
class RingBuffer {
  static_assert(std::is_nothrow_copy_assignable_v<T>,
                "ring payloads must copy without throwing (slots are reused)");

 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit RingBuffer(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Non-blocking enqueue; false when the ring is full.
  bool try_push(const T& item) noexcept {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.value = item;
          slot.seq.store(pos + 1, std::memory_order_release);
          pushed_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the slot still holds an unconsumed item
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Non-blocking dequeue; false when the ring is empty.
  bool try_pop(T& out) noexcept {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          out = slot.value;
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          popped_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else if (dif < 0) {
        return false;  // nothing committed at the cursor yet
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Enqueue under the given policy. kBlock spin-yields until space frees
  /// up (the consumer must be live — see the fleet scheduler's drain loop);
  /// kDropOldest reclaims the oldest item. Returns the number of items
  /// dropped to admit this one (always 0 under kBlock).
  std::size_t push(const T& item, BackpressurePolicy policy) noexcept {
    if (try_push(item)) return 0;
    if (policy == BackpressurePolicy::kBlock) {
      blocked_.fetch_add(1, std::memory_order_relaxed);
      while (!try_push(item)) std::this_thread::yield();
      return 0;
    }
    std::size_t dropped = 0;
    for (;;) {
      T discarded;
      if (try_pop(discarded)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        ++dropped;
      }
      if (try_push(item)) return dropped;
    }
  }

  /// Drains up to `max_items` into `out` (appending); returns count popped.
  std::size_t pop_all(std::vector<T>& out,
                      std::size_t max_items = static_cast<std::size_t>(-1)) {
    std::size_t n = 0;
    T item;
    while (n < max_items && try_pop(item)) {
      out.push_back(item);
      ++n;
    }
    return n;
  }

  [[nodiscard]] bool empty() const noexcept {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }
  /// Instantaneous occupancy (racy under concurrency; exact when quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    return h > t ? static_cast<std::size_t>(h - t) : 0;
  }

  // Accounting (relaxed counters; exact when the ring is quiescent).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const noexcept {
    return popped_.load(std::memory_order_relaxed);
  }
  /// Items lost to the kDropOldest policy. Note a dropped item counts in
  /// both pushed() and popped() (the producer consumed it to reclaim the
  /// slot), so pushed − popped == size always holds when quiescent and
  /// drops are accounted separately.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Times a kBlock push found the ring full and had to wait.
  [[nodiscard]] std::uint64_t block_events() const noexcept {
    return blocked_.load(std::memory_order_relaxed);
  }

  /// Checkpointing, accounting only. Sessions checkpoint at batch barriers,
  /// where the ward has drained every ring — so a ring's restorable state is
  /// exactly its lifetime counters (the ward mirrors them as absolute values
  /// and meters deltas; fresh-zero counters after a restore would underflow
  /// the mirror). Quiescent-only: serialize requires the ring empty, restore
  /// requires it untouched (cursors at zero).
  void serialize_accounting(CheckpointWriter& out) const {
    out.section("ring");
    out.boolean(empty());
    out.u64(pushed());
    out.u64(popped());
    out.u64(dropped());
    out.u64(block_events());
  }
  void restore_accounting(CheckpointReader& in) {
    in.section("ring");
    if (!in.boolean()) {
      throw CheckpointError{
          "ring checkpoint was taken non-quiescent (ring not empty)"};
    }
    pushed_.store(in.u64(), std::memory_order_relaxed);
    popped_.store(in.u64(), std::memory_order_relaxed);
    dropped_.store(in.u64(), std::memory_order_relaxed);
    blocked_.store(in.u64(), std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_{1};
  // Cursors on separate cache lines from each other and the slots.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< enqueue cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< dequeue cursor
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> blocked_{0};
};

}  // namespace tono
