// windkessel.hpp — lumped-parameter (Windkessel) arterial models.
//
// A physics-grounded alternative to the template-based pulse generator: a
// half-sine ventricular ejection flow drives a 2- or 3-element Windkessel
// (peripheral resistance R_p, arterial compliance C, characteristic
// impedance R_c), integrated with classic RK4. Used by the hemodynamics
// example and by tests that cross-check the template generator's pressure
// ranges against a mechanistic model.
#pragma once

#include <vector>

namespace tono::bio {

struct WindkesselConfig {
  double peripheral_resistance{1.05};  ///< R_p [mmHg·s/mL]
  double compliance{1.4};              ///< C [mL/mmHg]
  double characteristic_impedance{0.05};  ///< R_c [mmHg·s/mL]; 0 → 2-element
  double heart_rate_bpm{72.0};
  double stroke_volume_ml{72.0};
  /// Fraction of the cardiac cycle spent ejecting.
  double ejection_fraction_of_cycle{0.35};
  double initial_pressure_mmhg{80.0};
};

class WindkesselModel {
 public:
  explicit WindkesselModel(const WindkesselConfig& config);

  /// Ventricular ejection flow at time t [mL/s] (half-sine during systole).
  [[nodiscard]] double inflow_ml_per_s(double t_s) const noexcept;

  /// Advances the model by dt and returns the arterial pressure [mmHg].
  [[nodiscard]] double step(double dt_s) noexcept;

  /// Integrates n samples at the given rate.
  [[nodiscard]] std::vector<double> simulate(double sample_rate_hz, std::size_t n);

  /// Analytic steady-state mean pressure: MAP = SV·HR/60 · (R_p + R_c).
  [[nodiscard]] double expected_map_mmhg() const noexcept;

  [[nodiscard]] double time_s() const noexcept { return time_s_; }
  [[nodiscard]] double pressure_mmhg() const noexcept { return pressure_mmhg_; }
  [[nodiscard]] const WindkesselConfig& config() const noexcept { return config_; }

 private:
  /// dP/dt of the 2-element core: (Q_in − P/R_p) / C.
  [[nodiscard]] double derivative(double p_mmhg, double t_s) const noexcept;

  WindkesselConfig config_;
  double time_s_{0.0};
  double pressure_mmhg_;
};

}  // namespace tono::bio
