// tissue.hpp — tonometric coupling from artery to sensor surface.
//
// Fig. 1 of the paper: the overpressure inside the vessel moves the vessel
// wall, displacing the skin surface; a force sensor held against the skin
// sees a contact pressure proportional to the intravascular pressure. The
// coupling model captures the three effects that make tonometry hard:
//   * hold-down dependence — pulse transmission peaks when the applied
//     hold-down pressure flattens (applanates) the vessel; too little or too
//     much hold-down attenuates the pulse (bell-shaped transmission),
//   * depth attenuation — tissue between vessel and skin attenuates the
//     pulsation exponentially with depth,
//   * lateral sensitivity — an element offset from the vessel axis sees a
//     Gaussian-attenuated signal; this is what makes the array's
//     strongest-element selection (§2) work.
#pragma once

namespace tono::bio {

struct TissueConfig {
  /// Vessel depth below the skin surface [m] (radial artery ≈ 2-3 mm).
  double vessel_depth_m{2.5e-3};
  /// Exponential depth-attenuation length of the pulsation [m].
  double attenuation_length_m{4.0e-3};
  /// Hold-down pressure at which transmission peaks (applanation) [mmHg].
  double optimal_hold_down_mmhg{80.0};
  /// Width of the transmission bell over hold-down pressure [mmHg].
  double hold_down_width_mmhg{60.0};
  /// Peak pulse-transmission ratio at applanation and at vessel depth 0.
  double peak_transmission{0.85};
  /// Lateral 1-σ width of the sensitivity profile on the skin [m].
  double lateral_sigma_m{1.2e-3};
  /// PDMS contact layer: low-pass corner of the mechanical coupling [Hz]
  /// (the soft layer slightly smooths the waveform).
  double pdms_corner_hz{120.0};
};

class TissueCoupling {
 public:
  explicit TissueCoupling(const TissueConfig& config);

  /// Pulse transmission factor for a given hold-down pressure (bell curve).
  [[nodiscard]] double transmission(double hold_down_mmhg) const noexcept;

  /// Depth attenuation factor exp(−depth/λ).
  [[nodiscard]] double depth_attenuation() const noexcept;

  /// Lateral attenuation for an element offset from the vessel axis [m].
  [[nodiscard]] double lateral_attenuation(double offset_m) const noexcept;

  /// Contact pressure at the sensor face [mmHg]:
  /// hold_down + T(hold_down)·depth·lateral · (P_art − MAP_art).
  /// `arterial_mmhg` is the instantaneous arterial pressure and `map_mmhg`
  /// its running mean (the static component is carried by the hold-down).
  [[nodiscard]] double contact_pressure_mmhg(double arterial_mmhg, double map_mmhg,
                                             double hold_down_mmhg,
                                             double lateral_offset_m) const noexcept;

  /// Overall small-signal gain d(contact)/d(arterial) at given placement.
  [[nodiscard]] double pulse_gain(double hold_down_mmhg,
                                  double lateral_offset_m) const noexcept;

  [[nodiscard]] const TissueConfig& config() const noexcept { return config_; }

 private:
  TissueConfig config_;
};

}  // namespace tono::bio
