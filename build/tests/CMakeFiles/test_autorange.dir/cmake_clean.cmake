file(REMOVE_RECURSE
  "CMakeFiles/test_autorange.dir/test_autorange.cpp.o"
  "CMakeFiles/test_autorange.dir/test_autorange.cpp.o.d"
  "test_autorange"
  "test_autorange.pdb"
  "test_autorange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autorange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
