# Empty dependencies file for test_hrv.
# This may be replaced when dependencies are built.
