// plate.hpp — clamped square composite plate under uniform pressure.
//
// Mechanical model of one membrane of the 2x2 array (§2.1: 100 µm side,
// 3 µm thick). The deflection law combines:
//   * small-deflection plate bending (Timoshenko coefficient for a clamped
//     square plate, w₀ = 0.00126 · p·a⁴/D),
//   * residual-tension stiffening from the net film stress (Rayleigh-Ritz
//     with the clamped-plate mode shape, coefficient 3π²/2),
//   * von Kármán cubic stiffening for large deflection (Maier-Schneider
//     coefficient for square diaphragms).
// so that  p(w₀) = k₁·w₀ + k₃·w₀³  with
//   k₁ = 793.65·D/a⁴ + (3π²/2)·N₀/a²,  k₃ ≈ 25.3·E_eff·t / ((1−ν_eff)·a⁴).
// The inverse (pressure → deflection) is solved exactly (monotone cubic).
#pragma once

#include "src/mems/materials.hpp"

namespace tono::mems {

/// Geometry + laminate of a single square membrane.
struct PlateGeometry {
  double side_length_m{100e-6};  ///< paper: 100 µm
  LayerStack stack{LayerStack::cmos_membrane_stack()};
};

class SquarePlate {
 public:
  explicit SquarePlate(PlateGeometry geometry);

  /// Linear stiffness k₁ [Pa/m]: pressure per unit center deflection.
  [[nodiscard]] double linear_stiffness() const noexcept { return k1_; }

  /// Cubic stiffening coefficient k₃ [Pa/m³].
  [[nodiscard]] double cubic_stiffness() const noexcept { return k3_; }

  /// Center deflection for a uniform transverse pressure [m]; sign follows
  /// the pressure (positive = toward the substrate opening / upward under
  /// backpressure). Exact solution of k₁w + k₃w³ = p.
  [[nodiscard]] double center_deflection(double pressure_pa) const noexcept;

  /// Uniform pressure needed to hold a given center deflection [Pa].
  [[nodiscard]] double pressure_for_deflection(double w0_m) const noexcept {
    return k1_ * w0_m + k3_ * w0_m * w0_m * w0_m;
  }

  /// Deflection at membrane coordinates (x, y) ∈ [0, a]² for center
  /// deflection w₀, using the clamped-plate mode shape
  /// w = w₀/4 · (1 − cos 2πx/a)(1 − cos 2πy/a).
  [[nodiscard]] double deflection_at(double x_m, double y_m, double w0_m) const noexcept;

  /// Mean deflection over the plate for center deflection w₀ (= w₀/4 for
  /// the mode shape above).
  [[nodiscard]] double mean_deflection(double w0_m) const noexcept { return 0.25 * w0_m; }

  /// Small-signal mechanical sensitivity dw₀/dp at the given bias pressure
  /// [m/Pa] (decreases as the cubic term engages).
  [[nodiscard]] double compliance_at(double bias_pressure_pa) const noexcept;

  /// Fundamental resonance of the clamped square plate [Hz], including the
  /// residual-tension stiffening via the static-stiffness ratio:
  /// f = (35.99 / 2πa²)·√(D/ρ_A) · √(k₁ / k₁|_{N₀=0}).
  [[nodiscard]] double fundamental_resonance_hz() const noexcept;

  [[nodiscard]] const PlateGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] double flexural_rigidity() const noexcept { return rigidity_; }
  [[nodiscard]] double residual_tension() const noexcept { return tension_; }

 private:
  PlateGeometry geometry_;
  double rigidity_;
  double tension_;
  double k1_;
  double k3_;
};

}  // namespace tono::mems
