# Empty dependencies file for test_goertzel.
# This may be replaced when dependencies are built.
