file(REMOVE_RECURSE
  "CMakeFiles/test_plate.dir/test_plate.cpp.o"
  "CMakeFiles/test_plate.dir/test_plate.cpp.o.d"
  "test_plate"
  "test_plate.pdb"
  "test_plate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
