#include "src/common/math_utils.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace tono {

double sinc(double x) noexcept {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

double bessel_i0(double x) noexcept {
  // Power series sum_{k>=0} ((x/2)^k / k!)^2; converges quickly for the
  // |x| <= ~20 range used by Kaiser window design.
  const double half_x = 0.5 * std::abs(x);
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 64; ++k) {
    term *= half_x / static_cast<double>(k);
    const double contrib = term * term;
    sum += contrib;
    if (contrib < 1e-16 * sum) break;
  }
  return sum;
}

double power_to_db(double ratio) noexcept {
  if (ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(ratio);
}

double amplitude_to_db(double ratio) noexcept {
  if (ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(ratio);
}

double db_to_power(double db) noexcept { return std::pow(10.0, db / 10.0); }

double db_to_amplitude(double db) noexcept { return std::pow(10.0, db / 20.0); }

double polyval(std::span<const double> coeffs, double x) noexcept {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::vector<double> solve_linear_system(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) throw std::invalid_argument{"solve_linear_system: size mismatch"};
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double mag = std::abs(a[row * n + col]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (best < 1e-300) throw std::runtime_error{"solve_linear_system: singular matrix"};
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) std::swap(a[pivot * n + k], a[col * n + k]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) acc -= a[row * n + k] * x[k];
    x[row] = acc / a[row * n + row];
  }
  return x;
}

std::vector<double> polyfit(std::span<const double> x, std::span<const double> y,
                            std::size_t degree) {
  if (x.size() != y.size() || x.size() < degree + 1) {
    throw std::invalid_argument{"polyfit: need at least degree+1 points"};
  }
  const std::size_t m = degree + 1;
  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<double> ata(m * m, 0.0);
  std::vector<double> aty(m, 0.0);
  for (std::size_t p = 0; p < x.size(); ++p) {
    double powi = 1.0;
    std::vector<double> powers(m);
    for (std::size_t i = 0; i < m; ++i) {
      powers[i] = powi;
      powi *= x[p];
    }
    for (std::size_t i = 0; i < m; ++i) {
      aty[i] += powers[i] * y[p];
      for (std::size_t j = 0; j < m; ++j) ata[i * m + j] += powers[i] * powers[j];
    }
  }
  return solve_linear_system(std::move(ata), std::move(aty));
}

bool approx_equal(double a, double b, double tol_rel, double tol_abs) noexcept {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= tol_abs + tol_rel * scale;
}

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

double wrap_phase(double phase) noexcept {
  const double two_pi = 2.0 * std::numbers::pi;
  phase = std::fmod(phase + std::numbers::pi, two_pi);
  if (phase < 0.0) phase += two_pi;
  return phase - std::numbers::pi;
}

}  // namespace tono
