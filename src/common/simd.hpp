// simd.hpp — runtime dispatch for the vectorized hot paths.
//
// tonosim's bit-exactness contracts (block == scalar, bank lane == solo,
// gcc == clang golden codes) survive vectorization only because every kernel
// is restricted to operations that IEEE 754 defines exactly: elementwise
// add/sub/mul/div/sqrt, comparisons and sign manipulation round identically
// whether executed one lane at a time or four. Anything transcendental
// (std::log in the Gaussian polar method, exp() in op-amp settling) stays
// scalar — libm makes no cross-width reproducibility promise — and the
// kernels call out of the vector for those lanes.
//
// Dispatch model:
//   * compiled_level(): the best kernel compiled into this binary. Gated by
//     the TONO_SIMD CMake option (OFF → scalar only) and the target arch.
//   * runtime_level(): compiled_level() clamped by what the CPU executing us
//     actually supports (AVX2 kernels are compiled with -mavx2 into their own
//     translation units and only ever entered behind this check).
//   * active_level(): runtime_level() overridden by the TONO_SIMD environment
//     variable — the scalar escape hatch. Resolved once, cached; consumers
//     (ModulatorBank, Rng multi-fill) read it at construction/dispatch time.
//
// TONO_SIMD env values: "scalar"/"off"/"0" force the scalar path, "avx2" /
// "neon" request a specific kernel (falling back to runtime_level() with a
// one-time stderr warning if unavailable), "auto"/"" / unset use
// runtime_level(). The same knob exists at build time as the TONO_SIMD CMake
// option; docs/PERFORMANCE.md "SIMD" documents both.
#pragma once

#include <cstddef>
#include <string>

namespace tono::simd {

enum class Level {
  kScalar = 0,
  kNeon = 1,  ///< 2 × f64 (aarch64 baseline)
  kAvx2 = 2,  ///< 4 × f64
};

[[nodiscard]] const char* level_name(Level level) noexcept;

/// Vector width in doubles: 1 / 2 / 4.
[[nodiscard]] std::size_t level_width(Level level) noexcept;

/// Best kernel compiled into this binary (TONO_SIMD CMake option + arch).
[[nodiscard]] Level compiled_level() noexcept;

/// compiled_level() clamped by the executing CPU's capabilities.
[[nodiscard]] Level runtime_level() noexcept;

/// runtime_level() overridden by the TONO_SIMD environment variable.
/// Resolved on first call, then cached (so a bank constructed after a
/// force_active_level() in tests sees the forced value, not the env).
[[nodiscard]] Level active_level() noexcept;

/// Pure resolution rule behind active_level(), exposed for tests:
/// `env` is the TONO_SIMD value (nullptr = unset), `runtime` the capability
/// ceiling. Unavailable requests fall back to `runtime`.
[[nodiscard]] Level resolve_level(const char* env, Level runtime) noexcept;

/// Overrides the cached active level (clamped to runtime_level(); scalar is
/// always honored). Returns the level actually set. For tests and for tools
/// that compare vector vs scalar output in one process (golden self-checks);
/// only affects objects constructed afterwards.
Level force_active_level(Level level) noexcept;

/// Detected CPU features relevant to the kernels, comma-joined (e.g.
/// "sse2,avx,avx2,fma" / "neon" / ""). Recorded in BENCH_perf.json metadata
/// so cross-machine trajectories are interpretable.
[[nodiscard]] std::string cpu_features();

}  // namespace tono::simd
