#include "src/bio/windkessel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tono::bio {

WindkesselModel::WindkesselModel(const WindkesselConfig& config)
    : config_(config), pressure_mmhg_(config.initial_pressure_mmhg) {
  if (config_.peripheral_resistance <= 0.0 || config_.compliance <= 0.0) {
    throw std::invalid_argument{"WindkesselModel: R_p and C must be > 0"};
  }
  if (config_.characteristic_impedance < 0.0) {
    throw std::invalid_argument{"WindkesselModel: R_c must be >= 0"};
  }
  if (config_.ejection_fraction_of_cycle <= 0.0 || config_.ejection_fraction_of_cycle >= 1.0) {
    throw std::invalid_argument{"WindkesselModel: ejection fraction must be in (0,1)"};
  }
}

double WindkesselModel::inflow_ml_per_s(double t_s) const noexcept {
  const double cycle = 60.0 / config_.heart_rate_bpm;
  const double t_in_cycle = std::fmod(t_s, cycle);
  const double t_eject = config_.ejection_fraction_of_cycle * cycle;
  if (t_in_cycle >= t_eject) return 0.0;
  // Half-sine with area = stroke volume: peak = SV·π / (2·t_eject).
  const double peak = config_.stroke_volume_ml * std::numbers::pi / (2.0 * t_eject);
  return peak * std::sin(std::numbers::pi * t_in_cycle / t_eject);
}

double WindkesselModel::derivative(double p_mmhg, double t_s) const noexcept {
  const double q_in = inflow_ml_per_s(t_s);
  return (q_in - p_mmhg / config_.peripheral_resistance) / config_.compliance;
}

double WindkesselModel::step(double dt_s) noexcept {
  // RK4 on the 2-element storage pressure.
  const double t = time_s_;
  const double p = pressure_mmhg_;
  const double k1 = derivative(p, t);
  const double k2 = derivative(p + 0.5 * dt_s * k1, t + 0.5 * dt_s);
  const double k3 = derivative(p + 0.5 * dt_s * k2, t + 0.5 * dt_s);
  const double k4 = derivative(p + dt_s * k3, t + dt_s);
  pressure_mmhg_ = p + dt_s / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
  time_s_ += dt_s;
  // 3-element: the measured (proximal) pressure adds R_c·Q_in on top of the
  // storage pressure.
  return pressure_mmhg_ + config_.characteristic_impedance * inflow_ml_per_s(time_s_);
}

std::vector<double> WindkesselModel::simulate(double sample_rate_hz, std::size_t n) {
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument{"WindkesselModel: sample rate must be > 0"};
  }
  std::vector<double> out;
  out.reserve(n);
  const double dt = 1.0 / sample_rate_hz;
  for (std::size_t i = 0; i < n; ++i) out.push_back(step(dt));
  return out;
}

double WindkesselModel::expected_map_mmhg() const noexcept {
  const double cardiac_output =
      config_.stroke_volume_ml * config_.heart_rate_bpm / 60.0;  // mL/s
  return cardiac_output *
         (config_.peripheral_resistance + config_.characteristic_impedance);
}

}  // namespace tono::bio
