// imaging.hpp — tactile imaging with the sensor array.
//
// The paper's §2 uses the array for vessel localization; its references
// [3, 4] are tactile-imaging sensors. This module drives the array as an
// imager: it scans every element in sequence through the shared ΔΣ readout
// (respecting the §2.2 settling constraint) and assembles pressure-map
// frames. Frame rate is set by the converter bandwidth, not the mux:
//   frame_time = elements × (settle + dwell) / output_rate.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/pipeline.hpp"

namespace tono::core {

struct ImagerConfig {
  /// Output samples discarded after each element switch (filter transient).
  std::size_t settle_samples{12};
  /// Output samples averaged per pixel.
  std::size_t dwell_samples{4};
};

/// One scanned frame: row-major normalized pixel values.
struct TactileFrame {
  std::size_t rows{0};
  std::size_t cols{0};
  double start_s{0.0};
  double end_s{0.0};
  std::vector<double> pixels;  ///< mean output value per element

  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    return pixels.at(row * cols + col);
  }
};

class TactileImager {
 public:
  explicit TactileImager(const ImagerConfig& config = {});

  /// Scans one frame over the pipeline's array under the contact field.
  [[nodiscard]] TactileFrame capture(AcquisitionPipeline& pipeline,
                                     const ContactField& field) const;

  /// Captures a sequence of frames back to back.
  [[nodiscard]] std::vector<TactileFrame> capture_sequence(AcquisitionPipeline& pipeline,
                                                           const ContactField& field,
                                                           std::size_t frames) const;

  /// Achievable frame rate for a given array/pipeline [frames/s].
  [[nodiscard]] double frame_rate_hz(const AcquisitionPipeline& pipeline) const;

  [[nodiscard]] const ImagerConfig& config() const noexcept { return config_; }

 private:
  ImagerConfig config_;
};

}  // namespace tono::core
