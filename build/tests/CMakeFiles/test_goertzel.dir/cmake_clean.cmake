file(REMOVE_RECURSE
  "CMakeFiles/test_goertzel.dir/test_goertzel.cpp.o"
  "CMakeFiles/test_goertzel.dir/test_goertzel.cpp.o.d"
  "test_goertzel"
  "test_goertzel.pdb"
  "test_goertzel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_goertzel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
