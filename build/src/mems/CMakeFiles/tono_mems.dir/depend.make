# Empty dependencies file for tono_mems.
# This may be replaced when dependencies are built.
