# Empty dependencies file for bench_decimation_filter.
# This may be replaced when dependencies are built.
