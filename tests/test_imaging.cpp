// Tests for tactile imaging via the scanned array.
#include "src/core/imaging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/common/units.hpp"

namespace tono::core {
namespace {

ChipConfig wide_chip(std::size_t rows = 2, std::size_t cols = 4) {
  auto chip = ChipConfig::paper_chip();
  chip.array.rows = rows;
  chip.array.cols = cols;
  chip.mux.rows = rows;
  chip.mux.cols = cols;
  return chip;
}

TEST(Imaging, FrameDimensionsMatchArray) {
  AcquisitionPipeline pipe{wide_chip(2, 4)};
  TactileImager imager;
  const auto frame =
      imager.capture(pipe, [](double, double, double) { return 1000.0; });
  EXPECT_EQ(frame.rows, 2u);
  EXPECT_EQ(frame.cols, 4u);
  EXPECT_EQ(frame.pixels.size(), 8u);
  EXPECT_GT(frame.end_s, frame.start_s);
}

TEST(Imaging, PixelsTrackSpatialGradient) {
  AcquisitionPipeline pipe{wide_chip(1, 4)};
  // Pressure grows with x: right pixels must read higher.
  auto field = [](double x, double, double) {
    return units::mmhg_to_pa(20.0 + 2.0e5 * x);  // ±150 µm → ∓30 mmHg
  };
  TactileImager imager;
  const auto frame = imager.capture(pipe, field);
  for (std::size_t c = 1; c < frame.cols; ++c) {
    EXPECT_GT(frame.at(0, c), frame.at(0, c - 1)) << "col " << c;
  }
}

TEST(Imaging, FrameTimeMatchesFormula) {
  AcquisitionPipeline pipe{wide_chip(2, 2)};
  TactileImager imager;
  const auto frame =
      imager.capture(pipe, [](double, double, double) { return 0.0; });
  const double measured = frame.end_s - frame.start_s;
  EXPECT_NEAR(measured, 1.0 / imager.frame_rate_hz(pipe), 0.05 * measured);
}

TEST(Imaging, FrameRateScalesInverselyWithArraySize) {
  AcquisitionPipeline small{wide_chip(2, 2)};
  AcquisitionPipeline large{wide_chip(2, 4)};
  TactileImager imager;
  EXPECT_NEAR(imager.frame_rate_hz(small) / imager.frame_rate_hz(large), 2.0, 1e-9);
}

TEST(Imaging, SequenceCapturesMotion) {
  // A pulsating source: frames taken at different beat phases differ.
  AcquisitionPipeline pipe{wide_chip(2, 2)};
  auto field = [](double, double, double t) {
    return units::mmhg_to_pa(30.0 + 20.0 * std::sin(2.0 * std::numbers::pi * 1.5 * t));
  };
  ImagerConfig cfg;
  cfg.settle_samples = 12;
  cfg.dwell_samples = 4;
  TactileImager imager{cfg};
  const auto frames = imager.capture_sequence(pipe, field, 8);
  ASSERT_EQ(frames.size(), 8u);
  double lo = 1e9;
  double hi = -1e9;
  for (const auto& f : frames) {
    lo = std::min(lo, f.at(0, 0));
    hi = std::max(hi, f.at(0, 0));
  }
  EXPECT_GT(hi - lo, 10.0 / 2048.0);  // the pulsation is visible across frames
}

TEST(Imaging, PaperArrayFrameRateUsefulForPulse) {
  // 2x2 at (12+4) samples/element → ~15 frames/s: enough to image a 1-2 Hz
  // pulse, exactly the §2 localization use case.
  AcquisitionPipeline pipe{AcquisitionPipeline{ChipConfig::paper_chip()}};
  TactileImager imager;
  const double rate = imager.frame_rate_hz(pipe);
  EXPECT_GT(rate, 5.0);
  EXPECT_LT(rate, 100.0);
}

TEST(Imaging, RejectsZeroDwell) {
  ImagerConfig bad;
  bad.dwell_samples = 0;
  EXPECT_THROW((TactileImager{bad}), std::invalid_argument);
}

TEST(Imaging, AtThrowsOutOfRange) {
  TactileFrame f;
  f.rows = 1;
  f.cols = 1;
  f.pixels = {0.5};
  EXPECT_THROW((void)f.at(1, 0), std::out_of_range);
}

}  // namespace
}  // namespace tono::core
