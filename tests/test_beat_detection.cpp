// Tests for beat detection and per-beat feature extraction.
#include "src/core/beat_detection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/rng.hpp"

namespace tono::core {
namespace {

std::vector<double> clean_pulse(double duration_s, double hr_bpm = 72.0,
                                double fs = 1000.0, std::uint64_t seed = 7) {
  bio::PulseConfig cfg;
  cfg.heart_rate_bpm = hr_bpm;
  cfg.seed = seed;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  bio::ArterialPulseGenerator gen{cfg};
  return gen.generate(fs, static_cast<std::size_t>(duration_s * fs));
}

TEST(BeatDetector, FindsAllBeatsInCleanSignal) {
  const double duration = 30.0;
  const auto wave = clean_pulse(duration);
  BeatDetector det;
  const auto a = det.analyze(wave);
  const double expected = duration * 72.0 / 60.0;
  EXPECT_NEAR(static_cast<double>(a.beats.size()), expected, 3.0);
}

TEST(BeatDetector, HeartRateAccurate) {
  const auto wave = clean_pulse(40.0, 60.0);
  BeatDetector det;
  const auto a = det.analyze(wave);
  EXPECT_NEAR(a.heart_rate_bpm, 60.0, 3.0);
}

TEST(BeatDetector, SystolicDiastolicValuesAccurate) {
  const auto wave = clean_pulse(30.0);
  BeatDetector det;
  const auto a = det.analyze(wave);
  ASSERT_GE(a.beats.size(), 10u);
  EXPECT_NEAR(a.mean_systolic, 120.0, 5.0);
  EXPECT_NEAR(a.mean_diastolic, 80.0, 5.0);
  EXPECT_GT(a.mean_map, a.mean_diastolic);
  EXPECT_LT(a.mean_map, a.mean_systolic);
}

TEST(BeatDetector, BeatTimesOrdered) {
  const auto wave = clean_pulse(20.0);
  const auto a = BeatDetector{}.analyze(wave);
  for (std::size_t i = 1; i < a.beats.size(); ++i) {
    EXPECT_GT(a.beats[i].upstroke_s, a.beats[i - 1].upstroke_s);
  }
  for (const auto& b : a.beats) {
    EXPECT_LE(b.foot_s, b.upstroke_s);
    EXPECT_GE(b.peak_s, b.upstroke_s);
    EXPECT_GT(b.systolic_value, b.diastolic_value);
  }
}

TEST(BeatDetector, T0OffsetsTimes) {
  const auto wave = clean_pulse(15.0);
  const auto a = BeatDetector{}.analyze(wave, 0.0);
  const auto b = BeatDetector{}.analyze(wave, 100.0);
  ASSERT_EQ(a.beats.size(), b.beats.size());
  ASSERT_FALSE(a.beats.empty());
  EXPECT_NEAR(b.beats[0].upstroke_s - a.beats[0].upstroke_s, 100.0, 1e-9);
}

TEST(BeatDetector, RobustToModerateNoise) {
  auto wave = clean_pulse(30.0);
  tono::Rng rng{12};
  for (auto& v : wave) v += rng.gaussian(0.0, 1.0);  // 1 mmHg rms noise
  const auto a = BeatDetector{}.analyze(wave);
  EXPECT_NEAR(static_cast<double>(a.beats.size()), 36.0, 5.0);
  EXPECT_NEAR(a.mean_systolic, 120.0, 6.0);
}

TEST(BeatDetector, WorksOnUncalibratedScale) {
  // Affine-transformed waveform (raw ADC units) gives the same beat count.
  auto wave = clean_pulse(20.0);
  std::vector<double> raw(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) raw[i] = wave[i] * 3.1e-4 - 0.02;
  const auto a = BeatDetector{}.analyze(wave);
  const auto b = BeatDetector{}.analyze(raw);
  // Scale invariance up to floating-point ties on marginal upstrokes.
  EXPECT_NEAR(static_cast<double>(a.beats.size()),
              static_cast<double>(b.beats.size()), 1.0);
}

TEST(BeatDetector, IntervalStddevReflectsHrv) {
  bio::PulseConfig steady;
  steady.hrv_jitter = 0.0;
  steady.mayer_depth = 0.0;
  steady.rsa_depth = 0.0;
  steady.drift_mmhg_per_sqrt_s = 0.0;
  bio::PulseConfig variable = steady;
  variable.hrv_jitter = 0.06;
  auto wave_of = [](const bio::PulseConfig& cfg) {
    bio::ArterialPulseGenerator gen{cfg};
    return gen.generate(1000.0, 40000);
  };
  const auto a_steady = BeatDetector{}.analyze(wave_of(steady));
  const auto a_var = BeatDetector{}.analyze(wave_of(variable));
  EXPECT_GT(a_var.interval_stddev_s, a_steady.interval_stddev_s);
}

TEST(BeatDetector, TooShortRecordGivesNoBeats) {
  std::vector<double> tiny(100, 0.0);
  const auto a = BeatDetector{}.analyze(tiny);
  EXPECT_TRUE(a.beats.empty());
}

TEST(BeatDetector, FlatSignalGivesNoBeats) {
  std::vector<double> flat(5000, 90.0);
  const auto a = BeatDetector{}.analyze(flat);
  EXPECT_TRUE(a.beats.empty());
}

TEST(BeatDetector, RejectsBadConfig) {
  BeatDetectorConfig bad;
  bad.sample_rate_hz = 0.0;
  EXPECT_THROW((BeatDetector{bad}), std::invalid_argument);
  BeatDetectorConfig bad2;
  bad2.lowpass_hz = 0.3;  // below highpass
  EXPECT_THROW((BeatDetector{bad2}), std::invalid_argument);
  BeatDetectorConfig bad3;
  bad3.threshold_fraction = 1.5;
  EXPECT_THROW((BeatDetector{bad3}), std::invalid_argument);
}

// Property: detection works across the clinical heart-rate range.
class HrSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(HrSweepTest, CountsBeats) {
  const double hr = GetParam();
  const double duration = 30.0;
  const auto wave = clean_pulse(duration, hr);
  const auto a = BeatDetector{}.analyze(wave);
  const double expected = duration * hr / 60.0;
  EXPECT_NEAR(static_cast<double>(a.beats.size()), expected, 0.12 * expected + 2.0)
      << "HR " << hr;
  EXPECT_NEAR(a.heart_rate_bpm, hr, 0.08 * hr + 2.0);
}

INSTANTIATE_TEST_SUITE_P(HeartRates, HrSweepTest,
                         ::testing::Values(50.0, 60.0, 72.0, 90.0, 110.0, 140.0));

}  // namespace
}  // namespace tono::core
