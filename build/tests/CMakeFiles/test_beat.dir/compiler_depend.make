# Empty compiler generated dependencies file for test_beat.
# This may be replaced when dependencies are built.
