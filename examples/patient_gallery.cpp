// patient_gallery — monitoring across clinical patient profiles.
//
// Runs the complete sensor chain against six synthetic patients (normal,
// hyper-/hypotensive, tachycardic, stiff-artery elderly, atrial
// fibrillation) and reports per-patient accuracy, signal quality and pulse
// wave analysis features — the kind of cohort sweep the paper's §4 "field
// tests" would produce.
#include <cstdio>

#include "src/core/monitor.hpp"
#include "src/core/hrv.hpp"
#include "src/core/pwa.hpp"
#include "src/core/quality.hpp"

namespace {

struct Entry {
  const char* name;
  tono::bio::PulseConfig pulse;
};

}  // namespace

int main() {
  using namespace tono;

  const Entry patients[] = {
      {"normotensive", bio::PatientPresets::normotensive()},
      {"hypertensive", bio::PatientPresets::hypertensive()},
      {"hypotensive", bio::PatientPresets::hypotensive()},
      {"tachycardic", bio::PatientPresets::tachycardic()},
      {"elderly-stiff", bio::PatientPresets::elderly_stiff()},
      {"atrial-fib", bio::PatientPresets::atrial_fibrillation()},
  };

  std::printf("%-14s %9s %9s %7s %6s %7s %7s %7s %8s\n", "patient", "sys est",
              "dia est", "HR", "SQI", "dP/dt", "AIx", "errMAP", "rhythm");
  std::printf("%-14s %9s %9s %7s %6s %7s %7s %7s %8s\n", "", "[mmHg]", "[mmHg]",
              "[bpm]", "", "[mmHg/s]", "", "[mmHg]", "");

  for (const auto& p : patients) {
    core::WristModel wrist;
    wrist.pulse = p.pulse;
    core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), wrist};
    try {
      (void)mon.calibrate(12.0);
    } catch (const std::exception& e) {
      std::printf("%-14s calibration failed: %s\n", p.name, e.what());
      continue;
    }
    const auto rep = mon.monitor(30.0);

    core::SignalQualityAssessor quality;
    const auto q = quality.assess(rep.waveform_mmhg);

    core::PulseWaveAnalyzer pwa{1000.0};
    const auto features = pwa.analyze(rep.waveform_mmhg, rep.beats, rep.time_s.front());

    // Rhythm screening needs clean beat timing: gate on SQI (detection
    // jitter on a weak pulse inflates interval variability — the fix in a
    // deployed device is auto-ranging to a finer C_fb first).
    const auto rhythm = core::classify_rhythm(core::compute_hrv(rep.beats));
    const char* rhythm_label =
        q.sqi < 0.8 ? "n/a" : (rhythm.likely_af ? "AF?" : "sinus");
    std::printf("%-14s %9.1f %9.1f %7.1f %6.2f %7.0f %7s %7.2f %8s\n", p.name,
                rep.beats.mean_systolic, rep.beats.mean_diastolic,
                rep.beats.heart_rate_bpm, q.sqi, features.mean_dpdt_max,
                features.mean_augmentation_index
                    ? std::to_string(*features.mean_augmentation_index).substr(0, 5).c_str()
                    : "n/a",
                rep.map_error_mmhg, rhythm_label);
  }

  std::puts("\nNotes: the AF profile is flagged by HRV screening; the weak");
  std::puts("hypotensive pulse is below rhythm-screening quality (n/a) until");
  std::puts("auto-ranging picks a finer feedback capacitor. AIx rises for the");
  std::puts("stiff-artery profile; MAP error stays cuff-bounded throughout.");
  return 0;
}
