// E4 / Fig. 4 — array multiplexer and channel-switch settling.
//
// Paper (§2.2): "The settling when switching between different sensor
// elements is limited by the signal bandwidth of the ΔΣ-AD-converter."
// The bench measures (a) the raw analog mux settling (nanoseconds) and
// (b) the observed settling through the full chain after an element switch,
// sweeping the converter bandwidth (OSR) to show the paper's statement:
// the filter transient, not the mux, sets the scan rate.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/statistics.hpp"
#include "src/common/units.hpp"
#include "src/core/pipeline.hpp"

namespace {

using namespace tono;

/// Samples until the output stays within `tol` of the final level.
std::size_t measure_settling_samples(core::AcquisitionPipeline& pipe, double tol) {
  auto field = [](double x, double, double) {
    return units::mmhg_to_pa(x > 0.0 ? 40.0 : 5.0);
  };
  pipe.select(0, 0);
  (void)pipe.acquire(field, 300);
  pipe.select(0, 1);
  const auto after = pipe.acquire(field, 400);
  std::vector<double> tail;
  for (std::size_t i = 200; i < after.size(); ++i) tail.push_back(after[i].value);
  const double steady = mean(tail);
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (std::abs(after[i].value - steady) < tol) {
      bool stays = true;
      for (std::size_t j = i; j < std::min(i + 20, after.size()); ++j) {
        if (std::abs(after[j].value - steady) > tol) {
          stays = false;
          break;
        }
      }
      if (stays) return i;
    }
  }
  return after.size();
}

void run() {
  bench::print_header("E4 / Fig. 4", "2x2 mux: channel-switch settling vs converter bandwidth");

  // (a) Raw analog path.
  const auto chip = core::ChipConfig::paper_chip();
  analog::AnalogMux mux{chip.mux};
  TextTable at{"Analog mux path (RC settling)"};
  at.set_header({"quantity", "value", "unit"});
  at.add_row("on-resistance", chip.mux.on_resistance_ohm, "ohm", 0);
  at.add_row("node capacitance", units::f_to_ff(chip.mux.node_capacitance_f), "fF", 1);
  at.add_row("time constant", mux.settling_tau_s() * 1e9, "ns", 2);
  at.add_row("0.01% settling", mux.settling_time_s(1e-4) * 1e9, "ns", 2);
  at.add_row("modulator clock period", 1e6 / 128000.0, "us", 2);
  at.print(std::cout);
  std::cout << "-> analog settling is ~1e3x faster than one modulator clock;\n"
               "   the visible transient must come from the decimation filter.\n";

  // (b) Through the full chain, sweeping converter bandwidth via OSR.
  TextTable st{"Observed settling after element switch vs converter bandwidth"};
  st.set_header({"OSR", "output rate [S/s]", "bandwidth [Hz]", "group delay [ms]",
                 "settling [samples]", "settling [ms]"});
  SeriesWriter series{"fig4_settling_vs_bandwidth", "bandwidth_hz", "settling_ms"};
  for (std::size_t osr : {32u, 64u, 128u, 256u}) {
    auto cfg = core::ChipConfig::paper_chip();
    cfg.decimation.total_decimation = osr;
    cfg.decimation.cic_decimation = std::min<std::size_t>(osr, 32u);
    const double out_rate = 128000.0 / static_cast<double>(osr);
    cfg.decimation.cutoff_hz = out_rate / 2.0;
    core::AcquisitionPipeline pipe{cfg};
    const std::size_t n = measure_settling_samples(pipe, 10.0 / 2048.0);
    const double settle_ms = static_cast<double>(n) / out_rate * 1e3;
    const double gd_ms = pipe.decimation().group_delay_seconds() * 1e3;
    st.add_row({format_double(static_cast<double>(osr), 0), format_double(out_rate, 0),
                format_double(out_rate / 2.0, 0), format_double(gd_ms, 2),
                format_double(static_cast<double>(n), 0), format_double(settle_ms, 2)});
    series.add(out_rate / 2.0, settle_ms);
  }
  st.print(std::cout);
  series.write_csv(std::cout);

  bench::ComparisonTable cmp{"Paper vs measured (§2.2)"};
  cmp.add("settling limited by", "ΔΣ signal bandwidth", "decimation transient (ms-scale)",
          true);
  cmp.add("analog mux limiting?", "no", "no (ns-scale RC)", true);
  cmp.print();
}

}  // namespace

int main() {
  run();
  return 0;
}
