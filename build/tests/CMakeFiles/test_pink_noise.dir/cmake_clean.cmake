file(REMOVE_RECURSE
  "CMakeFiles/test_pink_noise.dir/test_pink_noise.cpp.o"
  "CMakeFiles/test_pink_noise.dir/test_pink_noise.cpp.o.d"
  "test_pink_noise"
  "test_pink_noise.pdb"
  "test_pink_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pink_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
