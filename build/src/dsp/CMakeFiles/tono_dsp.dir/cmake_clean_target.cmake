file(REMOVE_RECURSE
  "libtono_dsp.a"
)
