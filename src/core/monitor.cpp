#include "src/core/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/checkpoint.hpp"
#include "src/common/units.hpp"

namespace tono::core {
namespace {

/// Time constant of the MAP reference used to split the arterial signal
/// into the static component (carried by the hold-down equilibrium) and the
/// transmitted deviation.
constexpr double kMapEmaTauS = 5.0;

/// The reference only adapts during placement/settling; after this it is
/// frozen, like a tonometer zeroed at setup. A running reference would
/// AC-couple the sensor and erase slow pressure trends — the very thing
/// continuous monitoring must catch.
constexpr double kMapReferenceFreezeS = 10.0;

ChipConfig with_backpressure(ChipConfig chip, double hold_down_mmhg) {
  // §3.2: the backside pressure tube biases the membranes upward so they
  // protrude into the contact layer; operationally this nulls the static
  // hold-down load so the converter range is spent on the pulsation.
  chip.transducer.backpressure_pa = units::mmhg_to_pa(hold_down_mmhg);
  return chip;
}

}  // namespace

BloodPressureMonitor::BloodPressureMonitor(const ChipConfig& chip, const WristModel& wrist)
    : chip_(with_backpressure(chip, wrist.hold_down_mmhg)),
      wrist_(wrist),
      pipeline_(chip_),
      pulse_(std::make_unique<bio::ArterialPulseGenerator>(wrist.pulse)),
      tissue_(wrist.tissue) {
  if (wrist_.enable_artifacts) {
    artifacts_ = std::make_unique<bio::ArtifactInjector>(wrist_.artifacts);
  }
  arterial_mmhg_ = wrist_.pulse.diastolic_mmhg;
  map_estimate_mmhg_ =
      (wrist_.pulse.systolic_mmhg + 2.0 * wrist_.pulse.diastolic_mmhg) / 3.0;
  auto& reg = metrics::Registry::global();
  sessions_metric_ = &reg.counter(metrics::names::kMonitorSessions);
  beats_metric_ = &reg.counter(metrics::names::kMonitorBeats);
  quality_rejections_metric_ = &reg.counter(metrics::names::kMonitorQualityRejections);
  rescans_metric_ = &reg.counter(metrics::names::kMonitorRescans);
  last_sqi_gauge_ = &reg.gauge(metrics::names::kMonitorLastSqi);
  session_wall_ = &reg.timer(metrics::names::kMonitorSessionWall);
}

void BloodPressureMonitor::stream_over_link_(
    const std::vector<dsp::DecimatedSample>& samples) {
  // Fig. 3: the decimated words leave the FPGA as framed USB telemetry. The
  // simulated wire is clean, so this feeds the link instrumentation with the
  // session's true frame volume (errors stay 0 unless a harness corrupts the
  // bytes deliberately).
  // The wire format carries exactly 12-bit words; ablation configs with a
  // different output width bypass the link rather than faking a narrower code.
  if (pipeline_.config().decimation.output_bits != 12) return;
  std::vector<std::int16_t> frame;
  frame.reserve(kMaxSamplesPerFrame);
  for (std::size_t i = 0; i < samples.size(); i += kMaxSamplesPerFrame) {
    frame.clear();
    const std::size_t end = std::min(samples.size(), i + kMaxSamplesPerFrame);
    for (std::size_t j = i; j < end; ++j) {
      frame.push_back(static_cast<std::int16_t>(samples[j].code));
    }
    (void)link_decoder_.push(link_encoder_.encode(frame));
  }
}

void BloodPressureMonitor::advance_to(double t_s) {
  const double dt = 1.0 / chip_.modulator.sampling_rate_hz;
  if (wrist_.scenario && t_s - last_scenario_apply_s_ > 0.1) {
    wrist_.scenario->apply(*pulse_, t_s);
    last_scenario_apply_s_ = t_s;
  }
  while (sim_time_s_ + dt * 0.5 < t_s) {
    arterial_mmhg_ = pulse_->sample(dt);
    if (artifacts_) artifact_mmhg_ = artifacts_->next(dt);
    if (sim_time_s_ < kMapReferenceFreezeS) {
      const double alpha = dt / kMapEmaTauS;
      map_estimate_mmhg_ += alpha * (arterial_mmhg_ - map_estimate_mmhg_);
    }
    sim_time_s_ += dt;
  }
  if (wrist_.enable_thermal_drift) {
    const double warm = 1.0 - std::exp(-t_s / wrist_.thermal_tau_s);
    pipeline_.set_temperature(
        wrist_.ambient_temperature_k +
        (wrist_.skin_temperature_k - wrist_.ambient_temperature_k) * warm);
  }
}

void BloodPressureMonitor::serialize(CheckpointWriter& out) const {
  out.section("monitor");
  pipeline_.serialize(out);
  pulse_->serialize(out);
  out.boolean(artifacts_ != nullptr);
  if (artifacts_) artifacts_->serialize(out);
  calibration_.serialize(out);
  out.f64(sim_time_s_);
  out.f64(arterial_mmhg_);
  out.f64(artifact_mmhg_);
  out.f64(map_estimate_mmhg_);
  out.f64(last_scenario_apply_s_);
  out.f64(wrist_.placement_offset_m);  // shift_placement mutates it
  link_encoder_.serialize(out);
  link_decoder_.serialize(out);
}

void BloodPressureMonitor::restore(CheckpointReader& in) {
  in.section("monitor");
  pipeline_.restore(in);
  pulse_->restore(in);
  if (in.boolean() != (artifacts_ != nullptr)) {
    throw CheckpointError{"monitor checkpoint artefact-injector presence mismatch"};
  }
  if (artifacts_) artifacts_->restore(in);
  calibration_.restore(in);
  sim_time_s_ = in.f64();
  arterial_mmhg_ = in.f64();
  artifact_mmhg_ = in.f64();
  map_estimate_mmhg_ = in.f64();
  last_scenario_apply_s_ = in.f64();
  wrist_.placement_offset_m = in.f64();
  link_encoder_.restore(in);
  link_decoder_.restore(in);
}

ContactField BloodPressureMonitor::contact_field() {
  return [this](double x_m, double y_m, double t_s) -> double {
    (void)y_m;  // the artery runs along y; only the x offset attenuates
    advance_to(t_s);
    const double offset =
        std::abs(x_m + wrist_.placement_offset_m - wrist_.vessel_x_m);
    const double contact_mmhg =
        tissue_.contact_pressure_mmhg(arterial_mmhg_, map_estimate_mmhg_,
                                      wrist_.hold_down_mmhg, offset) +
        artifact_mmhg_;
    return units::mmhg_to_pa(contact_mmhg);
  };
}

ScanResult BloodPressureMonitor::localize(const ScanConfig& scan) {
  return ScanController{scan}.scan(pipeline_, contact_field());
}

bio::CuffReading BloodPressureMonitor::calibrate(double window_s,
                                                 const bio::CuffConfig& cuff_config,
                                                 bool enforce_quality) {
  // 1. Cuff reading against the patient's current ground truth.
  double truth_sys = wrist_.pulse.systolic_mmhg;
  double truth_dia = wrist_.pulse.diastolic_mmhg;
  const auto& truth = pulse_->beat_truth();
  if (truth.size() >= 5) {
    double sys_acc = 0.0;
    double dia_acc = 0.0;
    const std::size_t take = std::min<std::size_t>(truth.size(), 20);
    for (std::size_t i = truth.size() - take; i < truth.size(); ++i) {
      sys_acc += truth[i].systolic_mmhg;
      dia_acc += truth[i].diastolic_mmhg;
    }
    truth_sys = sys_acc / static_cast<double>(take);
    truth_dia = dia_acc / static_cast<double>(take);
  }
  bio::OscillometricCuff cuff{cuff_config};
  const auto reading = cuff.measure(truth_sys, truth_dia, wrist_.pulse.heart_rate_bpm);
  if (!reading.valid) {
    throw std::runtime_error{"BloodPressureMonitor: cuff measurement failed"};
  }

  // 2. Acquire the calibration window on the selected element.
  const auto n = static_cast<std::size_t>(window_s * pipeline_.output_rate_hz());
  const auto samples = pipeline_.acquire(contact_field(), n);
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.value);

  // 3. Gate on signal quality: anchoring the calibration to noise-triggered
  //    "beats" (bad placement, dead elements) would silently produce garbage
  //    pressures.
  BeatDetectorConfig det;
  det.sample_rate_hz = pipeline_.output_rate_hz();
  if (enforce_quality) {
    QualityConfig qc;
    qc.detector = det;
    const auto quality = SignalQualityAssessor{qc}.assess(values);
    if (!quality.usable) {
      quality_rejections_metric_->add(1);
      throw std::runtime_error{
          "BloodPressureMonitor: calibration window has no usable pulse signal (SQI " +
          std::to_string(quality.sqi) + ")"};
    }
  }

  // 4. Anchor per-beat extrema to the cuff systolic/diastolic values.
  calibration_ =
      TwoPointCalibration::from_waveform(values, det, reading.systolic_mmhg,
                                         reading.diastolic_mmhg);
  return reading;
}

MonitoringReport BloodPressureMonitor::monitor(double duration_s) {
  metrics::TraceSpan span{*session_wall_};
  sessions_metric_->add(1);
  MonitoringReport report;
  const double fs_out = pipeline_.output_rate_hz();
  const auto n = static_cast<std::size_t>(duration_s * fs_out);
  const double t_start = pipeline_.time_s();

  const auto samples = pipeline_.acquire(contact_field(), n);
  stream_over_link_(samples);
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.value);

  report.waveform_mmhg = calibration_.apply(values);
  report.time_s.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    report.time_s.push_back(t_start + static_cast<double>(i) / fs_out);
  }

  BeatDetectorConfig det;
  det.sample_rate_hz = fs_out;
  report.beats = BeatDetector{det}.analyze(report.waveform_mmhg, t_start);

  QualityConfig qc;
  qc.detector = det;
  report.quality = SignalQualityAssessor{qc}.assess(report.waveform_mmhg);
  beats_metric_->add(report.beats.beats.size());
  last_sqi_gauge_->set(report.quality.sqi);
  report.pulse_wave =
      PulseWaveAnalyzer{fs_out}.analyze(report.waveform_mmhg, report.beats, t_start);

  // Ground truth over the same interval.
  const double t_end = pipeline_.time_s();
  double sys_acc = 0.0;
  double dia_acc = 0.0;
  double map_acc = 0.0;
  double interval_acc = 0.0;
  std::size_t nb = 0;
  for (const auto& b : pulse_->beat_truth()) {
    if (b.onset_s >= t_start && b.onset_s < t_end) {
      sys_acc += b.systolic_mmhg;
      dia_acc += b.diastolic_mmhg;
      map_acc += b.map_mmhg;
      interval_acc += b.interval_s;
      ++nb;
    }
  }
  if (nb > 0) {
    const auto nbd = static_cast<double>(nb);
    report.truth_systolic_mmhg = sys_acc / nbd;
    report.truth_diastolic_mmhg = dia_acc / nbd;
    report.truth_map_mmhg = map_acc / nbd;
    report.truth_heart_rate_bpm = 60.0 / (interval_acc / nbd);
    report.systolic_error_mmhg = report.beats.mean_systolic - report.truth_systolic_mmhg;
    report.diastolic_error_mmhg =
        report.beats.mean_diastolic - report.truth_diastolic_mmhg;
    report.map_error_mmhg = report.beats.mean_map - report.truth_map_mmhg;
  }
  return report;
}

BloodPressureMonitor::AdaptiveReport BloodPressureMonitor::monitor_adaptive(
    double duration_s, const AdaptiveConfig& config) {
  AdaptiveReport report;
  double remaining = duration_s;
  while (remaining > 0.5 * config.chunk_s) {
    const double chunk = std::min(config.chunk_s, remaining);
    auto rep = monitor(chunk);
    report.chunk_sqi.push_back(rep.quality.sqi);
    const bool degraded = !rep.quality.usable;
    if (degraded) quality_rejections_metric_->add(1);
    report.chunks.push_back(std::move(rep));
    remaining -= chunk;
    if (degraded && report.rescans < config.max_rescans) {
      // Re-acquire the strongest element; the signal may have moved.
      (void)ScanController{config.scan}.scan(pipeline_, contact_field());
      ++report.rescans;
      rescans_metric_->add(1);
    }
  }
  return report;
}

}  // namespace tono::core
