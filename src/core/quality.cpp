#include "src/core/quality.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/common/statistics.hpp"

namespace tono::core {
namespace {

/// Coefficient of variation, 0 for degenerate input.
double cv(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / std::abs(m);
}

/// Linear score: 1 at x = 0, 0 at x >= floor_x.
double score(double x, double floor_x) {
  if (floor_x <= 0.0) return 0.0;
  return std::clamp(1.0 - x / floor_x, 0.0, 1.0);
}

}  // namespace

SignalQualityAssessor::SignalQualityAssessor(const QualityConfig& config) : config_(config) {
  if (config_.iqr_multiplier <= 0.0) {
    throw std::invalid_argument{"SignalQualityAssessor: IQR multiplier must be > 0"};
  }
  if (config_.min_beats == 0) {
    throw std::invalid_argument{"SignalQualityAssessor: min beats must be > 0"};
  }
}

QualityReport SignalQualityAssessor::assess(std::span<const double> window) const {
  QualityReport rep;
  if (window.empty()) return rep;

  const BeatDetector detector{config_.detector};
  const auto beats = detector.analyze(window);
  rep.beat_count = beats.beats.size();

  // Artefact load: boxplot outliers. The inter-quartile range tracks the
  // beat's own excursion (robust to heavy spike contamination), so only
  // values beyond the physiological envelope count.
  const double q1 = percentile(window, 25.0);
  const double q3 = percentile(window, 75.0);
  const double iqr = q3 - q1;
  if (iqr > 0.0) {
    const double lo = q1 - config_.iqr_multiplier * iqr;
    const double hi = q3 + config_.iqr_multiplier * iqr;
    std::size_t outliers = 0;
    for (double v : window) {
      if (v < lo || v > hi) ++outliers;
    }
    rep.artifact_fraction = static_cast<double>(outliers) / static_cast<double>(window.size());
  }

  if (rep.beat_count < config_.min_beats) {
    // No rhythm to speak of: quality is artefact score alone, scaled down.
    rep.sqi = 0.25 * score(rep.artifact_fraction, config_.artifact_fraction_floor);
    rep.usable = false;
    return rep;
  }

  std::vector<double> intervals;
  std::vector<double> amplitudes;
  intervals.reserve(rep.beat_count);
  amplitudes.reserve(rep.beat_count);
  for (std::size_t i = 0; i < beats.beats.size(); ++i) {
    amplitudes.push_back(beats.beats[i].systolic_value - beats.beats[i].diastolic_value);
    if (i > 0) {
      intervals.push_back(beats.beats[i].upstroke_s - beats.beats[i - 1].upstroke_s);
    }
  }
  rep.interval_cv = cv(intervals);
  rep.amplitude_cv = cv(amplitudes);

  // Pulse significance: a real pulse towers over the waveform's sample-to-
  // sample noise; detections locked onto filtered converter noise do not.
  // The size() - 1 denominator underflows (wraps to SIZE_MAX) for a
  // single-sample window; min_beats normally screens those out, but the
  // guard keeps the division total for any caller.
  if (window.size() >= 2) {
    double diff_acc = 0.0;
    for (std::size_t i = 1; i < window.size(); ++i) {
      const double d = window[i] - window[i - 1];
      diff_acc += d * d;
    }
    const double hf_rms =
        std::sqrt(diff_acc / (2.0 * static_cast<double>(window.size() - 1)));
    const double mean_amp = mean(amplitudes);
    rep.pulse_snr = hf_rms > 0.0 ? mean_amp / hf_rms : 0.0;
  }

  // Shape consistency: correlate each beat segment (fixed length ~60 % of
  // the median interval, from the upstroke) against the ensemble template.
  // Detection timing jitters by tens of ms when the converter range is
  // coarse, so each segment is aligned to the template by its best lag
  // (±60 ms) before scoring — a real pulse realigns to ≈0.8+, noise cannot.
  {
    std::vector<double> sorted_iv = intervals;
    const double med_iv = sorted_iv.empty() ? 0.8 : median(sorted_iv);
    const auto fs = config_.detector.sample_rate_hz;
    const auto seg_len = static_cast<std::size_t>(0.6 * med_iv * fs);
    const auto max_lag = static_cast<std::size_t>(0.06 * fs);
    if (seg_len >= 8) {
      // Extract segments with margin for the alignment search.
      std::vector<std::vector<double>> segments;  // padded by max_lag each side
      for (const auto& b : beats.beats) {
        const double start_s = b.upstroke_s;
        const auto start = static_cast<std::size_t>(start_s * fs);
        if (start < max_lag || start + seg_len + max_lag >= window.size()) continue;
        segments.emplace_back(
            window.begin() + static_cast<long>(start - max_lag),
            window.begin() + static_cast<long>(start + seg_len + max_lag));
      }
      if (segments.size() >= 3) {
        // Template from the center (unshifted) cuts.
        std::vector<double> tmpl(seg_len, 0.0);
        for (const auto& s : segments) {
          for (std::size_t i = 0; i < seg_len; ++i) tmpl[i] += s[max_lag + i];
        }
        for (auto& v : tmpl) v /= static_cast<double>(segments.size());
        double corr_acc = 0.0;
        for (const auto& s : segments) {
          double best = -1.0;
          for (std::size_t lag = 0; lag <= 2 * max_lag; lag += 2) {
            const std::span<const double> cut{s.data() + lag, seg_len};
            best = std::max(best, pearson_correlation(cut, tmpl));
          }
          corr_acc += best;
        }
        rep.shape_consistency =
            std::max(0.0, corr_acc / static_cast<double>(segments.size()));
      }
    }
  }

  const double s_rhythm = score(rep.interval_cv, config_.interval_cv_floor);
  const double s_amp = score(rep.amplitude_cv, config_.amplitude_cv_floor);
  const double s_art = score(rep.artifact_fraction, config_.artifact_fraction_floor);
  const double s_pulse =
      std::clamp(rep.pulse_snr / config_.pulse_snr_full_score, 0.0, 1.0);
  const double s_shape = std::clamp(rep.shape_consistency, 0.0, 1.0);
  // Geometric-style blend: any collapsed component drags the SQI down hard.
  rep.sqi = std::pow(s_rhythm * s_amp * s_art * s_pulse * s_shape, 0.2);
  const bool pulse_evidence =
      rep.shape_consistency >= config_.min_shape_consistency ||
      rep.pulse_snr >= config_.strong_pulse_snr;
  rep.usable = rep.sqi >= 0.5 && pulse_evidence;
  return rep;
}

}  // namespace tono::core
