#include "src/analog/modulator_bank.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/checkpoint.hpp"

namespace tono::analog {
namespace {

std::vector<ModulatorConfig> derived_configs(const ModulatorConfig& base,
                                             std::size_t lanes) {
  std::vector<ModulatorConfig> configs(lanes, base);
  for (std::size_t k = 1; k < lanes; ++k) {
    // Same mixing Rng::fork applies to its salt; splitmix64 seeding then
    // scrambles whatever structure remains. Plain `seed + k` would hand
    // splitmix sequential states and give overlapping xoshiro states.
    configs[k].seed =
        base.seed ^ (k * 0x9E3779B97F4A7C15ull + 0x632BE59BD9B4E019ull);
  }
  return configs;
}

}  // namespace

ModulatorBank::ModulatorBank(const std::vector<ModulatorConfig>& configs) {
  if (configs.empty()) {
    throw std::invalid_argument{"ModulatorBank: need at least one lane"};
  }
  lanes_.reserve(configs.size());
  for (const auto& config : configs) lanes_.emplace_back(config);
  inputs_.resize(configs.size());
  init_metrics_();
}

ModulatorBank::ModulatorBank(const ModulatorConfig& base, std::size_t lanes)
    : ModulatorBank(derived_configs(base, lanes)) {}

void ModulatorBank::init_metrics_() {
  auto& reg = metrics::Registry::global();
  bank_lanes_gauge_ = &reg.gauge(metrics::names::kModulatorBankLanes);
  step_block_timer_ = &reg.timer(metrics::names::kBankStepBlock);
  bank_lanes_gauge_->set(static_cast<double>(lanes_.size()));
}

void ModulatorBank::step_capacitive_block(const double* c_sense_f,
                                          const double* c_ref_f, int* bits_out,
                                          std::size_t n) {
  metrics::TraceSpan span(*step_block_timer_);
  const std::size_t k_lanes = lanes_.size();
  for (std::size_t k = 0; k < k_lanes; ++k) {
    inputs_[k] = lanes_[k].capacitive_input_(c_sense_f[k], c_ref_f[k]);
  }
  std::size_t done = 0;
  while (done < n) {
    const std::size_t frame = std::min<std::size_t>(
        n - done, DeltaSigmaModulator::NoisePlan::kFrame);
    // Bulk phase: every lane's noise for the frame, one source group at a
    // time per lane (long tight fill loops).
    for (std::size_t k = 0; k < k_lanes; ++k) {
      lanes_[k].fill_noise_plan_(frame, inputs_[k].sigma_u, inputs_[k].ktc);
    }
    // Lockstep phase: clock-outer / lane-inner, so the K loop recurrences'
    // independent FP chains overlap in the core instead of serializing.
    for (std::size_t i = 0; i < frame; ++i) {
      for (std::size_t k = 0; k < k_lanes; ++k) {
        bits_out[k * n + done + i] = lanes_[k].step_planned_(inputs_[k].u);
      }
    }
    done += frame;
  }
}

void ModulatorBank::step_capacitive_block(const double* c_sense_f, int* bits_out,
                                          std::size_t n) {
  // Mirror DeltaSigmaModulator::step_capacitive(c_sense): the reference
  // branch is each lane's configured on-chip capacitor with its die mismatch.
  std::vector<double> c_ref(lanes_.size());
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    c_ref[k] = lanes_[k].config_.c_ref_f * lanes_[k].ref_mismatch_;
  }
  step_capacitive_block(c_sense_f, c_ref.data(), bits_out, n);
}

void ModulatorBank::reset() {
  for (auto& lane : lanes_) lane.reset();
}

void ModulatorBank::serialize(CheckpointWriter& out) const {
  out.section("modulator_bank");
  out.size(lanes_.size());
  for (const auto& lane : lanes_) lane.serialize(out);
}

void ModulatorBank::restore(CheckpointReader& in) {
  in.section("modulator_bank");
  const std::size_t lanes = in.size();
  if (lanes != lanes_.size()) {
    throw CheckpointError{"ModulatorBank checkpoint lane count " +
                          std::to_string(lanes) + " != configured " +
                          std::to_string(lanes_.size())};
  }
  for (auto& lane : lanes_) lane.restore(in);
}

}  // namespace tono::analog
