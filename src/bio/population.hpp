// population.hpp — seeded patient-population generator.
//
// The paper validates one test person (§3.2); a production fleet has to
// hold up across *populations*. This module draws per-session scenario
// configurations from age/stiffness/heart-rate/HRV/artifact distributions,
// so validation sweeps (examples/validation_report) can grade the pipeline
// over thousands of distinct-but-reproducible synthetic patients.
//
// Determinism contract: `member(i)` is a pure function of
// (PopulationConfig, i). Seeds are forked exactly the way SweepRunner
// derives trial streams — `Rng{seed}.fork_named("population").fork(i)` —
// so the same population comes out bit-identical regardless of thread
// count, shard layout, or the order members are materialized in.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/bio/artifacts.hpp"
#include "src/bio/pulse_generator.hpp"
#include "src/bio/scenario.hpp"

namespace tono::bio {

/// Scenario families a population member can be assigned to. kRest holds
/// the member's baseline; the rest layer the shipped ScenarioProfile
/// presets, retargeted to the member's own baseline physiology.
enum class ScenarioFamily : std::uint8_t {
  kRest = 0,
  kExercise,
  kHypotensive,
  kArrhythmia,
  kCuffDrift,
  kSensorAging,
};

inline constexpr std::size_t kScenarioFamilyCount = 6;

[[nodiscard]] const char* to_string(ScenarioFamily family) noexcept;

/// One fully resolved population member: everything a session needs to
/// run and to be graded (the per-beat truth comes from the generator the
/// pulse config seeds).
struct ScenarioConfig {
  std::size_t member_index{0};
  /// Per-member session seed (drives the session's chip/pulse/artifact
  /// stream derivation, same role as SessionConfig::seed).
  std::uint64_t seed{0};
  ScenarioFamily family{ScenarioFamily::kRest};
  /// Age-band cohort label for fleet roll-ups ("age18-39", ... "age75plus").
  std::string cohort;
  double age_years{45.0};
  /// Arterial stiffness index in [0, 1] (drives baseline BP, pulse
  /// pressure, HRV decline and the reflected-wave morphology).
  double stiffness{0.3};
  double scenario_duration_s{120.0};
  /// Baseline physiology, morphology and variability, fully resolved.
  PulseConfig pulse;
  /// Motion/contact artefact model for the member (sessions opt in via
  /// enable_artifacts).
  ArtifactConfig artifacts;
  bool enable_artifacts{false};

  /// The member's scenario profile: the family preset retargeted to the
  /// member's baseline (kRest = flat hold at baseline).
  [[nodiscard]] std::shared_ptr<const ScenarioProfile> make_profile() const;
};

struct PopulationConfig {
  std::uint64_t seed{0x70A05EEDull};
  double age_min_years{18.0};
  double age_max_years{90.0};
  double scenario_duration_s{120.0};
  /// Relative family weights (normalized internally; all-zero falls back
  /// to kRest).
  double weight_rest{0.30};
  double weight_exercise{0.18};
  double weight_hypotensive{0.12};
  double weight_arrhythmia{0.14};
  double weight_cuff_drift{0.13};
  double weight_sensor_aging{0.13};
  bool enable_artifacts{false};
};

class PopulationGenerator {
 public:
  explicit PopulationGenerator(PopulationConfig config);

  /// Pure function of (config, index): materializing member 7 never
  /// depends on whether members 0..6 were generated, on which thread, or
  /// in which shard.
  [[nodiscard]] ScenarioConfig member(std::size_t index) const;

  /// Convenience: members [0, count).
  [[nodiscard]] std::vector<ScenarioConfig> generate(std::size_t count) const;

  [[nodiscard]] const PopulationConfig& config() const noexcept { return config_; }

 private:
  PopulationConfig config_;
};

}  // namespace tono::bio
