# Empty compiler generated dependencies file for test_pink_noise.
# This may be replaced when dependencies are built.
