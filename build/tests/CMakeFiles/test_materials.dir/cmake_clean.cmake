file(REMOVE_RECURSE
  "CMakeFiles/test_materials.dir/test_materials.cpp.o"
  "CMakeFiles/test_materials.dir/test_materials.cpp.o.d"
  "test_materials"
  "test_materials.pdb"
  "test_materials[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_materials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
