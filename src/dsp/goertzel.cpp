#include "src/dsp/goertzel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tono::dsp {

std::complex<double> goertzel(std::span<const double> x, double freq_hz,
                              double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument{"goertzel: bad sample rate"};
  if (x.empty()) return {0.0, 0.0};
  const double omega = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
  const double coeff = 2.0 * std::cos(omega);
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  for (double v : x) {
    s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  // X(ω) = e^{jωN}·(s1 − e^{-jω} s2); the leading phase factor is dropped —
  // callers use magnitude or relative phase.
  const std::complex<double> e{std::cos(omega), -std::sin(omega)};
  return s1 - e * s2;
}

double goertzel_amplitude(std::span<const double> x, double freq_hz,
                          double sample_rate_hz) {
  if (x.empty()) return 0.0;
  return 2.0 * std::abs(goertzel(x, freq_hz, sample_rate_hz)) /
         static_cast<double>(x.size());
}

}  // namespace tono::dsp
