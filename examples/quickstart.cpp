// quickstart — smallest end-to-end use of the tonosim public API.
//
// Builds the paper's chip, presses it against a synthetic wrist, acquires
// two seconds of data and prints what the sensor saw. Start here.
#include <cstdio>

#include "src/core/monitor.hpp"

int main() {
  using namespace tono;

  // 1. The chip exactly as published (2x2 array, ΔΣ readout, 12 bit @ 1 kS/s).
  const auto chip = core::ChipConfig::paper_chip();

  // 2. A synthetic patient: 120/80 mmHg at 72 bpm, radial artery under
  //    2.5 mm of tissue, sensor held down at 80 mmHg.
  core::WristModel wrist;

  core::BloodPressureMonitor monitor{chip, wrist};

  // 3. Calibrate against a simulated hand-cuff reading (the paper's §3.2
  //    protocol), then stream continuously.
  const auto cuff = monitor.calibrate(/*window_s=*/10.0);
  std::printf("cuff calibration: %.1f / %.1f mmHg\n", cuff.systolic_mmhg,
              cuff.diastolic_mmhg);

  const auto report = monitor.monitor(/*duration_s=*/10.0);
  std::printf("streamed %zu samples at %.0f S/s, %zu beats detected\n",
              report.waveform_mmhg.size(), monitor.pipeline().output_rate_hz(),
              report.beats.beats.size());
  std::printf("estimate: %.1f / %.1f mmHg @ %.1f bpm\n", report.beats.mean_systolic,
              report.beats.mean_diastolic, report.beats.heart_rate_bpm);
  std::printf("ground truth: %.1f / %.1f mmHg @ %.1f bpm\n", report.truth_systolic_mmhg,
              report.truth_diastolic_mmhg, report.truth_heart_rate_bpm);
  std::printf("errors: sys %+.2f, dia %+.2f, MAP %+.2f mmHg\n",
              report.systolic_error_mmhg, report.diastolic_error_mmhg,
              report.map_error_mmhg);
  return 0;
}
