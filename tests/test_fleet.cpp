// Tests for the fleet serving layer (src/fleet/): the determinism contract
// (parallel fleet == serial fleet == solo sessions, bit for bit), metrics
// on/off bit-exactness, session lifecycle including quarantine crash
// isolation, and the ward aggregator's escalation policy. The Fleet and
// Ward suites run under the CI TSan job.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/metrics.hpp"
#include "src/fleet/fault_plan.hpp"
#include "src/fleet/fleet_scheduler.hpp"

namespace {

using namespace tono;
using fleet::FaultEvent;
using fleet::FaultKind;
using fleet::FaultPlanConfig;
using fleet::FleetConfig;
using fleet::FleetEvent;
using fleet::FleetEventKind;
using fleet::FleetScheduler;
using fleet::PatientSession;
using fleet::SessionConfig;
using fleet::SessionState;
using fleet::WardAggregator;
using fleet::WardAlarmLevel;
using fleet::WardConfig;

/// The mixed 3-session ward every determinism test runs: a quiet patient,
/// an alarm-worthy preset, a scenario-driven one.
SessionConfig mixed_config(std::size_t index) {
  SessionConfig config;
  if (index == 1) config.wrist.pulse = bio::PatientPresets::hypertensive();
  if (index == 2) config.scenario = "exercise";
  return config;
}

/// Runs a 3-session fleet for `duration_s` and returns the recorded code
/// stream of every session.
std::vector<std::vector<std::int16_t>> run_fleet(std::size_t threads,
                                                 double duration_s) {
  WardConfig ward_config;
  ward_config.record_codes = true;
  WardAggregator ward{ward_config};
  FleetConfig fleet_config;
  fleet_config.threads = threads;
  FleetScheduler scheduler{fleet_config, ward};
  for (std::size_t i = 0; i < 3; ++i) {
    (void)scheduler.admit(mixed_config(i));
  }
  scheduler.run(duration_s);
  std::vector<std::vector<std::int16_t>> codes;
  for (std::uint32_t id = 0; id < 3; ++id) {
    codes.push_back(ward.recorded_codes(id));
  }
  return codes;
}

TEST(Fleet, SessionSeedDependsOnlyOnBaseSeedStreamAndIndex) {
  WardAggregator ward_a, ward_b, ward_c;
  FleetConfig config;
  FleetScheduler a{config, ward_a};
  FleetScheduler b{config, ward_b};
  EXPECT_EQ(a.session_seed(0), b.session_seed(0));
  EXPECT_EQ(a.session_seed(7), b.session_seed(7));
  EXPECT_NE(a.session_seed(0), a.session_seed(1));
  config.stream_name = "other";
  FleetScheduler c{config, ward_c};
  EXPECT_NE(a.session_seed(0), c.session_seed(0));
}

TEST(Fleet, ParallelIsBitIdenticalToSerial) {
  const auto serial = run_fleet(1, 1.0);
  const auto parallel = run_fleet(4, 1.0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].empty()) << "session " << i << " produced no codes";
    EXPECT_EQ(serial[i], parallel[i]) << "session " << i << " diverged";
  }
}

TEST(Fleet, FleetSessionIsBitIdenticalToSoloRun) {
  const auto fleet_codes = run_fleet(1, 1.0);

  // Reproduce each session solo: same derived seed, same config, same step
  // schedule — the fleet must be invisible to the session.
  WardAggregator ward;
  FleetScheduler seeder{FleetConfig{}, ward};
  for (std::uint32_t id = 0; id < 3; ++id) {
    SessionConfig config = mixed_config(id);
    config.seed = seeder.session_seed(id);
    PatientSession solo{id, std::move(config)};
    std::vector<std::int16_t> codes;
    while (solo.stream_time_s() < 1.0) {
      solo.step(FleetConfig{}.frames_per_step);
      solo.codes().pop_all(codes);
    }
    EXPECT_EQ(codes, fleet_codes[id]) << "session " << id << " diverged solo";
  }
}

TEST(Fleet, MetricsOnOffIsBitExact) {
  const auto with_metrics = run_fleet(1, 0.5);
  metrics::set_enabled(false);
  const auto without_metrics = run_fleet(1, 0.5);
  metrics::set_enabled(true);
  EXPECT_EQ(with_metrics, without_metrics);
}

TEST(Fleet, AdmitRejectsCodeRingSmallerThanOneBatch) {
  WardAggregator ward;
  FleetConfig config;
  config.threads = 1;
  config.frames_per_step = 64;
  FleetScheduler scheduler{config, ward};
  SessionConfig session;
  session.code_ring_capacity = 16;  // < frames_per_step: serial deadlock risk
  EXPECT_THROW((void)scheduler.admit(std::move(session)), std::invalid_argument);
}

TEST(Fleet, UnknownScenarioIsRejectedAtAdmission) {
  WardAggregator ward;
  FleetScheduler scheduler{FleetConfig{}, ward};
  SessionConfig session;
  session.scenario = "zombie-apocalypse";
  EXPECT_THROW((void)scheduler.admit(std::move(session)), std::invalid_argument);
}

TEST(Fleet, ThrowingSessionIsRetriedThenRetiredNotFatal) {
  WardAggregator ward;
  FleetConfig config;
  config.threads = 1;
  config.max_readmits = 1;
  FleetScheduler scheduler{config, ward};
  // A calibration window far too short to contain a usable pulse: admission
  // (which runs inside the first batch) throws on every attempt, so the
  // session burns through its readmission budget and retires — while every
  // other session keeps streaming.
  SessionConfig bad;
  bad.calibration_window_s = 0.25;
  const auto bad_id = scheduler.admit(std::move(bad));
  const auto good_id = scheduler.admit(SessionConfig{});

  scheduler.run(0.2);

  EXPECT_EQ(scheduler.state(bad_id), SessionState::kRetired);
  EXPECT_EQ(scheduler.strikes(bad_id), config.max_readmits + 1);
  EXPECT_FALSE(scheduler.quarantine_reason(bad_id).empty());
  EXPECT_EQ(scheduler.state(good_id), SessionState::kRunning);
  EXPECT_GT(ward.session(good_id)->codes, 0u);
  // The ward snapshot carries the reason as the session note plus the full
  // strike history in the fault log.
  EXPECT_EQ(ward.session(bad_id)->lifecycle, SessionState::kRetired);
  EXPECT_FALSE(ward.session(bad_id)->note.empty());
  EXPECT_EQ(ward.retired(), 1u);
  const auto& log = ward.session(bad_id)->fault_log;
  ASSERT_EQ(log.size(), 2u);
  EXPECT_NE(log[0].find("quarantined (strike 1/2)"), std::string::npos);
  EXPECT_NE(log[1].find("retired after 1 readmission(s)"), std::string::npos);
}

TEST(Fleet, TransientFaultIsReadmittedAndResumesStreaming) {
  WardAggregator ward;
  FleetConfig config;
  config.threads = 1;
  FleetScheduler scheduler{config, ward};
  // A hand-written transient contact loss: throws exactly once (one strike),
  // then applies as a plain signal degradation on the readmission attempt.
  SessionConfig session;
  session.manual_faults.push_back(FaultEvent{.kind = FaultKind::kContactLoss,
                                             .at_s = 0.05,
                                             .duration_s = 0.10,
                                             .throw_count = 1});
  const auto id = scheduler.admit(std::move(session));

  scheduler.run(0.4);

  EXPECT_EQ(scheduler.state(id), SessionState::kRunning);
  EXPECT_EQ(scheduler.strikes(id), 1u);
  EXPECT_EQ(ward.recoveries(), 1u);
  EXPECT_EQ(ward.session(id)->recoveries, 1u);
  EXPECT_TRUE(ward.session(id)->note.empty()) << "stale quarantine note kept";
  // The session streamed to the end despite the mid-run quarantine.
  EXPECT_GE(scheduler.session(id)->stream_time_s(), 0.4);
  const auto& log = ward.session(id)->fault_log;
  ASSERT_EQ(log.size(), 4u);
  EXPECT_NE(log[0].find("injected: contact loss"), std::string::npos);
  EXPECT_NE(log[1].find("quarantined (strike 1/4)"), std::string::npos);
  EXPECT_NE(log[2].find("readmitted after strike 1"), std::string::npos);
  EXPECT_NE(log[3].find("applied: contact loss"), std::string::npos);
}

TEST(Fleet, UnrecoverableFaultStrikesOutToRetired) {
  WardAggregator ward;
  FleetConfig config;
  config.threads = 1;
  config.max_readmits = 2;
  FleetScheduler scheduler{config, ward};
  SessionConfig session;
  session.manual_faults.push_back(
      FaultEvent{.kind = FaultKind::kContactLoss,
                 .at_s = 0.05,
                 .duration_s = 0.10,
                 .throw_count = fleet::kUnrecoverableThrows});
  const auto id = scheduler.admit(std::move(session));

  scheduler.run(0.4);

  EXPECT_EQ(scheduler.state(id), SessionState::kRetired);
  EXPECT_EQ(scheduler.strikes(id), 3u);
  EXPECT_EQ(ward.retired(), 1u);
  EXPECT_EQ(ward.recoveries(), 0u);
  // Full history: one injection + one strike per attempt, then the verdict.
  const auto& log = ward.session(id)->fault_log;
  std::size_t injections = 0, strikes = 0;
  for (const auto& line : log) {
    injections += line.find("injected:") != std::string::npos;
    strikes += line.find("quarantined (strike") != std::string::npos;
  }
  EXPECT_EQ(injections, 3u);
  EXPECT_EQ(strikes, 2u) << "third strike is the retirement verdict";
  ASSERT_FALSE(log.empty());
  EXPECT_NE(log.back().find("retired after 2 readmission(s)"), std::string::npos);
  EXPECT_NE(log.back().find("(unrecoverable)"), std::string::npos);
}

/// A nonempty generated schedule whose onsets all land inside a 1 s run:
/// one transient contact loss (one quarantine + readmission), one link
/// corruption burst, one element fault per session.
FaultPlanConfig faulty_plan() {
  FaultPlanConfig plan;
  plan.contact_loss_events = 1;
  plan.link_bursts = 1;
  plan.element_faults = 1;
  plan.min_onset_s = 0.10;
  plan.horizon_s = 0.80;
  return plan;
}

struct FaultyRun {
  std::vector<std::vector<std::int16_t>> codes;
  std::string snapshot;
  std::uint64_t recoveries;
  std::uint64_t checkpoints_written;
  std::uint64_t checkpoints_restored;
  std::uint64_t checkpoints_rejected;
};

/// The 3-session mixed fleet with faulty_plan() active on every session.
FaultyRun run_faulty_fleet(std::size_t threads) {
  WardConfig ward_config;
  ward_config.record_codes = true;
  WardAggregator ward{ward_config};
  FleetConfig fleet_config;
  fleet_config.threads = threads;
  FleetScheduler scheduler{fleet_config, ward};
  for (std::size_t i = 0; i < 3; ++i) {
    SessionConfig config = mixed_config(i);
    config.fault_plan = faulty_plan();
    (void)scheduler.admit(std::move(config));
  }
  scheduler.run(1.0);
  FaultyRun result;
  for (std::uint32_t id = 0; id < 3; ++id) {
    result.codes.push_back(ward.recorded_codes(id));
  }
  std::ostringstream os;
  ward.export_jsonl(os);
  result.snapshot = os.str();
  result.recoveries = ward.recoveries();
  result.checkpoints_written = scheduler.checkpoints_written();
  result.checkpoints_restored = scheduler.checkpoints_restored();
  result.checkpoints_rejected = scheduler.checkpoints_rejected();
  return result;
}

TEST(Fleet, FaultPlanParallelIsBitIdenticalToSerial) {
  const auto serial = run_faulty_fleet(1);
  const auto parallel = run_faulty_fleet(4);
  // Every session hits its transient contact loss and is readmitted.
  EXPECT_EQ(serial.recoveries, 3u);
  EXPECT_EQ(parallel.recoveries, 3u);
  ASSERT_EQ(serial.codes.size(), parallel.codes.size());
  for (std::size_t i = 0; i < serial.codes.size(); ++i) {
    ASSERT_FALSE(serial.codes[i].empty()) << "session " << i << " produced no codes";
    EXPECT_EQ(serial.codes[i], parallel.codes[i]) << "session " << i << " diverged";
  }
  // The whole ward snapshot — fault logs, recovery counts, vitals — is
  // byte-identical across thread counts.
  EXPECT_EQ(serial.snapshot, parallel.snapshot);
}

TEST(Fleet, FaultySessionSoloCatchRetryMatchesFleet) {
  const auto fleet = run_faulty_fleet(1);
  // Every readmission went through the checkpoint path: the quarantined
  // object was dumped to a blob and a fresh session restored from it — and
  // the streams below still match the solo retry-in-place reference, which
  // is the resume-not-replay equivalence the checkpoint layer promises.
  EXPECT_EQ(fleet.checkpoints_written, 3u);
  EXPECT_EQ(fleet.checkpoints_restored, 3u);
  EXPECT_EQ(fleet.checkpoints_rejected, 0u);

  // Solo reproduction: same derived seed, same plan config; a bare try/step
  // loop is the solo analogue of quarantine + readmission. A throwing
  // attempt consumes no RNG draws and no stream time, so the retried stream
  // is bit-identical to the fleet's.
  WardAggregator ward;
  FleetScheduler seeder{FleetConfig{}, ward};
  for (std::uint32_t id = 0; id < 3; ++id) {
    SessionConfig config = mixed_config(id);
    config.seed = seeder.session_seed(id);
    config.fault_plan = faulty_plan();
    PatientSession solo{id, std::move(config)};
    std::vector<std::int16_t> codes;
    while (solo.stream_time_s() < 1.0) {
      try {
        solo.step(FleetConfig{}.frames_per_step);
      } catch (const std::exception&) {
        continue;
      }
      solo.codes().pop_all(codes);
    }
    solo.codes().pop_all(codes);
    EXPECT_EQ(codes, fleet.codes[id]) << "session " << id << " diverged solo";
    EXPECT_FALSE(solo.fault_log().empty());
  }
}

TEST(Fleet, EmptyFaultPlanLeavesStreamsUntouched) {
  // The fault machinery must be invisible until a plan asks for it: a
  // default (empty) plan produces the exact same codes as run_fleet, which
  // never mentions fault plans at all.
  const auto baseline = run_fleet(1, 0.5);
  WardConfig ward_config;
  ward_config.record_codes = true;
  WardAggregator ward{ward_config};
  FleetConfig fleet_config;
  fleet_config.threads = 1;
  FleetScheduler scheduler{fleet_config, ward};
  for (std::size_t i = 0; i < 3; ++i) {
    SessionConfig config = mixed_config(i);
    config.fault_plan = FaultPlanConfig{};  // explicit empty plan
    (void)scheduler.admit(std::move(config));
  }
  scheduler.run(0.5);
  for (std::uint32_t id = 0; id < 3; ++id) {
    EXPECT_EQ(ward.recorded_codes(id), baseline[id]);
    EXPECT_TRUE(ward.session(id)->fault_log.empty());
  }
  EXPECT_EQ(ward.recoveries(), 0u);
  EXPECT_EQ(ward.retired(), 0u);
}

TEST(Fleet, LifecyclePauseResumeDischarge) {
  WardAggregator ward;
  FleetConfig config;
  config.threads = 1;
  FleetScheduler scheduler{config, ward};
  const auto id = scheduler.admit(SessionConfig{});
  EXPECT_EQ(scheduler.state(id), SessionState::kAdmitted);
  EXPECT_EQ(scheduler.active_sessions(), 1u);

  scheduler.pause(id);
  EXPECT_EQ(scheduler.state(id), SessionState::kPaused);
  EXPECT_EQ(scheduler.active_sessions(), 0u);
  EXPECT_EQ(scheduler.step_all(), 0u) << "paused sessions are skipped";

  scheduler.resume(id);
  EXPECT_EQ(scheduler.step_all(), 1u);
  EXPECT_EQ(scheduler.state(id), SessionState::kRunning);

  scheduler.discharge(id);
  EXPECT_EQ(scheduler.state(id), SessionState::kDischarged);
  EXPECT_EQ(scheduler.step_all(), 0u) << "discharged sessions never step";
  // Everything produced before discharge reached the ward.
  EXPECT_EQ(ward.session(id)->codes, scheduler.config().frames_per_step);
}

// --- Ward aggregator unit tests: fabricated events through real rings -----

/// A session used purely as a ring carrier (never admitted or stepped);
/// the test plays producer.
class WardHarness : public ::testing::Test {
 protected:
  WardHarness() : session_{0, SessionConfig{}} {}

  void attach(WardConfig config) {
    ward_ = std::make_unique<WardAggregator>(config);
    ward_->attach(session_, "harness");
  }

  /// Advances the ward's inferred stream clock: time = codes / output rate.
  void push_codes(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      (void)session_.codes().push(0, BackpressurePolicy::kBlock);
    }
  }

  void push_alarm(core::AlarmKind kind, bool active, double t_s) {
    (void)session_.events().push(
        FleetEvent{.kind = FleetEventKind::kAlarm,
                   .session_id = 0,
                   .alarm_kind = kind,
                   .flag = active,
                   .time_s = t_s},
        BackpressurePolicy::kBlock);
  }

  PatientSession session_;
  std::unique_ptr<WardAggregator> ward_;
};

TEST_F(WardHarness, AlarmRaiseClearTracksActiveCount) {
  attach(WardConfig{});
  push_alarm(core::AlarmKind::kSystolicHigh, true, 0.0);
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->alarms_active(), 1u);
  EXPECT_EQ(ward_->alarm_queue().front().level, WardAlarmLevel::kNotice);
  EXPECT_EQ(ward_->session(0)->alarms_active, 1u);

  push_alarm(core::AlarmKind::kSystolicHigh, false, 1.0);
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->alarms_active(), 0u);
  EXPECT_EQ(ward_->session(0)->alarms_active, 0u);
  EXPECT_EQ(ward_->escalations(), 0u);
}

TEST_F(WardHarness, UnresolvedAlarmEscalatesToUrgent) {
  WardConfig config;
  config.escalate_after_s = 0.05;
  attach(config);
  push_alarm(core::AlarmKind::kRateHigh, true, 0.0);
  (void)ward_->drain_once();
  ward_->settle();
  EXPECT_EQ(ward_->alarm_queue().front().level, WardAlarmLevel::kNotice);

  // Nobody resolves it while the session streams on: notice → urgent once
  // the inferred stream time passes escalate_after_s. Time-based escalation
  // runs at settle() (the batch barrier), never inside drain_once().
  push_codes(static_cast<std::size_t>(0.1 * session_.output_rate_hz()));
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->escalations(), 0u) << "mid-batch drains must not escalate";
  ward_->settle();
  EXPECT_EQ(ward_->alarm_queue().front().level, WardAlarmLevel::kUrgent);
  EXPECT_EQ(ward_->escalations(), 1u);

  // Urgent is terminal for time-based escalation: no double counting.
  push_codes(static_cast<std::size_t>(0.1 * session_.output_rate_hz()));
  (void)ward_->drain_once();
  ward_->settle();
  EXPECT_EQ(ward_->escalations(), 1u);
}

TEST_F(WardHarness, MultiVitalDeteriorationGoesStraightToCritical) {
  attach(WardConfig{});  // critical_active_kinds == 2
  push_alarm(core::AlarmKind::kSystolicLow, true, 0.0);
  push_alarm(core::AlarmKind::kRateHigh, true, 0.1);
  (void)ward_->drain_once();
  ASSERT_EQ(ward_->alarm_queue().size(), 2u);
  EXPECT_EQ(ward_->alarm_queue()[0].level, WardAlarmLevel::kNotice);
  EXPECT_EQ(ward_->alarm_queue()[1].level, WardAlarmLevel::kCritical)
      << "second distinct active kind on one patient is critical";
  EXPECT_EQ(ward_->escalations(), 1u);
}

/// Minimal JSON string unescape for the round-trip check below.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        out += static_cast<char>(std::stoi(s.substr(i + 1, 4), nullptr, 16));
        i += 4;
        break;
      default: out += s[i]; break;
    }
  }
  return out;
}

TEST_F(WardHarness, SnapshotRoundTripsControlCharactersInNotes) {
  attach(WardConfig{});
  // A quarantine reason carries arbitrary exception text; \r, \t and a raw
  // 0x01 must all survive the snapshot (escaped, never dropped).
  const std::string reason =
      std::string("bad\rnews:\tcode ") + '\x01' + " end";
  ward_->set_lifecycle(0, SessionState::kQuarantined, reason);
  ward_->note_fault(0, reason);
  std::ostringstream os;
  ward_->export_jsonl(os);
  const std::string snapshot = os.str();

  // No raw control byte may leak into the JSONL (newline separates lines).
  for (char c : snapshot) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control byte leaked";
  }
  EXPECT_NE(snapshot.find("\\r"), std::string::npos);
  EXPECT_NE(snapshot.find("\\t"), std::string::npos);
  EXPECT_NE(snapshot.find("\\u0001"), std::string::npos);

  // Round-trip: un-escaping the note field yields the original reason.
  const std::string key = "\"note\":\"";
  const auto start = snapshot.find(key);
  ASSERT_NE(start, std::string::npos);
  const auto value_start = start + key.size();
  const auto value_end = snapshot.find('"', value_start);
  ASSERT_NE(value_end, std::string::npos);
  EXPECT_EQ(json_unescape(snapshot.substr(value_start, value_end - value_start)),
            reason);
}

TEST_F(WardHarness, DropAccountingMirrorsTheRings) {
  attach(WardConfig{});
  // Overflow the codes ring (drop-oldest): capacity survives, the rest drop.
  const std::size_t capacity = session_.codes().capacity();
  push_codes(capacity);
  for (std::size_t i = 0; i < 100; ++i) {
    (void)session_.codes().push(1, BackpressurePolicy::kDropOldest);
  }
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->session(0)->code_drops, 100u);
  EXPECT_EQ(ward_->session(0)->codes, capacity);
  EXPECT_EQ(ward_->total_drops(), 100u);
  EXPECT_EQ(ward_->event_drops(), 0u) << "event ring never dropped";
}

}  // namespace
