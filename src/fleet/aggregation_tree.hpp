// aggregation_tree.hpp — lock-free cross-shard telemetry aggregation.
//
// The hospital scheduler (hospital_scheduler.hpp) runs N ward shards on N
// driver threads. Each shard owns all of its mutable state; the only thing
// the hospital needs continuously is a telemetry roll-up (codes consumed,
// drops, alarms active, …) across every shard. Sharing mutable counters for
// that would put cross-thread cache-line traffic on the batch hot path — so
// instead each shard *publishes* its totals into its own cache-line-aligned
// mirror leaf (plain relaxed atomic stores, single writer, no RMW, no
// contention), and readers combine the leaves through a cached binary
// reduction tree.
//
// Consistency model, deliberately two-tier:
//   * live reads (sum(), reduce() between epochs) are lock-free and may see
//     a mirror mid-publish — each *field* is exact, the cross-field cut may
//     be torn by one batch. Fine for gauges and progress lines.
//   * exact reads happen at quiescence points: the hospital's epoch barrier
//     (every shard parked) and after run() joins the drivers. There the
//     publish(release) / version(acquire) pair makes the whole mirror a
//     consistent snapshot.
//
// reduce() caches per-node partial sums keyed by leaf versions, so an epoch
// roll-up after k shards published is O(k log N) field additions instead of
// O(N); it must be called from one thread at a time (the epoch completion
// step — phases are sequential, so this holds by construction). sum() is
// stateless and callable from any thread concurrently with publishers.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tono::fleet {

/// Field indices of one shard's telemetry mirror. Counters unless noted;
/// kShardAlarmsActive / kShardActiveSessions are gauge-like (non-monotone).
enum ShardField : std::size_t {
  kShardCodes = 0,       ///< codes consumed by the shard's ward
  kShardEvents,          ///< events consumed
  kShardCodeDrops,       ///< codes lost to drop-oldest backpressure
  kShardEventDrops,      ///< events lost (must stay 0: blocking policy)
  kShardBlocks,          ///< producer stalls on blocking rings
  kShardAlarmsActive,    ///< alarms currently active (gauge)
  kShardEscalations,     ///< notice→urgent / →critical transitions
  kShardRecoveries,      ///< completed readmissions
  kShardRetired,         ///< sessions retired for good
  kShardActiveSessions,  ///< admitted/running/recovering sessions (gauge)
  kShardBatches,         ///< scheduler batches ticked
  kShardFieldCount
};

/// One shard's published totals (or any reduction of several shards').
struct ShardStats {
  std::array<std::uint64_t, kShardFieldCount> v{};

  [[nodiscard]] std::uint64_t operator[](std::size_t i) const noexcept { return v[i]; }
  std::uint64_t& operator[](std::size_t i) noexcept { return v[i]; }

  ShardStats& operator+=(const ShardStats& o) noexcept {
    for (std::size_t i = 0; i < kShardFieldCount; ++i) v[i] += o.v[i];
    return *this;
  }
};

class AggregationTree {
 public:
  explicit AggregationTree(std::size_t leaf_count)
      : leaf_count_(leaf_count == 0 ? 1 : leaf_count) {
    std::size_t width = 1;
    while (width < leaf_count_) width <<= 1;
    width_ = width;
    leaves_ = std::vector<Leaf>(leaf_count_);
    nodes_ = std::vector<Node>(2 * width_ - 1);
  }

  AggregationTree(const AggregationTree&) = delete;
  AggregationTree& operator=(const AggregationTree&) = delete;

  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

  /// Publishes a shard's totals into its mirror. Single writer per leaf (the
  /// shard's driver thread); relaxed stores + one release version bump, so a
  /// publish never contends with another shard or with readers.
  void publish(std::size_t leaf, const ShardStats& stats) noexcept {
    Leaf& l = leaves_[leaf];
    for (std::size_t i = 0; i < kShardFieldCount; ++i) {
      l.v[i].store(stats.v[i], std::memory_order_relaxed);
    }
    l.version.fetch_add(1, std::memory_order_release);
  }

  /// One leaf's mirror (relaxed loads — see the consistency model above).
  [[nodiscard]] ShardStats read_leaf(std::size_t leaf) const noexcept {
    ShardStats out;
    const Leaf& l = leaves_[leaf];
    for (std::size_t i = 0; i < kShardFieldCount; ++i) {
      out.v[i] = l.v[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Stateless lock-free roll-up of every leaf; safe from any thread, any
  /// time, concurrently with publishers and with reduce().
  [[nodiscard]] ShardStats sum() const noexcept {
    ShardStats out;
    for (std::size_t i = 0; i < leaf_count_; ++i) out += read_leaf(i);
    return out;
  }

  /// Cached tree reduction: recomputes only subtrees whose leaves published
  /// since the last call. Single reader at a time (the node cache is plain
  /// state); the hospital calls this from the epoch completion step, where
  /// phases are sequential by construction.
  [[nodiscard]] const ShardStats& reduce() noexcept {
    (void)update_(0);
    return nodes_[0].sum;
  }

 private:
  struct alignas(64) Leaf {
    std::array<std::atomic<std::uint64_t>, kShardFieldCount> v{};
    std::atomic<std::uint64_t> version{0};
  };
  struct Node {
    ShardStats sum{};
    std::uint64_t version{0};  ///< sum of covered leaf versions at last compute
  };

  /// Recomputes the subtree under heap index `node` if any covered leaf
  /// published; returns the subtree's combined leaf-version stamp. Version
  /// sums only ever grow, so a stale cache can never alias a fresh one.
  std::uint64_t update_(std::size_t node) noexcept {
    Node& n = nodes_[node];
    if (node >= width_ - 1) {  // leaf slot
      const std::size_t leaf = node - (width_ - 1);
      if (leaf >= leaf_count_) return 0;  // padding: stays zero
      const std::uint64_t version =
          leaves_[leaf].version.load(std::memory_order_acquire);
      if (version != n.version) {
        n.sum = read_leaf(leaf);
        n.version = version;
      }
      return n.version;
    }
    const std::uint64_t combined = update_(2 * node + 1) + update_(2 * node + 2);
    if (combined != n.version) {
      n.sum = nodes_[2 * node + 1].sum;
      n.sum += nodes_[2 * node + 2].sum;
      n.version = combined;
    }
    return n.version;
  }

  std::size_t leaf_count_;
  std::size_t width_{1};  ///< leaves rounded up to a power of two
  std::vector<Leaf> leaves_;
  std::vector<Node> nodes_;  ///< heap array: internal nodes then leaf slots
};

}  // namespace tono::fleet
