file(REMOVE_RECURSE
  "libtono_mems.a"
)
