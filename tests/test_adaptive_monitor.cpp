// Tests for adaptive (closed-loop) monitoring and the telemetry link driven
// by real session data.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/monitor.hpp"
#include "src/core/telemetry.hpp"

namespace tono::core {
namespace {

TEST(AdaptiveMonitor, CleanSessionNeverRescans) {
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  (void)mon.localize();
  (void)mon.calibrate(10.0);
  const auto rep = mon.monitor_adaptive(30.0);
  EXPECT_EQ(rep.rescans, 0u);
  EXPECT_EQ(rep.chunks.size(), 3u);
  for (double sqi : rep.chunk_sqi) EXPECT_GT(sqi, 0.5);
}

TEST(AdaptiveMonitor, ChunkCountCoversDuration) {
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  (void)mon.calibrate(8.0);
  BloodPressureMonitor::AdaptiveConfig cfg;
  cfg.chunk_s = 7.0;
  const auto rep = mon.monitor_adaptive(21.0, cfg);
  EXPECT_EQ(rep.chunks.size(), 3u);
  EXPECT_EQ(rep.chunk_sqi.size(), rep.chunks.size());
}

TEST(AdaptiveMonitor, PlacementShiftTriggersRescanAndRecovers) {
  // Use a sharp lateral profile so sliding 2 mm off the artery kills the
  // pulsation on every element until the monitor re-scans.
  WristModel wrist;
  wrist.tissue.lateral_sigma_m = 0.6e-3;
  BloodPressureMonitor mon{ChipConfig::paper_chip(), wrist};
  (void)mon.localize();
  (void)mon.calibrate(10.0);

  // Healthy first chunk.
  auto first = mon.monitor_adaptive(10.0);
  ASSERT_EQ(first.chunks.size(), 1u);
  EXPECT_GT(first.chunk_sqi[0], 0.5);

  // The strap slips: the device is now 2 mm off the artery.
  mon.shift_placement(2.0e-3);
  BloodPressureMonitor::AdaptiveConfig cfg;
  cfg.chunk_s = 10.0;
  const auto rep = mon.monitor_adaptive(30.0, cfg);
  // At least one chunk must be flagged low-quality and trigger a rescan.
  EXPECT_GE(rep.rescans, 1u);
  bool saw_bad = false;
  for (double sqi : rep.chunk_sqi) {
    if (sqi < 0.5) saw_bad = true;
  }
  EXPECT_TRUE(saw_bad);
}

TEST(TelemetrySession, WaveformSurvivesTheLink) {
  // Stream a short acquisition through the FPGA→host frame protocol and
  // verify the decoded waveform is bit-identical.
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  const auto samples = pipe.acquire_uniform(
      [](double t) { return 2000.0 + 500.0 * std::sin(6.28 * 1.2 * t); }, 1000);

  FrameEncoder enc;
  FrameDecoder dec;
  std::vector<std::int16_t> sent;
  std::vector<std::int16_t> chunk;
  std::vector<std::int16_t> received;
  for (const auto& s : samples) {
    chunk.push_back(static_cast<std::int16_t>(s.code));
    sent.push_back(static_cast<std::int16_t>(s.code));
    if (chunk.size() == 64) {
      for (const auto& f : dec.push(enc.encode(chunk))) {
        received.insert(received.end(), f.samples.begin(), f.samples.end());
      }
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    for (const auto& f : dec.push(enc.encode(chunk))) {
      received.insert(received.end(), f.samples.begin(), f.samples.end());
    }
  }
  EXPECT_EQ(received, sent);
  EXPECT_EQ(dec.stats().crc_errors, 0u);
  EXPECT_EQ(dec.stats().lost_frames, 0u);
}

}  // namespace
}  // namespace tono::core
