#include "src/dsp/noise_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/math_utils.hpp"
#include "src/dsp/fft.hpp"

namespace tono::dsp {

PsdEstimate welch_psd(std::span<const double> x, double sample_rate_hz,
                      const WelchConfig& config) {
  if (!is_pow2(config.segment_length) || config.segment_length < 16) {
    throw std::invalid_argument{"welch_psd: segment length must be a power of two >= 16"};
  }
  if (config.overlap < 0.0 || config.overlap > 0.9) {
    throw std::invalid_argument{"welch_psd: overlap must be in [0, 0.9]"};
  }
  if (sample_rate_hz <= 0.0) throw std::invalid_argument{"welch_psd: bad sample rate"};
  const std::size_t seg = config.segment_length;
  if (x.size() < seg) throw std::invalid_argument{"welch_psd: record shorter than segment"};

  const auto window = make_window(config.window, seg);
  double window_power = 0.0;  // sum of w² for density normalization
  for (double w : window) window_power += w * w;

  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seg) * (1.0 - config.overlap)));

  PsdEstimate out;
  out.psd.assign(seg / 2 + 1, 0.0);
  std::vector<double> buf(seg);
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    // Remove the segment mean so DC leakage does not pollute low bins.
    double m = 0.0;
    for (std::size_t i = 0; i < seg; ++i) m += x[start + i];
    m /= static_cast<double>(seg);
    for (std::size_t i = 0; i < seg; ++i) buf[i] = (x[start + i] - m) * window[i];

    auto spec = fft_real(buf);
    for (std::size_t k = 0; k <= seg / 2; ++k) {
      const double mag2 = std::norm(spec[k]);
      const double one_sided = (k == 0 || k == seg / 2) ? 1.0 : 2.0;
      // Density normalization: / (fs · Σw²).
      out.psd[k] += one_sided * mag2 / (sample_rate_hz * window_power);
    }
    ++out.segments;
  }
  if (out.segments == 0) throw std::invalid_argument{"welch_psd: no full segments"};
  for (auto& p : out.psd) p /= static_cast<double>(out.segments);

  out.freq_hz.resize(out.psd.size());
  const double bin_hz = sample_rate_hz / static_cast<double>(seg);
  for (std::size_t k = 0; k < out.freq_hz.size(); ++k) {
    out.freq_hz[k] = bin_hz * static_cast<double>(k);
  }
  return out;
}

double integrate_psd(const PsdEstimate& psd, double f_lo_hz, double f_hi_hz) {
  if (psd.freq_hz.size() < 2) return 0.0;
  const double bin_hz = psd.freq_hz[1] - psd.freq_hz[0];
  double acc = 0.0;
  for (std::size_t k = 0; k < psd.freq_hz.size(); ++k) {
    if (psd.freq_hz[k] >= f_lo_hz && psd.freq_hz[k] <= f_hi_hz) acc += psd.psd[k] * bin_hz;
  }
  return acc;
}

std::vector<AllanPoint> allan_deviation(std::span<const double> x, double sample_rate_hz,
                                        double tau_min_s, std::size_t points_per_decade) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument{"allan_deviation: bad sample rate"};
  if (x.size() < 16) throw std::invalid_argument{"allan_deviation: record too short"};
  if (points_per_decade == 0) points_per_decade = 1;
  const double dt = 1.0 / sample_rate_hz;
  if (tau_min_s < dt) tau_min_s = dt;
  const double tau_max_s = static_cast<double>(x.size()) * dt / 4.0;

  std::vector<AllanPoint> out;
  const double log_step = 1.0 / static_cast<double>(points_per_decade);
  for (double log_tau = std::log10(tau_min_s); log_tau <= std::log10(tau_max_s);
       log_tau += log_step) {
    const auto m = static_cast<std::size_t>(std::pow(10.0, log_tau) / dt + 0.5);
    if (m == 0 || 2 * m >= x.size()) continue;
    // Overlapping Allan variance on averaged bins of length m.
    double acc = 0.0;
    std::size_t terms = 0;
    // Prefix sums for O(1) bin means.
    std::vector<double> prefix(x.size() + 1, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) prefix[i + 1] = prefix[i] + x[i];
    auto bin_mean = [&](std::size_t start) {
      return (prefix[start + m] - prefix[start]) / static_cast<double>(m);
    };
    for (std::size_t i = 0; i + 2 * m <= x.size(); ++i) {
      const double d = bin_mean(i + m) - bin_mean(i);
      acc += d * d;
      ++terms;
    }
    if (terms == 0) continue;
    const double avar = acc / (2.0 * static_cast<double>(terms));
    out.push_back(AllanPoint{static_cast<double>(m) * dt, std::sqrt(avar)});
  }
  return out;
}

}  // namespace tono::dsp
