// Tests for the SIMD runtime dispatch shim and the multi-stream Gaussian
// fill that backs the vectorized ModulatorBank.
#include "src/common/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/gauss_log.hpp"
#include "src/common/rng.hpp"

namespace tono {
namespace {

/// Restores the ambient dispatch level on scope exit, so tests that force a
/// level cannot leak it into later tests in the same process.
struct LevelGuard {
  LevelGuard() : saved(simd::active_level()) {}
  ~LevelGuard() { simd::force_active_level(saved); }
  simd::Level saved;
};

TEST(Simd, LevelWidths) {
  EXPECT_EQ(simd::level_width(simd::Level::kScalar), 1u);
  EXPECT_EQ(simd::level_width(simd::Level::kNeon), 2u);
  EXPECT_EQ(simd::level_width(simd::Level::kAvx2), 4u);
}

TEST(Simd, LevelNames) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kNeon), "neon");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
}

TEST(Simd, RuntimeNeverExceedsCompiled) {
  EXPECT_LE(simd::level_width(simd::runtime_level()),
            simd::level_width(simd::compiled_level()));
}

TEST(Simd, ResolveUnsetOrAutoUsesRuntime) {
  for (const auto runtime :
       {simd::Level::kScalar, simd::Level::kNeon, simd::Level::kAvx2}) {
    EXPECT_EQ(simd::resolve_level(nullptr, runtime), runtime);
    EXPECT_EQ(simd::resolve_level("", runtime), runtime);
    EXPECT_EQ(simd::resolve_level("auto", runtime), runtime);
    EXPECT_EQ(simd::resolve_level("AUTO", runtime), runtime);
  }
}

TEST(Simd, ResolveScalarEscapeHatchAlwaysWins) {
  for (const char* hatch : {"scalar", "off", "0", "SCALAR", "Off"}) {
    EXPECT_EQ(simd::resolve_level(hatch, simd::Level::kAvx2),
              simd::Level::kScalar)
        << hatch;
  }
}

TEST(Simd, ResolveMatchingRequestHonored) {
  EXPECT_EQ(simd::resolve_level("avx2", simd::Level::kAvx2), simd::Level::kAvx2);
  EXPECT_EQ(simd::resolve_level("neon", simd::Level::kNeon), simd::Level::kNeon);
}

TEST(Simd, ResolveUnavailableRequestFallsBackToRuntime) {
  // Requesting a kernel the build/CPU can't run is a warning, not an error.
  EXPECT_EQ(simd::resolve_level("avx2", simd::Level::kScalar),
            simd::Level::kScalar);
  EXPECT_EQ(simd::resolve_level("neon", simd::Level::kAvx2), simd::Level::kAvx2);
  EXPECT_EQ(simd::resolve_level("definitely-not-a-level", simd::Level::kAvx2),
            simd::Level::kAvx2);
}

TEST(Simd, ForceActiveLevelScalarAndBack) {
  LevelGuard guard;
  EXPECT_EQ(simd::force_active_level(simd::Level::kScalar),
            simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  // Forcing above the runtime ceiling clamps to it.
  const simd::Level runtime = simd::runtime_level();
  EXPECT_EQ(simd::force_active_level(simd::Level::kAvx2),
            runtime == simd::Level::kAvx2 ? simd::Level::kAvx2 : runtime);
}

TEST(Simd, CpuFeaturesMatchesRuntimeLevel) {
  const std::string features = simd::cpu_features();
  if (simd::runtime_level() == simd::Level::kAvx2) {
    EXPECT_NE(features.find("avx2"), std::string::npos) << features;
  }
#if defined(__x86_64__)
  EXPECT_NE(features.find("sse2"), std::string::npos) << features;
#endif
}

// ---------------------------------------------------------------------------
// gausslog::polar_log — the pinned log behind every polar-method factor.
// These pin its scalar semantics; the vector mirror is covered transitively
// by the FillGaussianMulti bit-identity suite below.

TEST(PolarLog, SpecialValuesMatchUpstreamSemantics) {
  EXPECT_EQ(gausslog::polar_log(1.0), 0.0);
  EXPECT_EQ(gausslog::polar_log(0.0),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(gausslog::polar_log(-0.0),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(gausslog::polar_log(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(gausslog::polar_log(-1.0)));
  EXPECT_TRUE(std::isnan(
      gausslog::polar_log(std::numeric_limits<double>::quiet_NaN())));
}

TEST(PolarLog, WithinOneUlpOfLibmOnPolarRadii) {
  // The port's worst-case error is ~0.52 ulp (upstream analysis), so it can
  // sit at most 1 ulp from any faithful libm. Sweep uniform draws in (0, 1)
  // — the polar radii domain — plus the near-1 strip and subnormals.
  const auto ulp_apart = [](double a, double b) {
    const auto ia = std::bit_cast<std::int64_t>(a);
    const auto ib = std::bit_cast<std::int64_t>(b);
    return std::abs(ia - ib);
  };
  Rng rng{2026};
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.uniform();
    if (x == 0.0) continue;
    ASSERT_LE(ulp_apart(gausslog::polar_log(x), std::log(x)), 1) << x;
  }
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(1.0 - 0x1p-4, 1.0 + 0x1.09p-4);
    ASSERT_LE(ulp_apart(gausslog::polar_log(x), std::log(x)), 1) << x;
  }
  const double subnormal = 0x1p-1060;
  ASSERT_LE(ulp_apart(gausslog::polar_log(subnormal), std::log(subnormal)), 1);
}

TEST(PolarLog, FactorIsFiniteAndPositiveAcrossTheAcceptDomain) {
  // sqrt(-2·log(s)/s) over the accepted radius range: log(s) < 0 on (0, 1),
  // so the factor is a positive normal number — no NaN/inf can leak into a
  // Gaussian stream.
  Rng rng{7};
  for (int i = 0; i < 100000; ++i) {
    const double s = rng.uniform();
    if (s == 0.0 || s >= 1.0) continue;
    const double f = gausslog::polar_factor(s);
    ASSERT_TRUE(std::isfinite(f) && f > 0.0) << s;
  }
}

// ---------------------------------------------------------------------------
// Rng::fill_gaussian_multi — per-stream bit-identity to solo fill_gaussian,
// including end state (subsequent draws) and the polar spare cache.

void expect_multi_matches_solo(std::vector<Rng> streams,
                               const std::vector<std::size_t>& ns) {
  const std::size_t k = streams.size();
  std::vector<Rng> solo = streams;  // value copies, advanced independently
  std::vector<std::vector<double>> want(k);
  for (std::size_t w = 0; w < k; ++w) {
    want[w].resize(ns[w] + 1);
    solo[w].fill_gaussian(want[w].data(), ns[w]);
  }
  std::vector<std::vector<double>> got(k);
  std::vector<Rng*> rngs(k);
  std::vector<double*> dests(k);
  for (std::size_t w = 0; w < k; ++w) {
    got[w].resize(ns[w] + 1);
    rngs[w] = &streams[w];
    dests[w] = got[w].data();
  }
  Rng::fill_gaussian_multi(rngs.data(), dests.data(), ns.data(), k);
  for (std::size_t w = 0; w < k; ++w) {
    for (std::size_t i = 0; i < ns[w]; ++i) {
      ASSERT_EQ(want[w][i], got[w][i]) << "stream=" << w << " i=" << i;
    }
    // End state (xoshiro position AND spare cache): the next draws agree.
    for (int extra = 0; extra < 5; ++extra) {
      ASSERT_EQ(solo[w].gaussian(), streams[w].gaussian())
          << "stream=" << w << " extra=" << extra;
    }
  }
}

TEST(FillGaussianMulti, FourStreamsUnequalLengths) {
  std::vector<Rng> streams{Rng{1}, Rng{2}, Rng{3}, Rng{4}};
  expect_multi_matches_solo(streams, {257, 301, 128, 64});
}

TEST(FillGaussianMulti, SpareCachePendingOnEntry) {
  std::vector<Rng> streams{Rng{11}, Rng{22}, Rng{33}, Rng{44}};
  // An odd draw count leaves the polar pair's second value cached; the multi
  // fill must emit it as dest[0] exactly like the scalar fill.
  (void)streams[0].gaussian();
  (void)streams[2].gaussian();
  expect_multi_matches_solo(streams, {129, 128, 127, 130});
}

TEST(FillGaussianMulti, StreamCountsAroundTheGroupWidth) {
  for (std::size_t k : {1u, 2u, 3u, 5u, 7u, 9u}) {
    std::vector<Rng> streams;
    std::vector<std::size_t> ns;
    for (std::size_t w = 0; w < k; ++w) {
      streams.emplace_back(1000 + w);
      ns.push_back(96 + 17 * w);
    }
    expect_multi_matches_solo(streams, ns);
  }
}

TEST(FillGaussianMulti, TinyFillsUseScalarPath) {
  // Below the vectorization-viability threshold everything degrades to the
  // scalar fill — same bits by construction, pinned here anyway.
  std::vector<Rng> streams{Rng{5}, Rng{6}, Rng{7}, Rng{8}};
  expect_multi_matches_solo(streams, {1, 2, 3, 0});
}

TEST(FillGaussianMulti, MatchesSoloUnderForcedScalar) {
  LevelGuard guard;
  simd::force_active_level(simd::Level::kScalar);
  std::vector<Rng> streams{Rng{91}, Rng{92}, Rng{93}, Rng{94}};
  expect_multi_matches_solo(streams, {200, 200, 200, 200});
}

TEST(FillGaussianMulti, VectorAndScalarProduceIdenticalStreams) {
  // The same four streams filled under the active kernel and under the
  // forced-scalar hatch: the outputs must be bitwise equal — this is the
  // determinism contract the escape hatch exists to demonstrate.
  const std::vector<std::size_t> ns{512, 511, 384, 400};
  std::vector<std::vector<double>> vec_out;
  {
    std::vector<Rng> streams{Rng{71}, Rng{72}, Rng{73}, Rng{74}};
    std::vector<Rng*> rngs;
    std::vector<double*> dests;
    vec_out.resize(4);
    for (std::size_t w = 0; w < 4; ++w) {
      vec_out[w].resize(ns[w]);
      rngs.push_back(&streams[w]);
      dests.push_back(vec_out[w].data());
    }
    Rng::fill_gaussian_multi(rngs.data(), dests.data(), ns.data(), 4);
  }
  LevelGuard guard;
  simd::force_active_level(simd::Level::kScalar);
  std::vector<Rng> streams{Rng{71}, Rng{72}, Rng{73}, Rng{74}};
  std::vector<Rng*> rngs;
  std::vector<double*> dests;
  std::vector<std::vector<double>> sc_out(4);
  for (std::size_t w = 0; w < 4; ++w) {
    sc_out[w].resize(ns[w]);
    rngs.push_back(&streams[w]);
    dests.push_back(sc_out[w].data());
  }
  Rng::fill_gaussian_multi(rngs.data(), dests.data(), ns.data(), 4);
  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t i = 0; i < ns[w]; ++i) {
      ASSERT_EQ(vec_out[w][i], sc_out[w][i]) << "stream=" << w << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace tono
