file(REMOVE_RECURSE
  "CMakeFiles/test_sensor_array.dir/test_sensor_array.cpp.o"
  "CMakeFiles/test_sensor_array.dir/test_sensor_array.cpp.o.d"
  "test_sensor_array"
  "test_sensor_array.pdb"
  "test_sensor_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensor_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
