#include "src/core/sensor_array.hpp"

#include <stdexcept>

#include "src/common/checkpoint.hpp"
#include "src/common/rng.hpp"

namespace tono::core {
namespace {

constexpr std::size_t kLutPoints = 241;

CubicSpline build_lut(const mems::PressureTransducer& transducer, double lo_pa,
                      double hi_pa) {
  std::vector<double> ps(kLutPoints);
  std::vector<double> cs(kLutPoints);
  for (std::size_t i = 0; i < kLutPoints; ++i) {
    const double p =
        lo_pa + (hi_pa - lo_pa) * static_cast<double>(i) / (kLutPoints - 1);
    ps[i] = p;
    cs[i] = transducer.capacitance(p);
  }
  return CubicSpline{ps, cs};
}

}  // namespace

ArrayElement::ArrayElement(const mems::TransducerConfig& config, ElementPosition position,
                           double pressure_min_pa, double pressure_max_pa,
                           ElementFault fault)
    : transducer_(config),
      position_(position),
      lut_(build_lut(transducer_, pressure_min_pa, pressure_max_pa)) {
  set_fault(fault);
}

void ArrayElement::set_fault(ElementFault fault) noexcept {
  fault_ = fault;
  switch (fault_) {
    case ElementFault::kNone:
      fault_capacitance_ = 0.0;
      break;
    case ElementFault::kNotReleased:
      // The sacrificial layer is still in place: the reference-structure
      // capacitance, pressure-independent.
      fault_capacitance_ = transducer_.reference_capacitance();
      break;
    case ElementFault::kStuckDown:
      // Collapsed membrane: the touch-down (gap-limited) capacitance.
      fault_capacitance_ =
          transducer_.capacitance(5e6);  // far past touch-down, clamped
      break;
  }
}

double ArrayElement::capacitance(double contact_pressure_pa,
                                 double temperature_k) const noexcept {
  const double drift = 1.0 + transducer_.config().capacitance_tempco_per_k *
                                 (temperature_k - 300.0);
  if (fault_ != ElementFault::kNone) return fault_capacitance_ * drift;
  return lut_(contact_pressure_pa) * drift;
}

double ArrayElement::capacitance_exact(double contact_pressure_pa,
                                       double temperature_k) const noexcept {
  return transducer_.capacitance(contact_pressure_pa, temperature_k);
}

SensorArray::SensorArray(const ChipConfig& config, double lut_min_pa, double lut_max_pa)
    : rows_(config.array.rows), cols_(config.array.cols) {
  if (rows_ == 0 || cols_ == 0) throw std::invalid_argument{"SensorArray: empty array"};
  if (lut_min_pa >= lut_max_pa) throw std::invalid_argument{"SensorArray: bad LUT range"};

  Rng rng = Rng{config.seed}.fork_named("array-mismatch");
  const double pitch = config.array.pitch_m;
  const double x0 = -0.5 * pitch * static_cast<double>(cols_ - 1);
  const double y0 = -0.5 * pitch * static_cast<double>(rows_ - 1);

  elements_.reserve(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      mems::TransducerConfig tc = config.transducer;
      tc.capacitance_mismatch =
          config.transducer.capacitance_mismatch *
          (1.0 + rng.gaussian(0.0, config.element_mismatch_sigma));
      const ElementPosition pos{x0 + pitch * static_cast<double>(c),
                                y0 + pitch * static_cast<double>(r)};
      ElementFault fault = ElementFault::kNone;
      for (const auto& spec : config.faults) {
        if (spec.row == r && spec.col == c) fault = spec.fault;
      }
      elements_.emplace_back(tc, pos, lut_min_pa, lut_max_pa, fault);
    }
  }
  // Reference structure: unreleased membrane, nominal mismatch.
  c_ref_ = mems::PressureTransducer{config.transducer}.reference_capacitance();
}

const ArrayElement& SensorArray::element(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_) throw std::out_of_range{"SensorArray::element"};
  return elements_[row * cols_ + col];
}

const ArrayElement& SensorArray::element(std::size_t index) const {
  if (index >= elements_.size()) throw std::out_of_range{"SensorArray::element"};
  return elements_[index];
}

void SensorArray::inject_fault(std::size_t row, std::size_t col, ElementFault fault) {
  if (row >= rows_ || col >= cols_) throw std::out_of_range{"SensorArray::inject_fault"};
  elements_[row * cols_ + col].set_fault(fault);
}

std::size_t SensorArray::healthy_count() const noexcept {
  std::size_t n = 0;
  for (const auto& e : elements_) {
    if (e.is_healthy()) ++n;
  }
  return n;
}

void SensorArray::serialize(CheckpointWriter& out) const {
  out.section("sensor_array");
  out.size(elements_.size());
  for (const auto& e : elements_) {
    out.u8(static_cast<std::uint8_t>(e.fault()));
  }
}

void SensorArray::restore(CheckpointReader& in) {
  in.section("sensor_array");
  if (in.size() != elements_.size()) {
    throw CheckpointError{"sensor array checkpoint element count mismatch"};
  }
  for (auto& e : elements_) {
    const std::uint8_t code = in.u8();
    if (code > static_cast<std::uint8_t>(ElementFault::kStuckDown)) {
      throw CheckpointError{"sensor array checkpoint has unknown fault code"};
    }
    e.set_fault(static_cast<ElementFault>(code));
  }
}

double SensorArray::capacitance(std::size_t row, std::size_t col,
                                double contact_pressure_pa) const {
  return element(row, col).capacitance(contact_pressure_pa);
}

}  // namespace tono::core
