# Empty compiler generated dependencies file for tono_core.
# This may be replaced when dependencies are built.
