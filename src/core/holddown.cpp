#include "src/core/holddown.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/statistics.hpp"

namespace tono::core {
namespace {

constexpr double kGoldenRatio = 0.6180339887498949;

}  // namespace

HoldDownOptimizer::HoldDownOptimizer(const HoldDownConfig& config) : config_(config) {
  if (config_.min_mmhg <= 0.0 || config_.max_mmhg <= config_.min_mmhg) {
    throw std::invalid_argument{"HoldDownOptimizer: bad pressure range"};
  }
  if (config_.coarse_steps < 3) {
    throw std::invalid_argument{"HoldDownOptimizer: need >= 3 coarse steps"};
  }
  if (config_.dwell_samples < 100) {
    throw std::invalid_argument{"HoldDownOptimizer: dwell too short"};
  }
}

double HoldDownOptimizer::evaluate(const ChipConfig& chip, const WristModel& wrist,
                                   double hold_down_mmhg) const {
  WristModel candidate = wrist;
  candidate.hold_down_mmhg = hold_down_mmhg;
  BloodPressureMonitor monitor{chip, candidate};
  auto field = monitor.contact_field();
  auto& pipe = monitor.pipeline();
  // Drop the filter transient, then measure robust peak-to-peak.
  (void)pipe.acquire(field, 64);
  const auto window = pipe.acquire(field, config_.dwell_samples);
  std::vector<double> values;
  values.reserve(window.size());
  for (const auto& s : window) values.push_back(s.value);
  return percentile(values, 95.0) - percentile(values, 5.0);
}

HoldDownResult HoldDownOptimizer::optimize(const ChipConfig& chip,
                                           const WristModel& wrist) const {
  HoldDownResult result;

  // Coarse sweep.
  double best = config_.min_mmhg;
  double best_amp = -1.0;
  for (std::size_t i = 0; i < config_.coarse_steps; ++i) {
    const double hd = config_.min_mmhg +
                      (config_.max_mmhg - config_.min_mmhg) *
                          static_cast<double>(i) /
                          static_cast<double>(config_.coarse_steps - 1);
    const double amp = evaluate(chip, wrist, hd);
    result.profile.emplace_back(hd, amp);
    if (amp > best_amp) {
      best_amp = amp;
      best = hd;
    }
  }

  // Golden-section refinement around the coarse winner.
  const double step = (config_.max_mmhg - config_.min_mmhg) /
                      static_cast<double>(config_.coarse_steps - 1);
  double lo = std::max(config_.min_mmhg, best - step);
  double hi = std::min(config_.max_mmhg, best + step);
  double x1 = hi - kGoldenRatio * (hi - lo);
  double x2 = lo + kGoldenRatio * (hi - lo);
  double f1 = evaluate(chip, wrist, x1);
  double f2 = evaluate(chip, wrist, x2);
  result.profile.emplace_back(x1, f1);
  result.profile.emplace_back(x2, f2);
  for (std::size_t i = 0; i < config_.refine_iterations; ++i) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kGoldenRatio * (hi - lo);
      f2 = evaluate(chip, wrist, x2);
      result.profile.emplace_back(x2, f2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kGoldenRatio * (hi - lo);
      f1 = evaluate(chip, wrist, x1);
      result.profile.emplace_back(x1, f1);
    }
  }
  const double refined = 0.5 * (lo + hi);
  const double refined_amp = std::max(f1, f2);
  if (refined_amp > best_amp) {
    result.best_mmhg = refined;
    result.best_amplitude = refined_amp;
  } else {
    result.best_mmhg = best;
    result.best_amplitude = best_amp;
  }
  return result;
}

}  // namespace tono::core
