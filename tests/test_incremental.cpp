// Tests for the incremental (one-shot) ΔΣ conversion mode.
#include "src/analog/incremental.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::analog {
namespace {

IncrementalConfig quiet_config(std::size_t cycles = 256) {
  IncrementalConfig c;
  c.cycles = cycles;
  c.modulator.enable_ktc_noise = false;
  c.modulator.enable_settling = false;
  c.modulator.clock_jitter_rms_s = 0.0;
  c.modulator.ref_noise_vrms = 0.0;
  c.modulator.cap_mismatch_sigma = 0.0;
  c.modulator.opamp1.noise_vrms = 0.0;
  c.modulator.opamp2.noise_vrms = 0.0;
  c.modulator.comparator.noise_vrms = 0.0;
  c.modulator.comparator.metastable_band_v = 0.0;
  return c;
}

TEST(Incremental, ConvertsKnownVoltages) {
  IncrementalConverter conv{quiet_config()};
  const double vref = 2.5;
  for (double u : {-0.7, -0.3, 0.0, 0.2, 0.6}) {
    EXPECT_NEAR(conv.convert_voltage(u * vref), u, 0.01) << "u = " << u;
  }
}

TEST(Incremental, LinearityAcrossRange) {
  IncrementalConverter conv{quiet_config(512)};
  const double vref = 2.5;
  double worst = 0.0;
  for (double u = -0.75; u <= 0.75; u += 0.05) {
    worst = std::max(worst, std::abs(conv.convert_voltage(u * vref) - u));
  }
  EXPECT_LT(worst, 0.005);
}

TEST(Incremental, AccuracyImprovesWithCycles) {
  auto worst_err = [](std::size_t cycles) {
    IncrementalConverter conv{quiet_config(cycles)};
    double worst = 0.0;
    for (double u = -0.6; u <= 0.6; u += 0.1) {
      worst = std::max(worst, std::abs(conv.convert_voltage(u * 2.5) - u));
    }
    return worst;
  };
  EXPECT_LT(worst_err(512), worst_err(32));
}

TEST(Incremental, CapacitiveModeTracksDeltaC) {
  IncrementalConfig cfg = quiet_config();
  cfg.modulator.c_fb1_f = 25e-15;
  IncrementalConverter conv{cfg};
  const double c_ref = 100e-15;
  // ΔC = 10 fF of 25 fF full scale → u = 0.4.
  EXPECT_NEAR(conv.convert_capacitive(c_ref + 10e-15, c_ref), 0.4, 0.01);
  EXPECT_NEAR(conv.convert_capacitive(c_ref - 5e-15, c_ref), -0.2, 0.01);
}

TEST(Incremental, NoMemoryBetweenConversions) {
  // A full-scale conversion must not bias the next small one (the whole
  // point versus the free-running chain).
  IncrementalConverter conv{quiet_config()};
  (void)conv.convert_voltage(0.8 * 2.5);
  const double small = conv.convert_voltage(0.05 * 2.5);
  EXPECT_NEAR(small, 0.05, 0.01);
}

TEST(Incremental, ConversionTimeAndResolution) {
  IncrementalConfig cfg = quiet_config(256);
  IncrementalConverter conv{cfg};
  EXPECT_NEAR(conv.conversion_time_s(), 256.0 / 128000.0, 1e-12);
  EXPECT_NEAR(conv.ideal_resolution_bits(), std::log2(256.0 * 257.0 / 2.0), 1e-9);
  EXPECT_GT(conv.ideal_resolution_bits(), 14.9);
}

TEST(Incremental, MuchFasterThanFreeRunningSettling) {
  // One 256-cycle conversion = 2 ms; the free-running chain needs ~4 ms of
  // transient plus dwell per element (E4).
  IncrementalConverter conv{quiet_config(256)};
  EXPECT_LT(conv.conversion_time_s(), 0.0025);
}

TEST(Incremental, WithNoiseStillAccurate) {
  IncrementalConfig cfg;  // full non-idealities
  cfg.cycles = 256;
  IncrementalConverter conv{cfg};
  double acc = 0.0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) acc += conv.convert_voltage(0.3 * 2.5);
  EXPECT_NEAR(acc / reps, 0.3, 0.02);
}

TEST(Incremental, RejectsTooFewCycles) {
  IncrementalConfig bad;
  bad.cycles = 4;
  EXPECT_THROW((IncrementalConverter{bad}), std::invalid_argument);
}

// Property: conversion error scales roughly with 1/N² (CoI₂ quantization).
class IncrementalCyclesTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IncrementalCyclesTest, BoundedQuantizationError) {
  IncrementalConverter conv{quiet_config(GetParam())};
  const auto n = static_cast<double>(GetParam());
  const double lsb = 2.0 / (n * (n + 1.0) / 2.0);
  double worst = 0.0;
  for (double u = -0.5; u <= 0.5; u += 0.037) {
    worst = std::max(worst, std::abs(conv.convert_voltage(u * 2.5) - u));
  }
  // Calibration residue + loop-specific transfer keep the error within a
  // modest multiple of the ideal step.
  EXPECT_LT(worst, 60.0 * lsb + 2e-3) << "N = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CycleCounts, IncrementalCyclesTest,
                         ::testing::Values(64u, 128u, 256u, 512u));

}  // namespace
}  // namespace tono::analog
