#include "src/core/autorange.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tono::core {

FeedbackAutoRanger::FeedbackAutoRanger(const AutoRangeConfig& config,
                                       std::size_t initial_index)
    : config_(config), index_(initial_index) {
  if (config_.bank_f.empty()) throw std::invalid_argument{"FeedbackAutoRanger: empty bank"};
  for (std::size_t i = 1; i < config_.bank_f.size(); ++i) {
    if (!(config_.bank_f[i] < config_.bank_f[i - 1]) || config_.bank_f[i] <= 0.0) {
      throw std::invalid_argument{
          "FeedbackAutoRanger: bank must be strictly decreasing and positive"};
    }
  }
  if (config_.target_headroom <= 0.0 || config_.target_headroom >= 1.0 ||
      config_.overload_threshold <= config_.target_headroom ||
      config_.overload_threshold > 1.0) {
    throw std::invalid_argument{"FeedbackAutoRanger: need 0 < headroom < overload <= 1"};
  }
  if (index_ >= config_.bank_f.size()) {
    throw std::invalid_argument{"FeedbackAutoRanger: initial index out of range"};
  }
}

std::size_t FeedbackAutoRanger::best_range_for_peak(double observed_peak) const noexcept {
  // Signal in physical units: peak × current full scale. Predicted peak at
  // range i: that, divided by the candidate full scale (∝ C_fb).
  const double c_now = config_.bank_f[index_];
  std::size_t best = 0;
  for (std::size_t i = 0; i < config_.bank_f.size(); ++i) {
    const double predicted = observed_peak * c_now / config_.bank_f[i];
    if (predicted <= config_.target_headroom) best = i;
  }
  return best;
}

AutoRangeDecision FeedbackAutoRanger::update(std::span<const double> window_values) {
  AutoRangeDecision d;
  d.range_index = index_;
  if (window_values.empty()) return d;

  double peak = 0.0;
  for (double v : window_values) peak = std::max(peak, std::abs(v));

  std::size_t next = index_;
  if (peak >= config_.overload_threshold && index_ > 0) {
    // Overloaded: step one range coarser immediately.
    next = index_ - 1;
  } else {
    // Consider finer ranges only; never skip past the predicted-safe one.
    const std::size_t best = best_range_for_peak(peak);
    if (best > index_) next = index_ + 1;  // one step at a time
  }

  if (next != index_) {
    d.full_scale_ratio = config_.bank_f[next] / config_.bank_f[index_];
    index_ = next;
    d.changed = true;
  }
  d.range_index = index_;
  return d;
}

}  // namespace tono::core
