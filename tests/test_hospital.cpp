// Hospital sharding tests (src/fleet/hospital_scheduler.hpp and friends):
// the determinism contract (sharded == unsharded == plain fleet == solo,
// snapshot bytes included, fault plans active), the lock-free aggregation
// tree, and the double-buffered async snapshot writer. The Hospital /
// Aggregation / Snapshot suites run under the CI TSan job.
#include "src/fleet/hospital_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/checkpoint.hpp"
#include "src/fleet/aggregation_tree.hpp"
#include "src/fleet/snapshot_writer.hpp"

namespace {

using namespace tono;
using fleet::AggregationTree;
using fleet::AsyncSnapshotWriter;
using fleet::FaultPlanConfig;
using fleet::FleetConfig;
using fleet::FleetScheduler;
using fleet::HospitalConfig;
using fleet::HospitalScheduler;
using fleet::PatientSession;
using fleet::SessionConfig;
using fleet::SessionState;
using fleet::ShardStats;
using fleet::WardAggregator;
using fleet::WardConfig;
using fleet::WardSessionState;
using fleet::WardSnapshot;

constexpr std::size_t kSessions = 5;  // uneven across 3 shards on purpose

/// Same mix idea as test_fleet: quiet, alarm-worthy, scenario-driven.
SessionConfig mixed_config(std::size_t index) {
  SessionConfig config;
  if (index % 3 == 1) config.wrist.pulse = bio::PatientPresets::hypertensive();
  if (index % 3 == 2) config.scenario = "exercise";
  return config;
}

/// Transient-heavy plan whose onsets land inside a 1 s run (mirrors
/// test_fleet's faulty_plan so recovery behaviour is directly comparable).
FaultPlanConfig faulty_plan() {
  FaultPlanConfig plan;
  plan.contact_loss_events = 1;
  plan.link_bursts = 1;
  plan.element_faults = 1;
  plan.min_onset_s = 0.10;
  plan.horizon_s = 0.80;
  return plan;
}

struct HospitalRun {
  std::vector<std::vector<std::int16_t>> codes;
  std::string snapshot;
  std::uint64_t recoveries;
};

/// Runs a kSessions hospital with the given shard layout and returns every
/// session's recorded code stream plus the merged snapshot bytes.
HospitalRun run_hospital(std::size_t shards, double duration_s, bool faults) {
  HospitalConfig config;
  config.shards = shards;
  config.threads_per_shard = 1;
  config.ward.record_codes = true;
  HospitalScheduler hospital{config};
  for (std::size_t i = 0; i < kSessions; ++i) {
    SessionConfig session = mixed_config(i);
    if (faults) session.fault_plan = faulty_plan();
    (void)hospital.admit(std::move(session));
  }
  hospital.run(duration_s);
  HospitalRun result;
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    result.codes.push_back(
        hospital.ward(hospital.shard_of(id)).recorded_codes(id));
  }
  std::ostringstream os;
  hospital.export_jsonl(os);
  result.snapshot = os.str();
  result.recoveries = hospital.snapshot().recoveries;
  return result;
}

/// The plain (pre-hospital) fleet running the same sessions — the serial
/// reference the whole sharding layer must be invisible against.
HospitalRun run_plain_fleet(double duration_s, bool faults) {
  WardConfig ward_config;
  ward_config.record_codes = true;
  WardAggregator ward{ward_config};
  FleetConfig fleet_config;
  fleet_config.threads = 1;
  FleetScheduler scheduler{fleet_config, ward};
  for (std::size_t i = 0; i < kSessions; ++i) {
    SessionConfig session = mixed_config(i);
    if (faults) session.fault_plan = faulty_plan();
    (void)scheduler.admit(std::move(session));
  }
  scheduler.run(duration_s);
  HospitalRun result;
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    result.codes.push_back(ward.recorded_codes(id));
  }
  std::ostringstream os;
  ward.export_jsonl(os);
  result.snapshot = os.str();
  result.recoveries = ward.recoveries();
  return result;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Hospital, SeedAndShardAssignmentArePureFunctionsOfSessionId) {
  WardAggregator ward;
  FleetScheduler fleet{FleetConfig{}, ward};
  HospitalConfig config;
  config.shards = 3;
  HospitalScheduler hospital{config};
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(hospital.session_seed(i), fleet.session_seed(i))
        << "seed of session " << i << " depends on the shard layout";
    EXPECT_EQ(hospital.shard_of(static_cast<std::uint32_t>(i)), i % 3);
  }
  // Admission order == global id, round-robin over shards.
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(hospital.admit(SessionConfig{}), i);
  }
  EXPECT_EQ(hospital.size(), 7u);
  for (std::uint32_t id = 0; id < 7; ++id) {
    EXPECT_EQ(hospital.state(id), SessionState::kAdmitted);
    EXPECT_EQ(hospital.strikes(id), 0u);
  }
  EXPECT_EQ(hospital.shard(0).size() + hospital.shard(1).size() +
                hospital.shard(2).size(),
            7u);
}

TEST(Hospital, RejectsZeroShards) {
  HospitalConfig config;
  config.shards = 0;
  EXPECT_THROW(HospitalScheduler{config}, std::invalid_argument);
}

TEST(Hospital, ShardedIsBitIdenticalToUnshardedAndPlainFleet) {
  const auto sharded = run_hospital(3, 0.5, /*faults=*/false);
  const auto unsharded = run_hospital(1, 0.5, /*faults=*/false);
  const auto plain = run_plain_fleet(0.5, /*faults=*/false);
  ASSERT_EQ(sharded.codes.size(), kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    ASSERT_FALSE(plain.codes[i].empty()) << "session " << i << " produced no codes";
    EXPECT_EQ(sharded.codes[i], plain.codes[i]) << "session " << i << " diverged";
    EXPECT_EQ(unsharded.codes[i], plain.codes[i]) << "session " << i << " diverged";
  }
  // Snapshot bytes are shard-count-invariant, including vs the pre-hospital
  // single-ward export format.
  EXPECT_EQ(sharded.snapshot, plain.snapshot);
  EXPECT_EQ(unsharded.snapshot, plain.snapshot);
}

TEST(Hospital, FaultPlanRecoveryIsBitIdenticalAcrossShardLayoutsAndSolo) {
  const auto sharded = run_hospital(3, 1.0, /*faults=*/true);
  const auto unsharded = run_hospital(1, 1.0, /*faults=*/true);
  const auto plain = run_plain_fleet(1.0, /*faults=*/true);
  // Every session hits its transient contact loss and is readmitted; the
  // quarantine → backoff → readmit schedule is in shard-local batch counts,
  // so it cannot depend on the shard layout.
  EXPECT_EQ(sharded.recoveries, kSessions);
  EXPECT_EQ(unsharded.recoveries, kSessions);
  EXPECT_EQ(plain.recoveries, kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    ASSERT_FALSE(plain.codes[i].empty()) << "session " << i << " produced no codes";
    EXPECT_EQ(sharded.codes[i], plain.codes[i]) << "session " << i << " diverged";
    EXPECT_EQ(unsharded.codes[i], plain.codes[i]) << "session " << i << " diverged";
  }
  EXPECT_EQ(sharded.snapshot, plain.snapshot);
  EXPECT_EQ(unsharded.snapshot, plain.snapshot);

  // Solo catch-retry: the single-session analogue of quarantine +
  // readmission reproduces each sharded session bit for bit.
  WardAggregator ward;
  FleetScheduler seeder{FleetConfig{}, ward};
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    SessionConfig config = mixed_config(id);
    config.seed = seeder.session_seed(id);
    config.fault_plan = faulty_plan();
    PatientSession solo{id, std::move(config)};
    std::vector<std::int16_t> codes;
    while (solo.stream_time_s() < 1.0) {
      try {
        solo.step(FleetConfig{}.frames_per_step);
      } catch (const std::exception&) {
        // retry: a transient fault consumes its throw budget and passes
      }
      solo.codes().pop_all(codes);
    }
    solo.codes().pop_all(codes);
    EXPECT_EQ(codes, sharded.codes[id]) << "session " << id << " diverged solo";
  }
}

TEST(Hospital, SessionsSurviveShardsOutnumberingThem) {
  HospitalConfig config;
  config.shards = 4;
  config.threads_per_shard = 1;
  HospitalScheduler hospital{config};
  (void)hospital.admit(SessionConfig{});
  (void)hospital.admit(SessionConfig{});
  hospital.run(0.2);  // two shards work, two are empty the whole run
  const WardSnapshot snap = hospital.snapshot();
  ASSERT_EQ(snap.sessions.size(), 2u);
  EXPECT_GT(snap.codes_consumed, 0u);
  EXPECT_EQ(hospital.state(0), SessionState::kRunning);
  EXPECT_EQ(hospital.state(1), SessionState::kRunning);
  EXPECT_GE(hospital.epochs(), 1u);
}

TEST(Hospital, LiveStatsMatchSnapshotAtQuiescence) {
  HospitalConfig config;
  config.shards = 2;
  config.threads_per_shard = 1;
  HospitalScheduler hospital{config};
  for (std::size_t i = 0; i < 3; ++i) (void)hospital.admit(mixed_config(i));
  hospital.run(0.3);
  const WardSnapshot snap = hospital.snapshot();
  const ShardStats stats = hospital.stats();
  EXPECT_EQ(stats[fleet::kShardCodes], snap.codes_consumed);
  EXPECT_EQ(stats[fleet::kShardEvents], snap.events_consumed);
  EXPECT_EQ(stats[fleet::kShardEventDrops], snap.event_drops);
  EXPECT_EQ(stats[fleet::kShardAlarmsActive], snap.alarms_active);
  EXPECT_EQ(stats[fleet::kShardRecoveries], snap.recoveries);
  EXPECT_EQ(stats[fleet::kShardActiveSessions], 3u);
}

TEST(Hospital, AsyncEpochSnapshotsLandOnDiskShardCountInvariant) {
  const std::string path3 = temp_path("hospital_snap3.jsonl");
  const std::string path1 = temp_path("hospital_snap1.jsonl");
  std::string expected;
  for (const auto& [shards, path] :
       std::vector<std::pair<std::size_t, std::string>>{{3, path3}, {1, path1}}) {
    HospitalConfig config;
    config.shards = shards;
    config.threads_per_shard = 1;
    config.snapshot_path = path;
    config.snapshot_every_epochs = 1;
    HospitalScheduler hospital{config};
    for (std::size_t i = 0; i < 3; ++i) (void)hospital.admit(mixed_config(i));
    hospital.run(0.3);
    // run() submits a final exact snapshot and flushes; the file must equal
    // the in-memory merged export.
    EXPECT_GE(hospital.snapshots_written(), 1u);
    std::ostringstream os;
    hospital.export_jsonl(os);
    EXPECT_EQ(read_file(path), os.str());
    if (expected.empty()) expected = os.str();
  }
  EXPECT_EQ(read_file(path3), read_file(path1))
      << "snapshot bytes depend on the shard count";
  std::remove(path3.c_str());
  std::remove(path1.c_str());
}

TEST(Hospital, CheckpointResumeMatchesContinuingTheSameProcess) {
  const std::string path = temp_path("hospital_resume.ckpt");
  std::remove(path.c_str());

  auto admit_all = [](HospitalScheduler& hospital) {
    for (std::size_t i = 0; i < kSessions; ++i) {
      SessionConfig session = mixed_config(i);
      session.fault_plan = faulty_plan();  // recovery state must survive too
      (void)hospital.admit(std::move(session));
    }
  };
  auto make_config = [&](const std::string& checkpoint_path) {
    HospitalConfig config;
    config.shards = 2;
    config.threads_per_shard = 1;
    config.ward.record_codes = true;
    config.checkpoint_path = checkpoint_path;
    return config;
  };

  // Reference: one process that pauses at 0.5 s and continues to 1.0 s on
  // the same objects — the behaviour resume must be indistinguishable from.
  std::string continued;
  {
    HospitalScheduler hospital{make_config("")};
    admit_all(hospital);
    hospital.run(0.5);
    hospital.run(1.0);
    std::ostringstream os;
    hospital.export_jsonl(os);
    continued = os.str();
  }

  // "Killed" process: runs to 0.5 s and leaves its end-of-run checkpoint.
  std::uint64_t epochs_at_stop = 0;
  {
    HospitalScheduler hospital{make_config(path)};
    admit_all(hospital);
    hospital.run(0.5);
    epochs_at_stop = hospital.epochs();
    EXPECT_GE(hospital.checkpoints_saved(), 1u);
  }

  // Restarted process: identical admissions, restore, continue. The final
  // snapshot must be byte-identical to never having stopped.
  {
    HospitalScheduler hospital{make_config(path)};
    admit_all(hospital);
    ASSERT_TRUE(hospital.try_restore_checkpoint());
    EXPECT_EQ(hospital.epochs(), epochs_at_stop);
    hospital.run(1.0);
    std::ostringstream os;
    hospital.export_jsonl(os);
    EXPECT_EQ(os.str(), continued) << "resumed run diverged from the reference";
  }
  std::remove(path.c_str());
}

TEST(Hospital, CheckpointRestoreRejectsMismatchAndMissingFileIsFreshStart) {
  const std::string path = temp_path("hospital_mismatch.ckpt");
  std::remove(path.c_str());

  auto make = [&](std::size_t shards, std::size_t sessions) {
    HospitalConfig config;
    config.shards = shards;
    config.threads_per_shard = 1;
    config.checkpoint_path = path;
    auto hospital = std::make_unique<HospitalScheduler>(config);
    for (std::size_t i = 0; i < sessions; ++i) {
      (void)hospital->admit(mixed_config(i));
    }
    return hospital;
  };

  {
    auto fresh = make(2, 3);
    EXPECT_FALSE(fresh->try_restore_checkpoint()) << "no file yet";
    fresh->run(0.2);  // leaves the end-of-run checkpoint behind
    EXPECT_GE(fresh->checkpoints_saved(), 1u);
  }
  // Wrong shard count and wrong admission count both fail loudly instead of
  // silently restarting the ward from zero.
  EXPECT_THROW((void)make(3, 3)->try_restore_checkpoint(), CheckpointError);
  EXPECT_THROW((void)make(2, 2)->try_restore_checkpoint(), CheckpointError);
  {
    // A matching hospital restores fine from the same file.
    auto match = make(2, 3);
    EXPECT_TRUE(match->try_restore_checkpoint());
    EXPECT_GE(match->epochs(), 1u);
  }
  {
    // Corrupt the file: resume must throw, not half-restore.
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << "definitely not a TCKP blob";
  }
  EXPECT_THROW((void)make(2, 3)->try_restore_checkpoint(), CheckpointError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// AggregationTree

ShardStats stats_with(std::uint64_t base) {
  ShardStats s;
  for (std::size_t f = 0; f < fleet::kShardFieldCount; ++f) {
    s[f] = base + f;
  }
  return s;
}

TEST(Aggregation, ReduceMatchesLinearSumAcrossIncrementalPublishes) {
  AggregationTree tree{5};  // non-power-of-two: exercises padding leaves
  EXPECT_EQ(tree.leaf_count(), 5u);
  for (std::uint64_t round = 1; round <= 4; ++round) {
    for (std::size_t leaf = 0; leaf < 5; ++leaf) {
      if ((leaf + round) % 2 == 0) continue;  // partial publishes per round
      tree.publish(leaf, stats_with(round * 100 + leaf));
    }
    const ShardStats cached = tree.reduce();
    const ShardStats linear = tree.sum();
    for (std::size_t f = 0; f < fleet::kShardFieldCount; ++f) {
      EXPECT_EQ(cached[f], linear[f]) << "field " << f << " round " << round;
    }
  }
}

TEST(Aggregation, RepublishingOneLeafOnlyChangesItsContribution) {
  AggregationTree tree{4};
  for (std::size_t leaf = 0; leaf < 4; ++leaf) tree.publish(leaf, stats_with(10));
  const std::uint64_t before = tree.reduce()[fleet::kShardCodes];
  ShardStats update = stats_with(10);
  update[fleet::kShardCodes] += 7;
  tree.publish(2, update);
  EXPECT_EQ(tree.reduce()[fleet::kShardCodes], before + 7);
}

// Concurrent single-writer-per-leaf publishes with a live lock-free reader —
// the hospital's steady state, under TSan in CI.
TEST(Aggregation, ConcurrentPublishersAndLiveReaderAreRaceFree) {
  constexpr std::size_t kLeaves = 4;
  constexpr std::uint64_t kRounds = 2000;
  AggregationTree tree{kLeaves};
  std::atomic<bool> stop{false};
  std::thread reader{[&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const ShardStats live = tree.sum();
      // Per-field monotonicity: every publisher only increases its value.
      EXPECT_GE(live[fleet::kShardCodes], last);
      last = live[fleet::kShardCodes];
    }
  }};
  std::vector<std::thread> publishers;
  for (std::size_t leaf = 0; leaf < kLeaves; ++leaf) {
    publishers.emplace_back([&tree, leaf] {
      for (std::uint64_t round = 1; round <= kRounds; ++round) {
        ShardStats s;
        s[fleet::kShardCodes] = round;
        s[fleet::kShardBatches] = round;
        tree.publish(leaf, s);
      }
    });
  }
  for (auto& t : publishers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  const ShardStats total = tree.reduce();
  EXPECT_EQ(total[fleet::kShardCodes], kLeaves * kRounds);
  EXPECT_EQ(total[fleet::kShardBatches], kLeaves * kRounds);
}

// ---------------------------------------------------------------------------
// AsyncSnapshotWriter

WardSnapshot tiny_snapshot(std::uint32_t tag) {
  WardSnapshot snap;
  WardSessionState s;
  s.id = tag;
  s.label = "session-" + std::to_string(tag);
  s.codes = 10ull * tag;
  snap.sessions.push_back(std::move(s));
  snap.codes_consumed = 10ull * tag;
  return snap;
}

std::string serialized(const WardSnapshot& snap) {
  std::ostringstream os;
  fleet::export_jsonl(snap, os);
  return os.str();
}

TEST(Snapshot, WriterWritesSubmittedSnapshotVerbatim) {
  const std::string path = temp_path("writer_basic.jsonl");
  AsyncSnapshotWriter writer{path};
  writer.submit(tiny_snapshot(3));
  writer.flush();
  EXPECT_EQ(writer.written(), 1u);
  EXPECT_EQ(writer.failures(), 0u);
  EXPECT_EQ(read_file(path), serialized(tiny_snapshot(3)));
  std::remove(path.c_str());
}

TEST(Snapshot, LatestWinsAccountingIsExactAndFileHoldsTheLast) {
  const std::string path = temp_path("writer_latest.jsonl");
  constexpr std::uint32_t kSubmitted = 200;
  {
    AsyncSnapshotWriter writer{path};
    for (std::uint32_t i = 1; i <= kSubmitted; ++i) writer.submit(tiny_snapshot(i));
    writer.flush();
    // Double-buffer contract: every snapshot is either written or counted
    // as superseded — nothing vanishes silently — and the file always ends
    // at the newest one.
    EXPECT_EQ(writer.written() + writer.skipped(), kSubmitted);
    EXPECT_GE(writer.written(), 1u);
  }
  EXPECT_EQ(read_file(path), serialized(tiny_snapshot(kSubmitted)));
  std::remove(path.c_str());
}

TEST(Snapshot, DestructorFlushesThePendingSnapshot) {
  const std::string path = temp_path("writer_dtor.jsonl");
  {
    AsyncSnapshotWriter writer{path};
    writer.submit(tiny_snapshot(9));
    // no flush(): the destructor must drain the pending slot
  }
  EXPECT_EQ(read_file(path), serialized(tiny_snapshot(9)));
  std::remove(path.c_str());
}

TEST(Snapshot, UnwritablePathCountsFailuresWithoutWedging) {
  AsyncSnapshotWriter writer{"/nonexistent-dir/snap.jsonl"};
  writer.submit(tiny_snapshot(1));
  writer.flush();
  EXPECT_EQ(writer.written(), 0u);
  EXPECT_EQ(writer.failures(), 1u);
  writer.submit(tiny_snapshot(2));
  writer.flush();  // still alive after a failure
  EXPECT_EQ(writer.failures(), 2u);
}

}  // namespace
