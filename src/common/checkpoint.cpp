#include "src/common/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace tono {
namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'C', 'K', 'P'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;  // magic, version, len, fnv

/// 32-bit FNV-1a of a section name — the tag both sides derive.
constexpr std::uint32_t section_tag(std::string_view name) noexcept {
  std::uint32_t h = 0x811c9dc5u;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x01000193u;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::uint64_t checkpoint_fnv1a(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) noexcept {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      (void)::unlink(tmp.c_str());
      return false;
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // The data must be durable *before* the rename publishes it: rename is
  // atomic in the namespace, but without the fsync a crash could publish a
  // name pointing at unwritten blocks.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return false;
  }
  return true;
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  if (!file) {
    throw CheckpointError{"cannot open file for reading: " + path};
  }
  std::vector<std::uint8_t> bytes;
  file.seekg(0, std::ios::end);
  const auto end = file.tellg();
  file.seekg(0, std::ios::beg);
  if (end > 0) {
    bytes.resize(static_cast<std::size_t>(end));
    file.read(reinterpret_cast<char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  if (!file) {
    throw CheckpointError{"failed reading file: " + path};
  }
  return bytes;
}

void CheckpointWriter::u8(std::uint8_t v) { payload_.push_back(v); }

void CheckpointWriter::u16(std::uint16_t v) {
  payload_.push_back(static_cast<std::uint8_t>(v));
  payload_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void CheckpointWriter::u32(std::uint32_t v) { put_u32(payload_, v); }

void CheckpointWriter::u64(std::uint64_t v) { put_u64(payload_, v); }

void CheckpointWriter::i64(std::int64_t v) {
  u64(static_cast<std::uint64_t>(v));
}

void CheckpointWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void CheckpointWriter::boolean(bool v) { u8(v ? 1 : 0); }

void CheckpointWriter::str(std::string_view s) {
  size(s.size());
  payload_.insert(payload_.end(), s.begin(), s.end());
}

void CheckpointWriter::section(std::string_view name) {
  u32(section_tag(name));
}

std::vector<std::uint8_t> CheckpointWriter::finish(
    std::uint32_t schema_version) const {
  std::vector<std::uint8_t> blob;
  blob.reserve(kHeaderBytes + payload_.size());
  blob.insert(blob.end(), kMagic, kMagic + 4);
  put_u32(blob, schema_version);
  put_u64(blob, payload_.size());
  put_u64(blob, checkpoint_fnv1a(payload_.data(), payload_.size()));
  blob.insert(blob.end(), payload_.begin(), payload_.end());
  return blob;
}

CheckpointReader::CheckpointReader(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderBytes) {
    throw CheckpointError{"checkpoint blob truncated: " +
                          std::to_string(size) + " bytes, header needs " +
                          std::to_string(kHeaderBytes)};
  }
  if (std::memcmp(data, kMagic, 4) != 0) {
    throw CheckpointError{"checkpoint blob has wrong magic (not TCKP)"};
  }
  version_ = get_u32(data + 4);
  const std::uint64_t declared = get_u64(data + 8);
  const std::uint64_t stored_fnv = get_u64(data + 16);
  if (declared != size - kHeaderBytes) {
    throw CheckpointError{
        "checkpoint payload length mismatch: header declares " +
        std::to_string(declared) + " bytes, blob carries " +
        std::to_string(size - kHeaderBytes)};
  }
  payload_ = data + kHeaderBytes;
  size_ = static_cast<std::size_t>(declared);
  const std::uint64_t actual_fnv = checkpoint_fnv1a(payload_, size_);
  if (actual_fnv != stored_fnv) {
    throw CheckpointError{"checkpoint checksum mismatch: blob is corrupted"};
  }
}

CheckpointReader::CheckpointReader(const std::vector<std::uint8_t>& blob)
    : CheckpointReader(blob.data(), blob.size()) {
  // Keep a copy so the reader stays valid if the caller's blob goes away.
  owned_ = blob;
  payload_ = owned_.data() + kHeaderBytes;
}

void CheckpointReader::require_version(std::uint32_t expected) const {
  if (version_ != expected) {
    throw CheckpointError{"unsupported checkpoint schema version " +
                          std::to_string(version_) + " (expected " +
                          std::to_string(expected) + ")"};
  }
}

const std::uint8_t* CheckpointReader::take_(std::size_t n, const char* what) {
  if (size_ - pos_ < n) {
    throw CheckpointError{std::string{"checkpoint payload underflow reading "} +
                          what + " at offset " + std::to_string(pos_)};
  }
  const std::uint8_t* p = payload_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t CheckpointReader::u8() { return *take_(1, "u8"); }

std::uint16_t CheckpointReader::u16() {
  const std::uint8_t* p = take_(2, "u16");
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t CheckpointReader::u32() { return get_u32(take_(4, "u32")); }

std::uint64_t CheckpointReader::u64() { return get_u64(take_(8, "u64")); }

std::int64_t CheckpointReader::i64() {
  return static_cast<std::int64_t>(u64());
}

double CheckpointReader::f64() { return std::bit_cast<double>(u64()); }

bool CheckpointReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) {
    throw CheckpointError{"checkpoint boolean field holds " +
                          std::to_string(v)};
  }
  return v != 0;
}

std::string CheckpointReader::str() {
  const std::size_t n = size();
  const std::uint8_t* p = take_(n, "string body");
  return std::string{reinterpret_cast<const char*>(p), n};
}

void CheckpointReader::section(std::string_view name) {
  const std::uint32_t expected = section_tag(name);
  const std::uint32_t actual = u32();
  if (actual != expected) {
    throw CheckpointError{"checkpoint section mismatch: expected '" +
                          std::string{name} + "'"};
  }
}

void CheckpointReader::expect_end() const {
  if (pos_ != size_) {
    throw CheckpointError{"checkpoint has " + std::to_string(size_ - pos_) +
                          " trailing byte(s): blob and reader disagree"};
  }
}

}  // namespace tono
