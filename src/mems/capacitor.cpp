#include "src/mems/capacitor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/common/units.hpp"

namespace tono::mems {
namespace {

/// Fraction of the gap at which we declare mechanical touch-down and stop
/// following the 1/(g-w) divergence.
constexpr double kTouchdownFraction = 0.95;

}  // namespace

MembraneCapacitor::MembraneCapacitor(SquarePlate plate, CapacitorGeometry geometry,
                                     std::size_t quadrature_points)
    : plate_(std::move(plate)), geometry_(geometry), quad_n_(quadrature_points) {
  if (geometry_.gap_m <= 0.0) throw std::invalid_argument{"MembraneCapacitor: bad gap"};
  if (geometry_.electrode_coverage <= 0.0 || geometry_.electrode_coverage > 1.0) {
    throw std::invalid_argument{"MembraneCapacitor: coverage must be in (0, 1]"};
  }
  if (quad_n_ < 4) quad_n_ = 4;
  if (quad_n_ % 2 != 0) ++quad_n_;  // Simpson needs an even interval count
}

double MembraneCapacitor::capacitance_at_deflection(double w0_m) const noexcept {
  const double a = plate_.geometry().side_length_m;
  const double g0 = geometry_.gap_m;
  // Clamp so the integrand stays finite past touch-down.
  const double w0 = std::clamp(w0_m, -kTouchdownFraction * g0, kTouchdownFraction * g0);

  const double cov = geometry_.electrode_coverage;
  const double lo = 0.5 * a * (1.0 - cov);
  const double hi = 0.5 * a * (1.0 + cov);
  const std::size_t n = quad_n_;
  const double h = (hi - lo) / static_cast<double>(n);

  // Simpson weights 1,4,2,...,4,1 in each dimension.
  auto weight = [n](std::size_t i) -> double {
    if (i == 0 || i == n) return 1.0;
    return (i % 2 == 1) ? 4.0 : 2.0;
  };

  // Positive w (deflection toward the top / away from the substrate, as
  // under backpressure) *increases* the gap; pressure applied from the top
  // produces negative w here. capacitance_at_pressure() flips the sign so
  // that positive applied pressure shrinks the gap.
  double sum = 0.0;
  for (std::size_t i = 0; i <= n; ++i) {
    const double x = lo + h * static_cast<double>(i);
    for (std::size_t j = 0; j <= n; ++j) {
      const double y = lo + h * static_cast<double>(j);
      double gap = g0 + plate_.deflection_at(x, y, w0);
      gap = std::max(gap, (1.0 - kTouchdownFraction) * g0);
      sum += weight(i) * weight(j) / gap;
    }
  }
  const double integral = sum * h * h / 9.0;
  const double eps = units::epsilon0 * geometry_.gap_permittivity;
  return eps * integral + geometry_.parasitic_f;
}

double MembraneCapacitor::capacitance_at_pressure(double pressure_pa) const noexcept {
  // Positive applied (contact) pressure deflects toward the substrate:
  // negative w in the deflection convention above.
  const double w0 = plate_.center_deflection(pressure_pa);
  return capacitance_at_deflection(-w0);
}

double MembraneCapacitor::rest_capacitance() const noexcept {
  return capacitance_at_deflection(0.0);
}

double MembraneCapacitor::sensitivity_at(double bias_pressure_pa) const noexcept {
  const double scale = std::max(std::abs(bias_pressure_pa), 1000.0);
  const double dp = 1e-4 * scale;
  const double c_hi = capacitance_at_pressure(bias_pressure_pa + dp);
  const double c_lo = capacitance_at_pressure(bias_pressure_pa - dp);
  return (c_hi - c_lo) / (2.0 * dp);
}

double MembraneCapacitor::pull_in_voltage() const noexcept {
  const double a = plate_.geometry().side_length_m;
  const double area = a * a * geometry_.electrode_coverage * geometry_.electrode_coverage;
  const double g = geometry_.gap_m;
  // Lumped stiffness referencing center deflection: k_lump = p·A / w₀.
  const double k_lump = plate_.linear_stiffness() * area;
  const double eps = units::epsilon0 * geometry_.gap_permittivity;
  return std::sqrt(8.0 * k_lump * g * g * g / (27.0 * eps * area));
}

double MembraneCapacitor::touch_down_deflection() const noexcept {
  return kTouchdownFraction * geometry_.gap_m;
}

}  // namespace tono::mems
