// E1 / Fig. 7 — measured spectrum of the 12-bit ΔΣ ADC at 15.625 Hz.
//
// Paper: "Figure 7 shows the spectrum of a converted sine-wave input signal.
// The modulator was operated at a frequency of 128 kHz and an oversampling
// ratio of 128 leading to a conversion rate of 1 kS/s … a signal-to-noise
// ratio better than 72 dB was achieved."
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/math_utils.hpp"

namespace {

using namespace tono;

void run() {
  bench::print_header("E1 / Fig. 7",
                      "ΔΣ ADC output spectrum, 15.625 Hz sine, fs = 128 kHz, OSR = 128");

  analog::ModulatorConfig mc;  // paper electrical configuration, full non-idealities
  dsp::DecimationConfig dc;    // SINC³ + 32-tap FIR, 12 bit, 500 Hz cutoff
  const double amp = 0.875;    // −1.16 dBFS: near full scale, inside stable range
  const auto r = bench::run_tone_test(mc, dc, amp, 15.625);
  const auto& a = r.analysis;

  TextTable setup{"Test setup"};
  setup.set_header({"parameter", "value", "unit"});
  setup.add_row("modulator clock", mc.sampling_rate_hz / 1e3, "kHz", 1);
  setup.add_row("oversampling ratio", static_cast<double>(dc.total_decimation), "", 0);
  setup.add_row("conversion rate", 128000.0 / 128.0, "S/s", 0);
  setup.add_row("output resolution", static_cast<double>(dc.output_bits), "bit", 0);
  setup.add_row("input amplitude", 20.0 * std::log10(amp), "dBFS", 2);
  setup.add_row("input frequency", a.fundamental_hz, "Hz", 3);
  setup.print(std::cout);

  TextTable res{"Measured conversion metrics"};
  res.set_header({"metric", "value", "unit"});
  res.add_row("fundamental", a.fundamental_dbfs, "dBFS", 2);
  res.add_row("SNR", a.snr_db, "dB", 2);
  res.add_row("SNDR", a.sndr_db, "dB", 2);
  res.add_row("THD", a.thd_db, "dB", 2);
  res.add_row("SFDR", a.sfdr_db, "dB", 2);
  res.add_row("ENOB", a.enob_bits, "bit", 2);
  res.add_row("integrator clips", static_cast<double>(r.clip_count), "", 0);
  res.print(std::cout);

  // The figure itself: one-sided spectrum in dBFS.
  SeriesWriter spectrum{"fig7_spectrum", "frequency_hz", "psd_dbfs"};
  for (std::size_t k = 1; k < a.psd_dbfs.size(); ++k) {
    spectrum.add(a.freq_hz[k], std::max(a.psd_dbfs[k], -140.0));
  }
  spectrum.write_ascii_plot(std::cout);
  spectrum.decimated(256).write_csv(std::cout);

  bench::ComparisonTable cmp{"Paper vs measured (Fig. 7 / §3.1)"};
  cmp.add("SNR", "> 72 dB", format_double(a.snr_db, 1) + " dB", a.snr_db > 72.0);
  cmp.add("resolution", "12 bit", format_double(a.enob_bits, 1) + " bit ENOB",
          a.enob_bits > 11.0);
  cmp.add("conversion rate", "1 kS/s", "1 kS/s", true);
  cmp.print();
}

}  // namespace

int main() {
  run();
  return 0;
}
