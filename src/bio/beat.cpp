#include "src/bio/beat.hpp"

#include <cmath>

namespace tono::bio {

BeatMorphology BeatMorphology::radial() { return BeatMorphology{}; }

BeatMorphology BeatMorphology::aortic() {
  BeatMorphology m;
  m.lobes = {BeatLobe{1.00, 0.16, 0.075},
             BeatLobe{0.55, 0.34, 0.110},
             BeatLobe{0.12, 0.50, 0.060}};
  m.diastolic_decay = 2.8;
  return m;
}

BeatTemplate::BeatTemplate(const BeatMorphology& morphology) : morphology_(morphology) {
  // Precompute min/max/peak over a fine phase grid.
  constexpr int kGrid = 2000;
  double lo = raw(0.0);
  double hi = lo;
  double peak_phase = 0.0;
  for (int i = 1; i < kGrid; ++i) {
    const double phase = static_cast<double>(i) / kGrid;
    const double v = raw(phase);
    if (v < lo) lo = v;
    if (v > hi) {
      hi = v;
      peak_phase = phase;
    }
  }
  raw_min_ = lo;
  raw_span_ = hi - lo > 0.0 ? hi - lo : 1.0;
  peak_phase_ = peak_phase;
}

double BeatTemplate::raw(double phase) const noexcept {
  double v = 0.0;
  for (const auto& lobe : morphology_.lobes) {
    // Wrap-aware distance so lobes near phase 0/1 behave periodically.
    double d = phase - lobe.center_phase;
    if (d > 0.5) d -= 1.0;
    if (d < -0.5) d += 1.0;
    v += lobe.amplitude * std::exp(-0.5 * d * d / (lobe.width_phase * lobe.width_phase));
  }
  // Diastolic runoff: pressure decays toward the end of the beat.
  v *= std::exp(-morphology_.diastolic_decay * 0.08 * phase);
  return v;
}

double BeatTemplate::value(double phase) const noexcept {
  phase -= std::floor(phase);
  return (raw(phase) - raw_min_) / raw_span_;
}

}  // namespace tono::bio
