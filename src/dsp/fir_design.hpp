// fir_design.hpp — linear-phase FIR design (windowed-sinc / Kaiser) plus the
// CIC-droop-compensating variant used by the paper's second decimation stage.
//
// The paper's FPGA filter is a 3rd-order SINC followed by a 32-tap FIR with a
// 500 Hz cutoff. We design that FIR here at runtime so the coefficient set is
// reproducible from specs rather than a magic table, then optionally quantize
// the taps to fixed point exactly as an FPGA implementation would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/dsp/window.hpp"

namespace tono::dsp {

/// Windowed-sinc lowpass prototype.
/// - `taps`: filter length (the paper uses 32)
/// - `cutoff_hz` / `sample_rate_hz`: -6 dB point of the ideal prototype
/// Coefficients are normalized to unity DC gain.
[[nodiscard]] std::vector<double> design_lowpass(std::size_t taps, double cutoff_hz,
                                                 double sample_rate_hz,
                                                 WindowKind window = WindowKind::kHamming,
                                                 double kaiser_beta = 8.6);

/// Lowpass with inverse-sinc^N pre-emphasis that flattens the passband droop
/// of an upstream N-stage CIC decimator (differential delay 1, rate change
/// `cic_decimation`). The compensation is applied as a frequency-sampled
/// correction to the ideal prototype before windowing.
[[nodiscard]] std::vector<double> design_cic_compensator(
    std::size_t taps, double cutoff_hz, double sample_rate_hz, int cic_order,
    std::size_t cic_decimation, WindowKind window = WindowKind::kHamming);

/// Kaiser-window design from attenuation/transition specs (Kaiser's
/// empirical formulas). Returns the coefficient vector; `taps_out` reports
/// the chosen length (forced odd for a symmetric type-I filter).
[[nodiscard]] std::vector<double> design_kaiser_lowpass(double cutoff_hz,
                                                        double transition_hz,
                                                        double stopband_atten_db,
                                                        double sample_rate_hz,
                                                        std::size_t* taps_out = nullptr);

/// Quantizes coefficients to signed fixed point with `frac_bits` fractional
/// bits (round-to-nearest, saturating at ±1 integer bit), as the FPGA stores
/// them. Returns integer codes; real value = code / 2^frac_bits.
[[nodiscard]] std::vector<std::int32_t> quantize_coefficients(
    const std::vector<double>& coeffs, int frac_bits);

/// Complex-free magnitude response |H(e^{j2πf/fs})| of an FIR at one
/// frequency, by direct evaluation.
[[nodiscard]] double fir_magnitude_at(const std::vector<double>& coeffs, double freq_hz,
                                      double sample_rate_hz) noexcept;

}  // namespace tono::dsp
