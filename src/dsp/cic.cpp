#include "src/dsp/cic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "src/common/checkpoint.hpp"

namespace tono::dsp {

CicDecimator::CicDecimator(int order, std::size_t decimation, int input_bits,
                           int differential_delay)
    : order_(order), decimation_(decimation), differential_delay_(differential_delay) {
  if (order_ < 1 || order_ > 8) throw std::invalid_argument{"CicDecimator: order out of range"};
  if (decimation_ < 1) throw std::invalid_argument{"CicDecimator: decimation must be >= 1"};
  if (differential_delay_ < 1 || differential_delay_ > 2) {
    throw std::invalid_argument{"CicDecimator: differential delay must be 1 or 2"};
  }
  if (input_bits < 1 || input_bits > 32) {
    throw std::invalid_argument{"CicDecimator: input_bits out of range"};
  }
  input_bits_checked_ = input_bits;
  if (required_register_bits() > 63) {
    throw std::invalid_argument{"CicDecimator: register growth exceeds 63 bits"};
  }
  integrators_.assign(static_cast<std::size_t>(order_), 0);
  comb_delays_.assign(static_cast<std::size_t>(order_),
                      std::vector<std::int64_t>(static_cast<std::size_t>(differential_delay_), 0));
  comb_pos_.assign(static_cast<std::size_t>(order_), 0);
}

std::optional<std::int64_t> CicDecimator::push(std::int64_t x) {
  // Integrator cascade at input rate. int64 wraparound is the intended
  // modular arithmetic of the Hogenauer structure (width-checked in ctor).
  std::int64_t v = x;
  for (auto& acc : integrators_) {
    acc = static_cast<std::int64_t>(static_cast<std::uint64_t>(acc) +
                                    static_cast<std::uint64_t>(v));
    v = acc;
  }
  if (++phase_ != decimation_) return std::nullopt;
  phase_ = 0;
  return comb_(v);
}

std::int64_t CicDecimator::comb_(std::int64_t v) noexcept {
  // Comb cascade at output rate.
  for (std::size_t s = 0; s < comb_delays_.size(); ++s) {
    auto& line = comb_delays_[s];
    auto& pos = comb_pos_[s];
    const std::int64_t delayed = line[pos];
    line[pos] = v;
    pos = (pos + 1) % line.size();
    v = static_cast<std::int64_t>(static_cast<std::uint64_t>(v) -
                                  static_cast<std::uint64_t>(delayed));
  }
  return v;
}

std::vector<std::int64_t> CicDecimator::process(std::span<const std::int64_t> xs) {
  std::vector<std::int64_t> out;
  out.reserve(xs.size() / decimation_ + 1);
  for (std::int64_t x : xs) {
    if (auto y = push(x)) out.push_back(*y);
  }
  return out;
}

void CicDecimator::reset() {
  for (auto& acc : integrators_) acc = 0;
  for (auto& line : comb_delays_) line.assign(line.size(), 0);
  for (auto& pos : comb_pos_) pos = 0;
  phase_ = 0;
}

std::int64_t CicDecimator::gain() const noexcept {
  std::int64_t g = 1;
  const auto rm =
      static_cast<std::int64_t>(decimation_) * static_cast<std::int64_t>(differential_delay_);
  for (int i = 0; i < order_; ++i) g *= rm;
  return g;
}

int CicDecimator::required_register_bits() const noexcept {
  const double rm =
      static_cast<double>(decimation_) * static_cast<double>(differential_delay_);
  const double growth = static_cast<double>(order_) * std::log2(std::max(rm, 1.0));
  return input_bits_checked_ + static_cast<int>(std::ceil(growth));
}

double CicDecimator::magnitude_at(double freq_hz, double input_rate_hz) const noexcept {
  if (freq_hz == 0.0) return 1.0;
  const double rm =
      static_cast<double>(decimation_) * static_cast<double>(differential_delay_);
  const double x = std::numbers::pi * freq_hz / input_rate_hz;
  const double num = std::sin(x * rm);
  const double den = rm * std::sin(x);
  if (den == 0.0) return 1.0;
  return std::pow(std::abs(num / den), order_);
}

void CicDecimator::serialize(CheckpointWriter& out) const {
  out.section("cic");
  out.size(integrators_.size());
  for (std::int64_t acc : integrators_) out.i64(acc);
  out.size(comb_delays_.size());
  for (std::size_t s = 0; s < comb_delays_.size(); ++s) {
    out.size(comb_delays_[s].size());
    for (std::int64_t v : comb_delays_[s]) out.i64(v);
    out.size(comb_pos_[s]);
  }
  out.size(phase_);
}

void CicDecimator::restore(CheckpointReader& in) {
  in.section("cic");
  if (in.size() != integrators_.size()) {
    throw CheckpointError{"cic checkpoint integrator count mismatch"};
  }
  for (auto& acc : integrators_) acc = in.i64();
  if (in.size() != comb_delays_.size()) {
    throw CheckpointError{"cic checkpoint comb stage count mismatch"};
  }
  for (std::size_t s = 0; s < comb_delays_.size(); ++s) {
    if (in.size() != comb_delays_[s].size()) {
      throw CheckpointError{"cic checkpoint comb delay depth mismatch"};
    }
    for (auto& v : comb_delays_[s]) v = in.i64();
    comb_pos_[s] = in.size();
    if (comb_pos_[s] >= comb_delays_[s].size()) {
      throw CheckpointError{"cic checkpoint comb position out of range"};
    }
  }
  phase_ = in.size();
  if (phase_ >= decimation_) {
    throw CheckpointError{"cic checkpoint phase out of range"};
  }
}

}  // namespace tono::dsp
