// bench_util.hpp — shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and prints
// (a) the measured rows/series and (b) a paper-vs-measured comparison where
// the paper states a number. Output is plain text: aligned tables plus CSV
// series and coarse ASCII plots for figures.
#pragma once

#include <cmath>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "src/analog/modulator.hpp"
#include "src/common/table.hpp"
#include "src/dsp/decimation.hpp"
#include "src/dsp/spectrum.hpp"

namespace tono::bench {

inline void print_header(const std::string& experiment_id, const std::string& title) {
  std::cout << "\n=============================================================\n"
            << experiment_id << ": " << title << '\n'
            << "=============================================================\n";
}

struct ToneTestResult {
  dsp::SpectrumAnalysis analysis;
  std::size_t clip_count{0};
};

/// Runs the Fig. 7 style single-tone test: voltage-mode modulator at
/// `amp` × full scale, through the two-stage decimation chain, analyzed over
/// `n_out` output samples.
inline ToneTestResult run_tone_test(const analog::ModulatorConfig& mc,
                                    const dsp::DecimationConfig& dc, double amp,
                                    double target_freq_hz, std::size_t n_out = 8192) {
  analog::DeltaSigmaModulator mod{mc};
  dsp::DecimationChain chain{dc};
  const double fs_out = chain.output_rate_hz();
  const double f = dsp::coherent_frequency(target_freq_hz, fs_out, n_out);
  const std::size_t osr = dc.total_decimation;
  const auto bits = mod.run_voltage(
      [&](double t) {
        return amp * mc.vref_v * std::sin(2.0 * 3.14159265358979323846 * f * t);
      },
      (n_out + 300) * osr);
  std::vector<int> ints(bits.begin(), bits.end());
  const auto vals = chain.process_values(ints);
  std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
  dsp::SpectrumConfig sc;
  sc.sample_rate_hz = fs_out;
  return ToneTestResult{dsp::analyze_tone(rec, sc), mod.clip_count()};
}

/// Prints a paper-vs-measured row table.
class ComparisonTable {
 public:
  explicit ComparisonTable(const std::string& title) : table_(title) {
    table_.set_header({"quantity", "paper", "measured", "match"});
  }

  void add(const std::string& quantity, const std::string& paper,
           const std::string& measured, bool match) {
    table_.add_row({quantity, paper, measured, match ? "yes" : "NO"});
  }

  void print() const { table_.print(std::cout); }

 private:
  TextTable table_;
};

}  // namespace tono::bench
