#include "src/mems/materials.hpp"

#include <stdexcept>

namespace tono::mems {

Material silicon_dioxide() {
  return Material{"SiO2", 70e9, 0.17, 2200.0, -100e6};
}

Material silicon_nitride() {
  return Material{"Si3N4 (PECVD)", 250e9, 0.23, 3100.0, 400e6};
}

Material aluminum() {
  return Material{"Al", 70e9, 0.35, 2700.0, 50e6};
}

Material polysilicon() {
  return Material{"poly-Si", 160e9, 0.22, 2330.0, -20e6};
}

LayerStack::LayerStack(std::vector<Layer> layers) : layers_(std::move(layers)) {
  for (const auto& l : layers_) {
    if (l.thickness_m <= 0.0) throw std::invalid_argument{"LayerStack: non-positive thickness"};
  }
}

void LayerStack::add_layer(const Material& material, double thickness_m) {
  if (thickness_m <= 0.0) throw std::invalid_argument{"LayerStack: non-positive thickness"};
  layers_.push_back(Layer{material, thickness_m});
}

double LayerStack::total_thickness_m() const noexcept {
  double t = 0.0;
  for (const auto& l : layers_) t += l.thickness_m;
  return t;
}

double LayerStack::neutral_axis_m() const noexcept {
  double num = 0.0;
  double den = 0.0;
  double z = 0.0;
  for (const auto& l : layers_) {
    const double ep = l.material.plate_modulus_pa();
    const double mid = z + 0.5 * l.thickness_m;
    num += ep * l.thickness_m * mid;
    den += ep * l.thickness_m;
    z += l.thickness_m;
  }
  return den > 0.0 ? num / den : 0.0;
}

double LayerStack::flexural_rigidity() const noexcept {
  const double zn = neutral_axis_m();
  double d = 0.0;
  double z = 0.0;
  for (const auto& l : layers_) {
    const double ep = l.material.plate_modulus_pa();
    const double zb = z - zn;
    const double zt = z + l.thickness_m - zn;
    d += ep * (zt * zt * zt - zb * zb * zb) / 3.0;
    z += l.thickness_m;
  }
  return d;
}

double LayerStack::residual_tension() const noexcept {
  double n = 0.0;
  for (const auto& l : layers_) n += l.material.residual_stress_pa * l.thickness_m;
  return n;
}

double LayerStack::areal_density() const noexcept {
  double rho = 0.0;
  for (const auto& l : layers_) rho += l.material.density_kg_m3 * l.thickness_m;
  return rho;
}

double LayerStack::effective_youngs_modulus() const noexcept {
  const double t = total_thickness_m();
  if (t <= 0.0) return 0.0;
  double acc = 0.0;
  for (const auto& l : layers_) acc += l.material.youngs_modulus_pa * l.thickness_m;
  return acc / t;
}

double LayerStack::effective_poisson_ratio() const noexcept {
  const double t = total_thickness_m();
  if (t <= 0.0) return 0.0;
  double acc = 0.0;
  for (const auto& l : layers_) acc += l.material.poisson_ratio * l.thickness_m;
  return acc / t;
}

LayerStack LayerStack::cmos_membrane_stack() {
  LayerStack stack;
  stack.add_layer(silicon_dioxide(), 1.9e-6);
  stack.add_layer(silicon_nitride(), 0.5e-6);
  stack.add_layer(aluminum(), 0.6e-6);
  return stack;
}

}  // namespace tono::mems
