#include "src/gateway/transport.hpp"

namespace tono::gateway {

LoopbackTransport::LoopbackTransport(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes == 0 ? 1 : capacity_bytes) {}

bool LoopbackTransport::try_send(std::span<const std::uint8_t> chunk) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (!queue_.empty() && queued_bytes_ + chunk.size() > capacity_bytes_) {
    return false;
  }
  queue_.emplace_back(chunk.begin(), chunk.end());
  queued_bytes_ += chunk.size();
  return true;
}

std::vector<std::uint8_t> LoopbackTransport::drop_oldest() {
  std::lock_guard<std::mutex> lock{mutex_};
  if (queue_.empty()) return {};
  std::vector<std::uint8_t> dropped = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= dropped.size();
  return dropped;
}

std::size_t LoopbackTransport::recv(std::vector<std::uint8_t>& out) {
  std::lock_guard<std::mutex> lock{mutex_};
  std::size_t appended = 0;
  for (const auto& chunk : queue_) {
    out.insert(out.end(), chunk.begin(), chunk.end());
    appended += chunk.size();
  }
  queue_.clear();
  queued_bytes_ = 0;
  return appended;
}

void LoopbackTransport::close() {
  std::lock_guard<std::mutex> lock{mutex_};
  closed_ = true;
}

bool LoopbackTransport::closed() const noexcept {
  std::lock_guard<std::mutex> lock{mutex_};
  return closed_;
}

std::size_t LoopbackTransport::queued_bytes() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return queued_bytes_;
}

}  // namespace tono::gateway
