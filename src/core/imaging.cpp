#include "src/core/imaging.hpp"

#include <stdexcept>

namespace tono::core {

TactileImager::TactileImager(const ImagerConfig& config) : config_(config) {
  if (config_.dwell_samples == 0) {
    throw std::invalid_argument{"TactileImager: dwell must be > 0"};
  }
}

TactileFrame TactileImager::capture(AcquisitionPipeline& pipeline,
                                    const ContactField& field) const {
  TactileFrame frame;
  frame.rows = pipeline.array().rows();
  frame.cols = pipeline.array().cols();
  frame.start_s = pipeline.time_s();
  frame.pixels.reserve(frame.rows * frame.cols);
  for (std::size_t r = 0; r < frame.rows; ++r) {
    for (std::size_t c = 0; c < frame.cols; ++c) {
      pipeline.select(r, c);
      if (config_.settle_samples > 0) {
        (void)pipeline.acquire(field, config_.settle_samples);
      }
      const auto window = pipeline.acquire(field, config_.dwell_samples);
      double acc = 0.0;
      for (const auto& s : window) acc += s.value;
      frame.pixels.push_back(acc / static_cast<double>(window.size()));
    }
  }
  frame.end_s = pipeline.time_s();
  return frame;
}

std::vector<TactileFrame> TactileImager::capture_sequence(AcquisitionPipeline& pipeline,
                                                          const ContactField& field,
                                                          std::size_t frames) const {
  std::vector<TactileFrame> out;
  out.reserve(frames);
  for (std::size_t i = 0; i < frames; ++i) out.push_back(capture(pipeline, field));
  return out;
}

double TactileImager::frame_rate_hz(const AcquisitionPipeline& pipeline) const {
  const double per_element =
      static_cast<double>(config_.settle_samples + config_.dwell_samples) /
      pipeline.output_rate_hz();
  const auto elements =
      static_cast<double>(pipeline.array().rows() * pipeline.array().cols());
  return 1.0 / (per_element * elements);
}

}  // namespace tono::core
