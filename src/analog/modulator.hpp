// modulator.hpp — behavioural model of the chip's second-order, single-bit,
// fully-differential switched-capacitor ΔΣ modulator (Fig. 6 of the paper).
//
// Topology: Boser-Wooley cascade of two delaying SC integrators with 1-bit
// feedback (coefficients g1 = a1 = 0.5 into the first stage, g2 = a2 = 0.5
// into the second), giving NTF (1−z⁻¹)² / (1 − 1.5 z⁻¹ + 0.75 z⁻²) — a
// stable second-order loop for inputs below ≈ −2 dBFS.
//
// Two input modes mirror the chip:
//   * capacitive mode — the sensor/reference branch of Fig. 6: a constant
//     excitation voltage V_exc is applied to C_sense and (anti-phase) C_ref;
//     the integrated charge is (C_sense − C_ref)·V_exc against the 1-bit
//     feedback charge C_fb·V_ref. Full scale is ΔC_FS = C_fb·V_ref/V_exc,
//     which is why §4 proposes "adjusting the feedback capacitors of the
//     first modulator stage" to improve resolution — C_fb sets the range.
//   * voltage mode — the "additional differential voltage interface" used
//     for the Fig. 7 characterization; full scale is ±V_ref.
//
// Modelled non-idealities: kT/C sampling noise on every switched branch,
// op-amp finite gain (integrator leak), finite GBW/slew (incomplete
// settling), op-amp thermal noise, comparator offset/hysteresis/
// metastability, clock jitter (voltage mode), reference noise, capacitor
// mismatch, and integrator output clipping.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/analog/comparator.hpp"
#include "src/analog/opamp.hpp"
#include "src/common/metrics.hpp"
#include "src/common/pink_noise.hpp"
#include "src/common/rng.hpp"

namespace tono::analog {

struct LoopCoefficients {
  double g1{0.5};  ///< first-integrator input gain
  double a1{0.5};  ///< first-integrator feedback gain
  double g2{0.5};  ///< second-integrator input gain
  double a2{0.5};  ///< second-integrator feedback gain
  /// Dynamic-range scaling: op-amp output volts per unit of normalized loop
  /// state (full scale = 1). Real SC designs size the integrator caps so the
  /// state swing fits the op-amp output range; 1 V/FS keeps the 2nd-order
  /// loop's ±2 FS state excursions inside a ±2.3 V swing.
  double state_scale_v{1.0};
};

struct ModulatorConfig {
  double sampling_rate_hz{128000.0};  ///< paper: 128 kS/s
  double vref_v{2.5};                 ///< feedback reference (±Vref differential)
  double vexc_v{2.5};                 ///< sensor excitation voltage
  double supply_v{5.0};               ///< paper: 5 V supply
  /// Loop order: 2 = the chip's Boser-Wooley cascade; 1 = a single-
  /// integrator baseline (what the paper's topology is competing against —
  /// ~9 dB/octave of OSR instead of 15, plus strong idle tones).
  int order{2};

  /// Capacitors (single-ended equivalents of the differential pairs).
  double c_sample_f{0.5e-12};  ///< voltage-mode input/feedback sampling cap
  double c_fb1_f{25e-15};      ///< capacitive-mode feedback cap (the §4 knob)
  double c_ref_f{100e-15};     ///< on-chip reference capacitor branch

  LoopCoefficients loop{};
  OpAmpConfig opamp1{};
  OpAmpConfig opamp2{};
  ComparatorConfig comparator{};

  double clock_jitter_rms_s{1e-9};
  double ref_noise_vrms{20e-6};
  double cap_mismatch_sigma{0.001};  ///< relative σ of each capacitor
  /// Correlated-double-sampling rejection of op-amp flicker noise
  /// (amplitude factor; 1 = no CDS). SC integrators sample the op-amp
  /// offset/1-f error every phase, which first-order cancels it.
  double cds_flicker_rejection{30.0};
  double temperature_k{300.0};
  bool enable_ktc_noise{true};
  bool enable_settling{true};
  std::uint64_t seed{42};
};

class DeltaSigmaModulator {
 public:
  explicit DeltaSigmaModulator(const ModulatorConfig& config);

  /// One clock in voltage mode; `vin_v` is the differential input.
  /// Returns the output bit (+1 / −1).
  [[nodiscard]] int step_voltage(double vin_v);

  /// One clock in capacitive mode with explicit sensor and reference
  /// capacitance values [F].
  [[nodiscard]] int step_capacitive(double c_sense_f, double c_ref_f);

  /// Capacitive mode against the configured on-chip reference branch.
  [[nodiscard]] int step_capacitive(double c_sense_f) {
    return step_capacitive(c_sense_f, config_.c_ref_f * ref_mismatch_);
  }

  /// Runs `n` clocks in capacitive mode at fixed sensor/reference
  /// capacitances, writing the ±1 bitstream to `bits_out` (room for n).
  /// Bit-identical to n step_capacitive(c_sense_f, c_ref_f) calls, but
  /// restructured around a per-frame noise plan: every Gaussian the frame
  /// will consume is pre-drawn into SoA buffers (one per source, in the
  /// exact interleaved order the scalar path draws them — see
  /// fill_noise_plan_), and the per-clock loop reduces to the ~10-flop loop
  /// recurrence plus buffer reads. Op-amp settling is additionally skipped
  /// whenever the step provably settles exactly (OpAmp::full_settle_threshold
  /// against the config-fixed clock phase). This is the acquisition
  /// pipeline's block hot path.
  void step_capacitive_block(double c_sense_f, double c_ref_f, int* bits_out,
                             std::size_t n);

  /// Runs `n` clocks in voltage mode with `vin_of_t` evaluated at jittered
  /// sampling instants. Returns the ±1 bitstream.
  [[nodiscard]] std::vector<int> run_voltage(
      const std::function<double(double)>& vin_of_t, std::size_t n);

  /// Runs `n` clocks sampling a time-varying sensor capacitance.
  [[nodiscard]] std::vector<int> run_capacitive(
      const std::function<double(double)>& c_sense_of_t, std::size_t n);

  void reset();

  /// Switches the first-stage feedback capacitor bank (§4: "adjusting the
  /// feedback capacitors of the first modulator stage"). Takes effect on the
  /// next clock; the per-die mismatch factor is retained. Throws
  /// std::invalid_argument for non-positive values.
  void set_feedback_capacitor(double c_fb1_f);

  /// Capacitive-mode full-scale capacitance difference:
  /// ΔC_FS = C_fb1 · V_ref / V_exc.
  [[nodiscard]] double full_scale_delta_c() const noexcept;

  /// Normalized input that a given ΔC = C_sense − C_ref produces.
  [[nodiscard]] double normalized_input(double delta_c_f) const noexcept;

  [[nodiscard]] const ModulatorConfig& config() const noexcept { return config_; }
  [[nodiscard]] double integrator1_v() const noexcept { return x1_ * config_.loop.state_scale_v; }
  [[nodiscard]] double integrator2_v() const noexcept { return x2_ * config_.loop.state_scale_v; }
  /// Largest |integrator| voltages seen since reset (stability telemetry).
  [[nodiscard]] double max_state1_v() const noexcept { return max_x1_; }
  [[nodiscard]] double max_state2_v() const noexcept { return max_x2_; }
  /// Number of clipped integrator updates since reset.
  [[nodiscard]] std::size_t clip_count() const noexcept { return clip_count_; }
  [[nodiscard]] double time_s() const noexcept { return time_s_; }

  /// Checkpointing: integrator states, output bit, clock, telemetry peaks,
  /// every noise stream (white, both flicker generators, comparator) and the
  /// runtime-switchable C_fb1. The per-die mismatch draws, settle thresholds
  /// and LUT-free invariants are construction-time state and reproduce from
  /// the config; the per-frame noise plan is transient (checkpoints are
  /// taken between frames, when the plan is fully consumed).
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  friend class ModulatorBank;

  /// Shared loop update; `u` is the normalized input (full scale ±1) and
  /// `extra_noise_u` is mode-specific input-referred noise. This is the
  /// scalar reference implementation; step_planned_ must mirror it
  /// expression-for-expression.
  [[nodiscard]] int step_normalized(double u, double extra_noise_u);

  /// Per-sample flicker amplitude for one op-amp (0 if disabled).
  [[nodiscard]] double flicker_scale(const OpAmpConfig& amp) const noexcept;

  /// One frame's worth of pre-drawn noise, SoA: one buffer per source. The
  /// shared-stream sources (kT/C, reference, op-amp 1, op-amp 2) are
  /// de-interleaved from a single bulk Rng::fill_gaussian; flicker and
  /// comparator noise come from their own streams. Values are stored
  /// post-scaling with each source's exact scalar draw-site expression, so
  /// step_planned_ just adds them.
  struct NoisePlan {
    /// One decimated output sample per fill: OSR clocks at the paper's
    /// operating point (128 kHz / 1 kS/s).
    static constexpr std::size_t kFrame = 128;
    std::array<double, kFrame> ktc;
    std::array<double, kFrame> ref;
    std::array<double, kFrame> op1;
    std::array<double, kFrame> flick1;
    std::array<double, kFrame> op2;
    std::array<double, kFrame> flick2;
    std::array<double, kFrame> comp;
    std::size_t len{0};
    std::size_t idx{0};
    bool ktc_on{false};
    bool ref_on{false};
    bool op1_on{false};
    bool flick1_on{false};
    bool op2_on{false};
    bool flick2_on{false};
  };

  /// Capacitive-mode loop invariants, hoisted verbatim from step_capacitive.
  struct CapacitiveInput {
    double u{0.0};        ///< normalized input q_sig / q_fs
    double sigma_u{0.0};  ///< kT/C sigma in FS units (0 when disabled)
    bool ktc{false};
  };
  [[nodiscard]] CapacitiveInput capacitive_input_(double c_sense_f,
                                                  double c_ref_f) const noexcept;

  /// Fills plan_ for the next `n` clocks (n <= NoisePlan::kFrame), advancing
  /// every noise stream exactly as n scalar steps would.
  void fill_noise_plan_(std::size_t n, double sigma_u, bool ktc) noexcept;

  // fill_noise_plan_ is split into the pieces below so the ModulatorBank can
  // drive the same plan construction with cross-lane batched Gaussian fills
  // (Rng::fill_gaussian_multi): the bank bulk-draws each stream group for a
  // whole lane packet, then calls the per-lane de-interleave/replay helpers.
  // Scalar and bank paths share these bodies, so they cannot drift apart.

  /// Shared-stream (rng_) standard normals consumed per clock.
  [[nodiscard]] std::size_t shared_draws_per_clock_(bool ktc) const noexcept;
  /// De-interleaves a shared-stream raw fill (n * shared_draws_per_clock_
  /// standard normals) into plan_.{ktc,ref,op1,op2} with each source's exact
  /// draw-site expression.
  void build_shared_plan_(std::size_t n, double sigma_u, bool ktc,
                          const double* raw) noexcept;
  /// Draw-site scaling of the unit pink samples in plan_.flick1 / flick2.
  void apply_flicker_scale1_(std::size_t n) noexcept;
  void apply_flicker_scale2_(std::size_t n) noexcept;
  /// Plan flags, length, cursor and the fills metric.
  void finish_plan_(std::size_t n, bool ktc) noexcept;

  /// Planned twin of step_normalized: same expressions in the same order,
  /// noise read from plan_ instead of drawn, settle() skipped when the step
  /// is provably exact. Inline — this IS the block hot loop.
  [[nodiscard]] int step_planned_(double u) noexcept {
    const auto& lc = config_.loop;
    const double scale = lc.state_scale_v;
    const std::size_t i = plan_.idx++;

    double ref_err_u = 0.0;
    if (plan_.ref_on) ref_err_u = plan_.ref[i];
    double extra_noise_u = 0.0;
    if (plan_.ktc_on) extra_noise_u = plan_.ktc[i];

    const double d = static_cast<double>(bit_);

    const double u_total = u + extra_noise_u + ref_err_u * d;
    double delta1 = lc.g1 * u_total - lc.a1 * d * (1.0 + ref_err_u);
    if (plan_.op1_on) delta1 += plan_.op1[i];
    if (plan_.flick1_on) delta1 += plan_.flick1[i];
    if (config_.enable_settling) {
      const double v1 = delta1 * scale;
      if (std::abs(v1) <= settle_exact1_v_) {
        // settle(v1, dt) would return v1 bit-for-bit here (see
        // OpAmp::full_settle_threshold); settle(±0) returns +0.0.
        delta1 = (v1 == 0.0 ? 0.0 : v1) / scale;
      } else {
        delta1 = opamp1_.settle(v1, dt_phase_s_) / scale;
      }
    }
    const double x1_prev = x1_;
    const double x1_new = opamp1_.leak_factor() * x1_ + delta1;
    const double v_x1 = x1_new * scale;
    // std::clamp, spelled out (clip() is out of line).
    const double x1_clipped =
        (v_x1 < -swing1_v_ ? -swing1_v_ : (swing1_v_ < v_x1 ? swing1_v_ : v_x1)) /
        scale;
    if (x1_clipped != x1_new) ++clip_count_;
    x1_ = x1_clipped;

    max_x1_ = std::max(max_x1_, std::abs(x1_ * scale));

    if (config_.order == 1) {
      bit_ = comparator_.decide_planned(x1_ * scale);
      time_s_ += clock_period_s_;  // same double as 1.0 / sampling_rate_hz
      return bit_;
    }

    double delta2 = lc.g2 * g2_mismatch_ * x1_prev - lc.a2 * d;
    if (plan_.op2_on) delta2 += plan_.op2[i];
    if (plan_.flick2_on) delta2 += plan_.flick2[i];
    if (config_.enable_settling) {
      const double v2 = delta2 * scale;
      if (std::abs(v2) <= settle_exact2_v_) {
        delta2 = (v2 == 0.0 ? 0.0 : v2) / scale;
      } else {
        delta2 = opamp2_.settle(v2, dt_phase_s_) / scale;
      }
    }
    const double x2_new = opamp2_.leak_factor() * x2_ + delta2;
    const double v_x2 = x2_new * scale;
    const double x2_clipped =
        (v_x2 < -swing2_v_ ? -swing2_v_ : (swing2_v_ < v_x2 ? swing2_v_ : v_x2)) /
        scale;
    if (x2_clipped != x2_new) ++clip_count_;
    x2_ = x2_clipped;

    max_x2_ = std::max(max_x2_, std::abs(x2_ * scale));

    bit_ = comparator_.decide_planned(x2_ * scale);
    time_s_ += clock_period_s_;  // same double as 1.0 / sampling_rate_hz
    return bit_;
  }

  ModulatorConfig config_;
  OpAmp opamp1_;
  OpAmp opamp2_;
  Comparator comparator_;
  Rng rng_;
  PinkNoise flicker1_;
  PinkNoise flicker2_;
  double flicker_scale1_{0.0};
  double flicker_scale2_{0.0};
  double x1_{0.0};  ///< first-integrator state, full-scale units
  double x2_{0.0};  ///< second-integrator state, full-scale units
  int bit_{1};
  double time_s_{0.0};
  double max_x1_{0.0};
  double max_x2_{0.0};
  std::size_t clip_count_{0};
  // Static mismatch draws (fixed per instance, like a fabricated die).
  double sample_mismatch_{1.0};
  double fb1_mismatch_{1.0};
  double ref_mismatch_{1.0};
  double g2_mismatch_{1.0};
  // Block-path invariants, fixed at construction (dt is set by the clock).
  NoisePlan plan_{};
  double dt_phase_s_{0.0};       ///< one clock phase, 0.5 / fs
  double clock_period_s_{0.0};   ///< cached 1.0 / fs (IEEE division — exact
                                 ///< same double the scalar path recomputes)
  double settle_exact1_v_{0.0};  ///< OpAmp::full_settle_threshold(dt) per stage
  double settle_exact2_v_{0.0};
  double swing1_v_{0.0};         ///< cached OpAmpConfig::output_swing_v
  double swing2_v_{0.0};
  metrics::Counter* noise_plan_fills_metric_{nullptr};
};

}  // namespace tono::analog
