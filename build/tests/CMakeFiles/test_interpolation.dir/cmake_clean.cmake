file(REMOVE_RECURSE
  "CMakeFiles/test_interpolation.dir/test_interpolation.cpp.o"
  "CMakeFiles/test_interpolation.dir/test_interpolation.cpp.o.d"
  "test_interpolation"
  "test_interpolation.pdb"
  "test_interpolation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
