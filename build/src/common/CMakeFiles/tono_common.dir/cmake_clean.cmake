file(REMOVE_RECURSE
  "CMakeFiles/tono_common.dir/cli.cpp.o"
  "CMakeFiles/tono_common.dir/cli.cpp.o.d"
  "CMakeFiles/tono_common.dir/interpolation.cpp.o"
  "CMakeFiles/tono_common.dir/interpolation.cpp.o.d"
  "CMakeFiles/tono_common.dir/math_utils.cpp.o"
  "CMakeFiles/tono_common.dir/math_utils.cpp.o.d"
  "CMakeFiles/tono_common.dir/pink_noise.cpp.o"
  "CMakeFiles/tono_common.dir/pink_noise.cpp.o.d"
  "CMakeFiles/tono_common.dir/rng.cpp.o"
  "CMakeFiles/tono_common.dir/rng.cpp.o.d"
  "CMakeFiles/tono_common.dir/statistics.cpp.o"
  "CMakeFiles/tono_common.dir/statistics.cpp.o.d"
  "CMakeFiles/tono_common.dir/table.cpp.o"
  "CMakeFiles/tono_common.dir/table.cpp.o.d"
  "libtono_common.a"
  "libtono_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tono_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
