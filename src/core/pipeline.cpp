#include "src/core/pipeline.hpp"

#include "src/common/checkpoint.hpp"

namespace tono::core {
namespace {

analog::MuxConfig mux_config_for(const ChipConfig& config) {
  analog::MuxConfig m = config.mux;
  m.rows = config.array.rows;
  m.cols = config.array.cols;
  m.excitation_v = config.modulator.vexc_v;
  return m;
}

}  // namespace

AcquisitionPipeline::AcquisitionPipeline(const ChipConfig& config)
    : config_(config),
      array_(config),
      mux_(mux_config_for(config)),
      modulator_(config.modulator),
      chain_(config.decimation),
      bit_scratch_(config.decimation.total_decimation) {
  // The modulator's reference branch is the chip's reference structure.
  last_capacitance_ = array_.reference_capacitance();
  mux_.note_preswitch_capacitance(last_capacitance_);
  auto& reg = metrics::Registry::global();
  frames_metric_ = &reg.counter(metrics::names::kPipelineFrames);
  frames_block_metric_ = &reg.counter(metrics::names::kPipelineFramesBlock);
  frames_scalar_metric_ = &reg.counter(metrics::names::kPipelineFramesScalar);
  mux_fallbacks_metric_ = &reg.counter(metrics::names::kPipelineMuxFallbacks);
  peak_state1_gauge_ = &reg.gauge(metrics::names::kModulatorPeakState1V);
  peak_state2_gauge_ = &reg.gauge(metrics::names::kModulatorPeakState2V);
  clip_count_gauge_ = &reg.gauge(metrics::names::kModulatorClipCount);
}

void AcquisitionPipeline::record_frame_(bool block_path) {
  frames_metric_->add(1);
  (block_path ? frames_block_metric_ : frames_scalar_metric_)->add(1);
  peak_state1_gauge_->record_max(modulator_.max_state1_v());
  peak_state2_gauge_->record_max(modulator_.max_state2_v());
  clip_count_gauge_->record_max(static_cast<double>(modulator_.clip_count()));
}

void AcquisitionPipeline::select(std::size_t row, std::size_t col) {
  if (row == mux_.selected_row() && col == mux_.selected_col()) return;
  mux_.note_preswitch_capacitance(last_capacitance_);
  mux_.select(row, col);
  last_switch_s_ = time_s_;
}

std::optional<dsp::DecimatedSample> AcquisitionPipeline::clock(double contact_pressure_pa) {
  const auto& elem = array_.element(mux_.selected_row(), mux_.selected_col());
  const double c_target = elem.capacitance(contact_pressure_pa, temperature_k_);
  const double c_seen = mux_.observed_capacitance(c_target, time_s_ - last_switch_s_);
  last_capacitance_ = c_seen;
  const int bit = modulator_.step_capacitive(c_seen, array_.reference_capacitance());
  time_s_ += 1.0 / clock_rate_hz();
  auto sample = chain_.push(bit);
  if (sample) record_frame_(/*block_path=*/false);
  return sample;
}

dsp::DecimatedSample AcquisitionPipeline::clock_block(double contact_pressure_pa) {
  const std::size_t n = config_.decimation.total_decimation;
  if (!mux_.is_settled(time_s_ - last_switch_s_)) {
    // Mux transient still decaying (only right after select() / reset()):
    // the per-clock blend matters, so run the frame through the scalar path.
    // Any `n` consecutive clocks contain exactly one output instant.
    std::optional<dsp::DecimatedSample> out;
    for (std::size_t i = 0; i < n; ++i) {
      if (auto s = clock(contact_pressure_pa)) out = s;
    }
    mux_fallbacks_metric_->add(1);  // the frame itself was counted by clock()
    return *out;
  }
  const auto& elem = array_.element(mux_.selected_row(), mux_.selected_col());
  const double c_target = elem.capacitance(contact_pressure_pa, temperature_k_);
  // Settled ⇒ observed_capacitance returns c_target bit-for-bit every clock,
  // so the lookup hoists and the scalar path's last_capacitance_ tracking
  // collapses to one store.
  last_capacitance_ = c_target;
  modulator_.step_capacitive_block(c_target, array_.reference_capacitance(),
                                   bit_scratch_.data(), n);
  // Advance time with the same n sequential additions as n scalar clocks:
  // double addition is order-sensitive, and time_s_ must stay bit-identical
  // between the scalar and block paths.
  const double dt = 1.0 / clock_rate_hz();
  for (std::size_t i = 0; i < n; ++i) time_s_ += dt;
  const auto sample = chain_.push_frame({bit_scratch_.data(), n});
  record_frame_(/*block_path=*/true);
  return sample;
}

std::vector<dsp::DecimatedSample> AcquisitionPipeline::acquire(const ContactField& field,
                                                               std::size_t n_out) {
  const auto& pos = array_.element(mux_.selected_row(), mux_.selected_col()).position();
  std::vector<dsp::DecimatedSample> out;
  out.reserve(n_out);
  while (out.size() < n_out) {
    const double p = field(pos.x_m, pos.y_m, time_s_);
    if (auto s = clock(p)) out.push_back(*s);
  }
  return out;
}

std::vector<dsp::DecimatedSample> AcquisitionPipeline::acquire_uniform(
    const std::function<double(double)>& pressure_pa_of_t, std::size_t n_out) {
  std::vector<dsp::DecimatedSample> out;
  out.reserve(n_out);
  while (out.size() < n_out) {
    if (auto s = clock(pressure_pa_of_t(time_s_))) out.push_back(*s);
  }
  return out;
}

std::vector<dsp::DecimatedSample> AcquisitionPipeline::acquire_block(const ContactField& field,
                                                                     std::size_t n_out) {
  const auto& pos = array_.element(mux_.selected_row(), mux_.selected_col()).position();
  std::vector<dsp::DecimatedSample> out;
  out.reserve(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    const double p = field(pos.x_m, pos.y_m, time_s_);
    out.push_back(clock_block(p));
  }
  return out;
}

std::vector<dsp::DecimatedSample> AcquisitionPipeline::acquire_uniform_block(
    const std::function<double(double)>& pressure_pa_of_t, std::size_t n_out) {
  std::vector<dsp::DecimatedSample> out;
  out.reserve(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    out.push_back(clock_block(pressure_pa_of_t(time_s_)));
  }
  return out;
}

void AcquisitionPipeline::reset() {
  modulator_.reset();
  chain_.reset();
  time_s_ = 0.0;
  last_switch_s_ = 0.0;
  last_capacitance_ = array_.reference_capacitance();
}

double AcquisitionPipeline::set_feedback_capacitor(double c_fb1_f) {
  const double before = modulator_.full_scale_delta_c();
  modulator_.set_feedback_capacitor(c_fb1_f);
  config_.modulator.c_fb1_f = c_fb1_f;
  return modulator_.full_scale_delta_c() / before;
}

void AcquisitionPipeline::serialize(CheckpointWriter& out) const {
  out.section("pipeline");
  out.f64(config_.modulator.c_fb1_f);  // tracks set_feedback_capacitor
  array_.serialize(out);
  mux_.serialize(out);
  modulator_.serialize(out);
  chain_.serialize(out);
  out.f64(time_s_);
  out.f64(last_switch_s_);
  out.f64(last_capacitance_);
  out.f64(temperature_k_);
}

void AcquisitionPipeline::restore(CheckpointReader& in) {
  in.section("pipeline");
  config_.modulator.c_fb1_f = in.f64();
  array_.restore(in);
  mux_.restore(in);
  modulator_.restore(in);
  chain_.restore(in);
  time_s_ = in.f64();
  last_switch_s_ = in.f64();
  last_capacitance_ = in.f64();
  temperature_k_ = in.f64();
}

double AcquisitionPipeline::clock_rate_hz() const noexcept {
  return config_.modulator.sampling_rate_hz;
}

double AcquisitionPipeline::output_rate_hz() const noexcept {
  return chain_.output_rate_hz();
}

ArrayAcquisition::ArrayAcquisition(const ChipConfig& config)
    : config_(config),
      array_(config),
      bank_(config.modulator, array_.size()) {  // array_ initialized first
  const std::size_t lanes = bank_.lanes();
  chains_.reserve(lanes);
  for (std::size_t k = 0; k < lanes; ++k) chains_.emplace_back(config.decimation);
  c_sense_.resize(lanes);
  c_ref_.assign(lanes, array_.reference_capacitance());
  bit_scratch_.resize(lanes * config.decimation.total_decimation);
}

void ArrayAcquisition::acquire_frame(const ContactField& field,
                                     dsp::DecimatedSample* out) {
  const std::size_t lanes = bank_.lanes();
  const std::size_t n = config_.decimation.total_decimation;
  // Element health gates the lane mask: a dead membrane has nothing physical
  // to convert, so its lane is masked out of the bank (frozen — no stepping,
  // no noise draws) rather than left converting a meaningless fault
  // capacitance. The mask follows the array both ways, so a cleared fault
  // resumes the lane bit-identically from its frozen state. Healthy lanes
  // are unaffected either way: lanes never share draws.
  for (std::size_t k = 0; k < lanes; ++k) {
    const bool healthy = array_.element(k).is_healthy();
    if (healthy != bank_.lane_enabled(k)) bank_.set_lane_enabled(k, healthy);
    if (!healthy) continue;
    const auto& elem = array_.element(k);
    const auto& pos = elem.position();
    c_sense_[k] =
        elem.capacitance(field(pos.x_m, pos.y_m, time_s_), temperature_k_);
  }
  bank_.step_capacitive_block(c_sense_.data(), c_ref_.data(),
                              bit_scratch_.data(), n);
  // Same n sequential additions as n single-pipeline clocks, so time stamps
  // agree bit-for-bit with the mux-free single-element pipeline.
  const double dt = 1.0 / clock_rate_hz();
  for (std::size_t i = 0; i < n; ++i) time_s_ += dt;
  for (std::size_t k = 0; k < lanes; ++k) {
    if (bank_.lane_enabled(k)) {
      out[k] = chains_[k].push_frame({bit_scratch_.data() + k * n, n});
    } else {
      out[k] = dsp::DecimatedSample{};  // masked lane: no sample this frame
    }
  }
}

std::vector<std::vector<dsp::DecimatedSample>> ArrayAcquisition::acquire_block(
    const ContactField& field, std::size_t n_out) {
  const std::size_t lanes = bank_.lanes();
  std::vector<std::vector<dsp::DecimatedSample>> out(lanes);
  for (auto& lane : out) lane.reserve(n_out);
  std::vector<dsp::DecimatedSample> frame(lanes);
  for (std::size_t i = 0; i < n_out; ++i) {
    acquire_frame(field, frame.data());
    for (std::size_t k = 0; k < lanes; ++k) out[k].push_back(frame[k]);
  }
  return out;
}

void ArrayAcquisition::reset() {
  bank_.reset();
  for (auto& chain : chains_) chain.reset();
  time_s_ = 0.0;
}

double ArrayAcquisition::output_rate_hz() const noexcept {
  return chains_.front().output_rate_hz();
}

void ArrayAcquisition::serialize(CheckpointWriter& out) const {
  out.section("array_acquisition");
  array_.serialize(out);
  bank_.serialize(out);
  out.size(chains_.size());
  for (const auto& chain : chains_) chain.serialize(out);
  out.f64(time_s_);
  out.f64(temperature_k_);
}

void ArrayAcquisition::restore(CheckpointReader& in) {
  in.section("array_acquisition");
  array_.restore(in);
  bank_.restore(in);
  if (in.size() != chains_.size()) {
    throw CheckpointError{"array acquisition checkpoint chain count mismatch"};
  }
  for (auto& chain : chains_) chain.restore(in);
  time_s_ = in.f64();
  temperature_k_ = in.f64();
}

}  // namespace tono::core
