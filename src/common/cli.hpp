// cli.hpp — minimal command-line flag parser for the tonosim tools.
//
// Deliberately tiny: typed flags (`--name value`), boolean switches
// (`--name`), defaults, required flags, and generated `--help` text.
// No external dependency, so the CLI builds in the offline environment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tono {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  /// Registers flags. `name` without the leading dashes.
  void add_flag(const std::string& name, const std::string& help);  // boolean
  void add_string(const std::string& name, const std::string& help,
                  std::optional<std::string> default_value = std::nullopt);
  void add_double(const std::string& name, const std::string& help,
                  std::optional<double> default_value = std::nullopt);
  void add_int(const std::string& name, const std::string& help,
               std::optional<long> default_value = std::nullopt);

  /// Parses argv (excluding argv[0] handling — pass argc/argv as received).
  /// Returns false and fills error() on failure or if --help was requested
  /// (help_requested() distinguishes the two).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string string_value(const std::string& name) const;
  [[nodiscard]] double double_value(const std::string& name) const;
  [[nodiscard]] long int_value(const std::string& name) const;

  /// Positional arguments (anything not starting with --).
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }
  [[nodiscard]] std::string help_text() const;

 private:
  enum class Kind { kFlag, kString, kDouble, kInt };
  struct Option {
    Kind kind;
    std::string help;
    std::optional<std::string> default_value;
    std::optional<std::string> value;
  };

  void add(const std::string& name, Kind kind, const std::string& help,
           std::optional<std::string> default_value);
  [[nodiscard]] const Option& option_or_throw(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_{false};
};

}  // namespace tono
