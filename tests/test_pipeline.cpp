// Tests for the full acquisition pipeline (Fig. 3 signal path).
#include "src/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/common/statistics.hpp"
#include "src/common/units.hpp"

namespace tono::core {
namespace {

TEST(Pipeline, RatesMatchPaper) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  EXPECT_DOUBLE_EQ(pipe.clock_rate_hz(), 128000.0);
  EXPECT_DOUBLE_EQ(pipe.output_rate_hz(), 1000.0);
}

TEST(Pipeline, ProducesRequestedSampleCount) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  const auto out = pipe.acquire_uniform([](double) { return 0.0; }, 100);
  EXPECT_EQ(out.size(), 100u);
}

TEST(Pipeline, TimeAdvancesWithClock) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  (void)pipe.acquire_uniform([](double) { return 0.0; }, 10);
  EXPECT_NEAR(pipe.time_s(), 10.0 * 128.0 / 128000.0, 1e-9);
}

TEST(Pipeline, ConstantPressureGivesStableOutput) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  const double p = units::mmhg_to_pa(20.0);
  const auto out = pipe.acquire_uniform([=](double) { return p; }, 400);
  std::vector<double> tail;
  for (std::size_t i = 200; i < out.size(); ++i) tail.push_back(out[i].value);
  // Converter noise only: the spread stays within a few LSB.
  EXPECT_LT(stddev(tail), 6.0 / 2048.0);
}

TEST(Pipeline, OutputTracksPressureDirection) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  auto settle_mean = [&](double p_mmhg) {
    pipe.reset();
    const auto out =
        pipe.acquire_uniform([=](double) { return units::mmhg_to_pa(p_mmhg); }, 300);
    std::vector<double> tail;
    for (std::size_t i = 150; i < out.size(); ++i) tail.push_back(out[i].value);
    return mean(tail);
  };
  const double lo = settle_mean(0.0);
  const double hi = settle_mean(40.0);
  EXPECT_GT(hi, lo);  // more contact pressure → more capacitance → higher code
}

TEST(Pipeline, SinusoidalPressureComesThrough) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  const double f = 5.0;  // heart-beat-scale frequency
  const auto out = pipe.acquire_uniform(
      [&](double t) {
        return units::mmhg_to_pa(20.0 + 15.0 * std::sin(2.0 * std::numbers::pi * f * t));
      },
      2000);
  std::vector<double> tail;
  for (std::size_t i = 1000; i < out.size(); ++i) tail.push_back(out[i].value);
  // Oscillation must be clearly visible above the noise.
  EXPECT_GT(peak_to_peak(tail), 20.0 / 2048.0);
  // And roughly periodic at 5 Hz: count zero crossings of the centered tail.
  const double m = mean(tail);
  int crossings = 0;
  for (std::size_t i = 1; i < tail.size(); ++i) {
    if ((tail[i - 1] - m) * (tail[i] - m) < 0.0) ++crossings;
  }
  EXPECT_NEAR(crossings, 10, 4);  // 5 Hz over 1 s → 10 crossings
}

TEST(Pipeline, SelectSwitchesElement) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  pipe.select(1, 1);
  EXPECT_EQ(pipe.selected_row(), 1u);
  EXPECT_EQ(pipe.selected_col(), 1u);
}

TEST(Pipeline, SwitchTransientSettlesWithinGroupDelay) {
  // §2.2: settling after a mux switch is limited by the converter's signal
  // bandwidth — i.e. the decimation-chain transient, not the analog mux.
  auto cfg = ChipConfig::paper_chip();
  AcquisitionPipeline pipe{cfg};
  const double p = units::mmhg_to_pa(30.0);
  auto field = [=](double, double, double) { return p; };
  (void)pipe.acquire(field, 200);  // settle on element (0,0)
  // Capture steady level of element (1,1) for reference.
  pipe.select(1, 1);
  const auto after = pipe.acquire(field, 200);
  std::vector<double> tail;
  for (std::size_t i = 100; i < after.size(); ++i) tail.push_back(after[i].value);
  const double steady = mean(tail);
  // The first samples after the switch differ (transient), later ones match.
  const double gd_samples = pipe.decimation().group_delay_seconds() * 1000.0;
  const std::size_t settle_n = static_cast<std::size_t>(4.0 * gd_samples) + 8;
  for (std::size_t i = settle_n; i < 100; ++i) {
    EXPECT_NEAR(after[i].value, steady, 8.0 / 2048.0) << "sample " << i;
  }
}

TEST(Pipeline, DeltaCFullScaleMatchesModulator) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  // paper_chip uses C_fb1 = 5 fF with V_exc = V_ref.
  EXPECT_NEAR(pipe.delta_c_full_scale(), 5e-15, 0.2e-15);
}

TEST(Pipeline, ResetRestartsCleanly) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  (void)pipe.acquire_uniform([](double) { return 1000.0; }, 50);
  pipe.reset();
  EXPECT_DOUBLE_EQ(pipe.time_s(), 0.0);
  const auto out = pipe.acquire_uniform([](double) { return 0.0; }, 10);
  EXPECT_EQ(out.size(), 10u);
}

TEST(Pipeline, FieldSeesElementCoordinates) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  // A field with a strong x-gradient produces different outputs on the two
  // columns.
  auto field = [](double x, double, double) {
    return units::mmhg_to_pa(x > 0.0 ? 40.0 : 0.0);
  };
  pipe.select(0, 0);
  const auto left = pipe.acquire(field, 300);
  pipe.select(0, 1);
  const auto right = pipe.acquire(field, 300);
  std::vector<double> lt;
  std::vector<double> rt;
  for (std::size_t i = 150; i < 300; ++i) {
    lt.push_back(left[i].value);
    rt.push_back(right[i].value);
  }
  EXPECT_GT(mean(rt), mean(lt) + 5.0 / 2048.0);
}

TEST(PipelineBlock, ClockBlockMatchesScalarBitIdentical) {
  // The block-mode contract: clock_block() must emit exactly the same sample
  // sequence — code AND value — as OSR scalar clock() calls, including every
  // RNG draw, and leave the pipeline in an identical state.
  AcquisitionPipeline scalar{ChipConfig::paper_chip()};
  AcquisitionPipeline block{ChipConfig::paper_chip()};
  const std::size_t osr = scalar.config().decimation.total_decimation;
  const double p = units::mmhg_to_pa(35.0);
  for (int frame = 0; frame < 40; ++frame) {
    std::optional<dsp::DecimatedSample> want;
    for (std::size_t i = 0; i < osr; ++i) {
      if (auto s = scalar.clock(p)) want = s;
    }
    ASSERT_TRUE(want.has_value());
    const auto got = block.clock_block(p);
    ASSERT_EQ(got.code, want->code) << "frame " << frame;
    ASSERT_EQ(got.value, want->value) << "frame " << frame;
  }
  EXPECT_EQ(block.time_s(), scalar.time_s());  // exact: same addition sequence
}

TEST(PipelineBlock, MatchesScalarAcrossMuxTransient) {
  // Right after select() the mux transient forces the scalar fallback inside
  // clock_block(); the sequence must still be bit-identical.
  AcquisitionPipeline scalar{ChipConfig::paper_chip()};
  AcquisitionPipeline block{ChipConfig::paper_chip()};
  const std::size_t osr = scalar.config().decimation.total_decimation;
  const double p = units::mmhg_to_pa(25.0);
  auto run_frames = [&](int n_frames) {
    for (int f = 0; f < n_frames; ++f) {
      std::optional<dsp::DecimatedSample> want;
      for (std::size_t i = 0; i < osr; ++i) {
        if (auto s = scalar.clock(p)) want = s;
      }
      const auto got = block.clock_block(p);
      ASSERT_TRUE(want.has_value());
      ASSERT_EQ(got.code, want->code);
      ASSERT_EQ(got.value, want->value);
    }
  };
  run_frames(3);
  scalar.select(1, 1);
  block.select(1, 1);
  run_frames(5);  // first frame lands inside the transient window
}

TEST(PipelineBlock, BlockMatchesScalarAtArbitraryChainPhase) {
  // Mix scalar clocks and block frames on one pipeline: 37 scalar clocks
  // leave the chain mid-frame, after which clock_block() must still return
  // exactly one sample per call and agree with an all-scalar twin.
  AcquisitionPipeline scalar{ChipConfig::paper_chip()};
  AcquisitionPipeline mixed{ChipConfig::paper_chip()};
  const std::size_t osr = mixed.config().decimation.total_decimation;
  const double p = units::mmhg_to_pa(15.0);
  for (std::size_t i = 0; i < 37; ++i) {
    (void)scalar.clock(p);
    (void)mixed.clock(p);
  }
  for (int frame = 0; frame < 10; ++frame) {
    std::optional<dsp::DecimatedSample> want;
    for (std::size_t i = 0; i < osr; ++i) {
      if (auto s = scalar.clock(p)) want = s;
    }
    const auto got = mixed.clock_block(p);
    ASSERT_TRUE(want.has_value());
    ASSERT_EQ(got.code, want->code) << "frame " << frame;
  }
}

TEST(PipelineBlock, AcquireUniformBlockProducesRequestedCount) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  const auto out =
      pipe.acquire_uniform_block([](double) { return units::mmhg_to_pa(20.0); }, 100);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_NEAR(pipe.time_s(), 100.0 * 128.0 / 128000.0, 1e-9);
}

TEST(PipelineBlock, AcquireBlockTracksAcquireClosely) {
  // acquire_block() holds pressure constant within each output frame, so it
  // is not bit-identical to acquire() — but for physiological signal rates
  // (~1 Hz against a 1 kHz frame rate) the two must agree to a few LSB.
  AcquisitionPipeline a{ChipConfig::paper_chip()};
  AcquisitionPipeline b{ChipConfig::paper_chip()};
  auto wave = [](double t) {
    return units::mmhg_to_pa(20.0 + 10.0 * std::sin(2.0 * std::numbers::pi * 1.2 * t));
  };
  const auto sa = a.acquire_uniform(wave, 300);
  const auto sb = b.acquire_uniform_block(wave, 300);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 50; i < sa.size(); ++i) {
    EXPECT_NEAR(sa[i].value, sb[i].value, 8.0 / 2048.0) << "sample " << i;
  }
}

}  // namespace
}  // namespace tono::core
