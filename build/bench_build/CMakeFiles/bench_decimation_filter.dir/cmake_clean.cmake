file(REMOVE_RECURSE
  "../bench/bench_decimation_filter"
  "../bench/bench_decimation_filter.pdb"
  "CMakeFiles/bench_decimation_filter.dir/bench_decimation_filter.cpp.o"
  "CMakeFiles/bench_decimation_filter.dir/bench_decimation_filter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decimation_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
