file(REMOVE_RECURSE
  "CMakeFiles/vessel_localization.dir/vessel_localization.cpp.o"
  "CMakeFiles/vessel_localization.dir/vessel_localization.cpp.o.d"
  "vessel_localization"
  "vessel_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vessel_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
