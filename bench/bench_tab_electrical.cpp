// E2 / §3.1 — electrical operating point of the sensor chip.
//
// Paper numbers: fs = 128 kS/s, OSR = 128 → 1 kS/s, 12 bit, SNR > 72 dB,
// power 11.5 mW at 5 V. The bench reproduces the operating-point table and
// adds the power model's scaling trends around the nominal point.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/analog/power.hpp"
#include "src/core/chip_config.hpp"

namespace {

using namespace tono;

void run() {
  bench::print_header("E2 / §3.1", "Electrical operating point and power");

  const auto chip = core::ChipConfig::paper_chip();
  const analog::PowerModel pm{chip.power};

  // Headline conversion performance at the operating point.
  analog::ModulatorConfig mc = chip.modulator;
  mc.c_fb1_f = 25e-15;  // electrical characterization setting
  const auto tone = bench::run_tone_test(mc, chip.decimation, 0.875, 15.625);

  bench::ComparisonTable cmp{"Operating point (paper §3.1 vs simulation)"};
  cmp.add("sampling frequency", "128 kHz",
          format_double(chip.modulator.sampling_rate_hz / 1e3, 0) + " kHz",
          chip.modulator.sampling_rate_hz == 128000.0);
  cmp.add("oversampling ratio", "128",
          format_double(static_cast<double>(chip.decimation.total_decimation), 0),
          chip.decimation.total_decimation == 128);
  cmp.add("conversion rate", "1 kS/s", "1 kS/s",
          chip.decimation.total_decimation == 128);
  cmp.add("output resolution", "12 bit",
          format_double(static_cast<double>(chip.decimation.output_bits), 0) + " bit",
          chip.decimation.output_bits == 12);
  cmp.add("SNR", "> 72 dB", format_double(tone.analysis.snr_db, 1) + " dB",
          tone.analysis.snr_db > 72.0);
  cmp.add("supply voltage", "5 V", format_double(chip.modulator.supply_v, 1) + " V",
          chip.modulator.supply_v == 5.0);
  cmp.add("power @ 5 V / 128 kHz", "11.5 mW",
          format_double(pm.nominal_w() * 1e3, 2) + " mW",
          std::abs(pm.nominal_w() - 11.5e-3) < 0.2e-3);
  cmp.print();

  // Power scaling trends (model predictions around the reported point).
  TextTable pf{"Power vs sampling frequency (Vdd = 5 V)"};
  pf.set_header({"fs [kHz]", "static [mW]", "dynamic [mW]", "total [mW]"});
  for (double fs : {32e3, 64e3, 128e3, 256e3, 512e3}) {
    pf.add_row({format_double(fs / 1e3, 0), format_double(pm.static_w(5.0) * 1e3, 2),
                format_double(pm.dynamic_w(5.0, fs) * 1e3, 2),
                format_double(pm.total_w(5.0, fs) * 1e3, 2)});
  }
  pf.print(std::cout);

  TextTable pv{"Power vs supply (fs = 128 kHz)"};
  pv.set_header({"Vdd [V]", "total [mW]", "energy/conv [uJ]"});
  for (double vdd : {3.0, 3.3, 4.0, 5.0, 5.5}) {
    pv.add_row({format_double(vdd, 1), format_double(pm.total_w(vdd, 128e3) * 1e3, 2),
                format_double(pm.energy_per_conversion_j(vdd, 128e3, 128.0) * 1e6, 2)});
  }
  pv.print(std::cout);
}

}  // namespace

int main() {
  run();
  return 0;
}
