// Tests for the FPGA→host frame protocol.
#include "src/core/telemetry.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"

namespace tono::core {
namespace {

std::vector<std::int16_t> ramp(std::size_t n, std::int16_t start = -100) {
  std::vector<std::int16_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::int16_t>(start + 3 * i);
  return v;
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(msg), 0x29B1);
}

TEST(Crc16, EmptyIsInit) { EXPECT_EQ(crc16_ccitt({}), 0xFFFF); }

TEST(Telemetry, RoundTripSingleFrame) {
  FrameEncoder enc;
  FrameDecoder dec;
  const auto samples = ramp(40);
  const auto wire = enc.encode(samples);
  const auto frames = dec.push(wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].samples, samples);
  EXPECT_EQ(frames[0].sequence, 0);
  EXPECT_EQ(dec.stats().frames_ok, 1u);
  EXPECT_EQ(dec.stats().crc_errors, 0u);
}

TEST(Telemetry, RoundTripNegativeAndExtremes) {
  FrameEncoder enc;
  FrameDecoder dec;
  const std::vector<std::int16_t> samples{-2048, 2047, 0, -1, 1, -1000, 1000};
  const auto frames = dec.push(enc.encode(samples));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].samples, samples);
}

TEST(Telemetry, OddSampleCountPadding) {
  FrameEncoder enc;
  FrameDecoder dec;
  for (std::size_t n : {1u, 3u, 5u, 7u, 79u}) {
    const auto samples = ramp(n);
    const auto frames = dec.push(enc.encode(samples));
    ASSERT_EQ(frames.size(), 1u) << n;
    EXPECT_EQ(frames[0].samples, samples) << n;
  }
}

TEST(Telemetry, SequenceIncrements) {
  FrameEncoder enc;
  FrameDecoder dec;
  for (int i = 0; i < 5; ++i) {
    const auto frames = dec.push(enc.encode(ramp(8)));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].sequence, i);
  }
  EXPECT_EQ(dec.stats().lost_frames, 0u);
}

TEST(Telemetry, ByteAtATimeDelivery) {
  FrameEncoder enc;
  FrameDecoder dec;
  const auto samples = ramp(17);
  const auto wire = enc.encode(samples);
  std::vector<DecodedFrame> got;
  for (std::uint8_t b : wire) {
    auto f = dec.push(std::span<const std::uint8_t>{&b, 1});
    for (auto& frame : f) got.push_back(std::move(frame));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].samples, samples);
}

TEST(Telemetry, MultipleFramesOneChunk) {
  FrameEncoder enc;
  FrameDecoder dec;
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 4; ++i) {
    const auto f = enc.encode(ramp(10, static_cast<std::int16_t>(i * 10)));
    wire.insert(wire.end(), f.begin(), f.end());
  }
  const auto frames = dec.push(wire);
  EXPECT_EQ(frames.size(), 4u);
}

TEST(Telemetry, ResyncAfterGarbage) {
  FrameEncoder enc;
  FrameDecoder dec;
  std::vector<std::uint8_t> wire{0x00, 0xFF, 0xA5, 0x13, 0x42};  // noise w/ fake sync
  const auto good = enc.encode(ramp(12));
  wire.insert(wire.end(), good.begin(), good.end());
  const auto frames = dec.push(wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_GT(dec.stats().resyncs, 0u);
}

TEST(Telemetry, CrcErrorDetected) {
  FrameEncoder enc;
  FrameDecoder dec;
  auto wire = enc.encode(ramp(20));
  wire[10] ^= 0x04;  // flip a payload bit
  const auto frames = dec.push(wire);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(dec.stats().crc_errors, 1u);
}

TEST(Telemetry, CorruptFrameThenCleanFrame) {
  FrameEncoder enc;
  FrameDecoder dec;
  auto bad = enc.encode(ramp(20));
  bad[8] ^= 0xFF;
  auto good = enc.encode(ramp(20));
  std::vector<std::uint8_t> wire(bad);
  wire.insert(wire.end(), good.begin(), good.end());
  const auto frames = dec.push(wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].sequence, 1);
}

TEST(Telemetry, LostFrameCounted) {
  FrameEncoder enc;
  FrameDecoder dec;
  const auto f0 = enc.encode(ramp(8));
  const auto f1 = enc.encode(ramp(8));  // dropped
  const auto f2 = enc.encode(ramp(8));
  (void)f1;
  (void)dec.push(f0);
  (void)dec.push(f2);
  EXPECT_EQ(dec.stats().lost_frames, 1u);
  EXPECT_EQ(dec.stats().frames_ok, 2u);
}

TEST(Telemetry, EncoderRejectsBadInput) {
  FrameEncoder enc;
  EXPECT_THROW((void)enc.encode({}), std::invalid_argument);
  const std::vector<std::int16_t> too_many(81, 0);
  EXPECT_THROW((void)enc.encode(too_many), std::invalid_argument);
  const std::vector<std::int16_t> out_of_range{3000};
  EXPECT_THROW((void)enc.encode(out_of_range), std::invalid_argument);
}

TEST(Telemetry, DecoderResetClearsState) {
  FrameEncoder enc;
  FrameDecoder dec;
  (void)dec.push(enc.encode(ramp(8)));
  dec.reset();
  EXPECT_EQ(dec.stats().frames_ok, 0u);
  // After reset the next frame (sequence 1) is not counted as a loss.
  (void)dec.push(enc.encode(ramp(8)));
  EXPECT_EQ(dec.stats().lost_frames, 0u);
}

TEST(Telemetry, FuzzRandomNoiseNeverCrashes) {
  FrameDecoder dec;
  tono::Rng rng{404};
  for (int chunk = 0; chunk < 200; ++chunk) {
    std::vector<std::uint8_t> noise(rng.uniform_below(64) + 1);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform_below(256));
    EXPECT_NO_THROW((void)dec.push(noise));
  }
  // Random noise must essentially never produce a valid CRC frame.
  EXPECT_LE(dec.stats().frames_ok, 1u);
}

TEST(Telemetry, InterleavedGarbageStream) {
  FrameEncoder enc;
  FrameDecoder dec;
  tono::Rng rng{77};
  std::size_t sent = 0;
  for (int i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> junk(rng.uniform_below(10));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_below(256));
    (void)dec.push(junk);
    const auto frames = dec.push(enc.encode(ramp(16)));
    sent += 1;
    (void)frames;
  }
  // Junk between frames can corrupt at most the framing recovery, never the
  // accepted payloads; nearly all frames must come through.
  EXPECT_GE(dec.stats().frames_ok, sent - 2);
}

}  // namespace
}  // namespace tono::core
