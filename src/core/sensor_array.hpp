// sensor_array.hpp — the 2x2 (generalizable to NxM) transducer array with a
// fast capacitance lookup per element.
//
// The full Simpson-quadrature capacitance integral is too slow to evaluate
// once per 128 kHz modulator clock, so each element precomputes a cubic-
// spline C(p) table over the operating pressure range at construction
// (modelling error < 0.01 % of the capacitance swing, verified in tests).
// Elements carry individual mismatch, mirroring a fabricated die; positions
// follow the 150 µm pitch so the bio lateral-sensitivity model can attach.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/interpolation.hpp"
#include "src/core/chip_config.hpp"
#include "src/mems/transducer.hpp"

namespace tono {
class CheckpointReader;
class CheckpointWriter;
}  // namespace tono

namespace tono::core {

/// Physical position of an element's center relative to the array center.
struct ElementPosition {
  double x_m{0.0};
  double y_m{0.0};
};

/// One array element: transducer physics + fast C(p) evaluation.
class ArrayElement {
 public:
  ArrayElement(const mems::TransducerConfig& config, ElementPosition position,
               double pressure_min_pa, double pressure_max_pa,
               ElementFault fault = ElementFault::kNone);

  /// Fast capacitance lookup [F] for a contact pressure [Pa]. The LUT is
  /// built at 300 K; the (small, linear) temperature coefficient is applied
  /// analytically on top, so body-contact warming drifts the baseline as on
  /// the real die.
  [[nodiscard]] double capacitance(double contact_pressure_pa,
                                   double temperature_k = 300.0) const noexcept;

  /// Exact (quadrature) capacitance, for validation.
  [[nodiscard]] double capacitance_exact(double contact_pressure_pa,
                                         double temperature_k = 300.0) const noexcept;

  [[nodiscard]] const ElementPosition& position() const noexcept { return position_; }
  [[nodiscard]] const mems::PressureTransducer& transducer() const noexcept {
    return transducer_;
  }
  [[nodiscard]] ElementFault fault() const noexcept { return fault_; }
  [[nodiscard]] bool is_healthy() const noexcept { return fault_ == ElementFault::kNone; }

  /// Changes the element's fault state at runtime — a membrane failing
  /// mid-run (fleet fault plans), not just a config-time yield defect. The
  /// fault capacitance is recomputed exactly as at construction.
  void set_fault(ElementFault fault) noexcept;

 private:
  mems::PressureTransducer transducer_;
  ElementPosition position_;
  CubicSpline lut_;
  ElementFault fault_{ElementFault::kNone};
  double fault_capacitance_{0.0};
};

class SensorArray {
 public:
  /// Builds rows × cols elements on the configured pitch, plus the
  /// unreleased reference structure. Pressure LUTs cover
  /// [lut_min_pa, lut_max_pa].
  SensorArray(const ChipConfig& config, double lut_min_pa = -30e3,
              double lut_max_pa = 60e3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return elements_.size(); }

  [[nodiscard]] const ArrayElement& element(std::size_t row, std::size_t col) const;
  [[nodiscard]] const ArrayElement& element(std::size_t index) const;

  /// The on-chip reference capacitance [F] (§3: "a reference structure").
  [[nodiscard]] double reference_capacitance() const noexcept { return c_ref_; }

  /// Runtime fault injection: an element failing mid-run (fleet fault
  /// plans), as opposed to the config-time yield faults in
  /// ChipConfig::faults. Throws std::out_of_range on a bad coordinate.
  void inject_fault(std::size_t row, std::size_t col, ElementFault fault);

  /// Number of elements currently reporting ElementFault::kNone.
  [[nodiscard]] std::size_t healthy_count() const noexcept;

  /// Capacitance of element (row, col) under a contact pressure [Pa].
  [[nodiscard]] double capacitance(std::size_t row, std::size_t col,
                                   double contact_pressure_pa) const;

  /// Checkpointing: the runtime fault state of every element (restored via
  /// set_fault so fault capacitances are recomputed exactly as injected).
  /// Geometry and mismatch are config-derived and are not serialized.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<ArrayElement> elements_;
  double c_ref_{0.0};
};

}  // namespace tono::core
