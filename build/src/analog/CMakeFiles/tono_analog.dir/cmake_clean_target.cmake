file(REMOVE_RECURSE
  "libtono_analog.a"
)
