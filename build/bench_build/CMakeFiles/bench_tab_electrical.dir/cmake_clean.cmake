file(REMOVE_RECURSE
  "../bench/bench_tab_electrical"
  "../bench/bench_tab_electrical.pdb"
  "CMakeFiles/bench_tab_electrical.dir/bench_tab_electrical.cpp.o"
  "CMakeFiles/bench_tab_electrical.dir/bench_tab_electrical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_electrical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
