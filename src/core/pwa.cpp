#include "src/core/pwa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/dsp/biquad.hpp"

namespace tono::core {
namespace {

/// Index clamp helper.
std::size_t clamp_index(double t_s, double t0_s, double fs, std::size_t n) {
  const double idx = (t_s - t0_s) * fs;
  if (idx <= 0.0) return 0;
  const auto i = static_cast<std::size_t>(idx);
  return std::min(i, n - 1);
}

}  // namespace

PulseWaveAnalyzer::PulseWaveAnalyzer(double sample_rate_hz) : fs_(sample_rate_hz) {
  if (fs_ <= 0.0) throw std::invalid_argument{"PulseWaveAnalyzer: sample rate must be > 0"};
}

PulseWaveSummary PulseWaveAnalyzer::analyze(std::span<const double> samples,
                                            const BeatAnalysis& beats, double t0_s) const {
  PulseWaveSummary out;
  if (samples.empty() || beats.beats.empty()) return out;

  // Smooth once for derivative/notch work (25 Hz keeps the notch, kills
  // quantization steps).
  dsp::BiquadCascade smooth;
  smooth.add(dsp::Biquad::lowpass(25.0, fs_));
  const auto sm = smooth.process(samples);

  double dpdt_acc = 0.0;
  double pp_acc = 0.0;
  double ef_acc = 0.0;
  std::size_t ef_n = 0;
  double aix_acc = 0.0;
  std::size_t aix_n = 0;

  for (std::size_t b = 0; b < beats.beats.size(); ++b) {
    const auto& beat = beats.beats[b];
    PulseWaveFeatures f;
    f.pulse_pressure = beat.systolic_value - beat.diastolic_value;

    const std::size_t i_foot = clamp_index(beat.foot_s, t0_s, fs_, sm.size());
    const std::size_t i_peak = clamp_index(beat.peak_s, t0_s, fs_, sm.size());
    const double next_time = (b + 1 < beats.beats.size())
                                 ? beats.beats[b + 1].foot_s
                                 : beat.peak_s + 0.6;
    const std::size_t i_end = clamp_index(next_time, t0_s, fs_, sm.size());

    // dP/dt max on the upstroke.
    double best_slope = 0.0;
    std::size_t best_i = i_foot;
    for (std::size_t i = i_foot + 1; i <= i_peak && i < sm.size(); ++i) {
      const double slope = (sm[i] - sm[i - 1]) * fs_;
      if (slope > best_slope) {
        best_slope = slope;
        best_i = i;
      }
    }
    f.dpdt_max = best_slope;
    f.dpdt_max_time_s = t0_s + static_cast<double>(best_i) / fs_;

    // Dicrotic notch: the most prominent local minimum between the systolic
    // peak and 70 % of the way to the next foot.
    if (i_end > i_peak + 4) {
      const std::size_t search_end = i_peak + (i_end - i_peak) * 7 / 10;
      std::optional<std::size_t> notch;
      for (std::size_t i = i_peak + 2; i + 2 < search_end && i + 2 < sm.size(); ++i) {
        if (sm[i] < sm[i - 1] && sm[i] < sm[i - 2] && sm[i] <= sm[i + 1] &&
            sm[i] < sm[i + 2]) {
          notch = i;
          break;  // first clean local minimum after the peak
        }
      }
      if (notch) {
        f.notch_time_s = t0_s + static_cast<double>(*notch) / fs_;
        const double interval = next_time - beat.foot_s;
        if (interval > 0.0) {
          f.ejection_fraction_of_beat = (*f.notch_time_s - beat.foot_s) / interval;
          ef_acc += *f.ejection_fraction_of_beat;
          ++ef_n;
        }
        // Augmentation: secondary (reflected) maximum after the notch.
        std::size_t p2 = *notch;
        for (std::size_t i = *notch; i < i_end && i < sm.size(); ++i) {
          if (sm[i] > sm[p2]) p2 = i;
        }
        const double p1 = beat.systolic_value - beat.diastolic_value;
        const double p2_height = sm[p2] - beat.diastolic_value;
        if (p1 > 0.0 && p2 > *notch) {
          f.augmentation_index = p2_height / p1;
          aix_acc += *f.augmentation_index;
          ++aix_n;
        }
      }
    }

    dpdt_acc += f.dpdt_max;
    pp_acc += f.pulse_pressure;
    out.per_beat.push_back(f);
  }

  const auto nb = static_cast<double>(out.per_beat.size());
  out.mean_dpdt_max = dpdt_acc / nb;
  out.mean_pulse_pressure = pp_acc / nb;
  if (ef_n > 0) out.mean_ejection_fraction = ef_acc / static_cast<double>(ef_n);
  if (aix_n > 0) out.mean_augmentation_index = aix_acc / static_cast<double>(aix_n);
  return out;
}

}  // namespace tono::core
