#include "src/gateway/recorder.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <string_view>
#include <system_error>
#include <utility>

#include "src/common/checkpoint.hpp"
#include "src/gateway/gateway.hpp"

namespace tono::gateway {
namespace {

constexpr std::array<char, 4> kRecordMagic{'T', 'G', 'W', 'R'};
constexpr std::size_t kFileHeaderBytes = 4 + 4 + 4;
constexpr std::size_t kRecordHeaderBytes = 4 + 2 + 2 + 8;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
}

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xFF);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::string SessionRecorder::session_file(const std::string& dir, std::uint32_t id) {
  return dir + "/session_" + std::to_string(id) + ".rec";
}

std::string SessionRecorder::index_file(const std::string& dir) {
  return dir + "/index.ckpt";
}

SessionRecorder::SessionRecorder(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw RecorderError{"SessionRecorder: cannot create '" + dir_ +
                        "': " + ec.message()};
  }
  recorder_bytes_metric_ =
      &metrics::Registry::global().counter(metrics::names::kGatewayRecorderBytes);
}

SessionRecorder::~SessionRecorder() = default;

void SessionRecorder::open_session(std::uint32_t id) {
  auto [it, inserted] = sessions_.try_emplace(id);
  if (!inserted) return;
  Rec& rec = it->second;
  rec.info.id = id;
  rec.out.open(session_file(dir_, id), std::ios::binary | std::ios::trunc);
  if (!rec.out) {
    sessions_.erase(it);
    throw RecorderError{"SessionRecorder: cannot open record file for session " +
                        std::to_string(id)};
  }
  std::uint8_t header[kFileHeaderBytes];
  header[0] = static_cast<std::uint8_t>(kRecordMagic[0]);
  header[1] = static_cast<std::uint8_t>(kRecordMagic[1]);
  header[2] = static_cast<std::uint8_t>(kRecordMagic[2]);
  header[3] = static_cast<std::uint8_t>(kRecordMagic[3]);
  put_u32(header + 4, kRecordFileVersion);
  put_u32(header + 8, id);
  rec.out.write(reinterpret_cast<const char*>(header), sizeof(header));
  // Header on disk before any record: a kill right after open still leaves
  // a parseable (empty) session file.
  rec.out.flush();
}

void SessionRecorder::record(std::uint32_t id, std::span<const std::uint8_t> frame,
                             std::uint16_t n_codes) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw RecorderError{"SessionRecorder: session " + std::to_string(id) +
                        " not opened"};
  }
  Rec& rec = it->second;
  std::uint8_t header[kRecordHeaderBytes];
  put_u32(header + 0, static_cast<std::uint32_t>(frame.size()));
  put_u16(header + 4, n_codes);
  put_u16(header + 6, 0);
  put_u64(header + 8, checkpoint_fnv1a(frame.data(), frame.size()));
  rec.out.write(reinterpret_cast<const char*>(header), sizeof(header));
  rec.out.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
  // Record-granular durability for the kill-and-replay story: an OS kill
  // (SIGKILL, the CI smoke) cannot lose a flushed record, only tear the
  // one mid-write — which the replayer truncates.
  rec.out.flush();
  ++rec.info.frames;
  rec.info.codes += n_codes;
  rec.info.bytes += frame.size();
  frames_recorded_.fetch_add(1, std::memory_order_relaxed);
  const auto total = sizeof(header) + frame.size();
  bytes_written_.fetch_add(total, std::memory_order_relaxed);
  recorder_bytes_metric_->add(total);
}

bool SessionRecorder::finalize(const RecordMeta& meta) {
  bool ok = true;
  CheckpointWriter out;
  out.section("gateway_record_index");
  out.u64(meta.base_seed);
  out.u64(meta.sessions);
  out.u64(meta.frames_per_step);
  out.f64(meta.duration_s);
  out.size(sessions_.size());
  for (auto& [id, rec] : sessions_) {
    rec.out.flush();
    if (!rec.out) ok = false;
    out.u32(rec.info.id);
    out.u64(rec.info.frames);
    out.u64(rec.info.codes);
    out.u64(rec.info.bytes);
  }
  if (!ok) return false;
  const auto blob = out.finish(kRecordIndexVersion);
  return atomic_write_file(index_file(dir_), blob.data(), blob.size());
}

SessionReplayer::SessionReplayer(const std::string& dir, std::uint32_t id)
    : in_(SessionRecorder::session_file(dir, id), std::ios::binary), id_(id) {
  if (!in_) {
    throw RecorderError{"SessionReplayer: cannot open record for session " +
                        std::to_string(id)};
  }
  std::uint8_t header[kFileHeaderBytes];
  in_.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(header)) ||
      header[0] != static_cast<std::uint8_t>(kRecordMagic[0]) ||
      header[1] != static_cast<std::uint8_t>(kRecordMagic[1]) ||
      header[2] != static_cast<std::uint8_t>(kRecordMagic[2]) ||
      header[3] != static_cast<std::uint8_t>(kRecordMagic[3]) ||
      get_u32(header + 4) != kRecordFileVersion || get_u32(header + 8) != id) {
    throw RecorderError{"SessionReplayer: bad record header for session " +
                        std::to_string(id)};
  }
}

bool SessionReplayer::next(std::vector<std::uint8_t>& frame, std::uint16_t& n_codes) {
  if (done_) return false;
  std::uint8_t header[kRecordHeaderBytes];
  in_.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in_.gcount() == 0) {
    done_ = true;  // clean end-of-stream
    return false;
  }
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    truncated_ = true;  // torn record header at the tail
    done_ = true;
    return false;
  }
  const std::uint32_t length = get_u32(header + 0);
  if (length == 0 || length > kMaxEnvelopePayload) {
    truncated_ = true;  // implausible length: corrupt tail
    done_ = true;
    return false;
  }
  frame.resize(length);
  in_.read(reinterpret_cast<char*>(frame.data()), length);
  if (in_.gcount() != static_cast<std::streamsize>(length)) {
    truncated_ = true;  // torn payload
    done_ = true;
    return false;
  }
  if (checkpoint_fnv1a(frame.data(), frame.size()) != get_u64(header + 8)) {
    truncated_ = true;  // corrupt record — stop, never hand out wrong bytes
    done_ = true;
    return false;
  }
  n_codes = get_u16(header + 4);
  ++frames_read_;
  codes_read_ += n_codes;
  return true;
}

SessionReplayer::Totals SessionReplayer::scan(const std::string& dir,
                                              std::uint32_t id) {
  SessionReplayer replayer{dir, id};
  Totals totals;
  std::vector<std::uint8_t> frame;
  std::uint16_t n_codes = 0;
  while (replayer.next(frame, n_codes)) {
    ++totals.frames;
    totals.codes += n_codes;
    totals.bytes += frame.size();
  }
  totals.torn = replayer.truncated();
  return totals;
}

std::vector<std::uint32_t> SessionReplayer::list_sessions(const std::string& dir) {
  std::vector<std::uint32_t> ids;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator{dir, ec}) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "session_";
    constexpr std::string_view suffix = ".rec";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(static_cast<std::uint32_t>(std::stoul(digits)));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<RecordIndex> read_record_index(const std::string& dir) {
  const std::string path = SessionRecorder::index_file(dir);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  const auto blob = read_file_bytes(path);
  CheckpointReader in{blob};
  in.require_version(kRecordIndexVersion);
  in.section("gateway_record_index");
  RecordIndex index;
  index.meta.base_seed = in.u64();
  index.meta.sessions = in.u64();
  index.meta.frames_per_step = in.u64();
  index.meta.duration_s = in.f64();
  index.sessions.resize(in.size());
  for (auto& s : index.sessions) {
    s.id = in.u32();
    s.frames = in.u64();
    s.codes = in.u64();
    s.bytes = in.u64();
  }
  in.expect_end();
  return index;
}

}  // namespace tono::gateway
