// Tests for release-yield fault injection and graceful degradation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/units.hpp"
#include "src/core/monitor.hpp"
#include "src/core/scan.hpp"
#include "src/core/sensor_array.hpp"

namespace tono::core {
namespace {

ChipConfig chip_with_fault(std::size_t row, std::size_t col, ElementFault fault) {
  auto chip = ChipConfig::paper_chip();
  chip.faults.push_back(ElementFaultSpec{row, col, fault});
  return chip;
}

TEST(Faults, HealthyByDefault) {
  SensorArray arr{ChipConfig::paper_chip()};
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_TRUE(arr.element(i).is_healthy());
    EXPECT_EQ(arr.element(i).fault(), ElementFault::kNone);
  }
}

TEST(Faults, NotReleasedIsPressureIndependent) {
  SensorArray arr{chip_with_fault(0, 0, ElementFault::kNotReleased)};
  const auto& dead = arr.element(0, 0);
  EXPECT_FALSE(dead.is_healthy());
  const double c0 = dead.capacitance(0.0);
  const double c1 = dead.capacitance(units::mmhg_to_pa(150.0));
  EXPECT_DOUBLE_EQ(c0, c1);
  // Healthy neighbours still respond.
  const auto& ok = arr.element(0, 1);
  EXPECT_GT(ok.capacitance(units::mmhg_to_pa(150.0)), ok.capacitance(0.0));
}

TEST(Faults, StuckDownReadsHighAndFlat) {
  SensorArray arr{chip_with_fault(1, 1, ElementFault::kStuckDown)};
  const auto& stuck = arr.element(1, 1);
  const auto& ok = arr.element(0, 0);
  // Collapsed gap → well above the healthy rest capacitance.
  EXPECT_GT(stuck.capacitance(0.0), 1.5 * ok.capacitance(0.0));
  EXPECT_DOUBLE_EQ(stuck.capacitance(0.0), stuck.capacitance(units::mmhg_to_pa(100.0)));
}

TEST(Faults, TempcoStillAppliesToFaultyElement) {
  SensorArray arr{chip_with_fault(0, 0, ElementFault::kNotReleased)};
  const auto& dead = arr.element(0, 0);
  EXPECT_GT(dead.capacitance(0.0, 310.0), dead.capacitance(0.0, 300.0));
}

TEST(Faults, ScanAvoidsDeadElement) {
  // The dead element carries no pulsation; strongest-element selection must
  // pick a released one — yield tolerance through the array (§2).
  BloodPressureMonitor mon{chip_with_fault(0, 0, ElementFault::kNotReleased),
                           WristModel{}};
  ScanConfig sc;
  sc.dwell_samples = 1200;
  const auto scan = mon.localize(sc);
  EXPECT_FALSE(scan.best_row == 0 && scan.best_col == 0);
}

TEST(Faults, MonitoringSurvivesOneDeadElement) {
  BloodPressureMonitor mon{chip_with_fault(0, 1, ElementFault::kStuckDown),
                           WristModel{}};
  ScanConfig sc;
  sc.dwell_samples = 1200;
  (void)mon.localize(sc);
  (void)mon.calibrate(10.0);
  const auto rep = mon.monitor(20.0);
  EXPECT_GE(rep.beats.beats.size(), 15u);
  EXPECT_LT(std::abs(rep.map_error_mmhg), 6.0);
}

TEST(Faults, AllDeadArrayYieldsNoPulsation) {
  auto chip = ChipConfig::paper_chip();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      chip.faults.push_back(ElementFaultSpec{r, c, ElementFault::kNotReleased});
    }
  }
  BloodPressureMonitor mon{chip, WristModel{}};
  ScanConfig sc;
  sc.dwell_samples = 1200;
  const auto scan = mon.localize(sc);
  // Converter noise only: amplitude far below a healthy element's.
  EXPECT_LT(scan.best_amplitude, 0.003);
  EXPECT_THROW((void)mon.calibrate(10.0), std::exception);
}

}  // namespace
}  // namespace tono::core
