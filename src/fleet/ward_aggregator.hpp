// ward_aggregator.hpp — the ward's single pane of glass.
//
// The consumer side of the fleet: drains every session's code and event
// rings, maintains per-session vitals (last BP, SQI, active alarms, ring
// loss accounting), and runs the ward-level alarm escalation queue — the
// piece a single-patient monitor cannot have. Escalation policy
// (docs/FLEET.md):
//
//   kNotice   — an alarm was raised on a session,
//   kUrgent   — still active `escalate_after_s` of session stream time
//               later (nobody resolved it),
//   kCritical — the session has >= `critical_active_kinds` distinct alarm
//               kinds active at once (multi-vital deterioration).
//
// Threading contract: drain_once(), attach(), lifecycle updates and
// snapshots all run on ONE thread (the scheduler's caller). Producers touch
// only the rings, so the aggregator never reads session objects while
// workers step them. Consumption totals are mirrored into the global
// metrics registry (ward.* / fleet.ring_* instruments).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/core/validation.hpp"
#include "src/fleet/patient_session.hpp"

namespace tono::fleet {

enum class WardAlarmLevel : std::uint8_t { kNotice, kUrgent, kCritical };

[[nodiscard]] std::string to_string(WardAlarmLevel level);

/// One entry of the ward escalation queue.
struct WardAlarm {
  std::uint32_t session_id{0};
  core::AlarmKind kind{core::AlarmKind::kSystolicLow};
  WardAlarmLevel level{WardAlarmLevel::kNotice};
  double raised_s{0.0};   ///< session stream time of the raise
  double value{0.0};      ///< measurement that confirmed the raise
  bool active{true};
};

/// Per-session state as seen from the ward (rebuilt purely from the rings
/// plus scheduler lifecycle notes).
struct WardSessionState {
  std::uint32_t id{0};
  std::string label;
  SessionState lifecycle{SessionState::kAdmitted};
  std::string note;  ///< quarantine reason, when applicable
  std::uint64_t codes{0};
  std::uint64_t events{0};
  std::uint64_t beats{0};
  std::int16_t last_code{0};
  double last_systolic_mmhg{0.0};
  double last_diastolic_mmhg{0.0};
  double last_beat_s{0.0};
  double last_sqi{0.0};
  bool sqi_usable{false};
  std::uint64_t code_drops{0};    ///< mirrored from the codes ring
  std::uint64_t event_drops{0};   ///< mirrored from the events ring
  std::uint64_t block_events{0};  ///< producer stalls (both rings)
  std::size_t alarms_active{0};
  std::uint64_t recoveries{0};    ///< completed readmissions (kRecovering → kRunning)
  /// Scheduler-mirrored fault history: injected faults, re-routes,
  /// quarantine strikes, readmissions, retirement. Exported in snapshots.
  std::vector<std::string> fault_log;
};

struct WardConfig {
  /// Session stream time an alarm may stay active before kNotice → kUrgent.
  double escalate_after_s{10.0};
  /// Distinct active alarm kinds on one session that force kCritical.
  std::size_t critical_active_kinds{2};
  /// Keep every consumed 12-bit code per session (determinism tests; off by
  /// default to bound ward memory on long runs).
  bool record_codes{false};
};

/// A value-type copy of everything a ward snapshot serializes: the
/// per-session states plus the ward-level totals. Decoupling this from
/// WardAggregator is what makes hospital sharding and async snapshots work —
/// shard snapshots merge into one (merge_snapshots) and serialization
/// (export_jsonl below) can run on a dedicated writer thread while the wards
/// keep draining.
struct WardSnapshot {
  std::vector<WardSessionState> sessions;
  std::uint64_t codes_consumed{0};
  std::uint64_t events_consumed{0};
  std::size_t alarms_active{0};
  std::size_t alarms_total{0};
  std::uint64_t escalations{0};
  std::uint64_t drops{0};        ///< total ring losses (codes + events)
  std::uint64_t event_drops{0};  ///< events lost (0 under blocking policy)
  std::uint64_t recoveries{0};
  std::uint64_t retired{0};
};

/// Serializes a snapshot as JSONL: one "session" object per line, then one
/// "ward" summary line. Byte-compatible with WardAggregator::export_jsonl —
/// and shard-count-invariant: merging N shard snapshots and serializing
/// yields the same bytes as the equivalent single-ward run.
void export_jsonl(const WardSnapshot& snapshot, std::ostream& os);

/// Merges shard snapshots into one hospital-wide snapshot: sessions are
/// re-ordered by global session id, totals are summed.
[[nodiscard]] WardSnapshot merge_snapshots(std::vector<WardSnapshot> parts);

class WardAggregator {
 public:
  explicit WardAggregator(WardConfig config = {});

  /// Registers a session's rings. Call before the session's first step.
  void attach(PatientSession& session, std::string label = "");

  /// Re-points an already-attached session id at a new PatientSession
  /// object (checkpoint-restored readmission). The accumulated
  /// WardSessionState — vitals, ring-loss accounting, fault log, alarm
  /// history — is preserved; only the ring pointers move. The replacement
  /// carries the old object's ring lifetime counters in its checkpoint, so
  /// the delta mirrors continue seamlessly. Throws std::out_of_range for an
  /// unknown id.
  void reattach(PatientSession& session);

  /// Scheduler lifecycle note (shown in snapshots; quarantine reasons land
  /// here). Tracks recovery/retire accounting: a kRecovering → kRunning
  /// transition counts one recovery and clears the stale quarantine note, a
  /// first transition to kRetired counts one retirement.
  void set_lifecycle(std::uint32_t session_id, SessionState state,
                     std::string note = "");

  /// Appends one line to a session's fault log (scheduler mirror of the
  /// session-side log plus quarantine/readmit/retire verdicts).
  void note_fault(std::uint32_t session_id, std::string entry);

  /// Drains every attached ring once and updates per-session state and the
  /// ward.* consumption metrics. Returns items consumed. Safe to call while
  /// producers are mid-batch (that is the design: the scheduler's caller
  /// thread drains concurrently with the workers).
  std::size_t drain_once();

  /// Runs the time-based escalation policy and refreshes the alarms-active
  /// gauge. Deliberately split from drain_once(): mid-batch drains see
  /// partial code counts, so notice→urgent decisions only fire here — the
  /// scheduler calls it at batch barriers, after a full drain, which keeps
  /// escalation (and snapshot bytes) identical across thread counts.
  void settle();

  [[nodiscard]] const std::vector<WardSessionState>& sessions() const noexcept {
    return sessions_;
  }
  [[nodiscard]] const WardSessionState* session(std::uint32_t session_id) const;
  [[nodiscard]] const std::vector<WardAlarm>& alarm_queue() const noexcept {
    return alarm_queue_;
  }
  [[nodiscard]] std::size_t alarms_active() const noexcept;
  [[nodiscard]] std::uint64_t escalations() const noexcept { return escalations_; }
  [[nodiscard]] std::uint64_t recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] std::uint64_t retired() const noexcept { return retired_; }
  [[nodiscard]] std::uint64_t codes_consumed() const noexcept { return codes_consumed_; }
  [[nodiscard]] std::uint64_t events_consumed() const noexcept { return events_consumed_; }
  /// Total items lost to drop-oldest backpressure across all rings.
  [[nodiscard]] std::uint64_t total_drops() const noexcept;
  /// Alarm/beat/quality events lost (must stay 0 under the blocking policy).
  [[nodiscard]] std::uint64_t event_drops() const noexcept;
  /// Producer stalls on blocking rings, summed across sessions.
  [[nodiscard]] std::uint64_t total_blocks() const noexcept;

  /// Copies the full ward state into a value-type snapshot (same threading
  /// contract as export_jsonl: call at a barrier or after the run).
  [[nodiscard]] WardSnapshot snapshot() const;

  /// Recorded code stream of a session (requires WardConfig::record_codes).
  [[nodiscard]] const std::vector<std::int16_t>& recorded_codes(
      std::uint32_t session_id) const;

  /// Ward snapshot as JSONL: one "session" object per line, then one "ward"
  /// summary line. Complements the metrics registry export (ward.* totals)
  /// with per-session detail the flat registry cannot carry. Equivalent to
  /// fleet::export_jsonl(snapshot(), os).
  void export_jsonl(std::ostream& os) const;

  /// Validation roll-up (docs/VALIDATION.md): sessions graded by the
  /// validation harness report here; cohort grades are exact merges of the
  /// per-session accumulators, so a sharded fleet grades identically to a
  /// serial run. Same threading contract as snapshots: record at barriers.
  void record_validation(core::SessionValidationRecord record);
  [[nodiscard]] const std::vector<core::SessionValidationRecord>& validation_records()
      const noexcept {
    return validation_records_;
  }
  [[nodiscard]] std::vector<core::CohortValidation> validation_by_cohort() const;
  /// Per-session + per-cohort + fleet validation lines
  /// (core::export_validation_jsonl over the recorded set).
  void export_validation_jsonl(std::ostream& os) const;

  /// Checkpointing: per-session ward state (vitals, loss accounting, fault
  /// logs, recorded codes), the alarm queue and the ward totals. Restore
  /// expects the same sessions attached in the same order; the registry
  /// mirrors are process-lifetime and are untouched.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  struct Entry {
    RingBuffer<std::int16_t>* codes;
    RingBuffer<FleetEvent>* events;
    double output_rate_hz;
    std::vector<std::int16_t> code_log;  ///< only when record_codes
  };

  void consume_event_(WardSessionState& state, const FleetEvent& event);
  void run_escalations_();

  WardConfig config_;
  std::vector<WardSessionState> sessions_;
  std::vector<Entry> entries_;  ///< parallel to sessions_
  std::vector<WardAlarm> alarm_queue_;
  std::vector<core::SessionValidationRecord> validation_records_;
  std::uint64_t escalations_{0};
  std::uint64_t recoveries_{0};
  std::uint64_t retired_{0};
  std::uint64_t codes_consumed_{0};
  std::uint64_t events_consumed_{0};
  std::vector<std::int16_t> code_scratch_;
  std::vector<FleetEvent> event_scratch_;
  // Observability (resolved once at construction; drain-rate updates).
  metrics::Counter* codes_metric_;
  metrics::Counter* events_metric_;
  metrics::Counter* drops_metric_;
  metrics::Counter* blocks_metric_;
  metrics::Counter* escalations_metric_;
  metrics::Gauge* alarms_active_gauge_;
};

}  // namespace tono::fleet
