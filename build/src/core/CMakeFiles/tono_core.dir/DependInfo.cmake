
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autorange.cpp" "src/core/CMakeFiles/tono_core.dir/autorange.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/autorange.cpp.o.d"
  "/root/repo/src/core/beat_detection.cpp" "src/core/CMakeFiles/tono_core.dir/beat_detection.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/beat_detection.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/tono_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/chip_config.cpp" "src/core/CMakeFiles/tono_core.dir/chip_config.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/chip_config.cpp.o.d"
  "/root/repo/src/core/holddown.cpp" "src/core/CMakeFiles/tono_core.dir/holddown.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/holddown.cpp.o.d"
  "/root/repo/src/core/hrv.cpp" "src/core/CMakeFiles/tono_core.dir/hrv.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/hrv.cpp.o.d"
  "/root/repo/src/core/imaging.cpp" "src/core/CMakeFiles/tono_core.dir/imaging.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/imaging.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/tono_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/tono_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/pwa.cpp" "src/core/CMakeFiles/tono_core.dir/pwa.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/pwa.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "src/core/CMakeFiles/tono_core.dir/quality.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/quality.cpp.o.d"
  "/root/repo/src/core/scan.cpp" "src/core/CMakeFiles/tono_core.dir/scan.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/scan.cpp.o.d"
  "/root/repo/src/core/sensor_array.cpp" "src/core/CMakeFiles/tono_core.dir/sensor_array.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/sensor_array.cpp.o.d"
  "/root/repo/src/core/streaming_monitor.cpp" "src/core/CMakeFiles/tono_core.dir/streaming_monitor.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/streaming_monitor.cpp.o.d"
  "/root/repo/src/core/telemetry.cpp" "src/core/CMakeFiles/tono_core.dir/telemetry.cpp.o" "gcc" "src/core/CMakeFiles/tono_core.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tono_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tono_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/mems/CMakeFiles/tono_mems.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/tono_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/tono_bio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
