// Tests for numeric helpers.
#include "src/common/math_utils.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace tono {
namespace {

TEST(Sinc, AtZeroIsOne) { EXPECT_DOUBLE_EQ(sinc(0.0), 1.0); }

TEST(Sinc, ZerosAtIntegers) {
  for (int k = 1; k <= 5; ++k) {
    EXPECT_NEAR(sinc(static_cast<double>(k)), 0.0, 1e-12);
    EXPECT_NEAR(sinc(static_cast<double>(-k)), 0.0, 1e-12);
  }
}

TEST(Sinc, HalfPoint) { EXPECT_NEAR(sinc(0.5), 2.0 / std::numbers::pi, 1e-12); }

TEST(BesselI0, KnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-14);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-10);
  EXPECT_NEAR(bessel_i0(2.0), 2.2795853023360673, 1e-10);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-7);
}

TEST(BesselI0, EvenFunction) {
  EXPECT_DOUBLE_EQ(bessel_i0(3.0), bessel_i0(-3.0));
}

TEST(Decibels, PowerRoundTrip) {
  EXPECT_NEAR(power_to_db(db_to_power(-23.5)), -23.5, 1e-12);
  EXPECT_NEAR(power_to_db(100.0), 20.0, 1e-12);
}

TEST(Decibels, AmplitudeRoundTrip) {
  EXPECT_NEAR(amplitude_to_db(db_to_amplitude(6.0)), 6.0, 1e-12);
  EXPECT_NEAR(amplitude_to_db(10.0), 20.0, 1e-12);
}

TEST(Decibels, NonPositiveIsNegInfinity) {
  EXPECT_TRUE(std::isinf(power_to_db(0.0)));
  EXPECT_LT(power_to_db(0.0), 0.0);
  EXPECT_TRUE(std::isinf(amplitude_to_db(-1.0)));
}

TEST(Polyval, ConstantAndLinear) {
  const std::vector<double> c{3.0};
  EXPECT_DOUBLE_EQ(polyval(c, 100.0), 3.0);
  const std::vector<double> lin{1.0, 2.0};  // 1 + 2x
  EXPECT_DOUBLE_EQ(polyval(lin, 3.0), 7.0);
}

TEST(Polyval, Cubic) {
  const std::vector<double> c{1.0, -2.0, 0.0, 4.0};  // 1 - 2x + 4x^3
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 1.0 - 4.0 + 32.0);
}

TEST(Polyfit, RecoversExactPolynomial) {
  const std::vector<double> coeffs{2.0, -1.0, 0.5};
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 10; ++i) {
    const double x = -2.0 + 0.5 * i;
    xs.push_back(x);
    ys.push_back(polyval(coeffs, x));
  }
  const auto fit = polyfit(xs, ys, 2);
  ASSERT_EQ(fit.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(fit[i], coeffs[i], 1e-9);
}

TEST(Polyfit, ThrowsOnTooFewPoints) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW((void)polyfit(xs, ys, 2), std::invalid_argument);
}

TEST(SolveLinearSystem, TwoByTwo) {
  // 2x + y = 5; x - y = 1 → x = 2, y = 1.
  const auto x = solve_linear_system({2.0, 1.0, 1.0, -1.0}, {5.0, 1.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // First pivot is zero; solvable only with row exchange.
  const auto x = solve_linear_system({0.0, 1.0, 1.0, 0.0}, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW((void)solve_linear_system({1.0, 2.0, 2.0, 4.0}, {1.0, 2.0}),
               std::runtime_error);
}

TEST(SolveLinearSystem, SizeMismatchThrows) {
  EXPECT_THROW((void)solve_linear_system({1.0, 2.0, 3.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(ApproxEqual, Basics) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(IsPow2, Values) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(4097));
}

TEST(WrapPhase, InRange) {
  for (double p : {-100.0, -3.2, 0.0, 3.2, 100.0}) {
    const double w = wrap_phase(p);
    EXPECT_GT(w, -std::numbers::pi - 1e-12);
    EXPECT_LE(w, std::numbers::pi + 1e-12);
  }
}

TEST(WrapPhase, PreservesValueModTwoPi) {
  const double p = 7.5;
  const double w = wrap_phase(p);
  EXPECT_NEAR(std::sin(p), std::sin(w), 1e-12);
  EXPECT_NEAR(std::cos(p), std::cos(w), 1e-12);
}

TEST(IntegrateSimpson, Polynomial) {
  // ∫₀¹ x² dx = 1/3 — Simpson is exact for cubics.
  const double v = integrate_simpson([](double x) { return x * x; }, 0.0, 1.0, 4);
  EXPECT_NEAR(v, 1.0 / 3.0, 1e-14);
}

TEST(IntegrateSimpson, SineOverPeriod) {
  const double v =
      integrate_simpson([](double x) { return std::sin(x); }, 0.0, std::numbers::pi, 128);
  EXPECT_NEAR(v, 2.0, 1e-7);  // composite-Simpson error bound ~6e-9 at 128 intervals
}

TEST(Bisect, FindsRoot) {
  const double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-12);
}

TEST(Bisect, DecreasingFunction) {
  const double r = bisect([](double x) { return 1.0 - x; }, 0.0, 3.0);
  EXPECT_NEAR(r, 1.0, 1e-12);
}

}  // namespace
}  // namespace tono
