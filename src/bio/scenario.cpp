#include "src/bio/scenario.hpp"

#include <stdexcept>

namespace tono::bio {

struct ScenarioProfile::Columns {
  std::vector<double> t;
  std::vector<double> sys;
  std::vector<double> dia;
  std::vector<double> hr;

  static Columns from(const std::vector<ScenarioKeyframe>& frames) {
    if (frames.size() < 2) {
      throw std::invalid_argument{"ScenarioProfile: need >= 2 keyframes"};
    }
    Columns c;
    for (const auto& f : frames) {
      if (!c.t.empty() && f.time_s <= c.t.back()) {
        throw std::invalid_argument{"ScenarioProfile: keyframes must be time-ordered"};
      }
      if (f.systolic_mmhg <= f.diastolic_mmhg) {
        throw std::invalid_argument{"ScenarioProfile: systolic must exceed diastolic"};
      }
      c.t.push_back(f.time_s);
      c.sys.push_back(f.systolic_mmhg);
      c.dia.push_back(f.diastolic_mmhg);
      c.hr.push_back(f.heart_rate_bpm);
    }
    return c;
  }
};

ScenarioProfile::ScenarioProfile(const Columns& c, std::string name)
    : name_(std::move(name)),
      sys_(c.t, c.sys),
      dia_(c.t, c.dia),
      hr_(c.t, c.hr),
      t_min_(c.t.front()),
      t_max_(c.t.back()) {}

ScenarioProfile::ScenarioProfile(std::vector<ScenarioKeyframe> keyframes, std::string name)
    : ScenarioProfile(Columns::from(keyframes), std::move(name)) {}

ScenarioKeyframe ScenarioProfile::at(double t_s) const {
  return ScenarioKeyframe{t_s, sys_(t_s), dia_(t_s), hr_(t_s)};
}

void ScenarioProfile::apply(ArterialPulseGenerator& generator, double t_s) const {
  const auto k = at(t_s);
  generator.set_targets(k.systolic_mmhg, k.diastolic_mmhg, k.heart_rate_bpm);
}

double ScenarioProfile::duration_s() const noexcept { return t_max_ - t_min_; }

ScenarioProfile ScenarioProfile::exercise(double total_s) {
  const double t1 = 0.25 * total_s;   // rest ends
  const double t2 = 0.50 * total_s;   // peak exercise
  const double t3 = total_s;          // recovered
  return ScenarioProfile{
      {
          ScenarioKeyframe{0.0, 120.0, 80.0, 72.0},
          ScenarioKeyframe{t1, 120.0, 80.0, 75.0},
          ScenarioKeyframe{t2, 165.0, 95.0, 130.0},
          ScenarioKeyframe{0.75 * total_s, 135.0, 85.0, 95.0},
          ScenarioKeyframe{t3, 122.0, 81.0, 78.0},
      },
      "exercise"};
}

ScenarioProfile ScenarioProfile::hypotensive_episode(double total_s) {
  const double onset = 0.35 * total_s;
  const double nadir = 0.50 * total_s;
  return ScenarioProfile{
      {
          ScenarioKeyframe{0.0, 118.0, 78.0, 74.0},
          ScenarioKeyframe{onset, 116.0, 77.0, 76.0},
          ScenarioKeyframe{nadir, 82.0, 52.0, 98.0},   // fast crash, reflex tachycardia
          ScenarioKeyframe{0.7 * total_s, 96.0, 62.0, 90.0},
          ScenarioKeyframe{total_s, 106.0, 70.0, 82.0},
      },
      "hypotensive-episode"};
}

}  // namespace tono::bio
